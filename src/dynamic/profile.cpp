#include "dynamic/profile.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"
#include "sim/analytic.hpp"
#include "sim/warp_sim.hpp"

namespace gpustatic::dynamic {

namespace {

constexpr std::uint64_t mem_key(std::int32_t bb, std::uint32_t inst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(bb)) << 16) |
         inst;
}

/// DeviceMemory places region r at base (r+1) << 32 (see sim/device.hpp),
/// so the owning array of a line address is recoverable.
std::size_t region_of_line(std::uint64_t line, std::uint32_t line_bytes) {
  return static_cast<std::size_t>(((line * line_bytes) >> 32) - 1);
}

}  // namespace

std::vector<std::uint64_t> profile_default_watch() {
  // 16KB and 48KB L1 configurations, 1MB and 4MB L2s, in 128B lines.
  return {128, 384, 8192, 32768};
}

StageProfiler::StageProfiler(const ptx::Kernel& kernel,
                             std::vector<std::string> array_names,
                             std::uint32_t line_bytes,
                             std::vector<std::uint64_t> watch_capacities)
    : line_bytes_(line_bytes) {
  p_.kernel = kernel.name;
  p_.blocks.resize(kernel.blocks.size());
  p_.insts.resize(kernel.blocks.size());
  for (std::size_t b = 0; b < kernel.blocks.size(); ++b)
    p_.insts[b].resize(kernel.blocks[b].body.size());
  p_.arrays.reserve(array_names.size());
  for (std::string& name : array_names)
    p_.arrays.push_back(ArrayTraffic{std::move(name), 0, 0});
  p_.l2_stream = ReuseDistanceAnalyzer(std::move(watch_capacities));
}

void StageProfiler::on_issue(const sim::IssueEvent& ev) {
  const auto bb = static_cast<std::size_t>(ev.bb);
  const auto lanes =
      static_cast<std::uint64_t>(std::popcount(ev.exec_mask));
  BlockProfile& blk = p_.blocks[bb];
  blk.issues += 1;
  if (ev.inst == 0) blk.entries += 1;  // blocks are always entered at 0
  InstProfile& ip = p_.insts[bb][ev.inst];
  ip.issues += 1;
  ip.lanes += lanes;
  p_.issues += 1;
  p_.lane_sum += lanes;
}

void StageProfiler::on_branch(const sim::BranchEvent& ev) {
  BlockProfile& blk = p_.blocks[static_cast<std::size_t>(ev.bb)];
  blk.branch_execs += 1;
  if (ev.divergent) blk.branch_divergent += 1;
  const int active = std::popcount(ev.active_mask);
  if (active > 0)
    blk.taken_fraction_sum +=
        static_cast<double>(std::popcount(ev.taken_mask)) /
        static_cast<double>(active);
}

void StageProfiler::on_memory(const sim::MemoryEvent& ev) {
  const std::uint64_t key = mem_key(ev.bb, ev.inst);
  auto [it, inserted] = mem_index_.try_emplace(key, p_.memory.size());
  if (inserted) {
    MemInstProfile mp;
    mp.bb = ev.bb;
    mp.inst = ev.inst;
    mp.is_store = ev.is_store;
    mp.is_atomic = ev.is_atomic;
    p_.memory.push_back(mp);
  }
  MemInstProfile& mp = p_.memory[it->second];
  mp.ops += 1;
  mp.lanes += ev.lanes;
  mp.transactions += ev.lines.size();
  mp.l1_hits += ev.l1_hits;
  mp.l2_hits += ev.l2_hits;
  mp.dram += ev.dram;

  const bool write = ev.is_store || ev.is_atomic;
  for (const std::uint64_t line : ev.lines) {
    p_.l2_stream.access(line);
    const std::size_t r = region_of_line(line, line_bytes_);
    if (r < p_.arrays.size()) {
      if (write)
        p_.arrays[r].store_lines += 1;
      else
        p_.arrays[r].load_lines += 1;
    }
  }
}

StageProfile StageProfiler::take(sim::StageTiming timing) {
  p_.timing = std::move(timing);
  StageProfile out = std::move(p_);
  // Not StageProfile{}: aggregate-init would copy-list-initialize the
  // l2_stream member from {}, which may not use its explicit constructor.
  p_ = StageProfile();
  mem_index_.clear();
  return out;
}

double WorkloadProfile::simd_efficiency() const {
  std::uint64_t issues = 0;
  std::uint64_t lanes = 0;
  for (const StageProfile& s : stages) {
    issues += s.issues;
    lanes += s.lane_sum;
  }
  return issues > 0
             ? static_cast<double>(lanes) /
                   (32.0 * static_cast<double>(issues))
             : 0.0;
}

std::uint64_t WorkloadProfile::total_issues() const {
  std::uint64_t issues = 0;
  for (const StageProfile& s : stages) issues += s.issues;
  return issues;
}

WorkloadProfile profile_workload(const codegen::LoweredWorkload& lw,
                                 const dsl::WorkloadDesc& desc,
                                 const sim::MachineModel& machine,
                                 const ProfileOptions& opts) {
  WorkloadProfile wp;
  wp.workload = desc.name;
  wp.params = lw.params;

  std::vector<std::string> names;
  names.reserve(desc.arrays.size());
  for (const dsl::ArrayDecl& a : desc.arrays) names.push_back(a.name);

  sim::Measurement& m = wp.measurement;
  m.occupancy = 1.0;
  m.regs_per_thread = lw.regs_per_thread();
  try {
    sim::DeviceMemory mem(desc);
    sim::WarpSimulator simulator(machine);
    for (const codegen::LoweredStage& st : lw.stages) {
      StageProfiler prof(st.kernel, names, machine.line_bytes,
                         opts.watch_capacities);
      sim::StageTiming t = simulator.run_stage(st, mem, &prof);
      m.base_time_ms += t.time_ms;
      m.counts += t.counts;
      m.occupancy = std::min(m.occupancy, t.occ.occupancy);
      const sim::WaveGeometry g =
          sim::decompose_waves(*machine.gpu, t.occ, st.launch, st.coarsen);
      m.waves = std::max(m.waves, g.waves);
      m.tail_sm_fraction = std::min(m.tail_sm_fraction, g.tail_sm_fraction);
      wp.stages.push_back(prof.take(std::move(t)));
    }
  } catch (const ConfigError& e) {
    m.valid = false;
    m.error = e.what();
    m.base_time_ms = 0;
    m.trial_time_ms = 0;
    return wp;
  }
  sim::RunOptions run = opts.run;
  run.engine = sim::Engine::Warp;
  apply_measurement_protocol(m, run, lw.params);
  return wp;
}

}  // namespace gpustatic::dynamic
