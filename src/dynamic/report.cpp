#include "dynamic/report.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/strings.hpp"
#include "common/table.hpp"

namespace gpustatic::dynamic {

using str::format;

namespace {

std::string pct(double x) { return format("%.1f%%", 100.0 * x); }

void render_blocks(std::ostringstream& os, const StageProfile& s,
                   std::size_t top_n) {
  std::vector<std::size_t> order(s.blocks.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return s.blocks[a].issues > s.blocks[b].issues;
  });

  TextTable t({"block", "entries", "issues", "share", "br execs",
               "divergent", "taken"});
  const double total =
      std::max<std::uint64_t>(1, s.issues) * 1.0;
  std::size_t shown = 0;
  for (const std::size_t b : order) {
    const BlockProfile& blk = s.blocks[b];
    if (blk.issues == 0 || shown == top_n) break;
    t.add_row({format("BB%zu", b), std::to_string(blk.entries),
               std::to_string(blk.issues),
               pct(static_cast<double>(blk.issues) / total),
               std::to_string(blk.branch_execs),
               blk.branch_execs > 0 ? pct(blk.divergence_rate()) : "-",
               blk.branch_execs > 0 ? pct(blk.taken_fraction()) : "-"});
    ++shown;
  }
  os << "hot basic blocks (IC / BF):\n" << t.render();
}

void render_memory(std::ostringstream& os, const StageProfile& s) {
  TextTable t({"mem op", "kind", "ops", "txn/op", "L1 hit", "L2 hit",
               "DRAM"});
  for (const MemInstProfile& m : s.memory) {
    const double txns = std::max<std::uint64_t>(1, m.transactions) * 1.0;
    t.add_row({format("BB%d:%u", m.bb, m.inst),
               m.is_atomic ? "atom" : (m.is_store ? "store" : "load"),
               std::to_string(m.ops), format("%.2f", m.transactions_per_op()),
               pct(static_cast<double>(m.l1_hits) / txns),
               pct(static_cast<double>(m.l2_hits) / txns),
               pct(static_cast<double>(m.dram) / txns)});
  }
  os << "memory instructions (MD / coalescing):\n" << t.render();
}

void render_arrays(std::ostringstream& os, const StageProfile& s) {
  TextTable t({"array", "load lines", "store lines"});
  for (const ArrayTraffic& a : s.arrays) {
    if (a.load_lines == 0 && a.store_lines == 0) continue;
    t.add_row({a.array, std::to_string(a.load_lines),
               std::to_string(a.store_lines)});
  }
  if (t.rows() > 0) os << "array traffic:\n" << t.render();
}

void render_reuse(std::ostringstream& os, const StageProfile& s) {
  const ReuseDistanceAnalyzer& r = s.l2_stream;
  os << format(
      "reuse distance: %llu accesses, %llu lines, %llu cold, mean %.1f\n",
      static_cast<unsigned long long>(r.accesses()),
      static_cast<unsigned long long>(r.distinct_lines()),
      static_cast<unsigned long long>(r.cold_misses()),
      r.mean_distance());

  const auto& hist = r.log2_histogram();
  std::uint64_t max_count = 0;
  std::size_t last = 0;
  for (std::size_t i = 0; i < hist.size(); ++i) {
    max_count = std::max(max_count, hist[i]);
    if (hist[i] > 0) last = i;
  }
  for (std::size_t i = 0; i <= last && max_count > 0; ++i) {
    const std::string label =
        i == 0 ? "        0"
               : format("%4llu-%4llu",
                        static_cast<unsigned long long>(1ull << (i - 1)),
                        static_cast<unsigned long long>((1ull << i) - 1));
    os << "  " << label << " | "
       << ascii_bar(static_cast<double>(hist[i]),
                    static_cast<double>(max_count), 40)
       << " " << hist[i] << "\n";
  }
  for (std::size_t i = 0; i < r.watch_capacities().size(); ++i)
    os << format("  LRU %6llu lines -> miss %.1f%%\n",
                 static_cast<unsigned long long>(r.watch_capacities()[i]),
                 100.0 * r.miss_ratio(i));
}

}  // namespace

std::string render_stage(const StageProfile& s, const ReportOptions& opts) {
  std::ostringstream os;
  os << format(
      "stage %s: %.4f ms, occupancy %.2f, SIMD efficiency %s, "
      "%llu warp-instructions\n",
      s.kernel.c_str(), s.timing.time_ms, s.timing.occ.occupancy,
      pct(s.simd_efficiency()).c_str(),
      static_cast<unsigned long long>(s.issues));
  render_blocks(os, s, opts.hot_blocks);
  if (opts.show_memory && !s.memory.empty()) render_memory(os, s);
  if (opts.show_arrays) render_arrays(os, s);
  if (opts.show_reuse) render_reuse(os, s);
  return os.str();
}

std::string render_profile(const WorkloadProfile& p,
                           const ReportOptions& opts) {
  std::ostringstream os;
  os << format("== dynamic profile: %s (TC=%u BC=%u UIF=%d%s) ==\n",
               p.workload.c_str(), p.params.threads_per_block,
               p.params.block_count, p.params.unroll,
               p.params.fast_math ? " fast-math" : "");
  if (!p.measurement.valid) {
    os << "  not launchable: " << p.measurement.error << "\n";
    return os.str();
  }
  os << format("trial time %.4f ms, SIMD efficiency %s\n",
               p.measurement.trial_time_ms,
               pct(p.simd_efficiency()).c_str());
  os << format("waves %.2f, last wave fills %s of busy SMs\n",
               p.measurement.waves,
               pct(p.measurement.tail_sm_fraction).c_str());
  for (const StageProfile& s : p.stages) os << "\n" << render_stage(s, opts);
  return os.str();
}

}  // namespace gpustatic::dynamic
