#pragma once

// Dynamic kernel profiles: the measurement side of the paper's Fig. 2
// framework. A StageProfiler consumes the warp simulator's trace events
// and aggregates the three dynamic metric families named in the paper:
//
//   IC — per-instruction / per-basic-block execution counts,
//   BF — branch frequencies and divergence rates,
//   MD — memory (reuse) distance, plus coalescing and cache behavior.
//
// profile_workload() is the one-call entry point: it runs a compiled
// workload variant on the warp engine with a profiler attached and
// returns the per-stage profiles alongside the usual measurement.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "codegen/compiler.hpp"
#include "dsl/ast.hpp"
#include "dynamic/reuse.hpp"
#include "ptx/kernel.hpp"
#include "sim/counts.hpp"
#include "sim/machine.hpp"
#include "sim/runner.hpp"
#include "sim/trace.hpp"

namespace gpustatic::dynamic {

/// Execution counts of one static instruction (the IC metric).
struct InstProfile {
  std::uint64_t issues = 0;   ///< warp-level executions
  std::uint64_t lanes = 0;    ///< sum of active lanes over executions

  /// Mean active lanes per issue (SIMD width actually used).
  [[nodiscard]] double mean_lanes() const {
    return issues > 0 ? static_cast<double>(lanes) /
                            static_cast<double>(issues)
                      : 0.0;
  }
};

/// Per-basic-block aggregate, including the BF (branch frequency) metrics
/// for blocks that end in a conditional branch.
struct BlockProfile {
  std::uint64_t entries = 0;            ///< warp-level block entries
  std::uint64_t issues = 0;             ///< instructions issued from it
  std::uint64_t branch_execs = 0;       ///< terminator BRA executions
  std::uint64_t branch_divergent = 0;   ///< ... that split the warp
  double taken_fraction_sum = 0;        ///< sum of per-exec taken shares

  [[nodiscard]] double divergence_rate() const {
    return branch_execs > 0 ? static_cast<double>(branch_divergent) /
                                  static_cast<double>(branch_execs)
                            : 0.0;
  }
  [[nodiscard]] double taken_fraction() const {
    return branch_execs > 0 ? taken_fraction_sum /
                                  static_cast<double>(branch_execs)
                            : 0.0;
  }
};

/// Traffic of one static memory instruction (coalescing view).
struct MemInstProfile {
  std::int32_t bb = 0;
  std::uint32_t inst = 0;
  bool is_store = false;
  bool is_atomic = false;
  std::uint64_t ops = 0;           ///< warp-level executions
  std::uint64_t lanes = 0;         ///< participating lanes total
  std::uint64_t transactions = 0;  ///< 128B lines touched total
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t dram = 0;

  /// Transactions per warp-level operation: 1 = perfectly coalesced,
  /// up to 32 = fully scattered.
  [[nodiscard]] double transactions_per_op() const {
    return ops > 0 ? static_cast<double>(transactions) /
                         static_cast<double>(ops)
                   : 0.0;
  }
};

/// Per-workload-array traffic summary (reconstructed from line addresses).
struct ArrayTraffic {
  std::string array;
  std::uint64_t load_lines = 0;   ///< line touches by loads
  std::uint64_t store_lines = 0;  ///< line touches by stores/atomics
};

/// Everything measured about one executed stage.
struct StageProfile {
  std::string kernel;
  sim::StageTiming timing;              ///< cycles/time/counts/occupancy

  std::vector<BlockProfile> blocks;     ///< parallel to kernel.blocks
  std::vector<std::vector<InstProfile>> insts;  ///< [bb][inst]
  std::vector<MemInstProfile> memory;   ///< static memory instructions

  std::uint64_t issues = 0;             ///< total warp-instructions
  std::uint64_t lane_sum = 0;           ///< total active lanes over issues

  ReuseDistanceAnalyzer l2_stream;      ///< whole-run line stream
  std::vector<ArrayTraffic> arrays;

  /// Mean fraction of the 32 lanes doing useful work per issue.
  [[nodiscard]] double simd_efficiency() const {
    return issues > 0 ? static_cast<double>(lane_sum) /
                            (32.0 * static_cast<double>(issues))
                      : 0.0;
  }

  /// Dynamic instruction-mix counts (identical shape to the static
  /// analyzer's estimate — this is what Table VI scores against).
  [[nodiscard]] const sim::Counts& counts() const { return timing.counts; }
};

/// A profiled workload variant.
struct WorkloadProfile {
  std::string workload;
  codegen::TuningParams params;
  sim::Measurement measurement;        ///< protocol-applied timing
  std::vector<StageProfile> stages;

  [[nodiscard]] double simd_efficiency() const;
  [[nodiscard]] std::uint64_t total_issues() const;
};

/// TraceSink that builds a StageProfile for one kernel launch.
class StageProfiler final : public sim::TraceSink {
 public:
  /// `array_names` in device-region order (the workload's array order)
  /// resolves line addresses back to arrays; `watch_capacities` lists the
  /// LRU sizes (lines) for the reuse-distance miss curve.
  StageProfiler(const ptx::Kernel& kernel,
                std::vector<std::string> array_names,
                std::uint32_t line_bytes,
                std::vector<std::uint64_t> watch_capacities);

  void on_issue(const sim::IssueEvent& ev) override;
  void on_branch(const sim::BranchEvent& ev) override;
  void on_memory(const sim::MemoryEvent& ev) override;

  /// Finish: moves the accumulated profile out (profiler left empty).
  [[nodiscard]] StageProfile take(sim::StageTiming timing);

 private:
  StageProfile p_;
  std::uint32_t line_bytes_ = 128;
  /// Dense index of static memory instructions: key bb << 16 | inst.
  std::unordered_map<std::uint64_t, std::size_t> mem_index_;
};

/// Default watched LRU capacities: {16KB, 48KB, 1MB, 4MB} of 128B lines.
[[nodiscard]] std::vector<std::uint64_t> profile_default_watch();

struct ProfileOptions {
  std::vector<std::uint64_t> watch_capacities = profile_default_watch();
  sim::RunOptions run;  ///< engine forced to Warp internally
};

/// Compile-free profiling entry point: execute `lw` (all stages) on the
/// warp engine with tracing and return profiles + measurement.
[[nodiscard]] WorkloadProfile profile_workload(
    const codegen::LoweredWorkload& lw, const dsl::WorkloadDesc& desc,
    const sim::MachineModel& machine, const ProfileOptions& opts = {});

}  // namespace gpustatic::dynamic
