#pragma once

// Dynamic-based performance model (the right-hand branch of Fig. 2):
// predicts kernel cycles from *measured* dynamic instruction counts the
// same way Eq. 6 predicts from static mixes — category counts weighted by
// Table II CPI — plus the measured memory-system traffic, which static
// analysis can only approximate.
//
// The model intentionally shares its constants with the simulators
// (MachineModel), so its accuracy gap versus the static Eq. 6 predictor
// isolates exactly one variable: measured counts vs. estimated counts.
// bench/ablation_dynamic quantifies that gap; the paper's position is
// that static mixes are close enough to skip the runs, and the ablation
// reproduces where that holds (and where ex14FJ-style control flow makes
// it fray).

#include <cstdint>

#include "codegen/compiler.hpp"
#include "dynamic/profile.hpp"
#include "sim/counts.hpp"
#include "sim/machine.hpp"

namespace gpustatic::dynamic {

/// One stage's predicted cost decomposition.
struct DynamicPrediction {
  double issue_cycles = 0;   ///< per-busy-SM issue-throughput bound
  double l2_cycles = 0;      ///< whole-GPU L2 bandwidth bound
  double dram_cycles = 0;    ///< whole-GPU DRAM bandwidth bound
  double cycles = 0;         ///< max of bounds + fixed overheads
  double time_ms = 0;

  /// Which bound dominated ("issue", "l2", "dram").
  [[nodiscard]] const char* bottleneck() const;
};

/// Predict from raw dynamic counts. `busy_sms` is the number of SMs with
/// at least one block (min(SM count, grid blocks)).
[[nodiscard]] DynamicPrediction predict_from_counts(
    const sim::Counts& counts, const sim::MachineModel& machine,
    std::uint32_t busy_sms);

/// Predict one profiled stage (reads busy SMs from the launch geometry).
[[nodiscard]] DynamicPrediction predict_stage(
    const codegen::LoweredStage& stage, const StageProfile& profile,
    const sim::MachineModel& machine);

/// Sum of per-stage predictions for a profiled workload variant.
[[nodiscard]] DynamicPrediction predict_workload(
    const codegen::LoweredWorkload& lw, const WorkloadProfile& profile,
    const sim::MachineModel& machine);

}  // namespace gpustatic::dynamic
