#pragma once

// LRU reuse-distance ("memory distance", the MD metric of the paper's
// Fig. 2 dynamic-analysis box) over a cache-line reference stream.
//
// The distance of an access is the number of *distinct* lines referenced
// since the previous access to the same line (exclusive). Under that
// definition a fully associative LRU cache of capacity C lines hits
// exactly when distance < C, so one pass over the stream yields the miss
// ratio of every cache size at once.
//
// Implementation: the classic one-pass algorithm — a timestamp per line's
// most recent access plus a Fenwick tree with one set bit per live
// timestamp; the distance is the count of set bits after the line's last
// timestamp. O(log n) per access, O(distinct lines) live state.

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace gpustatic::dynamic {

/// Binary-indexed tree over timestamps; grows by power-of-two rebuilds.
class Fenwick {
 public:
  explicit Fenwick(std::size_t capacity = 64) : tree_(capacity + 1, 0) {}

  void add(std::size_t i, std::int64_t delta);
  /// Sum of entries [0, i].
  [[nodiscard]] std::uint64_t prefix(std::size_t i) const;
  /// Sum of entries [a, b]; 0 when a > b.
  [[nodiscard]] std::uint64_t range(std::size_t a, std::size_t b) const;
  [[nodiscard]] std::size_t capacity() const { return tree_.size() - 1; }

 private:
  std::vector<std::uint64_t> tree_;  // 1-based internally
};

/// Sentinel distance for a line's first-ever access.
inline constexpr std::uint64_t kColdAccess = ~0ull;

class ReuseDistanceAnalyzer {
 public:
  /// `watch_capacities` is a list of LRU cache sizes (in lines) whose
  /// hit counts are tracked exactly while streaming.
  explicit ReuseDistanceAnalyzer(
      std::vector<std::uint64_t> watch_capacities = {});

  /// Record one reference and return its reuse distance
  /// (kColdAccess for a first touch).
  std::uint64_t access(std::uint64_t line);

  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] std::uint64_t cold_misses() const { return cold_; }
  [[nodiscard]] std::uint64_t distinct_lines() const { return last_.size(); }

  /// Bucketed distance distribution: bucket 0 holds distance 0 (immediate
  /// reuse), bucket k >= 1 holds distances in [2^(k-1), 2^k). Cold
  /// accesses are excluded.
  [[nodiscard]] const std::vector<std::uint64_t>& log2_histogram() const {
    return hist_;
  }

  /// Mean reuse distance over non-cold accesses (0 if none).
  [[nodiscard]] double mean_distance() const;

  /// Miss ratio of an LRU cache with the i-th watched capacity
  /// (cold misses count as misses).
  [[nodiscard]] double miss_ratio(std::size_t watch_index) const;
  [[nodiscard]] const std::vector<std::uint64_t>& watch_capacities() const {
    return watch_;
  }

  /// Merge another analyzer's *distribution* (histograms, watch hits,
  /// access totals). Line identity is not merged — use this to combine
  /// per-SM streams into a report, not to continue analysis.
  void merge_distribution(const ReuseDistanceAnalyzer& other);

 private:
  void grow();

  std::vector<std::uint64_t> watch_;
  std::vector<std::uint64_t> watch_hits_;
  std::unordered_map<std::uint64_t, std::uint64_t> last_;  ///< line -> time
  Fenwick live_;
  std::uint64_t time_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t cold_ = 0;
  double distance_sum_ = 0;
  std::vector<std::uint64_t> hist_;
};

}  // namespace gpustatic::dynamic
