#include "dynamic/reuse.hpp"

#include <algorithm>
#include <bit>

namespace gpustatic::dynamic {

void Fenwick::add(std::size_t i, std::int64_t delta) {
  for (std::size_t j = i + 1; j < tree_.size(); j += j & (~j + 1))
    tree_[j] += static_cast<std::uint64_t>(delta);
}

std::uint64_t Fenwick::prefix(std::size_t i) const {
  std::uint64_t s = 0;
  for (std::size_t j = std::min(i + 1, tree_.size() - 1); j > 0;
       j -= j & (~j + 1))
    s += tree_[j];
  return s;
}

std::uint64_t Fenwick::range(std::size_t a, std::size_t b) const {
  if (a > b) return 0;
  const std::uint64_t hi = prefix(b);
  const std::uint64_t lo = a == 0 ? 0 : prefix(a - 1);
  return hi - lo;
}

ReuseDistanceAnalyzer::ReuseDistanceAnalyzer(
    std::vector<std::uint64_t> watch_capacities)
    : watch_(std::move(watch_capacities)),
      watch_hits_(watch_.size(), 0),
      hist_(64, 0) {}

void ReuseDistanceAnalyzer::grow() {
  // Rebuild a tree twice the size with one set bit per live timestamp.
  Fenwick bigger(live_.capacity() * 2);
  for (const auto& [line, t] : last_)
    bigger.add(static_cast<std::size_t>(t), 1);
  live_ = std::move(bigger);
}

std::uint64_t ReuseDistanceAnalyzer::access(std::uint64_t line) {
  ++accesses_;
  if (time_ >= live_.capacity()) grow();

  std::uint64_t distance = kColdAccess;
  const auto it = last_.find(line);
  if (it == last_.end()) {
    ++cold_;
  } else {
    // Distinct lines touched strictly after the previous access: exactly
    // the live timestamps in (prev, now).
    const auto prev = static_cast<std::size_t>(it->second);
    distance = time_ > 0 ? live_.range(prev + 1, time_ - 1) : 0;
    live_.add(prev, -1);

    const std::size_t bucket =
        distance == 0
            ? 0
            : static_cast<std::size_t>(std::bit_width(distance));
    hist_[std::min(bucket, hist_.size() - 1)] += 1;
    distance_sum_ += static_cast<double>(distance);
    for (std::size_t i = 0; i < watch_.size(); ++i)
      if (distance < watch_[i]) watch_hits_[i] += 1;
  }

  live_.add(static_cast<std::size_t>(time_), 1);
  last_[line] = time_;
  ++time_;
  return distance;
}

double ReuseDistanceAnalyzer::mean_distance() const {
  const std::uint64_t reuses = accesses_ - cold_;
  return reuses > 0 ? distance_sum_ / static_cast<double>(reuses) : 0.0;
}

double ReuseDistanceAnalyzer::miss_ratio(std::size_t watch_index) const {
  if (accesses_ == 0) return 0.0;
  const std::uint64_t hits = watch_hits_.at(watch_index);
  return static_cast<double>(accesses_ - hits) /
         static_cast<double>(accesses_);
}

void ReuseDistanceAnalyzer::merge_distribution(
    const ReuseDistanceAnalyzer& other) {
  accesses_ += other.accesses_;
  cold_ += other.cold_;
  distance_sum_ += other.distance_sum_;
  for (std::size_t i = 0; i < hist_.size() && i < other.hist_.size(); ++i)
    hist_[i] += other.hist_[i];
  for (std::size_t i = 0;
       i < watch_hits_.size() && i < other.watch_hits_.size(); ++i) {
    // Only meaningful when both analyzers watch the same capacities, which
    // profile_workload guarantees.
    watch_hits_[i] += other.watch_hits_[i];
  }
}

}  // namespace gpustatic::dynamic
