#pragma once

// Human-readable rendering of dynamic profiles: the `nvprof`-style view a
// developer reads, and what the CLI's `profile` subcommand prints. Pure
// formatting — all numbers come from dynamic::profile_workload.

#include <string>

#include "dynamic/profile.hpp"

namespace gpustatic::dynamic {

struct ReportOptions {
  std::size_t hot_blocks = 6;      ///< top-N basic blocks by issues
  bool show_memory = true;         ///< per-memory-instruction table
  bool show_arrays = true;         ///< per-array traffic table
  bool show_reuse = true;          ///< reuse-distance histogram
};

/// Render one stage's profile.
[[nodiscard]] std::string render_stage(const StageProfile& stage,
                                       const ReportOptions& opts = {});

/// Render a whole profiled workload (header + every stage).
[[nodiscard]] std::string render_profile(const WorkloadProfile& profile,
                                         const ReportOptions& opts = {});

}  // namespace gpustatic::dynamic
