#include "dynamic/model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gpustatic::dynamic {

const char* DynamicPrediction::bottleneck() const {
  if (dram_cycles >= issue_cycles && dram_cycles >= l2_cycles)
    return "dram";
  if (l2_cycles >= issue_cycles) return "l2";
  return "issue";
}

DynamicPrediction predict_from_counts(const sim::Counts& counts,
                                      const sim::MachineModel& machine,
                                      std::uint32_t busy_sms) {
  if (busy_sms == 0)
    throw Error("predict_from_counts: busy_sms must be positive");

  DynamicPrediction p;
  double total_issue = 0;
  for (std::size_t c = 0; c < arch::kNumOpCategories; ++c)
    total_issue +=
        counts.per_category[c] *
        machine.issue_cycles(static_cast<arch::OpCategory>(c));
  p.issue_cycles = total_issue / static_cast<double>(busy_sms);
  p.l2_cycles = counts.mem_transactions * machine.l2_txn_cycles();
  p.dram_cycles = counts.dram_transactions * machine.dram_txn_cycles();
  p.cycles = std::max({p.issue_cycles, p.l2_cycles, p.dram_cycles}) +
             machine.kernel_launch_overhead +
             machine.block_dispatch_overhead;
  p.time_ms = machine.cycles_to_ms(p.cycles);
  return p;
}

DynamicPrediction predict_stage(const codegen::LoweredStage& stage,
                                const StageProfile& profile,
                                const sim::MachineModel& machine) {
  const std::uint32_t busy =
      std::min<std::uint32_t>(machine.gpu->multiprocessors,
                              stage.launch.grid_blocks);
  return predict_from_counts(profile.counts(), machine,
                             std::max(1u, busy));
}

DynamicPrediction predict_workload(const codegen::LoweredWorkload& lw,
                                   const WorkloadProfile& profile,
                                   const sim::MachineModel& machine) {
  DynamicPrediction sum;
  const std::size_t n =
      std::min(lw.stages.size(), profile.stages.size());
  for (std::size_t i = 0; i < n; ++i) {
    const DynamicPrediction p =
        predict_stage(lw.stages[i], profile.stages[i], machine);
    sum.issue_cycles += p.issue_cycles;
    sum.l2_cycles += p.l2_cycles;
    sum.dram_cycles += p.dram_cycles;
    sum.cycles += p.cycles;
    sum.time_ms += p.time_ms;
  }
  return sum;
}

}  // namespace gpustatic::dynamic
