#include "learn/evaluator.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "ml/features.hpp"

namespace gpustatic::learn {

LearnedEvaluator::LearnedEvaluator(
    std::shared_ptr<const CostModel> model,
    std::shared_ptr<codegen::CompilationCache> cache)
    : model_(std::move(model)), cache_(std::move(cache)) {
  if (model_ == nullptr || !model_->forest.fitted())
    throw Error("learned evaluator: no fitted model");
  if (cache_ == nullptr)
    throw Error("learned evaluator: no compilation cache");
  if (model_->features != ml::feature_names())
    throw Error(
        "learned evaluator: model feature schema does not match this "
        "build (" +
        std::to_string(model_->features.size()) + " vs " +
        std::to_string(ml::feature_names().size()) +
        " features) — retrain with `gpustatic train`");
}

CostModel::Score LearnedEvaluator::score(
    const codegen::TuningParams& params) {
  // Canonical lowering per codegen key; the point's own params supply
  // the launch-shape features (see ml/features.hpp).
  return model_->score(
      ml::extract_features(*cache_->lower(params), cache_->gpu(), params));
}

double LearnedEvaluator::evaluate(const codegen::TuningParams& params) {
  try {
    return score(params).cost_ms;
  } catch (const ConfigError&) {
    return tuner::kInvalid;
  }
}

tuner::Stage1Ranker make_stage1_ranker(
    std::shared_ptr<const CostModel> model, LearnedRankerOptions opts) {
  return [model = std::move(model), opts](
             const std::vector<tuner::RankedVariant>& shortlist,
             codegen::CompilationCache& cache)
             -> std::optional<std::vector<double>> {
    if (model == nullptr || !model->forest.fitted()) return std::nullopt;
    if (model->features != ml::feature_names()) return std::nullopt;
    if (shortlist.empty()) return std::nullopt;
    try {
      std::vector<double> scores;
      scores.reserve(shortlist.size());
      std::size_t confident = 0;
      for (const tuner::RankedVariant& v : shortlist) {
        const CostModel::Score s = model->score(ml::extract_features(
            *cache.lower(v.params), cache.gpu(), v.params));
        if (!std::isfinite(s.cost_ms)) return std::nullopt;
        if (s.variance <= opts.max_variance) ++confident;
        scores.push_back(s.cost_ms);
      }
      // All-or-nothing: a partially-trusted ranking would interleave
      // model and analytic opinions with incomparable scales, so below
      // the confidence bar the whole shortlist keeps its analytic order.
      const double fraction = static_cast<double>(confident) /
                              static_cast<double>(shortlist.size());
      if (fraction < opts.min_confident_fraction) return std::nullopt;
      return scores;
    } catch (const Error&) {
      // Decline, don't fail the search: the analytic ranking is always
      // available and correct.
      return std::nullopt;
    }
  };
}

}  // namespace gpustatic::learn
