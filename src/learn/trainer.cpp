#include "learn/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/strings.hpp"
#include "common/table.hpp"

namespace gpustatic::learn {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Ranks with average ties (1-based; the offset cancels in Pearson).
std::vector<double> average_ranks(const std::vector<double>& values) {
  std::vector<std::size_t> order(values.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (values[a] != values[b]) return values[a] < values[b];
    return a < b;
  });
  std::vector<double> ranks(values.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() &&
           values[order[j + 1]] == values[order[i]])
      ++j;
    const double rank = (static_cast<double>(i) + static_cast<double>(j)) /
                            2.0 +
                        1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

/// Regret of trusting the first `k` entries of `by_prediction` (indexes
/// into `measured`): best measured among them vs the overall best.
double regret_at(const std::vector<std::size_t>& by_prediction,
                 const std::vector<double>& measured, std::size_t k) {
  if (by_prediction.empty()) return kNaN;
  const double best = *std::min_element(measured.begin(), measured.end());
  double picked = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < std::min(k, by_prediction.size()); ++i)
    picked = std::min(picked, measured[by_prediction[i]]);
  if (best <= 0.0) return picked <= best ? 0.0 : kNaN;
  return (picked - best) / best;
}

double mean_defined(const std::vector<double>& values) {
  double sum = 0;
  std::size_t n = 0;
  for (const double v : values)
    if (std::isfinite(v)) {
      sum += v;
      ++n;
    }
  return n == 0 ? kNaN : sum / static_cast<double>(n);
}

std::string metric_cell(double v) {
  return std::isfinite(v) ? str::format("%.4f", v) : std::string("-");
}

void json_number(std::ostream& os, double v) {
  if (std::isfinite(v))
    os << str::format("%.17g", v);
  else
    os << "null";
}

}  // namespace

double spearman_rank_correlation(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return kNaN;
  const std::vector<double> ra = average_ranks(a);
  const std::vector<double> rb = average_ranks(b);
  const double n = static_cast<double>(a.size());
  double ma = 0;
  double mb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += ra[i];
    mb += rb[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0;
  double va = 0;
  double vb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = ra[i] - ma;
    const double db = rb[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return kNaN;  // a constant side has no rank
  return cov / std::sqrt(va * vb);
}

TrainReport train_cost_model(const tuner::TuningStore& store,
                             const TrainOptions& opts,
                             std::vector<std::string>* warnings) {
  TrainReport report;
  report.store_records = store.size();

  const Corpus corpus = build_corpus(store, opts.corpus, warnings);
  report.rows = corpus.rows.size();
  report.skipped = corpus.skipped();

  const std::vector<std::size_t> train = corpus.train_indices();
  const std::vector<std::size_t> validation = corpus.validation_indices();
  report.train_rows = train.size();
  report.validation_rows = validation.size();

  ml::RegressionForestOptions fopts = opts.forest;
  fopts.seed = opts.corpus.seed;  // one seed governs split + bagging
  report.model.forest.fit(corpus.matrix(train), corpus.targets(train),
                          fopts);
  report.model.features = corpus.feature_names;
  report.model.meta.seed = opts.corpus.seed;
  report.model.meta.records = train.size();
  report.model.meta.groups = corpus.groups.size();

  std::vector<double> spearmans;
  std::vector<double> top1s;
  std::vector<double> topks;
  for (const CorpusGroup& g : corpus.groups) {
    GroupMetrics m;
    m.kernel = g.kernel;
    m.gpu = g.gpu;
    m.train_rows = g.train.size();
    m.validation_rows = g.validation.size();
    m.spearman = kNaN;
    m.top1_regret = kNaN;
    m.topk_regret = kNaN;
    if (!g.validation.empty()) {
      std::vector<double> predicted;
      std::vector<double> measured;
      predicted.reserve(g.validation.size());
      measured.reserve(g.validation.size());
      for (const std::size_t i : g.validation) {
        predicted.push_back(
            report.model.forest.predict(corpus.rows[i].features).mean);
        measured.push_back(corpus.rows[i].measured_ms);
      }
      m.spearman = spearman_rank_correlation(predicted, measured);
      std::vector<std::size_t> by_prediction(predicted.size());
      for (std::size_t i = 0; i < by_prediction.size(); ++i)
        by_prediction[i] = i;
      std::sort(by_prediction.begin(), by_prediction.end(),
                [&](std::size_t a, std::size_t b) {
                  if (predicted[a] != predicted[b])
                    return predicted[a] < predicted[b];
                  return a < b;
                });
      m.top1_regret = regret_at(by_prediction, measured, 1);
      m.topk_regret =
          regret_at(by_prediction, measured, std::max<std::size_t>(
                                                 1, opts.top_k));
    }
    spearmans.push_back(m.spearman);
    top1s.push_back(m.top1_regret);
    topks.push_back(m.topk_regret);
    report.groups.push_back(std::move(m));
  }
  report.mean_spearman = mean_defined(spearmans);
  report.mean_top1_regret = mean_defined(top1s);
  report.mean_topk_regret = mean_defined(topks);
  return report;
}

std::string TrainReport::to_table() const {
  TextTable t({"Kernel", "GPU", "train", "val", "Spearman", "top-1 regret",
               "top-k regret"});
  for (const GroupMetrics& g : groups)
    t.add_row({g.kernel, g.gpu, std::to_string(g.train_rows),
               std::to_string(g.validation_rows), metric_cell(g.spearman),
               metric_cell(g.top1_regret), metric_cell(g.topk_regret)});
  std::ostringstream os;
  os << t.render();
  os << str::format(
      "trained on %zu rows (%zu held out) from %zu store records "
      "(%zu skipped), %zu groups\n",
      train_rows, validation_rows, store_records, skipped, groups.size());
  os << "mean held-out Spearman " << metric_cell(mean_spearman)
     << ", top-1 regret " << metric_cell(mean_top1_regret)
     << ", top-k regret " << metric_cell(mean_topk_regret) << "\n";
  return os.str();
}

std::string TrainReport::to_json() const {
  // Hand-rolled: the report is flat and every name here is a
  // single-token kernel/GPU identifier (enforced by TuningStore::put),
  // so no escaping is required.
  std::ostringstream os;
  os << "{\"store_records\":" << store_records << ",\"rows\":" << rows
     << ",\"train_rows\":" << train_rows
     << ",\"validation_rows\":" << validation_rows
     << ",\"skipped\":" << skipped
     << ",\"trees\":" << model.forest.size()
     << ",\"seed\":" << model.meta.seed << ",\"mean_spearman\":";
  json_number(os, mean_spearman);
  os << ",\"mean_top1_regret\":";
  json_number(os, mean_top1_regret);
  os << ",\"mean_topk_regret\":";
  json_number(os, mean_topk_regret);
  os << ",\"groups\":[";
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const GroupMetrics& g = groups[i];
    os << (i ? "," : "") << "{\"kernel\":\"" << g.kernel << "\",\"gpu\":\""
       << g.gpu << "\",\"train\":" << g.train_rows
       << ",\"validation\":" << g.validation_rows << ",\"spearman\":";
    json_number(os, g.spearman);
    os << ",\"top1_regret\":";
    json_number(os, g.top1_regret);
    os << ",\"topk_regret\":";
    json_number(os, g.topk_regret);
    os << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace gpustatic::learn
