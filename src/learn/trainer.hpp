#pragma once

// Trainer: store -> corpus -> fitted regression-forest cost model, with
// per-group rank metrics on the held-out rows. Rank metrics — not MSE —
// because the model's job downstream is ordering candidates for the
// hybrid dial: Spearman correlation says whether the model sorts a
// group's variants like the simulator does, and top-k regret says how
// much measured time is lost by trusting the model's top picks.
// Everything is deterministic under a fixed seed: same store + options
// -> byte-identical model file and metrics report.

#include <cstdint>
#include <string>
#include <vector>

#include "learn/corpus.hpp"
#include "learn/model.hpp"
#include "ml/regression.hpp"

namespace gpustatic::learn {

struct TrainOptions {
  CorpusOptions corpus;
  /// Forest shape. The trainer overwrites forest.seed with corpus.seed
  /// so one --seed governs the whole run (split + bagging).
  ml::RegressionForestOptions forest;
  /// k for the top-k regret metric (clamped to the group's size).
  std::size_t top_k = 3;
};

/// Held-out ranking quality of one (kernel, gpu) group.
struct GroupMetrics {
  std::string kernel;
  std::string gpu;
  std::size_t train_rows = 0;
  std::size_t validation_rows = 0;
  /// Spearman rank correlation between predicted and measured cost over
  /// the group's validation rows; NaN when fewer than 2 rows held out.
  double spearman = 0;
  /// Relative measured-time loss of trusting the model's #1 pick:
  /// (measured(top prediction) - best measured) / best measured.
  double top1_regret = 0;
  /// Same, best measured variant inside the model's top-k predictions.
  double topk_regret = 0;
};

struct TrainReport {
  CostModel model;
  std::vector<GroupMetrics> groups;
  std::size_t store_records = 0;  ///< records in the input store
  std::size_t rows = 0;           ///< usable joined rows
  std::size_t train_rows = 0;
  std::size_t validation_rows = 0;
  std::size_t skipped = 0;        ///< records the join excluded
  /// Means over groups with defined metrics; NaN when none have any.
  double mean_spearman = 0;
  double mean_top1_regret = 0;
  double mean_topk_regret = 0;

  /// Human-readable metrics table (one row per group + summary lines).
  [[nodiscard]] std::string to_table() const;
  /// Machine-readable single-object JSON rendering of the same.
  [[nodiscard]] std::string to_json() const;
};

/// Build the corpus from `store` and fit the cost model. Throws Error
/// on not-enough-data (see build_corpus) or invalid options; join
/// warnings land in `warnings` when given.
[[nodiscard]] TrainReport train_cost_model(
    const tuner::TuningStore& store, const TrainOptions& opts = {},
    std::vector<std::string>* warnings = nullptr);

/// Spearman rank correlation of two aligned samples (average ranks on
/// ties). NaN when sizes differ, n < 2, or either side is constant.
[[nodiscard]] double spearman_rank_correlation(
    const std::vector<double>& a, const std::vector<double>& b);

}  // namespace gpustatic::learn
