#pragma once

// The deployed artifact of src/learn: a trained regression-forest cost
// model plus the metadata a consumer needs to trust it (format version,
// training seed, record/group counts, the exact feature schema it was
// fit on). The on-disk form follows the TuningStore's text-format
// conventions — versioned magic line, one record per line, %.17g floats
// for lossless round trips, atomic saves via common/io.hpp:
//
//   gpustatic-model v1
//   meta seed=<u64> records=<n> groups=<n> target=log1p_ms
//        features=<k> trees=<t>
//   feature <index> <name>
//   tree <index> nodes=<n>
//   node feature=<i> threshold=<f> left=<i> right=<i> value=<f> samples=<n>
//   end
//
// (wrapped here for readability; every record is one line). Unlike the
// store, model lines are not independent — a tree missing nodes is not
// a smaller model, it is a broken one — so a partial read cannot be
// repaired by dropping the tail. Instead the format ends with an
// explicit `end` terminator: a file that stops early (a writer killed
// mid-save on a filesystem without atomic rename) fails with a clear
// "truncated" error rather than loading a junk model, and the lenient
// loader turns exactly that class of failure into a warning + "no
// model" so a daemon can still start. Content after `end` is skipped
// with a warning, mirroring the store's recoverable-tail stance.
//
// Round-trip guarantee: parse(serialize()) reproduces the model and
// serialize() of the reparse is byte-identical (pinned by tests).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ml/regression.hpp"

namespace gpustatic::learn {

inline constexpr int kModelFormatVersion = 1;

/// Provenance carried inside the model file.
struct ModelMeta {
  int version = kModelFormatVersion;  ///< file-format version
  std::uint64_t seed = 0;             ///< training seed (corpus + forest)
  std::uint64_t records = 0;          ///< rows the forest was fit on
  std::uint64_t groups = 0;           ///< (kernel, gpu) corpus groups
  std::string target = "log1p_ms";    ///< regression target encoding
};

/// A trained cost model: forest + schema + provenance.
class CostModel {
 public:
  ModelMeta meta;
  /// Feature schema the forest was fit on, in column order. Consumers
  /// compare this against ml::feature_names() before trusting scores —
  /// a model trained on an older schema must decline, not mis-score.
  std::vector<std::string> features;
  ml::RegressionForest forest;

  /// One scored point: the predicted cost back in milliseconds (the
  /// target is log1p(ms), so the mean is expm1'd) plus the per-tree
  /// variance in log-target units — the confidence signal.
  struct Score {
    double cost_ms = 0;
    double variance = 0;
  };
  [[nodiscard]] Score score(const std::vector<double>& feature_row) const;

  /// Text serialization (format above); parse() is the inverse.
  [[nodiscard]] std::string serialize() const;

  /// Parse a serialized model. Throws ParseError on malformed lines,
  /// a bad magic line, or a file that ends before its `end` terminator
  /// (truncation). Content after `end` is skipped and described in
  /// `warnings` when given.
  [[nodiscard]] static CostModel parse(
      std::string_view text, std::vector<std::string>* warnings = nullptr);

  /// Load from a file; a missing file or corrupt content throws.
  [[nodiscard]] static CostModel load(
      const std::string& path,
      std::vector<std::string>* warnings = nullptr);

  /// Lenient load for daemon startup: a missing file returns nullopt
  /// silently; an unreadable/corrupt/truncated file returns nullopt and
  /// describes why in `warnings`. Never throws.
  [[nodiscard]] static std::optional<CostModel> load_lenient(
      const std::string& path, std::vector<std::string>* warnings);

  /// Atomic rewrite of `path` (temp sibling + rename; common/io.hpp).
  void save(const std::string& path) const;
};

}  // namespace gpustatic::learn
