#pragma once

// The deployed side of the learned cost model: an Evaluator backend
// that scores variants from the model (zero program runs, like the
// analytic backend, but trained on the fleet's own measurements), and
// the hybrid stage-1 ranker hook that re-orders the Eq. 6 shortlist
// when — and only when — the model is present, schema-compatible, and
// confident. The confidence signal is the forest's per-tree variance:
// trees that disagree about a point have never seen its neighborhood,
// so their mean is noise and the ranker declines, leaving the analytic
// ranking byte-identical to a model-less run.

#include <memory>
#include <string>
#include <vector>

#include "codegen/cache.hpp"
#include "learn/model.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/hybrid.hpp"

namespace gpustatic::learn {

struct LearnedRankerOptions {
  /// Per-tree prediction variance (log-target units) above which one
  /// point counts as low-confidence.
  double max_variance = 0.25;
  /// Minimum fraction of confident shortlist points for the ranker to
  /// take the ranking; below it the whole shortlist falls back to the
  /// analytic order (the decision is all-or-nothing per search, never
  /// per point, so fallback output is exactly the analytic output).
  double min_confident_fraction = 0.9;
};

/// Model-backed evaluation backend, registered alongside "sim" and
/// "analytic". Scores are predicted milliseconds; a variant that fails
/// validation/lowering scores kInvalid, exactly like the other
/// backends. Thread-compatible (the underlying cache is thread-safe;
/// the model is immutable).
class LearnedEvaluator final : public tuner::Evaluator {
 public:
  /// Throws Error when `model` is null or its forest is unfitted.
  LearnedEvaluator(std::shared_ptr<const CostModel> model,
                   std::shared_ptr<codegen::CompilationCache> cache);

  [[nodiscard]] std::string name() const override { return "learned"; }
  double evaluate(const codegen::TuningParams& params) override;

  /// Full scored prediction (cost + confidence) for one variant;
  /// throws ConfigError for unlaunchable configurations.
  [[nodiscard]] CostModel::Score score(
      const codegen::TuningParams& params);

  [[nodiscard]] const CostModel& model() const { return *model_; }

 private:
  std::shared_ptr<const CostModel> model_;
  std::shared_ptr<codegen::CompilationCache> cache_;
};

/// Build a hybrid stage-1 ranker over `model` (see tuner::Stage1Ranker).
/// The returned ranker declines — returns nullopt, analytic fallback —
/// when `model` is null, unfitted, trained on a different feature
/// schema, or low-confidence on this shortlist per `opts`; it never
/// throws. A null model is accepted so callers can install the ranker
/// unconditionally and let presence be decided per search.
[[nodiscard]] tuner::Stage1Ranker make_stage1_ranker(
    std::shared_ptr<const CostModel> model, LearnedRankerOptions opts = {});

}  // namespace gpustatic::learn

namespace gpustatic::tuner {
/// The learned backend under its tuner-layer name, next to
/// SimEvaluator / AnalyticEvaluator.
using LearnedEvaluator = learn::LearnedEvaluator;
}  // namespace gpustatic::tuner
