#include "learn/model.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/io.hpp"
#include "common/strings.hpp"
#include "tuner/measurement.hpp"

namespace gpustatic::learn {

namespace {

constexpr std::string_view kMagic = "gpustatic-model v1";

std::uint64_t parse_u64(std::string_view value, std::size_t line) {
  try {
    std::size_t used = 0;
    const std::uint64_t out = std::stoull(std::string(value), &used);
    if (used != value.size()) throw std::invalid_argument("");
    return out;
  } catch (const std::exception&) {
    throw ParseError("model: bad integer '" + std::string(value) + "'",
                     line);
  }
}

std::int64_t parse_i64(std::string_view value, std::size_t line) {
  try {
    std::size_t used = 0;
    const std::int64_t out = std::stoll(std::string(value), &used);
    if (used != value.size()) throw std::invalid_argument("");
    return out;
  } catch (const std::exception&) {
    throw ParseError("model: bad integer '" + std::string(value) + "'",
                     line);
  }
}

double parse_double(std::string_view value, std::size_t line) {
  const std::string token(value);
  char* end = nullptr;
  const double out = std::strtod(token.c_str(), &end);
  if (token.empty() || end != token.c_str() + token.size())
    throw ParseError("model: bad number '" + token + "'", line);
  return out;
}

}  // namespace

CostModel::Score CostModel::score(
    const std::vector<double>& feature_row) const {
  const ml::RegressionForest::Prediction p = forest.predict(feature_row);
  Score s;
  // The target is log1p(measured_ms); invert it, clamped at zero so a
  // slightly-negative ensemble mean never yields a negative cost.
  s.cost_ms = std::max(0.0, std::expm1(p.mean));
  s.variance = p.variance;
  return s;
}

std::string CostModel::serialize() const {
  std::ostringstream os;
  os << kMagic << "\n";
  os << "meta seed=" << meta.seed << " records=" << meta.records
     << " groups=" << meta.groups << " target=" << meta.target
     << " features=" << features.size() << " trees=" << forest.size()
     << "\n";
  for (std::size_t i = 0; i < features.size(); ++i)
    os << "feature " << i << " " << features[i] << "\n";
  for (std::size_t t = 0; t < forest.size(); ++t) {
    const auto& nodes = forest.trees()[t].nodes();
    os << "tree " << t << " nodes=" << nodes.size() << "\n";
    for (const ml::RegressionTree::Node& n : nodes) {
      os << "node feature=" << n.feature
         << str::format(" threshold=%.17g", n.threshold)
         << " left=" << n.left << " right=" << n.right
         << str::format(" value=%.17g", n.value)
         << " samples=" << n.samples << "\n";
    }
  }
  os << "end\n";
  return os.str();
}

CostModel CostModel::parse(std::string_view text,
                           std::vector<std::string>* warnings) {
  CostModel model;
  model.features.clear();

  std::istringstream is{std::string(text)};
  std::string line;
  std::size_t line_no = 0;

  // Parser state: how many schema/tree/node records are still owed.
  bool saw_magic = false;
  bool saw_meta = false;
  bool saw_end = false;
  std::uint64_t features_expected = 0;
  std::uint64_t trees_expected = 0;
  std::vector<ml::RegressionTree> trees;
  std::vector<ml::RegressionTree::Node> nodes;  ///< current tree's nodes
  std::uint64_t nodes_expected = 0;
  bool in_tree = false;

  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view trimmed = str::trim(line);
    if (trimmed.empty()) continue;

    if (saw_end) {
      // The model is complete; anything after `end` is a recoverable
      // tail (mirrors the store's truncated-append stance).
      if (warnings != nullptr)
        warnings->push_back("model: skipped trailing content after 'end' "
                            "(line " +
                            std::to_string(line_no) + ")");
      break;
    }
    if (!saw_magic) {
      if (trimmed != kMagic)
        throw ParseError("model: bad magic line (want '" +
                             std::string(kMagic) + "')",
                         line_no);
      saw_magic = true;
      continue;
    }

    const auto fields = str::split_ws(trimmed);
    const std::string& kind = fields[0];

    if (kind == "meta") {
      if (saw_meta) throw ParseError("model: duplicate meta line", line_no);
      for (std::size_t i = 1; i < fields.size(); ++i) {
        const auto [key, value] = tuner::split_field(fields[i], line_no);
        if (key == "seed") {
          model.meta.seed = parse_u64(value, line_no);
        } else if (key == "records") {
          model.meta.records = parse_u64(value, line_no);
        } else if (key == "groups") {
          model.meta.groups = parse_u64(value, line_no);
        } else if (key == "target") {
          model.meta.target = std::string(value);
        } else if (key == "features") {
          features_expected = parse_u64(value, line_no);
        } else if (key == "trees") {
          trees_expected = parse_u64(value, line_no);
        } else {
          throw ParseError(
              "model: unknown meta field '" + std::string(key) + "'",
              line_no);
        }
      }
      if (features_expected == 0 || trees_expected == 0)
        throw ParseError("model: meta needs features > 0 and trees > 0",
                         line_no);
      saw_meta = true;
      continue;
    }
    if (!saw_meta)
      throw ParseError("model: expected meta line before '" + kind + "'",
                       line_no);

    if (kind == "feature") {
      if (fields.size() != 3)
        throw ParseError("model: feature line needs '<index> <name>'",
                         line_no);
      if (model.features.size() >= features_expected)
        throw ParseError("model: more feature lines than meta declared",
                         line_no);
      const std::uint64_t index = parse_u64(fields[1], line_no);
      if (index != model.features.size())
        throw ParseError("model: feature index " + fields[1] +
                             " out of order (expected " +
                             std::to_string(model.features.size()) + ")",
                         line_no);
      model.features.push_back(fields[2]);
      continue;
    }

    if (kind == "tree") {
      if (model.features.size() != features_expected)
        throw ParseError("model: tree before full feature schema",
                         line_no);
      if (in_tree)
        throw ParseError("model: tree " + std::to_string(trees.size()) +
                             " is missing nodes",
                         line_no);
      if (fields.size() != 3)
        throw ParseError("model: tree line needs '<index> nodes=<n>'",
                         line_no);
      if (trees.size() >= trees_expected)
        throw ParseError("model: more tree lines than meta declared",
                         line_no);
      const std::uint64_t index = parse_u64(fields[1], line_no);
      if (index != trees.size())
        throw ParseError("model: tree index out of order", line_no);
      const auto [key, value] = tuner::split_field(fields[2], line_no);
      if (key != "nodes")
        throw ParseError("model: tree line needs 'nodes=<n>'", line_no);
      nodes_expected = parse_u64(value, line_no);
      if (nodes_expected == 0)
        throw ParseError("model: tree declares zero nodes", line_no);
      nodes.clear();
      in_tree = true;
      continue;
    }

    if (kind == "node") {
      if (!in_tree)
        throw ParseError("model: node line outside a tree", line_no);
      ml::RegressionTree::Node n;
      for (std::size_t i = 1; i < fields.size(); ++i) {
        const auto [key, value] = tuner::split_field(fields[i], line_no);
        if (key == "feature") {
          n.feature = static_cast<int>(parse_i64(value, line_no));
        } else if (key == "threshold") {
          n.threshold = parse_double(value, line_no);
        } else if (key == "left") {
          n.left = static_cast<std::int32_t>(parse_i64(value, line_no));
        } else if (key == "right") {
          n.right = static_cast<std::int32_t>(parse_i64(value, line_no));
        } else if (key == "value") {
          n.value = parse_double(value, line_no);
        } else if (key == "samples") {
          n.samples = static_cast<std::size_t>(parse_u64(value, line_no));
        } else {
          throw ParseError(
              "model: unknown node field '" + std::string(key) + "'",
              line_no);
        }
      }
      nodes.push_back(n);
      if (nodes.size() == nodes_expected) {
        try {
          trees.push_back(ml::RegressionTree::from_nodes(std::move(nodes)));
        } catch (const Error& e) {
          throw ParseError(std::string("model: ") + e.what(), line_no);
        }
        nodes = {};
        in_tree = false;
      }
      continue;
    }

    if (kind == "end") {
      if (in_tree || trees.size() != trees_expected)
        throw ParseError("model: 'end' before all declared trees",
                         line_no);
      saw_end = true;
      continue;
    }

    throw ParseError("model: unknown record '" + kind + "'", line_no);
  }

  if (!saw_magic) throw ParseError("model: empty input", 1);
  if (!saw_end)
    throw ParseError(
        "model: file truncated (missing 'end' terminator after line " +
            std::to_string(line_no) + ")",
        line_no == 0 ? 1 : line_no);

  model.forest = ml::RegressionForest::from_trees(std::move(trees));
  return model;
}

CostModel CostModel::load(const std::string& path,
                          std::vector<std::string>* warnings) {
  const std::optional<std::string> text = io::read_file_if_exists(path);
  if (!text) throw Error("model: cannot read '" + path + "'");
  return parse(*text, warnings);
}

std::optional<CostModel> CostModel::load_lenient(
    const std::string& path, std::vector<std::string>* warnings) {
  try {
    failpoint::check("learn.model_load");
    const std::optional<std::string> text = io::read_file_if_exists(path);
    if (!text) return std::nullopt;  // no model yet: a normal cold start
    return parse(*text, warnings);
  } catch (const Error& e) {
    // Degraded mode, not a failure: the caller runs without a model and
    // search falls back to the analytic stage-1 order. The warning is
    // the only trace, so it must always be recorded.
    if (warnings != nullptr)
      warnings->push_back("model: ignoring unusable model file '" + path +
                          "': " + e.what());
    return std::nullopt;
  }
}

void CostModel::save(const std::string& path) const {
  io::write_file_atomic(path, serialize());
}

}  // namespace gpustatic::learn
