#include "learn/corpus.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "arch/gpu_spec.hpp"
#include "codegen/cache.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "kernels/kernels.hpp"
#include "ml/features.hpp"

namespace gpustatic::learn {

namespace {

/// One compilation pipeline per (kernel, n, gpu) context; nullptr marks
/// a context whose workload/GPU failed to resolve (warned once).
struct ContextCache {
  std::map<std::string, std::unique_ptr<codegen::CompilationCache>> entries;

  codegen::CompilationCache* get(const tuner::StoreRecord& r,
                                 const WorkloadLoader& load,
                                 std::vector<std::string>* warnings) {
    const std::string key =
        r.kernel + "\n" + std::to_string(r.n) + "\n" + r.gpu;
    const auto it = entries.find(key);
    if (it != entries.end()) return it->second.get();
    std::unique_ptr<codegen::CompilationCache> cache;
    try {
      const arch::GpuSpec& gpu = arch::gpu(r.gpu);
      cache = std::make_unique<codegen::CompilationCache>(
          load(r.kernel, r.n), gpu);
    } catch (const Error& e) {
      if (warnings != nullptr)
        warnings->push_back("corpus: skipping records for (" + r.kernel +
                            ", " + r.gpu + ", n=" + std::to_string(r.n) +
                            "): " + e.what());
    }
    return entries.emplace(key, std::move(cache)).first->second.get();
  }
};

void split_group(CorpusGroup& group, std::size_t group_index,
                 const CorpusOptions& opts) {
  const std::size_t size = group.rows.size();
  std::size_t held_out = static_cast<std::size_t>(
      opts.validation_fraction * static_cast<double>(size));
  // Groups of 4+ always contribute at least one held-out row when any
  // validation was asked for; every group keeps at least one train row.
  if (opts.validation_fraction > 0.0 && size >= 4 && held_out == 0)
    held_out = 1;
  if (held_out >= size) held_out = size - 1;

  std::vector<std::size_t> shuffled = group.rows;
  Rng rng(opts.seed + 0x9e3779b97f4a7c15ULL * (group_index + 1));
  rng.shuffle(shuffled);
  group.validation.assign(shuffled.begin(),
                          shuffled.begin() +
                              static_cast<std::ptrdiff_t>(held_out));
  group.train.assign(shuffled.begin() +
                         static_cast<std::ptrdiff_t>(held_out),
                     shuffled.end());
  std::sort(group.validation.begin(), group.validation.end());
  std::sort(group.train.begin(), group.train.end());
}

}  // namespace

std::vector<std::size_t> Corpus::train_indices() const {
  std::vector<std::size_t> out;
  for (const CorpusGroup& g : groups)
    out.insert(out.end(), g.train.begin(), g.train.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> Corpus::validation_indices() const {
  std::vector<std::size_t> out;
  for (const CorpusGroup& g : groups)
    out.insert(out.end(), g.validation.begin(), g.validation.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::vector<double>> Corpus::matrix(
    const std::vector<std::size_t>& idx) const {
  std::vector<std::vector<double>> out;
  out.reserve(idx.size());
  for (const std::size_t i : idx) out.push_back(rows.at(i).features);
  return out;
}

std::vector<double> Corpus::targets(
    const std::vector<std::size_t>& idx) const {
  std::vector<double> out;
  out.reserve(idx.size());
  for (const std::size_t i : idx) out.push_back(rows.at(i).target);
  return out;
}

Corpus build_corpus(const tuner::TuningStore& store,
                    const CorpusOptions& opts,
                    std::vector<std::string>* warnings) {
  if (opts.min_records == 0)
    throw Error("corpus: min_records must be positive");
  if (opts.validation_fraction < 0.0 || opts.validation_fraction >= 1.0)
    throw Error("corpus: validation_fraction must be in [0, 1)");
  const WorkloadLoader load =
      opts.load_workload
          ? opts.load_workload
          : [](const std::string& kernel, std::int64_t n) {
              return kernels::make_workload(kernel, n);
            };

  Corpus corpus;
  corpus.feature_names = ml::feature_names();

  ContextCache contexts;
  std::map<std::string, std::size_t> group_index;  ///< key -> slot

  for (const tuner::StoreRecord& r : store.records()) {
    const tuner::MeasuredVariant& v = r.variant;
    // Failed / invalid measurements are training poison: a rejected
    // configuration has no time, an unmeasured one only a prediction.
    if (!v.valid) {
      ++corpus.skipped_invalid;
      continue;
    }
    if (!v.measured() || !std::isfinite(v.measured_ms)) {
      ++corpus.skipped_unmeasured;
      continue;
    }
    codegen::CompilationCache* cache = contexts.get(r, load, warnings);
    if (cache == nullptr) {
      ++corpus.skipped_unloadable;
      continue;
    }

    CorpusRow row;
    row.kernel = r.kernel;
    row.gpu = r.gpu;
    row.n = r.n;
    row.params = v.params;
    row.measured_ms = v.measured_ms;
    row.target = std::log1p(v.measured_ms);
    try {
      // The cached lowering is canonical per codegen key; the record's
      // own params supply the launch-shape features (features.hpp).
      row.features =
          ml::extract_features(*cache->lower(v.params), cache->gpu(),
                               v.params);
    } catch (const ConfigError&) {
      ++corpus.skipped_uncompilable;
      continue;
    }

    const std::string key = r.kernel + "\n" + r.gpu;
    const auto [it, inserted] =
        group_index.emplace(key, corpus.groups.size());
    if (inserted) {
      CorpusGroup g;
      g.kernel = r.kernel;
      g.gpu = r.gpu;
      corpus.groups.push_back(std::move(g));
    }
    row.group = it->second;
    corpus.groups[it->second].rows.push_back(corpus.rows.size());
    corpus.rows.push_back(std::move(row));
  }

  if (corpus.rows.size() < opts.min_records)
    throw Error(
        "corpus: not enough training data: " +
        std::to_string(corpus.rows.size()) + " usable record(s) joined (" +
        std::to_string(store.size()) + " in store; skipped " +
        std::to_string(corpus.skipped_invalid) + " invalid, " +
        std::to_string(corpus.skipped_unmeasured) + " unmeasured, " +
        std::to_string(corpus.skipped_uncompilable) + " uncompilable, " +
        std::to_string(corpus.skipped_unloadable) +
        " unloadable); need at least " + std::to_string(opts.min_records) +
        " — run tune-fleet or the serve daemon to grow the store");

  for (std::size_t g = 0; g < corpus.groups.size(); ++g)
    split_group(corpus.groups[g], g, opts);
  return corpus;
}

}  // namespace gpustatic::learn
