#pragma once

// Corpus builder: the join between the fleet's TuningStore and the
// static feature extractor. Every valid, measured store record becomes
// one training row — ml::extract_features over the record's cached
// lowering (codegen::CompilationCache, one compile per codegen key, not
// per record) with the record's own launch shape, targeting
// log1p(measured_ms) — grouped by (kernel, gpu) with a deterministic
// seeded train/validation split per group. Records that never executed,
// were rejected as invalid, or no longer compile are excluded and
// counted, never silently trained on; a store too small to learn from
// is a clear "not enough training data" error, not a junk model.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "codegen/params.hpp"
#include "dsl/ast.hpp"
#include "tuner/store.hpp"

namespace gpustatic::learn {

/// Resolves a store record's (kernel, n) identity to the workload to
/// compile. The default uses the kernels registry; the tuning service
/// plugs in core::load_workload so path-named kernels join too.
using WorkloadLoader = std::function<dsl::WorkloadDesc(
    const std::string& kernel, std::int64_t n)>;

struct CorpusOptions {
  /// Fewest usable (valid + measured + compilable) rows a store must
  /// yield; below this build_corpus throws a "not enough training
  /// data" Error instead of producing a model-poisoning toy corpus.
  std::size_t min_records = 16;
  /// Per-group fraction of rows held out for validation metrics.
  double validation_fraction = 0.25;
  /// Seed for the per-group split shuffles.
  std::uint64_t seed = 42;
  /// Workload resolver; default = kernels registry (see WorkloadLoader).
  WorkloadLoader load_workload;
};

/// One joined training row.
struct CorpusRow {
  std::string kernel;
  std::string gpu;
  std::int64_t n = 0;
  codegen::TuningParams params;
  std::vector<double> features;  ///< ml::feature_names() order
  double measured_ms = 0;
  double target = 0;             ///< log1p(measured_ms)
  std::size_t group = 0;         ///< index into Corpus::groups
};

/// One (kernel, gpu) group with its deterministic split. `rows`,
/// `train`, and `validation` are indexes into Corpus::rows, each in
/// ascending order; train and validation partition `rows` (groups too
/// small to hold anything out keep every row in train).
struct CorpusGroup {
  std::string kernel;
  std::string gpu;
  std::vector<std::size_t> rows;
  std::vector<std::size_t> train;
  std::vector<std::size_t> validation;
};

struct Corpus {
  std::vector<std::string> feature_names;  ///< schema of every row
  std::vector<CorpusRow> rows;
  std::vector<CorpusGroup> groups;  ///< first-encounter store order

  // Exclusion accounting (records the join refused to train on).
  std::size_t skipped_invalid = 0;      ///< valid=0 (rejected configs)
  std::size_t skipped_unmeasured = 0;   ///< never executed (time=-)
  std::size_t skipped_uncompilable = 0; ///< no longer compiles (ConfigError)
  std::size_t skipped_unloadable = 0;   ///< unknown kernel or GPU

  [[nodiscard]] std::size_t skipped() const {
    return skipped_invalid + skipped_unmeasured + skipped_uncompilable +
           skipped_unloadable;
  }

  /// All train (resp. validation) row indexes, ascending across groups.
  [[nodiscard]] std::vector<std::size_t> train_indices() const;
  [[nodiscard]] std::vector<std::size_t> validation_indices() const;

  /// Feature matrix / target vector for a set of row indexes (aligned).
  [[nodiscard]] std::vector<std::vector<double>> matrix(
      const std::vector<std::size_t>& idx) const;
  [[nodiscard]] std::vector<double> targets(
      const std::vector<std::size_t>& idx) const;
};

/// Join `store` into a corpus (see file comment). Throws Error when the
/// usable row count is below opts.min_records; per-record skip reasons
/// land in the corpus counters, per-kernel load failures additionally
/// in `warnings` (once per kernel).
[[nodiscard]] Corpus build_corpus(
    const tuner::TuningStore& store, const CorpusOptions& opts = {},
    std::vector<std::string>* warnings = nullptr);

}  // namespace gpustatic::learn
