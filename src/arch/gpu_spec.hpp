#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace gpustatic::arch {

/// GPU architecture generations evaluated in the paper (Table I, last row).
enum class Family : std::uint8_t { Fermi, Kepler, Maxwell, Pascal };

[[nodiscard]] std::string_view family_name(Family f);
/// One-letter code used in paper figures ("F", "K", "M", "P").
[[nodiscard]] std::string_view family_letter(Family f);
/// SM code targeted by the virtual toolchain ("sm_20", "sm_35", ...).
[[nodiscard]] std::string_view family_sm(Family f);
[[nodiscard]] Family family_from_name(std::string_view name);

/// Hardware description of one GPU, mirroring Table I of the paper.
///
/// Field comments give the paper's symbol where one exists. The naming
/// convention from Sec. III-A applies: superscript `cc` = fixed by the
/// compute capability, subscripts identify the resource granularity
/// (B = block, mp = multiprocessor, W = warp, T = thread).
struct GpuSpec {
  std::string name;          ///< Marketing name, e.g. "K20".
  Family family;             ///< Architecture generation.
  double compute_capability; ///< `cc` (2, 3.5, 5.2, 6.0).

  std::uint64_t global_mem_mb;   ///< Global memory (MB).
  std::uint32_t multiprocessors; ///< `mp`: number of SMs.
  std::uint32_t cores_per_mp;    ///< CUDA cores per SM.
  std::uint32_t cuda_cores;      ///< Total CUDA cores.
  std::uint32_t gpu_clock_mhz;   ///< Core clock (MHz).
  std::uint32_t mem_clock_mhz;   ///< Memory clock (MHz).
  double l2_cache_mb;            ///< L2 cache (MB).
  std::uint32_t const_mem_bytes; ///< Constant memory (B).

  std::uint32_t smem_per_block;   ///< S^cc_B: max shared memory per block (B).
  std::uint32_t regs_per_block;   ///< R^cc_fs: register file size per SM.
  std::uint32_t warp_size;        ///< W_B = 32 on every GPU in Table I.
  std::uint32_t threads_per_mp;   ///< T^cc_mp: max resident threads per SM.
  std::uint32_t threads_per_block;///< T^cc_B: max threads per block.
  std::uint32_t blocks_per_mp;    ///< B^cc_mp: max resident blocks per SM.
  std::uint32_t threads_per_warp; ///< T^cc_W = 32.
  std::uint32_t warps_per_mp;     ///< W^cc_mp: max resident warps per SM.
  std::uint32_t reg_alloc_unit;   ///< R^cc_B: register allocation granularity.
  std::uint32_t regs_per_thread;  ///< R^cc_T: max registers per thread.

  /// S^cc_mp: shared memory available per SM (B). Used by Eq. 5. Not printed
  /// in Table I but fixed by the compute capability (48K/48K/96K/64K).
  std::uint32_t smem_per_mp;
};

/// All four GPUs of Table I, in paper column order (M2050, K20, M40, P100).
[[nodiscard]] std::span<const GpuSpec> all_gpus();

/// Lookup by marketing name ("M2050") or family name ("Fermi"), case
/// insensitive. Throws LookupError for unknown names.
[[nodiscard]] const GpuSpec& gpu(std::string_view name);

/// Lookup by architecture generation.
[[nodiscard]] const GpuSpec& gpu(Family family);

}  // namespace gpustatic::arch
