#include "arch/gpu_spec.hpp"

#include <array>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace gpustatic::arch {

namespace {

// Table I of the paper, verbatim. smem_per_mp is the per-SM shared memory
// fixed by the compute capability (see GpuSpec doc comment).
const std::array<GpuSpec, 4> kGpus = {{
    {
        .name = "M2050",
        .family = Family::Fermi,
        .compute_capability = 2.0,
        .global_mem_mb = 3072,
        .multiprocessors = 14,
        .cores_per_mp = 32,
        .cuda_cores = 448,
        .gpu_clock_mhz = 1147,
        .mem_clock_mhz = 1546,
        .l2_cache_mb = 0.786,
        .const_mem_bytes = 65536,
        .smem_per_block = 49152,
        .regs_per_block = 32768,
        .warp_size = 32,
        .threads_per_mp = 1536,
        .threads_per_block = 1024,
        .blocks_per_mp = 8,
        .threads_per_warp = 32,
        .warps_per_mp = 48,
        .reg_alloc_unit = 64,
        .regs_per_thread = 63,
        .smem_per_mp = 49152,
    },
    {
        .name = "K20",
        .family = Family::Kepler,
        .compute_capability = 3.5,
        .global_mem_mb = 11520,
        .multiprocessors = 13,
        .cores_per_mp = 192,
        .cuda_cores = 2496,
        .gpu_clock_mhz = 824,
        .mem_clock_mhz = 2505,
        .l2_cache_mb = 1.572,
        .const_mem_bytes = 65536,
        .smem_per_block = 49152,
        .regs_per_block = 65536,
        .warp_size = 32,
        .threads_per_mp = 2048,
        .threads_per_block = 1024,
        .blocks_per_mp = 16,
        .threads_per_warp = 32,
        .warps_per_mp = 64,
        .reg_alloc_unit = 256,
        .regs_per_thread = 255,
        .smem_per_mp = 49152,
    },
    {
        .name = "M40",
        .family = Family::Maxwell,
        .compute_capability = 5.2,
        .global_mem_mb = 12288,
        .multiprocessors = 24,
        .cores_per_mp = 128,
        .cuda_cores = 3072,
        .gpu_clock_mhz = 1140,
        .mem_clock_mhz = 5000,
        .l2_cache_mb = 3.146,
        .const_mem_bytes = 65536,
        .smem_per_block = 49152,
        .regs_per_block = 65536,
        .warp_size = 32,
        .threads_per_mp = 2048,
        .threads_per_block = 1024,
        .blocks_per_mp = 32,
        .threads_per_warp = 32,
        .warps_per_mp = 64,
        .reg_alloc_unit = 256,
        .regs_per_thread = 255,
        .smem_per_mp = 98304,
    },
    {
        .name = "P100",
        .family = Family::Pascal,
        .compute_capability = 6.0,
        .global_mem_mb = 17066,
        .multiprocessors = 56,
        .cores_per_mp = 64,
        .cuda_cores = 3584,
        .gpu_clock_mhz = 405,
        .mem_clock_mhz = 715,
        .l2_cache_mb = 4.194,
        .const_mem_bytes = 65536,
        .smem_per_block = 49152,
        .regs_per_block = 65536,
        .warp_size = 32,
        .threads_per_mp = 2048,
        .threads_per_block = 1024,
        .blocks_per_mp = 32,
        .threads_per_warp = 32,
        .warps_per_mp = 64,
        .reg_alloc_unit = 256,
        .regs_per_thread = 255,
        .smem_per_mp = 65536,
    },
}};

}  // namespace

std::string_view family_name(Family f) {
  switch (f) {
    case Family::Fermi: return "Fermi";
    case Family::Kepler: return "Kepler";
    case Family::Maxwell: return "Maxwell";
    case Family::Pascal: return "Pascal";
  }
  return "?";
}

std::string_view family_letter(Family f) {
  switch (f) {
    case Family::Fermi: return "F";
    case Family::Kepler: return "K";
    case Family::Maxwell: return "M";
    case Family::Pascal: return "P";
  }
  return "?";
}

std::string_view family_sm(Family f) {
  switch (f) {
    case Family::Fermi: return "sm_20";
    case Family::Kepler: return "sm_35";
    case Family::Maxwell: return "sm_52";
    case Family::Pascal: return "sm_60";
  }
  return "?";
}

Family family_from_name(std::string_view name) {
  const std::string lower = str::to_lower(name);
  if (lower == "fermi" || lower == "f") return Family::Fermi;
  if (lower == "kepler" || lower == "k") return Family::Kepler;
  if (lower == "maxwell" || lower == "m") return Family::Maxwell;
  if (lower == "pascal" || lower == "p") return Family::Pascal;
  throw LookupError("unknown GPU family: " + std::string(name));
}

std::span<const GpuSpec> all_gpus() { return kGpus; }

const GpuSpec& gpu(std::string_view name) {
  const std::string lower = str::to_lower(name);
  for (const GpuSpec& g : kGpus) {
    if (str::to_lower(g.name) == lower ||
        str::to_lower(family_name(g.family)) == lower) {
      return g;
    }
  }
  throw LookupError("unknown GPU: " + std::string(name));
}

const GpuSpec& gpu(Family family) {
  for (const GpuSpec& g : kGpus)
    if (g.family == family) return g;
  throw LookupError("unknown GPU family");
}

}  // namespace gpustatic::arch
