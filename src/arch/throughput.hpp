#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "arch/gpu_spec.hpp"

namespace gpustatic::arch {

/// Instruction categories of Table II. Each category is one row of the
/// paper's throughput table; several hardware opcodes map onto each.
enum class OpCategory : std::uint8_t {
  FPIns32,      ///< 32-bit floating point add/mul/fma.
  FPIns64,      ///< 64-bit floating point add/mul/fma.
  CompMinMax,   ///< compare, min, max.
  ShiftShuffle, ///< shift, bitfield extract, shuffle, sum-abs-diff.
  Conv64,       ///< conversions involving 64-bit types.
  Conv32,       ///< 32-bit conversions.
  LogSinCos,    ///< special function unit: log/exp/sin/cos/rcp/rsqrt.
  IntAdd32,     ///< 32-bit integer add/sub/mad.
  TexIns,       ///< texture fetch.
  LdStIns,      ///< load/store (global, shared, local).
  SurfIns,      ///< surface load/store.
  PredIns,      ///< predicate-setting instructions (setp).
  CtrlIns,      ///< branches, barriers, exit.
  MoveIns,      ///< register moves.
  Regs,         ///< register-file traffic (operand reads/writes).
};

inline constexpr std::size_t kNumOpCategories = 15;

/// The coarse grouping used by the instruction-mix metrics (Sec. III-B):
/// O_fl, O_mem, O_ctrl, O_reg of Eq. 6.
enum class OpClass : std::uint8_t { FLOPS, MEM, CTRL, REG };

inline constexpr std::size_t kNumOpClasses = 4;

[[nodiscard]] std::string_view category_name(OpCategory c);
[[nodiscard]] std::string_view class_name(OpClass c);

/// Table II column "Category": which coarse class each row belongs to.
[[nodiscard]] OpClass op_class(OpCategory c);

/// Instructions-per-cycle per SM for a category on an architecture
/// generation (Table II, columns SM20/SM35/SM52/SM60).
[[nodiscard]] double ipc(OpCategory c, Family f);

/// Cycles-per-instruction: the reciprocal of IPC. These are the weights
/// (c_f, c_m, c_b, c_r) used by the Eq. 6 execution-time model.
[[nodiscard]] double cpi(OpCategory c, Family f);

/// All categories in Table II row order; handy for iteration in tests
/// and table-printing benches.
[[nodiscard]] std::span<const OpCategory> all_categories();

/// Representative CPI for a coarse class on an architecture: the
/// instruction-count-weighted CPI collapses to this when a kernel's class
/// is dominated by one category; we use the class's primary category
/// (FPIns32 for FLOPS, LdStIns for MEM, CtrlIns for CTRL, Regs for REG).
[[nodiscard]] double class_cpi(OpClass c, Family f);

}  // namespace gpustatic::arch
