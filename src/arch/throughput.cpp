#include "arch/throughput.hpp"

#include <array>

#include "common/error.hpp"

namespace gpustatic::arch {

namespace {

struct Row {
  OpCategory category;
  OpClass cls;
  // IPC per SM for SM20 / SM35 / SM52 / SM60 (Table II).
  std::array<double, 4> ipc;
};

// Table II of the paper, verbatim. Rows that the paper prints together
// (Shift/Extract/Shuffle/SumAbsDiff; Tex/LdSt/Surf; Pred/Ctrl) are expanded
// into one entry per category with the shared numbers.
constexpr std::array<Row, kNumOpCategories> kRows = {{
    {OpCategory::FPIns32, OpClass::FLOPS, {32, 192, 128, 64}},
    {OpCategory::FPIns64, OpClass::FLOPS, {16, 64, 4, 32}},
    {OpCategory::CompMinMax, OpClass::FLOPS, {32, 160, 64, 32}},
    {OpCategory::ShiftShuffle, OpClass::FLOPS, {16, 32, 64, 32}},
    {OpCategory::Conv64, OpClass::FLOPS, {16, 8, 4, 16}},
    {OpCategory::Conv32, OpClass::FLOPS, {16, 128, 32, 16}},
    {OpCategory::LogSinCos, OpClass::FLOPS, {4, 32, 32, 16}},
    {OpCategory::IntAdd32, OpClass::FLOPS, {32, 160, 64, 32}},
    {OpCategory::TexIns, OpClass::MEM, {16, 32, 64, 16}},
    {OpCategory::LdStIns, OpClass::MEM, {16, 32, 64, 16}},
    {OpCategory::SurfIns, OpClass::MEM, {16, 32, 64, 16}},
    {OpCategory::PredIns, OpClass::CTRL, {16, 32, 64, 16}},
    {OpCategory::CtrlIns, OpClass::CTRL, {16, 32, 64, 16}},
    {OpCategory::MoveIns, OpClass::CTRL, {32, 32, 32, 32}},
    {OpCategory::Regs, OpClass::REG, {16, 32, 32, 16}},
}};

constexpr std::array<OpCategory, kNumOpCategories> kOrder = {
    OpCategory::FPIns32,      OpCategory::FPIns64, OpCategory::CompMinMax,
    OpCategory::ShiftShuffle, OpCategory::Conv64,  OpCategory::Conv32,
    OpCategory::LogSinCos,    OpCategory::IntAdd32, OpCategory::TexIns,
    OpCategory::LdStIns,      OpCategory::SurfIns, OpCategory::PredIns,
    OpCategory::CtrlIns,      OpCategory::MoveIns, OpCategory::Regs,
};

const Row& row(OpCategory c) {
  for (const Row& r : kRows)
    if (r.category == c) return r;
  throw LookupError("unknown op category");
}

std::size_t family_column(Family f) {
  switch (f) {
    case Family::Fermi: return 0;
    case Family::Kepler: return 1;
    case Family::Maxwell: return 2;
    case Family::Pascal: return 3;
  }
  throw LookupError("unknown family");
}

}  // namespace

std::string_view category_name(OpCategory c) {
  switch (c) {
    case OpCategory::FPIns32: return "FPIns32";
    case OpCategory::FPIns64: return "FPIns64";
    case OpCategory::CompMinMax: return "CompMinMax";
    case OpCategory::ShiftShuffle: return "Shift/Shuffle/SAD";
    case OpCategory::Conv64: return "Conv64";
    case OpCategory::Conv32: return "Conv32";
    case OpCategory::LogSinCos: return "LogSinCos";
    case OpCategory::IntAdd32: return "IntAdd32";
    case OpCategory::TexIns: return "TexIns";
    case OpCategory::LdStIns: return "LdStIns";
    case OpCategory::SurfIns: return "SurfIns";
    case OpCategory::PredIns: return "PredIns";
    case OpCategory::CtrlIns: return "CtrlIns";
    case OpCategory::MoveIns: return "MoveIns";
    case OpCategory::Regs: return "Regs";
  }
  return "?";
}

std::string_view class_name(OpClass c) {
  switch (c) {
    case OpClass::FLOPS: return "FLOPS";
    case OpClass::MEM: return "MEM";
    case OpClass::CTRL: return "CTRL";
    case OpClass::REG: return "REG";
  }
  return "?";
}

OpClass op_class(OpCategory c) { return row(c).cls; }

double ipc(OpCategory c, Family f) { return row(c).ipc[family_column(f)]; }

double cpi(OpCategory c, Family f) { return 1.0 / ipc(c, f); }

std::span<const OpCategory> all_categories() { return kOrder; }

double class_cpi(OpClass c, Family f) {
  switch (c) {
    case OpClass::FLOPS: return cpi(OpCategory::FPIns32, f);
    case OpClass::MEM: return cpi(OpCategory::LdStIns, f);
    case OpClass::CTRL: return cpi(OpCategory::CtrlIns, f);
    case OpClass::REG: return cpi(OpCategory::Regs, f);
  }
  throw LookupError("unknown op class");
}

}  // namespace gpustatic::arch
