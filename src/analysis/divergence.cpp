#include "analysis/divergence.hpp"

#include <map>

#include "ptx/cfg.hpp"

namespace gpustatic::analysis {

using namespace ptx;  // NOLINT

namespace {

std::uint32_t key(const Reg& r) {
  return (static_cast<std::uint32_t>(r.type) << 16) | r.idx;
}

bool operand_tainted(const Operand& o,
                     const std::map<std::uint32_t, bool>& taint) {
  switch (o.kind()) {
    case Operand::Kind::Reg: {
      const auto it = taint.find(key(o.reg()));
      return it != taint.end() && it->second;
    }
    case Operand::Kind::Special:
      // %tid.x and %laneid vary per lane; block/grid identifiers are
      // warp-uniform.
      return o.special() == SpecialReg::TidX ||
             o.special() == SpecialReg::LaneId;
    default:
      return false;
  }
}

}  // namespace

DivergenceReport analyze_divergence(const Kernel& kernel) {
  const Cfg cfg(kernel);
  DivergenceReport report;

  // Fixed-point taint propagation: a register is lane-varying if any
  // producer reads a lane-varying source. Loads from memory are treated
  // as tainted when their address is tainted (different lanes read
  // different cells).
  std::map<std::uint32_t, bool> taint;
  bool changed = true;
  while (changed) {
    changed = false;
    kernel.for_each_instruction([&](const Instruction& ins) {
      if (!ins.dst) return;
      bool t = false;
      for (const Operand& s : ins.srcs)
        if (operand_tainted(s, taint)) t = true;
      if (ins.guard) {
        const auto it = taint.find(key(ins.guard->pred));
        if (it != taint.end() && it->second) t = true;
      }
      auto& slot = taint[key(*ins.dst)];
      if (t && !slot) {
        slot = true;
        changed = true;
      }
    });
  }

  for (std::size_t b = 0; b < kernel.blocks.size(); ++b) {
    report.max_loop_depth =
        std::max(report.max_loop_depth, cfg.loop_depth(b));
    const Instruction& last = kernel.blocks[b].body.back();
    if (last.op != Opcode::BRA || !last.guard) continue;
    BranchInfo info;
    info.block = static_cast<std::int32_t>(b);
    const auto it = taint.find(key(last.guard->pred));
    info.divergent = it != taint.end() && it->second;
    info.loop_back_edge =
        cfg.is_back_edge(static_cast<std::int32_t>(b), last.target_block);
    info.reconvergence = cfg.ipdom(b);
    report.branches.push_back(info);
    if (info.divergent)
      ++report.divergent_count;
    else
      ++report.uniform_count;
  }
  return report;
}

}  // namespace gpustatic::analysis
