#pragma once

// Static control-flow divergence analysis: which branches can split a
// warp? A branch diverges only if its predicate (transitively) depends on
// a lane-varying source — %tid.x or %laneid — so a taint propagation over
// the register dataflow separates warp-uniform branches (loop latches on
// uniform bounds) from potentially divergent ones (boundary tests on the
// thread index). This is the CFG-based divergence view the paper builds
// alongside the instruction mix (Sec. V, comparison with STATuner).

#include <cstdint>
#include <vector>

#include "ptx/kernel.hpp"

namespace gpustatic::analysis {

struct BranchInfo {
  std::int32_t block = 0;        ///< block index of the branch
  bool divergent = false;        ///< predicate is lane-varying
  bool loop_back_edge = false;   ///< branch is a loop latch
  std::int32_t reconvergence = -1;  ///< ipdom block (join point)
};

struct DivergenceReport {
  std::vector<BranchInfo> branches;
  std::size_t divergent_count = 0;
  std::size_t uniform_count = 0;
  std::int32_t max_loop_depth = 0;

  [[nodiscard]] double divergent_fraction() const {
    const std::size_t n = branches.size();
    return n == 0 ? 0.0
                  : static_cast<double>(divergent_count) /
                        static_cast<double>(n);
  }
};

[[nodiscard]] DivergenceReport analyze_divergence(const ptx::Kernel& kernel);

}  // namespace gpustatic::analysis
