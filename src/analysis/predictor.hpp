#pragma once

// The Eq. 6 static execution-time model:
//
//   f(N) = c_f * O_fl + c_m * O_mem + c_b * O_ctrl + c_r * O_reg
//
// where the coefficients are cycles-per-instruction weights from Table II
// and the O_* are static instruction-mix magnitudes. The predictor never
// runs the program: it scores compiled variants so an autotuner can rank
// them (Fig. 5 validates the ranking against measured times).
//
// Two weighting granularities are provided: the paper's four-class form
// (exactly Eq. 6) and a per-category refinement that uses every Table II
// row. The ablation bench compares both against an unweighted count.

#include <cstdint>

#include "analysis/mix.hpp"
#include "arch/gpu_spec.hpp"
#include "codegen/compiler.hpp"

namespace gpustatic::analysis {

enum class CostModel : std::uint8_t {
  ClassCpi,     ///< Eq. 6: four coarse classes weighted by class CPI.
  CategoryCpi,  ///< every Table II category weighted by its CPI.
  Unweighted,   ///< plain instruction count (ablation baseline).
};

/// Score a static mix on an architecture. Higher = predicted slower.
/// Uses the loop-weighted mix; scores are comparable only within one
/// (kernel, problem size) variant family, which is how Fig. 5 uses them.
[[nodiscard]] double predicted_cost(const StaticMix& mix,
                                    arch::Family family,
                                    CostModel model = CostModel::ClassCpi);

/// Score a whole compiled workload (sums its stages' kernels).
[[nodiscard]] double predicted_cost(const codegen::LoweredWorkload& lw,
                                    arch::Family family,
                                    CostModel model = CostModel::ClassCpi);

/// The paper's proportional-in-N hypothesis (Sec. III-B-3): scale a
/// variant score by problem size to compare across sizes.
[[nodiscard]] double predicted_cost_at_size(const StaticMix& mix,
                                            arch::Family family,
                                            std::int64_t problem_size,
                                            CostModel model =
                                                CostModel::ClassCpi);

}  // namespace gpustatic::analysis
