#pragma once

// Static instruction-mix extraction (Sec. III-B): counts per Table II
// category straight from the compiled binary, with no program runs.
//
// Two weightings are provided:
//  * flat: one count per static instruction (what a plain disassembly
//    count gives);
//  * loop-weighted: each instruction weighted by W^depth for a nominal
//    per-loop trip weight W. Loop trip counts are not statically known,
//    but hot-path *shares* are scale-invariant within a nesting level, so
//    a nominal weight recovers the dynamic mix shape — this is the
//    estimator Table VI scores against dynamic mixes.

#include <cstdint>

#include "ptx/kernel.hpp"
#include "sim/counts.hpp"

namespace gpustatic::analysis {

/// Nominal per-loop-level trip weight for the loop-weighted mix.
inline constexpr double kNominalTripWeight = 64.0;

struct StaticMix {
  sim::Counts flat;      ///< unweighted static counts
  sim::Counts weighted;  ///< loop-weighted static counts

  /// O_fl / O_mem on the weighted counts: the intensity the rule-based
  /// search heuristic thresholds at 4.0 (Sec. III-C).
  [[nodiscard]] double intensity() const { return weighted.intensity(); }
};

/// Analyze one kernel. Loop depth comes from the CFG's natural loops;
/// instructions in an If arm are scaled by the arm count (both arms of a
/// divergent region execute for a mixed warp).
[[nodiscard]] StaticMix analyze_mix(const ptx::Kernel& kernel);

/// Per-category static pipeline utilization (Sec. III-B-2): share of
/// issue cycles each category contributes on the given architecture,
/// using the weighted mix. Sums to 1 over categories with work.
struct PipelineUtilization {
  std::array<double, arch::kNumOpCategories> share{};
  arch::OpCategory hottest = arch::OpCategory::FPIns32;
};
[[nodiscard]] PipelineUtilization pipeline_utilization(
    const StaticMix& mix, arch::Family family);

}  // namespace gpustatic::analysis
