#include "analysis/mix.hpp"

#include <cmath>
#include <map>
#include <set>

#include "ptx/cfg.hpp"

namespace gpustatic::analysis {

namespace {

/// Detect loop-body replication (unrolling) from the compiled binary the
/// way a SASS-level analyzer does: an unrolled streaming loop carries R
/// loads per distinct address register, because each unrolled copy reads
/// the same running pointer at a different constant offset. The weighted
/// mix divides the nominal per-loop trip weight by R so that unrolled
/// variants are not over-counted (they cover R iterations per pass).
double body_replication(const ptx::Kernel& kernel,
                        const std::vector<std::int32_t>& loop_blocks) {
  std::size_t loads = 0;
  std::set<std::uint32_t> addr_regs;
  for (const std::int32_t b : loop_blocks) {
    for (const ptx::Instruction& ins : kernel.blocks[b].body) {
      if (ins.op != ptx::Opcode::LD ||
          ins.space != ptx::MemSpace::Global)
        continue;
      ++loads;
      if (!ins.srcs.empty() && ins.srcs[0].is_reg()) {
        const ptx::Reg& r = ins.srcs[0].reg();
        addr_regs.insert((static_cast<std::uint32_t>(r.type) << 16) |
                         r.idx);
      }
    }
  }
  double by_streams = 1.0;
  if (loads > 0 && !addr_regs.empty())
    by_streams = static_cast<double>(loads) /
                 static_cast<double>(addr_regs.size());

  // Second signal: accumulation-chain length. An unrolled reduction
  // carries R fused multiply-adds into the same destination register.
  std::map<std::uint32_t, std::size_t> acc_chain;
  for (const std::int32_t b : loop_blocks) {
    for (const ptx::Instruction& ins : kernel.blocks[b].body) {
      if (ins.op != ptx::Opcode::FFMA || !ins.dst) continue;
      bool accumulates = false;
      for (const ptx::Operand& s : ins.srcs)
        if (s.is_reg() && s.reg() == *ins.dst) accumulates = true;
      if (accumulates)
        ++acc_chain[(static_cast<std::uint32_t>(ins.dst->type) << 16) |
                    ins.dst->idx];
    }
  }
  double by_chain = 1.0;
  for (const auto& [reg, n] : acc_chain)
    by_chain = std::max(by_chain, static_cast<double>(n));

  return std::max(1.0, std::max(by_streams, by_chain));
}

}  // namespace

StaticMix analyze_mix(const ptx::Kernel& kernel) {
  const ptx::Cfg cfg(kernel);
  StaticMix mix;

  // Per-block trip weight: W^depth divided by the innermost containing
  // loop's detected replication factor.
  std::vector<double> replication(kernel.blocks.size(), 1.0);
  for (const ptx::Cfg::Loop& loop : cfg.loops()) {
    const double r = body_replication(kernel, loop.blocks);
    for (const std::int32_t b : loop.blocks)
      if (cfg.loop_depth(b) == loop.depth)  // innermost owner wins
        replication[b] = r;
  }

  for (std::size_t b = 0; b < kernel.blocks.size(); ++b) {
    const double weight =
        std::pow(kNominalTripWeight, cfg.loop_depth(b)) / replication[b];
    for (const ptx::Instruction& ins : kernel.blocks[b].body) {
      const arch::OpCategory cat = ins.category();
      mix.flat.add_category(cat, 1.0);
      mix.flat.reg_traffic += ins.reg_reads() + ins.reg_writes();
      mix.flat.total_issues += 1;
      mix.weighted.add_category(cat, weight);
      mix.weighted.reg_traffic +=
          weight * (ins.reg_reads() + ins.reg_writes());
      mix.weighted.total_issues += weight;
      if (ins.op == ptx::Opcode::BRA) {
        mix.flat.branches += 1;
        mix.weighted.branches += weight;
      }
    }
  }
  return mix;
}

PipelineUtilization pipeline_utilization(const StaticMix& mix,
                                         arch::Family family) {
  PipelineUtilization u;
  double total = 0;
  for (const arch::OpCategory cat : arch::all_categories()) {
    const double cycles =
        mix.weighted.category(cat) * (32.0 / arch::ipc(cat, family));
    u.share[static_cast<std::size_t>(cat)] = cycles;
    total += cycles;
  }
  if (total > 0) {
    double best = -1;
    for (const arch::OpCategory cat : arch::all_categories()) {
      auto& s = u.share[static_cast<std::size_t>(cat)];
      s /= total;
      if (s > best) {
        best = s;
        u.hottest = cat;
      }
    }
  }
  return u;
}

}  // namespace gpustatic::analysis
