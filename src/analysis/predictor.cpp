#include "analysis/predictor.hpp"

#include "analysis/mix.hpp"

namespace gpustatic::analysis {

double predicted_cost(const StaticMix& mix, arch::Family family,
                      CostModel model) {
  const sim::Counts& c = mix.weighted;
  switch (model) {
    case CostModel::ClassCpi: {
      // Eq. 6 verbatim: four classes, class-representative CPI weights,
      // with O_reg carried by register operand traffic.
      const double cf = arch::class_cpi(arch::OpClass::FLOPS, family);
      const double cm = arch::class_cpi(arch::OpClass::MEM, family);
      const double cb = arch::class_cpi(arch::OpClass::CTRL, family);
      const double cr = arch::class_cpi(arch::OpClass::REG, family);
      return cf * c.by_class(arch::OpClass::FLOPS) +
             cm * c.by_class(arch::OpClass::MEM) +
             cb * c.by_class(arch::OpClass::CTRL) +
             cr * (c.by_class(arch::OpClass::REG) + c.reg_traffic);
    }
    case CostModel::CategoryCpi: {
      double s = 0;
      for (const arch::OpCategory cat : arch::all_categories())
        s += arch::cpi(cat, family) * c.category(cat);
      s += arch::cpi(arch::OpCategory::Regs, family) * c.reg_traffic;
      return s;
    }
    case CostModel::Unweighted:
      return c.total_issues;
  }
  return 0;
}

double predicted_cost(const codegen::LoweredWorkload& lw,
                      arch::Family family, CostModel model) {
  double s = 0;
  for (const codegen::LoweredStage& st : lw.stages)
    s += predicted_cost(analyze_mix(st.kernel), family, model);
  return s;
}

double predicted_cost_at_size(const StaticMix& mix, arch::Family family,
                              std::int64_t problem_size, CostModel model) {
  return predicted_cost(mix, family, model) *
         static_cast<double>(problem_size);
}

}  // namespace gpustatic::analysis
