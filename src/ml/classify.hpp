#pragma once

// STATuner-style learned block-size prediction (paper Sec. V related
// work, Sec. VII future work).
//
// Pipeline:
//  1. build_rank_dataset() autotunes a corpus of kernels over the
//     Table III space (analytic engine), applies the paper's Rank-1 /
//     Rank-2 split, and labels every variant's *static* feature vector
//     with its rank — the training signal costs runs, the deployed
//     predictor does not.
//  2. BlockSizePredictor fits a decision tree on that corpus.
//  3. predict_block_size() scores every candidate thread count for a new
//     kernel by P(Rank 1) and returns the best single block size —
//     exactly STATuner's interface, versus the occupancy calculator's
//     range of choices.
//
// cross_validate() reports k-fold accuracy; the ablation bench adds the
// leave-one-kernel-out protocol (train on three kernels, predict the
// fourth) that matches how such a tool would really be used.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "dsl/ast.hpp"
#include "ml/dataset.hpp"
#include "ml/features.hpp"
#include "ml/forest.hpp"
#include "ml/logistic.hpp"
#include "ml/tree.hpp"
#include "sim/runner.hpp"
#include "tuner/space.hpp"

namespace gpustatic::ml {

/// Label value for Rank-1 (good performer) rows.
inline constexpr int kRank1Label = 1;
/// Label value for Rank-2 (poor performer) rows.
inline constexpr int kRank2Label = 0;

struct CorpusOptions {
  tuner::ParamSpace space = tuner::paper_space();
  std::size_t stride = 8;   ///< sweep subsample (1 = full space)
  sim::RunOptions run;      ///< analytic engine by default
  std::size_t threads = 0;  ///< sweep parallelism (0 = hardware)
};

/// One corpus source: a workload plus the GPU it was tuned on.
struct CorpusEntry {
  dsl::WorkloadDesc workload;
  const arch::GpuSpec* gpu = nullptr;
};

/// Autotune every entry and emit one labeled row per valid variant.
/// Row features are extract_features() of the compiled variant; the
/// label is its Rank-1/Rank-2 side. `row_tags` (parallel to rows, when
/// non-null) records "workload@gpu" provenance for grouped splits.
[[nodiscard]] Dataset build_rank_dataset(
    const std::vector<CorpusEntry>& corpus, const CorpusOptions& opts = {},
    std::vector<std::string>* row_tags = nullptr);

class BlockSizePredictor {
 public:
  void fit(const Dataset& data, const TreeOptions& opts = {});

  /// Best single thread count for a kernel on a GPU: the candidate whose
  /// compiled variant maximizes P(Rank 1); ties resolve to the smaller
  /// count. `block_count` fixes the BC dimension during scoring.
  [[nodiscard]] std::uint32_t predict_block_size(
      const dsl::WorkloadDesc& workload, const arch::GpuSpec& gpu,
      const std::vector<std::uint32_t>& candidates = {},
      int block_count = 96) const;

  /// P(Rank 1) for one explicit configuration.
  [[nodiscard]] double rank1_probability(
      const dsl::WorkloadDesc& workload, const arch::GpuSpec& gpu,
      codegen::TuningParams params) const;

  [[nodiscard]] const DecisionTree& tree() const { return tree_; }
  [[nodiscard]] bool fitted() const { return tree_.fitted(); }

 private:
  DecisionTree tree_;
};

/// K-fold cross-validated accuracy of a model builder. The builder
/// receives the training fold and returns a row -> label functor.
using ModelBuilder = std::function<std::function<int(
    const std::vector<double>&)>(const Dataset& train)>;

struct CvResult {
  std::vector<double> fold_accuracy;
  double mean_accuracy = 0;
  double baseline = 0;  ///< majority-class share of the whole dataset
};

[[nodiscard]] CvResult cross_validate(const Dataset& data,
                                      const ModelBuilder& builder,
                                      std::size_t k, std::uint64_t seed);

/// Builders for the in-tree model families.
[[nodiscard]] ModelBuilder tree_builder(const TreeOptions& opts = {});
[[nodiscard]] ModelBuilder logistic_builder(
    const LogisticOptions& opts = {});
[[nodiscard]] ModelBuilder forest_builder(const ForestOptions& opts = {});

}  // namespace gpustatic::ml
