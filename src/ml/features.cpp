#include "ml/features.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/divergence.hpp"
#include "analysis/mix.hpp"
#include "occupancy/occupancy.hpp"
#include "sim/analytic.hpp"

namespace gpustatic::ml {

namespace {

double log1p_scaled(double v) { return std::log1p(std::max(0.0, v)); }

}  // namespace

const std::vector<std::string>& feature_names() {
  static const std::vector<std::string> kNames = {
      // Launch / code-generation parameters (what the tuner varies).
      "tc_frac",        // threads per block / 1024
      "bc_frac",        // block count / 192
      "uif_frac",       // unroll factor / 6
      "sc_frac",        // stream chunk / 5
      "fast_math",      // 0/1
      "l1_pref_frac",   // preferred L1 KB / 48
      // Occupancy-model outputs (Eqs. 1-5) at this configuration.
      "occupancy",
      "active_blocks_frac",   // active blocks / cc limit
      "active_warps_frac",    // active warps / cc limit
      "warps_per_block_frac", // warps per block / 32
      // Binary footprint (virtual ptxas).
      "regs_frac",      // regs per thread / cc regs-per-thread limit
      "smem_frac",      // static smem per block / cc smem limit
      // Static instruction mix (log-compressed loop-weighted counts).
      "log_flops",
      "log_mem",
      "log_ctrl",
      "log_regops",
      // Mix shape (shares of the weighted mix; sum <= 1).
      "flops_share",
      "mem_share",
      "ctrl_share",
      "intensity_log",  // log1p of O_fl / O_mem
      // Control-flow structure.
      "divergent_branch_frac",
      "max_loop_depth",
      "static_insts_log",
      // Architecture identity.
      "cc_frac",        // compute capability / 6.0
      "cores_per_mp_frac",
      // Wave/tail geometry (decompose_waves — the analytic engine's
      // wave decomposition, so the model sees launch raggedness).
      // Appending here bumps the schema: models trained on the old
      // feature list decline cleanly at load (learn/evaluator.hpp).
      "tail_sm_frac",   // grid last-wave SM fullness (min over stages)
      "waves_rem",      // fractional wave remainder (max over stages)
  };
  return kNames;
}

std::size_t feature_count() { return feature_names().size(); }

std::vector<double> extract_features(const codegen::LoweredWorkload& lw,
                                     const arch::GpuSpec& gpu) {
  return extract_features(lw, gpu, lw.params);
}

std::vector<double> extract_features(const codegen::LoweredWorkload& lw,
                                     const arch::GpuSpec& gpu,
                                     const codegen::TuningParams& p) {
  // Aggregate static views over stages: mixes add, structure takes the
  // worst case (a multi-stage workload is constrained by its hungriest
  // stage, mirroring LoweredWorkload::regs_per_thread).
  sim::Counts flat;
  sim::Counts weighted;
  std::size_t divergent = 0;
  std::size_t branches = 0;
  std::int32_t max_depth = 0;
  for (const codegen::LoweredStage& st : lw.stages) {
    const analysis::StaticMix mix = analysis::analyze_mix(st.kernel);
    flat += mix.flat;
    weighted += mix.weighted;
    const analysis::DivergenceReport div =
        analysis::analyze_divergence(st.kernel);
    divergent += div.divergent_count;
    branches += div.branches.size();
    max_depth = std::max(max_depth, div.max_loop_depth);
  }

  const std::uint32_t regs = lw.regs_per_thread();
  const std::uint32_t smem = lw.smem_per_block();
  const occupancy::Result occ = occupancy::calculate(
      gpu, occupancy::KernelParams{
               static_cast<std::uint32_t>(p.threads_per_block), regs, smem});

  const double fl = weighted.by_class(arch::OpClass::FLOPS);
  const double mem = weighted.by_class(arch::OpClass::MEM);
  const double ctrl = weighted.by_class(arch::OpClass::CTRL);
  const double total = std::max(1.0, fl + mem + ctrl);

  std::vector<double> f;
  f.reserve(feature_count());
  f.push_back(p.threads_per_block / 1024.0);
  f.push_back(p.block_count / 192.0);
  f.push_back(p.unroll / 6.0);
  f.push_back(p.stream_chunk / 5.0);
  f.push_back(p.fast_math ? 1.0 : 0.0);
  f.push_back(p.l1_pref_kb / 48.0);

  f.push_back(occ.occupancy);
  f.push_back(static_cast<double>(occ.active_blocks) /
              static_cast<double>(gpu.blocks_per_mp));
  f.push_back(static_cast<double>(occ.active_warps) /
              static_cast<double>(gpu.warps_per_mp));
  f.push_back(std::ceil(p.threads_per_block / 32.0) / 32.0);

  f.push_back(static_cast<double>(regs) /
              static_cast<double>(gpu.regs_per_thread));
  f.push_back(static_cast<double>(smem) /
              static_cast<double>(gpu.smem_per_block));

  f.push_back(log1p_scaled(fl));
  f.push_back(log1p_scaled(mem));
  f.push_back(log1p_scaled(ctrl));
  f.push_back(log1p_scaled(weighted.reg_traffic));

  f.push_back(fl / total);
  f.push_back(mem / total);
  f.push_back(ctrl / total);
  f.push_back(log1p_scaled(weighted.intensity()));

  f.push_back(branches == 0 ? 0.0
                            : static_cast<double>(divergent) /
                                  static_cast<double>(branches));
  f.push_back(static_cast<double>(max_depth));
  f.push_back(log1p_scaled(static_cast<double>(lw.instruction_count())));

  f.push_back(gpu.compute_capability / 6.0);
  f.push_back(gpu.cores_per_mp / 192.0);

  // Wave/tail geometry at this launch shape, from the same
  // decomposition the analytic engine times with.
  double tail_sm_frac = 1.0;
  double waves_rem = 0.0;
  for (const codegen::LoweredStage& st : lw.stages) {
    codegen::LaunchConfig launch = st.launch;
    launch.grid_blocks = static_cast<std::uint32_t>(p.block_count);
    launch.block_threads =
        static_cast<std::uint32_t>(p.threads_per_block);
    const sim::WaveGeometry g =
        sim::decompose_waves(gpu, occ, launch, st.coarsen);
    tail_sm_frac = std::min(tail_sm_frac, g.tail_sm_fraction);
    waves_rem = std::max(waves_rem, g.waves - g.full_waves);
  }
  f.push_back(tail_sm_frac);
  f.push_back(waves_rem);
  return f;
}

}  // namespace gpustatic::ml
