#include "ml/regression.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gpustatic::ml {

namespace {

void validate_input(const std::vector<std::vector<double>>& rows,
                    const std::vector<double>& targets) {
  if (rows.empty()) throw Error("regression tree: empty training set");
  if (rows.size() != targets.size())
    throw Error("regression tree: rows/targets size mismatch (" +
                std::to_string(rows.size()) + " vs " +
                std::to_string(targets.size()) + ")");
  const std::size_t width = rows.front().size();
  if (width == 0) throw Error("regression tree: zero-width rows");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != width)
      throw Error("regression tree: ragged row " + std::to_string(i));
    for (const double v : rows[i])
      if (!std::isfinite(v))
        throw Error("regression tree: non-finite feature in row " +
                    std::to_string(i));
    if (!std::isfinite(targets[i]))
      throw Error("regression tree: non-finite target in row " +
                  std::to_string(i));
  }
}

struct Moments {
  double sum = 0;
  double sum_sq = 0;
  std::size_t n = 0;

  void add(double v) {
    sum += v;
    sum_sq += v * v;
    n += 1;
  }
  void remove(double v) {
    sum -= v;
    sum_sq -= v * v;
    n -= 1;
  }
  [[nodiscard]] double mean() const {
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
  }
  /// Summed squared error around the mean (n * variance). Clamped at
  /// zero: the incremental form can go slightly negative in floating
  /// point when the child is near-constant.
  [[nodiscard]] double sse() const {
    if (n == 0) return 0.0;
    return std::max(0.0, sum_sq - sum * sum / static_cast<double>(n));
  }
};

struct SplitChoice {
  bool found = false;
  int feature = -1;
  double threshold = 0;
  double gain = 0;  ///< SSE decrease; must exceed min_gain to count
};

/// Best threshold over one feature via a single sorted sweep, moving
/// samples across the cut while updating left/right moments — the
/// regression analogue of the classifier's class-count sweep.
void best_split_on_feature(const std::vector<std::vector<double>>& rows,
                           const std::vector<double>& targets,
                           const std::vector<std::size_t>& idx, int feature,
                           double parent_sse, std::size_t min_samples_leaf,
                           SplitChoice& best) {
  const auto f = static_cast<std::size_t>(feature);
  std::vector<std::size_t> order = idx;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rows[a][f] < rows[b][f];
  });

  Moments left;
  Moments right;
  for (const std::size_t i : idx) right.add(targets[i]);

  for (std::size_t cut = 1; cut < order.size(); ++cut) {
    const double moved = targets[order[cut - 1]];
    left.add(moved);
    right.remove(moved);

    const double a = rows[order[cut - 1]][f];
    const double b = rows[order[cut]][f];
    if (a == b) continue;  // cannot separate equal values
    if (cut < min_samples_leaf || order.size() - cut < min_samples_leaf)
      continue;

    const double gain = parent_sse - (left.sse() + right.sse());
    // Strict > keeps the first-found split on ties (schema feature
    // order, then lowest threshold), matching the classifier contract.
    if (!best.found || gain > best.gain) {
      best.found = true;
      best.feature = feature;
      best.threshold = (a + b) / 2.0;
      best.gain = gain;
    }
  }
}

}  // namespace

void RegressionTree::fit(const std::vector<std::vector<double>>& rows,
                         const std::vector<double>& targets,
                         const RegressionTreeOptions& opts) {
  validate_input(rows, targets);
  nodes_.clear();
  std::vector<std::size_t> idx(rows.size());
  std::iota(idx.begin(), idx.end(), 0);
  build(rows, targets, idx, opts, 0);
}

std::int32_t RegressionTree::build(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& targets, const std::vector<std::size_t>& idx,
    const RegressionTreeOptions& opts, std::size_t depth) {
  Moments here;
  for (const std::size_t i : idx) here.add(targets[i]);

  Node node;
  node.samples = idx.size();
  node.value = here.mean();

  SplitChoice best;
  const double parent_sse = here.sse();
  if (depth < opts.max_depth && idx.size() >= opts.min_samples_split &&
      parent_sse > 0.0) {
    const auto width = static_cast<int>(rows.front().size());
    if (opts.feature_subset.empty()) {
      for (int f = 0; f < width; ++f)
        best_split_on_feature(rows, targets, idx, f, parent_sse,
                              opts.min_samples_leaf, best);
    } else {
      for (const int f : opts.feature_subset)
        if (f >= 0 && f < width)
          best_split_on_feature(rows, targets, idx, f, parent_sse,
                                opts.min_samples_leaf, best);
    }
    if (best.gain < opts.min_gain) best.found = false;
  }

  const auto my_index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(node);

  if (best.found) {
    std::vector<std::size_t> left_idx;
    std::vector<std::size_t> right_idx;
    const auto f = static_cast<std::size_t>(best.feature);
    for (const std::size_t i : idx) {
      if (rows[i][f] <= best.threshold)
        left_idx.push_back(i);
      else
        right_idx.push_back(i);
    }
    nodes_[static_cast<std::size_t>(my_index)].feature = best.feature;
    nodes_[static_cast<std::size_t>(my_index)].threshold = best.threshold;
    const std::int32_t l = build(rows, targets, left_idx, opts, depth + 1);
    nodes_[static_cast<std::size_t>(my_index)].left = l;
    const std::int32_t r = build(rows, targets, right_idx, opts, depth + 1);
    nodes_[static_cast<std::size_t>(my_index)].right = r;
  }
  return my_index;
}

double RegressionTree::predict(const std::vector<double>& row) const {
  if (nodes_.empty()) throw Error("regression tree: predict before fit");
  std::size_t at = 0;
  while (nodes_[at].feature >= 0) {
    const Node& n = nodes_[at];
    const double v = row.at(static_cast<std::size_t>(n.feature));
    at = static_cast<std::size_t>(v <= n.threshold ? n.left : n.right);
  }
  return nodes_[at].value;
}

RegressionTree RegressionTree::from_nodes(std::vector<Node> nodes) {
  if (nodes.empty()) throw Error("regression tree: no nodes to rebuild");
  const auto count = static_cast<std::int32_t>(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    if (n.feature < 0) continue;  // leaf: children unused
    if (n.left < 0 || n.left >= count || n.right < 0 || n.right >= count ||
        n.left == static_cast<std::int32_t>(i) ||
        n.right == static_cast<std::int32_t>(i))
      throw Error("regression tree: node " + std::to_string(i) +
                  " has out-of-range children");
  }
  RegressionTree tree;
  tree.nodes_ = std::move(nodes);
  return tree;
}

void RegressionForest::fit(const std::vector<std::vector<double>>& rows,
                           const std::vector<double>& targets,
                           const RegressionForestOptions& opts) {
  validate_input(rows, targets);
  if (opts.trees == 0) throw Error("regression forest: need at least 1 tree");
  if (opts.sample_fraction <= 0.0 || opts.sample_fraction > 1.0)
    throw Error("regression forest: sample_fraction must be in (0, 1]");

  trees_.clear();
  const std::size_t width = rows.front().size();
  const std::size_t subset =
      opts.features_per_tree > 0
          ? std::min(opts.features_per_tree, width)
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(std::ceil(
                       static_cast<double>(width) * 2.0 / 3.0)));
  const auto sample_size = static_cast<std::size_t>(std::max(
      1.0, opts.sample_fraction * static_cast<double>(rows.size())));

  Rng rng(opts.seed);
  for (std::size_t t = 0; t < opts.trees; ++t) {
    // Bootstrap rows (with replacement).
    std::vector<std::vector<double>> sample_rows;
    std::vector<double> sample_targets;
    sample_rows.reserve(sample_size);
    sample_targets.reserve(sample_size);
    for (std::size_t i = 0; i < sample_size; ++i) {
      const auto pick = static_cast<std::size_t>(rng.below(rows.size()));
      sample_rows.push_back(rows[pick]);
      sample_targets.push_back(targets[pick]);
    }

    // Feature subset: first `subset` entries of a seeded shuffle.
    std::vector<int> features(width);
    std::iota(features.begin(), features.end(), 0);
    for (std::size_t i = width; i > 1; --i)
      std::swap(features[i - 1],
                features[static_cast<std::size_t>(rng.below(i))]);
    features.resize(subset);
    std::sort(features.begin(), features.end());  // deterministic order

    RegressionTreeOptions topts = opts.tree;
    topts.feature_subset = std::move(features);
    RegressionTree tree;
    tree.fit(sample_rows, sample_targets, topts);
    trees_.push_back(std::move(tree));
  }
}

RegressionForest::Prediction RegressionForest::predict(
    const std::vector<double>& row) const {
  if (!fitted()) throw Error("regression forest: predict before fit");
  Moments m;
  for (const RegressionTree& t : trees_) m.add(t.predict(row));
  Prediction out;
  out.mean = m.mean();
  out.variance = m.sse() / static_cast<double>(trees_.size());
  return out;
}

RegressionForest RegressionForest::from_trees(
    std::vector<RegressionTree> trees) {
  if (trees.empty()) throw Error("regression forest: no trees to rebuild");
  for (const RegressionTree& t : trees)
    if (!t.fitted())
      throw Error("regression forest: cannot rebuild with an unfitted tree");
  RegressionForest forest;
  forest.trees_ = std::move(trees);
  return forest;
}

}  // namespace gpustatic::ml
