#pragma once

// CART-style decision tree classifier (Gini impurity, axis-aligned
// threshold splits), built from scratch so the reproduction stays
// dependency-free. Deterministic: candidate thresholds are midpoints of
// consecutive sorted feature values, features are scanned in schema
// order, and ties keep the first-found split, so identical datasets
// always yield identical trees.

#include <cstdint>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace gpustatic::ml {

struct TreeOptions {
  std::size_t max_depth = 6;
  std::size_t min_samples_leaf = 2;
  std::size_t min_samples_split = 4;
  /// Minimum Gini decrease to accept a split. The default admits
  /// zero-gain splits (needed for XOR-like interactions, where no single
  /// split improves Gini but the children become separable); depth and
  /// leaf-size limits bound the growth instead.
  double min_gain = 0.0;
  /// When non-empty, only these feature indexes are considered for
  /// splits (the random-forest per-tree feature subset).
  std::vector<int> feature_subset;
};

class DecisionTree {
 public:
  /// Fit on the dataset (validates it first).
  void fit(const Dataset& data, const TreeOptions& opts = {});

  [[nodiscard]] int predict(const std::vector<double>& row) const;
  /// Per-class probability at the reached leaf (training fractions).
  [[nodiscard]] std::vector<double> predict_proba(
      const std::vector<double>& row) const;
  [[nodiscard]] std::vector<int> predict_all(
      const std::vector<std::vector<double>>& rows) const;

  [[nodiscard]] bool fitted() const { return !nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] int num_classes() const { return num_classes_; }

  /// Total Gini decrease attributed to each feature (unnormalized).
  [[nodiscard]] const std::vector<double>& feature_importance() const {
    return importance_;
  }

  /// Indented if/else rendering for reports.
  [[nodiscard]] std::string to_string(
      const std::vector<std::string>& feature_names) const;

 private:
  struct Node {
    bool leaf = true;
    int feature = -1;
    double threshold = 0;
    std::int32_t left = -1;   ///< row[feature] <= threshold
    std::int32_t right = -1;  ///< row[feature] >  threshold
    std::vector<double> proba;  ///< leaf class fractions
    std::size_t samples = 0;
  };

  std::int32_t build(const Dataset& data,
                     const std::vector<std::size_t>& idx,
                     const TreeOptions& opts, std::size_t depth);
  [[nodiscard]] const Node& leaf_for(const std::vector<double>& row) const;

  std::vector<Node> nodes_;
  std::vector<double> importance_;
  int num_classes_ = 0;
};

/// Gini impurity of a label multiset described by class counts.
[[nodiscard]] double gini_impurity(const std::vector<std::size_t>& counts);

}  // namespace gpustatic::ml
