#include "ml/classify.hpp"

#include <algorithm>

#include "codegen/compiler.hpp"
#include "common/error.hpp"
#include "occupancy/suggest.hpp"
#include "tuner/experiment.hpp"

namespace gpustatic::ml {

Dataset build_rank_dataset(const std::vector<CorpusEntry>& corpus,
                           const CorpusOptions& opts,
                           std::vector<std::string>* row_tags) {
  Dataset data;
  data.feature_names = feature_names();
  if (row_tags != nullptr) row_tags->clear();

  for (const CorpusEntry& entry : corpus) {
    if (entry.gpu == nullptr)
      throw Error("build_rank_dataset: corpus entry without a GPU");
    const arch::GpuSpec& gpu = *entry.gpu;

    auto trials = tuner::sweep(opts.space, entry.workload, gpu, opts.run,
                               opts.stride, opts.threads);
    const tuner::RankedTrials ranked = tuner::rank_trials(std::move(trials));
    const std::string tag = entry.workload.name + "@" + gpu.name;

    auto add_rank = [&](const std::vector<tuner::TrialRecord>& rank,
                        int label) {
      for (const tuner::TrialRecord& t : rank) {
        const codegen::Compiler c(gpu, t.params);
        const auto lw = c.compile(entry.workload);
        data.add(extract_features(lw, gpu), label);
        if (row_tags != nullptr) row_tags->push_back(tag);
      }
    };
    add_rank(ranked.rank1, kRank1Label);
    add_rank(ranked.rank2, kRank2Label);
  }
  return data;
}

void BlockSizePredictor::fit(const Dataset& data, const TreeOptions& opts) {
  tree_.fit(data, opts);
}

double BlockSizePredictor::rank1_probability(
    const dsl::WorkloadDesc& workload, const arch::GpuSpec& gpu,
    codegen::TuningParams params) const {
  if (!fitted()) throw Error("BlockSizePredictor: predict before fit");
  const codegen::Compiler c(gpu, params);
  const auto lw = c.compile(workload);
  const auto proba = tree_.predict_proba(extract_features(lw, gpu));
  return proba.size() > static_cast<std::size_t>(kRank1Label)
             ? proba[static_cast<std::size_t>(kRank1Label)]
             : 0.0;
}

std::uint32_t BlockSizePredictor::predict_block_size(
    const dsl::WorkloadDesc& workload, const arch::GpuSpec& gpu,
    const std::vector<std::uint32_t>& candidates, int block_count) const {
  const std::vector<std::uint32_t> tcs =
      candidates.empty() ? occupancy::default_thread_range() : candidates;
  if (tcs.empty())
    throw Error("predict_block_size: empty candidate list");

  std::uint32_t best_tc = 0;
  double best_p = -1.0;
  for (const std::uint32_t tc : tcs) {
    if (tc > gpu.threads_per_block) continue;
    codegen::TuningParams p;
    p.threads_per_block = static_cast<int>(tc);
    p.block_count = block_count;
    const double prob = rank1_probability(workload, gpu, p);
    if (prob > best_p) {  // strict: ties keep the smaller thread count
      best_p = prob;
      best_tc = tc;
    }
  }
  if (best_tc == 0)
    throw Error("predict_block_size: no feasible candidate");
  return best_tc;
}

CvResult cross_validate(const Dataset& data, const ModelBuilder& builder,
                        std::size_t k, std::uint64_t seed) {
  data.validate();
  CvResult result;
  result.baseline = majority_baseline(data.labels);
  const auto folds = kfold_indices(data.size(), k, seed);
  for (const auto& fold : folds) {
    if (fold.empty()) continue;
    const Dataset train =
        data.select(fold_complement(data.size(), fold));
    const Dataset test = data.select(fold);
    if (train.size() == 0) continue;
    const auto model = builder(train);
    std::vector<int> pred;
    pred.reserve(test.size());
    for (const auto& row : test.rows) pred.push_back(model(row));
    result.fold_accuracy.push_back(accuracy(pred, test.labels));
  }
  for (const double a : result.fold_accuracy) result.mean_accuracy += a;
  if (!result.fold_accuracy.empty())
    result.mean_accuracy /=
        static_cast<double>(result.fold_accuracy.size());
  return result;
}

ModelBuilder tree_builder(const TreeOptions& opts) {
  return [opts](const Dataset& train) {
    auto tree = std::make_shared<DecisionTree>();
    tree->fit(train, opts);
    return [tree](const std::vector<double>& row) {
      return tree->predict(row);
    };
  };
}

ModelBuilder logistic_builder(const LogisticOptions& opts) {
  return [opts](const Dataset& train) {
    auto model = std::make_shared<LogisticRegression>();
    model->fit(train, opts);
    return [model](const std::vector<double>& row) {
      return model->predict(row);
    };
  };
}

ModelBuilder forest_builder(const ForestOptions& opts) {
  return [opts](const Dataset& train) {
    auto model = std::make_shared<RandomForest>();
    model->fit(train, opts);
    return [model](const std::vector<double>& row) {
      return model->predict(row);
    };
  };
}

}  // namespace gpustatic::ml
