#include "ml/logistic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gpustatic::ml {

namespace {

double sigmoid(double z) {
  // Numerically stable in both tails.
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

void LogisticRegression::fit(const Dataset& data,
                             const LogisticOptions& opts) {
  data.validate();
  if (data.size() == 0) throw Error("logistic: empty training set");
  for (const int l : data.labels)
    if (l != 0 && l != 1)
      throw Error("logistic: labels must be binary {0,1}");

  scaler_.fit(data.rows);
  const auto x = scaler_.transform_all(data.rows);
  const std::size_t n = x.size();
  const std::size_t w = x.front().size();
  weights_.assign(w, 0.0);
  bias_ = 0;

  for (std::size_t it = 0; it < opts.iterations; ++it) {
    std::vector<double> grad(w, 0.0);
    double grad_bias = 0;
    for (std::size_t i = 0; i < n; ++i) {
      double z = bias_;
      for (std::size_t j = 0; j < w; ++j) z += weights_[j] * x[i][j];
      const double err =
          sigmoid(z) - static_cast<double>(data.labels[i]);
      for (std::size_t j = 0; j < w; ++j) grad[j] += err * x[i][j];
      grad_bias += err;
    }
    const double scale = opts.learning_rate / static_cast<double>(n);
    for (std::size_t j = 0; j < w; ++j)
      weights_[j] -= scale * (grad[j] + opts.l2 * weights_[j]);
    bias_ -= scale * grad_bias;
  }
}

double LogisticRegression::predict_proba(
    const std::vector<double>& row) const {
  if (!fitted()) throw Error("logistic: predict before fit");
  const auto x = scaler_.transform(row);
  double z = bias_;
  for (std::size_t j = 0; j < weights_.size(); ++j)
    z += weights_[j] * x[j];
  return sigmoid(z);
}

std::vector<int> LogisticRegression::predict_all(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<int> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(predict(r));
  return out;
}

double LogisticRegression::log_loss(const Dataset& data) const {
  if (data.size() == 0) return 0.0;
  double sum = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double p =
        std::clamp(predict_proba(data.rows[i]), 1e-12, 1.0 - 1e-12);
    sum += data.labels[i] == 1 ? -std::log(p) : -std::log(1.0 - p);
  }
  return sum / static_cast<double>(data.size());
}

}  // namespace gpustatic::ml
