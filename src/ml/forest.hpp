#pragma once

// Bagged random forest over the CART trees: bootstrap row samples plus
// per-tree feature subsets, majority vote by averaged leaf
// probabilities. Deterministic for a fixed seed. The ensemble trades
// the single tree's interpretability for variance reduction — the
// ablation/example code reports both so the trade is visible.

#include <cstdint>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/tree.hpp"

namespace gpustatic::ml {

struct ForestOptions {
  std::size_t trees = 15;
  TreeOptions tree;               ///< per-tree growth limits
  double sample_fraction = 1.0;   ///< bootstrap sample size / n
  /// Features per tree; 0 = floor(sqrt(width)), clamped to >= 1.
  std::size_t features_per_tree = 0;
  std::uint64_t seed = 7;
};

class RandomForest {
 public:
  void fit(const Dataset& data, const ForestOptions& opts = {});

  [[nodiscard]] int predict(const std::vector<double>& row) const;
  /// Mean of per-tree leaf probabilities.
  [[nodiscard]] std::vector<double> predict_proba(
      const std::vector<double>& row) const;
  [[nodiscard]] std::vector<int> predict_all(
      const std::vector<std::vector<double>>& rows) const;

  [[nodiscard]] bool fitted() const { return !trees_.empty(); }
  [[nodiscard]] std::size_t size() const { return trees_.size(); }
  [[nodiscard]] const DecisionTree& tree(std::size_t i) const {
    return trees_.at(i);
  }

 private:
  std::vector<DecisionTree> trees_;
  int num_classes_ = 0;
};

}  // namespace gpustatic::ml
