#pragma once

// Tabular dataset plumbing for the learned classifiers: row-major feature
// matrix + integer labels, deterministic shuffled k-fold splits, feature
// standardization, and the usual classification metrics. No external
// dependencies — everything is deliberately small and testable.

#include <cstdint>
#include <string>
#include <vector>

namespace gpustatic::ml {

struct Dataset {
  std::vector<std::string> feature_names;
  std::vector<std::vector<double>> rows;  ///< row-major features
  std::vector<int> labels;                ///< class per row (0-based)

  [[nodiscard]] std::size_t size() const { return rows.size(); }
  [[nodiscard]] std::size_t width() const {
    return rows.empty() ? feature_names.size() : rows.front().size();
  }
  [[nodiscard]] int num_classes() const;

  void add(std::vector<double> features, int label);

  /// Subset by row indices (copies).
  [[nodiscard]] Dataset select(const std::vector<std::size_t>& idx) const;

  /// Throws Error when rows are ragged, labels mismatch, or a feature is
  /// non-finite. Called by the trainers before fitting.
  void validate() const;
};

/// Deterministic shuffled k-fold partition of [0, n): every index lands
/// in exactly one fold; fold sizes differ by at most one.
[[nodiscard]] std::vector<std::vector<std::size_t>> kfold_indices(
    std::size_t n, std::size_t k, std::uint64_t seed);

/// Complement of one fold: all indices not in `fold`, in ascending order.
[[nodiscard]] std::vector<std::size_t> fold_complement(
    std::size_t n, const std::vector<std::size_t>& fold);

/// Per-feature standardization (z-score); constant features map to 0.
class Scaler {
 public:
  void fit(const std::vector<std::vector<double>>& rows);
  [[nodiscard]] std::vector<double> transform(
      const std::vector<double>& row) const;
  [[nodiscard]] std::vector<std::vector<double>> transform_all(
      const std::vector<std::vector<double>>& rows) const;

  [[nodiscard]] const std::vector<double>& means() const { return mean_; }
  [[nodiscard]] const std::vector<double>& stddevs() const { return std_; }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

/// Fraction of rows where prediction == label.
[[nodiscard]] double accuracy(const std::vector<int>& predicted,
                              const std::vector<int>& labels);

/// confusion[i][j] = rows with label i predicted as j.
[[nodiscard]] std::vector<std::vector<std::size_t>> confusion_matrix(
    const std::vector<int>& predicted, const std::vector<int>& labels,
    int num_classes);

/// Majority-class share: the accuracy of always predicting the most
/// frequent label (the baseline any classifier must beat).
[[nodiscard]] double majority_baseline(const std::vector<int>& labels);

}  // namespace gpustatic::ml
