#pragma once

// Static feature extraction for learned kernel classification.
//
// The paper's future work (Sec. VII) names "machine learning for code
// classification"; its closest related work, STATuner (Sec. V), builds a
// classifier over *static* metrics of a CUDA kernel — instruction mix,
// loops, register usage, shared memory, synchronization — to predict the
// best block size. This module extracts the equivalent feature vector
// from our compiled binaries. Everything here is derivable without any
// program run, so a model trained on these features stays inside the
// paper's static-only budget.

#include <string>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "codegen/compiler.hpp"

namespace gpustatic::ml {

/// Fixed-order feature names (the dataset schema).
[[nodiscard]] const std::vector<std::string>& feature_names();

/// Number of features in the schema.
[[nodiscard]] std::size_t feature_count();

/// Extract the static feature vector of one compiled variant on one GPU.
/// Order matches feature_names(); all features are finite and already
/// roughly unit-scaled (counts are log-compressed, ratios are raw).
[[nodiscard]] std::vector<double> extract_features(
    const codegen::LoweredWorkload& lw, const arch::GpuSpec& gpu);

/// Same schema, but launch-shape features (threads/blocks/L1 and the
/// occupancy outputs they drive) come from `params` rather than from
/// `lw.params`. A codegen::CompilationCache canonicalizes lowerings per
/// CodegenKey — every key-mate shares the first-seen launch shape — so
/// corpus builders scoring many points against one cached lowering must
/// pass the point's own params here. Code-structure features (mix,
/// divergence, regs, smem) still come from the lowering, which is
/// exactly what the key shares.
[[nodiscard]] std::vector<double> extract_features(
    const codegen::LoweredWorkload& lw, const arch::GpuSpec& gpu,
    const codegen::TuningParams& params);

}  // namespace gpustatic::ml
