#include "ml/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gpustatic::ml {

int Dataset::num_classes() const {
  int m = 0;
  for (const int l : labels) m = std::max(m, l + 1);
  return m;
}

void Dataset::add(std::vector<double> features, int label) {
  rows.push_back(std::move(features));
  labels.push_back(label);
}

Dataset Dataset::select(const std::vector<std::size_t>& idx) const {
  Dataset out;
  out.feature_names = feature_names;
  out.rows.reserve(idx.size());
  out.labels.reserve(idx.size());
  for (const std::size_t i : idx) {
    out.rows.push_back(rows.at(i));
    out.labels.push_back(labels.at(i));
  }
  return out;
}

void Dataset::validate() const {
  if (rows.size() != labels.size())
    throw Error("dataset: rows/labels size mismatch");
  const std::size_t w = width();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != w)
      throw Error("dataset: ragged row " + std::to_string(r));
    for (const double v : rows[r])
      if (!std::isfinite(v))
        throw Error("dataset: non-finite feature in row " +
                    std::to_string(r));
    if (labels[r] < 0) throw Error("dataset: negative label");
  }
}

std::vector<std::vector<std::size_t>> kfold_indices(std::size_t n,
                                                    std::size_t k,
                                                    std::uint64_t seed) {
  if (k == 0) throw Error("kfold: k must be positive");
  k = std::min(k, std::max<std::size_t>(1, n));
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  // Fisher-Yates with the library RNG for cross-platform determinism.
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i));
    std::swap(order[i - 1], order[j]);
  }
  std::vector<std::vector<std::size_t>> folds(k);
  for (std::size_t i = 0; i < n; ++i) folds[i % k].push_back(order[i]);
  for (auto& f : folds) std::sort(f.begin(), f.end());
  return folds;
}

std::vector<std::size_t> fold_complement(
    std::size_t n, const std::vector<std::size_t>& fold) {
  std::vector<bool> in_fold(n, false);
  for (const std::size_t i : fold) in_fold.at(i) = true;
  std::vector<std::size_t> out;
  out.reserve(n - fold.size());
  for (std::size_t i = 0; i < n; ++i)
    if (!in_fold[i]) out.push_back(i);
  return out;
}

void Scaler::fit(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) throw Error("scaler: empty fit set");
  const std::size_t w = rows.front().size();
  for (std::size_t r = 0; r < rows.size(); ++r)
    if (rows[r].size() != w)
      throw Error("scaler: ragged row " + std::to_string(r));
  mean_.assign(w, 0.0);
  std_.assign(w, 0.0);
  for (const auto& r : rows)
    for (std::size_t j = 0; j < w; ++j) mean_[j] += r[j];
  for (double& m : mean_) m /= static_cast<double>(rows.size());
  for (const auto& r : rows)
    for (std::size_t j = 0; j < w; ++j) {
      const double d = r[j] - mean_[j];
      std_[j] += d * d;
    }
  for (double& s : std_)
    s = std::sqrt(s / static_cast<double>(rows.size()));
}

std::vector<double> Scaler::transform(const std::vector<double>& row) const {
  // Width must match the fitted schema: silently zipping a wider row
  // against mean_/std_ would read past the fitted statistics.
  if (row.size() != mean_.size())
    throw Error("scaler: row width " + std::to_string(row.size()) +
                " does not match fitted width " +
                std::to_string(mean_.size()));
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j)
    out[j] = std_[j] > 1e-12 ? (row[j] - mean_[j]) / std_[j] : 0.0;
  return out;
}

std::vector<std::vector<double>> Scaler::transform_all(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<std::vector<double>> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(transform(r));
  return out;
}

double accuracy(const std::vector<int>& predicted,
                const std::vector<int>& labels) {
  if (predicted.size() != labels.size())
    throw Error("accuracy: size mismatch");
  if (predicted.empty()) return 0.0;
  std::size_t hit = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i)
    if (predicted[i] == labels[i]) ++hit;
  return static_cast<double>(hit) / static_cast<double>(predicted.size());
}

std::vector<std::vector<std::size_t>> confusion_matrix(
    const std::vector<int>& predicted, const std::vector<int>& labels,
    int num_classes) {
  if (predicted.size() != labels.size())
    throw Error("confusion_matrix: size mismatch");
  std::vector<std::vector<std::size_t>> m(
      static_cast<std::size_t>(num_classes),
      std::vector<std::size_t>(static_cast<std::size_t>(num_classes), 0));
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const auto a = static_cast<std::size_t>(labels[i]);
    const auto p = static_cast<std::size_t>(predicted[i]);
    if (a < m.size() && p < m.size()) m[a][p] += 1;
  }
  return m;
}

double majority_baseline(const std::vector<int>& labels) {
  if (labels.empty()) return 0.0;
  std::vector<std::size_t> count;
  for (const int l : labels) {
    if (static_cast<std::size_t>(l) >= count.size())
      count.resize(static_cast<std::size_t>(l) + 1, 0);
    count[static_cast<std::size_t>(l)] += 1;
  }
  const std::size_t best = *std::max_element(count.begin(), count.end());
  return static_cast<double>(best) / static_cast<double>(labels.size());
}

}  // namespace gpustatic::ml
