#include "ml/forest.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gpustatic::ml {

void RandomForest::fit(const Dataset& data, const ForestOptions& opts) {
  data.validate();
  if (data.size() == 0) throw Error("random forest: empty training set");
  if (opts.trees == 0) throw Error("random forest: need at least 1 tree");
  if (opts.sample_fraction <= 0.0 || opts.sample_fraction > 1.0)
    throw Error("random forest: sample_fraction must be in (0, 1]");

  trees_.clear();
  num_classes_ = data.num_classes();
  const std::size_t width = data.width();
  const std::size_t subset =
      opts.features_per_tree > 0
          ? std::min(opts.features_per_tree, width)
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::sqrt(static_cast<double>(width))));
  const auto sample_size = static_cast<std::size_t>(
      std::max(1.0, opts.sample_fraction * static_cast<double>(data.size())));

  Rng rng(opts.seed);
  for (std::size_t t = 0; t < opts.trees; ++t) {
    // Bootstrap rows (with replacement).
    std::vector<std::size_t> rows;
    rows.reserve(sample_size);
    for (std::size_t i = 0; i < sample_size; ++i)
      rows.push_back(static_cast<std::size_t>(rng.below(data.size())));
    Dataset sample = data.select(rows);

    // Feature subset: first `subset` entries of a seeded shuffle.
    std::vector<int> features(width);
    std::iota(features.begin(), features.end(), 0);
    for (std::size_t i = width; i > 1; --i)
      std::swap(features[i - 1],
                features[static_cast<std::size_t>(rng.below(i))]);
    features.resize(subset);
    std::sort(features.begin(), features.end());  // deterministic order

    TreeOptions topts = opts.tree;
    topts.feature_subset = std::move(features);
    DecisionTree tree;
    tree.fit(sample, topts);
    trees_.push_back(std::move(tree));
  }
}

std::vector<double> RandomForest::predict_proba(
    const std::vector<double>& row) const {
  if (!fitted()) throw Error("random forest: predict before fit");
  std::vector<double> mean(static_cast<std::size_t>(num_classes_), 0.0);
  for (const DecisionTree& t : trees_) {
    const auto p = t.predict_proba(row);
    for (std::size_t c = 0; c < mean.size() && c < p.size(); ++c)
      mean[c] += p[c];
  }
  for (double& v : mean) v /= static_cast<double>(trees_.size());
  return mean;
}

int RandomForest::predict(const std::vector<double>& row) const {
  const auto p = predict_proba(row);
  return static_cast<int>(
      std::max_element(p.begin(), p.end()) - p.begin());
}

std::vector<int> RandomForest::predict_all(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<int> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(predict(r));
  return out;
}

}  // namespace gpustatic::ml
