#pragma once

// Regression companions to the CART classifier (tree.hpp) and bagged
// forest (forest.hpp): variance-reduction threshold splits, mean-value
// leaves, and a bagged ensemble whose per-tree disagreement doubles as
// a confidence signal. This is the model class behind the learned cost
// model (src/learn): targets are continuous costs (log-compressed trial
// times), and the forest's spread at a point tells the consumer whether
// the prediction is trustworthy enough to rank on.
//
// Determinism contract (same as the classifiers): candidate thresholds
// are midpoints of consecutive sorted feature values, features are
// scanned in schema order, ties keep the first-found split, and all
// randomness (bootstrap samples, per-tree feature subsets) comes from
// the library RNG seeded by the caller — identical inputs always yield
// identical models. Zero-variance (degenerate) feature columns offer no
// candidate threshold and are therefore skipped, never poisoning a fit.
//
// Node vectors are exposed (nodes()/from_nodes()) so the learned-model
// file format (learn/model.hpp) can serialize and rebuild forests
// without friending its way into the internals.

#include <cstdint>
#include <vector>

namespace gpustatic::ml {

struct RegressionTreeOptions {
  std::size_t max_depth = 8;
  std::size_t min_samples_leaf = 2;
  std::size_t min_samples_split = 4;
  /// Minimum summed-squared-error decrease to accept a split; splits
  /// that reduce nothing grow no tree.
  double min_gain = 1e-12;
  /// When non-empty, only these feature indexes are considered for
  /// splits (the forest's per-tree feature subset).
  std::vector<int> feature_subset;
};

class RegressionTree {
 public:
  /// One node; `feature < 0` marks a leaf carrying `value` (the mean
  /// target of its training rows).
  struct Node {
    int feature = -1;
    double threshold = 0;
    std::int32_t left = -1;   ///< row[feature] <= threshold
    std::int32_t right = -1;  ///< row[feature] >  threshold
    double value = 0;
    std::size_t samples = 0;

    friend bool operator==(const Node&, const Node&) = default;
  };

  /// Fit on `rows`/`targets` (aligned by index). Throws Error on empty,
  /// ragged, or non-finite input.
  void fit(const std::vector<std::vector<double>>& rows,
           const std::vector<double>& targets,
           const RegressionTreeOptions& opts = {});

  [[nodiscard]] double predict(const std::vector<double>& row) const;

  [[nodiscard]] bool fitted() const { return !nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }

  /// Rebuild a tree from serialized nodes (learn/model.hpp's loader).
  /// Validates child indexes; throws Error on malformed structure.
  [[nodiscard]] static RegressionTree from_nodes(std::vector<Node> nodes);

 private:
  std::int32_t build(const std::vector<std::vector<double>>& rows,
                     const std::vector<double>& targets,
                     const std::vector<std::size_t>& idx,
                     const RegressionTreeOptions& opts, std::size_t depth);

  std::vector<Node> nodes_;
};

struct RegressionForestOptions {
  std::size_t trees = 24;
  RegressionTreeOptions tree;     ///< per-tree growth limits
  double sample_fraction = 1.0;   ///< bootstrap sample size / n
  /// Features per tree; 0 = max(1, ceil(width * 2 / 3)) — regression
  /// forests want wider subsets than the classifier's sqrt heuristic.
  std::size_t features_per_tree = 0;
  std::uint64_t seed = 17;
};

class RegressionForest {
 public:
  /// Ensemble prediction: the per-tree mean plus the population
  /// variance of the per-tree predictions (the confidence signal).
  struct Prediction {
    double mean = 0;
    double variance = 0;
  };

  void fit(const std::vector<std::vector<double>>& rows,
           const std::vector<double>& targets,
           const RegressionForestOptions& opts = {});

  [[nodiscard]] Prediction predict(const std::vector<double>& row) const;

  [[nodiscard]] bool fitted() const { return !trees_.empty(); }
  [[nodiscard]] std::size_t size() const { return trees_.size(); }
  [[nodiscard]] const std::vector<RegressionTree>& trees() const {
    return trees_;
  }

  /// Rebuild from deserialized trees (learn/model.hpp's loader).
  [[nodiscard]] static RegressionForest from_trees(
      std::vector<RegressionTree> trees);

 private:
  std::vector<RegressionTree> trees_;
};

}  // namespace gpustatic::ml
