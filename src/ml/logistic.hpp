#pragma once

// L2-regularized binary logistic regression trained by batch gradient
// descent, with internal feature standardization. Serves as the linear
// baseline next to the decision tree (STATuner compared several model
// families before settling on one; we keep two so the ablation bench can
// report both).

#include <cstdint>
#include <vector>

#include "ml/dataset.hpp"

namespace gpustatic::ml {

struct LogisticOptions {
  std::size_t iterations = 400;
  double learning_rate = 0.3;
  double l2 = 1e-3;
};

class LogisticRegression {
 public:
  /// Fit on a dataset whose labels are {0, 1}.
  void fit(const Dataset& data, const LogisticOptions& opts = {});

  /// P(class 1 | row).
  [[nodiscard]] double predict_proba(const std::vector<double>& row) const;
  [[nodiscard]] int predict(const std::vector<double>& row) const {
    return predict_proba(row) >= 0.5 ? 1 : 0;
  }
  [[nodiscard]] std::vector<int> predict_all(
      const std::vector<std::vector<double>>& rows) const;

  [[nodiscard]] bool fitted() const { return !weights_.empty(); }
  /// Weights in standardized feature space (no bias term included).
  [[nodiscard]] const std::vector<double>& weights() const {
    return weights_;
  }
  [[nodiscard]] double bias() const { return bias_; }

  /// Mean negative log-likelihood on a dataset (for convergence tests).
  [[nodiscard]] double log_loss(const Dataset& data) const;

 private:
  Scaler scaler_;
  std::vector<double> weights_;
  double bias_ = 0;
};

}  // namespace gpustatic::ml
