#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/error.hpp"

namespace gpustatic::ml {

double gini_impurity(const std::vector<std::size_t>& counts) {
  std::size_t total = 0;
  for (const std::size_t c : counts) total += c;
  if (total == 0) return 0.0;
  double sum_sq = 0;
  for (const std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

namespace {

struct SplitChoice {
  bool found = false;
  int feature = -1;
  double threshold = 0;
  /// Starts below zero so a zero-gain split is still acceptable: greedy
  /// Gini has no positive first split on XOR-like data, yet the children
  /// become separable one level down. min_gain filters afterwards.
  double gain = -1.0;
};

std::vector<std::size_t> class_counts(const Dataset& data,
                                      const std::vector<std::size_t>& idx,
                                      int num_classes) {
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_classes), 0);
  for (const std::size_t i : idx)
    counts[static_cast<std::size_t>(data.labels[i])] += 1;
  return counts;
}

/// Best threshold over one feature via a single sorted sweep: maintain
/// left/right class counts while moving samples across the boundary.
void best_split_on_feature(const Dataset& data,
                           const std::vector<std::size_t>& idx,
                           int feature, int num_classes,
                           double parent_impurity,
                           std::size_t min_samples_leaf, SplitChoice& best) {
  const auto f = static_cast<std::size_t>(feature);
  std::vector<std::size_t> order = idx;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              return data.rows[a][f] < data.rows[b][f];
            });

  std::vector<std::size_t> left(static_cast<std::size_t>(num_classes), 0);
  std::vector<std::size_t> right =
      class_counts(data, idx, num_classes);
  const double n = static_cast<double>(idx.size());

  for (std::size_t cut = 1; cut < order.size(); ++cut) {
    const std::size_t moved = order[cut - 1];
    const auto cls = static_cast<std::size_t>(data.labels[moved]);
    left[cls] += 1;
    right[cls] -= 1;

    const double a = data.rows[order[cut - 1]][f];
    const double b = data.rows[order[cut]][f];
    if (a == b) continue;  // cannot separate equal values
    if (cut < min_samples_leaf || order.size() - cut < min_samples_leaf)
      continue;

    const double wl = static_cast<double>(cut) / n;
    const double wr = 1.0 - wl;
    const double child =
        wl * gini_impurity(left) + wr * gini_impurity(right);
    const double gain = parent_impurity - child;
    if (gain > best.gain) {
      best.found = true;
      best.feature = feature;
      best.threshold = (a + b) / 2.0;
      best.gain = gain;
    }
  }
}

}  // namespace

void DecisionTree::fit(const Dataset& data, const TreeOptions& opts) {
  data.validate();
  if (data.size() == 0) throw Error("decision tree: empty training set");
  nodes_.clear();
  num_classes_ = data.num_classes();
  importance_.assign(data.width(), 0.0);
  std::vector<std::size_t> idx(data.size());
  std::iota(idx.begin(), idx.end(), 0);
  build(data, idx, opts, 0);
}

std::int32_t DecisionTree::build(const Dataset& data,
                                 const std::vector<std::size_t>& idx,
                                 const TreeOptions& opts,
                                 std::size_t depth) {
  const auto counts = class_counts(data, idx, num_classes_);
  const double impurity = gini_impurity(counts);

  Node node;
  node.samples = idx.size();
  node.proba.resize(static_cast<std::size_t>(num_classes_));
  for (std::size_t c = 0; c < node.proba.size(); ++c)
    node.proba[c] =
        static_cast<double>(counts[c]) / static_cast<double>(idx.size());

  SplitChoice best;
  if (depth < opts.max_depth && idx.size() >= opts.min_samples_split &&
      impurity > 0.0) {
    if (opts.feature_subset.empty()) {
      for (int f = 0; f < static_cast<int>(data.width()); ++f)
        best_split_on_feature(data, idx, f, num_classes_, impurity,
                              opts.min_samples_leaf, best);
    } else {
      for (const int f : opts.feature_subset)
        if (f >= 0 && f < static_cast<int>(data.width()))
          best_split_on_feature(data, idx, f, num_classes_, impurity,
                                opts.min_samples_leaf, best);
    }
    if (best.gain < opts.min_gain) best.found = false;
  }

  const auto my_index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(std::move(node));

  if (best.found) {
    std::vector<std::size_t> left_idx;
    std::vector<std::size_t> right_idx;
    const auto f = static_cast<std::size_t>(best.feature);
    for (const std::size_t i : idx) {
      if (data.rows[i][f] <= best.threshold)
        left_idx.push_back(i);
      else
        right_idx.push_back(i);
    }
    importance_[f] +=
        best.gain * static_cast<double>(idx.size());
    nodes_[static_cast<std::size_t>(my_index)].leaf = false;
    nodes_[static_cast<std::size_t>(my_index)].feature = best.feature;
    nodes_[static_cast<std::size_t>(my_index)].threshold = best.threshold;
    const std::int32_t l = build(data, left_idx, opts, depth + 1);
    nodes_[static_cast<std::size_t>(my_index)].left = l;
    const std::int32_t r = build(data, right_idx, opts, depth + 1);
    nodes_[static_cast<std::size_t>(my_index)].right = r;
  }
  return my_index;
}

const DecisionTree::Node& DecisionTree::leaf_for(
    const std::vector<double>& row) const {
  if (nodes_.empty()) throw Error("decision tree: predict before fit");
  std::size_t at = 0;
  while (!nodes_[at].leaf) {
    const Node& n = nodes_[at];
    const double v = row.at(static_cast<std::size_t>(n.feature));
    at = static_cast<std::size_t>(v <= n.threshold ? n.left : n.right);
  }
  return nodes_[at];
}

int DecisionTree::predict(const std::vector<double>& row) const {
  const std::vector<double>& p = leaf_for(row).proba;
  return static_cast<int>(
      std::max_element(p.begin(), p.end()) - p.begin());
}

std::vector<double> DecisionTree::predict_proba(
    const std::vector<double>& row) const {
  return leaf_for(row).proba;
}

std::vector<int> DecisionTree::predict_all(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<int> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(predict(r));
  return out;
}

std::size_t DecisionTree::depth() const {
  // Depth via iterative traversal (nodes are stored pre-order).
  std::size_t best = 0;
  std::vector<std::pair<std::size_t, std::size_t>> stack;
  if (!nodes_.empty()) stack.emplace_back(0, 1);
  while (!stack.empty()) {
    const auto [at, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    const Node& n = nodes_[at];
    if (!n.leaf) {
      stack.emplace_back(static_cast<std::size_t>(n.left), d + 1);
      stack.emplace_back(static_cast<std::size_t>(n.right), d + 1);
    }
  }
  return best;
}

std::string DecisionTree::to_string(
    const std::vector<std::string>& feature_names) const {
  std::ostringstream os;
  std::vector<std::pair<std::size_t, std::size_t>> stack;
  if (!nodes_.empty()) stack.emplace_back(0, 0);
  while (!stack.empty()) {
    const auto [at, indent] = stack.back();
    stack.pop_back();
    const Node& n = nodes_[at];
    os << std::string(indent * 2, ' ');
    if (n.leaf) {
      const int cls = static_cast<int>(
          std::max_element(n.proba.begin(), n.proba.end()) -
          n.proba.begin());
      os << "-> class " << cls << " (" << n.samples << " samples)\n";
    } else {
      const auto f = static_cast<std::size_t>(n.feature);
      const std::string name =
          f < feature_names.size() ? feature_names[f]
                                   : "f" + std::to_string(f);
      os << name << " <= " << n.threshold << "?\n";
      // Push right first so left renders first (pre-order).
      stack.emplace_back(static_cast<std::size_t>(n.right), indent + 1);
      stack.emplace_back(static_cast<std::size_t>(n.left), indent + 1);
    }
  }
  return os.str();
}

}  // namespace gpustatic::ml
