#pragma once

// Fig. 7-style occupancy-calculator panels: the impact of varying block
// size / register count / shared memory on multiprocessor warp occupancy,
// rendered as ASCII charts.

#include <string>

#include "arch/gpu_spec.hpp"
#include "occupancy/occupancy.hpp"

namespace gpustatic::occupancy {

/// Render the three "impact of varying X" panels for a kernel
/// configuration, marking the current operating point with '<'.
[[nodiscard]] std::string calculator_report(const arch::GpuSpec& gpu,
                                            const KernelParams& current);

}  // namespace gpustatic::occupancy
