#include "occupancy/suggest.hpp"

#include <algorithm>

namespace gpustatic::occupancy {

std::vector<std::uint32_t> default_thread_range() {
  std::vector<std::uint32_t> out;
  for (std::uint32_t t = 32; t <= 1024; t += 32) out.push_back(t);
  return out;
}

Suggestion suggest(const arch::GpuSpec& gpu, std::uint32_t regs_per_thread,
                   std::uint32_t smem_per_block,
                   const std::vector<std::uint32_t>& thread_range) {
  Suggestion s;
  s.regs_used = regs_per_thread;

  auto occ_at = [&](std::uint32_t t, std::uint32_t ru) {
    return calculate(gpu, KernelParams{t, ru, smem_per_block});
  };

  // Pass 1: best achievable occupancy over the thread grid.
  for (const std::uint32_t t : thread_range)
    s.occ_star = std::max(s.occ_star, occ_at(t, regs_per_thread).occupancy);

  // Pass 2: all thread counts achieving it.
  std::uint32_t blocks_needed = 1;
  for (const std::uint32_t t : thread_range) {
    const Result r = occ_at(t, regs_per_thread);
    if (r.occupancy == s.occ_star) {
      s.thread_candidates.push_back(t);
      blocks_needed = std::max(blocks_needed, r.active_blocks);
    }
  }

  // Register headroom R*: the largest Ru' >= Ru for which some candidate
  // still reaches occ*.
  std::uint32_t best_ru = regs_per_thread;
  for (std::uint32_t ru = regs_per_thread + 1; ru <= gpu.regs_per_thread;
       ++ru) {
    double best = 0.0;
    for (const std::uint32_t t : s.thread_candidates)
      best = std::max(best, occ_at(t, ru).occupancy);
    if (best < s.occ_star) break;
    best_ru = ru;
  }
  s.reg_headroom = best_ru - regs_per_thread;

  // Shared memory budget S*: with B* resident blocks per SM at occ*, each
  // block may use up to S_sm / B* bytes (Eq. 5's pool).
  s.smem_budget = gpu.smem_per_block / std::max(1u, blocks_needed);

  return s;
}

MaxPotential max_potential_block_size(
    const arch::GpuSpec& gpu, std::uint32_t regs_per_thread,
    std::uint32_t smem_per_block,
    const std::vector<std::uint32_t>& thread_range) {
  MaxPotential best;
  for (const std::uint32_t t : thread_range) {
    if (t > gpu.threads_per_block) continue;
    const Result r = calculate(
        gpu, KernelParams{t, regs_per_thread, smem_per_block});
    // '>=' so equal-occupancy ties resolve to the LARGER block size, as
    // the CUDA API's downward scan does.
    if (r.occupancy >= best.occupancy) {
      best.block_size = t;
      best.active_blocks = r.active_blocks;
      best.occupancy = r.occupancy;
    }
  }
  return best;
}

}  // namespace gpustatic::occupancy
