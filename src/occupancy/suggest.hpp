#pragma once

// Parameter suggestion (Table VII): the thread counts T* that reach the
// best achievable occupancy occ* for a kernel's measured register/shared
// memory footprint, plus the register headroom [Ru : R*] and the shared
// memory budget S* compatible with occ*.

#include <cstdint>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "occupancy/occupancy.hpp"

namespace gpustatic::occupancy {

struct Suggestion {
  /// T*: every thread count in the candidate range achieving occ*.
  std::vector<std::uint32_t> thread_candidates;
  std::uint32_t regs_used = 0;      ///< Ru as compiled.
  std::uint32_t reg_headroom = 0;   ///< R*: extra regs/thread keeping occ*.
  /// S*: shared memory per block (bytes) spendable at occ* (Table VII
  /// prints this column in bytes).
  std::uint32_t smem_budget = 0;
  double occ_star = 0.0;            ///< occ*: best achievable occupancy.
};

/// Thread-count candidate grid of Table III: 32..1024 step 32.
[[nodiscard]] std::vector<std::uint32_t> default_thread_range();

/// Compute the Table VII row for a kernel with footprint (Ru, Su) on one
/// GPU, scanning `thread_range` (defaults to Table III's grid).
[[nodiscard]] Suggestion suggest(
    const arch::GpuSpec& gpu, std::uint32_t regs_per_thread,
    std::uint32_t smem_per_block,
    const std::vector<std::uint32_t>& thread_range = default_thread_range());

/// The CUDA Occupancy API baseline (Sec. V): the runtime's
/// cudaOccupancyMaxPotentialBlockSize returns ONE launch configuration
/// expected to reach the maximum potential occupancy. Mirrored here:
/// the largest thread count in `thread_range` achieving the best
/// occupancy for footprint (Ru, Su) — "largest" because the CUDA
/// implementation scans block sizes downward and reports the first
/// maximum. Returns {block_size, active blocks per SM at that size}.
struct MaxPotential {
  std::uint32_t block_size = 0;
  std::uint32_t active_blocks = 0;
  double occupancy = 0;
};
[[nodiscard]] MaxPotential max_potential_block_size(
    const arch::GpuSpec& gpu, std::uint32_t regs_per_thread,
    std::uint32_t smem_per_block,
    const std::vector<std::uint32_t>& thread_range = default_thread_range());

}  // namespace gpustatic::occupancy
