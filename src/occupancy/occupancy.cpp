#include "occupancy/occupancy.hpp"

#include <algorithm>

namespace gpustatic::occupancy {

const char* Result::limiter() const {
  const std::uint32_t m =
      std::min({blocks_warp_limited, blocks_reg_limited,
                blocks_smem_limited});
  if (m == blocks_reg_limited && blocks_reg_limited < blocks_warp_limited)
    return "registers";
  if (m == blocks_smem_limited && blocks_smem_limited < blocks_warp_limited)
    return "smem";
  return "warps";
}

std::uint32_t blocks_limited_by_warps(const arch::GpuSpec& gpu,
                                      std::uint32_t threads_per_block) {
  // Eq. 3: G_psiW = min(B^cc_mp, floor(W_sm / W_B)),
  // W_sm = W^cc_mp, W_B = ceil(Tu / T^cc_W).
  if (threads_per_block == 0) return gpu.blocks_per_mp;
  const std::uint32_t warps_per_block =
      (threads_per_block + gpu.threads_per_warp - 1) / gpu.threads_per_warp;
  return std::min(gpu.blocks_per_mp, gpu.warps_per_mp / warps_per_block);
}

std::uint32_t blocks_limited_by_registers(const arch::GpuSpec& gpu,
                                          std::uint32_t regs_per_thread,
                                          std::uint32_t threads_per_block) {
  // Eq. 4. Case 1: Ru beyond the architectural per-thread maximum is an
  // illegal launch. Case 3: unspecified Ru does not constrain. Case 2:
  // the register file holds floor(R^cc_fs / (Ru * T^cc_W)) warps; a block
  // needs W_B of them. (The paper's Table VII numbers correspond to this
  // un-rounded allocation; see DESIGN.md.)
  if (regs_per_thread > gpu.regs_per_thread) return 0;
  if (regs_per_thread == 0) return gpu.blocks_per_mp;
  const std::uint32_t warps_per_block =
      (threads_per_block + gpu.threads_per_warp - 1) / gpu.threads_per_warp;
  const std::uint32_t warps_by_regs =
      gpu.regs_per_block / (regs_per_thread * gpu.threads_per_warp);
  return warps_by_regs / std::max(1u, warps_per_block);
}

std::uint32_t blocks_limited_by_smem(const arch::GpuSpec& gpu,
                                     std::uint32_t smem_per_block) {
  // Eq. 5 with S_sm = S^cc_B (the paper fixes the per-SM shared pool to
  // the per-block maximum on every architecture — this is what makes the
  // Table VII S* column come out as 49152 / B*).
  if (smem_per_block > gpu.smem_per_block) return 0;
  if (smem_per_block == 0) return gpu.blocks_per_mp;
  return gpu.smem_per_block / smem_per_block;
}

Result calculate(const arch::GpuSpec& gpu, const KernelParams& p) {
  Result r;
  r.warps_per_block =
      (p.threads_per_block + gpu.threads_per_warp - 1) /
      gpu.threads_per_warp;
  r.blocks_warp_limited = blocks_limited_by_warps(gpu, p.threads_per_block);
  r.blocks_reg_limited =
      blocks_limited_by_registers(gpu, p.regs_per_thread,
                                  p.threads_per_block);
  r.blocks_smem_limited = blocks_limited_by_smem(gpu, p.smem_per_block);
  // Eq. 1: B*mp = min over resource constraints.
  r.active_blocks = std::min({r.blocks_warp_limited, r.blocks_reg_limited,
                              r.blocks_smem_limited});
  // Eq. 2: occ = W*mp / W^cc_mp with W*mp = B*mp x W_B.
  r.active_warps = r.active_blocks * r.warps_per_block;
  r.active_warps = std::min(r.active_warps, gpu.warps_per_mp);
  r.occupancy = static_cast<double>(r.active_warps) /
                static_cast<double>(gpu.warps_per_mp);
  return r;
}

}  // namespace gpustatic::occupancy
