#include "occupancy/report.hpp"

#include "common/strings.hpp"
#include "common/table.hpp"

namespace gpustatic::occupancy {

namespace {

constexpr std::size_t kBarWidth = 32;

std::string panel_header(const std::string& title) {
  return title + "\n" + std::string(title.size(), '-') + "\n";
}

}  // namespace

std::string calculator_report(const arch::GpuSpec& gpu,
                              const KernelParams& current) {
  std::string out;
  const Result now = calculate(gpu, current);
  out += "Occupancy calculator for " + gpu.name + " (" +
         std::string(arch::family_name(gpu.family)) + ", cc " +
         str::format_trimmed(gpu.compute_capability, 1) + ")\n";
  out += "Current: Tu=" + std::to_string(current.threads_per_block) +
         " Ru=" + std::to_string(current.regs_per_thread) +
         " Su=" + std::to_string(current.smem_per_block) + "B -> " +
         std::to_string(now.active_warps) + "/" +
         std::to_string(gpu.warps_per_mp) + " warps (occ " +
         str::format_double(now.occupancy * 100.0, 1) + "%, limiter: " +
         now.limiter() + ")\n\n";

  out += panel_header("Impact of varying block size (threads per block)");
  for (std::uint32_t t = 32; t <= gpu.threads_per_block; t += 64) {
    const Result r =
        calculate(gpu, KernelParams{t, current.regs_per_thread,
                                    current.smem_per_block});
    out += (t == current.threads_per_block ? "<" : " ");
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%5u ", t);
    out += buf;
    out += ascii_bar(static_cast<double>(r.active_warps),
                     static_cast<double>(gpu.warps_per_mp), kBarWidth);
    out += " " + std::to_string(r.active_warps) + "\n";
  }

  out += "\n" + panel_header("Impact of varying register count per thread");
  for (std::uint32_t ru = 8; ru <= std::min(64u, gpu.regs_per_thread);
       ru += 8) {
    const Result r =
        calculate(gpu, KernelParams{current.threads_per_block, ru,
                                    current.smem_per_block});
    out += (ru == current.regs_per_thread ? "<" : " ");
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%5u ", ru);
    out += buf;
    out += ascii_bar(static_cast<double>(r.active_warps),
                     static_cast<double>(gpu.warps_per_mp), kBarWidth);
    out += " " + std::to_string(r.active_warps) + "\n";
  }

  out += "\n" + panel_header("Impact of varying shared memory per block");
  for (std::uint32_t su = 0; su <= gpu.smem_per_block; su += 6144) {
    const Result r =
        calculate(gpu, KernelParams{current.threads_per_block,
                                    current.regs_per_thread, su});
    out += (su == current.smem_per_block ? "<" : " ");
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%5u ", su);
    out += buf;
    out += ascii_bar(static_cast<double>(r.active_warps),
                     static_cast<double>(gpu.warps_per_mp), kBarWidth);
    out += " " + std::to_string(r.active_warps) + "\n";
  }
  return out;
}

}  // namespace gpustatic::occupancy
