#pragma once

// The occupancy model of Sec. III-A, Eqs. 1-5.
//
// Notation follows the paper: user inputs (superscript u) are threads per
// block Tu, registers per thread Ru, and shared memory per block Su;
// hardware limits (superscript cc) come from the GpuSpec; starred values
// are what the model derives.

#include <cstdint>

#include "arch/gpu_spec.hpp"

namespace gpustatic::occupancy {

/// User-side kernel launch parameters (the `u` superscript).
struct KernelParams {
  std::uint32_t threads_per_block = 128;  ///< Tu
  std::uint32_t regs_per_thread = 0;      ///< Ru (0 = unspecified, Eq. 4 case 3)
  std::uint32_t smem_per_block = 0;       ///< Su bytes (0 = none, Eq. 5 case 3)
};

/// Result of the occupancy calculation (Eqs. 1-2) with the per-resource
/// limiter breakdown (Eq. 3-5).
struct Result {
  std::uint32_t blocks_warp_limited = 0;  ///< G_psiW (Eq. 3)
  std::uint32_t blocks_reg_limited = 0;   ///< G_psiR (Eq. 4)
  std::uint32_t blocks_smem_limited = 0;  ///< G_psiS (Eq. 5)
  std::uint32_t active_blocks = 0;        ///< B*mp (Eq. 1)
  std::uint32_t active_warps = 0;         ///< W*mp = B*mp x W_B
  std::uint32_t warps_per_block = 0;      ///< W_B = ceil(Tu / T^cc_W)
  double occupancy = 0.0;                 ///< occ_mp (Eq. 2)

  /// Which resource is binding ("warps", "registers", "smem").
  [[nodiscard]] const char* limiter() const;
};

/// Eq. 3: max resident blocks limited by the warp budget.
[[nodiscard]] std::uint32_t blocks_limited_by_warps(
    const arch::GpuSpec& gpu, std::uint32_t threads_per_block);

/// Eq. 4: max resident blocks limited by the register file. Returns 0 for
/// Ru beyond the per-thread architectural maximum (illegal configuration).
[[nodiscard]] std::uint32_t blocks_limited_by_registers(
    const arch::GpuSpec& gpu, std::uint32_t regs_per_thread,
    std::uint32_t threads_per_block);

/// Eq. 5: max resident blocks limited by shared memory. Returns 0 for
/// Su beyond the per-block maximum.
[[nodiscard]] std::uint32_t blocks_limited_by_smem(
    const arch::GpuSpec& gpu, std::uint32_t smem_per_block);

/// Eqs. 1-2 assembled.
[[nodiscard]] Result calculate(const arch::GpuSpec& gpu,
                               const KernelParams& params);

}  // namespace gpustatic::occupancy
