#include "tuner/measurement.hpp"

#include <ostream>
#include <string>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace gpustatic::tuner {

namespace {

std::int64_t parse_int(std::string_view s, std::size_t line) {
  try {
    return std::stoll(std::string(s));
  } catch (const std::exception&) {
    throw ParseError("bad integer '" + std::string(s) + "'", line);
  }
}

double parse_float(std::string_view s, std::size_t line) {
  try {
    return std::stod(std::string(s));
  } catch (const std::exception&) {
    throw ParseError("bad number '" + std::string(s) + "'", line);
  }
}

}  // namespace

void append_variant_fields(std::ostream& os, const MeasuredVariant& v) {
  os << "TC=" << v.params.threads_per_block
     << " BC=" << v.params.block_count << " UIF=" << v.params.unroll
     << " PL=" << v.params.l1_pref_kb << " SC=" << v.params.stream_chunk
     << " FM=" << (v.params.fast_math ? 1 : 0)
     << " pred=" << str::format("%.17g", v.predicted_cost) << " time=";
  if (v.measured())
    os << str::format("%.17g", v.measured_ms);
  else
    os << "-";
  os << " valid=" << (v.valid ? 1 : 0);
}

bool apply_variant_field(MeasuredVariant& v, std::string_view key,
                         std::string_view value, std::size_t line) {
  if (key == "TC")
    v.params.threads_per_block = static_cast<int>(parse_int(value, line));
  else if (key == "BC")
    v.params.block_count = static_cast<int>(parse_int(value, line));
  else if (key == "UIF")
    v.params.unroll = static_cast<int>(parse_int(value, line));
  else if (key == "PL")
    v.params.l1_pref_kb = static_cast<int>(parse_int(value, line));
  else if (key == "SC")
    v.params.stream_chunk = static_cast<int>(parse_int(value, line));
  else if (key == "FM")
    v.params.fast_math = parse_int(value, line) != 0;
  else if (key == "pred")
    v.predicted_cost = parse_float(value, line);
  else if (key == "time")
    v.measured_ms = value == "-" ? -1.0 : parse_float(value, line);
  else if (key == "valid")
    v.valid = parse_int(value, line) != 0;
  else
    return false;
  return true;
}

std::pair<std::string_view, std::string_view> split_field(
    std::string_view field, std::size_t line) {
  const std::size_t eq = field.find('=');
  if (eq == std::string_view::npos)
    throw ParseError("field missing '=': " + std::string(field), line);
  return {field.substr(0, eq), field.substr(eq + 1)};
}

}  // namespace gpustatic::tuner
