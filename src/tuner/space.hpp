#pragma once

// The tuning search space (Table III / Fig. 3): named discrete dimensions
// whose cartesian product is the variant set. Points are index vectors;
// to_params() maps a point to compiler TuningParams.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "codegen/params.hpp"

namespace gpustatic::tuner {

struct Dimension {
  std::string name;                 ///< "TC", "BC", "UIF", "PL", "SC", "CFLAGS"
  std::vector<std::int64_t> values;
};

using Point = std::vector<std::size_t>;  ///< one index per dimension

class ParamSpace {
 public:
  ParamSpace() = default;
  explicit ParamSpace(std::vector<Dimension> dims);

  [[nodiscard]] const std::vector<Dimension>& dimensions() const {
    return dims_;
  }
  [[nodiscard]] std::size_t rank() const { return dims_.size(); }
  /// Total number of variants (product of dimension sizes).
  [[nodiscard]] std::size_t size() const;

  /// Lexicographic enumeration: index -> point and back.
  [[nodiscard]] Point point_at(std::size_t flat_index) const;
  [[nodiscard]] std::size_t flat_index(const Point& p) const;

  /// Map a point to compiler parameters. Unknown dimension names throw;
  /// missing dimensions keep TuningParams defaults.
  [[nodiscard]] codegen::TuningParams to_params(const Point& p) const;

  /// Inverse of to_params: the point whose per-dimension values equal
  /// the corresponding TuningParams fields, or nullopt when any
  /// dimension has no matching value (the params lie outside this
  /// space). Fields not named by a dimension are ignored, mirroring
  /// to_params' defaulting. Each dimension resolves to its *first*
  /// matching value, so point_of(to_params(p)) == p except for points
  /// selecting an aliasing value (a duplicate, or a second truthy
  /// CFLAGS entry), which map back to the first alias — to_params is
  /// identical across aliases, so the resolved point is equivalent.
  [[nodiscard]] std::optional<Point> point_of(
      const codegen::TuningParams& params) const;

  /// Restrict one dimension to a subset of its values (the model-based
  /// pruning primitive). Values not present are ignored; an empty
  /// intersection throws.
  [[nodiscard]] ParamSpace restrict(const std::string& dim,
                                    const std::vector<std::int64_t>&
                                        allowed) const;

  [[nodiscard]] const Dimension& dimension(const std::string& name) const;
  [[nodiscard]] bool has_dimension(const std::string& name) const;

 private:
  /// Which TuningParams field a dimension drives, resolved once at
  /// construction so the per-point hot paths (to_params, point_of) need
  /// no string comparisons. Unknown names stay constructible (the spec
  /// parser admits arbitrary identifiers) and throw only when mapped,
  /// preserving the historical error timing.
  enum class Field : std::uint8_t { kTC, kBC, kUIF, kPL, kSC, kCFLAGS,
                                    kUnknown };
  [[nodiscard]] static Field field_of(const std::string& name);

  std::vector<Dimension> dims_;
  std::vector<Field> fields_;  ///< parallel to dims_
};

/// The paper's effective evaluation space (Sec. IV-A): TC x BC x UIF x
/// PL x CFLAGS = 32 * 8 * 5 * 2 * 2 = 5120 variants (SC fixed at 1).
[[nodiscard]] ParamSpace paper_space();

/// The full Table III space including SC (stream/coarsening factor).
[[nodiscard]] ParamSpace table3_space();

}  // namespace gpustatic::tuner
