#pragma once

// The tuning search space (Table III / Fig. 3): named discrete dimensions
// whose cartesian product is the variant set. Points are index vectors;
// to_params() maps a point to compiler TuningParams.

#include <cstdint>
#include <string>
#include <vector>

#include "codegen/params.hpp"

namespace gpustatic::tuner {

struct Dimension {
  std::string name;                 ///< "TC", "BC", "UIF", "PL", "SC", "CFLAGS"
  std::vector<std::int64_t> values;
};

using Point = std::vector<std::size_t>;  ///< one index per dimension

class ParamSpace {
 public:
  ParamSpace() = default;
  explicit ParamSpace(std::vector<Dimension> dims);

  [[nodiscard]] const std::vector<Dimension>& dimensions() const {
    return dims_;
  }
  [[nodiscard]] std::size_t rank() const { return dims_.size(); }
  /// Total number of variants (product of dimension sizes).
  [[nodiscard]] std::size_t size() const;

  /// Lexicographic enumeration: index -> point and back.
  [[nodiscard]] Point point_at(std::size_t flat_index) const;
  [[nodiscard]] std::size_t flat_index(const Point& p) const;

  /// Map a point to compiler parameters. Unknown dimension names throw;
  /// missing dimensions keep TuningParams defaults.
  [[nodiscard]] codegen::TuningParams to_params(const Point& p) const;

  /// Restrict one dimension to a subset of its values (the model-based
  /// pruning primitive). Values not present are ignored; an empty
  /// intersection throws.
  [[nodiscard]] ParamSpace restrict(const std::string& dim,
                                    const std::vector<std::int64_t>&
                                        allowed) const;

  [[nodiscard]] const Dimension& dimension(const std::string& name) const;
  [[nodiscard]] bool has_dimension(const std::string& name) const;

 private:
  std::vector<Dimension> dims_;
};

/// The paper's effective evaluation space (Sec. IV-A): TC x BC x UIF x
/// PL x CFLAGS = 32 * 8 * 5 * 2 * 2 = 5120 variants (SC fixed at 1).
[[nodiscard]] ParamSpace paper_space();

/// The full Table III space including SC (stream/coarsening factor).
[[nodiscard]] ParamSpace table3_space();

}  // namespace gpustatic::tuner
