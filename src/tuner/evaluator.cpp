#include "tuner/evaluator.hpp"

#include "analysis/predictor.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/thread_pool.hpp"

namespace gpustatic::tuner {

std::vector<double> Evaluator::evaluate_batch(
    const std::vector<codegen::TuningParams>& batch) {
  std::vector<double> out;
  out.reserve(batch.size());
  for (const codegen::TuningParams& p : batch) out.push_back(evaluate(p));
  return out;
}

double SimEvaluator::evaluate(const codegen::TuningParams& params) {
  try {
    // Inside the try: an injected measurement fault takes the same
    // recovery path as a real one — this variant scores invalid and the
    // search moves on.
    failpoint::check("sim.measure");
    const sim::Measurement m = ctx_->measure(params);
    return m.valid ? m.trial_time_ms : kInvalid;
  } catch (const gpustatic::Error&) {
    return kInvalid;
  }
}

std::vector<double> SimEvaluator::evaluate_batch(
    const std::vector<codegen::TuningParams>& batch) {
  // A one-point batch through the pool is pure overhead (queue, wake,
  // join) — the common case for per-point strategies on small machines.
  if (batch.size() == 1) return {evaluate(batch.front())};
  std::vector<double> out(batch.size());
  // evaluate() absorbs gpustatic::Error into kInvalid; anything else
  // (bad_alloc, logic errors) is rethrown by the pool after the batch
  // drains, like a sequential loop would.
  ThreadPool::shared().parallel_for(
      batch.size(), [&](std::size_t k) { out[k] = evaluate(batch[k]); });
  return out;
}

double AnalyticEvaluator::evaluate(const codegen::TuningParams& params) {
  try {
    failpoint::check("sim.measure");
    // lower() re-validates TC/BC per point, so key-mates of a scored
    // variant still reject out-of-range launch shapes.
    const std::shared_ptr<const codegen::LoweredWorkload> lowered =
        cache_->lower(params);
    if (analytic_.mode == sim::AnalyticMode::Wave)
      return wave_time(*lowered, params);
    const codegen::CodegenKey key = codegen::CodegenKey::of(params);
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = cost_by_key_.find(key);
    if (it != cost_by_key_.end()) return it->second;
    const double cost =
        analysis::predicted_cost(*lowered, cache_->gpu().family);
    cost_by_key_.emplace(key, cost);
    return cost;
  } catch (const gpustatic::Error&) {
    return kInvalid;
  }
}

const sim::MachineModel& AnalyticEvaluator::machine_for(int l1_pref_kb) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = machines_.find(l1_pref_kb);
  if (it != machines_.end()) return it->second;
  // std::map nodes are stable, so the returned reference outlives
  // later insertions.
  return machines_
      .emplace(l1_pref_kb,
               sim::MachineModel::from(cache_->gpu(), l1_pref_kb))
      .first->second;
}

double AnalyticEvaluator::wave_time(const codegen::LoweredWorkload& lowered,
                                    const codegen::TuningParams& params) {
  const WaveKey wk{codegen::CodegenKey::of(params), params.threads_per_block,
                   params.block_count, params.l1_pref_kb};
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = wave_cost_.find(wk);
    if (it != wave_cost_.end()) return it->second;
  }
  // Compute outside the lock (deterministic; a lost race on the same key
  // just discards this copy). The cached lowering carries the launch
  // shape of whichever params first built the key, so the launch and the
  // block frequencies are re-targeted to this point.
  const sim::MachineModel& machine = machine_for(params.l1_pref_kb);
  const sim::AnalyticModel model(machine, analytic_);
  double total_ms = 0;
  std::vector<double> freq;
  for (const codegen::LoweredStage& stage : lowered.stages) {
    codegen::block_freq_at(stage, params, freq);
    sim::StageInputs in;
    in.kernel = &stage.kernel;
    in.launch = stage.launch;
    in.launch.grid_blocks = static_cast<std::uint32_t>(params.block_count);
    in.launch.block_threads =
        static_cast<std::uint32_t>(params.threads_per_block);
    in.regs_per_thread = stage.demand.regs_per_thread;
    in.coarsen = stage.coarsen;
    in.block_freq = freq.data();
    total_ms += model.run_stage(in).time_ms;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  return wave_cost_.emplace(wk, total_ms).first->second;
}

}  // namespace gpustatic::tuner
