#include "tuner/evaluator.hpp"

#include "analysis/predictor.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace gpustatic::tuner {

std::vector<double> Evaluator::evaluate_batch(
    const std::vector<codegen::TuningParams>& batch) {
  std::vector<double> out;
  out.reserve(batch.size());
  for (const codegen::TuningParams& p : batch) out.push_back(evaluate(p));
  return out;
}

double SimEvaluator::evaluate(const codegen::TuningParams& params) {
  try {
    const sim::Measurement m = ctx_->measure(params);
    return m.valid ? m.trial_time_ms : kInvalid;
  } catch (const gpustatic::Error&) {
    return kInvalid;
  }
}

std::vector<double> SimEvaluator::evaluate_batch(
    const std::vector<codegen::TuningParams>& batch) {
  // A one-point batch through the pool is pure overhead (queue, wake,
  // join) — the common case for per-point strategies on small machines.
  if (batch.size() == 1) return {evaluate(batch.front())};
  std::vector<double> out(batch.size());
  // evaluate() absorbs gpustatic::Error into kInvalid; anything else
  // (bad_alloc, logic errors) is rethrown by the pool after the batch
  // drains, like a sequential loop would.
  ThreadPool::shared().parallel_for(
      batch.size(), [&](std::size_t k) { out[k] = evaluate(batch[k]); });
  return out;
}

double AnalyticEvaluator::evaluate(const codegen::TuningParams& params) {
  try {
    // lower() re-validates TC/BC per point, so key-mates of a scored
    // variant still reject out-of-range launch shapes.
    const std::shared_ptr<const codegen::LoweredWorkload> lowered =
        cache_->lower(params);
    const codegen::CodegenKey key = codegen::CodegenKey::of(params);
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = cost_by_key_.find(key);
    if (it != cost_by_key_.end()) return it->second;
    const double cost =
        analysis::predicted_cost(*lowered, cache_->gpu().family);
    cost_by_key_.emplace(key, cost);
    return cost;
  } catch (const gpustatic::Error&) {
    return kInvalid;
  }
}

}  // namespace gpustatic::tuner
