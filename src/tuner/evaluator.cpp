#include "tuner/evaluator.hpp"

#include "analysis/predictor.hpp"
#include "codegen/compiler.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "sim/machine.hpp"

namespace gpustatic::tuner {

std::vector<double> Evaluator::evaluate_batch(
    const std::vector<codegen::TuningParams>& batch) {
  std::vector<double> out;
  out.reserve(batch.size());
  for (const codegen::TuningParams& p : batch) out.push_back(evaluate(p));
  return out;
}

double SimEvaluator::evaluate(const codegen::TuningParams& params) {
  try {
    const codegen::Compiler compiler(*gpu_, params);
    const codegen::LoweredWorkload lw = compiler.compile(workload_);
    const sim::MachineModel machine =
        sim::MachineModel::from(*gpu_, params.l1_pref_kb);
    const sim::Measurement m =
        sim::run_workload(lw, workload_, machine, run_opts_);
    return m.valid ? m.trial_time_ms : kInvalid;
  } catch (const gpustatic::Error&) {
    return kInvalid;
  }
}

std::vector<double> SimEvaluator::evaluate_batch(
    const std::vector<codegen::TuningParams>& batch) {
  std::vector<double> out(batch.size());
  // evaluate() absorbs gpustatic::Error into kInvalid; anything else
  // (bad_alloc, logic errors) is rethrown by the pool after the batch
  // drains, like a sequential loop would.
  ThreadPool::shared().parallel_for(
      batch.size(), [&](std::size_t k) { out[k] = evaluate(batch[k]); });
  return out;
}

double AnalyticEvaluator::evaluate(const codegen::TuningParams& params) {
  try {
    const codegen::Compiler compiler(*gpu_, params);
    return analysis::predicted_cost(compiler.compile(workload_),
                                    gpu_->family);
  } catch (const gpustatic::Error&) {
    return kInvalid;
  }
}

}  // namespace gpustatic::tuner
