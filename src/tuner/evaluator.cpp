#include "tuner/evaluator.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "analysis/predictor.hpp"
#include "codegen/compiler.hpp"
#include "common/error.hpp"
#include "sim/machine.hpp"

namespace gpustatic::tuner {

std::vector<double> Evaluator::evaluate_batch(
    const std::vector<codegen::TuningParams>& batch) {
  std::vector<double> out;
  out.reserve(batch.size());
  for (const codegen::TuningParams& p : batch) out.push_back(evaluate(p));
  return out;
}

double SimEvaluator::evaluate(const codegen::TuningParams& params) {
  try {
    const codegen::Compiler compiler(*gpu_, params);
    const codegen::LoweredWorkload lw = compiler.compile(workload_);
    const sim::MachineModel machine =
        sim::MachineModel::from(*gpu_, params.l1_pref_kb);
    const sim::Measurement m =
        sim::run_workload(lw, workload_, machine, run_opts_);
    return m.valid ? m.trial_time_ms : kInvalid;
  } catch (const gpustatic::Error&) {
    return kInvalid;
  }
}

std::vector<double> SimEvaluator::evaluate_batch(
    const std::vector<codegen::TuningParams>& batch) {
  std::vector<double> out(batch.size());
  std::size_t threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<std::size_t>(threads, batch.size());
  if (threads <= 1) {
    for (std::size_t i = 0; i < batch.size(); ++i)
      out[i] = evaluate(batch[i]);
    return out;
  }
  std::atomic<std::size_t> next{0};
  // evaluate() absorbs gpustatic::Error into kInvalid; anything else
  // (bad_alloc, logic errors) must not escape a thread body — stash the
  // first one and rethrow after the join, like a sequential loop would.
  std::exception_ptr failure;
  std::mutex failure_mutex;
  auto worker = [&]() {
    for (;;) {
      const std::size_t k = next.fetch_add(1);
      if (k >= batch.size()) return;
      try {
        out[k] = evaluate(batch[k]);
      } catch (...) {
        const std::scoped_lock lock(failure_mutex);
        if (!failure) failure = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (failure) std::rethrow_exception(failure);
  return out;
}

double AnalyticEvaluator::evaluate(const codegen::TuningParams& params) {
  try {
    const codegen::Compiler compiler(*gpu_, params);
    return analysis::predicted_cost(compiler.compile(workload_),
                                    gpu_->family);
  } catch (const gpustatic::Error&) {
    return kInvalid;
  }
}

}  // namespace gpustatic::tuner
