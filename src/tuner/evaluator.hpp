#pragma once

// Evaluation backends for the tuning pipeline. An Evaluator maps one
// variant (TuningParams) to a cost in ms-like units (smaller is better;
// kInvalid marks an unlaunchable configuration). Search strategies see
// only this interface, so the same search code runs against the warp
// simulator, the zero-run Eq. 6 predictor, or a recorded journal
// (replay/replay_evaluator.hpp) — the paper's "dial in the degree of
// empirical testing" idea expressed as interchangeable backends.
//
// evaluate_batch() is the scaling hook: backends that can parallelize or
// shard work override it; the default is a sequential loop, so a backend
// only has to implement evaluate().

#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "codegen/cache.hpp"
#include "codegen/params.hpp"
#include "dsl/ast.hpp"
#include "sim/context.hpp"
#include "sim/runner.hpp"

namespace gpustatic::tuner {

/// Objective: trial time (ms) of a variant; +inf = invalid configuration.
/// The function form predates Evaluator and remains the lightweight way
/// to phrase ad-hoc objectives (tests, benches); FunctionEvaluator
/// adapts it to the interface.
using Objective = std::function<double(const codegen::TuningParams&)>;

inline constexpr double kInvalid = std::numeric_limits<double>::infinity();

/// Interface every evaluation backend implements.
class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// Backend identifier ("sim", "analytic", "replay", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Cost of one variant; kInvalid when not launchable/compilable.
  virtual double evaluate(const codegen::TuningParams& params) = 0;

  /// Evaluate many variants at once; results align with `batch` by
  /// index. Default: sequential evaluate() loop. Backends with cheap
  /// parallelism (SimEvaluator) override this.
  virtual std::vector<double> evaluate_batch(
      const std::vector<codegen::TuningParams>& batch);
};

/// Adapts a bare Objective to the Evaluator interface.
class FunctionEvaluator final : public Evaluator {
 public:
  explicit FunctionEvaluator(Objective fn) : fn_(std::move(fn)) {}

  [[nodiscard]] std::string name() const override { return "function"; }
  double evaluate(const codegen::TuningParams& params) override {
    return fn_(params);
  }

 private:
  Objective fn_;
};

/// Simulator backend: measures each variant with the configured engine
/// (warp simulator or analytic timing model) under the paper's Sec. IV-A
/// trial protocol. Built on a sim::SimContext, so one evaluator serving
/// a whole search compiles each codegen key once, reuses per-kernel
/// analyses, and recycles all simulation scratch — measurements stay
/// byte-identical to compiling every point from scratch.
class SimEvaluator final : public Evaluator {
 public:
  SimEvaluator(dsl::WorkloadDesc workload, const arch::GpuSpec& gpu,
               sim::RunOptions run_opts = {})
      : ctx_(std::make_shared<sim::SimContext>(std::move(workload), gpu,
                                               run_opts)) {}
  /// Build over an existing context (shares its compilation cache).
  explicit SimEvaluator(std::shared_ptr<sim::SimContext> context)
      : ctx_(std::move(context)) {}

  [[nodiscard]] std::string name() const override { return "sim"; }
  double evaluate(const codegen::TuningParams& params) override;
  /// Fans the batch out over hardware threads; per-variant results are
  /// deterministic and ordered by index regardless of scheduling.
  /// Single-element batches run inline — no pool round trip.
  std::vector<double> evaluate_batch(
      const std::vector<codegen::TuningParams>& batch) override;

  /// The pipeline object behind this evaluator (compilation cache,
  /// memoized analyses, scratch pools).
  [[nodiscard]] sim::SimContext& context() { return *ctx_; }

 private:
  std::shared_ptr<sim::SimContext> ctx_;
};

/// Zero-run backend: compiles each variant and scores it without any
/// simulator execution — the paper's "without executing them" regime.
/// Lowering goes through a CompilationCache (shareable with a
/// SimEvaluator's context). The analytic mode selects the score:
///
///   classic  Eq. 6 static cost; relative units, memoized per codegen
///            key — Eq. 6 never looks at the launch shape, so key-mates
///            score equal by construction;
///   wave     wave-aware AnalyticModel time (ms), which DOES depend on
///            the launch shape, so scores are memoized per
///            (codegen key, TC, BC, PL) over the same cached lowerings.
class AnalyticEvaluator final : public Evaluator {
 public:
  AnalyticEvaluator(dsl::WorkloadDesc workload, const arch::GpuSpec& gpu,
                    sim::AnalyticOptions analytic = {})
      : cache_(std::make_shared<codegen::CompilationCache>(
            std::move(workload), gpu)),
        analytic_(analytic) {}
  /// Share a compilation cache (e.g. a SimEvaluator context's), so the
  /// two backends never lower the same key twice between them.
  explicit AnalyticEvaluator(
      std::shared_ptr<codegen::CompilationCache> cache,
      sim::AnalyticOptions analytic = {})
      : cache_(std::move(cache)), analytic_(analytic) {}

  [[nodiscard]] std::string name() const override { return "analytic"; }
  double evaluate(const codegen::TuningParams& params) override;

  [[nodiscard]] const sim::AnalyticOptions& analytic() const {
    return analytic_;
  }

 private:
  /// Launch-shape-aware memo key for wave-mode scores: everything the
  /// wave-aware analytic time depends on beyond the lowering itself.
  struct WaveKey {
    codegen::CodegenKey key;
    int threads_per_block = 0;
    int block_count = 0;
    int l1_pref_kb = 0;
    friend auto operator<=>(const WaveKey&, const WaveKey&) = default;
  };

  double wave_time(const codegen::LoweredWorkload& lowered,
                   const codegen::TuningParams& params);
  const sim::MachineModel& machine_for(int l1_pref_kb);

  std::shared_ptr<codegen::CompilationCache> cache_;
  sim::AnalyticOptions analytic_;
  std::mutex mu_;
  std::map<codegen::CodegenKey, double> cost_by_key_;
  std::map<WaveKey, double> wave_cost_;
  std::map<int, sim::MachineModel> machines_;  ///< per L1 preference
};

}  // namespace gpustatic::tuner
