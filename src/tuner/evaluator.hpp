#pragma once

// Evaluation backends for the tuning pipeline. An Evaluator maps one
// variant (TuningParams) to a cost in ms-like units (smaller is better;
// kInvalid marks an unlaunchable configuration). Search strategies see
// only this interface, so the same search code runs against the warp
// simulator, the zero-run Eq. 6 predictor, or a recorded journal
// (replay/replay_evaluator.hpp) — the paper's "dial in the degree of
// empirical testing" idea expressed as interchangeable backends.
//
// evaluate_batch() is the scaling hook: backends that can parallelize or
// shard work override it; the default is a sequential loop, so a backend
// only has to implement evaluate().

#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "codegen/params.hpp"
#include "dsl/ast.hpp"
#include "sim/runner.hpp"

namespace gpustatic::tuner {

/// Objective: trial time (ms) of a variant; +inf = invalid configuration.
/// The function form predates Evaluator and remains the lightweight way
/// to phrase ad-hoc objectives (tests, benches); FunctionEvaluator
/// adapts it to the interface.
using Objective = std::function<double(const codegen::TuningParams&)>;

inline constexpr double kInvalid = std::numeric_limits<double>::infinity();

/// Interface every evaluation backend implements.
class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// Backend identifier ("sim", "analytic", "replay", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Cost of one variant; kInvalid when not launchable/compilable.
  virtual double evaluate(const codegen::TuningParams& params) = 0;

  /// Evaluate many variants at once; results align with `batch` by
  /// index. Default: sequential evaluate() loop. Backends with cheap
  /// parallelism (SimEvaluator) override this.
  virtual std::vector<double> evaluate_batch(
      const std::vector<codegen::TuningParams>& batch);
};

/// Adapts a bare Objective to the Evaluator interface.
class FunctionEvaluator final : public Evaluator {
 public:
  explicit FunctionEvaluator(Objective fn) : fn_(std::move(fn)) {}

  [[nodiscard]] std::string name() const override { return "function"; }
  double evaluate(const codegen::TuningParams& params) override {
    return fn_(params);
  }

 private:
  Objective fn_;
};

/// Simulator backend: compiles each variant and measures it with the
/// configured engine (warp simulator or analytic timing model) under the
/// paper's Sec. IV-A trial protocol. This is the behavior of the old
/// make_objective(), now with a parallel batch path.
class SimEvaluator final : public Evaluator {
 public:
  SimEvaluator(dsl::WorkloadDesc workload, const arch::GpuSpec& gpu,
               sim::RunOptions run_opts = {})
      : workload_(std::move(workload)), gpu_(&gpu), run_opts_(run_opts) {}

  [[nodiscard]] std::string name() const override { return "sim"; }
  double evaluate(const codegen::TuningParams& params) override;
  /// Fans the batch out over hardware threads; per-variant results are
  /// deterministic and ordered by index regardless of scheduling.
  std::vector<double> evaluate_batch(
      const std::vector<codegen::TuningParams>& batch) override;

 private:
  dsl::WorkloadDesc workload_;
  const arch::GpuSpec* gpu_;
  sim::RunOptions run_opts_;
};

/// Zero-run backend: compiles each variant and scores it with the Eq. 6
/// static cost model. Scores are relative (not ms), which is exactly
/// what a search needs — the paper's "without executing them" regime.
class AnalyticEvaluator final : public Evaluator {
 public:
  AnalyticEvaluator(dsl::WorkloadDesc workload, const arch::GpuSpec& gpu)
      : workload_(std::move(workload)), gpu_(&gpu) {}

  [[nodiscard]] std::string name() const override { return "analytic"; }
  double evaluate(const codegen::TuningParams& params) override;

 private:
  dsl::WorkloadDesc workload_;
  const arch::GpuSpec* gpu_;
};

}  // namespace gpustatic::tuner
