#include "tuner/spec_parser.hpp"

#include <cctype>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace gpustatic::tuner {

namespace {

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;
  std::size_t line = 1;

  [[nodiscard]] bool eof() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return eof() ? '\0' : text[pos]; }
  char get() {
    const char c = text[pos++];
    if (c == '\n') ++line;
    return c;
  }
  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek())))
      get();
  }
};

[[noreturn]] void fail(const Cursor& c, const std::string& msg) {
  throw ParseError(msg, c.line);
}

bool accept(Cursor& c, std::string_view word) {
  c.skip_ws();
  if (c.text.substr(c.pos, word.size()) != word) return false;
  for (std::size_t i = 0; i < word.size(); ++i) c.get();
  return true;
}

void expect(Cursor& c, std::string_view word) {
  if (!accept(c, word)) fail(c, "expected '" + std::string(word) + "'");
}

std::string read_ident(Cursor& c) {
  c.skip_ws();
  std::string out;
  while (!c.eof() &&
         (std::isalnum(static_cast<unsigned char>(c.peek())) ||
          c.peek() == '_'))
    out.push_back(c.get());
  if (out.empty()) fail(c, "expected identifier");
  return out;
}

std::int64_t read_int(Cursor& c) {
  c.skip_ws();
  std::string num;
  if (c.peek() == '-') num.push_back(c.get());
  while (!c.eof() && std::isdigit(static_cast<unsigned char>(c.peek())))
    num.push_back(c.get());
  if (num.empty() || num == "-") fail(c, "expected integer");
  return std::stoll(num);
}

std::string read_string_literal(Cursor& c) {
  c.skip_ws();
  const char quote = c.peek();
  if (quote != '\'' && quote != '"') fail(c, "expected string literal");
  c.get();
  std::string out;
  while (!c.eof() && c.peek() != quote) out.push_back(c.get());
  if (c.eof()) fail(c, "unterminated string literal");
  c.get();
  return out;
}

std::vector<std::int64_t> read_value_list(Cursor& c) {
  std::vector<std::int64_t> values;
  c.skip_ws();
  if (accept(c, "range")) {
    expect(c, "(");
    const std::int64_t lo = read_int(c);
    expect(c, ",");
    const std::int64_t hi = read_int(c);
    std::int64_t step = 1;
    if (accept(c, ",")) step = read_int(c);
    expect(c, ")");
    if (step <= 0) fail(c, "range step must be positive");
    for (std::int64_t v = lo; v < hi; v += step) values.push_back(v);
    return values;
  }
  expect(c, "[");
  c.skip_ws();
  if (c.peek() != ']') {
    do {
      c.skip_ws();
      if (c.peek() == '\'' || c.peek() == '"') {
        const std::string s = read_string_literal(c);
        // CFLAGS strings: '' -> 0, '-use_fast_math' -> 1.
        if (s.empty())
          values.push_back(0);
        else if (s == "-use_fast_math")
          values.push_back(1);
        else
          fail(c, "unknown flag string '" + s + "'");
      } else {
        values.push_back(read_int(c));
      }
    } while (accept(c, ","));
  }
  expect(c, "]");
  return values;
}

}  // namespace

ParamSpace parse_perf_tuning(std::string_view text) {
  Cursor c{text};
  // Optional outer annotation wrapper.
  if (accept(c, "/*@")) {
    expect(c, "begin");
    expect(c, "PerfTuning");
    expect(c, "(");
  }
  expect(c, "def");
  expect(c, "performance_params");
  expect(c, "{");

  std::vector<Dimension> dims;
  for (;;) {
    c.skip_ws();
    if (accept(c, "}")) break;
    expect(c, "param");
    Dimension d;
    d.name = read_ident(c);
    expect(c, "[");
    expect(c, "]");
    expect(c, "=");
    d.values = read_value_list(c);
    expect(c, ";");
    if (d.values.empty()) fail(c, "empty value list for " + d.name);
    dims.push_back(std::move(d));
  }
  if (dims.empty()) fail(c, "no performance parameters declared");
  return ParamSpace(std::move(dims));
}

std::string to_perf_tuning(const ParamSpace& space) {
  std::string out = "/*@ begin PerfTuning (\n  def performance_params {\n";
  for (const Dimension& d : space.dimensions()) {
    out += "    param " + d.name + "[] = ";
    if (d.name == "CFLAGS") {
      std::vector<std::string> parts;
      for (const std::int64_t v : d.values)
        parts.push_back(v == 0 ? "''" : "'-use_fast_math'");
      out += "[" + str::join(parts, ", ") + "]";
    } else {
      std::vector<std::string> parts;
      for (const std::int64_t v : d.values)
        parts.push_back(std::to_string(v));
      out += "[" + str::join(parts, ", ") + "]";
    }
    out += ";\n";
  }
  out += "  }\n) @*/\n";
  return out;
}

}  // namespace gpustatic::tuner
