#pragma once

// Search strategies over a ParamSpace, mirroring Orio's search modules
// (Sec. III-C names exhaustive, random, simulated annealing, genetic, and
// Nelder-Mead simplex). Strategies evaluate variants through an
// Evaluator backend (evaluator.hpp); a shared memoizing decorator counts
// *distinct* evaluations, which is the cost metric Fig. 6's improvement
// percentages are computed from.
//
// Execution is batch-first: every strategy groups the evaluations whose
// order does not affect its decisions (the exhaustive scan, random
// proposal rounds, a GA generation's offspring, a simplex seed or shrink
// step) into one CachingEvaluator::evaluate_batch call, which a parallel
// backend fans out over the shared thread pool. Results are
// byte-identical to evaluating the same points one at a time: batches
// preserve in-batch ordering for the first-wins best-point tie-break,
// and the budget clamp stops a batch exactly where a sequential loop
// would have stopped.
//
// Each strategy exists in two forms: the Evaluator& overload (the real
// implementation) and an Objective convenience overload for ad-hoc
// lambdas. New call sites should prefer registry dispatch via
// strategy.hpp; these free functions remain the algorithm layer.

#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/deadline.hpp"
#include "common/rng.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/space.hpp"

namespace gpustatic::tuner {

/// No evaluation limit: the CachingEvaluator admits any number of fresh
/// backend evaluations.
inline constexpr std::size_t kUnlimitedBudget =
    std::numeric_limits<std::size_t>::max();

/// Memoizing, budget-aware decorator over an evaluation backend: caches
/// values by flat space index, tracks the best point seen (first-wins on
/// ties, in evaluation order), and counts total vs distinct evaluations.
/// Batched lookups forward cache misses to the backend's evaluate_batch
/// hook in one call (deduplicated, order preserved), so a parallel
/// backend parallelizes transparently.
///
/// The budget bounds *distinct* (fresh) backend evaluations — cache hits
/// are always free. The point-batch overload clamps: it answers the
/// longest prefix of the batch whose fresh evaluations fit in the
/// budget, so strategies can request "up to N fresh evaluations" without
/// overshooting. The per-point operator() throws Error instead, catching
/// strategies that forgot to check remaining().
///
/// CachingEvaluator is itself an Evaluator (params are mapped back to
/// points via ParamSpace::point_of), so one instance can sit in front of
/// any backend as a persistent memo — e.g. core::TuningSession shares
/// one across every tune() call so repeated strategies never re-measure
/// a variant. Params outside the space pass through uncached.
///
/// The memo can also be seeded from outside via preload() — the
/// warm-start hook the fleet tuner uses to replay a TuningStore into
/// the cache — and harvested back out via for_each_cached(). Preloaded
/// entries are free: they charge neither the backend nor the budget,
/// which meters fresh_evaluations() (actual backend work), not cache
/// size.
class CachingEvaluator final : public Evaluator {
 public:
  CachingEvaluator(const ParamSpace& space, Evaluator& backend,
                   std::size_t budget = kUnlimitedBudget)
      : space_(&space), backend_(&backend), budget_(budget) {}
  /// Convenience: wrap a bare Objective in an owned FunctionEvaluator.
  CachingEvaluator(const ParamSpace& space, Objective fn,
                   std::size_t budget = kUnlimitedBudget)
      : space_(&space),
        owned_(std::make_unique<FunctionEvaluator>(std::move(fn))),
        backend_(owned_.get()),
        budget_(budget) {}

  /// Evaluate one point. Throws Error when the point is uncached and the
  /// budget is exhausted.
  double operator()(const Point& p);
  /// Evaluate many points; results align with `pts` by index. When the
  /// remaining budget cannot cover every cache miss, the batch is
  /// truncated: the returned vector answers the longest prefix of `pts`
  /// whose misses fit (possibly empty), never exceeding the budget.
  std::vector<double> evaluate_batch(const std::vector<Point>& pts);

  // Evaluator interface: params-keyed access to the same cache.
  [[nodiscard]] std::string name() const override {
    return "cached(" + backend_->name() + ")";
  }
  /// Throws Error when the params map into the space, are uncached, and
  /// the budget is exhausted (mirrors operator()).
  double evaluate(const codegen::TuningParams& params) override;
  /// Full-batch semantics (results always align with `batch`): throws
  /// Error when the misses exceed the remaining budget, since an
  /// Evaluator cannot return a partial result.
  std::vector<double> evaluate_batch(
      const std::vector<codegen::TuningParams>& batch) override;

  /// Seed the memo with an externally known value (e.g. a TuningStore
  /// record). Free: charges neither the budget nor the backend, and
  /// participates in best-point tracking like any admitted value.
  /// Returns false — and caches nothing — when the params fall outside
  /// the space (no cache key) or the point is already cached (first
  /// value wins, matching the memo's usual semantics).
  bool preload(const codegen::TuningParams& params, double value);
  /// Visit every memoized entry (unordered) — the harvest hook that
  /// turns a finished search back into TuningStore records.
  void for_each_cached(
      const std::function<void(const Point&, double)>& fn) const;

  [[nodiscard]] std::size_t budget() const { return budget_; }
  void set_budget(std::size_t budget) { budget_ = budget; }
  /// Attach a cancellation token. Once it reports cancelled, the next
  /// batch (or per-point miss) throws common::CancelledError *before*
  /// touching the backend or charging calls/fresh counters — cancelled
  /// work costs nothing, and everything already cached stays harvestable
  /// for partial results. Distinct from budget exhaustion, which is a
  /// normal completion.
  void set_cancel(common::CancelToken cancel) { cancel_ = std::move(cancel); }
  /// Fresh evaluations still allowed before the budget is spent.
  [[nodiscard]] std::size_t remaining() const {
    return budget_ > fresh_ ? budget_ - fresh_ : 0;
  }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }
  [[nodiscard]] bool cached(const Point& p) const {
    return cache_.contains(space_->flat_index(p));
  }

  [[nodiscard]] std::size_t distinct_evaluations() const {
    return cache_.size();
  }
  /// Backend evaluations actually performed (cache misses the budget
  /// metered). Equals distinct_evaluations() minus preloaded entries.
  [[nodiscard]] std::size_t fresh_evaluations() const { return fresh_; }
  [[nodiscard]] std::size_t total_calls() const { return calls_; }
  [[nodiscard]] double best_value() const { return best_; }
  [[nodiscard]] const Point& best_point() const { return best_point_; }

 private:
  double admit(std::size_t key, const Point& p, double v);
  std::vector<double> run_batch(const std::vector<Point>& pts,
                                bool clamp_to_budget);
  /// point_of plus a to_params round-trip check, so params that differ
  /// only in a field no dimension covers are treated as out-of-space
  /// instead of collapsing onto an in-space variant's cache key.
  [[nodiscard]] std::optional<Point> exact_point_of(
      const codegen::TuningParams& params) const;

  const ParamSpace* space_;
  std::unique_ptr<Evaluator> owned_;  ///< set by the Objective ctor
  Evaluator* backend_;
  common::CancelToken cancel_;
  std::unordered_map<std::size_t, double> cache_;
  std::size_t budget_ = kUnlimitedBudget;
  std::size_t calls_ = 0;
  std::size_t fresh_ = 0;  ///< backend evaluations (excludes preloads)
  double best_ = kInvalid;
  Point best_point_;
};

struct SearchResult {
  std::string strategy;
  codegen::TuningParams best_params;
  double best_time = kInvalid;
  std::size_t distinct_evaluations = 0;
  std::size_t total_calls = 0;
};

struct SearchOptions {
  std::size_t budget = 500;  ///< max distinct evaluations (non-exhaustive)
  std::uint64_t seed = 1234;
  // Simulated annealing.
  double sa_initial_temp = 0.3;
  double sa_cooling = 0.95;
  // Genetic.
  std::size_t ga_population = 24;
  double ga_mutation_rate = 0.15;
  std::size_t ga_tournament = 3;
  /// Stop after this many consecutive generations that produced no new
  /// distinct evaluation (e.g. a converged population with
  /// ga_mutation_rate = 0 can only ever re-propose cached children —
  /// without this guard the search would spin forever).
  std::size_t ga_max_stall = 3;
  // Nelder-Mead.
  std::size_t nm_restarts = 4;
  /// Cooperative cancellation: strategies check between evaluation
  /// rounds and the CachingEvaluator checks before every fresh batch,
  /// throwing common::CancelledError. The default token is inert.
  /// Deliberately NOT part of any request identity/serialization —
  /// requests differing only in deadline are the same search.
  common::CancelToken cancel;
};

[[nodiscard]] SearchResult exhaustive_search(const ParamSpace& space,
                                             Evaluator& evaluator);
/// Cancellable form: identical results, but the full-space scan runs in
/// bounded rounds with a cancellation check between rounds (any round
/// partition is result-equivalent — in-batch order and the first-wins
/// tie-break are preserved).
[[nodiscard]] SearchResult exhaustive_search(const ParamSpace& space,
                                             Evaluator& evaluator,
                                             const SearchOptions& opts);
[[nodiscard]] SearchResult random_search(const ParamSpace& space,
                                         Evaluator& evaluator,
                                         const SearchOptions& opts = {});
[[nodiscard]] SearchResult simulated_annealing(const ParamSpace& space,
                                               Evaluator& evaluator,
                                               const SearchOptions& opts =
                                                   {});
[[nodiscard]] SearchResult genetic_search(const ParamSpace& space,
                                          Evaluator& evaluator,
                                          const SearchOptions& opts = {});
[[nodiscard]] SearchResult nelder_mead_search(const ParamSpace& space,
                                              Evaluator& evaluator,
                                              const SearchOptions& opts =
                                                  {});

// Objective convenience overloads.
[[nodiscard]] inline SearchResult exhaustive_search(const ParamSpace& space,
                                                    const Objective& fn) {
  FunctionEvaluator e(fn);
  return exhaustive_search(space, e);
}
[[nodiscard]] inline SearchResult random_search(const ParamSpace& space,
                                                const Objective& fn,
                                                const SearchOptions& opts =
                                                    {}) {
  FunctionEvaluator e(fn);
  return random_search(space, e, opts);
}
[[nodiscard]] inline SearchResult simulated_annealing(
    const ParamSpace& space, const Objective& fn,
    const SearchOptions& opts = {}) {
  FunctionEvaluator e(fn);
  return simulated_annealing(space, e, opts);
}
[[nodiscard]] inline SearchResult genetic_search(const ParamSpace& space,
                                                 const Objective& fn,
                                                 const SearchOptions& opts =
                                                     {}) {
  FunctionEvaluator e(fn);
  return genetic_search(space, e, opts);
}
[[nodiscard]] inline SearchResult nelder_mead_search(
    const ParamSpace& space, const Objective& fn,
    const SearchOptions& opts = {}) {
  FunctionEvaluator e(fn);
  return nelder_mead_search(space, e, opts);
}

}  // namespace gpustatic::tuner
