#pragma once

// Search strategies over a ParamSpace, mirroring Orio's search modules
// (Sec. III-C names exhaustive, random, simulated annealing, genetic, and
// Nelder-Mead simplex). Strategies call a user-supplied objective
// (smaller is better); a shared memoizing wrapper counts *distinct*
// evaluations, which is the cost metric Fig. 6's improvement percentages
// are computed from.

#include <functional>
#include <limits>
#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "tuner/space.hpp"

namespace gpustatic::tuner {

/// Objective: trial time (ms) of a variant; +inf = invalid configuration.
using Objective = std::function<double(const codegen::TuningParams&)>;

inline constexpr double kInvalid = std::numeric_limits<double>::infinity();

/// Memoizes objective values by flat space index and tracks the best.
class CachingEvaluator {
 public:
  CachingEvaluator(const ParamSpace& space, Objective fn)
      : space_(&space), fn_(std::move(fn)) {}

  double operator()(const Point& p);

  [[nodiscard]] std::size_t distinct_evaluations() const {
    return cache_.size();
  }
  [[nodiscard]] std::size_t total_calls() const { return calls_; }
  [[nodiscard]] double best_value() const { return best_; }
  [[nodiscard]] const Point& best_point() const { return best_point_; }

 private:
  const ParamSpace* space_;
  Objective fn_;
  std::unordered_map<std::size_t, double> cache_;
  std::size_t calls_ = 0;
  double best_ = kInvalid;
  Point best_point_;
};

struct SearchResult {
  std::string strategy;
  codegen::TuningParams best_params;
  double best_time = kInvalid;
  std::size_t distinct_evaluations = 0;
  std::size_t total_calls = 0;
};

struct SearchOptions {
  std::size_t budget = 500;  ///< max distinct evaluations (non-exhaustive)
  std::uint64_t seed = 1234;
  // Simulated annealing.
  double sa_initial_temp = 0.3;
  double sa_cooling = 0.95;
  // Genetic.
  std::size_t ga_population = 24;
  double ga_mutation_rate = 0.15;
  std::size_t ga_tournament = 3;
  // Nelder-Mead.
  std::size_t nm_restarts = 4;
};

[[nodiscard]] SearchResult exhaustive_search(const ParamSpace& space,
                                             const Objective& fn);
[[nodiscard]] SearchResult random_search(const ParamSpace& space,
                                         const Objective& fn,
                                         const SearchOptions& opts = {});
[[nodiscard]] SearchResult simulated_annealing(const ParamSpace& space,
                                               const Objective& fn,
                                               const SearchOptions& opts =
                                                   {});
[[nodiscard]] SearchResult genetic_search(const ParamSpace& space,
                                          const Objective& fn,
                                          const SearchOptions& opts = {});
[[nodiscard]] SearchResult nelder_mead_search(const ParamSpace& space,
                                              const Objective& fn,
                                              const SearchOptions& opts =
                                                  {});

}  // namespace gpustatic::tuner
