#pragma once

// Search strategies over a ParamSpace, mirroring Orio's search modules
// (Sec. III-C names exhaustive, random, simulated annealing, genetic, and
// Nelder-Mead simplex). Strategies evaluate variants through an
// Evaluator backend (evaluator.hpp); a shared memoizing decorator counts
// *distinct* evaluations, which is the cost metric Fig. 6's improvement
// percentages are computed from.
//
// Each strategy exists in two forms: the Evaluator& overload (the real
// implementation) and an Objective convenience overload for ad-hoc
// lambdas. New call sites should prefer registry dispatch via
// strategy.hpp; these free functions remain the algorithm layer.

#include <memory>
#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/space.hpp"

namespace gpustatic::tuner {

/// Memoizing decorator over an evaluation backend: caches values by flat
/// space index, tracks the best point seen, and counts total vs distinct
/// evaluations. Batched lookups forward cache misses to the backend's
/// evaluate_batch hook in one call (deduplicated, order preserved), so a
/// parallel backend parallelizes transparently.
class CachingEvaluator {
 public:
  CachingEvaluator(const ParamSpace& space, Evaluator& backend)
      : space_(&space), backend_(&backend) {}
  /// Convenience: wrap a bare Objective in an owned FunctionEvaluator.
  CachingEvaluator(const ParamSpace& space, Objective fn)
      : space_(&space),
        owned_(std::make_unique<FunctionEvaluator>(std::move(fn))),
        backend_(owned_.get()) {}

  double operator()(const Point& p);
  /// Evaluate many points; results align with `pts` by index.
  std::vector<double> evaluate_batch(const std::vector<Point>& pts);

  [[nodiscard]] std::size_t distinct_evaluations() const {
    return cache_.size();
  }
  [[nodiscard]] std::size_t total_calls() const { return calls_; }
  [[nodiscard]] double best_value() const { return best_; }
  [[nodiscard]] const Point& best_point() const { return best_point_; }

 private:
  double admit(std::size_t key, const Point& p, double v);

  const ParamSpace* space_;
  std::unique_ptr<Evaluator> owned_;  ///< set by the Objective ctor
  Evaluator* backend_;
  std::unordered_map<std::size_t, double> cache_;
  std::size_t calls_ = 0;
  double best_ = kInvalid;
  Point best_point_;
};

struct SearchResult {
  std::string strategy;
  codegen::TuningParams best_params;
  double best_time = kInvalid;
  std::size_t distinct_evaluations = 0;
  std::size_t total_calls = 0;
};

struct SearchOptions {
  std::size_t budget = 500;  ///< max distinct evaluations (non-exhaustive)
  std::uint64_t seed = 1234;
  // Simulated annealing.
  double sa_initial_temp = 0.3;
  double sa_cooling = 0.95;
  // Genetic.
  std::size_t ga_population = 24;
  double ga_mutation_rate = 0.15;
  std::size_t ga_tournament = 3;
  // Nelder-Mead.
  std::size_t nm_restarts = 4;
};

[[nodiscard]] SearchResult exhaustive_search(const ParamSpace& space,
                                             Evaluator& evaluator);
[[nodiscard]] SearchResult random_search(const ParamSpace& space,
                                         Evaluator& evaluator,
                                         const SearchOptions& opts = {});
[[nodiscard]] SearchResult simulated_annealing(const ParamSpace& space,
                                               Evaluator& evaluator,
                                               const SearchOptions& opts =
                                                   {});
[[nodiscard]] SearchResult genetic_search(const ParamSpace& space,
                                          Evaluator& evaluator,
                                          const SearchOptions& opts = {});
[[nodiscard]] SearchResult nelder_mead_search(const ParamSpace& space,
                                              Evaluator& evaluator,
                                              const SearchOptions& opts =
                                                  {});

// Objective convenience overloads.
[[nodiscard]] inline SearchResult exhaustive_search(const ParamSpace& space,
                                                    const Objective& fn) {
  FunctionEvaluator e(fn);
  return exhaustive_search(space, e);
}
[[nodiscard]] inline SearchResult random_search(const ParamSpace& space,
                                                const Objective& fn,
                                                const SearchOptions& opts =
                                                    {}) {
  FunctionEvaluator e(fn);
  return random_search(space, e, opts);
}
[[nodiscard]] inline SearchResult simulated_annealing(
    const ParamSpace& space, const Objective& fn,
    const SearchOptions& opts = {}) {
  FunctionEvaluator e(fn);
  return simulated_annealing(space, e, opts);
}
[[nodiscard]] inline SearchResult genetic_search(const ParamSpace& space,
                                                 const Objective& fn,
                                                 const SearchOptions& opts =
                                                     {}) {
  FunctionEvaluator e(fn);
  return genetic_search(space, e, opts);
}
[[nodiscard]] inline SearchResult nelder_mead_search(
    const ParamSpace& space, const Objective& fn,
    const SearchOptions& opts = {}) {
  FunctionEvaluator e(fn);
  return nelder_mead_search(space, e, opts);
}

}  // namespace gpustatic::tuner
