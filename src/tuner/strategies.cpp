// The eight built-in strategies, registered by name. Each one adapts an
// algorithm from search.hpp / static_search.hpp / hybrid.hpp to the
// uniform Strategy interface; nothing here owns search logic.

#include "common/error.hpp"
#include "tuner/strategy.hpp"

namespace gpustatic::tuner {

namespace {

void require_search_inputs(const StrategyContext& ctx,
                           const std::string& name) {
  if (ctx.space == nullptr)
    throw Error("strategy '" + name + "': context has no ParamSpace");
  if (ctx.evaluator == nullptr)
    throw Error("strategy '" + name + "': context has no Evaluator");
}

void require_model_inputs(const StrategyContext& ctx,
                          const std::string& name) {
  if (ctx.gpu == nullptr || ctx.workload == nullptr)
    throw Error("strategy '" + name +
                "': model-guided search needs a GPU and a workload in "
                "the context");
}

/// The five Orio searches over the full space, parameterized by the
/// algorithm function.
class PlainStrategy final : public Strategy {
 public:
  using SearchFn = SearchResult (*)(const ParamSpace&, Evaluator&,
                                    const SearchOptions&);

  PlainStrategy(std::string name, bool stochastic, SearchFn fn)
      : name_(std::move(name)), stochastic_(stochastic), fn_(fn) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] bool stochastic() const override { return stochastic_; }

  [[nodiscard]] StrategyResult run(const StrategyContext& ctx)
      const override {
    require_search_inputs(ctx, name_);
    StrategyResult r;
    r.method = name_;
    r.search = fn_(*ctx.space, *ctx.evaluator, ctx.options);
    r.space_size = ctx.space->size();
    r.full_space_size = ctx.space->size();
    return r;
  }

 private:
  std::string name_;
  bool stochastic_;
  SearchFn fn_;
};

/// "static" / "rule": exhaustive search over the statically pruned
/// space — the paper's Fig. 6 methods.
class PrunedStrategy final : public Strategy {
 public:
  PrunedStrategy(std::string name, bool use_rule)
      : name_(std::move(name)), use_rule_(use_rule) {}

  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] StrategyResult run(const StrategyContext& ctx)
      const override {
    require_search_inputs(ctx, name_);
    StaticPruneResult local;
    const StaticPruneResult* prune = nullptr;
    if (ctx.prune) {
      prune = &ctx.prune();
    } else {
      require_model_inputs(ctx, name_);
      local = static_prune(*ctx.space, *ctx.gpu, *ctx.workload);
      prune = &local;
    }
    const ParamSpace& pruned =
        use_rule_ ? prune->rule_space : prune->static_space;
    StrategyResult r;
    r.method = name_;
    r.search = exhaustive_search(pruned, *ctx.evaluator, ctx.options);
    r.space_size = pruned.size();
    r.full_space_size = ctx.space->size();
    r.intensity = prune->intensity;
    return r;
  }

 private:
  std::string name_;
  bool use_rule_;
};

/// Sec. VII hybrid dial: static shortlist ranked by Eq. 6, then the top
/// B candidates measured through the context's evaluator.
class HybridStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string name() const override { return "hybrid"; }

  [[nodiscard]] StrategyResult run(const StrategyContext& ctx)
      const override {
    require_search_inputs(ctx, "hybrid");
    require_model_inputs(ctx, "hybrid");
    // The evaluator goes straight through: hybrid_search batches its
    // empirical stage via the backend's evaluate_batch, so a parallel
    // or memoizing evaluator keeps those properties here.
    const HybridResult h = hybrid_search(*ctx.space, *ctx.gpu,
                                         *ctx.workload, *ctx.evaluator,
                                         ctx.hybrid, ctx.compile_cache);
    StrategyResult r;
    r.method = "hybrid";
    r.search.strategy = "hybrid";
    r.search.best_params = h.best_params;
    r.search.best_time = h.best_time_ms;
    r.search.distinct_evaluations = h.empirical_evaluations;
    r.search.total_calls = h.empirical_evaluations;
    r.space_size =
        ctx.hybrid.use_rule ? h.prune.rule_size : h.prune.static_size;
    r.full_space_size = ctx.space->size();
    r.intensity = h.prune.intensity;
    r.hybrid_candidates = h.shortlist.size();
    r.used_learned_ranker = h.used_learned_ranker;
    return r;
  }
};

}  // namespace

void register_builtin_strategies(StrategyRegistry& registry) {
  const auto plain = [&registry](const char* name, bool stochastic,
                                 PlainStrategy::SearchFn fn) {
    registry.register_strategy(name, [name, stochastic, fn] {
      return std::make_unique<PlainStrategy>(name, stochastic, fn);
    });
  };
  plain("exhaustive", false,
        [](const ParamSpace& s, Evaluator& e, const SearchOptions& o) {
          return exhaustive_search(s, e, o);
        });
  plain("random", true, &random_search);
  plain("anneal", true, &simulated_annealing);
  plain("genetic", true, &genetic_search);
  plain("simplex", true, &nelder_mead_search);
  registry.register_strategy("static", [] {
    return std::make_unique<PrunedStrategy>("static", /*use_rule=*/false);
  });
  registry.register_strategy("rule", [] {
    return std::make_unique<PrunedStrategy>("rule", /*use_rule=*/true);
  });
  registry.register_strategy(
      "hybrid", [] { return std::make_unique<HybridStrategy>(); });
}

}  // namespace gpustatic::tuner
