#pragma once

// Hybrid dial-in search (paper Sec. VII): "the degree of empirical
// testing can be 'dialed in' during the autotuning process, depending on
// what the user accepts."
//
// The dial is a single number — the empirical budget B:
//
//   B = 0      pure static: prune the space with the analyzer, rank the
//              survivors by Eq. 6, recommend the top prediction without
//              a single run (the paper's zero-run regime);
//   B small    static shortlist, then measure only the B most promising
//              variants (the "first stage of the regular empirical-based
//              autotuning process" from Sec. IV-C);
//   B = inf    exhaustive search over the pruned space (the paper's
//              Static / RB methods).
//
// Monotonicity by construction: the measured candidate set at budget B
// is a prefix of the set at budget B' > B, so the chosen variant never
// gets worse as the dial increases.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "codegen/cache.hpp"
#include "dsl/ast.hpp"
#include "sim/analytic.hpp"
#include "tuner/search.hpp"
#include "tuner/space.hpp"
#include "tuner/static_search.hpp"

namespace gpustatic::tuner {

/// One shortlist entry: a pruned-space variant with its Eq. 6 score.
struct RankedVariant {
  codegen::TuningParams params;
  double predicted_cost = 0;
  std::size_t flat_index = 0;  ///< index in the pruned space
};

/// Optional stage-1 re-ranker (the learned-cost-model hook; see
/// learn/evaluator.hpp). Called once per search with the analytically
/// ranked shortlist and the search's compilation cache; returns one
/// finite score per entry (aligned by index, lower = better) to re-rank
/// by, or nullopt to decline — model missing, schema mismatch, or low
/// confidence — in which case the analytic Eq. 6 order is used
/// untouched, byte-identical to a search with no ranker installed.
using Stage1Ranker = std::function<std::optional<std::vector<double>>(
    const std::vector<RankedVariant>& shortlist,
    codegen::CompilationCache& cache)>;

struct HybridOptions {
  /// Number of empirical evaluations allowed. SIZE_MAX = whole pruned
  /// space (the paper's Static/RB exhaustive regime).
  std::size_t empirical_budget = 16;
  /// true: rule-based pruning (Static+RB); false: occupancy-only
  /// pruning (Static).
  bool use_rule = true;
  /// Baseline compile used by the static analyzer for the prune.
  codegen::TuningParams baseline{};
  /// When set, offered the stage-1 ranking (decline = analytic order).
  Stage1Ranker stage1;
  /// Analytic-engine configuration for stage 1. classic ranks survivors
  /// by the Eq. 6 static cost (launch-shape blind, one score per codegen
  /// key); wave ranks them by the wave-aware analytic time, which models
  /// the partial tail wave and therefore separates launch shapes the
  /// Eq. 6 score cannot.
  sim::AnalyticOptions analytic{};
  /// Cooperative cancellation: the stage-1 ranking loop checks it
  /// periodically and the stage-2 batch checks before measuring,
  /// throwing common::CancelledError. Default token is inert.
  common::CancelToken cancel;
};

struct HybridResult {
  StaticPruneResult prune;             ///< the static stage's decisions
  std::vector<RankedVariant> shortlist;  ///< prediction-sorted survivors
  codegen::TuningParams best_params;   ///< recommendation
  double best_time_ms = kInvalid;      ///< kInvalid when budget == 0
  std::size_t empirical_evaluations = 0;
  /// True when HybridOptions::stage1 was offered the ranking and took
  /// it (the shortlist order is the learned one, not Eq. 6's).
  bool used_learned_ranker = false;

  /// The dial position actually used (evaluations / pruned-space size).
  [[nodiscard]] double empirical_fraction() const {
    return shortlist.empty()
               ? 0.0
               : static_cast<double>(empirical_evaluations) /
                     static_cast<double>(shortlist.size());
  }
};

/// Run the hybrid search: static prune -> Eq. 6 ranking (compiles, never
/// runs) -> top-B empirical evaluations routed through a CachingEvaluator
/// over `evaluator`'s evaluate_batch (one backend fan-out, memoized,
/// budget-clamped). Variants whose compilation fails are dropped from the
/// shortlist; the ranking tie-breaks on flat index and the measurement
/// tie-breaks first-wins in shortlist order, so results are deterministic
/// and identical to measuring the shortlist one variant at a time.
///
/// The ranking stage lowers each variant at most once per codegen key
/// through `compile_cache` (e.g. a TuningSession's shared cache); when
/// none is supplied a call-local cache is used, so the stage never
/// compiles the same instruction stream twice either way.
[[nodiscard]] HybridResult hybrid_search(
    const ParamSpace& space, const arch::GpuSpec& gpu,
    const dsl::WorkloadDesc& workload, Evaluator& evaluator,
    const HybridOptions& opts = {},
    codegen::CompilationCache* compile_cache = nullptr);

/// Objective convenience overload (wraps an owned FunctionEvaluator).
[[nodiscard]] HybridResult hybrid_search(const ParamSpace& space,
                                         const arch::GpuSpec& gpu,
                                         const dsl::WorkloadDesc& workload,
                                         const Objective& objective,
                                         const HybridOptions& opts = {});

}  // namespace gpustatic::tuner
