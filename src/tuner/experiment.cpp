#include "tuner/experiment.hpp"

#include <algorithm>

#include "codegen/compiler.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "sim/machine.hpp"

namespace gpustatic::tuner {

namespace {

TrialRecord evaluate_variant(const dsl::WorkloadDesc& workload,
                             const arch::GpuSpec& gpu,
                             const codegen::TuningParams& params,
                             const sim::RunOptions& run_opts) {
  TrialRecord rec;
  rec.params = params;
  try {
    const codegen::Compiler compiler(gpu, params);
    const codegen::LoweredWorkload lw = compiler.compile(workload);
    const sim::MachineModel machine =
        sim::MachineModel::from(gpu, params.l1_pref_kb);
    const sim::Measurement m =
        sim::run_workload(lw, workload, machine, run_opts);
    rec.valid = m.valid;
    rec.time_ms = m.trial_time_ms;
    rec.occupancy = m.occupancy;
    rec.regs_per_thread = m.regs_per_thread;
    rec.reg_traffic = m.counts.reg_traffic;
    rec.intensity = m.counts.intensity();
  } catch (const gpustatic::Error&) {
    rec.valid = false;
  }
  return rec;
}

}  // namespace

Objective make_objective(const dsl::WorkloadDesc& workload,
                         const arch::GpuSpec& gpu,
                         sim::RunOptions run_opts) {
  // Capture by value: the objective outlives the call site's locals.
  auto desc = workload;
  return [desc, &gpu, run_opts](const codegen::TuningParams& p) {
    const TrialRecord rec = evaluate_variant(desc, gpu, p, run_opts);
    return rec.valid ? rec.time_ms : kInvalid;
  };
}

std::vector<TrialRecord> sweep(const ParamSpace& space,
                               const dsl::WorkloadDesc& workload,
                               const arch::GpuSpec& gpu,
                               sim::RunOptions run_opts, std::size_t stride,
                               std::size_t threads) {
  if (stride == 0) stride = 1;
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < space.size(); i += stride)
    indices.push_back(i);

  std::vector<TrialRecord> out(indices.size());
  auto body = [&](std::size_t k) {
    const Point p = space.point_at(indices[k]);
    out[k] = evaluate_variant(workload, gpu, space.to_params(p), run_opts);
  };
  if (threads == 0) {
    // Default: the shared persistent pool (GPUSTATIC_THREADS-sized).
    ThreadPool::shared().parallel_for(indices.size(), body);
  } else {
    ThreadPool local(std::min<std::size_t>(threads, indices.size()));
    local.parallel_for(indices.size(), body);
  }
  return out;
}

RankedTrials rank_trials(std::vector<TrialRecord> trials) {
  RankedTrials out;
  std::vector<TrialRecord> valid;
  for (TrialRecord& t : trials)
    if (t.valid) valid.push_back(std::move(t));
  std::sort(valid.begin(), valid.end(),
            [](const TrialRecord& a, const TrialRecord& b) {
              return a.time_ms < b.time_ms;
            });
  if (valid.empty()) return out;
  out.best = valid.front();
  const std::size_t half = valid.size() / 2;
  out.rank1.assign(valid.begin(),
                   valid.begin() + static_cast<std::ptrdiff_t>(half));
  out.rank2.assign(valid.begin() + static_cast<std::ptrdiff_t>(half),
                   valid.end());
  return out;
}

RankStats rank_stats(const std::vector<TrialRecord>& rank) {
  RankStats s;
  if (rank.empty()) return s;
  std::vector<double> occ, regs_traffic, threads, regs;
  occ.reserve(rank.size());
  for (const TrialRecord& t : rank) {
    occ.push_back(t.occupancy * 100.0);
    regs_traffic.push_back(t.reg_traffic);
    threads.push_back(t.params.threads_per_block);
    regs.push_back(t.regs_per_thread);
  }
  s.occ_mean = stats::mean(occ);
  s.occ_std = stats::stddev(occ);
  s.occ_mode = stats::mode(occ);
  s.reg_traffic_mean = stats::mean(regs_traffic);
  s.reg_traffic_std = stats::stddev(regs_traffic);
  s.regs_allocated = static_cast<std::uint32_t>(stats::mode(regs));
  s.threads_p25 = stats::percentile(threads, 25);
  s.threads_p50 = stats::percentile(threads, 50);
  s.threads_p75 = stats::percentile(threads, 75);
  return s;
}

}  // namespace gpustatic::tuner
