#include "tuner/store.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <mutex>
#include <sstream>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/io.hpp"
#include "common/strings.hpp"

namespace gpustatic::tuner {

namespace {

constexpr std::string_view kMagic = "gpustatic-store v1";

/// Advisory cross-process exclusion: an exclusive flock() on a sibling
/// `<path>.lock` file, held for the guard's lifetime. Best-effort — if
/// the lockfile cannot be created (e.g. a read-only directory) the
/// guard degrades to a no-op and in-process exclusion still holds.
class StoreFileLock {
 public:
  explicit StoreFileLock(const std::string& path)
      : fd_(open((path + ".lock").c_str(), O_CREAT | O_RDWR | O_CLOEXEC,
                 0644)) {
    if (fd_ >= 0)
      while (flock(fd_, LOCK_EX) != 0 && errno == EINTR) {
      }
  }
  ~StoreFileLock() {
    if (fd_ >= 0) {
      flock(fd_, LOCK_UN);
      close(fd_);
    }
  }
  StoreFileLock(const StoreFileLock&) = delete;
  StoreFileLock& operator=(const StoreFileLock&) = delete;

 private:
  int fd_;
};

}  // namespace

std::string TuningStore::key_of(std::string_view kernel,
                                std::string_view gpu, std::int64_t n,
                                const codegen::TuningParams& params) {
  // '\n' cannot appear in a single-token kernel/gpu name, so the key is
  // unambiguous.
  std::string key;
  key.append(kernel);
  key.push_back('\n');
  key.append(gpu);
  key.push_back('\n');
  key.append(std::to_string(n));
  key.push_back('\n');
  key.append(params.to_string());
  return key;
}

void TuningStore::put(StoreRecord record) {
  if (record.kernel.empty() ||
      record.kernel.find_first_of(" \t\n") != std::string::npos)
    throw Error("store: kernel name must be a single non-empty token, "
                "got '" +
                record.kernel + "'");
  if (record.gpu.empty() ||
      record.gpu.find_first_of(" \t\n") != std::string::npos)
    throw Error("store: gpu name must be a single non-empty token, got '" +
                record.gpu + "'");
  const std::string key =
      key_of(record.kernel, record.gpu, record.n, record.variant.params);
  if (const auto it = index_.find(key); it != index_.end()) {
    records_[it->second] = std::move(record);
    return;
  }
  index_.emplace(std::move(key), records_.size());
  records_.push_back(std::move(record));
}

const MeasuredVariant* TuningStore::find(
    std::string_view kernel, std::string_view gpu, std::int64_t n,
    const codegen::TuningParams& params) const {
  const auto it = index_.find(key_of(kernel, gpu, n, params));
  return it == index_.end() ? nullptr : &records_[it->second].variant;
}

std::vector<const StoreRecord*> TuningStore::context(
    std::string_view kernel, std::string_view gpu, std::int64_t n) const {
  std::vector<const StoreRecord*> out;
  for (const StoreRecord& r : records_)
    if (r.kernel == kernel && r.gpu == gpu && r.n == n)
      out.push_back(&r);
  return out;
}

std::string TuningStore::serialize() const {
  std::ostringstream os;
  os << kMagic << "\n";
  for (const StoreRecord& r : records_) {
    os << "record kernel=" << r.kernel << " gpu=" << r.gpu
       << " n=" << r.n << " ";
    append_variant_fields(os, r.variant);
    os << "\n";
  }
  return os.str();
}

TuningStore TuningStore::parse(std::string_view text,
                               std::vector<std::string>* warnings) {
  TuningStore store;
  const std::size_t last_line = str::last_content_line(text);
  std::size_t line_no = 0;
  bool saw_magic = false;

  std::istringstream is{std::string(text)};
  std::string line;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view trimmed = str::trim(line);
    if (trimmed.empty()) continue;
    try {
      if (!saw_magic) {
        if (trimmed != kMagic)
          throw ParseError("store: bad magic line (want '" +
                               std::string(kMagic) + "')",
                           line_no);
        saw_magic = true;
        continue;
      }
      const auto fields = str::split_ws(trimmed);
      if (fields[0] != "record")
        throw ParseError(
            "store: unknown record '" + std::string(fields[0]) + "'",
            line_no);
      if (fields.size() != 1 + 3 + kMeasuredVariantFields)
        throw ParseError("store: record needs " +
                             std::to_string(3 + kMeasuredVariantFields) +
                             " fields",
                         line_no);
      StoreRecord r;
      for (std::size_t i = 1; i < fields.size(); ++i) {
        const auto [key, value] = split_field(fields[i], line_no);
        if (key == "kernel") {
          r.kernel = std::string(value);
        } else if (key == "gpu") {
          r.gpu = std::string(value);
        } else if (key == "n") {
          try {
            r.n = std::stoll(std::string(value));
          } catch (const std::exception&) {
            throw ParseError(
                "store: bad integer '" + std::string(value) + "'",
                line_no);
          }
        } else if (!apply_variant_field(r.variant, key, value, line_no)) {
          throw ParseError(
              "store: unknown record field '" + std::string(key) + "'",
              line_no);
        }
      }
      store.put(std::move(r));
    } catch (const Error& e) {
      // A failure on the final content line is the signature of a
      // truncated append (a writer killed mid-line): recoverable, the
      // completed prefix is intact. Anywhere else it is corruption.
      if (line_no != last_line || !saw_magic) throw;
      if (warnings != nullptr)
        warnings->push_back("store: skipped truncated final line " +
                            std::to_string(line_no) + " (" + e.what() +
                            ")");
    }
  }
  if (!saw_magic) throw ParseError("store: empty input", 1);
  return store;
}

TuningStore TuningStore::load(const std::string& path,
                              std::vector<std::string>* warnings) {
  // Reclaim `.tmp.<pid>` siblings from writers that died mid-save, so
  // a crashy fleet can't slowly fill the store directory.
  io::sweep_stale_tmp_files(path);
  const std::optional<std::string> text = io::read_file_if_exists(path);
  if (!text) return {};
  return parse(*text, warnings);
}

void TuningStore::save(const std::string& path) const {
  failpoint::check("store.save");
  io::write_file_atomic(path, serialize());
}

void TuningStore::merge_and_save(const std::string& path,
                                 std::vector<std::string>* warnings) {
  // Two exclusion layers around the load-merge-save window. In-process:
  // one static mutex for every path — merges are rare (end of a fleet
  // pass, the daemon's periodic persist) and a per-path registry would
  // complicate lifetime for no measurable gain. Cross-process (a daemon
  // plus a CLI run): an advisory flock on `<path>.lock`, without which
  // two processes could both load, merge, and save, the second rename
  // silently dropping the first's new records.
  static std::mutex merge_mu;
  const std::lock_guard<std::mutex> lock(merge_mu);
  failpoint::check("store.merge");
  const StoreFileLock file_lock(path);
  TuningStore merged = load(path, warnings);
  for (const StoreRecord& r : records_) merged.put(r);
  merged.save(path);
  *this = std::move(merged);
}

}  // namespace gpustatic::tuner
