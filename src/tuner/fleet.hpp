#pragma once

// Fleet tuning: run one search strategy over many (kernel, GPU) jobs
// concurrently, every job warm-started from — and harvested back into —
// a persistent TuningStore. This is the service-shaped workload the
// ROADMAP asks for: the paper tunes one kernel interactively; a fleet
// keeps a whole kernel library tuned per GPU, and never re-pays for a
// configuration the store already measured.
//
// Execution model: jobs fan out over a dedicated thread pool (kernel-
// level parallelism), while each job's simulator batches keep flowing
// through the shared pool exactly as in single-kernel tuning — the two
// pools are distinct objects, so the nesting is deadlock-free and a
// job's results are byte-identical to a standalone run of the same
// strategy (fleet concurrency never reorders a search's decisions).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "dsl/ast.hpp"
#include "sim/context.hpp"
#include "sim/runner.hpp"
#include "tuner/store.hpp"
#include "tuner/strategy.hpp"

namespace gpustatic::tuner {

/// One unit of fleet work: tune `workload` on `gpu` over `space`.
/// `kernel` and `n` key the store records this job reads and writes.
struct FleetJob {
  std::string kernel;
  std::int64_t n = 0;
  dsl::WorkloadDesc workload;
  const arch::GpuSpec* gpu = nullptr;
  ParamSpace space;
};

/// Fleet-wide tuning knobs (every job runs the same strategy).
struct FleetTuneOptions {
  std::string method = "rule";
  SearchOptions search;
  HybridOptions hybrid;
  sim::RunOptions run;
};

/// Outcome of one fleet job. `outcome` is exactly what a standalone
/// core::TuningSession::tune() of the same request would return; the
/// fresh/warm split is the fleet's own accounting of what the store
/// saved.
struct FleetJobReport {
  std::string kernel;
  std::string gpu;
  std::int64_t n = 0;
  std::string method;
  StrategyResult outcome;
  double predicted_cost = 0;  ///< Eq. 6 score of the best variant
  std::size_t fresh_evaluations = 0;  ///< simulator runs this job paid for
  std::size_t warm_hits = 0;          ///< lookups answered by the memo
  std::string error;                  ///< non-empty: the job failed
  /// True when the search was cancelled by its deadline/token. The
  /// report still carries partial results: best-so-far in `outcome` and
  /// real fresh/warm accounting for the work done before the cut, but
  /// `error` is set and ok() is false — a timed-out search is not a
  /// completed one.
  bool timed_out = false;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Tune one job, warm-started from `store` (which is only read). Never
/// throws: a failure lands in the report's `error` field, so callers on
/// worker threads need no handler. `harvest`, when non-null, receives
/// everything the memo learned in flat-space-index order (ready for a
/// deterministic store merge; left empty on failure). `context`, when
/// non-null, supplies the evaluation pipeline (compilation cache +
/// simulator scratch) instead of a fresh per-call one — the sharing
/// hook the tuning service uses so repeated requests for the same
/// (kernel, gpu, n) never recompile; it must have been built from this
/// job's workload/GPU and `opts.run`. Results are byte-identical to a
/// standalone core::TuningSession::tune() of the same request.
[[nodiscard]] FleetJobReport tune_job(
    const FleetJob& job, const TuningStore& store,
    const FleetTuneOptions& opts,
    std::vector<StoreRecord>* harvest = nullptr,
    std::shared_ptr<sim::SimContext> context = nullptr);

/// Tune every job, warm-starting each from `store` and merging every
/// measurement (new and refreshed) back into it afterwards. Reports
/// align with `jobs` by index; a job that throws reports its error
/// instead of aborting the fleet. The store merge runs single-threaded
/// after the fan-out, in job order with records sorted by flat space
/// index, so the resulting store is deterministic — rerunning an
/// unchanged fleet rewrites the store byte-identically.
[[nodiscard]] std::vector<FleetJobReport> tune_fleet(
    const std::vector<FleetJob>& jobs, TuningStore& store,
    const FleetTuneOptions& opts = {});

}  // namespace gpustatic::tuner
