#pragma once

// End-to-end autotuning experiments: compile-and-simulate objective
// functions, parallel exhaustive sweeps, and the Rank-1/Rank-2 protocol
// of Sec. IV-A (sort by the 5th-of-10 trial time, split at the median)
// that Table V and Fig. 4 are built from.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "dsl/ast.hpp"
#include "sim/runner.hpp"
#include "tuner/search.hpp"
#include "tuner/space.hpp"

namespace gpustatic::tuner {

/// One evaluated variant.
struct TrialRecord {
  codegen::TuningParams params;
  bool valid = true;
  double time_ms = 0;          ///< 5th-of-10 trial time
  double occupancy = 0;
  std::uint32_t regs_per_thread = 0;
  double reg_traffic = 0;      ///< dynamic register-operand traffic
  double intensity = 0;        ///< dynamic O_fl / O_mem
};

/// Builds an Objective that compiles a variant for (workload, gpu) and
/// measures it with the configured engine. Stateless per call and
/// thread-safe; pair with CachingEvaluator for memoization. The
/// Evaluator-interface equivalent is SimEvaluator (evaluator.hpp),
/// which additionally offers parallel batched evaluation.
[[nodiscard]] Objective make_objective(const dsl::WorkloadDesc& workload,
                                       const arch::GpuSpec& gpu,
                                       sim::RunOptions run_opts = {});

/// Evaluate every point of `space` (optionally subsampled by `stride` on
/// the flat index) in parallel with `threads` workers. Deterministic:
/// results are ordered by flat index regardless of scheduling.
[[nodiscard]] std::vector<TrialRecord> sweep(
    const ParamSpace& space, const dsl::WorkloadDesc& workload,
    const arch::GpuSpec& gpu, sim::RunOptions run_opts = {},
    std::size_t stride = 1, std::size_t threads = 0);

/// Rank split per the paper: valid trials sorted ascending by time, the
/// top half is Rank 1 (good performers), the bottom half Rank 2.
struct RankedTrials {
  std::vector<TrialRecord> rank1;
  std::vector<TrialRecord> rank2;
  TrialRecord best;
};
[[nodiscard]] RankedTrials rank_trials(std::vector<TrialRecord> trials);

/// Table V row statistics for one rank.
struct RankStats {
  double occ_mean = 0, occ_std = 0, occ_mode = 0;
  double reg_traffic_mean = 0, reg_traffic_std = 0;
  std::uint32_t regs_allocated = 0;  ///< mode of per-thread registers
  double threads_p25 = 0, threads_p50 = 0, threads_p75 = 0;
};
[[nodiscard]] RankStats rank_stats(const std::vector<TrialRecord>& rank);

}  // namespace gpustatic::tuner
