#pragma once

// The paper's contribution applied to search (Sec. III-C): prune the
// thread-count dimension with the static analyzer before any empirical
// testing.
//
//  1. Compile a baseline variant (no runs needed; this is "generating and
//     compiling the code versions ... without executing them").
//  2. Occupancy suggestion (Table VII): restrict TC to the T* candidates
//     that reach the best achievable occupancy.
//  3. Rule-based heuristic: computational intensity from the static
//     instruction mix; intensity > 4.0 keeps the upper half of T*,
//     intensity <= 4.0 the lower half (the empirical rule of Sec. III-C).

#include <cstdint>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "codegen/compiler.hpp"
#include "dsl/ast.hpp"
#include "occupancy/suggest.hpp"
#include "tuner/space.hpp"

namespace gpustatic::tuner {

/// The paper's empirically chosen intensity threshold.
inline constexpr double kIntensityThreshold = 4.0;

struct StaticPruneResult {
  occupancy::Suggestion suggestion;      ///< Table VII row
  double intensity = 0;                  ///< from the static mix
  bool prefers_upper = false;            ///< rule outcome
  std::vector<std::int64_t> static_threads;  ///< T* within the space grid
  std::vector<std::int64_t> rule_threads;    ///< after the rule heuristic
  ParamSpace static_space;               ///< TC restricted to T*
  ParamSpace rule_space;                 ///< TC restricted further
  std::size_t full_size = 0;
  std::size_t static_size = 0;
  std::size_t rule_size = 0;

  [[nodiscard]] double static_reduction() const {
    return full_size == 0
               ? 0.0
               : 1.0 - static_cast<double>(static_size) /
                           static_cast<double>(full_size);
  }
  [[nodiscard]] double rule_reduction() const {
    return full_size == 0
               ? 0.0
               : 1.0 - static_cast<double>(rule_size) /
                           static_cast<double>(full_size);
  }
};

/// Run the static analyzer over a workload and prune `space`'s TC
/// dimension. `baseline` controls the compile used for the register
/// footprint and mix (defaults are the paper's baseline variant).
[[nodiscard]] StaticPruneResult static_prune(
    const ParamSpace& space, const arch::GpuSpec& gpu,
    const dsl::WorkloadDesc& workload,
    codegen::TuningParams baseline = {});

}  // namespace gpustatic::tuner
