#include "tuner/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "analysis/predictor.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace gpustatic::tuner {

namespace {

/// Eq. 6 score of the job's best variant (a lowering-cache lookup after
/// the search — no fresh compile in practice); kInvalid when the
/// variant does not compile or no best exists.
double best_predicted_cost(const FleetJob& job,
                           const StrategyResult& outcome,
                           codegen::CompilationCache& compile_cache) {
  if (outcome.search.best_time == kInvalid) return kInvalid;
  try {
    return analysis::predicted_cost(
        *compile_cache.lower(outcome.search.best_params),
        job.gpu->family);
  } catch (const Error&) {
    return kInvalid;
  }
}

/// One job: a store-warmed CachingEvaluator over the simulator, the
/// strategy run mirroring core::TuningSession::tune() exactly, then a
/// deterministic harvest of everything the memo learned.
void run_job(const FleetJob& job, const TuningStore& store,
             const FleetTuneOptions& opts, FleetJobReport& report,
             std::vector<StoreRecord>* harvest,
             std::shared_ptr<sim::SimContext> context) {
  SimEvaluator sim(context != nullptr
                       ? std::move(context)
                       : std::make_shared<sim::SimContext>(
                             job.workload, *job.gpu, opts.run));
  CachingEvaluator cache(job.space, sim);
  for (const StoreRecord* r :
       store.context(job.kernel, job.gpu->name, job.n)) {
    const MeasuredVariant& v = r->variant;
    // A rejected configuration replays as kInvalid — the store saves
    // the re-discovery of unlaunchable variants too. Records that were
    // never executed (journal-style predictions) carry no time and
    // cannot warm anything.
    if (v.valid && !v.measured()) continue;
    (void)cache.preload(v.params, v.valid ? v.measured_ms : kInvalid);
  }

  const auto strategy = StrategyRegistry::instance().create(opts.method);
  StrategyContext ctx;
  ctx.space = &job.space;
  ctx.evaluator = &cache;
  ctx.options = opts.search;
  ctx.hybrid = opts.hybrid;
  // The analytic mode travels in RunOptions (like the backend); hybrid's
  // stage 1 reads it from HybridOptions, so keep the two in sync here
  // rather than asking every caller to set both. Same for the cancel
  // token, which travels in SearchOptions.
  ctx.hybrid.analytic = opts.run.analytic;
  ctx.hybrid.cancel = opts.search.cancel;
  cache.set_cancel(opts.search.cancel);
  ctx.gpu = job.gpu;
  ctx.workload = &job.workload;
  ctx.compile_cache = &sim.context().compilation_cache();
  StaticPruneResult prune_storage;
  bool prune_done = false;
  ctx.prune = [&]() -> const StaticPruneResult& {
    if (!prune_done) {
      prune_storage = static_prune(job.space, *job.gpu, job.workload);
      prune_done = true;
    }
    return prune_storage;
  };
  try {
    report.outcome = strategy->run(ctx);
  } catch (const common::CancelledError& e) {
    // Deadline hit mid-search: report best-so-far instead of nothing.
    // The outer memo saw every admitted evaluation regardless of which
    // strategy-internal wrapper was interrupted, so the partial outcome
    // and the harvest below are exactly the work completed before the
    // cut. `error` stays set — a timed-out search is not a completed
    // one — and timed_out lets callers render it as such in-band.
    report.timed_out = true;
    report.error = e.what();
    report.outcome.method = opts.method;
    report.outcome.search.strategy = opts.method;
    report.outcome.search.best_time = cache.best_value();
    if (!cache.best_point().empty())
      report.outcome.search.best_params =
          job.space.to_params(cache.best_point());
    report.outcome.search.distinct_evaluations =
        cache.distinct_evaluations();
    report.outcome.search.total_calls = cache.total_calls();
    report.outcome.space_size = job.space.size();
    report.outcome.full_space_size = job.space.size();
  }
  report.fresh_evaluations = cache.fresh_evaluations();
  report.warm_hits = cache.total_calls() - cache.fresh_evaluations();
  report.predicted_cost =
      best_predicted_cost(job, report.outcome,
                          sim.context().compilation_cache());

  if (harvest == nullptr) return;
  // Harvest in flat-index order: the memo iterates unordered, and a
  // deterministic store file needs a deterministic record order.
  std::vector<std::pair<std::size_t, double>> learned;
  learned.reserve(cache.distinct_evaluations());
  cache.for_each_cached([&](const Point& p, double v) {
    learned.emplace_back(job.space.flat_index(p), v);
  });
  std::sort(learned.begin(), learned.end());
  harvest->reserve(learned.size());
  for (const auto& [flat, v] : learned) {
    StoreRecord r;
    r.kernel = job.kernel;
    r.gpu = job.gpu->name;
    r.n = job.n;
    r.variant.params = job.space.to_params(job.space.point_at(flat));
    if (std::isinf(v)) {
      r.variant.valid = false;  // evaluated and rejected
    } else {
      r.variant.measured_ms = v;
    }
    harvest->push_back(std::move(r));
  }
}

}  // namespace

FleetJobReport tune_job(const FleetJob& job, const TuningStore& store,
                        const FleetTuneOptions& opts,
                        std::vector<StoreRecord>* harvest,
                        std::shared_ptr<sim::SimContext> context) {
  FleetJobReport report;
  report.kernel = job.kernel;
  report.gpu = job.gpu != nullptr ? job.gpu->name : "";
  report.n = job.n;
  report.method = opts.method;
  try {
    if (job.gpu == nullptr)
      throw Error("fleet job '" + job.kernel + "': no GPU");
    run_job(job, store, opts, report, harvest, std::move(context));
  } catch (const std::exception& e) {
    report.error = e.what();
    if (harvest != nullptr) harvest->clear();  // a failed job contributes nothing
  }
  return report;
}

std::vector<FleetJobReport> tune_fleet(const std::vector<FleetJob>& jobs,
                                       TuningStore& store,
                                       const FleetTuneOptions& opts) {
  std::vector<FleetJobReport> reports(jobs.size());
  std::vector<std::vector<StoreRecord>> harvests(jobs.size());

  // A dedicated pool for the kernel-level fan-out. Each job's simulator
  // batches go through ThreadPool::shared() as usual; shared() admits
  // one batch at a time, so concurrent jobs interleave batches safely
  // (and a 1-thread configuration degenerates to a sequential loop).
  ThreadPool pool(ThreadPool::configured_threads());
  pool.parallel_for(jobs.size(), [&](std::size_t k) {
    reports[k] = tune_job(jobs[k], store, opts, &harvests[k]);
  });

  // Single-threaded merge, in job order: deterministic, and upserts
  // refresh warm records in place so a rerun leaves the store stable.
  for (std::vector<StoreRecord>& harvest : harvests)
    for (StoreRecord& r : harvest) store.put(std::move(r));
  return reports;
}

}  // namespace gpustatic::tuner
