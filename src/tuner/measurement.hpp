#pragma once

// MeasuredVariant: one evaluated (or rejected) code variant — the unit
// both persistence formats share. replay::TuningJournal's `variant`
// lines and tuner::TuningStore's `record` lines serialize the same nine
// `key=value` fields through the helpers below, so the two formats stay
// field-compatible by construction (replay::VariantRecord is an alias
// of this type).

#include <iosfwd>
#include <string_view>

#include "codegen/params.hpp"

namespace gpustatic::tuner {

/// One code variant the tuner generated (and possibly measured).
struct MeasuredVariant {
  codegen::TuningParams params;
  double predicted_cost = 0;  ///< Eq. 6 score at record time
  double measured_ms = -1;    ///< trial time; < 0 = never executed
  bool valid = true;          ///< false: configuration rejected

  [[nodiscard]] bool measured() const { return measured_ms >= 0; }
};

/// Number of `key=value` fields the serialized form carries (TC BC UIF
/// PL SC FM pred time valid).
inline constexpr std::size_t kMeasuredVariantFields = 9;

/// Append the nine space-separated `key=value` fields (no leading or
/// trailing whitespace, no newline) to `os`. Floats use %.17g so the
/// round trip is lossless; an unmeasured time serializes as `-`.
void append_variant_fields(std::ostream& os, const MeasuredVariant& v);

/// Apply one `key=value` field to `v`. Returns false when `key` is not
/// one of the nine variant fields (the caller decides whether that is
/// an error); throws ParseError (tagged with `line`) on malformed
/// values.
bool apply_variant_field(MeasuredVariant& v, std::string_view key,
                         std::string_view value, std::size_t line);

/// Split a `key=value` token; throws ParseError (tagged with `line`)
/// when `field` has no '='.
[[nodiscard]] std::pair<std::string_view, std::string_view> split_field(
    std::string_view field, std::size_t line);

}  // namespace gpustatic::tuner
