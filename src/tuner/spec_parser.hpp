#pragma once

// Parser for the Orio PerfTuning annotation syntax of Fig. 3:
//
//   /*@ begin PerfTuning (
//     def performance_params {
//       param TC[] = range(32,1025,32);
//       param BC[] = range(24,193,24);
//       param UIF[] = range(1,6);
//       param PL[] = [16,48];
//       param CFLAGS[] = ['', '-use_fast_math'];
//     }
//     ...
//   ) @*/
//
// range(a,b[,s]) is half-open with step s (default 1), like Python.
// List values may be integers or quoted strings; the strings '' and
// '-use_fast_math' map to CFLAGS 0/1.

#include <string_view>

#include "tuner/space.hpp"

namespace gpustatic::tuner {

/// Parse a PerfTuning annotation into a ParamSpace. Throws ParseError.
[[nodiscard]] ParamSpace parse_perf_tuning(std::string_view text);

/// Render a ParamSpace back into Fig. 3 syntax (round-trip tested).
[[nodiscard]] std::string to_perf_tuning(const ParamSpace& space);

}  // namespace gpustatic::tuner
