#include "tuner/hybrid.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>

#include "analysis/predictor.hpp"
#include "common/error.hpp"
#include "tuner/evaluator.hpp"

namespace gpustatic::tuner {

HybridResult hybrid_search(const ParamSpace& space,
                           const arch::GpuSpec& gpu,
                           const dsl::WorkloadDesc& workload,
                           Evaluator& evaluator,
                           const HybridOptions& opts,
                           codegen::CompilationCache* compile_cache) {
  HybridResult r;
  r.prune = static_prune(space, gpu, workload, opts.baseline);
  const ParamSpace& pruned =
      opts.use_rule ? r.prune.rule_space : r.prune.static_space;

  // Stage 1 (static, zero runs): rank every survivor by the Eq. 6
  // prediction. Lowering is memoized per codegen key — Eq. 6 never sees
  // the launch shape, so key-mates score identically and the whole
  // pruned space costs |UIF| x |SC| x |CFLAGS| compiles, not one per
  // variant. Per-variant validation still rejects exactly what a fresh
  // Compiler constructor would.
  std::optional<codegen::CompilationCache> local_cache;
  if (compile_cache == nullptr) {
    local_cache.emplace(workload, gpu);
    compile_cache = &*local_cache;
  }
  // Wave mode swaps the stage-1 score for the wave-aware analytic time,
  // which sees the launch shape (memoized per key x TC x BC x PL inside
  // the evaluator). The non-owning alias keeps lowering through the
  // caller's cache; classic mode never constructs it and stays
  // byte-identical to the original ranking.
  std::optional<AnalyticEvaluator> wave_eval;
  if (opts.analytic.mode == sim::AnalyticMode::Wave)
    wave_eval.emplace(std::shared_ptr<codegen::CompilationCache>(
                          std::shared_ptr<codegen::CompilationCache>(),
                          compile_cache),
                      opts.analytic);
  std::map<codegen::CodegenKey, double> cost_by_key;
  r.shortlist.reserve(pruned.size());
  for (std::size_t i = 0; i < pruned.size(); ++i) {
    // Static ranking over a big pruned space can dominate a request's
    // wall time; check the token at a stride that keeps the overhead
    // unmeasurable.
    if ((i & 63u) == 0) opts.cancel.throw_if_cancelled();
    RankedVariant v;
    v.flat_index = i;
    v.params = pruned.to_params(pruned.point_at(i));
    try {
      if (wave_eval.has_value()) {
        v.predicted_cost = wave_eval->evaluate(v.params);
        if (v.predicted_cost == kInvalid) continue;  // not compilable
      } else {
        const codegen::CodegenKey key = codegen::CodegenKey::of(v.params);
        const auto it = cost_by_key.find(key);
        if (it != cost_by_key.end()) {
          codegen::validate_params(gpu, v.params);  // still per variant
          v.predicted_cost = it->second;
        } else {
          v.predicted_cost = analysis::predicted_cost(
              *compile_cache->lower(v.params), gpu.family);
          cost_by_key.emplace(key, v.predicted_cost);
        }
      }
    } catch (const ConfigError&) {
      continue;  // not compilable on this GPU: not a candidate
    }
    r.shortlist.push_back(std::move(v));
  }
  std::stable_sort(r.shortlist.begin(), r.shortlist.end(),
                   [](const RankedVariant& a, const RankedVariant& b) {
                     if (a.predicted_cost != b.predicted_cost)
                       return a.predicted_cost < b.predicted_cost;
                     return a.flat_index < b.flat_index;
                   });
  if (r.shortlist.empty())
    throw Error("hybrid_search: no compilable variant in the pruned space");

  // Stage 1b (optional, learned): offer the ranking to the installed
  // stage-1 ranker. A decline (nullopt) leaves the analytic order — and
  // therefore the whole result — byte-identical to a ranker-less run;
  // an accepted ranking re-orders the shortlist by (score, flat index).
  if (opts.stage1) {
    const std::optional<std::vector<double>> scores =
        opts.stage1(r.shortlist, *compile_cache);
    if (scores.has_value()) {
      if (scores->size() != r.shortlist.size())
        throw Error("hybrid_search: stage-1 ranker returned " +
                    std::to_string(scores->size()) + " scores for " +
                    std::to_string(r.shortlist.size()) + " candidates");
      for (const double s : *scores)
        if (std::isnan(s))
          throw Error("hybrid_search: stage-1 ranker returned NaN");
      std::vector<std::size_t> order(r.shortlist.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         if ((*scores)[a] != (*scores)[b])
                           return (*scores)[a] < (*scores)[b];
                         return r.shortlist[a].flat_index <
                                r.shortlist[b].flat_index;
                       });
      std::vector<RankedVariant> reranked;
      reranked.reserve(r.shortlist.size());
      for (const std::size_t i : order)
        reranked.push_back(std::move(r.shortlist[i]));
      r.shortlist = std::move(reranked);
      r.used_learned_ranker = true;
    }
  }

  // Stage 2 (empirical, dialed): measure the top-B predictions as one
  // memoized batch. Shortlist order is preserved inside the batch, so
  // the first-wins tie-break matches a one-variant-at-a-time loop, and
  // the CachingEvaluator budget guarantees at most B fresh backend runs.
  if (opts.empirical_budget == 0) {
    r.best_params = r.shortlist.front().params;  // zero-run recommendation
    return r;
  }
  const std::size_t budget =
      std::min(opts.empirical_budget, r.shortlist.size());
  CachingEvaluator eval(pruned, evaluator, opts.empirical_budget);
  eval.set_cancel(opts.cancel);
  std::vector<Point> top;
  top.reserve(budget);
  for (std::size_t i = 0; i < budget; ++i)
    top.push_back(pruned.point_at(r.shortlist[i].flat_index));
  eval.evaluate_batch(top);
  r.empirical_evaluations = eval.distinct_evaluations();
  r.best_time_ms = eval.best_value();
  if (!eval.best_point().empty())
    r.best_params = pruned.to_params(eval.best_point());
  else
    r.best_params = r.shortlist.front().params;  // all measured invalid
  return r;
}

HybridResult hybrid_search(const ParamSpace& space,
                           const arch::GpuSpec& gpu,
                           const dsl::WorkloadDesc& workload,
                           const Objective& objective,
                           const HybridOptions& opts) {
  FunctionEvaluator evaluator(objective);
  return hybrid_search(space, gpu, workload, evaluator, opts);
}

}  // namespace gpustatic::tuner
