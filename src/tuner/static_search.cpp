#include "tuner/static_search.hpp"

#include <algorithm>

#include "analysis/mix.hpp"

namespace gpustatic::tuner {

StaticPruneResult static_prune(const ParamSpace& space,
                               const arch::GpuSpec& gpu,
                               const dsl::WorkloadDesc& workload,
                               codegen::TuningParams baseline) {
  StaticPruneResult out;
  out.full_size = space.size();

  // 1. Static compile of the baseline variant.
  const codegen::Compiler compiler(gpu, baseline);
  const codegen::LoweredWorkload lw = compiler.compile(workload);

  // 2. Occupancy suggestion over the space's own TC grid.
  const Dimension& tc = space.dimension("TC");
  std::vector<std::uint32_t> grid;
  for (const std::int64_t v : tc.values)
    grid.push_back(static_cast<std::uint32_t>(v));
  out.suggestion = occupancy::suggest(gpu, lw.regs_per_thread(),
                                      lw.smem_per_block(), grid);
  for (const std::uint32_t t : out.suggestion.thread_candidates)
    out.static_threads.push_back(t);

  // 3. Intensity from the static instruction mix (summed over stages).
  sim::Counts weighted;
  for (const codegen::LoweredStage& st : lw.stages)
    weighted += analysis::analyze_mix(st.kernel).weighted;
  out.intensity = weighted.intensity();
  out.prefers_upper = out.intensity > kIntensityThreshold;

  // Rule: keep the upper or lower half of the suggested thread ladder.
  // (With an odd count the middle value stays in both halves, so the
  // rule never empties the candidate set.)
  const std::size_t n = out.static_threads.size();
  const std::size_t half = (n + 1) / 2;
  if (out.prefers_upper) {
    out.rule_threads.assign(out.static_threads.end() -
                                static_cast<std::ptrdiff_t>(half),
                            out.static_threads.end());
  } else {
    out.rule_threads.assign(out.static_threads.begin(),
                            out.static_threads.begin() +
                                static_cast<std::ptrdiff_t>(half));
  }

  out.static_space = space.restrict("TC", out.static_threads);
  out.rule_space = space.restrict("TC", out.rule_threads);
  out.static_size = out.static_space.size();
  out.rule_size = out.rule_space.size();
  return out;
}

}  // namespace gpustatic::tuner
