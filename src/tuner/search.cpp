#include "tuner/search.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/error.hpp"

namespace gpustatic::tuner {

double CachingEvaluator::admit(std::size_t key, const Point& p, double v) {
  cache_.emplace(key, v);
  if (v < best_) {
    best_ = v;
    best_point_ = p;
  }
  return v;
}

double CachingEvaluator::operator()(const Point& p) {
  const std::size_t key = space_->flat_index(p);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++calls_;
    return it->second;
  }
  if (exhausted())
    throw Error("CachingEvaluator: fresh evaluation requested after the "
                "budget of " +
                std::to_string(budget_) + " was spent");
  // Before the backend and before charging: cancelled work costs nothing.
  cancel_.throw_if_cancelled();
  const double v = backend_->evaluate(space_->to_params(p));
  ++calls_;  // counted on success: a throwing backend charges nothing
  ++fresh_;
  return admit(key, p, v);
}

bool CachingEvaluator::preload(const codegen::TuningParams& params,
                               double value) {
  const std::optional<Point> p = exact_point_of(params);
  if (!p) return false;
  const std::size_t key = space_->flat_index(*p);
  if (cache_.contains(key)) return false;
  admit(key, *p, value);
  return true;
}

void CachingEvaluator::for_each_cached(
    const std::function<void(const Point&, double)>& fn) const {
  for (const auto& [key, value] : cache_) fn(space_->point_at(key), value);
}

std::vector<double> CachingEvaluator::run_batch(
    const std::vector<Point>& pts, bool clamp_to_budget) {
  // Collect cache misses in first-encounter order (deduplicated), so
  // the best-point tie-break matches a sequential evaluation pass. The
  // budget clamp truncates exactly where a sequential loop would have
  // run out: at the first miss it can no longer afford.
  std::size_t answered = pts.size();
  std::size_t room = remaining();
  std::vector<std::size_t> keys(pts.size());
  std::vector<std::size_t> miss;
  std::vector<codegen::TuningParams> miss_params;
  std::unordered_set<std::size_t> pending;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    keys[i] = space_->flat_index(pts[i]);
    if (cache_.contains(keys[i]) || pending.contains(keys[i])) continue;
    if (room == 0) {
      if (!clamp_to_budget)
        throw Error("CachingEvaluator: batch needs more than the " +
                    std::to_string(budget_) + "-evaluation budget");
      answered = i;
      break;
    }
    --room;
    pending.insert(keys[i]);
    miss.push_back(i);
    miss_params.push_back(space_->to_params(pts[i]));
  }
  if (!miss.empty()) {  // an all-hit batch must not touch the backend
    // The cancellation point for batched search: past it, the round runs
    // to completion (stops at batch boundaries, never mid-measurement).
    cancel_.throw_if_cancelled();
    const std::vector<double> fresh =
        backend_->evaluate_batch(miss_params);
    if (fresh.size() != miss_params.size())
      throw Error("evaluate_batch: backend '" + backend_->name() +
                  "' returned " + std::to_string(fresh.size()) +
                  " values for " + std::to_string(miss_params.size()) +
                  " variants");
    for (std::size_t m = 0; m < miss.size(); ++m)
      admit(keys[miss[m]], pts[miss[m]], fresh[m]);
    fresh_ += miss.size();
  }
  calls_ += answered;  // counted on success, hits and misses alike
  std::vector<double> out(answered);
  for (std::size_t i = 0; i < answered; ++i) out[i] = cache_.at(keys[i]);
  return out;
}

std::vector<double> CachingEvaluator::evaluate_batch(
    const std::vector<Point>& pts) {
  return run_batch(pts, /*clamp_to_budget=*/true);
}

std::optional<Point> CachingEvaluator::exact_point_of(
    const codegen::TuningParams& params) const {
  std::optional<Point> p = space_->point_of(params);
  // The round-trip check rejects params that differ in a field no
  // dimension covers (e.g. a non-default stream_chunk against a space
  // without SC): caching those under the in-space point's key would
  // silently return the cost of a different variant.
  if (p && !(space_->to_params(*p) == params)) return std::nullopt;
  return p;
}

double CachingEvaluator::evaluate(const codegen::TuningParams& params) {
  const std::optional<Point> p = exact_point_of(params);
  if (!p) {
    // Outside the space: pass through uncached (and unbudgeted — the
    // budget meters the cache, and these params have no cache key).
    cancel_.throw_if_cancelled();
    const double v = backend_->evaluate(params);
    ++calls_;
    return v;
  }
  return (*this)(*p);
}

std::vector<double> CachingEvaluator::evaluate_batch(
    const std::vector<codegen::TuningParams>& batch) {
  // Split per entry: in-space params ride the cache machinery,
  // out-of-space ones (no cache key) go to the backend as their own
  // sub-batch — one foreign variant must not forfeit memoization for
  // the rest of the batch.
  std::vector<Point> pts;
  pts.reserve(batch.size());
  std::vector<codegen::TuningParams> foreign;
  std::vector<std::size_t> foreign_slot;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (std::optional<Point> p = exact_point_of(batch[i])) {
      pts.push_back(std::move(*p));
    } else {
      foreign.push_back(batch[i]);
      foreign_slot.push_back(i);
    }
  }
  if (foreign.empty()) return run_batch(pts, /*clamp_to_budget=*/false);

  // In-space portion first: if the budget cannot cover its misses this
  // throws before any foreign work is spent or charged.
  const std::vector<double> cached_vals =
      run_batch(pts, /*clamp_to_budget=*/false);
  cancel_.throw_if_cancelled();
  const std::vector<double> foreign_vals =
      backend_->evaluate_batch(foreign);
  if (foreign_vals.size() != foreign.size())
    throw Error("evaluate_batch: backend '" + backend_->name() +
                "' returned " + std::to_string(foreign_vals.size()) +
                " values for " + std::to_string(foreign.size()) +
                " variants");
  calls_ += foreign.size();
  std::vector<double> out(batch.size());
  std::size_t next_cached = 0;
  std::size_t next_foreign = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (next_foreign < foreign_slot.size() &&
        foreign_slot[next_foreign] == i)
      out[i] = foreign_vals[next_foreign++];
    else
      out[i] = cached_vals[next_cached++];
  }
  return out;
}

namespace {

SearchResult finish(const std::string& strategy, const ParamSpace& space,
                    const CachingEvaluator& eval) {
  SearchResult r;
  r.strategy = strategy;
  r.distinct_evaluations = eval.distinct_evaluations();
  r.total_calls = eval.total_calls();
  r.best_time = eval.best_value();
  if (!eval.best_point().empty())
    r.best_params = space.to_params(eval.best_point());
  return r;
}

Point random_point(const ParamSpace& space, Rng& rng) {
  Point p(space.rank());
  for (std::size_t d = 0; d < space.rank(); ++d)
    p[d] = static_cast<std::size_t>(
        rng.below(space.dimensions()[d].values.size()));
  return p;
}

Point neighbor(const ParamSpace& space, const Point& p, Rng& rng) {
  Point q = p;
  const std::size_t d = static_cast<std::size_t>(rng.below(space.rank()));
  const std::size_t n = space.dimensions()[d].values.size();
  if (n <= 1) return q;
  const bool up = rng.chance(0.5);
  if (up)
    q[d] = (q[d] + 1) % n;
  else
    q[d] = (q[d] + n - 1) % n;
  return q;
}

/// Caps one proposal round: bounds batch memory without changing
/// results (the budget clamp makes any round partition equivalent).
constexpr std::size_t kMaxRound = 1024;

}  // namespace

SearchResult exhaustive_search(const ParamSpace& space,
                               Evaluator& evaluator) {
  return exhaustive_search(space, evaluator, SearchOptions{});
}

SearchResult exhaustive_search(const ParamSpace& space, Evaluator& evaluator,
                               const SearchOptions& opts) {
  CachingEvaluator eval(space, evaluator);
  eval.set_cancel(opts.cancel);
  // The full scan in kMaxRound-sized rounds (a parallel backend fans
  // out within each round) with a cancellation check between rounds.
  // Any round partition yields identical results: in-batch order and
  // the first-wins tie-break are index order either way.
  std::vector<Point> round;
  for (std::size_t i = 0; i < space.size();) {
    opts.cancel.throw_if_cancelled();
    const std::size_t end = std::min(space.size(), i + kMaxRound);
    round.clear();
    round.reserve(end - i);
    for (; i < end; ++i) round.push_back(space.point_at(i));
    eval.evaluate_batch(round);
  }
  return finish("exhaustive", space, eval);
}

SearchResult random_search(const ParamSpace& space, Evaluator& evaluator,
                           const SearchOptions& opts) {
  CachingEvaluator eval(space, evaluator,
                        std::min(opts.budget, space.size()));
  eval.set_cancel(opts.cancel);
  Rng rng(opts.seed);
  // Proposal guard against tiny spaces where the budget is unreachable;
  // saturating so budget == SIZE_MAX cannot overflow it away.
  const std::size_t max_proposals =
      opts.budget > kUnlimitedBudget / 50 ? kUnlimitedBudget
                                          : opts.budget * 50;
  std::size_t proposed = 0;
  while (!eval.exhausted() && proposed < max_proposals) {
    // Covers all-cache-hit rounds, which never reach the evaluator's
    // own cancellation point.
    opts.cancel.throw_if_cancelled();
    // One round of candidates, evaluated as a single batch. The budget
    // clamp stops the round exactly where a sequential loop would, so
    // over-proposing within a round never overshoots.
    const std::size_t want = std::min(
        {eval.remaining(), kMaxRound, max_proposals - proposed});
    std::vector<Point> round;
    round.reserve(want);
    for (std::size_t i = 0; i < want; ++i)
      round.push_back(random_point(space, rng));
    proposed += round.size();
    eval.evaluate_batch(round);
  }
  return finish("random", space, eval);
}

SearchResult simulated_annealing(const ParamSpace& space,
                                 Evaluator& evaluator,
                                 const SearchOptions& opts) {
  CachingEvaluator eval(space, evaluator,
                        std::min(opts.budget, space.size()));
  eval.set_cancel(opts.cancel);
  Rng rng(opts.seed);
  if (eval.exhausted()) return finish("simulated-annealing", space, eval);
  Point cur = random_point(space, rng);
  double cur_v = eval(cur);
  double temp = opts.sa_initial_temp;

  // The walk is inherently sequential (each step depends on the last
  // acceptance), so this strategy stays per-point; the loop admits at
  // most one fresh evaluation per iteration, and the reheat below is
  // budget-clamped, so the budget is never overshot.
  while (!eval.exhausted()) {
    opts.cancel.throw_if_cancelled();
    const Point cand = neighbor(space, cur, rng);
    const double cand_v = eval(cand);
    bool take = cand_v < cur_v;
    if (!take && std::isfinite(cand_v) && std::isfinite(cur_v)) {
      // Relative-difference acceptance keeps the temperature scale
      // independent of absolute simulated times.
      const double rel = (cand_v - cur_v) / std::max(cur_v, 1e-12);
      take = rng.chance(std::exp(-rel / std::max(temp, 1e-6)));
    }
    if (take) {
      cur = cand;
      cur_v = cand_v;
    }
    temp *= opts.sa_cooling;
    if (temp < 1e-4) {  // reheat and hop to escape local basins
      temp = opts.sa_initial_temp;
      if (eval.exhausted()) break;  // no budget left for the hop
      cur = random_point(space, rng);
      cur_v = eval(cur);
    }
  }
  return finish("simulated-annealing", space, eval);
}

SearchResult genetic_search(const ParamSpace& space, Evaluator& evaluator,
                            const SearchOptions& opts) {
  CachingEvaluator eval(space, evaluator,
                        std::min(opts.budget, space.size()));
  eval.set_cancel(opts.cancel);
  Rng rng(opts.seed);

  struct Member {
    Point p;
    double v;
  };

  // Generation 0: the whole seed population as one batch (clamped, so a
  // budget smaller than the population just seeds fewer members).
  std::vector<Point> seeds;
  seeds.reserve(opts.ga_population);
  for (std::size_t i = 0; i < opts.ga_population; ++i)
    seeds.push_back(random_point(space, rng));
  const std::vector<double> seed_vals = eval.evaluate_batch(seeds);

  std::vector<Member> pop;
  pop.reserve(seed_vals.size());
  for (std::size_t i = 0; i < seed_vals.size(); ++i)
    pop.push_back({seeds[i], seed_vals[i]});
  if (pop.empty()) return finish("genetic", space, eval);

  auto tournament = [&]() -> const Member& {
    const Member* best = &pop[rng.below(pop.size())];
    for (std::size_t i = 1; i < opts.ga_tournament; ++i) {
      const Member& m = pop[rng.below(pop.size())];
      if (m.v < best->v) best = &m;
    }
    return *best;
  };

  // Generational loop: breed one generation of offspring from the
  // current population, evaluate it as one batch, then fold survivors
  // in (in offspring order, keeping replacement deterministic). The
  // stall guard terminates a converged population whose children are
  // all cache hits — distinct_evaluations can stop growing long before
  // the budget is reached (always, when ga_mutation_rate == 0).
  std::size_t stall = 0;
  while (!eval.exhausted() && stall < opts.ga_max_stall) {
    opts.cancel.throw_if_cancelled();
    const std::size_t before = eval.distinct_evaluations();
    std::vector<Point> children;
    children.reserve(opts.ga_population);
    for (std::size_t c = 0; c < opts.ga_population; ++c) {
      const Member& a = tournament();
      const Member& b = tournament();
      Point child(space.rank());
      for (std::size_t d = 0; d < space.rank(); ++d)
        child[d] = rng.chance(0.5) ? a.p[d] : b.p[d];
      for (std::size_t d = 0; d < space.rank(); ++d) {
        if (!rng.chance(opts.ga_mutation_rate)) continue;
        child[d] = static_cast<std::size_t>(
            rng.below(space.dimensions()[d].values.size()));
      }
      children.push_back(std::move(child));
    }
    const std::vector<double> vals = eval.evaluate_batch(children);
    for (std::size_t c = 0; c < vals.size(); ++c) {
      // Replace the worst member when the child improves on it.
      auto worst = std::max_element(
          pop.begin(), pop.end(),
          [](const Member& x, const Member& y) { return x.v < y.v; });
      if (vals[c] < worst->v) *worst = {children[c], vals[c]};
    }
    stall = eval.distinct_evaluations() == before ? stall + 1 : 0;
  }
  return finish("genetic", space, eval);
}

SearchResult nelder_mead_search(const ParamSpace& space,
                                Evaluator& evaluator,
                                const SearchOptions& opts) {
  CachingEvaluator eval(space, evaluator,
                        std::min(opts.budget, space.size()));
  eval.set_cancel(opts.cancel);
  Rng rng(opts.seed);
  const std::size_t n = space.rank();

  // Continuous coordinates in index space, rounded per evaluation.
  using Vec = std::vector<double>;
  auto clamp_round = [&](const Vec& x) {
    Point p(n);
    for (std::size_t d = 0; d < n; ++d) {
      const double hi =
          static_cast<double>(space.dimensions()[d].values.size() - 1);
      p[d] = static_cast<std::size_t>(
          std::llround(std::clamp(x[d], 0.0, hi)));
    }
    return p;
  };
  // One vertex value; false when it would need a fresh evaluation the
  // budget no longer covers (the search must stop).
  auto try_value = [&](const Vec& x, double& out) {
    const Point p = clamp_round(x);
    if (!eval.cached(p) && eval.exhausted()) return false;
    out = eval(p);
    return true;
  };
  auto done = [&] { return finish("nelder-mead", space, eval); };

  for (std::size_t restart = 0;
       restart <= opts.nm_restarts && !eval.exhausted(); ++restart) {
    opts.cancel.throw_if_cancelled();
    // Initial simplex: a random vertex plus unit offsets per dimension,
    // evaluated as one batch.
    std::vector<Vec> simplex;
    Vec x0(n);
    for (std::size_t d = 0; d < n; ++d)
      x0[d] = static_cast<double>(
          rng.below(space.dimensions()[d].values.size()));
    simplex.push_back(x0);
    for (std::size_t d = 0; d < n; ++d) {
      Vec x = x0;
      x[d] += 1.0;
      simplex.push_back(x);
    }
    std::vector<Point> seed_pts;
    seed_pts.reserve(simplex.size());
    for (const Vec& x : simplex) seed_pts.push_back(clamp_round(x));
    std::vector<double> vals = eval.evaluate_batch(seed_pts);
    if (vals.size() != seed_pts.size()) return done();  // budget ran dry

    for (int iter = 0; iter < 200 && !eval.exhausted(); ++iter) {
      // Order: best first.
      std::vector<std::size_t> order(simplex.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a,
                                                std::size_t b) {
        return vals[a] < vals[b];
      });
      const std::size_t worst = order.back();
      const std::size_t second_worst = order[order.size() - 2];
      const std::size_t best = order.front();

      Vec centroid(n, 0.0);
      for (std::size_t i = 0; i < simplex.size(); ++i) {
        if (i == worst) continue;
        for (std::size_t d = 0; d < n; ++d)
          centroid[d] += simplex[i][d];
      }
      for (double& c : centroid)
        c /= static_cast<double>(simplex.size() - 1);

      auto blend = [&](double alpha) {
        Vec x(n);
        for (std::size_t d = 0; d < n; ++d)
          x[d] = centroid[d] + alpha * (simplex[worst][d] - centroid[d]);
        return x;
      };

      const Vec reflect = blend(-1.0);
      double vr;
      if (!try_value(reflect, vr)) return done();
      if (vr < vals[best]) {
        const Vec expand = blend(-2.0);
        double ve;
        if (!try_value(expand, ve)) return done();
        if (ve < vr) {
          simplex[worst] = expand;
          vals[worst] = ve;
        } else {
          simplex[worst] = reflect;
          vals[worst] = vr;
        }
      } else if (vr < vals[second_worst]) {
        simplex[worst] = reflect;
        vals[worst] = vr;
      } else {
        const Vec contract = blend(0.5);
        double vc;
        if (!try_value(contract, vc)) return done();
        if (vc < vals[worst]) {
          simplex[worst] = contract;
          vals[worst] = vc;
        } else {
          // Shrink toward the best vertex: every moved vertex in one
          // batch, index order preserved for the tie-break.
          std::vector<std::size_t> moved;
          std::vector<Point> shrink_pts;
          for (std::size_t i = 0; i < simplex.size(); ++i) {
            if (i == best) continue;
            for (std::size_t d = 0; d < n; ++d)
              simplex[i][d] =
                  simplex[best][d] +
                  0.5 * (simplex[i][d] - simplex[best][d]);
            moved.push_back(i);
            shrink_pts.push_back(clamp_round(simplex[i]));
          }
          const std::vector<double> shrunk =
              eval.evaluate_batch(shrink_pts);
          if (shrunk.size() != shrink_pts.size()) return done();
          for (std::size_t k = 0; k < moved.size(); ++k)
            vals[moved[k]] = shrunk[k];
        }
      }
    }
  }
  return done();
}

}  // namespace gpustatic::tuner
