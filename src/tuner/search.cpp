#include "tuner/search.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/error.hpp"

namespace gpustatic::tuner {

double CachingEvaluator::admit(std::size_t key, const Point& p, double v) {
  cache_.emplace(key, v);
  if (v < best_) {
    best_ = v;
    best_point_ = p;
  }
  return v;
}

double CachingEvaluator::operator()(const Point& p) {
  ++calls_;
  const std::size_t key = space_->flat_index(p);
  if (const auto it = cache_.find(key); it != cache_.end())
    return it->second;
  return admit(key, p, backend_->evaluate(space_->to_params(p)));
}

std::vector<double> CachingEvaluator::evaluate_batch(
    const std::vector<Point>& pts) {
  calls_ += pts.size();
  // Collect cache misses in first-encounter order (deduplicated), so
  // the best-point tie-break matches a sequential evaluation pass.
  std::vector<std::size_t> keys(pts.size());
  std::vector<std::size_t> miss;
  std::vector<codegen::TuningParams> miss_params;
  std::unordered_set<std::size_t> pending;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    keys[i] = space_->flat_index(pts[i]);
    if (cache_.contains(keys[i]) || pending.contains(keys[i])) continue;
    pending.insert(keys[i]);
    miss.push_back(i);
    miss_params.push_back(space_->to_params(pts[i]));
  }
  const std::vector<double> fresh = backend_->evaluate_batch(miss_params);
  if (fresh.size() != miss_params.size())
    throw Error("evaluate_batch: backend '" + backend_->name() +
                "' returned " + std::to_string(fresh.size()) +
                " values for " + std::to_string(miss_params.size()) +
                " variants");
  for (std::size_t m = 0; m < miss.size(); ++m)
    admit(keys[miss[m]], pts[miss[m]], fresh[m]);
  std::vector<double> out(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) out[i] = cache_.at(keys[i]);
  return out;
}

namespace {

SearchResult finish(const std::string& strategy, const ParamSpace& space,
                    const CachingEvaluator& eval) {
  SearchResult r;
  r.strategy = strategy;
  r.distinct_evaluations = eval.distinct_evaluations();
  r.total_calls = eval.total_calls();
  r.best_time = eval.best_value();
  if (!eval.best_point().empty())
    r.best_params = space.to_params(eval.best_point());
  return r;
}

Point random_point(const ParamSpace& space, Rng& rng) {
  Point p(space.rank());
  for (std::size_t d = 0; d < space.rank(); ++d)
    p[d] = static_cast<std::size_t>(
        rng.below(space.dimensions()[d].values.size()));
  return p;
}

Point neighbor(const ParamSpace& space, const Point& p, Rng& rng) {
  Point q = p;
  const std::size_t d = static_cast<std::size_t>(rng.below(space.rank()));
  const std::size_t n = space.dimensions()[d].values.size();
  if (n <= 1) return q;
  const bool up = rng.chance(0.5);
  if (up)
    q[d] = (q[d] + 1) % n;
  else
    q[d] = (q[d] + n - 1) % n;
  return q;
}

}  // namespace

SearchResult exhaustive_search(const ParamSpace& space,
                               Evaluator& evaluator) {
  CachingEvaluator eval(space, evaluator);
  // One batch over the whole space: a parallel backend fans out here.
  std::vector<Point> pts;
  pts.reserve(space.size());
  for (std::size_t i = 0; i < space.size(); ++i)
    pts.push_back(space.point_at(i));
  eval.evaluate_batch(pts);
  return finish("exhaustive", space, eval);
}

SearchResult random_search(const ParamSpace& space, Evaluator& evaluator,
                           const SearchOptions& opts) {
  CachingEvaluator eval(space, evaluator);
  Rng rng(opts.seed);
  const std::size_t budget = std::min(opts.budget, space.size());
  std::size_t guard = 0;
  while (eval.distinct_evaluations() < budget &&
         guard++ < opts.budget * 50)
    eval(random_point(space, rng));
  return finish("random", space, eval);
}

SearchResult simulated_annealing(const ParamSpace& space,
                                 Evaluator& evaluator,
                                 const SearchOptions& opts) {
  CachingEvaluator eval(space, evaluator);
  Rng rng(opts.seed);
  Point cur = random_point(space, rng);
  double cur_v = eval(cur);
  double temp = opts.sa_initial_temp;
  const std::size_t budget = std::min(opts.budget, space.size());

  while (eval.distinct_evaluations() < budget) {
    const Point cand = neighbor(space, cur, rng);
    const double cand_v = eval(cand);
    bool take = cand_v < cur_v;
    if (!take && std::isfinite(cand_v) && std::isfinite(cur_v)) {
      // Relative-difference acceptance keeps the temperature scale
      // independent of absolute simulated times.
      const double rel = (cand_v - cur_v) / std::max(cur_v, 1e-12);
      take = rng.chance(std::exp(-rel / std::max(temp, 1e-6)));
    }
    if (take) {
      cur = cand;
      cur_v = cand_v;
    }
    temp *= opts.sa_cooling;
    if (temp < 1e-4) {  // reheat and hop to escape local basins
      temp = opts.sa_initial_temp;
      cur = random_point(space, rng);
      cur_v = eval(cur);
    }
  }
  return finish("simulated-annealing", space, eval);
}

SearchResult genetic_search(const ParamSpace& space, Evaluator& evaluator,
                            const SearchOptions& opts) {
  CachingEvaluator eval(space, evaluator);
  Rng rng(opts.seed);
  const std::size_t budget = std::min(opts.budget, space.size());

  struct Member {
    Point p;
    double v;
  };
  std::vector<Member> pop;
  for (std::size_t i = 0; i < opts.ga_population; ++i) {
    Point p = random_point(space, rng);
    pop.push_back({p, eval(p)});
  }

  auto tournament = [&]() -> const Member& {
    const Member* best = &pop[rng.below(pop.size())];
    for (std::size_t i = 1; i < opts.ga_tournament; ++i) {
      const Member& m = pop[rng.below(pop.size())];
      if (m.v < best->v) best = &m;
    }
    return *best;
  };

  while (eval.distinct_evaluations() < budget) {
    const Member& a = tournament();
    const Member& b = tournament();
    Point child(space.rank());
    for (std::size_t d = 0; d < space.rank(); ++d)
      child[d] = rng.chance(0.5) ? a.p[d] : b.p[d];
    for (std::size_t d = 0; d < space.rank(); ++d) {
      if (!rng.chance(opts.ga_mutation_rate)) continue;
      child[d] = static_cast<std::size_t>(
          rng.below(space.dimensions()[d].values.size()));
    }
    const double v = eval(child);
    // Replace the worst member when the child improves on it.
    auto worst = std::max_element(
        pop.begin(), pop.end(),
        [](const Member& x, const Member& y) { return x.v < y.v; });
    if (v < worst->v) *worst = {child, v};
  }
  return finish("genetic", space, eval);
}

SearchResult nelder_mead_search(const ParamSpace& space,
                                Evaluator& evaluator,
                                const SearchOptions& opts) {
  CachingEvaluator eval(space, evaluator);
  Rng rng(opts.seed);
  const std::size_t n = space.rank();
  const std::size_t budget = std::min(opts.budget, space.size());

  // Continuous coordinates in index space, rounded per evaluation.
  using Vec = std::vector<double>;
  auto clamp_round = [&](const Vec& x) {
    Point p(n);
    for (std::size_t d = 0; d < n; ++d) {
      const double hi =
          static_cast<double>(space.dimensions()[d].values.size() - 1);
      p[d] = static_cast<std::size_t>(
          std::llround(std::clamp(x[d], 0.0, hi)));
    }
    return p;
  };
  auto value = [&](const Vec& x) { return eval(clamp_round(x)); };

  for (std::size_t restart = 0;
       restart <= opts.nm_restarts &&
       eval.distinct_evaluations() < budget;
       ++restart) {
    // Initial simplex: a random vertex plus unit offsets per dimension.
    std::vector<Vec> simplex;
    Vec x0(n);
    for (std::size_t d = 0; d < n; ++d)
      x0[d] = static_cast<double>(
          rng.below(space.dimensions()[d].values.size()));
    simplex.push_back(x0);
    for (std::size_t d = 0; d < n; ++d) {
      Vec x = x0;
      x[d] += 1.0;
      simplex.push_back(x);
    }
    std::vector<double> vals;
    vals.reserve(simplex.size());
    for (const Vec& x : simplex) vals.push_back(value(x));

    for (int iter = 0; iter < 200 && eval.distinct_evaluations() < budget;
         ++iter) {
      // Order: best first.
      std::vector<std::size_t> order(simplex.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a,
                                                std::size_t b) {
        return vals[a] < vals[b];
      });
      const std::size_t worst = order.back();
      const std::size_t second_worst = order[order.size() - 2];
      const std::size_t best = order.front();

      Vec centroid(n, 0.0);
      for (std::size_t i = 0; i < simplex.size(); ++i) {
        if (i == worst) continue;
        for (std::size_t d = 0; d < n; ++d)
          centroid[d] += simplex[i][d];
      }
      for (double& c : centroid)
        c /= static_cast<double>(simplex.size() - 1);

      auto blend = [&](double alpha) {
        Vec x(n);
        for (std::size_t d = 0; d < n; ++d)
          x[d] = centroid[d] + alpha * (simplex[worst][d] - centroid[d]);
        return x;
      };

      const Vec reflect = blend(-1.0);
      const double vr = value(reflect);
      if (vr < vals[best]) {
        const Vec expand = blend(-2.0);
        const double ve = value(expand);
        if (ve < vr) {
          simplex[worst] = expand;
          vals[worst] = ve;
        } else {
          simplex[worst] = reflect;
          vals[worst] = vr;
        }
      } else if (vr < vals[second_worst]) {
        simplex[worst] = reflect;
        vals[worst] = vr;
      } else {
        const Vec contract = blend(0.5);
        const double vc = value(contract);
        if (vc < vals[worst]) {
          simplex[worst] = contract;
          vals[worst] = vc;
        } else {
          // Shrink toward the best vertex.
          for (std::size_t i = 0; i < simplex.size(); ++i) {
            if (i == best) continue;
            for (std::size_t d = 0; d < n; ++d)
              simplex[i][d] =
                  simplex[best][d] +
                  0.5 * (simplex[i][d] - simplex[best][d]);
            vals[i] = value(simplex[i]);
          }
        }
      }
    }
  }
  return finish("nelder-mead", space, eval);
}

}  // namespace gpustatic::tuner
