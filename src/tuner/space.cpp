#include "tuner/space.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gpustatic::tuner {

ParamSpace::Field ParamSpace::field_of(const std::string& name) {
  if (name == "TC") return Field::kTC;
  if (name == "BC") return Field::kBC;
  if (name == "UIF") return Field::kUIF;
  if (name == "PL") return Field::kPL;
  if (name == "SC") return Field::kSC;
  if (name == "CFLAGS") return Field::kCFLAGS;
  return Field::kUnknown;
}

ParamSpace::ParamSpace(std::vector<Dimension> dims)
    : dims_(std::move(dims)) {
  fields_.reserve(dims_.size());
  for (const Dimension& d : dims_) {
    if (d.values.empty())
      throw ConfigError("dimension '" + d.name + "' has no values");
    fields_.push_back(field_of(d.name));
  }
}

std::size_t ParamSpace::size() const {
  std::size_t n = 1;
  for (const Dimension& d : dims_) n *= d.values.size();
  return n;
}

Point ParamSpace::point_at(std::size_t flat_index) const {
  Point p(dims_.size(), 0);
  for (std::size_t d = dims_.size(); d-- > 0;) {
    p[d] = flat_index % dims_[d].values.size();
    flat_index /= dims_[d].values.size();
  }
  return p;
}

std::size_t ParamSpace::flat_index(const Point& p) const {
  std::size_t idx = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d)
    idx = idx * dims_[d].values.size() + p[d];
  return idx;
}

codegen::TuningParams ParamSpace::to_params(const Point& p) const {
  codegen::TuningParams out;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const auto v = dims_[d].values[p[d]];
    switch (fields_[d]) {
      case Field::kTC: out.threads_per_block = static_cast<int>(v); break;
      case Field::kBC: out.block_count = static_cast<int>(v); break;
      case Field::kUIF: out.unroll = static_cast<int>(v); break;
      case Field::kPL: out.l1_pref_kb = static_cast<int>(v); break;
      case Field::kSC: out.stream_chunk = static_cast<int>(v); break;
      case Field::kCFLAGS: out.fast_math = v != 0; break;
      case Field::kUnknown:
        throw ConfigError("unknown tuning dimension '" + dims_[d].name +
                          "'");
    }
  }
  return out;
}

std::optional<Point> ParamSpace::point_of(
    const codegen::TuningParams& params) const {
  Point p(dims_.size(), 0);
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const auto& values = dims_[d].values;
    // First matching value per dimension; CFLAGS values are truthiness
    // flags, not literal ints, so it inverts the same `v != 0`
    // lowering to_params applies.
    std::int64_t want = 0;
    bool truthy = false;
    switch (fields_[d]) {
      case Field::kTC: want = params.threads_per_block; break;
      case Field::kBC: want = params.block_count; break;
      case Field::kUIF: want = params.unroll; break;
      case Field::kPL: want = params.l1_pref_kb; break;
      case Field::kSC: want = params.stream_chunk; break;
      case Field::kCFLAGS: truthy = true; break;
      case Field::kUnknown:
        throw ConfigError("unknown tuning dimension '" + dims_[d].name +
                          "'");
    }
    const auto it = std::find_if(
        values.begin(), values.end(), [&](std::int64_t v) {
          return truthy ? (v != 0) == params.fast_math : v == want;
        });
    if (it == values.end()) return std::nullopt;
    p[d] = static_cast<std::size_t>(it - values.begin());
  }
  return p;
}

ParamSpace ParamSpace::restrict(const std::string& dim,
                                const std::vector<std::int64_t>& allowed)
    const {
  std::vector<Dimension> dims = dims_;
  bool found = false;
  for (Dimension& d : dims) {
    if (d.name != dim) continue;
    found = true;
    std::vector<std::int64_t> kept;
    for (const std::int64_t v : d.values)
      if (std::find(allowed.begin(), allowed.end(), v) != allowed.end())
        kept.push_back(v);
    if (kept.empty())
      throw ConfigError("restriction empties dimension '" + dim + "'");
    d.values = std::move(kept);
  }
  if (!found) throw LookupError("no dimension named '" + dim + "'");
  return ParamSpace(std::move(dims));
}

const Dimension& ParamSpace::dimension(const std::string& name) const {
  for (const Dimension& d : dims_)
    if (d.name == name) return d;
  throw LookupError("no dimension named '" + name + "'");
}

bool ParamSpace::has_dimension(const std::string& name) const {
  for (const Dimension& d : dims_)
    if (d.name == name) return true;
  return false;
}

namespace {

std::vector<std::int64_t> range_values(std::int64_t lo, std::int64_t hi_excl,
                                       std::int64_t step) {
  std::vector<std::int64_t> out;
  for (std::int64_t v = lo; v < hi_excl; v += step) out.push_back(v);
  return out;
}

}  // namespace

ParamSpace paper_space() {
  return ParamSpace({
      {"TC", range_values(32, 1025, 32)},
      {"BC", range_values(24, 193, 24)},
      {"UIF", range_values(1, 6, 1)},
      {"PL", {16, 48}},
      {"CFLAGS", {0, 1}},
  });
}

ParamSpace table3_space() {
  return ParamSpace({
      {"TC", range_values(32, 1025, 32)},
      {"BC", range_values(24, 193, 24)},
      {"UIF", range_values(1, 7, 1)},
      {"PL", {16, 48}},
      {"SC", range_values(1, 6, 1)},
      {"CFLAGS", {0, 1}},
  });
}

}  // namespace gpustatic::tuner
