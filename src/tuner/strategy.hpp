#pragma once

// First-class search strategies. Every tuning method — Orio's five
// searches, the paper's Static / Rule-Based pruned variants, and the
// Sec. VII hybrid dial — implements the Strategy interface and lives in
// a name-keyed StrategyRegistry, so drivers (core::TuningSession, the
// CLI `tune` command) dispatch uniformly and new strategies appear
// everywhere by registering themselves, not by editing method lists.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "dsl/ast.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/hybrid.hpp"
#include "tuner/search.hpp"
#include "tuner/space.hpp"
#include "tuner/static_search.hpp"

namespace gpustatic::tuner {

/// Everything a strategy may consume. `space` and `evaluator` are
/// mandatory; `gpu`/`workload` are required by model-guided strategies
/// (static, rule, hybrid), which throw Error when they are missing.
/// `prune` optionally shares a caller-cached static-prune result so
/// several model-guided runs over one workload analyze it once, and
/// `compile_cache` shares the session's lowering memo so model-guided
/// stages (hybrid's Eq. 6 ranking) never recompile what the evaluator
/// already lowered.
struct StrategyContext {
  const ParamSpace* space = nullptr;
  Evaluator* evaluator = nullptr;
  SearchOptions options;
  HybridOptions hybrid;  ///< hybrid dial (empirical budget, rule toggle)
  const arch::GpuSpec* gpu = nullptr;
  const dsl::WorkloadDesc* workload = nullptr;
  std::function<const StaticPruneResult&()> prune;
  codegen::CompilationCache* compile_cache = nullptr;
};

/// Uniform outcome of one strategy run, with enough bookkeeping to
/// compare methods (core::TuningOutcome is an alias of this).
struct StrategyResult {
  std::string method;   ///< registry name of the strategy that ran
  SearchResult search;
  std::size_t space_size = 0;       ///< size of the space searched
  std::size_t full_space_size = 0;  ///< size of the unpruned space
  double intensity = 0;             ///< only for model-guided methods
  std::size_t hybrid_candidates = 0;  ///< hybrid: prediction shortlist
  /// hybrid: the installed learned stage-1 ranker took the ranking
  /// (false when it declined or none was installed).
  bool used_learned_ranker = false;

  /// Fig. 6 metric: fraction of the full space eliminated before search.
  [[nodiscard]] double space_reduction() const {
    return full_space_size == 0
               ? 0.0
               : 1.0 - static_cast<double>(space_size) /
                           static_cast<double>(full_space_size);
  }
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Registry name ("random", "rule", ...).
  [[nodiscard]] virtual std::string name() const = 0;
  /// true when the strategy consumes SearchOptions::seed.
  [[nodiscard]] virtual bool stochastic() const { return false; }
  [[nodiscard]] virtual StrategyResult run(const StrategyContext& ctx)
      const = 0;
};

using StrategyFactory = std::function<std::unique_ptr<Strategy>()>;

/// Name -> factory. The process-wide instance() comes pre-loaded with
/// the eight built-ins; tests may build private registries.
class StrategyRegistry {
 public:
  /// The global registry (built-ins registered on first use).
  static StrategyRegistry& instance();

  /// Throws Error when `name` is already registered.
  void register_strategy(std::string name, StrategyFactory factory);
  /// Throws Error naming the registered strategies on unknown `name`.
  [[nodiscard]] std::unique_ptr<Strategy> create(
      const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const;
  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, StrategyFactory> factories_;
};

/// Registers the eight built-in strategies (exhaustive, random, anneal,
/// genetic, simplex, static, rule, hybrid) into `registry`. instance()
/// calls this once; exposed so tests can build self-contained registries.
void register_builtin_strategies(StrategyRegistry& registry);

/// Self-registration helper for user strategies:
///   static const tuner::RegisterStrategy reg{"mine", [] { ... }};
/// registers into the global instance() at static-init time.
struct RegisterStrategy {
  RegisterStrategy(std::string name, StrategyFactory factory) {
    StrategyRegistry::instance().register_strategy(std::move(name),
                                                   std::move(factory));
  }
};

}  // namespace gpustatic::tuner
