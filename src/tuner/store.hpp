#pragma once

// TuningStore: the persistent tuning database behind fleet tuning. It
// maps (kernel, GPU, problem size, TuningParams) to a measurement, so
// every simulator run the tuner ever paid for can warm-start later
// searches — a second fleet pass over an unchanged store performs zero
// fresh evaluations. The on-disk form extends the replay::journal text
// grammar: one `record` line per measurement, carrying the journal's
// nine variant fields (tuner/measurement.hpp) plus the three context
// keys:
//
//   gpustatic-store v1
//   record kernel=<name> gpu=<name> n=<int> TC=.. BC=.. UIF=.. PL=..
//          SC=.. FM=.. pred=.. time=<float|-> valid=<0|1>
//
// (one line per record; wrapped here for readability). Loads tolerate a
// truncated final line — the signature of a writer killed mid-append —
// by skipping it with a warning; corruption anywhere else is an error.
// Saves are atomic (common/io.hpp), so a store is never half-written.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "tuner/measurement.hpp"

namespace gpustatic::tuner {

/// One persisted evaluation: the context keys plus the variant.
struct StoreRecord {
  std::string kernel;   ///< registry/workload name (single token)
  std::string gpu;      ///< arch::GpuSpec name (single token)
  std::int64_t n = 0;   ///< problem size the measurement used
  MeasuredVariant variant;
};

class TuningStore {
 public:
  /// Upsert: a record whose (kernel, gpu, n, params) key is already
  /// present overwrites that record in place (keeping first-insertion
  /// order, so re-tuning refreshes measurements without reshuffling the
  /// file). Throws Error when kernel/gpu contain whitespace — keys must
  /// stay single tokens to serialize.
  void put(StoreRecord record);

  /// The stored variant for an exact (kernel, gpu, n, params) key, or
  /// nullptr when never recorded.
  [[nodiscard]] const MeasuredVariant* find(
      std::string_view kernel, std::string_view gpu, std::int64_t n,
      const codegen::TuningParams& params) const;

  /// Every record of one (kernel, gpu, n) tuning context, in insertion
  /// order — the warm-start set for that search.
  [[nodiscard]] std::vector<const StoreRecord*> context(
      std::string_view kernel, std::string_view gpu,
      std::int64_t n) const;

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  [[nodiscard]] const std::vector<StoreRecord>& records() const {
    return records_;
  }

  /// Text serialization (format above); parse() is the inverse.
  [[nodiscard]] std::string serialize() const;

  /// Parse a serialized store. A final line that fails to parse is
  /// treated as a truncated append: it is skipped and described in
  /// `warnings` (when given). Any other malformed line, a bad version
  /// header, or an unknown record kind raises ParseError.
  [[nodiscard]] static TuningStore parse(
      std::string_view text, std::vector<std::string>* warnings = nullptr);

  /// Load from a file. A missing file is an empty store (the first run
  /// bootstraps it); an existing but unreadable or corrupt file throws.
  [[nodiscard]] static TuningStore load(
      const std::string& path,
      std::vector<std::string>* warnings = nullptr);

  /// Atomic rewrite of `path` (temp sibling + rename; common/io.hpp).
  void save(const std::string& path) const;

  /// Concurrent-writer-safe persistence: under a process-wide mutex
  /// plus an advisory flock() on a sibling `<path>.lock` file, reload
  /// `path`, overlay this store's records onto the on-disk set (this
  /// store wins per key; disk-only records are kept in their file
  /// order), adopt the merged view, and atomically rewrite the file.
  /// Two daemon workers — or a daemon plus a CLI run in a separate
  /// process — saving into the same path therefore never lose each
  /// other's records: plain save() is last-writer-wins on the whole
  /// file, merge_and_save is last-writer-wins per record. (If the
  /// lockfile cannot be created, cross-process exclusion degrades to
  /// best-effort; in-process exclusion always holds.) Load warnings
  /// (e.g. a truncated final line) land in `warnings` when given.
  void merge_and_save(const std::string& path,
                      std::vector<std::string>* warnings = nullptr);

 private:
  [[nodiscard]] static std::string key_of(
      std::string_view kernel, std::string_view gpu, std::int64_t n,
      const codegen::TuningParams& params);

  std::vector<StoreRecord> records_;
  std::unordered_map<std::string, std::size_t> index_;  ///< key -> slot
};

}  // namespace gpustatic::tuner
