#include "tuner/strategy.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace gpustatic::tuner {

StrategyRegistry& StrategyRegistry::instance() {
  // The built-ins live in strategies.cpp; loading them through this call
  // (rather than file-scope registrar objects) keeps the registration
  // order defined and guarantees the archive member is linked in.
  static StrategyRegistry registry = [] {
    StrategyRegistry r;
    register_builtin_strategies(r);
    return r;
  }();
  return registry;
}

void StrategyRegistry::register_strategy(std::string name,
                                         StrategyFactory factory) {
  if (name.empty())
    throw Error("StrategyRegistry: strategy name must not be empty");
  if (!factory) throw Error("StrategyRegistry: null factory for '" + name +
                            "'");
  const auto [it, inserted] =
      factories_.emplace(std::move(name), std::move(factory));
  if (!inserted)
    throw Error("StrategyRegistry: strategy '" + it->first +
                "' is already registered");
}

std::unique_ptr<Strategy> StrategyRegistry::create(
    const std::string& name) const {
  const auto it = factories_.find(name);
  if (it == factories_.end())
    throw Error("unknown tune method '" + name + "' (registered: " +
                str::join(names(), "|") + ")");
  return it->second();
}

bool StrategyRegistry::contains(const std::string& name) const {
  return factories_.contains(name);
}

std::vector<std::string> StrategyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

}  // namespace gpustatic::tuner
