#pragma once

// The `gpustatic` command-line tool, factored as a library so every
// command is unit-testable: commands take parsed options and write to a
// stream; tools/gpustatic.cpp is a thin main().
//
// Subcommands:
//   gpus                      Table I hardware database
//   analyze   <kernel> ...    static-analyzer report (no runs)
//   occupancy ...             occupancy calculation for (TC, regs, smem)
//   suggest   <kernel> ...    Table VII suggestion + rule thread range
//   predict   <kernel> ...    Eq. 6 score + analytic time estimate
//   disasm    <kernel> ...    virtual-ISA disassembly of the compiled
//                             variant (the nvdisasm step of Sec. III)
//   profile   <kernel> ...    dynamic profile via the warp simulator
//   tune      <kernel> ...    autotune with a chosen search strategy
//   tune-fleet ...            tune the whole kernel library through a
//                             persistent tuning store (warm-started)
//   train     ...             fit the learned cost model from a tuning
//                             store (--store in, --model out) and
//                             report held-out ranking metrics
//   serve     ...             long-running tuning daemon speaking the
//                             line-delimited JSON wire protocol over
//                             TCP (--port) or stdin/stdout (--pipe)
//
// <kernel> is a registry name (atax, bicg, ex14fj, matvec2d) or a path
// to a kernel source file in the frontend language.
//
// Exit-code contract (documented in --help, enforced by run_main):
//   0  success
//   1  the command ran and failed (tuning, analysis, or I/O error)
//   2  usage error: unknown command/flag or malformed value

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "tuner/search.hpp"

namespace gpustatic::cli {

/// A mistake in how the tool was invoked (unknown command or flag,
/// malformed value, missing required argument) — exits with kExitUsage.
/// Every other Error is a failure of the requested work — kExitError.
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

inline constexpr int kExitOk = 0;     ///< command succeeded
inline constexpr int kExitError = 1;  ///< command ran and failed
inline constexpr int kExitUsage = 2;  ///< bad invocation

/// Parsed command line. Flags not meaningful for a given command are
/// simply unused.
struct Options {
  std::string command;
  std::string kernel;        ///< registry name or source path
  std::string gpu = "K20";
  std::int64_t n = 0;        ///< 0 = kernel-specific default
  // Variant parameters.
  int tc = 128;
  int bc = 56;
  int uif = 1;
  int pl = 48;
  int sc = 1;
  bool fast_math = false;
  /// Codegen backend (BackendRegistry name) for predict/disasm/profile/
  /// tune/tune-fleet; "ptx" is byte-identical to the pre-seam output.
  std::string backend = "ptx";
  /// Analytic-engine mode (classic|wave) for predict/tune/tune-fleet/
  /// serve; "classic" is byte-identical to the pre-mode output.
  std::string analytic_mode = "classic";
  // occupancy command inputs.
  std::uint32_t regs = 32;
  std::uint32_t smem = 0;
  // tune command inputs.
  std::string method = "rule";
  std::size_t budget = 16;   ///< hybrid empirical budget
  std::uint64_t seed = 1234;
  std::string spec_path;     ///< optional Fig. 3 PerfTuning spec file
  /// Deadline for one tune in milliseconds; 0 = none. An expired
  /// deadline cancels the search cooperatively and the command fails
  /// with the partial-result error, exit code 1.
  std::int64_t timeout_ms = 0;
  /// Failpoint spec (common/failpoint.hpp grammar), applied before the
  /// command runs; the GPUSTATIC_FAILPOINTS environment variable is the
  /// equivalent for daemons started by a supervisor.
  std::string failpoints;
  // tune-fleet command inputs.
  std::string store_path;    ///< tuning store file; empty = in-memory
  std::string report = "table";  ///< fleet report format: table|json|csv
  std::string kernels;       ///< comma-separated filter; empty = all
  // train command inputs (--model also arms tune/serve with the model).
  std::string model_path;    ///< learned cost-model file; empty = none
  std::size_t trees = 24;    ///< regression-forest size
  std::size_t min_records = 16;  ///< fewest usable store rows to train
  double val_frac = 0.25;    ///< per-group held-out fraction
  // serve command inputs.
  int port = 0;              ///< TCP port; 0 = ephemeral (printed)
  bool pipe = false;         ///< stdin/stdout transport instead of TCP
  std::size_t max_inflight = 8;  ///< concurrent tune searches admitted
  std::size_t max_queue = 32;    ///< waiting tunes beyond that; then shed
  std::size_t max_budget = 64;   ///< cap on a request's empirical budget
  std::size_t save_every = 8;    ///< persist store every N tune writes
};

/// Parse argv (excluding the program name). Throws Error with a usage
/// hint on unknown commands/flags or malformed values.
[[nodiscard]] Options parse_args(const std::vector<std::string>& args);

/// The single place CLI flags become search options: --seed reaches
/// every stochastic strategy through here (unit-tested plumbing).
[[nodiscard]] tuner::SearchOptions to_search_options(const Options& opts);

/// Execute the parsed command, writing the report to `out`. Returns the
/// process exit code (0 on success).
int run_command(const Options& opts, std::ostream& out);

/// The one place errors become process exits: renders `e` to `err`
/// ("gpustatic: ...") and returns the contract's code — kExitUsage for
/// UsageError, kExitError for everything else.
int render_error(const std::exception& e, std::ostream& err);

/// The whole program behind main(): parse `args` (argv minus the
/// program name), run the command, render any error. Never throws;
/// always returns one of the contract's exit codes.
int run_main(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err);

/// One-line usage summary plus per-command help.
[[nodiscard]] std::string usage();

}  // namespace gpustatic::cli
