#include "cli/cli.hpp"

#include <csignal>
#include <fstream>
#include <iostream>
#include <optional>
#include <ostream>
#include <sstream>

#include "analysis/predictor.hpp"
#include "arch/gpu_spec.hpp"
#include "codegen/backend.hpp"
#include "codegen/compiler.hpp"
#include "common/deadline.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/fleet.hpp"
#include "core/service.hpp"
#include "core/static_analyzer.hpp"
#include "dynamic/profile.hpp"
#include "dynamic/report.hpp"
#include "learn/trainer.hpp"
#include "occupancy/report.hpp"
#include "occupancy/suggest.hpp"
#include "ptx/printer.hpp"
#include "serve/server.hpp"
#include "sim/runner.hpp"
#include "tuner/spec_parser.hpp"
#include "tuner/strategy.hpp"

namespace gpustatic::cli {

namespace {

const char* kUsageTemplate = R"(usage: gpustatic <command> [options]

commands:
  gpus                       print the Table I hardware database
  analyze   <kernel>         static-analyzer report (no program runs)
  occupancy                  occupancy for --tc/--regs/--smem on --gpu
  suggest   <kernel>         Table VII thread/register/smem suggestion
  predict   <kernel>         Eq. 6 cost score + analytic time estimate
  disasm    <kernel>         virtual-ISA disassembly of the compiled variant
  profile   <kernel>         dynamic profile on the warp simulator
  tune      <kernel>         autotune (--method, --budget)
  tune-fleet                 tune the whole kernel library (base +
                             extended) through a persistent tuning
                             store; a warm store answers every repeat
                             evaluation with zero fresh simulator runs
  train                      fit the learned cost model from a tuning
                             store (--store in, --model out): a
                             regression forest over the static features,
                             reported with per-(kernel, GPU) held-out
                             Spearman and top-k regret (--report json
                             for machine-readable metrics)
  serve                      long-running tuning daemon: line-delimited
                             JSON requests (op
                             tune|query|stats|ping|retrain)
                             over loopback TCP (--port) or stdin/stdout
                             (--pipe); identical concurrent requests are
                             answered by one search, capacity overload
                             sheds with status "shed"

<kernel>: a registry name (atax, bicg, ex14fj, matvec2d) or a path to a
kernel source file in the frontend language.

options:
  -g, --gpu NAME     target GPU: M2050 | K20 | M40 | P100   [K20]
  -n, --size N       problem size                 [kernel default]
  --tc N             threads per block                       [128]
  --bc N             thread blocks                           [56]
  --uif N            unroll factor                           [1]
  --pl KB            preferred L1 size (16|48)               [48]
  --sc N             work-items per thread step              [1]
  --fast-math        enable fast-math lowering
  --backend NAME     codegen backend for predict/disasm/profile/tune,
                     registered: %BACKENDS%                 [ptx]
  --analytic-mode M  analytic engine mode for predict/tune/tune-fleet/
                     serve: %ANALYTIC_MODES%          [classic]
                     (wave models the partial tail wave; classic is
                     the paper's Eq. 6 full-wave scoring)
  --regs N           registers/thread (occupancy command)    [32]
  --smem B           shared memory/block bytes (occupancy)   [0]
  --method NAME      tune strategy, or 'list' to print them  [rule]
                     registered: %METHODS%
  --budget N         tune --method hybrid: empirical budget  [16]
  --seed N           stochastic search seed                  [1234]
  --spec FILE        tune: Orio PerfTuning annotation (Fig. 3 syntax)
                     defining the search space       [Table III space]
  --timeout-ms N     tune: per-request deadline in milliseconds; an
                     expired deadline cancels the search and fails
                     with the partial-result error           [none]
  --failpoints SPEC  arm fault-injection points before running, e.g.
                     'store.save=error(p=0.5,seed=1)'; equivalent to
                     the GPUSTATIC_FAILPOINTS environment variable
                     (chaos testing only)                    [none]
  --store FILE       tune-fleet: tuning store to warm-start from and
                     persist to (atomic rewrite)        [in-memory]
  --report FMT       tune-fleet report format: table|json|csv [table]
  --kernels a,b,c    tune-fleet: restrict to these kernels      [all]
                     (--gpu accepts 'all' to fleet every Table I GPU)
  --model FILE       learned cost-model file: output of `train`,
                     input to `tune --method hybrid` and `serve`
                     (learned stage-1 ranking; analytic fallback
                     when absent or unconfident)           [none]
  --trees N          train: regression-forest size              [24]
  --min-records N    train: fewest usable store rows required   [16]
  --val-frac F       train: per-group held-out fraction       [0.25]
  --port N           serve: TCP port; 0 picks an ephemeral port   [0]
                     (the chosen port is printed on startup)
  --pipe             serve: speak the protocol on stdin/stdout
  --max-inflight N   serve: concurrent tune searches admitted     [8]
  --max-queue N      serve: tunes queued beyond that; then shed  [32]
  --max-budget N     serve: cap on a request's empirical budget  [64]
  --save-every N     serve: persist --store every N tune writes   [8]

exit codes:
  0  success
  1  the command ran and failed (tuning, analysis, or I/O error)
  2  usage error: unknown command/flag or malformed value
)";

/// Usage text with the strategy list taken live from the registry, so a
/// newly registered strategy shows up in help without editing this file.
std::string render_usage() {
  std::string text = kUsageTemplate;
  const auto substitute = [&text](const std::string& placeholder,
                                  const std::vector<std::string>& names) {
    const std::size_t at = text.find(placeholder);
    if (at != std::string::npos)
      text.replace(at, placeholder.size(), str::join(names, "|"));
  };
  substitute("%METHODS%", tuner::StrategyRegistry::instance().names());
  substitute("%BACKENDS%", codegen::BackendRegistry::instance().names());
  substitute("%ANALYTIC_MODES%", sim::analytic_mode_names());
  return text;
}

/// Load a workload from the registry or from a source file (the
/// service's resolver, so every command agrees on name/path handling
/// and default sizes).
dsl::WorkloadDesc load_workload(const Options& opts) {
  return core::load_workload(opts.kernel, opts.n);
}

/// Resolve --backend through the registry, turning an unknown name into
/// a usage error that enumerates the registered backends (the --method
/// treatment, applied to backends).
std::shared_ptr<const codegen::Backend> backend_of(const Options& opts) {
  try {
    return codegen::BackendRegistry::instance().get(opts.backend);
  } catch (const Error& e) {
    throw UsageError(e.what());
  }
}

/// Resolve --analytic-mode, turning an unknown name into a usage error
/// that enumerates the valid modes (the --backend treatment).
sim::AnalyticOptions analytic_of(const Options& opts) {
  const std::optional<sim::AnalyticMode> mode =
      sim::parse_analytic_mode(opts.analytic_mode);
  if (!mode.has_value())
    throw UsageError("unknown analytic mode '" + opts.analytic_mode +
                     "' (want " + str::join(sim::analytic_mode_names(), "|") +
                     ")");
  return sim::AnalyticOptions{*mode};
}

codegen::TuningParams variant_of(const Options& opts) {
  codegen::TuningParams p;
  p.threads_per_block = opts.tc;
  p.block_count = opts.bc;
  p.unroll = opts.uif;
  p.l1_pref_kb = opts.pl;
  p.stream_chunk = opts.sc;
  p.fast_math = opts.fast_math;
  return p;
}

// ---- commands ------------------------------------------------------------

int cmd_gpus(std::ostream& out) {
  TextTable t({"GPU", "Family", "cc", "SMs", "cores/SM", "clock MHz",
               "warps/SM", "blocks/SM", "regs/thread", "smem/block"});
  for (const arch::GpuSpec& g : arch::all_gpus())
    t.add_row({g.name, std::string(arch::family_name(g.family)),
               str::format_trimmed(g.compute_capability, 1),
               std::to_string(g.multiprocessors),
               std::to_string(g.cores_per_mp),
               std::to_string(g.gpu_clock_mhz),
               std::to_string(g.warps_per_mp),
               std::to_string(g.blocks_per_mp),
               std::to_string(g.regs_per_thread),
               std::to_string(g.smem_per_block)});
  out << t.render();
  return 0;
}

int cmd_analyze(const Options& opts, std::ostream& out) {
  const auto wl = load_workload(opts);
  const core::StaticAnalyzer analyzer(arch::gpu(opts.gpu));
  out << analyzer.analyze(wl, variant_of(opts)).to_string() << "\n";
  return 0;
}

int cmd_occupancy(const Options& opts, std::ostream& out) {
  const auto& gpu = arch::gpu(opts.gpu);
  out << occupancy::calculator_report(
      gpu, occupancy::KernelParams{static_cast<std::uint32_t>(opts.tc),
                                   opts.regs, opts.smem});
  return 0;
}

int cmd_suggest(const Options& opts, std::ostream& out) {
  const auto wl = load_workload(opts);
  const auto& gpu = arch::gpu(opts.gpu);
  const core::StaticAnalyzer analyzer(gpu);
  const auto report = analyzer.analyze(wl, variant_of(opts));
  const auto& s = report.suggestion;
  out << "kernel " << wl.name << " on " << gpu.name << ":\n";
  out << str::format("  occ* = %.2f, [Ru:R*] = [%u:%u], S* = %u B\n",
                     s.occ_star, s.regs_used, s.reg_headroom,
                     s.smem_budget);
  out << "  T* = {";
  for (std::size_t i = 0; i < s.thread_candidates.size(); ++i)
    out << (i ? ", " : "") << s.thread_candidates[i];
  out << "}\n";
  out << "  rule (intensity " << str::format("%.2f", report.intensity)
      << " -> " << (report.prefers_upper ? "upper" : "lower")
      << " half): {";
  for (std::size_t i = 0; i < report.rule_threads.size(); ++i)
    out << (i ? ", " : "") << report.rule_threads[i];
  out << "}\n";
  return 0;
}

int cmd_predict(const Options& opts, std::ostream& out) {
  const auto backend = backend_of(opts);
  const auto analytic = analytic_of(opts);
  const auto wl = load_workload(opts);
  const auto& gpu = arch::gpu(opts.gpu);
  const auto params = variant_of(opts);
  const auto lw = backend->lower(wl, gpu, params);
  const double score = analysis::predicted_cost(lw, gpu.family);
  const auto machine = sim::MachineModel::from(gpu, params.l1_pref_kb);
  sim::RunOptions run;
  run.analytic = analytic;
  const auto m = sim::run_workload(lw, wl, machine, run);
  out << "variant " << params.to_string() << " of " << wl.name << " on "
      << gpu.name << ":\n";
  out << str::format("  Eq. 6 static cost score : %.2f\n", score);
  if (m.valid) {
    out << str::format("  analytic time estimate  : %.4f ms (%s mode)\n",
                       m.trial_time_ms,
                       std::string(sim::analytic_mode_name(analytic.mode))
                           .c_str());
    out << str::format("  launch waves            : %.2f\n", m.waves);
    out << str::format("  last-wave SM fullness   : %.0f%%\n",
                       100.0 * m.tail_sm_fraction);
  } else {
    out << "  not launchable: " << m.error << "\n";
  }
  return 0;
}

int cmd_disasm(const Options& opts, std::ostream& out) {
  const auto backend = backend_of(opts);
  const auto wl = load_workload(opts);
  const auto lw = backend->lower(wl, arch::gpu(opts.gpu), variant_of(opts));
  out << backend->emit_source(lw, wl);
  return 0;
}

int cmd_profile(const Options& opts, std::ostream& out) {
  const auto backend = backend_of(opts);
  const auto wl = load_workload(opts);
  const auto& gpu = arch::gpu(opts.gpu);
  const auto params = variant_of(opts);
  const auto lw = backend->lower(wl, gpu, params);
  const auto machine = sim::MachineModel::from(gpu, params.l1_pref_kb);
  const auto profile = dynamic::profile_workload(lw, wl, machine);
  out << dynamic::render_profile(profile);
  return profile.measurement.valid ? 0 : 1;
}

tuner::ParamSpace tune_space(const Options& opts) {
  if (opts.spec_path.empty()) return tuner::paper_space();
  std::ifstream in(opts.spec_path);
  if (!in) throw Error("cannot open tuning spec '" + opts.spec_path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return tuner::parse_perf_tuning(text.str());
}

/// The tune flags as one typed service request — the CLI's half of the
/// TuningService contract (the daemon builds the same struct from wire
/// fields; see serve/protocol.cpp).
core::TuneRequest tune_request(const Options& opts) {
  core::TuneRequest request;
  request.kernel = opts.kernel;
  request.gpu = opts.gpu;
  request.n = opts.n;
  request.method = opts.method;
  request.search = to_search_options(opts);
  request.hybrid.empirical_budget = opts.budget;
  request.space = tune_space(opts);
  request.run.backend = opts.backend;
  request.run.analytic = analytic_of(opts);
  if (opts.timeout_ms > 0)
    request.cancel = common::CancelToken::with_deadline(
        common::Deadline::after_ms(opts.timeout_ms));
  return request;
}

int cmd_tune(const Options& opts, std::ostream& out) {
  if (opts.method == "list") {
    for (const auto& name : tuner::StrategyRegistry::instance().names())
      out << name << "\n";
    return 0;
  }
  // Validate the method and backend against their registries before
  // loading anything; the UsageError enumerates what is registered.
  try {
    (void)tuner::StrategyRegistry::instance().create(opts.method);
  } catch (const Error& e) {
    throw UsageError(e.what());
  }
  (void)backend_of(opts);
  (void)analytic_of(opts);
  if (opts.kernel.empty())
    throw UsageError("command 'tune' needs a kernel argument");

  // In-memory store (one-shot tune); --model arms the hybrid strategy
  // with the learned stage-1 ranker.
  core::TuningService::Config config;
  config.model_path = opts.model_path;
  core::TuningService service(config);
  for (const std::string& w : service.load_warnings())
    out << "warning: " << w << "\n";
  const core::TuneResponse response = service.tune(tune_request(opts));
  if (!response.ok()) throw Error(response.error);
  const tuner::StrategyResult& outcome = response.outcome;

  if (outcome.method == "hybrid") {
    out << "hybrid search (budget " << opts.budget << ", "
        << outcome.search.distinct_evaluations << " runs over "
        << outcome.hybrid_candidates << " candidates"
        << (outcome.used_learned_ranker ? ", learned stage-1 ranking"
                                        : "")
        << "):\n";
    out << "  best " << outcome.search.best_params.to_string();
    if (outcome.search.best_time != tuner::kInvalid)
      out << str::format(" -> %.4f ms", outcome.search.best_time);
    else
      out << " (zero-run recommendation)";
    out << "\n";
    return 0;
  }

  out << outcome.method << " search over " << outcome.space_size
      << " of " << outcome.full_space_size << " variants";
  if (outcome.space_reduction() > 0)
    out << str::format(" (%.1f%% pruned)", 100 * outcome.space_reduction());
  out << ":\n  best " << outcome.search.best_params.to_string()
      << str::format(" -> %.4f ms (%zu evaluations)\n",
                     outcome.search.best_time,
                     outcome.search.distinct_evaluations);
  return 0;
}

int cmd_tune_fleet(const Options& opts, std::ostream& out) {
  // Validate the request surface before loading or tuning anything.
  try {
    (void)tuner::StrategyRegistry::instance().create(opts.method);
    core::validate_fleet_report_format(opts.report);
  } catch (const Error& e) {
    throw UsageError(e.what());
  }
  (void)backend_of(opts);

  core::TuningService::Config config;
  config.store_path = opts.store_path;
  core::TuningService service(config);
  for (const std::string& w : service.load_warnings())
    out << "warning: " << w << "\n";

  core::FleetOptions fleet_opts;
  if (!opts.kernels.empty()) {
    for (const std::string& name : str::split(opts.kernels, ','))
      if (!name.empty()) fleet_opts.kernels.push_back(name);
  }
  fleet_opts.gpus = {opts.gpu};
  fleet_opts.n = opts.n;
  fleet_opts.method = opts.method;
  fleet_opts.search = to_search_options(opts);
  fleet_opts.hybrid.empirical_budget = opts.budget;
  fleet_opts.space = tune_space(opts);
  fleet_opts.run.backend = opts.backend;
  fleet_opts.run.analytic = analytic_of(opts);

  const core::FleetReport report = service.tune_fleet(fleet_opts);
  out << core::render_fleet_report(report, opts.report);
  return report.failed == 0 ? kExitOk : kExitError;
}

int cmd_train(const Options& opts, std::ostream& out) {
  if (opts.store_path.empty())
    throw UsageError("command 'train' needs --store FILE (the corpus)");
  if (opts.report != "table" && opts.report != "json")
    throw UsageError("command 'train' supports --report table|json, not '" +
                     opts.report + "'");

  std::vector<std::string> warnings;
  const tuner::TuningStore store =
      tuner::TuningStore::load(opts.store_path, &warnings);

  learn::TrainOptions topts;
  topts.corpus.seed = opts.seed;
  topts.corpus.min_records = opts.min_records;
  topts.corpus.validation_fraction = opts.val_frac;
  topts.corpus.load_workload = [](const std::string& kernel,
                                  std::int64_t n) {
    return core::load_workload(kernel, n);
  };
  topts.forest.trees = opts.trees;

  const learn::TrainReport report =
      learn::train_cost_model(store, topts, &warnings);
  for (const std::string& w : warnings) out << "warning: " << w << "\n";
  if (opts.report == "json") {
    out << report.to_json() << "\n";
  } else {
    out << report.to_table();
  }
  if (!opts.model_path.empty()) {
    report.model.save(opts.model_path);
    if (opts.report != "json")
      out << "model saved to " << opts.model_path << "\n";
  }
  return 0;
}

// The live server for the signal bridge: POSIX hands handlers only the
// signal number, and Server::stop() is async-signal-safe by contract.
serve::Server* g_serve_server = nullptr;

void serve_signal_handler(int) {
  if (g_serve_server != nullptr) g_serve_server->stop();
}

int cmd_serve(const Options& opts, std::ostream& out) {
  (void)analytic_of(opts);  // validate before the daemon starts
  serve::ServeOptions sopts;
  sopts.store_path = opts.store_path;
  sopts.model_path = opts.model_path;
  sopts.analytic_mode = opts.analytic_mode;
  sopts.port = opts.port;
  sopts.max_inflight = opts.max_inflight;
  sopts.max_queue = opts.max_queue;
  sopts.max_budget = opts.max_budget;
  sopts.save_every = opts.save_every;

  serve::Server server(sopts);
  if (opts.pipe) {
    for (const std::string& w : server.service().load_warnings())
      out << "warning: " << w << "\n";
    return server.run_pipe(std::cin, out);
  }
  g_serve_server = &server;
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  const int rc = server.run_tcp(out);
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_serve_server = nullptr;
  return rc;
}

}  // namespace

std::string usage() { return render_usage(); }

tuner::SearchOptions to_search_options(const Options& opts) {
  tuner::SearchOptions sopts;
  sopts.seed = opts.seed;
  return sopts;
}

Options parse_args(const std::vector<std::string>& args) {
  if (args.empty())
    throw UsageError(std::string("no command given\n") + render_usage());
  Options o;
  o.command = args[0];
  const bool wants_kernel =
      o.command == "analyze" || o.command == "suggest" ||
      o.command == "predict" || o.command == "disasm" ||
      o.command == "profile" || o.command == "tune";

  std::size_t i = 1;
  if (wants_kernel) {
    // `tune` defers the missing-kernel error to run time so that
    // kernel-less forms like `tune --method list` work.
    if (i < args.size() && !str::starts_with(args[i], "-"))
      o.kernel = args[i++];
    else if (o.command != "tune")
      throw UsageError("command '" + o.command +
                       "' needs a kernel argument");
  }

  auto need_value = [&](const std::string& flag) -> const std::string& {
    if (i + 1 >= args.size())
      throw UsageError("flag '" + flag + "' needs a value");
    return args[++i];
  };
  auto to_int = [](const std::string& flag,
                   const std::string& v) -> std::int64_t {
    try {
      std::size_t used = 0;
      const std::int64_t out = std::stoll(v, &used);
      if (used != v.size()) throw std::invalid_argument(v);
      return out;
    } catch (const std::exception&) {
      throw UsageError("flag '" + flag + "': bad integer '" + v + "'");
    }
  };
  auto to_double = [](const std::string& flag,
                      const std::string& v) -> double {
    try {
      std::size_t used = 0;
      const double out = std::stod(v, &used);
      if (used != v.size()) throw std::invalid_argument(v);
      return out;
    } catch (const std::exception&) {
      throw UsageError("flag '" + flag + "': bad number '" + v + "'");
    }
  };

  for (; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "-g" || a == "--gpu") {
      o.gpu = need_value(a);
    } else if (a == "-n" || a == "--size") {
      o.n = to_int(a, need_value(a));
    } else if (a == "--tc") {
      o.tc = static_cast<int>(to_int(a, need_value(a)));
    } else if (a == "--bc") {
      o.bc = static_cast<int>(to_int(a, need_value(a)));
    } else if (a == "--uif") {
      o.uif = static_cast<int>(to_int(a, need_value(a)));
    } else if (a == "--pl") {
      o.pl = static_cast<int>(to_int(a, need_value(a)));
    } else if (a == "--sc") {
      o.sc = static_cast<int>(to_int(a, need_value(a)));
    } else if (a == "--fast-math") {
      o.fast_math = true;
    } else if (a == "--backend") {
      o.backend = need_value(a);
    } else if (a == "--analytic-mode") {
      o.analytic_mode = need_value(a);
    } else if (a == "--regs") {
      o.regs = static_cast<std::uint32_t>(to_int(a, need_value(a)));
    } else if (a == "--smem") {
      o.smem = static_cast<std::uint32_t>(to_int(a, need_value(a)));
    } else if (a == "--method") {
      o.method = need_value(a);
    } else if (a == "--budget") {
      o.budget = static_cast<std::size_t>(to_int(a, need_value(a)));
    } else if (a == "--seed") {
      o.seed = static_cast<std::uint64_t>(to_int(a, need_value(a)));
    } else if (a == "--spec") {
      o.spec_path = need_value(a);
    } else if (a == "--timeout-ms") {
      o.timeout_ms = to_int(a, need_value(a));
      if (o.timeout_ms <= 0)
        throw UsageError("flag '--timeout-ms' needs a positive value");
    } else if (a == "--failpoints") {
      o.failpoints = need_value(a);
    } else if (a == "--store") {
      o.store_path = need_value(a);
    } else if (a == "--report") {
      o.report = need_value(a);
    } else if (a == "--kernels") {
      o.kernels = need_value(a);
    } else if (a == "--model") {
      o.model_path = need_value(a);
    } else if (a == "--trees") {
      o.trees = static_cast<std::size_t>(to_int(a, need_value(a)));
    } else if (a == "--min-records") {
      o.min_records = static_cast<std::size_t>(to_int(a, need_value(a)));
    } else if (a == "--val-frac") {
      o.val_frac = to_double(a, need_value(a));
    } else if (a == "--port") {
      o.port = static_cast<int>(to_int(a, need_value(a)));
    } else if (a == "--pipe") {
      o.pipe = true;
    } else if (a == "--max-inflight") {
      o.max_inflight = static_cast<std::size_t>(to_int(a, need_value(a)));
    } else if (a == "--max-queue") {
      o.max_queue = static_cast<std::size_t>(to_int(a, need_value(a)));
    } else if (a == "--max-budget") {
      o.max_budget = static_cast<std::size_t>(to_int(a, need_value(a)));
    } else if (a == "--save-every") {
      o.save_every = static_cast<std::size_t>(to_int(a, need_value(a)));
    } else {
      throw UsageError("unknown flag '" + a + "'\n" + render_usage());
    }
  }
  return o;
}

int run_command(const Options& opts, std::ostream& out) {
  // Arm --failpoints before any command logic runs, so even
  // construction-time code paths (store load, model load) can trip. A
  // malformed spec is a usage error, same as any other bad flag value.
  if (!opts.failpoints.empty()) {
    try {
      failpoint::configure(opts.failpoints);
    } catch (const Error& e) {
      throw UsageError(e.what());
    }
  }
  if (opts.command == "gpus") return cmd_gpus(out);
  if (opts.command == "analyze") return cmd_analyze(opts, out);
  if (opts.command == "occupancy") return cmd_occupancy(opts, out);
  if (opts.command == "suggest") return cmd_suggest(opts, out);
  if (opts.command == "predict") return cmd_predict(opts, out);
  if (opts.command == "disasm") return cmd_disasm(opts, out);
  if (opts.command == "profile") return cmd_profile(opts, out);
  if (opts.command == "tune") return cmd_tune(opts, out);
  if (opts.command == "tune-fleet") return cmd_tune_fleet(opts, out);
  if (opts.command == "train") return cmd_train(opts, out);
  if (opts.command == "serve") return cmd_serve(opts, out);
  if (opts.command == "help" || opts.command == "--help") {
    out << render_usage();
    return 0;
  }
  throw UsageError("unknown command '" + opts.command + "'\n" +
                   render_usage());
}

int render_error(const std::exception& e, std::ostream& err) {
  const bool library = dynamic_cast<const Error*>(&e) != nullptr;
  err << "gpustatic: " << (library ? "" : "internal error: ") << e.what()
      << "\n";
  return dynamic_cast<const UsageError*>(&e) != nullptr ? kExitUsage
                                                        : kExitError;
}

int run_main(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  try {
    // GPUSTATIC_FAILPOINTS arms first so a supervisor can chaos-test a
    // daemon without touching its command line; --failpoints (applied
    // in run_command) replaces the whole configuration when given.
    failpoint::configure_from_env();
    return run_command(parse_args(args), out);
  } catch (const std::exception& e) {
    return render_error(e, err);
  }
}

}  // namespace gpustatic::cli
