#include "ptx/parser.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <optional>
#include <unordered_map>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace gpustatic::ptx {

namespace {

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;
  std::size_t line = 1;

  [[nodiscard]] bool eof() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return eof() ? '\0' : text[pos]; }
  char get() {
    const char c = text[pos++];
    if (c == '\n') ++line;
    return c;
  }
};

[[noreturn]] void fail(const Cursor& c, const std::string& msg) {
  throw ParseError(msg, c.line);
}

void skip_ws_and_comments(Cursor& c) {
  while (!c.eof()) {
    const char ch = c.peek();
    if (ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r') {
      c.get();
    } else if (ch == '/' && c.pos + 1 < c.text.size() &&
               c.text[c.pos + 1] == '/') {
      while (!c.eof() && c.peek() != '\n') c.get();
    } else {
      break;
    }
  }
}

bool is_ident_char(char ch) {
  return (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
         (ch >= '0' && ch <= '9') || ch == '_' || ch == '.' || ch == '$';
}

std::string read_ident(Cursor& c) {
  skip_ws_and_comments(c);
  std::string out;
  while (!c.eof() && is_ident_char(c.peek())) out.push_back(c.get());
  if (out.empty()) fail(c, "expected identifier");
  return out;
}

void expect(Cursor& c, char ch) {
  skip_ws_and_comments(c);
  if (c.eof() || c.peek() != ch)
    fail(c, std::string("expected '") + ch + "'");
  c.get();
}

bool accept(Cursor& c, char ch) {
  skip_ws_and_comments(c);
  if (!c.eof() && c.peek() == ch) {
    c.get();
    return true;
  }
  return false;
}

std::optional<Type> type_from_name(std::string_view s) {
  if (s == "pred") return Type::Pred;
  if (s == "s32") return Type::I32;
  if (s == "s64") return Type::I64;
  if (s == "f32") return Type::F32;
  if (s == "f64") return Type::F64;
  return std::nullopt;
}

std::optional<CmpOp> cmp_from_name(std::string_view s) {
  if (s == "eq") return CmpOp::EQ;
  if (s == "ne") return CmpOp::NE;
  if (s == "lt") return CmpOp::LT;
  if (s == "le") return CmpOp::LE;
  if (s == "gt") return CmpOp::GT;
  if (s == "ge") return CmpOp::GE;
  return std::nullopt;
}

std::optional<MemSpace> space_from_name(std::string_view s) {
  if (s == "global") return MemSpace::Global;
  if (s == "shared") return MemSpace::Shared;
  if (s == "param") return MemSpace::Param;
  if (s == "const") return MemSpace::Const;
  if (s == "local") return MemSpace::Local;
  return std::nullopt;
}

std::optional<SpecialReg> special_from_name(std::string_view s) {
  if (s == "%tid.x") return SpecialReg::TidX;
  if (s == "%ntid.x") return SpecialReg::NTidX;
  if (s == "%ctaid.x") return SpecialReg::CTAidX;
  if (s == "%nctaid.x") return SpecialReg::NCTAidX;
  if (s == "%laneid") return SpecialReg::LaneId;
  return std::nullopt;
}

Reg parse_reg(Cursor& c) {
  skip_ws_and_comments(c);
  if (c.peek() != '%') fail(c, "expected register");
  c.get();
  std::string prefix;
  while (!c.eof() && ((c.peek() >= 'a' && c.peek() <= 'z'))) {
    prefix.push_back(c.get());
  }
  Type t;
  if (prefix == "p") t = Type::Pred;
  else if (prefix == "r") t = Type::I32;
  else if (prefix == "rd") t = Type::I64;
  else if (prefix == "f") t = Type::F32;
  else if (prefix == "d") t = Type::F64;
  else fail(c, "unknown register class '%" + prefix + "'");
  std::string digits;
  while (!c.eof() && c.peek() >= '0' && c.peek() <= '9')
    digits.push_back(c.get());
  if (digits.empty()) fail(c, "expected register index");
  return Reg{t, static_cast<std::uint16_t>(std::stoul(digits))};
}

Operand parse_operand(Cursor& c,
                      const std::unordered_map<std::string, std::uint16_t>&
                          param_index) {
  skip_ws_and_comments(c);
  const char ch = c.peek();
  if (ch == '%') {
    // Could be a special register (%tid.x) or a plain register.
    // Specials all start with lowercase sequences that are not register
    // class prefixes followed by digits; probe the identifier.
    std::size_t save_pos = c.pos;
    std::size_t save_line = c.line;
    c.get();  // '%'
    std::string word = "%";
    while (!c.eof() && is_ident_char(c.peek())) word.push_back(c.get());
    if (const auto sp = special_from_name(word)) return Operand::special(*sp);
    c.pos = save_pos;
    c.line = save_line;
    return Operand(parse_reg(c));
  }
  if (ch == '0' && c.pos + 1 < c.text.size() && c.text[c.pos + 1] == 'D') {
    // Hex-encoded double: 0D<16 hex digits>.
    c.get();
    c.get();
    std::string hex;
    while (!c.eof() && isxdigit(static_cast<unsigned char>(c.peek())))
      hex.push_back(c.get());
    if (hex.size() != 16) fail(c, "expected 16 hex digits after 0D");
    const std::uint64_t bits = std::stoull(hex, nullptr, 16);
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return Operand::imm_f(d);
  }
  if (ch == '-' || (ch >= '0' && ch <= '9')) {
    std::string num;
    if (ch == '-') num.push_back(c.get());
    while (!c.eof() && c.peek() >= '0' && c.peek() <= '9')
      num.push_back(c.get());
    return Operand::imm_i(std::stoll(num));
  }
  // Parameter symbol.
  const std::string ident = read_ident(c);
  const auto it = param_index.find(ident);
  if (it == param_index.end()) fail(c, "unknown symbol '" + ident + "'");
  return Operand::sym(it->second);
}

/// Split a dotted mnemonic like "setp.lt.s32" into parts.
std::vector<std::string> dotted_parts(const std::string& mnemonic) {
  return str::split(mnemonic, '.');
}

/// Read the optional "// stride=N [uniform]" annotation after memory ops.
AccessHint parse_access_hint(Cursor& c) {
  AccessHint hint;
  // Peek: skip spaces but NOT newlines/comments (the hint is the comment).
  std::size_t p = c.pos;
  while (p < c.text.size() && (c.text[p] == ' ' || c.text[p] == '\t')) ++p;
  if (p + 1 >= c.text.size() || c.text[p] != '/' || c.text[p + 1] != '/')
    return hint;
  p += 2;
  std::size_t end = p;
  while (end < c.text.size() && c.text[end] != '\n') ++end;
  const std::string_view comment = c.text.substr(p, end - p);
  for (const std::string& tok : str::split_ws(comment)) {
    if (str::starts_with(tok, "stride="))
      hint.lane_stride_bytes = std::stoll(tok.substr(7));
    else if (str::starts_with(tok, "serial="))
      hint.serial_stride_bytes = std::stoll(tok.substr(7));
    else if (tok == "uniform")
      hint.uniform = true;
  }
  c.pos = end;
  return hint;
}

Instruction parse_instruction(Cursor& c, const std::string& first_token,
                              const std::unordered_map<std::string,
                                                       std::uint16_t>&
                                  param_index) {
  Instruction ins;
  std::string mnemonic = first_token;

  // Guard prefix: "@%p0" or "@!%p0" came through as first_token[0]=='@'.
  if (!mnemonic.empty() && mnemonic[0] == '@') {
    // The guard register was read as part of the token only up to
    // non-ident chars; re-parse from the raw token.
    bool negated = false;
    std::size_t i = 1;
    if (i < mnemonic.size() && mnemonic[i] == '!') {
      negated = true;
      ++i;
    }
    // token should be like "@%p3" — but read_ident stops at '%'; handle by
    // parsing the register directly from the cursor if token is bare "@".
    std::string regpart = mnemonic.substr(i);
    Reg pred;
    if (regpart.empty() || regpart[0] != '%') {
      pred = parse_reg(c);
    } else {
      Cursor sub{regpart, 0, c.line};
      pred = parse_reg(sub);
    }
    if (pred.type != Type::Pred) fail(c, "guard must be a predicate register");
    ins.guard = Guard{pred, negated};
    mnemonic = read_ident(c);
  }

  const std::vector<std::string> parts = dotted_parts(mnemonic);
  const std::string& head = parts[0];

  auto parts_type = [&](std::size_t idx) -> Type {
    if (idx >= parts.size()) fail(c, "missing type suffix in '" + mnemonic + "'");
    const auto t = type_from_name(parts[idx]);
    if (!t) fail(c, "bad type suffix '" + parts[idx] + "'");
    return *t;
  };

  if (head == "bra") {
    ins.op = Opcode::BRA;
    ins.target = read_ident(c);
    expect(c, ';');
    return ins;
  }
  if (head == "bar") {
    ins.op = Opcode::BAR;
    // optional barrier id operand
    skip_ws_and_comments(c);
    if (c.peek() != ';') (void)parse_operand(c, param_index);
    expect(c, ';');
    return ins;
  }
  if (head == "exit") {
    ins.op = Opcode::EXIT;
    expect(c, ';');
    return ins;
  }
  if (head == "nop") {
    ins.op = Opcode::NOP;
    expect(c, ';');
    return ins;
  }

  if (head == "setp") {
    ins.op = Opcode::SETP;
    if (parts.size() != 3) fail(c, "setp needs cmp and type suffixes");
    const auto cmp = cmp_from_name(parts[1]);
    if (!cmp) fail(c, "bad comparison '" + parts[1] + "'");
    ins.cmp = *cmp;
    ins.type = parts_type(2);
    ins.dst = parse_reg(c);
    expect(c, ',');
    ins.srcs.push_back(parse_operand(c, param_index));
    expect(c, ',');
    ins.srcs.push_back(parse_operand(c, param_index));
    expect(c, ';');
    return ins;
  }

  if (head == "cvt") {
    ins.op = Opcode::CVT;
    if (parts.size() != 3) fail(c, "cvt needs dst and src type suffixes");
    ins.type = parts_type(1);
    ins.cvt_src = parts_type(2);
    ins.dst = parse_reg(c);
    expect(c, ',');
    ins.srcs.push_back(parse_operand(c, param_index));
    expect(c, ';');
    return ins;
  }

  if (head == "ld" || head == "st" ||
      (head == "atom" && parts.size() >= 2 && parts[1] == "add")) {
    const bool is_atom = head == "atom";
    const std::size_t space_idx = is_atom ? 2 : 1;
    const auto space = space_from_name(parts[space_idx]);
    if (!space) fail(c, "bad memory space in '" + mnemonic + "'");
    ins.space = *space;
    ins.type = parts_type(space_idx + 1);
    ins.op = is_atom ? Opcode::ATOM_ADD : (head == "ld" ? Opcode::LD
                                                        : Opcode::ST);

    if (ins.op == Opcode::LD && ins.space == MemSpace::Param) {
      ins.dst = parse_reg(c);
      expect(c, ',');
      expect(c, '[');
      ins.srcs.push_back(parse_operand(c, param_index));
      expect(c, ']');
      expect(c, ';');
      ins.access.uniform = true;
      ins.access.lane_stride_bytes = 0;
      return ins;
    }

    auto parse_addr = [&]() {
      expect(c, '[');
      ins.srcs.push_back(Operand(parse_reg(c)));
      skip_ws_and_comments(c);
      if (accept(c, '+')) {
        skip_ws_and_comments(c);
        std::string num;
        if (c.peek() == '-') num.push_back(c.get());
        while (!c.eof() && c.peek() >= '0' && c.peek() <= '9')
          num.push_back(c.get());
        ins.offset = num.empty() ? 0 : std::stoll(num);
      }
      expect(c, ']');
    };

    if (ins.op == Opcode::LD) {
      ins.dst = parse_reg(c);
      expect(c, ',');
      parse_addr();
    } else {
      parse_addr();
      expect(c, ',');
      ins.srcs.push_back(parse_operand(c, param_index));
    }
    expect(c, ';');
    ins.access = parse_access_hint(c);
    return ins;
  }

  // Generic register-computing ops.
  static const std::unordered_map<std::string, Opcode> kGeneric = {
      {"mov", Opcode::MOV},     {"selp", Opcode::SELP},
      {"and", Opcode::AND},     {"or", Opcode::OR},
      {"xor", Opcode::XOR},     {"not", Opcode::NOT},
      {"shl", Opcode::SHL},     {"shr", Opcode::SHR},
      {"add", Opcode::IADD},    {"sub", Opcode::ISUB},
      {"mul", Opcode::IMUL},    {"mad", Opcode::IMAD},
      {"min", Opcode::IMIN},    {"max", Opcode::IMAX},
      {"fadd", Opcode::FADD},   {"fsub", Opcode::FSUB},
      {"fmul", Opcode::FMUL},   {"fma", Opcode::FFMA},
      {"fmin", Opcode::FMIN},   {"fmax", Opcode::FMAX},
      {"rcp", Opcode::RCP},     {"rsqrt", Opcode::RSQRT},
      {"sqrt", Opcode::SQRT},   {"ex2", Opcode::EX2},
      {"lg2", Opcode::LG2},     {"sin", Opcode::SIN},
      {"cos", Opcode::COS},
  };

  Opcode op;
  std::size_t type_idx = 1;
  if (head == "mul" && parts.size() == 3 && parts[1] == "hi") {
    op = Opcode::IMULHI;
    type_idx = 2;
  } else {
    const auto it = kGeneric.find(head);
    if (it == kGeneric.end()) fail(c, "unknown opcode '" + mnemonic + "'");
    op = it->second;
  }
  ins.op = op;
  ins.type = parts_type(type_idx);

  ins.dst = parse_reg(c);
  while (accept(c, ',')) ins.srcs.push_back(parse_operand(c, param_index));
  expect(c, ';');
  return ins;
}

}  // namespace

Kernel parse_kernel(std::string_view text) {
  Cursor c{text};
  Kernel k;

  // Header: .kernel name ( params )
  std::string kw = read_ident(c);
  if (kw != ".kernel") fail(c, "expected .kernel");
  k.name = read_ident(c);
  expect(c, '(');
  std::unordered_map<std::string, std::uint16_t> param_index;
  skip_ws_and_comments(c);
  if (c.peek() != ')') {
    do {
      std::string p = read_ident(c);  // ".param"
      if (p != ".param") fail(c, "expected .param");
      std::string tyname = read_ident(c);  // ".ptr.f32" or ".s32"
      if (tyname.empty() || tyname[0] != '.') fail(c, "expected param type");
      tyname.erase(tyname.begin());
      Param param;
      if (str::starts_with(tyname, "ptr.")) {
        param.is_pointer = true;
        tyname = tyname.substr(4);
      }
      const auto t = type_from_name(tyname);
      if (!t) fail(c, "bad param type '" + tyname + "'");
      param.type = *t;
      param.name = read_ident(c);
      param_index.emplace(param.name,
                          static_cast<std::uint16_t>(k.params.size()));
      k.params.push_back(std::move(param));
    } while (accept(c, ','));
  }
  expect(c, ')');

  kw = read_ident(c);
  if (kw != ".smem") fail(c, "expected .smem");
  skip_ws_and_comments(c);
  std::string num;
  while (!c.eof() && c.peek() >= '0' && c.peek() <= '9')
    num.push_back(c.get());
  if (num.empty()) fail(c, "expected shared-memory byte count");
  k.smem_static_bytes = static_cast<std::uint32_t>(std::stoul(num));

  expect(c, '{');

  BasicBlock* current = nullptr;
  for (;;) {
    skip_ws_and_comments(c);
    if (c.eof()) fail(c, "unexpected end of input; missing '}'");
    if (c.peek() == '}') {
      c.get();
      break;
    }
    if (c.peek() == '@') {
      // Guarded instruction: consume '@' (+ optional '!') then parse.
      std::string tok;
      tok.push_back(c.get());
      if (!c.eof() && c.peek() == '!') tok.push_back(c.get());
      if (current == nullptr) fail(c, "instruction before first label");
      current->body.push_back(parse_instruction(c, tok, param_index));
      continue;
    }
    const std::string ident = read_ident(c);
    skip_ws_and_comments(c);
    if (!c.eof() && c.peek() == ':') {
      c.get();
      k.blocks.push_back(BasicBlock{ident, {}});
      current = &k.blocks.back();
      continue;
    }
    if (current == nullptr) fail(c, "instruction before first label");
    current->body.push_back(parse_instruction(c, ident, param_index));
  }

  k.finalize();
  return k;
}

}  // namespace gpustatic::ptx
