#pragma once

#include <cstdint>
#include <vector>

#include "ptx/kernel.hpp"

namespace gpustatic::ptx {

/// Control-flow graph over a finalized kernel's basic blocks, plus the
/// standard analyses the rest of the system needs:
///
///  * dominators / post-dominators (Cooper–Harvey–Kennedy iteration),
///  * immediate post-dominators — the reconvergence points used by the
///    SIMT-stack divergence model in the simulator,
///  * natural loops via back-edge detection — used by the static analyzer
///    to weight instruction mixes by nesting depth.
class Cfg {
 public:
  explicit Cfg(const Kernel& kernel);

  [[nodiscard]] std::size_t num_blocks() const { return succs_.size(); }
  [[nodiscard]] const std::vector<std::int32_t>& successors(
      std::size_t block) const {
    return succs_[block];
  }
  [[nodiscard]] const std::vector<std::int32_t>& predecessors(
      std::size_t block) const {
    return preds_[block];
  }

  /// Reverse post-order over forward edges starting at the entry block.
  [[nodiscard]] const std::vector<std::int32_t>& rpo() const { return rpo_; }

  /// Immediate dominator of each block; entry's idom is itself; unreachable
  /// blocks report -1.
  [[nodiscard]] std::int32_t idom(std::size_t block) const {
    return idom_[block];
  }

  /// Immediate post-dominator of each block with respect to a virtual exit
  /// node; blocks that reach no EXIT report -1. The virtual exit itself is
  /// encoded as num_blocks().
  [[nodiscard]] std::int32_t ipdom(std::size_t block) const {
    return ipdom_[block];
  }

  [[nodiscard]] bool dominates(std::int32_t a, std::int32_t b) const;
  [[nodiscard]] bool post_dominates(std::int32_t a, std::int32_t b) const;

  /// A natural loop discovered from a back edge latch->header.
  struct Loop {
    std::int32_t header = -1;
    std::int32_t latch = -1;
    std::vector<std::int32_t> blocks;  ///< Includes header and latch.
    std::int32_t depth = 1;            ///< 1 = outermost.
  };

  [[nodiscard]] const std::vector<Loop>& loops() const { return loops_; }

  /// Loop nesting depth of each block (0 = not in any loop).
  [[nodiscard]] std::int32_t loop_depth(std::size_t block) const {
    return loop_depth_[block];
  }

  /// True if the edge from->to is a back edge (to dominates from).
  [[nodiscard]] bool is_back_edge(std::int32_t from, std::int32_t to) const;

 private:
  void build_edges(const Kernel& kernel);
  void compute_rpo();
  void compute_dominators();
  void compute_post_dominators();
  void find_loops();

  std::vector<std::vector<std::int32_t>> succs_;
  std::vector<std::vector<std::int32_t>> preds_;
  std::vector<std::int32_t> rpo_;
  std::vector<std::int32_t> idom_;
  std::vector<std::int32_t> ipdom_;
  std::vector<Loop> loops_;
  std::vector<std::int32_t> loop_depth_;
};

}  // namespace gpustatic::ptx
