#pragma once

#include <string>

#include "ptx/kernel.hpp"

namespace gpustatic::ptx {

/// Render one instruction in the textual assembly syntax (no trailing
/// newline). Exposed separately for diagnostics and tests.
[[nodiscard]] std::string to_string(const Instruction& ins);

/// Render a whole kernel as textual assembly. The output parses back via
/// parse_kernel() to an equivalent kernel (round-trip tested).
[[nodiscard]] std::string to_string(const Kernel& k);

}  // namespace gpustatic::ptx
