#include "ptx/instruction.hpp"

namespace gpustatic::ptx {

using arch::OpCategory;

OpCategory Instruction::category() const {
  switch (op) {
    case Opcode::MOV:
      return OpCategory::MoveIns;
    // Logic and select instructions execute in the register/logic datapath;
    // we account them under the paper's "Regs" row (see DESIGN.md §5).
    case Opcode::SELP:
    case Opcode::AND:
    case Opcode::OR:
    case Opcode::XOR:
    case Opcode::NOT:
      return OpCategory::Regs;
    case Opcode::SHL:
    case Opcode::SHR:
    case Opcode::IMULHI:
      return OpCategory::ShiftShuffle;
    case Opcode::IADD:
    case Opcode::ISUB:
    case Opcode::IMUL:
    case Opcode::IMAD:
      return OpCategory::IntAdd32;
    case Opcode::IMIN:
    case Opcode::IMAX:
    case Opcode::FMIN:
    case Opcode::FMAX:
      return OpCategory::CompMinMax;
    case Opcode::FADD:
    case Opcode::FSUB:
    case Opcode::FMUL:
    case Opcode::FFMA:
      return type == Type::F64 ? OpCategory::FPIns64 : OpCategory::FPIns32;
    case Opcode::RCP:
    case Opcode::RSQRT:
    case Opcode::SQRT:
    case Opcode::EX2:
    case Opcode::LG2:
    case Opcode::SIN:
    case Opcode::COS:
      return OpCategory::LogSinCos;
    case Opcode::CVT:
      return (type_reg_slots(type) == 2 || type_reg_slots(cvt_src) == 2)
                 ? OpCategory::Conv64
                 : OpCategory::Conv32;
    case Opcode::SETP:
      return OpCategory::PredIns;
    case Opcode::LD:
      // Parameter/constant-bank reads compile to constant-operand moves
      // in SASS (MOV Rx, c[0x0][...]), not load/store-unit traffic.
      if (space == MemSpace::Param || space == MemSpace::Const)
        return OpCategory::MoveIns;
      return OpCategory::LdStIns;
    case Opcode::ST:
    case Opcode::ATOM_ADD:
      return OpCategory::LdStIns;
    case Opcode::BRA:
    case Opcode::BAR:
    case Opcode::EXIT:
    case Opcode::NOP:
      return OpCategory::CtrlIns;
  }
  return OpCategory::CtrlIns;
}

arch::OpClass Instruction::op_class() const {
  return arch::op_class(category());
}

unsigned Instruction::reg_reads() const {
  unsigned n = guard.has_value() ? 1u : 0u;
  for (const Operand& s : srcs)
    if (s.is_reg()) ++n;
  return n;
}

unsigned Instruction::reg_writes() const { return dst.has_value() ? 1u : 0u; }

Instruction make_mov(Reg dst, Operand src) {
  Instruction i;
  i.op = Opcode::MOV;
  i.type = dst.type;
  i.dst = dst;
  i.srcs = {src};
  return i;
}

Instruction make_binary(Opcode op, Reg dst, Operand a, Operand b) {
  Instruction i;
  i.op = op;
  i.type = dst.type;
  i.dst = dst;
  i.srcs = {a, b};
  return i;
}

Instruction make_ternary(Opcode op, Reg dst, Operand a, Operand b,
                         Operand c) {
  Instruction i;
  i.op = op;
  i.type = dst.type;
  i.dst = dst;
  i.srcs = {a, b, c};
  return i;
}

Instruction make_unary(Opcode op, Reg dst, Operand a) {
  Instruction i;
  i.op = op;
  i.type = dst.type;
  i.dst = dst;
  i.srcs = {a};
  return i;
}

Instruction make_setp(CmpOp cmp, Reg dst, Operand a, Operand b,
                      Type operand_type) {
  Instruction i;
  i.op = Opcode::SETP;
  i.type = operand_type;
  i.cmp = cmp;
  i.dst = dst;
  i.srcs = {a, b};
  return i;
}

Instruction make_cvt(Reg dst, Reg src) {
  Instruction i;
  i.op = Opcode::CVT;
  i.type = dst.type;
  i.cvt_src = src.type;
  i.dst = dst;
  i.srcs = {Operand(src)};
  return i;
}

Instruction make_ld(MemSpace space, Reg dst, Reg addr, std::int64_t offset,
                    AccessHint hint) {
  Instruction i;
  i.op = Opcode::LD;
  i.type = dst.type;
  i.space = space;
  i.dst = dst;
  i.srcs = {Operand(addr)};
  i.offset = offset;
  i.access = hint;
  return i;
}

Instruction make_st(MemSpace space, Reg addr, Operand value,
                    std::int64_t offset, AccessHint hint) {
  Instruction i;
  i.op = Opcode::ST;
  i.type = value.is_reg() ? value.reg().type : Type::F32;
  i.space = space;
  i.srcs = {Operand(addr), value};
  i.offset = offset;
  i.access = hint;
  return i;
}

Instruction make_ld_param(Reg dst, std::uint16_t param_index) {
  Instruction i;
  i.op = Opcode::LD;
  i.type = dst.type;
  i.space = MemSpace::Param;
  i.dst = dst;
  i.srcs = {Operand::sym(param_index)};
  i.access.uniform = true;
  i.access.lane_stride_bytes = 0;
  return i;
}

Instruction make_bra(std::string target) {
  Instruction i;
  i.op = Opcode::BRA;
  i.target = std::move(target);
  return i;
}

Instruction make_bra_if(Reg pred, bool negated, std::string target) {
  Instruction i;
  i.op = Opcode::BRA;
  i.guard = Guard{pred, negated};
  i.target = std::move(target);
  return i;
}

Instruction make_bar() {
  Instruction i;
  i.op = Opcode::BAR;
  return i;
}

Instruction make_exit() {
  Instruction i;
  i.op = Opcode::EXIT;
  return i;
}

}  // namespace gpustatic::ptx
