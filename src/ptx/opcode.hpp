#pragma once

#include <cstdint>
#include <string_view>

#include "arch/throughput.hpp"

namespace gpustatic::ptx {

/// Value/register types. B-prefixed widths do not appear: every register is
/// typed, mirroring PTX virtual registers (%p, %r, %rd, %f, %d).
enum class Type : std::uint8_t { Pred, I32, I64, F32, F64 };

[[nodiscard]] std::string_view type_name(Type t);     // "pred","s32",...
[[nodiscard]] std::string_view type_reg_prefix(Type t);  // "%p","%r",...
/// Number of 32-bit register slots a value of this type occupies; predicate
/// registers live in a separate file and report 0.
[[nodiscard]] unsigned type_reg_slots(Type t);
/// Size of the in-memory representation in bytes (predicates are not
/// addressable and report 0).
[[nodiscard]] unsigned type_size_bytes(Type t);

/// Machine operations of the virtual ISA. Width-generic operations (e.g.
/// IADD works on I32 and I64) take their width from Instruction::type.
enum class Opcode : std::uint8_t {
  // Data movement / logic (logic ops are category Regs; see category()).
  MOV, SELP, AND, OR, XOR, NOT,
  // Shifts.
  SHL, SHR,
  // Integer arithmetic.
  IADD, ISUB, IMUL, IMULHI, IMAD, IMIN, IMAX,
  // Floating point (F32 or F64 via Instruction::type).
  FADD, FSUB, FMUL, FFMA, FMIN, FMAX,
  // Special function unit (F32).
  RCP, RSQRT, SQRT, EX2, LG2, SIN, COS,
  // Conversion; source type in Instruction::cvt_src, dest in type.
  CVT,
  // Predicate set; comparison in Instruction::cmp, operand type in type.
  SETP,
  // Memory; space in Instruction::space, value type in type.
  LD, ST, ATOM_ADD,
  // Control.
  BRA, BAR, EXIT,
  NOP,
};

[[nodiscard]] std::string_view opcode_name(Opcode op);

/// Comparison operators for SETP.
enum class CmpOp : std::uint8_t { EQ, NE, LT, LE, GT, GE };
[[nodiscard]] std::string_view cmp_name(CmpOp c);

/// Memory spaces for LD/ST/ATOM_ADD.
enum class MemSpace : std::uint8_t { Global, Shared, Param, Const, Local };
[[nodiscard]] std::string_view space_name(MemSpace s);

/// Special (read-only) hardware registers.
enum class SpecialReg : std::uint8_t {
  TidX,     ///< %tid.x — thread index within block.
  NTidX,    ///< %ntid.x — block dimension.
  CTAidX,   ///< %ctaid.x — block index within grid.
  NCTAidX,  ///< %nctaid.x — grid dimension.
  LaneId,   ///< %laneid — lane within warp.
};
[[nodiscard]] std::string_view special_name(SpecialReg s);

/// True for opcodes that end or redirect control flow.
[[nodiscard]] bool is_terminator(Opcode op);
/// True for LD/ST/ATOM_ADD.
[[nodiscard]] bool is_memory(Opcode op);

}  // namespace gpustatic::ptx
