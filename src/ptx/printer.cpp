#include "ptx/printer.hpp"

#include <cinttypes>
#include <cstdio>

namespace gpustatic::ptx {

namespace {

std::string reg_str(const Reg& r) {
  return std::string(type_reg_prefix(r.type)) + std::to_string(r.idx);
}

std::string operand_str(const Operand& o, const Kernel* k) {
  char buf[64];
  switch (o.kind()) {
    case Operand::Kind::Reg:
      return reg_str(o.reg());
    case Operand::Kind::ImmI:
      std::snprintf(buf, sizeof(buf), "%" PRId64,
                    static_cast<std::int64_t>(o.imm_i()));
      return buf;
    case Operand::Kind::ImmF:
      std::snprintf(buf, sizeof(buf), "0D%016" PRIX64,
                    [&] {
                      const double d = o.imm_f();
                      std::uint64_t bits;
                      __builtin_memcpy(&bits, &d, sizeof(bits));
                      return bits;
                    }());
      return buf;
    case Operand::Kind::Sym:
      if (k != nullptr && o.sym() < k->params.size())
        return k->params[o.sym()].name;
      return "$param" + std::to_string(o.sym());
    case Operand::Kind::Special:
      return std::string(special_name(o.special()));
    case Operand::Kind::None:
      return "<none>";
  }
  return "?";
}

std::string access_suffix(const Instruction& ins) {
  if (ins.space == MemSpace::Param) return "";
  std::string out =
      "  // stride=" + std::to_string(ins.access.lane_stride_bytes);
  if (ins.access.serial_stride_bytes != 0)
    out += " serial=" + std::to_string(ins.access.serial_stride_bytes);
  if (ins.access.uniform) out += " uniform";
  return out;
}

std::string instruction_str(const Instruction& ins, const Kernel* k) {
  std::string out;
  if (ins.guard) {
    out += "@";
    if (ins.guard->negated) out += "!";
    out += reg_str(ins.guard->pred) + " ";
  }

  const std::string ty(type_name(ins.type));
  switch (ins.op) {
    case Opcode::SETP:
      out += "setp." + std::string(cmp_name(ins.cmp)) + "." + ty + " " +
             reg_str(*ins.dst) + ", " + operand_str(ins.srcs[0], k) + ", " +
             operand_str(ins.srcs[1], k) + ";";
      return out;
    case Opcode::CVT:
      out += "cvt." + ty + "." + std::string(type_name(ins.cvt_src)) + " " +
             reg_str(*ins.dst) + ", " + operand_str(ins.srcs[0], k) + ";";
      return out;
    case Opcode::LD:
      if (ins.space == MemSpace::Param) {
        out += "ld.param." + ty + " " + reg_str(*ins.dst) + ", [" +
               operand_str(ins.srcs[0], k) + "];";
      } else {
        out += "ld." + std::string(space_name(ins.space)) + "." + ty + " " +
               reg_str(*ins.dst) + ", [" + operand_str(ins.srcs[0], k) +
               "+" + std::to_string(ins.offset) + "];" + access_suffix(ins);
      }
      return out;
    case Opcode::ST:
      out += "st." + std::string(space_name(ins.space)) + "." + ty + " [" +
             operand_str(ins.srcs[0], k) + "+" + std::to_string(ins.offset) +
             "], " + operand_str(ins.srcs[1], k) + ";" + access_suffix(ins);
      return out;
    case Opcode::ATOM_ADD:
      out += "atom.add." + std::string(space_name(ins.space)) + "." + ty +
             " [" + operand_str(ins.srcs[0], k) + "+" +
             std::to_string(ins.offset) + "], " +
             operand_str(ins.srcs[1], k) + ";" + access_suffix(ins);
      return out;
    case Opcode::BRA:
      out += "bra " + ins.target + ";";
      return out;
    case Opcode::BAR:
      out += "bar.sync 0;";
      return out;
    case Opcode::EXIT:
      out += "exit;";
      return out;
    case Opcode::NOP:
      out += "nop;";
      return out;
    default:
      break;
  }

  // Generic register-computing form: op.type dst, src...
  out += std::string(opcode_name(ins.op)) + "." + ty;
  if (ins.dst) out += " " + reg_str(*ins.dst);
  for (std::size_t i = 0; i < ins.srcs.size(); ++i) {
    out += (i == 0 && !ins.dst) ? " " : ", ";
    out += operand_str(ins.srcs[i], k);
  }
  out += ";";
  return out;
}

}  // namespace

std::string to_string(const Instruction& ins) {
  return instruction_str(ins, nullptr);
}

std::string to_string(const Kernel& k) {
  std::string out = ".kernel " + k.name + " (";
  for (std::size_t i = 0; i < k.params.size(); ++i) {
    if (i != 0) out += ", ";
    out += ".param .";
    if (k.params[i].is_pointer) out += "ptr.";
    out += std::string(type_name(k.params[i].type)) + " " + k.params[i].name;
  }
  out += ")\n.smem " + std::to_string(k.smem_static_bytes) + "\n{\n";
  for (const BasicBlock& b : k.blocks) {
    out += b.label + ":\n";
    for (const Instruction& ins : b.body)
      out += "  " + instruction_str(ins, &k) + "\n";
  }
  out += "}\n";
  return out;
}

}  // namespace gpustatic::ptx
