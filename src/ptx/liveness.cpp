#include "ptx/liveness.hpp"

#include <algorithm>
#include <vector>

#include "ptx/cfg.hpp"

namespace gpustatic::ptx {

namespace {

/// Dense id for every (type, idx) register so we can use bit vectors.
class RegIds {
 public:
  explicit RegIds(const Kernel& k) {
    base_[0] = 0;
    counts_[0] = k.max_reg_index(Type::Pred);
    base_[1] = base_[0] + counts_[0];
    counts_[1] = k.max_reg_index(Type::I32);
    base_[2] = base_[1] + counts_[1];
    counts_[2] = k.max_reg_index(Type::I64);
    base_[3] = base_[2] + counts_[2];
    counts_[3] = k.max_reg_index(Type::F32);
    base_[4] = base_[3] + counts_[3];
    counts_[4] = k.max_reg_index(Type::F64);
    total_ = base_[4] + counts_[4];
  }

  [[nodiscard]] std::size_t id(const Reg& r) const {
    return base_[slot(r.type)] + r.idx;
  }
  [[nodiscard]] std::size_t total() const { return total_; }

  /// 32-bit slot weight of a register (0 for predicates).
  static unsigned weight(Type t) { return type_reg_slots(t); }
  [[nodiscard]] Type type_of(std::size_t id) const {
    for (int s = 4; s >= 0; --s)
      if (id >= base_[s]) return type_from_slot(s);
    return Type::Pred;
  }

 private:
  static std::size_t slot(Type t) {
    switch (t) {
      case Type::Pred: return 0;
      case Type::I32: return 1;
      case Type::I64: return 2;
      case Type::F32: return 3;
      case Type::F64: return 4;
    }
    return 0;
  }
  static Type type_from_slot(int s) {
    switch (s) {
      case 0: return Type::Pred;
      case 1: return Type::I32;
      case 2: return Type::I64;
      case 3: return Type::F32;
      default: return Type::F64;
    }
  }

  std::size_t base_[5] = {};
  std::size_t counts_[5] = {};
  std::size_t total_ = 0;
};

using BitSet = std::vector<bool>;

void set_union_into(BitSet& dst, const BitSet& src) {
  for (std::size_t i = 0; i < dst.size(); ++i)
    if (src[i]) dst[i] = true;
}

}  // namespace

RegisterDemand analyze_register_demand(const Kernel& kernel) {
  const Cfg cfg(kernel);
  const RegIds ids(kernel);
  const std::size_t nregs = ids.total();
  const std::size_t nblocks = kernel.blocks.size();

  // use[b] = read before written in b; def[b] = written in b.
  std::vector<BitSet> use(nblocks, BitSet(nregs, false));
  std::vector<BitSet> def(nblocks, BitSet(nregs, false));
  for (std::size_t b = 0; b < nblocks; ++b) {
    for (const Instruction& ins : kernel.blocks[b].body) {
      auto mark_read = [&](const Reg& r) {
        const std::size_t i = ids.id(r);
        if (!def[b][i]) use[b][i] = true;
      };
      if (ins.guard) mark_read(ins.guard->pred);
      for (const Operand& s : ins.srcs)
        if (s.is_reg()) mark_read(s.reg());
      // A guarded write only partially defines the register: it still
      // reads the old value on inactive lanes, so treat guarded defs as
      // uses too (conservative, matches predicated SASS semantics).
      if (ins.dst) {
        if (ins.guard) mark_read(*ins.dst);
        def[b][ids.id(*ins.dst)] = true;
      }
    }
  }

  // Backward data-flow: live_out[b] = union of live_in over successors.
  std::vector<BitSet> live_in(nblocks, BitSet(nregs, false));
  std::vector<BitSet> live_out(nblocks, BitSet(nregs, false));
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t bi = nblocks; bi-- > 0;) {
      BitSet out(nregs, false);
      for (const std::int32_t s : cfg.successors(bi))
        set_union_into(out, live_in[s]);
      BitSet in = use[bi];
      for (std::size_t r = 0; r < nregs; ++r)
        if (out[r] && !def[bi][r]) in[r] = true;
      if (in != live_in[bi] || out != live_out[bi]) {
        live_in[bi] = std::move(in);
        live_out[bi] = std::move(out);
        changed = true;
      }
    }
  }

  // Per-block backward walk tracking peak live slot count.
  std::uint32_t peak_slots = 0;
  std::uint32_t peak_preds = 0;
  for (std::size_t b = 0; b < nblocks; ++b) {
    BitSet live = live_out[b];
    auto measure = [&] {
      std::uint32_t slots = 0, preds = 0;
      for (std::size_t r = 0; r < nregs; ++r) {
        if (!live[r]) continue;
        const Type t = ids.type_of(r);
        if (t == Type::Pred)
          ++preds;
        else
          slots += RegIds::weight(t);
      }
      peak_slots = std::max(peak_slots, slots);
      peak_preds = std::max(peak_preds, preds);
    };
    measure();
    const auto& body = kernel.blocks[b].body;
    for (std::size_t k = body.size(); k-- > 0;) {
      const Instruction& ins = body[k];
      if (ins.dst && !ins.guard) live[ids.id(*ins.dst)] = false;
      if (ins.guard) live[ids.id(ins.guard->pred)] = true;
      for (const Operand& s : ins.srcs)
        if (s.is_reg()) live[ids.id(s.reg())] = true;
      if (ins.dst && ins.guard) live[ids.id(*ins.dst)] = true;
      measure();
    }
  }

  RegisterDemand d;
  d.regs_per_thread = peak_slots + kAbiReserved;
  d.preds_per_thread = peak_preds;
  return d;
}

}  // namespace gpustatic::ptx
