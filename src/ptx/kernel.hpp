#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ptx/instruction.hpp"

namespace gpustatic::ptx {

/// Kernel formal parameter. Pointer parameters address global memory.
struct Param {
  std::string name;
  Type type = Type::I64;
  bool is_pointer = false;
};

/// A straight-line run of instructions ending (implicitly or explicitly)
/// in a terminator. Control enters only at the top.
struct BasicBlock {
  std::string label;
  std::vector<Instruction> body;

  /// True when the block's last instruction is an unconditional terminator
  /// (so there is no fall-through edge).
  [[nodiscard]] bool ends_with_unconditional_terminator() const;
};

/// A compiled kernel: the unit the static analyzer, simulator, and
/// autotuner all operate on. Block 0 is the unique entry.
class Kernel {
 public:
  std::string name;
  std::vector<Param> params;
  std::vector<BasicBlock> blocks;
  std::uint32_t smem_static_bytes = 0;  ///< __shared__ usage per block.

  /// Resolve BRA label targets into block indices and verify structural
  /// invariants (unique labels, known targets, guard regs are predicates,
  /// terminator placement). Throws Error on violation. Must be called
  /// after construction/mutation and before analysis or execution.
  void finalize();

  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  /// Index of the block with the given label, or -1.
  [[nodiscard]] std::int32_t block_index(std::string_view label) const;

  /// Total static instruction count over all blocks.
  [[nodiscard]] std::size_t instruction_count() const;

  /// Highest virtual register index used per type (for register-file
  /// sizing in the simulator). Returns 0 when the type is unused.
  [[nodiscard]] std::uint16_t max_reg_index(Type t) const;

  /// Visit every instruction (const); used by analyses.
  template <typename Fn>
  void for_each_instruction(Fn&& fn) const {
    for (const BasicBlock& b : blocks)
      for (const Instruction& i : b.body) fn(i);
  }

 private:
  void validate() const;
  bool finalized_ = false;
};

}  // namespace gpustatic::ptx
