#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ptx/opcode.hpp"

namespace gpustatic::ptx {

/// A typed virtual register, e.g. `%f3`. Virtual indices are dense per
/// class; physical register demand is derived later by liveness analysis
/// (see liveness.hpp), mirroring how ptxas maps PTX virtual registers.
struct Reg {
  Type type = Type::I32;
  std::uint16_t idx = 0;

  friend bool operator==(const Reg&, const Reg&) = default;
};

/// Instruction operand: a register, an immediate, a kernel-parameter
/// symbol, or a special hardware register.
class Operand {
 public:
  enum class Kind : std::uint8_t { None, Reg, ImmI, ImmF, Sym, Special };

  Operand() = default;
  Operand(Reg r) : kind_(Kind::Reg), reg_(r) {}  // NOLINT(google-explicit-constructor)

  static Operand imm_i(std::int64_t v) {
    Operand o;
    o.kind_ = Kind::ImmI;
    o.imm_i_ = v;
    return o;
  }
  static Operand imm_f(double v) {
    Operand o;
    o.kind_ = Kind::ImmF;
    o.imm_f_ = v;
    return o;
  }
  static Operand sym(std::uint16_t param_index) {
    Operand o;
    o.kind_ = Kind::Sym;
    o.sym_ = param_index;
    return o;
  }
  static Operand special(SpecialReg s) {
    Operand o;
    o.kind_ = Kind::Special;
    o.special_ = s;
    return o;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_reg() const noexcept { return kind_ == Kind::Reg; }
  [[nodiscard]] const Reg& reg() const { return reg_; }
  [[nodiscard]] std::int64_t imm_i() const { return imm_i_; }
  [[nodiscard]] double imm_f() const { return imm_f_; }
  [[nodiscard]] std::uint16_t sym() const { return sym_; }
  [[nodiscard]] SpecialReg special() const { return special_; }

 private:
  Kind kind_ = Kind::None;
  Reg reg_{};
  std::int64_t imm_i_ = 0;
  double imm_f_ = 0.0;
  std::uint16_t sym_ = 0;
  SpecialReg special_ = SpecialReg::TidX;
};

/// Predicate guard: `@%p1` or `@!%p1` prefix on an instruction.
struct Guard {
  Reg pred;             ///< Must have type Pred.
  bool negated = false; ///< True for `@!%p`.
};

/// Static memory-coalescing annotation attached by the code generator to
/// LD/ST/ATOM_ADD. The warp simulator derives the true transaction count
/// from the actual lane addresses; the analytic model uses this annotation.
/// Cross-checking the two is part of the test suite.
struct AccessHint {
  /// Byte distance between consecutive lanes' addresses (0 = all lanes hit
  /// the same address, 4 = perfectly coalesced f32, 4*N = strided).
  std::int64_t lane_stride_bytes = 4;
  /// Byte distance the address advances per iteration of the innermost
  /// enclosing serial loop (0 = loop-invariant or not inside a loop). The
  /// memory model uses this to credit cache-line reuse across iterations.
  std::int64_t serial_stride_bytes = 0;
  /// True when the address is uniform across the warp (broadcast).
  bool uniform = false;
};

/// One machine instruction of the virtual ISA.
///
/// Layout notes: `type` is the operating width for width-generic opcodes
/// (IADD on I32 vs I64, FADD on F32 vs F64, LD/ST element type). For CVT,
/// `type` is the destination type and `cvt_src` the source type. For SETP,
/// `type` is the comparison operand type and `cmp` the comparison operator.
struct Instruction {
  Opcode op = Opcode::NOP;
  Type type = Type::I32;
  std::optional<Guard> guard;

  std::optional<Reg> dst;
  std::vector<Operand> srcs;

  // SETP only.
  CmpOp cmp = CmpOp::EQ;
  // CVT only.
  Type cvt_src = Type::I32;
  // LD/ST/ATOM_ADD only.
  MemSpace space = MemSpace::Global;
  std::int64_t offset = 0;   ///< Constant byte offset added to the address.
  AccessHint access;
  // BRA only.
  std::string target;        ///< Label; resolved to a block index by Kernel.
  std::int32_t target_block = -1;

  /// Table II category this instruction is accounted under.
  [[nodiscard]] arch::OpCategory category() const;
  /// Coarse class (FLOPS/MEM/CTRL/REG) of category().
  [[nodiscard]] arch::OpClass op_class() const;

  /// Number of register operands read, including guard and address
  /// registers; used for the register-traffic metric O_reg.
  [[nodiscard]] unsigned reg_reads() const;
  /// Number of register operands written (0 or 1; predicates count).
  [[nodiscard]] unsigned reg_writes() const;
};

/// Convenience builders keep code-generator call sites compact.
[[nodiscard]] Instruction make_mov(Reg dst, Operand src);
[[nodiscard]] Instruction make_binary(Opcode op, Reg dst, Operand a,
                                      Operand b);
[[nodiscard]] Instruction make_ternary(Opcode op, Reg dst, Operand a,
                                       Operand b, Operand c);
[[nodiscard]] Instruction make_unary(Opcode op, Reg dst, Operand a);
[[nodiscard]] Instruction make_setp(CmpOp cmp, Reg dst, Operand a, Operand b,
                                    Type operand_type);
[[nodiscard]] Instruction make_cvt(Reg dst, Reg src);
[[nodiscard]] Instruction make_ld(MemSpace space, Reg dst, Reg addr,
                                  std::int64_t offset, AccessHint hint);
[[nodiscard]] Instruction make_st(MemSpace space, Reg addr, Operand value,
                                  std::int64_t offset, AccessHint hint);
[[nodiscard]] Instruction make_ld_param(Reg dst, std::uint16_t param_index);
[[nodiscard]] Instruction make_bra(std::string target);
[[nodiscard]] Instruction make_bra_if(Reg pred, bool negated,
                                      std::string target);
[[nodiscard]] Instruction make_bar();
[[nodiscard]] Instruction make_exit();

}  // namespace gpustatic::ptx
