#include "ptx/cfg.hpp"

#include <algorithm>
#include <functional>

#include "common/error.hpp"

namespace gpustatic::ptx {

Cfg::Cfg(const Kernel& kernel) {
  if (!kernel.finalized())
    throw Error("Cfg requires a finalized kernel");
  build_edges(kernel);
  compute_rpo();
  compute_dominators();
  compute_post_dominators();
  find_loops();
}

void Cfg::build_edges(const Kernel& kernel) {
  const std::size_t n = kernel.blocks.size();
  succs_.assign(n, {});
  preds_.assign(n, {});

  auto add_edge = [&](std::size_t from, std::int32_t to) {
    auto& s = succs_[from];
    if (std::find(s.begin(), s.end(), to) == s.end()) {
      s.push_back(to);
      preds_[to].push_back(static_cast<std::int32_t>(from));
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    const BasicBlock& b = kernel.blocks[i];
    const Instruction& last = b.body.back();
    bool fallthrough = true;
    if (last.op == Opcode::BRA) {
      add_edge(i, last.target_block);
      fallthrough = last.guard.has_value();  // guarded BRA may fall through
    } else if (last.op == Opcode::EXIT && !last.guard) {
      fallthrough = false;
    }
    if (fallthrough) {
      if (i + 1 >= n)
        throw Error("block '" + b.label + "' falls off the end of the kernel");
      add_edge(i, static_cast<std::int32_t>(i + 1));
    }
  }
}

void Cfg::compute_rpo() {
  const std::size_t n = succs_.size();
  std::vector<bool> visited(n, false);
  std::vector<std::int32_t> postorder;
  postorder.reserve(n);

  // Iterative DFS to avoid deep recursion on long block chains.
  struct Frame {
    std::int32_t block;
    std::size_t next_succ;
  };
  std::vector<Frame> stack;
  stack.push_back({0, 0});
  visited[0] = true;
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_succ < succs_[f.block].size()) {
      const std::int32_t s = succs_[f.block][f.next_succ++];
      if (!visited[s]) {
        visited[s] = true;
        stack.push_back({s, 0});
      }
    } else {
      postorder.push_back(f.block);
      stack.pop_back();
    }
  }
  rpo_.assign(postorder.rbegin(), postorder.rend());
}

namespace {

/// Cooper–Harvey–Kennedy "engineering a simple dominance algorithm"
/// intersect step over an idom array indexed by node, with order[] giving
/// each node's position in the traversal order.
std::int32_t intersect(std::int32_t a, std::int32_t b,
                       const std::vector<std::int32_t>& idom,
                       const std::vector<std::int32_t>& order) {
  while (a != b) {
    while (order[a] > order[b]) a = idom[a];
    while (order[b] > order[a]) b = idom[b];
  }
  return a;
}

}  // namespace

void Cfg::compute_dominators() {
  const std::size_t n = succs_.size();
  idom_.assign(n, -1);
  std::vector<std::int32_t> order(n, -1);
  for (std::size_t i = 0; i < rpo_.size(); ++i)
    order[rpo_[i]] = static_cast<std::int32_t>(i);

  idom_[0] = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::int32_t b : rpo_) {
      if (b == 0) continue;
      std::int32_t new_idom = -1;
      for (const std::int32_t p : preds_[b]) {
        if (idom_[p] == -1) continue;  // unprocessed or unreachable
        new_idom = (new_idom == -1)
                       ? p
                       : intersect(p, new_idom, idom_, order);
      }
      if (new_idom != -1 && idom_[b] != new_idom) {
        idom_[b] = new_idom;
        changed = true;
      }
    }
  }
}

void Cfg::compute_post_dominators() {
  // Post-dominance over the reverse CFG with a virtual exit node `n` that
  // every EXIT-terminated (successor-free) block feeds into.
  const std::size_t n = succs_.size();
  const auto virtual_exit = static_cast<std::int32_t>(n);

  std::vector<std::vector<std::int32_t>> rsuccs(n + 1);  // reverse edges
  std::vector<std::vector<std::int32_t>> rpreds(n + 1);
  for (std::size_t b = 0; b < n; ++b) {
    if (succs_[b].empty()) {
      rsuccs[virtual_exit].push_back(static_cast<std::int32_t>(b));
      rpreds[b].push_back(virtual_exit);
    }
    for (const std::int32_t s : succs_[b]) {
      rsuccs[s].push_back(static_cast<std::int32_t>(b));
      rpreds[b].push_back(s);
    }
  }

  // RPO over the reverse graph from the virtual exit.
  std::vector<bool> visited(n + 1, false);
  std::vector<std::int32_t> postorder;
  struct Frame {
    std::int32_t block;
    std::size_t next;
  };
  std::vector<Frame> stack;
  stack.push_back({virtual_exit, 0});
  visited[virtual_exit] = true;
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next < rsuccs[f.block].size()) {
      const std::int32_t s = rsuccs[f.block][f.next++];
      if (!visited[s]) {
        visited[s] = true;
        stack.push_back({s, 0});
      }
    } else {
      postorder.push_back(f.block);
      stack.pop_back();
    }
  }
  std::vector<std::int32_t> rrpo(postorder.rbegin(), postorder.rend());

  std::vector<std::int32_t> order(n + 1, -1);
  for (std::size_t i = 0; i < rrpo.size(); ++i)
    order[rrpo[i]] = static_cast<std::int32_t>(i);

  ipdom_.assign(n + 1, -1);
  ipdom_[virtual_exit] = virtual_exit;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::int32_t b : rrpo) {
      if (b == virtual_exit) continue;
      std::int32_t new_ipdom = -1;
      for (const std::int32_t p : rpreds[b]) {
        if (ipdom_[p] == -1) continue;
        new_ipdom = (new_ipdom == -1)
                        ? p
                        : intersect(p, new_ipdom, ipdom_, order);
      }
      if (new_ipdom != -1 && ipdom_[b] != new_ipdom) {
        ipdom_[b] = new_ipdom;
        changed = true;
      }
    }
  }
  ipdom_.resize(n);  // drop the virtual exit entry; callers use block ids
}

bool Cfg::dominates(std::int32_t a, std::int32_t b) const {
  while (true) {
    if (a == b) return true;
    if (b == 0 || b == -1) return a == 0;
    const std::int32_t next = idom_[b];
    if (next == b) return false;
    b = next;
  }
}

bool Cfg::post_dominates(std::int32_t a, std::int32_t b) const {
  const auto virtual_exit = static_cast<std::int32_t>(succs_.size());
  while (true) {
    if (a == b) return true;
    if (b == -1 || b == virtual_exit) return false;
    b = ipdom_[b];
  }
}

bool Cfg::is_back_edge(std::int32_t from, std::int32_t to) const {
  return dominates(to, from);
}

void Cfg::find_loops() {
  const std::size_t n = succs_.size();
  loop_depth_.assign(n, 0);

  for (std::size_t from = 0; from < n; ++from) {
    for (const std::int32_t to : succs_[from]) {
      if (!is_back_edge(static_cast<std::int32_t>(from), to)) continue;
      Loop loop;
      loop.header = to;
      loop.latch = static_cast<std::int32_t>(from);
      // Natural loop body: header plus everything that reaches the latch
      // without passing through the header.
      std::vector<bool> in_loop(n, false);
      in_loop[to] = true;
      std::vector<std::int32_t> work;
      if (!in_loop[from]) {
        in_loop[from] = true;
        work.push_back(static_cast<std::int32_t>(from));
      }
      while (!work.empty()) {
        const std::int32_t b = work.back();
        work.pop_back();
        for (const std::int32_t p : preds_[b]) {
          if (!in_loop[p]) {
            in_loop[p] = true;
            work.push_back(p);
          }
        }
      }
      for (std::size_t b = 0; b < n; ++b)
        if (in_loop[b]) loop.blocks.push_back(static_cast<std::int32_t>(b));
      loops_.push_back(std::move(loop));
    }
  }

  // Depth = number of loops containing the block; loop.depth = min depth
  // over its blocks' containing count computed afterwards.
  for (const Loop& loop : loops_)
    for (const std::int32_t b : loop.blocks) ++loop_depth_[b];
  for (Loop& loop : loops_) loop.depth = loop_depth_[loop.header];

  // Deterministic order: outer loops first, then by header index.
  std::sort(loops_.begin(), loops_.end(), [](const Loop& a, const Loop& b) {
    if (a.depth != b.depth) return a.depth < b.depth;
    return a.header < b.header;
  });
}

}  // namespace gpustatic::ptx
