#include "ptx/kernel.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"

namespace gpustatic::ptx {

bool BasicBlock::ends_with_unconditional_terminator() const {
  if (body.empty()) return false;
  const Instruction& last = body.back();
  return is_terminator(last.op) && !last.guard.has_value();
}

void Kernel::finalize() {
  if (blocks.empty()) throw Error("kernel '" + name + "' has no blocks");

  std::unordered_map<std::string, std::int32_t> by_label;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const auto [it, inserted] =
        by_label.emplace(blocks[i].label, static_cast<std::int32_t>(i));
    if (!inserted)
      throw Error("kernel '" + name + "': duplicate label '" +
                  blocks[i].label + "'");
  }

  for (BasicBlock& b : blocks) {
    for (Instruction& ins : b.body) {
      if (ins.op == Opcode::BRA) {
        const auto it = by_label.find(ins.target);
        if (it == by_label.end())
          throw Error("kernel '" + name + "': branch to unknown label '" +
                      ins.target + "'");
        ins.target_block = it->second;
      }
    }
  }

  finalized_ = true;
  validate();
}

void Kernel::validate() const {
  for (const BasicBlock& b : blocks) {
    if (b.body.empty())
      throw Error("kernel '" + name + "': empty block '" + b.label + "'");
    for (std::size_t k = 0; k < b.body.size(); ++k) {
      const Instruction& ins = b.body[k];
      if (ins.guard && ins.guard->pred.type != Type::Pred)
        throw Error("kernel '" + name + "': guard register is not a predicate");
      // Terminators may only appear last within a block; a *guarded* BRA in
      // last position still allows fall-through, which is legal.
      if (is_terminator(ins.op) && k + 1 != b.body.size())
        throw Error("kernel '" + name + "': terminator not at end of block '" +
                    b.label + "'");
      if (ins.op == Opcode::SETP && (!ins.dst || ins.dst->type != Type::Pred))
        throw Error("kernel '" + name + "': setp destination must be a predicate");
      if (ins.op == Opcode::LD && ins.space != MemSpace::Param &&
          (ins.srcs.empty() || !ins.srcs[0].is_reg() ||
           ins.srcs[0].reg().type != Type::I64))
        throw Error("kernel '" + name + "': load address must be an s64 register");
      if (ins.op == Opcode::ST &&
          (ins.srcs.size() < 2 || !ins.srcs[0].is_reg() ||
           ins.srcs[0].reg().type != Type::I64))
        throw Error("kernel '" + name + "': store address must be an s64 register");
    }
  }
  // The final block must not fall off the end of the kernel.
  if (!blocks.back().ends_with_unconditional_terminator())
    throw Error("kernel '" + name +
                "': last block must end with an unconditional terminator");
}

std::int32_t Kernel::block_index(std::string_view label) const {
  for (std::size_t i = 0; i < blocks.size(); ++i)
    if (blocks[i].label == label) return static_cast<std::int32_t>(i);
  return -1;
}

std::size_t Kernel::instruction_count() const {
  std::size_t n = 0;
  for (const BasicBlock& b : blocks) n += b.body.size();
  return n;
}

std::uint16_t Kernel::max_reg_index(Type t) const {
  std::uint16_t m = 0;
  auto consider = [&](const Reg& r) {
    if (r.type == t) m = std::max(m, static_cast<std::uint16_t>(r.idx + 1));
  };
  for (const BasicBlock& b : blocks) {
    for (const Instruction& ins : b.body) {
      if (ins.dst) consider(*ins.dst);
      if (ins.guard) consider(ins.guard->pred);
      for (const Operand& s : ins.srcs)
        if (s.is_reg()) consider(s.reg());
    }
  }
  return m;
}

}  // namespace gpustatic::ptx
