#pragma once

#include <string_view>

#include "ptx/kernel.hpp"

namespace gpustatic::ptx {

/// Parse a kernel from the textual assembly produced by to_string().
/// The returned kernel is finalized. Throws ParseError with a line number
/// on malformed input.
[[nodiscard]] Kernel parse_kernel(std::string_view text);

}  // namespace gpustatic::ptx
