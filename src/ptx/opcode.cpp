#include "ptx/opcode.hpp"

namespace gpustatic::ptx {

std::string_view type_name(Type t) {
  switch (t) {
    case Type::Pred: return "pred";
    case Type::I32: return "s32";
    case Type::I64: return "s64";
    case Type::F32: return "f32";
    case Type::F64: return "f64";
  }
  return "?";
}

std::string_view type_reg_prefix(Type t) {
  switch (t) {
    case Type::Pred: return "%p";
    case Type::I32: return "%r";
    case Type::I64: return "%rd";
    case Type::F32: return "%f";
    case Type::F64: return "%d";
  }
  return "%?";
}

unsigned type_reg_slots(Type t) {
  switch (t) {
    case Type::Pred: return 0;
    case Type::I32:
    case Type::F32: return 1;
    case Type::I64:
    case Type::F64: return 2;
  }
  return 0;
}

unsigned type_size_bytes(Type t) {
  switch (t) {
    case Type::Pred: return 0;
    case Type::I32:
    case Type::F32: return 4;
    case Type::I64:
    case Type::F64: return 8;
  }
  return 0;
}

std::string_view opcode_name(Opcode op) {
  switch (op) {
    case Opcode::MOV: return "mov";
    case Opcode::SELP: return "selp";
    case Opcode::AND: return "and";
    case Opcode::OR: return "or";
    case Opcode::XOR: return "xor";
    case Opcode::NOT: return "not";
    case Opcode::SHL: return "shl";
    case Opcode::SHR: return "shr";
    case Opcode::IADD: return "add";
    case Opcode::ISUB: return "sub";
    case Opcode::IMUL: return "mul";
    case Opcode::IMULHI: return "mul.hi";
    case Opcode::IMAD: return "mad";
    case Opcode::IMIN: return "min";
    case Opcode::IMAX: return "max";
    case Opcode::FADD: return "fadd";
    case Opcode::FSUB: return "fsub";
    case Opcode::FMUL: return "fmul";
    case Opcode::FFMA: return "fma";
    case Opcode::FMIN: return "fmin";
    case Opcode::FMAX: return "fmax";
    case Opcode::RCP: return "rcp";
    case Opcode::RSQRT: return "rsqrt";
    case Opcode::SQRT: return "sqrt";
    case Opcode::EX2: return "ex2";
    case Opcode::LG2: return "lg2";
    case Opcode::SIN: return "sin";
    case Opcode::COS: return "cos";
    case Opcode::CVT: return "cvt";
    case Opcode::SETP: return "setp";
    case Opcode::LD: return "ld";
    case Opcode::ST: return "st";
    case Opcode::ATOM_ADD: return "atom.add";
    case Opcode::BRA: return "bra";
    case Opcode::BAR: return "bar.sync";
    case Opcode::EXIT: return "exit";
    case Opcode::NOP: return "nop";
  }
  return "?";
}

std::string_view cmp_name(CmpOp c) {
  switch (c) {
    case CmpOp::EQ: return "eq";
    case CmpOp::NE: return "ne";
    case CmpOp::LT: return "lt";
    case CmpOp::LE: return "le";
    case CmpOp::GT: return "gt";
    case CmpOp::GE: return "ge";
  }
  return "?";
}

std::string_view space_name(MemSpace s) {
  switch (s) {
    case MemSpace::Global: return "global";
    case MemSpace::Shared: return "shared";
    case MemSpace::Param: return "param";
    case MemSpace::Const: return "const";
    case MemSpace::Local: return "local";
  }
  return "?";
}

std::string_view special_name(SpecialReg s) {
  switch (s) {
    case SpecialReg::TidX: return "%tid.x";
    case SpecialReg::NTidX: return "%ntid.x";
    case SpecialReg::CTAidX: return "%ctaid.x";
    case SpecialReg::NCTAidX: return "%nctaid.x";
    case SpecialReg::LaneId: return "%laneid";
  }
  return "%?";
}

bool is_terminator(Opcode op) {
  return op == Opcode::BRA || op == Opcode::EXIT;
}

bool is_memory(Opcode op) {
  return op == Opcode::LD || op == Opcode::ST || op == Opcode::ATOM_ADD;
}

}  // namespace gpustatic::ptx
