#pragma once

#include <cstdint>

#include "ptx/kernel.hpp"

namespace gpustatic::ptx {

/// Result of register-demand analysis.
struct RegisterDemand {
  /// Peak number of simultaneously live 32-bit register slots in any one
  /// thread (I64/F64 values occupy two slots). This is the `Ru` the
  /// occupancy model consumes — the stand-in for ptxas's
  /// `--ptxas-options=-v` "registers per thread" report.
  std::uint32_t regs_per_thread = 0;
  /// Peak live predicate registers (tracked separately; NVIDIA hardware
  /// has a small dedicated predicate file).
  std::uint32_t preds_per_thread = 0;
};

/// Backward liveness over the CFG followed by a per-block walk that records
/// the maximum number of live register slots at any program point.
///
/// Virtual registers are never reused by our code generator, so peak
/// liveness is a faithful model of what a linear-scan allocator would need;
/// we additionally add the small fixed overhead ptxas reserves for
/// addressing/ABI registers (kAbiReserved).
[[nodiscard]] RegisterDemand analyze_register_demand(const Kernel& kernel);

/// Fixed per-thread register overhead the real toolchain reserves
/// (parameter bank pointers, stack pointer). Exposed for tests.
inline constexpr std::uint32_t kAbiReserved = 2;

}  // namespace gpustatic::ptx
