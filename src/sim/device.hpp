#pragma once

// Simulated device memory: one float32 region per workload array, laid
// out in a sparse 64-bit address space (region r starts at (r+1) << 32).
// Pointer parameters bind to region base addresses, so all the address
// arithmetic the generated kernels perform is real 64-bit arithmetic,
// and out-of-bounds accesses are detected instead of corrupting state.

#include <cstdint>
#include <string>
#include <vector>

#include "dsl/ast.hpp"

namespace gpustatic::sim {

class DeviceMemory {
 public:
  /// Allocate and initialize every array of the workload.
  explicit DeviceMemory(const dsl::WorkloadDesc& wl);

  /// Base device address of an array (what ld.param yields).
  [[nodiscard]] std::uint64_t base(const std::string& array) const;

  /// Bounds-checked float access by device address.
  [[nodiscard]] float load(std::uint64_t addr) const;
  void store(std::uint64_t addr, float value);
  /// Atomic add returns nothing (our ISA's atom.add has no destination).
  void atomic_add(std::uint64_t addr, float value);

  /// Host view of an array (for result verification).
  [[nodiscard]] const std::vector<float>& host(const std::string& array) const;
  [[nodiscard]] std::vector<float>& host(const std::string& array);

  /// Re-run the declared initialization (between measurement repetitions).
  void reset();

  [[nodiscard]] std::size_t region_count() const { return regions_.size(); }
  [[nodiscard]] std::uint64_t bytes_allocated() const;

 private:
  struct Region {
    std::string name;
    dsl::ArrayInit init;
    std::vector<float> data;
  };
  [[nodiscard]] const Region& region_for(std::uint64_t addr,
                                         std::uint64_t* offset) const;
  std::vector<Region> regions_;
};

/// The deterministic init patterns (shared with the CPU reference
/// implementations in the tests).
[[nodiscard]] float init_value(dsl::ArrayInit init, std::int64_t index);

}  // namespace gpustatic::sim
