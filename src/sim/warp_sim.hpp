#pragma once

// SIMT warp-level simulator: executes the PTX-like IR functionally (real
// register values, real addresses, bounds-checked device memory) while
// accounting timing with the MachineModel. This is the reproduction's
// stand-in for running on physical GPUs ("dynamic analysis").
//
// Execution model
//  * Blocks are assigned to SMs round-robin; each SM keeps at most
//    B*mp resident blocks (the occupancy model's Eq. 1 result) and admits
//    pending blocks as residents finish.
//  * Each SM issues one warp-instruction at a time, greedily choosing the
//    warp that can issue earliest given (a) its own in-order stream,
//    (b) a register scoreboard (loads do not block until first use), and
//    (c) per-category pipeline occupancy derived from Table II IPCs.
//  * Divergence uses an immediate-post-dominator reconvergence stack
//    computed from the kernel CFG (Fig. 1's mechanism).
//  * The memory system models a per-SM L1 (PL-sized on Fermi/Kepler), a
//    shared L2, DRAM latency, and per-SM DRAM bandwidth share; atomics
//    serialize per conflicting lane.
//
// SMs are simulated independently with a bandwidth share (documented
// approximation; see DESIGN.md §5.1); a final global-bandwidth bound is
// applied across SMs.

#include <cstdint>

#include "codegen/compiler.hpp"
#include "occupancy/occupancy.hpp"
#include "sim/counts.hpp"
#include "sim/device.hpp"
#include "sim/machine.hpp"
#include "sim/trace.hpp"

namespace gpustatic::sim {

struct StageTiming {
  double cycles = 0;
  double time_ms = 0;
  Counts counts;
  occupancy::Result occ;
};

class WarpSimulator {
 public:
  explicit WarpSimulator(const MachineModel& machine) : m_(machine) {}

  /// Execute one compiled stage against device memory, mutating it.
  /// Throws ConfigError when the configuration cannot be resident at all
  /// (occupancy zero: illegal register or smem footprint).
  /// A non-null `sink` observes every issue, branch, and global-memory
  /// operation (see sim/trace.hpp); tracing never changes execution.
  StageTiming run_stage(const codegen::LoweredStage& stage,
                        DeviceMemory& mem, TraceSink* sink = nullptr);

 private:
  const MachineModel& m_;
};

}  // namespace gpustatic::sim
