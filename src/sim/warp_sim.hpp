#pragma once

// SIMT warp-level simulator: executes the PTX-like IR functionally (real
// register values, real addresses, bounds-checked device memory) while
// accounting timing with the MachineModel. This is the reproduction's
// stand-in for running on physical GPUs ("dynamic analysis").
//
// Execution model
//  * Blocks are assigned to SMs round-robin; each SM keeps at most
//    B*mp resident blocks (the occupancy model's Eq. 1 result) and admits
//    pending blocks as residents finish.
//  * Each SM issues one warp-instruction at a time, greedily choosing the
//    warp that can issue earliest given (a) its own in-order stream,
//    (b) a register scoreboard (loads do not block until first use), and
//    (c) per-category pipeline occupancy derived from Table II IPCs.
//  * Divergence uses an immediate-post-dominator reconvergence stack
//    computed from the kernel CFG (Fig. 1's mechanism).
//  * The memory system models a per-SM L1 (PL-sized on Fermi/Kepler), a
//    shared L2, DRAM latency, and per-SM DRAM bandwidth share; atomics
//    serialize per conflicting lane.
//
// SMs are simulated independently with a bandwidth share (documented
// approximation; see DESIGN.md §5.1); a final global-bandwidth bound is
// applied across SMs.

#include <array>
#include <cstdint>
#include <memory>

#include "codegen/compiler.hpp"
#include "occupancy/occupancy.hpp"
#include "ptx/cfg.hpp"
#include "sim/counts.hpp"
#include "sim/device.hpp"
#include "sim/machine.hpp"
#include "sim/trace.hpp"

namespace gpustatic::sim {

struct StageTiming {
  double cycles = 0;
  double time_ms = 0;
  Counts counts;
  occupancy::Result occ;
};

/// Dense register ids across all register classes of one kernel. Exposed
/// (rather than private to the simulator) so SimContext can memoize one
/// layout per cached kernel instead of rebuilding it for every point.
struct RegLayout {
  std::array<std::uint32_t, 5> base{};
  std::uint32_t total = 0;

  explicit RegLayout(const ptx::Kernel& k) {
    std::uint32_t off = 0;
    for (int s = 0; s < 5; ++s) {
      base[s] = off;
      off += k.max_reg_index(type_of_slot(s));
    }
    total = off;
  }
  static ptx::Type type_of_slot(int s) {
    switch (s) {
      case 0: return ptx::Type::Pred;
      case 1: return ptx::Type::I32;
      case 2: return ptx::Type::I64;
      case 3: return ptx::Type::F32;
      default: return ptx::Type::F64;
    }
  }
  static int slot_of_type(ptx::Type t) {
    switch (t) {
      case ptx::Type::Pred: return 0;
      case ptx::Type::I32: return 1;
      case ptx::Type::I64: return 2;
      case ptx::Type::F32: return 3;
      default: return 4;
    }
  }
  [[nodiscard]] std::uint32_t id(const ptx::Reg& r) const {
    return base[slot_of_type(r.type)] + r.idx;
  }
};

/// Everything one simulated launch needs that is not device memory: the
/// kernel with its memoized analyses (shared across points) and the
/// point-specific launch geometry. The kernel/cfg/layout pointees must
/// outlive the run.
struct StagePlan {
  const ptx::Kernel* kernel = nullptr;
  const ptx::Cfg* cfg = nullptr;
  const RegLayout* layout = nullptr;
  std::uint32_t regs_per_thread = 0;
  codegen::LaunchConfig launch;
};

/// Reusable per-run simulation state: warp register files and
/// scoreboards (recycled through arenas), SIMT stacks, tag-cache arrays
/// (reset in place), and the coalescing scratch buffers. One scratch
/// serves any number of sequential run_plan() calls; concurrent runs
/// need one scratch each. Holding scratch across runs is what makes the
/// warm evaluation path allocation-free in steady state.
class WarpScratch {
 public:
  WarpScratch();
  ~WarpScratch();
  WarpScratch(WarpScratch&&) noexcept;
  WarpScratch& operator=(WarpScratch&&) noexcept;

 private:
  friend class WarpSimulator;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

class WarpSimulator {
 public:
  explicit WarpSimulator(const MachineModel& machine) : m_(machine) {}

  /// Execute one compiled stage against device memory, mutating it.
  /// Throws ConfigError when the configuration cannot be resident at all
  /// (occupancy zero: illegal register or smem footprint).
  /// A non-null `sink` observes every issue, branch, and global-memory
  /// operation (see sim/trace.hpp); tracing never changes execution.
  /// Convenience form: builds the CFG, register layout, and scratch for
  /// this one run. The hot path uses run_plan() with memoized analyses.
  StageTiming run_stage(const codegen::LoweredStage& stage,
                        DeviceMemory& mem, TraceSink* sink = nullptr);

  /// As run_stage, with caller-owned (memoizable) analyses and reusable
  /// scratch. Results are identical to run_stage for equal inputs,
  /// regardless of what previous runs left in `scratch`.
  StageTiming run_plan(const StagePlan& plan, DeviceMemory& mem,
                       WarpScratch& scratch, TraceSink* sink = nullptr);

 private:
  const MachineModel& m_;
};

}  // namespace gpustatic::sim
