#pragma once

// Timing constants of the simulated machine, derived from Table I plus
// published micro-architectural figures. These numbers parameterize BOTH
// simulation engines (warp-level and analytic), so the two stay
// comparable by construction.

#include <cstdint>

#include "arch/gpu_spec.hpp"
#include "arch/throughput.hpp"

namespace gpustatic::sim {

struct MachineModel {
  const arch::GpuSpec* gpu = nullptr;

  // Latencies in core cycles.
  double alu_latency = 10;    ///< dependent-use latency of ALU results
  double sfu_latency = 20;    ///< special-function unit results
  double dram_latency = 500;  ///< global load miss, full round trip
  double l2_latency = 220;
  double l1_latency = 35;
  double smem_latency = 30;

  // Bandwidths in bytes per core cycle (whole GPU).
  double dram_bytes_per_cycle = 250;
  double l2_bytes_per_cycle = 500;

  // Cache geometry (bytes). l1_bytes reflects the PL preference on
  // Fermi/Kepler; Maxwell/Pascal have a fixed-function L1.
  std::uint64_t l1_bytes = 16 * 1024;
  std::uint64_t l2_bytes = 1 << 20;
  std::uint32_t line_bytes = 128;

  // Fixed overheads in cycles.
  double kernel_launch_overhead = 3000;
  double block_dispatch_overhead = 300;
  /// Extra LSU occupancy per additional lane hitting the same address in
  /// one atomic operation (serialization at the memory partition).
  double atomic_conflict_cycles = 4;

  /// Issue cost of one warp-instruction of a category in SM cycles:
  /// 32 lanes spread over the category's per-SM lanes-per-cycle (Table II).
  [[nodiscard]] double issue_cycles(arch::OpCategory cat) const {
    return 32.0 / arch::ipc(cat, gpu->family);
  }

  /// Result latency by category.
  [[nodiscard]] double result_latency(arch::OpCategory cat) const;

  /// Cycles one 128-byte transaction occupies DRAM (whole GPU).
  [[nodiscard]] double dram_txn_cycles() const {
    return line_bytes / dram_bytes_per_cycle;
  }
  [[nodiscard]] double l2_txn_cycles() const {
    return line_bytes / l2_bytes_per_cycle;
  }

  /// Convert cycles to milliseconds at the GPU core clock.
  [[nodiscard]] double cycles_to_ms(double cycles) const {
    return cycles / (static_cast<double>(gpu->gpu_clock_mhz) * 1e3);
  }

  /// Build the model for a GPU with an L1 preference (PL, in KB).
  static MachineModel from(const arch::GpuSpec& gpu, int l1_pref_kb);
};

}  // namespace gpustatic::sim
