#pragma once

// Dynamic execution counters shared by both simulation engines and by the
// static analyzer (which produces the same shape from static data). This
// is the common currency of the paper's instruction-mix methodology.

#include <array>
#include <cstdint>
#include <string>

#include "arch/throughput.hpp"

namespace gpustatic::sim {

struct Counts {
  /// Executed warp-instructions per Table II category.
  std::array<double, arch::kNumOpCategories> per_category{};
  /// Register-file operand traffic (reads + writes) over all executed
  /// warp-instructions: the O_reg metric.
  double reg_traffic = 0;
  /// Branch statistics.
  double branches = 0;
  double divergent_branches = 0;
  /// Warp-instructions issued with a partial lane mask.
  double partial_issues = 0;
  double total_issues = 0;
  /// Memory-system traffic.
  double mem_transactions = 0;   ///< L1-miss transactions entering L2.
  double dram_transactions = 0;  ///< L2-miss transactions reaching DRAM.

  [[nodiscard]] double category(arch::OpCategory c) const {
    return per_category[static_cast<std::size_t>(c)];
  }
  void add_category(arch::OpCategory c, double n) {
    per_category[static_cast<std::size_t>(c)] += n;
  }

  /// Aggregate by coarse class. FLOPS -> O_fl, MEM -> O_mem,
  /// CTRL -> O_ctrl; REG class instructions also land in O_reg alongside
  /// operand traffic when `include_traffic` is false.
  [[nodiscard]] double by_class(arch::OpClass c) const;

  /// O_fl / O_mem: the paper's computational intensity (Table VI).
  [[nodiscard]] double intensity() const;

  /// Fraction of issues that were divergence-serialized.
  [[nodiscard]] double divergence_ratio() const {
    return total_issues > 0 ? partial_issues / total_issues : 0.0;
  }

  Counts& operator+=(const Counts& o);

  [[nodiscard]] std::string summary() const;
};

}  // namespace gpustatic::sim
