#include "sim/machine.hpp"

namespace gpustatic::sim {

double MachineModel::result_latency(arch::OpCategory cat) const {
  using arch::OpCategory;
  switch (cat) {
    case OpCategory::LogSinCos:
      return sfu_latency;
    case OpCategory::TexIns:
    case OpCategory::LdStIns:
    case OpCategory::SurfIns:
      // Memory latency is computed per access from the cache level hit;
      // this value is only the fallback for non-memory uses.
      return dram_latency;
    default:
      return alu_latency;
  }
}

MachineModel MachineModel::from(const arch::GpuSpec& gpu, int l1_pref_kb) {
  MachineModel m;
  m.gpu = &gpu;
  m.l2_bytes = static_cast<std::uint64_t>(gpu.l2_cache_mb * 1024.0 * 1024.0);

  switch (gpu.family) {
    case arch::Family::Fermi:
      // M2050: 148 GB/s @ 1147 MHz core.
      m.alu_latency = 18;
      m.dram_latency = 600;
      m.l2_latency = 250;
      m.l1_latency = 40;
      m.dram_bytes_per_cycle = 129;
      // Fermi's 64KB split: PL selects 16 or 48 KB of L1.
      m.l1_bytes = static_cast<std::uint64_t>(l1_pref_kb) * 1024;
      break;
    case arch::Family::Kepler:
      // K20: 208 GB/s @ 824 MHz core.
      m.alu_latency = 10;
      m.dram_latency = 500;
      m.l2_latency = 220;
      m.l1_latency = 35;
      m.dram_bytes_per_cycle = 252;
      m.l1_bytes = static_cast<std::uint64_t>(l1_pref_kb) * 1024;
      break;
    case arch::Family::Maxwell:
      // M40: 288 GB/s @ 1140 MHz core. Unified 48KB L1/tex, PL ignored.
      m.alu_latency = 6;
      m.dram_latency = 400;
      m.l2_latency = 200;
      m.l1_latency = 30;
      m.dram_bytes_per_cycle = 253;
      m.l1_bytes = 48 * 1024;
      break;
    case arch::Family::Pascal:
      // P100: 732 GB/s; Table I lists the 405 MHz base clock, which makes
      // Pascal comparatively memory-rich in cycle units (documented in
      // EXPERIMENTS.md).
      m.alu_latency = 6;
      m.dram_latency = 450;
      m.l2_latency = 200;
      m.l1_latency = 30;
      m.dram_bytes_per_cycle = 1807;
      m.l1_bytes = 24 * 1024;
      break;
  }
  m.l2_bytes_per_cycle = m.dram_bytes_per_cycle * 2.0;
  return m;
}

}  // namespace gpustatic::sim
