#include "sim/analytic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gpustatic::sim {

namespace {

constexpr double kWarp = 32.0;

/// Effective DRAM/L2 transactions one warp generates per execution of a
/// memory instruction, combining lane spread (coalescing) with cache-line
/// reuse across serial-loop iterations. See DESIGN.md §5.1.
double effective_transactions(const ptx::Instruction& ins,
                              std::uint32_t line_bytes) {
  if (ins.space != ptx::MemSpace::Global) return 0.0;
  const auto& h = ins.access;
  double raw;
  if (h.uniform || h.lane_stride_bytes == 0) {
    raw = 1.0;
  } else {
    raw = std::clamp(std::ceil(kWarp *
                               static_cast<double>(
                                   std::abs(h.lane_stride_bytes)) /
                               line_bytes),
                     1.0, kWarp);
  }
  if (h.serial_stride_bytes != 0) {
    const double reuse =
        std::min(1.0, static_cast<double>(std::abs(h.serial_stride_bytes)) /
                          line_bytes);
    raw *= reuse;
  }
  return raw;
}

}  // namespace

std::string_view analytic_mode_name(AnalyticMode mode) {
  return mode == AnalyticMode::Wave ? "wave" : "classic";
}

std::optional<AnalyticMode> parse_analytic_mode(std::string_view name) {
  if (name == "classic") return AnalyticMode::Classic;
  if (name == "wave") return AnalyticMode::Wave;
  return std::nullopt;
}

const std::vector<std::string>& analytic_mode_names() {
  static const std::vector<std::string> kNames = {"classic", "wave"};
  return kNames;
}

WaveGeometry decompose_waves(const arch::GpuSpec& gpu,
                             const occupancy::Result& occ,
                             const codegen::LaunchConfig& launch,
                             int coarsen) {
  WaveGeometry g;
  const double tc = launch.block_threads;
  const double bc = launch.grid_blocks;
  if (occ.active_blocks == 0 || tc <= 0 || bc <= 0) return g;
  const auto domain = static_cast<double>(launch.domain);
  const double cf = std::max(1, coarsen);

  const double total_threads = tc * bc;
  const double bases = std::ceil(domain / cf);
  g.active_threads = std::min(total_threads, std::max(1.0, bases));
  g.busy_blocks = std::min(bc, std::ceil(g.active_threads / tc));
  g.busy_sms = std::min<double>(gpu.multiprocessors, g.busy_blocks);
  g.blocks_per_sm = std::ceil(g.busy_blocks / g.busy_sms);
  g.resident_blocks =
      std::min<double>(occ.active_blocks, g.blocks_per_sm);
  const double threads_per_busy_block =
      std::min(tc, std::ceil(g.active_threads / g.busy_blocks));
  g.warps_per_block = std::ceil(threads_per_busy_block / kWarp);
  g.active_warps = std::min<double>(
      g.resident_blocks * g.warps_per_block, gpu.warps_per_mp);
  g.waves = g.blocks_per_sm / g.resident_blocks;
  g.full_waves = std::floor(g.blocks_per_sm / g.resident_blocks);
  g.tail_blocks = g.blocks_per_sm - g.full_waves * g.resident_blocks;

  // Grid-level last-wave fullness: blocks land on the busy SMs
  // round-robin, so once the whole-GPU full waves drain, the remaining
  // blocks occupy one SM each.
  const double wave_capacity = g.busy_sms * g.resident_blocks;
  const double tail_gpu_blocks = std::fmod(g.busy_blocks, wave_capacity);
  g.tail_sm_fraction =
      tail_gpu_blocks == 0.0
          ? 1.0
          : std::min(g.busy_sms, tail_gpu_blocks) / g.busy_sms;
  return g;
}

AnalyticResult AnalyticModel::run_stage(const StageInputs& in) const {
  const arch::GpuSpec& gpu = *m_.gpu;
  const ptx::Kernel& kernel = *in.kernel;
  const double tc = in.launch.block_threads;
  const double bc = in.launch.grid_blocks;

  AnalyticResult out;
  out.occ = occupancy::calculate(
      gpu, occupancy::KernelParams{in.launch.block_threads,
                                   in.regs_per_thread,
                                   in.launch.smem_bytes});
  if (out.occ.active_blocks == 0)
    throw ConfigError("configuration cannot be resident on " + gpu.name);

  const WaveGeometry g =
      decompose_waves(gpu, out.occ, in.launch, in.coarsen);

  AnalyticBreakdown& b = out.breakdown;
  const double total_threads = tc * bc;
  b.active_threads = g.active_threads;
  b.busy_blocks = g.busy_blocks;
  b.busy_sms = g.busy_sms;
  const double blocks_per_sm = g.blocks_per_sm;
  b.resident_blocks = g.resident_blocks;
  b.active_warps = g.active_warps;
  b.waves = g.waves;
  b.full_waves = g.full_waves;
  b.tail_blocks = g.tail_blocks;
  b.tail_sm_fraction = g.tail_sm_fraction;

  // Work concentration: per-ACTIVE-warp counts are the per-average-thread
  // counts scaled up by the idle fraction.
  const double scale = total_threads / b.active_threads;

  // ---- accumulate static-count x frequency products -------------------
  std::array<double, arch::kNumOpCategories> per_cat_warp{};
  double txn_per_warp = 0;
  double latency_stalls = 0;  // cycles per warp
  double atomic_extra = 0;    // LSU serialization cycles per warp
  double reg_traffic_warp = 0;
  double branches_warp = 0;

  const double lat_blend = 0.7 * m_.dram_latency + 0.3 * m_.l1_latency;

  for (std::size_t bi = 0; bi < kernel.blocks.size(); ++bi) {
    const double freq = in.block_freq[bi] * scale;
    if (freq <= 0.0) continue;
    bool block_has_load = false;
    for (const ptx::Instruction& ins : kernel.blocks[bi].body) {
      const arch::OpCategory cat = ins.category();
      per_cat_warp[static_cast<std::size_t>(cat)] += freq;
      reg_traffic_warp += freq * (ins.reg_reads() + ins.reg_writes());
      if (ins.op == ptx::Opcode::BRA) branches_warp += freq;
      if (ins.op == ptx::Opcode::LD &&
          ins.space == ptx::MemSpace::Global)
        block_has_load = true;
      if (ptx::is_memory(ins.op) && ins.space == ptx::MemSpace::Global)
        txn_per_warp += freq * effective_transactions(ins, m_.line_bytes);
      if (ins.op == ptx::Opcode::ATOM_ADD)
        atomic_extra += freq * kWarp * m_.atomic_conflict_cycles;
    }
    if (block_has_load) latency_stalls += freq * lat_blend;
  }

  // ---- the three bounds ------------------------------------------------
  double bottleneck_pipe = 0;
  double issue_total = 0;
  for (const arch::OpCategory cat : arch::all_categories()) {
    const double n = per_cat_warp[static_cast<std::size_t>(cat)];
    if (n <= 0) continue;
    const double cyc = n * m_.issue_cycles(cat);
    issue_total += cyc;
    bottleneck_pipe = std::max(bottleneck_pipe, cyc);
  }
  bottleneck_pipe += atomic_extra;  // atomics occupy the LSU pipe
  issue_total += atomic_extra;

  b.issue_cycles = issue_total;
  b.latency_cycles = latency_stalls;

  const double tp_bound = b.active_warps * bottleneck_pipe;
  const double serial_bound = issue_total + latency_stalls;
  const double txn_cycles_sm_share =
      m_.dram_txn_cycles() * b.busy_sms;
  b.bandwidth_cycles =
      b.active_warps * txn_per_warp * txn_cycles_sm_share;

  const double wave_cycles =
      std::max({tp_bound, serial_bound, b.bandwidth_cycles});
  if (opts_.mode == AnalyticMode::Wave && b.tail_blocks > 0) {
    // Tail wave: fewer resident blocks, so the throughput and bandwidth
    // bounds shrink with the tail's warp count. The latency bound does
    // not — one warp's critical path is unchanged no matter how few
    // neighbors remain to hide its stalls — but part of it overlaps the
    // final full wave: blocks retire staggered, so the tail block starts
    // before the wave fully drains and hides part of its own chain in
    // the stagger. The exposed remainder scales with the share of the
    // wave the chain occupies (serial_bound / wave_cycles): a chain as
    // long as the wave (a serial-bound wave, where blocks retire
    // together) is fully exposed; a short chain hides almost entirely.
    // The DRAM share keeps the first-wave busy-SM count: the warp
    // simulator charges the whole run at that share.
    b.tail_active_warps = std::min<double>(
        b.tail_blocks * g.warps_per_block, gpu.warps_per_mp);
    const double tp_tail = b.tail_active_warps * bottleneck_pipe;
    const double bw_tail =
        b.tail_active_warps * txn_per_warp * txn_cycles_sm_share;
    const double exposed_serial =
        serial_bound * (serial_bound / wave_cycles);
    b.tail_wave_cycles = std::max({tp_tail, exposed_serial, bw_tail});
    b.sm_cycles = b.full_waves * wave_cycles + b.tail_wave_cycles +
                  blocks_per_sm * m_.block_dispatch_overhead;
  } else {
    // Classic Eq. 6: every wave full (also the wave-aligned wave-mode
    // path, where waves == full_waves and the tail is empty).
    b.sm_cycles = b.waves * wave_cycles +
                  blocks_per_sm * m_.block_dispatch_overhead;
  }

  // Whole-GPU DRAM bound.
  const double total_warps = b.active_threads / kWarp;
  b.dram_bound_cycles = txn_per_warp * total_warps * m_.dram_txn_cycles();

  out.cycles = std::max(b.sm_cycles, b.dram_bound_cycles) +
               m_.kernel_launch_overhead;
  out.time_ms = m_.cycles_to_ms(out.cycles);

  // ---- whole-grid dynamic-count estimate -------------------------------
  const double warps_grid = total_threads / kWarp;
  for (const arch::OpCategory cat : arch::all_categories()) {
    // per_cat_warp already carries `scale`; undo it for the grid total
    // (scale * active == total for the aggregate).
    const double per_avg_warp =
        per_cat_warp[static_cast<std::size_t>(cat)] / scale;
    out.counts.add_category(cat, per_avg_warp * warps_grid);
  }
  out.counts.reg_traffic = reg_traffic_warp / scale * warps_grid;
  out.counts.branches = branches_warp / scale * warps_grid;
  out.counts.total_issues = 0;
  for (const arch::OpCategory cat : arch::all_categories())
    out.counts.total_issues += out.counts.category(cat);
  out.counts.mem_transactions = txn_per_warp / scale * warps_grid;
  out.counts.dram_transactions = out.counts.mem_transactions;
  return out;
}

}  // namespace gpustatic::sim
