#include "sim/analytic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gpustatic::sim {

namespace {

constexpr double kWarp = 32.0;

/// Effective DRAM/L2 transactions one warp generates per execution of a
/// memory instruction, combining lane spread (coalescing) with cache-line
/// reuse across serial-loop iterations. See DESIGN.md §5.1.
double effective_transactions(const ptx::Instruction& ins,
                              std::uint32_t line_bytes) {
  if (ins.space != ptx::MemSpace::Global) return 0.0;
  const auto& h = ins.access;
  double raw;
  if (h.uniform || h.lane_stride_bytes == 0) {
    raw = 1.0;
  } else {
    raw = std::clamp(std::ceil(kWarp *
                               static_cast<double>(
                                   std::abs(h.lane_stride_bytes)) /
                               line_bytes),
                     1.0, kWarp);
  }
  if (h.serial_stride_bytes != 0) {
    const double reuse =
        std::min(1.0, static_cast<double>(std::abs(h.serial_stride_bytes)) /
                          line_bytes);
    raw *= reuse;
  }
  return raw;
}

}  // namespace

AnalyticResult AnalyticModel::run_stage(const StageInputs& in) const {
  const arch::GpuSpec& gpu = *m_.gpu;
  const ptx::Kernel& kernel = *in.kernel;
  const double tc = in.launch.block_threads;
  const double bc = in.launch.grid_blocks;
  const auto domain = static_cast<double>(in.launch.domain);
  const double cf = std::max(1, in.coarsen);

  AnalyticResult out;
  out.occ = occupancy::calculate(
      gpu, occupancy::KernelParams{in.launch.block_threads,
                                   in.regs_per_thread,
                                   in.launch.smem_bytes});
  if (out.occ.active_blocks == 0)
    throw ConfigError("configuration cannot be resident on " + gpu.name);

  AnalyticBreakdown& b = out.breakdown;
  const double total_threads = tc * bc;
  const double bases = std::ceil(domain / cf);
  b.active_threads = std::min(total_threads, std::max(1.0, bases));
  b.busy_blocks = std::min(bc, std::ceil(b.active_threads / tc));
  b.busy_sms =
      std::min<double>(gpu.multiprocessors, b.busy_blocks);
  const double blocks_per_sm = std::ceil(b.busy_blocks / b.busy_sms);
  b.resident_blocks =
      std::min<double>(out.occ.active_blocks, blocks_per_sm);
  const double threads_per_busy_block =
      std::min(tc, std::ceil(b.active_threads / b.busy_blocks));
  const double warps_per_busy_block = std::ceil(threads_per_busy_block /
                                                kWarp);
  b.active_warps = std::min<double>(
      b.resident_blocks * warps_per_busy_block, gpu.warps_per_mp);
  b.waves = blocks_per_sm / b.resident_blocks;

  // Work concentration: per-ACTIVE-warp counts are the per-average-thread
  // counts scaled up by the idle fraction.
  const double scale = total_threads / b.active_threads;

  // ---- accumulate static-count x frequency products -------------------
  std::array<double, arch::kNumOpCategories> per_cat_warp{};
  double txn_per_warp = 0;
  double latency_stalls = 0;  // cycles per warp
  double atomic_extra = 0;    // LSU serialization cycles per warp
  double reg_traffic_warp = 0;
  double branches_warp = 0;

  const double lat_blend = 0.7 * m_.dram_latency + 0.3 * m_.l1_latency;

  for (std::size_t bi = 0; bi < kernel.blocks.size(); ++bi) {
    const double freq = in.block_freq[bi] * scale;
    if (freq <= 0.0) continue;
    bool block_has_load = false;
    for (const ptx::Instruction& ins : kernel.blocks[bi].body) {
      const arch::OpCategory cat = ins.category();
      per_cat_warp[static_cast<std::size_t>(cat)] += freq;
      reg_traffic_warp += freq * (ins.reg_reads() + ins.reg_writes());
      if (ins.op == ptx::Opcode::BRA) branches_warp += freq;
      if (ins.op == ptx::Opcode::LD &&
          ins.space == ptx::MemSpace::Global)
        block_has_load = true;
      if (ptx::is_memory(ins.op) && ins.space == ptx::MemSpace::Global)
        txn_per_warp += freq * effective_transactions(ins, m_.line_bytes);
      if (ins.op == ptx::Opcode::ATOM_ADD)
        atomic_extra += freq * kWarp * m_.atomic_conflict_cycles;
    }
    if (block_has_load) latency_stalls += freq * lat_blend;
  }

  // ---- the three bounds ------------------------------------------------
  double bottleneck_pipe = 0;
  double issue_total = 0;
  for (const arch::OpCategory cat : arch::all_categories()) {
    const double n = per_cat_warp[static_cast<std::size_t>(cat)];
    if (n <= 0) continue;
    const double cyc = n * m_.issue_cycles(cat);
    issue_total += cyc;
    bottleneck_pipe = std::max(bottleneck_pipe, cyc);
  }
  bottleneck_pipe += atomic_extra;  // atomics occupy the LSU pipe
  issue_total += atomic_extra;

  b.issue_cycles = issue_total;
  b.latency_cycles = latency_stalls;

  const double tp_bound = b.active_warps * bottleneck_pipe;
  const double serial_bound = issue_total + latency_stalls;
  const double txn_cycles_sm_share =
      m_.dram_txn_cycles() * b.busy_sms;
  b.bandwidth_cycles =
      b.active_warps * txn_per_warp * txn_cycles_sm_share;

  const double wave_cycles =
      std::max({tp_bound, serial_bound, b.bandwidth_cycles});
  b.sm_cycles = b.waves * wave_cycles +
                blocks_per_sm * m_.block_dispatch_overhead;

  // Whole-GPU DRAM bound.
  const double total_warps = b.active_threads / kWarp;
  b.dram_bound_cycles = txn_per_warp * total_warps * m_.dram_txn_cycles();

  out.cycles = std::max(b.sm_cycles, b.dram_bound_cycles) +
               m_.kernel_launch_overhead;
  out.time_ms = m_.cycles_to_ms(out.cycles);

  // ---- whole-grid dynamic-count estimate -------------------------------
  const double warps_grid = total_threads / kWarp;
  for (const arch::OpCategory cat : arch::all_categories()) {
    // per_cat_warp already carries `scale`; undo it for the grid total
    // (scale * active == total for the aggregate).
    const double per_avg_warp =
        per_cat_warp[static_cast<std::size_t>(cat)] / scale;
    out.counts.add_category(cat, per_avg_warp * warps_grid);
  }
  out.counts.reg_traffic = reg_traffic_warp / scale * warps_grid;
  out.counts.branches = branches_warp / scale * warps_grid;
  out.counts.total_issues = 0;
  for (const arch::OpCategory cat : arch::all_categories())
    out.counts.total_issues += out.counts.category(cat);
  out.counts.mem_transactions = txn_per_warp / scale * warps_grid;
  out.counts.dram_transactions = out.counts.mem_transactions;
  return out;
}

}  // namespace gpustatic::sim
