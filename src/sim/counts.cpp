#include "sim/counts.hpp"

#include "common/strings.hpp"

namespace gpustatic::sim {

double Counts::by_class(arch::OpClass c) const {
  double n = 0;
  for (const arch::OpCategory cat : arch::all_categories())
    if (arch::op_class(cat) == c) n += category(cat);
  return n;
}

double Counts::intensity() const {
  const double mem = by_class(arch::OpClass::MEM);
  if (mem <= 0) return 0.0;
  return by_class(arch::OpClass::FLOPS) / mem;
}

Counts& Counts::operator+=(const Counts& o) {
  for (std::size_t i = 0; i < per_category.size(); ++i)
    per_category[i] += o.per_category[i];
  reg_traffic += o.reg_traffic;
  branches += o.branches;
  divergent_branches += o.divergent_branches;
  partial_issues += o.partial_issues;
  total_issues += o.total_issues;
  mem_transactions += o.mem_transactions;
  dram_transactions += o.dram_transactions;
  return *this;
}

std::string Counts::summary() const {
  std::string out;
  out += "FLOPS=" + str::format_trimmed(by_class(arch::OpClass::FLOPS), 0);
  out += " MEM=" + str::format_trimmed(by_class(arch::OpClass::MEM), 0);
  out += " CTRL=" + str::format_trimmed(by_class(arch::OpClass::CTRL), 0);
  out += " REG=" + str::format_trimmed(by_class(arch::OpClass::REG), 0);
  out += " regtraffic=" + str::format_trimmed(reg_traffic, 0);
  out += " intensity=" + str::format_double(intensity(), 2);
  return out;
}

}  // namespace gpustatic::sim
