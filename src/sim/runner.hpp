#pragma once

// Experiment runner: compiles nothing itself; takes a compiled workload
// and executes it with the chosen engine, applying the paper's
// measurement protocol (Sec. IV-A): ten repetitions per variant, times
// sorted, the fifth overall trial reported.
//
// The simulators are deterministic, so repetition noise is synthesized by
// a seeded ~1.5% Gaussian perturbation on the base time — this exercises
// the protocol (sorting, trial selection) honestly without re-running a
// deterministic computation ten times.

#include <cstdint>
#include <string>
#include <vector>

#include "codegen/backend.hpp"
#include "codegen/compiler.hpp"
#include "dsl/ast.hpp"
#include "sim/analytic.hpp"
#include "sim/counts.hpp"
#include "sim/device.hpp"
#include "sim/machine.hpp"
#include "sim/warp_sim.hpp"

namespace gpustatic::sim {

enum class Engine : std::uint8_t {
  Warp,      ///< full SIMT warp simulator (functional + timing)
  Analytic,  ///< fast analytic model (timing + count estimates only)
};

struct Measurement {
  bool valid = true;            ///< false: configuration not launchable
  std::string error;            ///< reason when invalid
  double base_time_ms = 0;      ///< deterministic simulated time
  double trial_time_ms = 0;     ///< 5th of 10 noisy repetitions
  /// Wave geometry of the launch (decompose_waves), reported under both
  /// engines and both analytic modes so `predict`/`profile` can show how
  /// full the last wave is: busiest-SM wave count (max over stages) and
  /// the grid's last-wave SM fullness (min over stages; 1.0 = aligned).
  double waves = 0;
  double tail_sm_fraction = 1;
  /// The synthesized repetition times. Trial selection partitions this
  /// buffer in place (std::nth_element), so after the protocol runs the
  /// multiset of values is meaningful but their order is unspecified.
  std::vector<double> repetitions;
  Counts counts;                ///< summed over stages
  double occupancy = 0;         ///< min over stages
  std::uint32_t regs_per_thread = 0;
  std::vector<StageTiming> stage_timings;  ///< warp engine only
};

struct RunOptions {
  Engine engine = Engine::Analytic;
  int repetitions = 10;
  int report_trial = 5;        ///< 1-based index into sorted times
  double noise_stddev = 0.015; ///< relative measurement noise
  std::uint64_t seed = 42;     ///< noise seed (per-variant salt mixed in)
  /// Codegen backend (BackendRegistry name) the evaluation pipeline
  /// lowers through; SimContext keys its CompilationCache on it.
  std::string backend = codegen::kDefaultBackend;
  /// Analytic-engine configuration (mode classic|wave); ignored by the
  /// warp engine. Part of every request/context identity, like backend.
  AnalyticOptions analytic;
};

/// Apply the paper's measurement protocol to a Measurement whose
/// base_time_ms is already set: synthesize `opts.repetitions` noisy
/// repetitions (seeded by opts.seed mixed with the variant identity) and
/// report the `opts.report_trial`-th smallest as trial_time_ms. Exposed so
/// alternative drivers (e.g. the dynamic profiler) produce measurements
/// identical to run_workload's.
void apply_measurement_protocol(Measurement& m, const RunOptions& opts,
                                const codegen::TuningParams& params);

/// Run all stages of a compiled workload. The Warp engine allocates and
/// mutates device memory (outputs retrievable via run_workload_collect);
/// the Analytic engine touches no memory.
[[nodiscard]] Measurement run_workload(const codegen::LoweredWorkload& lw,
                                       const dsl::WorkloadDesc& desc,
                                       const MachineModel& machine,
                                       const RunOptions& opts = {});

/// As run_workload with Engine::Warp, additionally returning the final
/// device memory (for output verification).
struct CollectResult {
  Measurement measurement;
  DeviceMemory memory;
};
[[nodiscard]] CollectResult run_workload_collect(
    const codegen::LoweredWorkload& lw, const dsl::WorkloadDesc& desc,
    const MachineModel& machine, const RunOptions& opts = {});

}  // namespace gpustatic::sim
