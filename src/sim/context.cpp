#include "sim/context.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace gpustatic::sim {

/// RAII checkout of a pooled Scratch: acquired for one measure() call,
/// returned to the pool on every exit path.
class SimContext::ScratchLease {
 public:
  explicit ScratchLease(SimContext& ctx) : ctx_(ctx) {
    const std::lock_guard<std::mutex> lock(ctx_.pool_mu_);
    if (!ctx_.scratch_pool_.empty()) {
      scratch_ = std::move(ctx_.scratch_pool_.back());
      ctx_.scratch_pool_.pop_back();
    } else {
      scratch_ = std::make_unique<Scratch>();
    }
  }
  ~ScratchLease() {
    const std::lock_guard<std::mutex> lock(ctx_.pool_mu_);
    ctx_.scratch_pool_.push_back(std::move(scratch_));
  }
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  Scratch& operator*() { return *scratch_; }
  Scratch* operator->() { return scratch_.get(); }

 private:
  SimContext& ctx_;
  std::unique_ptr<Scratch> scratch_;
};

SimContext::SimContext(dsl::WorkloadDesc workload, const arch::GpuSpec& gpu,
                       RunOptions opts)
    : cache_(std::make_shared<codegen::CompilationCache>(std::move(workload),
                                                         gpu, opts.backend)),
      opts_(std::move(opts)) {}

SimContext::SimContext(std::shared_ptr<codegen::CompilationCache> cache,
                       RunOptions opts)
    : cache_(std::move(cache)), opts_(std::move(opts)) {
  if (!cache_) throw Error("SimContext: null compilation cache");
  // A shared cache lowers through its own bound backend; a context
  // asking for a different one would silently measure the wrong
  // lowering, so the mismatch is an error here, not a surprise later.
  if (cache_->backend_name() != opts_.backend)
    throw Error("SimContext: run options name backend '" + opts_.backend +
                "' but the shared compilation cache is bound to '" +
                cache_->backend_name() + "'");
}

std::shared_ptr<SimContext::Plan> SimContext::plan_for(
    const codegen::TuningParams& params) {
  // lower() validates the full params and throws exactly like a fresh
  // Compiler would; only successful lowerings reach the plan map.
  std::shared_ptr<const codegen::LoweredWorkload> lowered =
      cache_->lower(params);

  const codegen::CodegenKey key = codegen::CodegenKey::of(params);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = plans_.find(key); it != plans_.end())
      return it->second;
  }
  // Build the analyses outside the lock so concurrent first-touches of
  // distinct keys proceed in parallel; a lost race on the same key just
  // discards this copy (the analyses are deterministic).
  auto plan = std::make_shared<Plan>();
  plan->lowered = std::move(lowered);
  if (opts_.engine == Engine::Warp) {
    plan->cfgs.reserve(plan->lowered->stages.size());
    plan->layouts.reserve(plan->lowered->stages.size());
    for (const codegen::LoweredStage& stage : plan->lowered->stages) {
      plan->cfgs.emplace_back(stage.kernel);
      plan->layouts.emplace_back(stage.kernel);
    }
  }
  const std::lock_guard<std::mutex> lock(mu_);
  return plans_.emplace(key, std::move(plan)).first->second;
}

const MachineModel& SimContext::machine_for(int l1_pref_kb) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = machines_.find(l1_pref_kb);
  if (it != machines_.end()) return it->second;
  return machines_.emplace(l1_pref_kb, MachineModel::from(gpu(), l1_pref_kb))
      .first->second;
}

Measurement SimContext::measure(const codegen::TuningParams& params) {
  const std::shared_ptr<Plan> plan = plan_for(params);
  const MachineModel& machine = machine_for(params.l1_pref_kb);

  // Per-point launch geometry over the shared lowering: smem and domain
  // never depend on the launch shape, TC/BC do.
  const auto launch_at = [&](const codegen::LoweredStage& stage) {
    codegen::LaunchConfig launch = stage.launch;
    launch.grid_blocks = static_cast<std::uint32_t>(params.block_count);
    launch.block_threads =
        static_cast<std::uint32_t>(params.threads_per_block);
    return launch;
  };

  // Mirrors run_impl() in runner.cpp step for step; the parity of the
  // two paths is pinned by tests/sim/context_test.cpp.
  Measurement m;
  m.occupancy = 1.0;
  m.regs_per_thread = plan->lowered->regs_per_thread();
  const auto note_waves = [&m](const WaveGeometry& g) {
    m.waves = std::max(m.waves, g.waves);
    m.tail_sm_fraction = std::min(m.tail_sm_fraction, g.tail_sm_fraction);
  };

  ScratchLease scratch(*this);
  try {
    if (opts_.engine == Engine::Warp) {
      if (scratch->memory == nullptr)
        scratch->memory = std::make_unique<DeviceMemory>(workload());
      else
        scratch->memory->reset();
      WarpSimulator simulator(machine);
      for (std::size_t i = 0; i < plan->lowered->stages.size(); ++i) {
        const codegen::LoweredStage& stage = plan->lowered->stages[i];
        StagePlan sp;
        sp.kernel = &stage.kernel;
        sp.cfg = &plan->cfgs[i];
        sp.layout = &plan->layouts[i];
        sp.regs_per_thread = stage.demand.regs_per_thread;
        sp.launch = launch_at(stage);
        StageTiming t =
            simulator.run_plan(sp, *scratch->memory, scratch->warp);
        m.base_time_ms += t.time_ms;
        m.counts += t.counts;
        m.occupancy = std::min(m.occupancy, t.occ.occupancy);
        note_waves(decompose_waves(*machine.gpu, t.occ, sp.launch,
                                   stage.coarsen));
        m.stage_timings.push_back(std::move(t));
      }
    } else {
      AnalyticModel model(machine, opts_.analytic);
      scratch->block_freq.resize(plan->lowered->stages.size());
      for (std::size_t i = 0; i < plan->lowered->stages.size(); ++i) {
        const codegen::LoweredStage& stage = plan->lowered->stages[i];
        std::vector<double>& freq = scratch->block_freq[i];
        codegen::block_freq_at(stage, params, freq);
        StageInputs in;
        in.kernel = &stage.kernel;
        in.launch = launch_at(stage);
        in.regs_per_thread = stage.demand.regs_per_thread;
        in.coarsen = stage.coarsen;
        in.block_freq = freq.data();
        const AnalyticResult r = model.run_stage(in);
        m.base_time_ms += r.time_ms;
        m.counts += r.counts;
        m.occupancy = std::min(m.occupancy, r.occ.occupancy);
        note_waves(decompose_waves(*machine.gpu, r.occ, in.launch,
                                   in.coarsen));
      }
    }
  } catch (const ConfigError& e) {
    m.valid = false;
    m.error = e.what();
    m.base_time_ms = 0;
    m.trial_time_ms = 0;
    return m;
  }
  apply_measurement_protocol(m, opts_, params);
  return m;
}

}  // namespace gpustatic::sim
