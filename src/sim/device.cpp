#include "sim/device.hpp"

#include "common/error.hpp"

namespace gpustatic::sim {

namespace {
constexpr std::uint64_t kRegionShift = 32;
}

float init_value(dsl::ArrayInit init, std::int64_t index) {
  switch (init) {
    case dsl::ArrayInit::Zero:
      return 0.0f;
    case dsl::ArrayInit::Ones:
      return 1.0f;
    case dsl::ArrayInit::Ramp:
      return static_cast<float>(index % 97) / 97.0f;
  }
  return 0.0f;
}

DeviceMemory::DeviceMemory(const dsl::WorkloadDesc& wl) {
  regions_.reserve(wl.arrays.size());
  for (const dsl::ArrayDecl& a : wl.arrays) {
    Region r;
    r.name = a.name;
    r.init = a.init;
    r.data.resize(static_cast<std::size_t>(a.length));
    regions_.push_back(std::move(r));
  }
  reset();
}

void DeviceMemory::reset() {
  for (Region& r : regions_)
    for (std::size_t i = 0; i < r.data.size(); ++i)
      r.data[i] = init_value(r.init, static_cast<std::int64_t>(i));
}

std::uint64_t DeviceMemory::base(const std::string& array) const {
  for (std::size_t i = 0; i < regions_.size(); ++i)
    if (regions_[i].name == array) return (i + 1) << kRegionShift;
  throw LookupError("DeviceMemory: unknown array '" + array + "'");
}

const DeviceMemory::Region& DeviceMemory::region_for(
    std::uint64_t addr, std::uint64_t* offset) const {
  const std::uint64_t id = addr >> kRegionShift;
  if (id == 0 || id > regions_.size())
    throw Error("DeviceMemory: wild address " + std::to_string(addr));
  const Region& r = regions_[id - 1];
  const std::uint64_t byte_off = addr & 0xffffffffULL;
  if (byte_off % 4 != 0)
    throw Error("DeviceMemory: misaligned float access in '" + r.name + "'");
  if (byte_off / 4 >= r.data.size())
    throw Error("DeviceMemory: out-of-bounds access in '" + r.name +
                "' at element " + std::to_string(byte_off / 4) + " of " +
                std::to_string(r.data.size()));
  *offset = byte_off / 4;
  return r;
}

float DeviceMemory::load(std::uint64_t addr) const {
  std::uint64_t off = 0;
  const Region& r = region_for(addr, &off);
  return r.data[off];
}

void DeviceMemory::store(std::uint64_t addr, float value) {
  std::uint64_t off = 0;
  const Region& r = region_for(addr, &off);
  const_cast<Region&>(r).data[off] = value;
}

void DeviceMemory::atomic_add(std::uint64_t addr, float value) {
  std::uint64_t off = 0;
  const Region& r = region_for(addr, &off);
  const_cast<Region&>(r).data[off] += value;
}

const std::vector<float>& DeviceMemory::host(const std::string& array) const {
  for (const Region& r : regions_)
    if (r.name == array) return r.data;
  throw LookupError("DeviceMemory: unknown array '" + array + "'");
}

std::vector<float>& DeviceMemory::host(const std::string& array) {
  for (Region& r : regions_)
    if (r.name == array) return r.data;
  throw LookupError("DeviceMemory: unknown array '" + array + "'");
}

std::uint64_t DeviceMemory::bytes_allocated() const {
  std::uint64_t n = 0;
  for (const Region& r : regions_) n += r.data.size() * 4;
  return n;
}

}  // namespace gpustatic::sim
