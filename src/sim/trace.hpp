#pragma once

// Execution-trace observer interface for the warp simulator.
//
// The paper's framework (Fig. 2) pairs the static models with
// *dynamic-based* models fed by instruction counts (IC), branch
// frequencies (BF), and memory distance (MD) gathered from real runs.
// Our stand-in for "real runs" is the warp simulator, so it exposes the
// equivalent of a binary-instrumentation hook: an optional TraceSink
// that observes every issued warp-instruction, every resolved branch,
// and every global-memory operation with its physical line addresses.
//
// Tracing is strictly opt-in (nullptr sink = zero overhead beyond a
// branch) and purely observational: sinks cannot alter execution.

#include <cstdint>
#include <vector>

#include "arch/throughput.hpp"
#include "ptx/opcode.hpp"

namespace gpustatic::sim {

/// One issued warp-instruction.
struct IssueEvent {
  std::uint32_t sm = 0;            ///< streaming multiprocessor index
  std::uint32_t block = 0;         ///< grid-wide block index
  std::uint32_t warp = 0;          ///< warp index within the block
  std::int32_t bb = 0;             ///< basic-block index in the kernel
  std::uint32_t inst = 0;          ///< instruction index within the block
  ptx::Opcode op = ptx::Opcode::NOP;
  arch::OpCategory category = arch::OpCategory::FPIns32;
  std::uint32_t active_mask = 0;   ///< lanes live at the reconvergence top
  std::uint32_t exec_mask = 0;     ///< lanes passing the predicate guard
  double issue_cycle = 0;          ///< SM-local issue timestamp
};

/// One resolved (possibly divergent) branch.
struct BranchEvent {
  std::uint32_t sm = 0;
  std::uint32_t block = 0;
  std::uint32_t warp = 0;
  std::int32_t bb = 0;             ///< block whose terminator branched
  std::uint32_t active_mask = 0;
  std::uint32_t taken_mask = 0;
  bool divergent = false;          ///< both taken and fall-through non-empty
};

/// One global-memory warp-operation (LD/ST/ATOM_ADD on MemSpace::Global).
/// `lines` holds the distinct 128B-line ids the warp touched, in lane
/// order of first touch — the reference stream reuse-distance analysis
/// consumes.
struct MemoryEvent {
  std::uint32_t sm = 0;
  std::uint32_t block = 0;
  std::uint32_t warp = 0;
  std::int32_t bb = 0;
  std::uint32_t inst = 0;
  bool is_store = false;
  bool is_atomic = false;
  std::uint32_t lanes = 0;         ///< participating lanes (popcount)
  std::vector<std::uint64_t> lines;
  std::uint32_t l1_hits = 0;       ///< lines served by the per-SM L1
  std::uint32_t l2_hits = 0;       ///< lines served by the shared L2
  std::uint32_t dram = 0;          ///< lines that went to DRAM
};

/// Observer; default implementations ignore everything, so sinks override
/// only what they need.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_issue(const IssueEvent&) {}
  virtual void on_branch(const BranchEvent&) {}
  virtual void on_memory(const MemoryEvent&) {}
};

}  // namespace gpustatic::sim
