#pragma once

// Fast analytic performance model: the wave-based approximation used
// inside large autotuning sweeps, where the warp-level simulator would be
// too slow. Shares every machine constant with the warp simulator; the
// two are cross-validated in tests and in bench/ablation_model.
//
// Model sketch (derivation in DESIGN.md §5.1):
//   active_threads = min(TC*BC, ceil(D / CF))     (grid-stride imbalance)
//   busy_blocks / busy SMs / resident blocks      (work placement)
//   per-active-warp issue, latency, and bandwidth cycles from the static
//   per-block counts x block frequencies produced by the compiler
//   SM cycles = waves * max(issue-throughput bound,
//                           exposed-latency bound,
//                           per-SM bandwidth bound) + overheads
//   GPU cycles = max(SM cycles, whole-GPU DRAM bound) + launch overhead
//
// Dynamic instruction counts come from the same frequencies, so the
// analytic engine also supplies mixes for sweeps without execution.

#include "codegen/compiler.hpp"
#include "occupancy/occupancy.hpp"
#include "sim/counts.hpp"
#include "sim/machine.hpp"

namespace gpustatic::sim {

struct AnalyticBreakdown {
  double active_threads = 0;
  double busy_blocks = 0;
  double busy_sms = 0;
  double resident_blocks = 0;
  double active_warps = 0;   ///< per busy SM
  double waves = 1;
  double issue_cycles = 0;   ///< per active warp
  double latency_cycles = 0; ///< per active warp
  double bandwidth_cycles = 0;
  double sm_cycles = 0;
  double dram_bound_cycles = 0;
};

struct AnalyticResult {
  double cycles = 0;
  double time_ms = 0;
  Counts counts;             ///< whole-grid dynamic estimate
  occupancy::Result occ;
  AnalyticBreakdown breakdown;
};

/// Everything the analytic model needs for one point: the (cacheable)
/// kernel plus the point-specific launch geometry and block frequencies.
/// Lets the hot path reuse a memoized lowering with rescaled
/// frequencies instead of carrying a full per-point LoweredStage.
struct StageInputs {
  const ptx::Kernel* kernel = nullptr;
  codegen::LaunchConfig launch;
  std::uint32_t regs_per_thread = 0;
  int coarsen = 1;
  const double* block_freq = nullptr;  ///< one entry per kernel block

  [[nodiscard]] static StageInputs of(const codegen::LoweredStage& stage) {
    return StageInputs{&stage.kernel, stage.launch,
                       stage.demand.regs_per_thread, stage.coarsen,
                       stage.block_freq.data()};
  }
};

class AnalyticModel {
 public:
  explicit AnalyticModel(const MachineModel& machine) : m_(machine) {}

  /// Estimate one stage. Throws ConfigError when occupancy is zero.
  [[nodiscard]] AnalyticResult run_stage(
      const codegen::LoweredStage& stage) const {
    return run_stage(StageInputs::of(stage));
  }
  [[nodiscard]] AnalyticResult run_stage(const StageInputs& in) const;

 private:
  const MachineModel& m_;
};

}  // namespace gpustatic::sim
