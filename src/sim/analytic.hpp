#pragma once

// Fast analytic performance model: the wave-based approximation used
// inside large autotuning sweeps, where the warp-level simulator would be
// too slow. Shares every machine constant with the warp simulator; the
// two are cross-validated in tests and in bench/ablation_model.
//
// Model sketch (derivation in DESIGN.md §5.1):
//   active_threads = min(TC*BC, ceil(D / CF))     (grid-stride imbalance)
//   busy_blocks / busy SMs / resident blocks      (work placement)
//   per-active-warp issue, latency, and bandwidth cycles from the static
//   per-block counts x block frequencies produced by the compiler
//   SM cycles = waves * max(issue-throughput bound,
//                           exposed-latency bound,
//                           per-SM bandwidth bound) + overheads
//   GPU cycles = max(SM cycles, whole-GPU DRAM bound) + launch overhead
//
// The model runs in one of two selectable modes (AnalyticOptions):
//
//   classic  every wave is scored as if it were full — the paper's Eq. 6
//            regime, byte-identical to the pre-mode implementation;
//   wave     the launch is split into whole resident waves plus a
//            modeled tail wave whose throughput and bandwidth bounds are
//            recomputed for the tail's reduced warp count, and whose
//            latency chain is exposed in proportion to the share of a
//            wave it occupies (a serial-bound wave retires its blocks
//            together, exposing the whole chain; a throughput-bound
//            wave retires them staggered, hiding most of it). On
//            wave-aligned launches the two modes agree exactly.
//
// Dynamic instruction counts come from the same frequencies, so the
// analytic engine also supplies mixes for sweeps without execution.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "codegen/compiler.hpp"
#include "occupancy/occupancy.hpp"
#include "sim/counts.hpp"
#include "sim/machine.hpp"

namespace gpustatic::sim {

/// Which tail treatment the analytic engine applies (sketch above).
enum class AnalyticMode : std::uint8_t {
  Classic,  ///< full-wave scoring (Eq. 6 as published)
  Wave,     ///< full waves + a reduced-parallelism tail wave
};

/// The analytic engine's typed configuration surface. Threaded through
/// every evaluation driver the same way RunOptions::backend is:
/// RunOptions -> SimContext/AnalyticEvaluator -> hybrid stage 1 ->
/// core::TuneRequest -> serve protocol -> CLI --analytic-mode.
struct AnalyticOptions {
  AnalyticMode mode = AnalyticMode::Classic;

  friend auto operator<=>(const AnalyticOptions&,
                          const AnalyticOptions&) = default;
};

/// Canonical wire/CLI name of a mode ("classic" / "wave").
[[nodiscard]] std::string_view analytic_mode_name(AnalyticMode mode);
/// Inverse of analytic_mode_name; nullopt on unknown names.
[[nodiscard]] std::optional<AnalyticMode> parse_analytic_mode(
    std::string_view name);
/// Every valid mode name, for error messages and usage text.
[[nodiscard]] const std::vector<std::string>& analytic_mode_names();

/// Wave/tail geometry of one launch: how the busy blocks pack into
/// resident waves. Pure occupancy + launch arithmetic, shared by the
/// analytic engine, measurement reporting, and the ML feature extractor
/// so none of them can drift from the timing model. When the
/// configuration is not resident (occ.active_blocks == 0) the default-
/// constructed geometry is returned.
struct WaveGeometry {
  double active_threads = 0;
  double busy_blocks = 0;
  double busy_sms = 0;
  double blocks_per_sm = 0;    ///< the busiest SM's block share (ceil)
  double resident_blocks = 0;  ///< concurrently resident per busy SM
  double warps_per_block = 0;  ///< warps of one busy block
  double active_warps = 0;     ///< resident warps on a busy SM (full wave)
  double waves = 1;            ///< blocks_per_sm / resident (fractional)
  double full_waves = 1;       ///< whole resident waves on the busiest SM
  double tail_blocks = 0;      ///< busiest SM's blocks past the full waves
  /// How full the grid's LAST wave is: the fraction of busy SMs that
  /// still have a block once the full GPU-wide waves have drained
  /// (blocks land round-robin). 1.0 = wave-aligned launch.
  double tail_sm_fraction = 1;
};

[[nodiscard]] WaveGeometry decompose_waves(const arch::GpuSpec& gpu,
                                           const occupancy::Result& occ,
                                           const codegen::LaunchConfig& launch,
                                           int coarsen);

struct AnalyticBreakdown {
  double active_threads = 0;
  double busy_blocks = 0;
  double busy_sms = 0;
  double resident_blocks = 0;
  double active_warps = 0;   ///< per busy SM
  double waves = 1;
  // Per-wave decomposition (filled in both modes; the tail-wave cycle
  // fields are only nonzero when wave mode actually modeled a tail).
  double full_waves = 1;        ///< whole resident waves (busiest SM)
  double tail_blocks = 0;       ///< blocks in the busiest SM's tail wave
  double tail_active_warps = 0; ///< resident warps during the tail wave
  double tail_wave_cycles = 0;  ///< modeled tail-wave cycles (wave mode)
  double tail_sm_fraction = 1;  ///< grid's last-wave SM fullness
  double issue_cycles = 0;   ///< per active warp
  double latency_cycles = 0; ///< per active warp
  double bandwidth_cycles = 0;
  double sm_cycles = 0;
  double dram_bound_cycles = 0;
};

struct AnalyticResult {
  double cycles = 0;
  double time_ms = 0;
  Counts counts;             ///< whole-grid dynamic estimate
  occupancy::Result occ;
  AnalyticBreakdown breakdown;
};

/// Everything the analytic model needs for one point: the (cacheable)
/// kernel plus the point-specific launch geometry and block frequencies.
/// Lets the hot path reuse a memoized lowering with rescaled
/// frequencies instead of carrying a full per-point LoweredStage.
struct StageInputs {
  const ptx::Kernel* kernel = nullptr;
  codegen::LaunchConfig launch;
  std::uint32_t regs_per_thread = 0;
  int coarsen = 1;
  const double* block_freq = nullptr;  ///< one entry per kernel block

  [[nodiscard]] static StageInputs of(const codegen::LoweredStage& stage) {
    return StageInputs{&stage.kernel, stage.launch,
                       stage.demand.regs_per_thread, stage.coarsen,
                       stage.block_freq.data()};
  }
};

class AnalyticModel {
 public:
  explicit AnalyticModel(const MachineModel& machine,
                         AnalyticOptions options = {})
      : m_(machine), opts_(options) {}

  /// Estimate one stage. Throws ConfigError when occupancy is zero.
  [[nodiscard]] AnalyticResult run_stage(
      const codegen::LoweredStage& stage) const {
    return run_stage(StageInputs::of(stage));
  }
  [[nodiscard]] AnalyticResult run_stage(const StageInputs& in) const;

  [[nodiscard]] const AnalyticOptions& options() const { return opts_; }

 private:
  const MachineModel& m_;
  AnalyticOptions opts_;
};

}  // namespace gpustatic::sim
