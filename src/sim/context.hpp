#pragma once

// SimContext: the compile-once, allocation-free evaluation pipeline for
// one (workload, gpu, run-options) triple. Search strategies evaluate
// thousands of points that differ only in a few parameters; a context
// makes the per-point cost only what actually varies with the point:
//
//   * lowering is memoized in a shared codegen::CompilationCache (one
//     compiler run per codegen key, not per point);
//   * per-kernel CFGs and register layouts are built once per cached
//     lowering and reused by every warp-simulator run;
//   * MachineModels are memoized per L1 preference;
//   * warp register files/scoreboards, SIMT stacks, tag caches, device
//     memory, and block-frequency buffers live in pooled Scratch objects
//     that are recycled across measurements (and across the threads of
//     a parallel batch — measure() is thread-safe).
//
// Measurements are byte-identical to compiling and running each point
// from scratch (sim::run_workload); the parity is pinned in tests.

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "codegen/cache.hpp"
#include "sim/runner.hpp"
#include "sim/warp_sim.hpp"

namespace gpustatic::sim {

class SimContext {
 public:
  SimContext(dsl::WorkloadDesc workload, const arch::GpuSpec& gpu,
             RunOptions opts = {});
  /// Share an existing compilation cache (its workload/gpu are used).
  explicit SimContext(std::shared_ptr<codegen::CompilationCache> cache,
                      RunOptions opts = {});

  SimContext(const SimContext&) = delete;
  SimContext& operator=(const SimContext&) = delete;

  /// Measure one variant under the context's engine and trial protocol.
  /// Identical in every field to
  ///   run_workload(Compiler(gpu, params).compile(workload), ...)
  /// including the error paths: throws ConfigError/Error exactly where
  /// a fresh compile would, and returns an invalid Measurement when the
  /// configuration cannot launch. Thread-safe.
  [[nodiscard]] Measurement measure(const codegen::TuningParams& params);

  [[nodiscard]] codegen::CompilationCache& compilation_cache() {
    return *cache_;
  }
  [[nodiscard]] std::shared_ptr<codegen::CompilationCache>
  compilation_cache_ptr() const {
    return cache_;
  }
  [[nodiscard]] const dsl::WorkloadDesc& workload() const {
    return cache_->workload();
  }
  [[nodiscard]] const arch::GpuSpec& gpu() const { return cache_->gpu(); }
  [[nodiscard]] const RunOptions& options() const { return opts_; }

 private:
  /// Canonical lowering plus the per-kernel analyses the warp engine
  /// needs, built once per codegen key.
  struct Plan {
    std::shared_ptr<const codegen::LoweredWorkload> lowered;
    std::vector<ptx::Cfg> cfgs;        ///< per stage (warp engine only)
    std::vector<RegLayout> layouts;    ///< per stage (warp engine only)
  };
  /// Reusable per-measurement state, pooled so concurrent measure()
  /// calls never share and sequential calls never reallocate.
  struct Scratch {
    WarpScratch warp;
    std::unique_ptr<DeviceMemory> memory;          ///< warp engine
    std::vector<std::vector<double>> block_freq;   ///< analytic engine
  };
  class ScratchLease;

  std::shared_ptr<Plan> plan_for(const codegen::TuningParams& params);
  const MachineModel& machine_for(int l1_pref_kb);

  std::shared_ptr<codegen::CompilationCache> cache_;
  RunOptions opts_;
  std::mutex mu_;  ///< guards plans_ and machines_
  std::map<codegen::CodegenKey, std::shared_ptr<Plan>> plans_;
  std::map<int, MachineModel> machines_;  ///< keyed by l1_pref_kb
  std::mutex pool_mu_;
  std::vector<std::unique_ptr<Scratch>> scratch_pool_;
};

}  // namespace gpustatic::sim
