#include "sim/warp_sim.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "ptx/cfg.hpp"

namespace gpustatic::sim {

using namespace ptx;  // NOLINT

namespace {

constexpr std::uint32_t kWarpSize = 32;
constexpr std::uint32_t kFullMask = 0xffffffffu;

/// Direct-mapped cache tag model; addresses are device byte addresses.
/// reset() re-initializes in place (the tag array's capacity is reused
/// between runs), and power-of-two line/slot geometry is strength-
/// reduced to shifts/masks — both divisions are exact for unsigned
/// operands, so hit/miss behavior is unchanged.
class TagCache {
 public:
  void reset(std::uint64_t bytes, std::uint32_t line) {
    line_ = line;
    line_shift_ =
        std::has_single_bit(line) ? std::countr_zero(line) : -1;
    const auto slots =
        static_cast<std::size_t>(std::max<std::uint64_t>(1, bytes / line));
    slot_pow2_ = std::has_single_bit(slots);
    slot_mask_ = slots - 1;
    tags_.assign(slots, ~0ull);
  }

  /// Returns true on hit; installs the line either way.
  bool access(std::uint64_t addr) {
    const std::uint64_t line_id =
        line_shift_ >= 0 ? addr >> line_shift_ : addr / line_;
    const std::size_t slot = slot_pow2_
                                 ? static_cast<std::size_t>(line_id) &
                                       slot_mask_
                                 : line_id % tags_.size();
    const bool hit = tags_[slot] == line_id;
    tags_[slot] = line_id;
    return hit;
  }

 private:
  std::uint32_t line_ = 128;
  int line_shift_ = 7;
  bool slot_pow2_ = true;
  std::size_t slot_mask_ = 0;
  std::vector<std::uint64_t> tags_;
};

struct StackEntry {
  std::int32_t pc = 0;       ///< block index
  std::uint32_t mask = 0;    ///< active lanes
  std::int32_t reconv = -1;  ///< block index where this entry rejoins
};

/// Register file and scoreboard live in the scratch arenas (one fixed-
/// size slot per warp, carved at activation), so activating a warp
/// recycles storage instead of allocating two vectors.
struct Warp {
  std::uint32_t block = 0;       ///< block index within the grid
  std::uint32_t warp_in_block = 0;
  std::vector<StackEntry> stack;
  std::uint32_t cur = 0;         ///< instruction index within top block
  bool done = false;

  double ready_at = 0;               ///< earliest next issue
  double last_issue = 0;
  std::size_t ready_base = 0;  ///< scoreboard slot in ready_arena
  std::size_t reg_base = 0;    ///< lane-major reg slot in reg_arena
};

}  // namespace

struct WarpScratch::Impl {
  TagCache l1, l2;
  std::vector<std::uint64_t> param_values;
  std::vector<std::uint32_t> blocks;
  std::vector<std::uint32_t> block_warps_left;
  std::vector<Warp> warps;        ///< slots reused; stacks keep capacity
  std::size_t warps_used = 0;     ///< live prefix of `warps` this SM
  std::vector<double> ready_arena;
  std::vector<std::uint64_t> reg_arena;
  std::vector<std::uint64_t> seg_keys;    ///< distinct lines, lane order
  std::vector<std::uint64_t> seg_sorted;  ///< ascending replay order
};

WarpScratch::WarpScratch() : impl_(std::make_unique<Impl>()) {}
WarpScratch::~WarpScratch() = default;
WarpScratch::WarpScratch(WarpScratch&&) noexcept = default;
WarpScratch& WarpScratch::operator=(WarpScratch&&) noexcept = default;

StageTiming WarpSimulator::run_stage(const codegen::LoweredStage& stage,
                                     DeviceMemory& mem, TraceSink* sink) {
  const Cfg cfg(stage.kernel);
  const RegLayout layout(stage.kernel);
  WarpScratch scratch;
  StagePlan plan;
  plan.kernel = &stage.kernel;
  plan.cfg = &cfg;
  plan.layout = &layout;
  plan.regs_per_thread = stage.demand.regs_per_thread;
  plan.launch = stage.launch;
  return run_plan(plan, mem, scratch, sink);
}

StageTiming WarpSimulator::run_plan(const StagePlan& plan, DeviceMemory& mem,
                                    WarpScratch& scratch, TraceSink* sink) {
  const Kernel& k = *plan.kernel;
  const Cfg& cfg = *plan.cfg;
  const RegLayout& layout = *plan.layout;
  WarpScratch::Impl& s = *scratch.impl_;
  const arch::GpuSpec& gpu = *m_.gpu;
  const std::uint32_t tc = plan.launch.block_threads;
  const std::uint32_t bc = plan.launch.grid_blocks;
  if (tc % kWarpSize != 0)
    throw ConfigError("warp simulator requires TC to be a warp multiple");

  StageTiming out;
  out.occ = occupancy::calculate(
      gpu, occupancy::KernelParams{tc, plan.regs_per_thread,
                                   plan.launch.smem_bytes});
  if (out.occ.active_blocks == 0)
    throw ConfigError("configuration cannot be resident on " + gpu.name);

  const std::uint32_t warps_per_block = tc / kWarpSize;
  const auto num_blocks = static_cast<std::uint32_t>(bc);
  const std::uint32_t num_sms = gpu.multiprocessors;
  const std::uint32_t busy_sms = std::min(num_sms, num_blocks);

  const std::uint32_t line_bytes = m_.line_bytes;
  const int line_shift = std::has_single_bit(line_bytes)
                             ? std::countr_zero(line_bytes)
                             : -1;
  const auto line_of = [&](std::uint64_t addr) {
    return line_shift >= 0 ? addr >> line_shift : addr / line_bytes;
  };

  // Parameter values shared by every thread.
  s.param_values.assign(k.params.size(), 0);
  for (std::size_t p = 0; p < k.params.size(); ++p) {
    if (k.params[p].is_pointer)
      s.param_values[p] = mem.base(k.params[p].name);
    else
      s.param_values[p] = static_cast<std::uint64_t>(plan.launch.domain);
  }

  // Per-SM DRAM bandwidth share.
  const double txn_cycles_sm =
      m_.dram_txn_cycles() * static_cast<double>(busy_sms);
  const double l2_txn_cycles_sm =
      m_.l2_txn_cycles() * static_cast<double>(busy_sms);

  s.l2.reset(m_.l2_bytes, line_bytes);  // shared across SMs

  Counts totals;
  double gpu_cycles = 0;

  for (std::uint32_t sm = 0; sm < busy_sms; ++sm) {
    // Blocks of this SM.
    s.blocks.clear();
    for (std::uint32_t b = sm; b < num_blocks; b += num_sms)
      s.blocks.push_back(b);
    if (s.blocks.empty()) continue;

    s.l1.reset(m_.l1_bytes, line_bytes);
    std::array<double, arch::kNumOpCategories> pipe_free{};
    double sm_dram_free = 0;
    double sm_clock_end = 0;

    s.warps_used = 0;
    std::size_t next_block = 0;
    s.block_warps_left.assign(s.blocks.size(), 0);

    const std::size_t ready_slot = layout.total;
    const std::size_t reg_slot =
        static_cast<std::size_t>(layout.total) * kWarpSize;

    auto activate_block = [&](double at) {
      const std::uint32_t b = s.blocks[next_block];
      s.block_warps_left[next_block] = warps_per_block;
      for (std::uint32_t w = 0; w < warps_per_block; ++w) {
        if (s.warps_used == s.warps.size()) s.warps.emplace_back();
        Warp& warp = s.warps[s.warps_used];
        warp.block = b;
        warp.warp_in_block = w;
        warp.stack.clear();
        warp.stack.push_back(
            StackEntry{0, kFullMask, static_cast<std::int32_t>(
                                         k.blocks.size())});
        warp.cur = 0;
        warp.done = false;
        warp.ready_at = at + m_.block_dispatch_overhead;
        warp.last_issue = 0;
        warp.ready_base = s.warps_used * ready_slot;
        warp.reg_base = s.warps_used * reg_slot;
        if (s.ready_arena.size() < warp.ready_base + ready_slot)
          s.ready_arena.resize(warp.ready_base + ready_slot);
        if (s.reg_arena.size() < warp.reg_base + reg_slot)
          s.reg_arena.resize(warp.reg_base + reg_slot);
        std::fill_n(s.ready_arena.begin() +
                        static_cast<std::ptrdiff_t>(warp.ready_base),
                    ready_slot, 0.0);
        std::fill_n(s.reg_arena.begin() +
                        static_cast<std::ptrdiff_t>(warp.reg_base),
                    reg_slot, std::uint64_t{0});
        ++s.warps_used;
      }
      ++next_block;
    };

    const std::uint32_t max_resident =
        std::min<std::uint32_t>(out.occ.active_blocks,
                                static_cast<std::uint32_t>(
                                    s.blocks.size()));
    for (std::uint32_t i = 0; i < max_resident; ++i) activate_block(0.0);

    // ---- helpers bound to this SM's state ------------------------------
    auto ready_of = [&](const Warp& w, std::uint32_t id) -> double& {
      return s.ready_arena[w.ready_base + id];
    };
    auto reg_value = [&](const Warp& w, const Reg& r,
                         std::uint32_t lane) -> std::uint64_t {
      return s.reg_arena[w.reg_base +
                         static_cast<std::size_t>(layout.id(r)) * kWarpSize +
                         lane];
    };
    auto set_reg = [&](Warp& w, const Reg& r, std::uint32_t lane,
                       std::uint64_t v) {
      s.reg_arena[w.reg_base +
                  static_cast<std::size_t>(layout.id(r)) * kWarpSize +
                  lane] = v;
    };

    auto operand_i64 = [&](const Warp& w, const Operand& o,
                           std::uint32_t lane) -> std::int64_t {
      switch (o.kind()) {
        case Operand::Kind::Reg: {
          const std::uint64_t raw = reg_value(w, o.reg(), lane);
          if (o.reg().type == Type::I32)
            return static_cast<std::int32_t>(raw & 0xffffffffu);
          return static_cast<std::int64_t>(raw);
        }
        case Operand::Kind::ImmI:
          return o.imm_i();
        case Operand::Kind::Special: {
          const std::uint32_t tid =
              w.warp_in_block * kWarpSize + lane;
          switch (o.special()) {
            case SpecialReg::TidX: return tid;
            case SpecialReg::NTidX: return tc;
            case SpecialReg::CTAidX: return w.block;
            case SpecialReg::NCTAidX: return bc;
            case SpecialReg::LaneId: return lane;
          }
          return 0;
        }
        case Operand::Kind::Sym:
          return static_cast<std::int64_t>(s.param_values[o.sym()]);
        default:
          throw Error("warp sim: bad integer operand");
      }
    };

    auto operand_f = [&](const Warp& w, const Operand& o,
                         std::uint32_t lane) -> double {
      switch (o.kind()) {
        case Operand::Kind::Reg: {
          const std::uint64_t raw = reg_value(w, o.reg(), lane);
          if (o.reg().type == Type::F32) {
            float f;
            const auto bits = static_cast<std::uint32_t>(raw & 0xffffffffu);
            std::memcpy(&f, &bits, sizeof(f));
            return f;
          }
          double d;
          std::memcpy(&d, &raw, sizeof(d));
          return d;
        }
        case Operand::Kind::ImmF:
          return o.imm_f();
        default:
          return static_cast<double>(operand_i64(w, o, lane));
      }
    };

    auto write_typed = [&](Warp& w, const Reg& r, std::uint32_t lane,
                           double fval, std::int64_t ival, bool is_float) {
      switch (r.type) {
        case Type::Pred:
          set_reg(w, r, lane, ival != 0 ? 1 : 0);
          return;
        case Type::I32:
          set_reg(w, r, lane,
                  static_cast<std::uint32_t>(
                      static_cast<std::int32_t>(is_float
                                                    ? static_cast<std::int64_t>(fval)
                                                    : ival)));
          return;
        case Type::I64:
          set_reg(w, r, lane,
                  static_cast<std::uint64_t>(is_float
                                                 ? static_cast<std::int64_t>(fval)
                                                 : ival));
          return;
        case Type::F32: {
          const float f = static_cast<float>(fval);
          std::uint32_t bits;
          std::memcpy(&bits, &f, sizeof(bits));
          set_reg(w, r, lane, bits);
          return;
        }
        case Type::F64: {
          std::uint64_t bits;
          std::memcpy(&bits, &fval, sizeof(bits));
          set_reg(w, r, lane, bits);
          return;
        }
      }
    };

    auto guard_pass = [&](const Warp& w, const Instruction& ins,
                          std::uint32_t lane) {
      if (!ins.guard) return true;
      const bool v = reg_value(w, ins.guard->pred, lane) != 0;
      return ins.guard->negated ? !v : v;
    };

    // ---- main issue loop ------------------------------------------------
    auto all_done = [&] {
      if (next_block < s.blocks.size()) return false;
      for (std::size_t wi = 0; wi < s.warps_used; ++wi)
        if (!s.warps[wi].done) return false;
      return true;
    };

    while (!all_done()) {
      // Pick the warp that can issue earliest.
      double best_t = std::numeric_limits<double>::infinity();
      std::size_t best_w = static_cast<std::size_t>(-1);
      for (std::size_t wi = 0; wi < s.warps_used; ++wi) {
        Warp& w = s.warps[wi];
        if (w.done) continue;
        const StackEntry& top = w.stack.back();
        const Instruction& ins = k.blocks[top.pc].body[w.cur];
        double t = w.ready_at;
        if (ins.guard)
          t = std::max(t, ready_of(w, layout.id(ins.guard->pred)));
        for (const Operand& src : ins.srcs)
          if (src.is_reg())
            t = std::max(t, ready_of(w, layout.id(src.reg())));
        const auto cat = static_cast<std::size_t>(ins.category());
        t = std::max(t, pipe_free[cat]);
        if (t < best_t) {
          best_t = t;
          best_w = wi;
        }
      }
      if (best_w == static_cast<std::size_t>(-1))
        throw Error("warp sim: deadlock (no issuable warp)");

      Warp& w = s.warps[best_w];
      StackEntry& top = w.stack.back();
      const Instruction& ins = k.blocks[top.pc].body[w.cur];
      const arch::OpCategory cat = ins.category();
      const double t_issue = best_t;

      pipe_free[static_cast<std::size_t>(cat)] =
          t_issue + m_.issue_cycles(cat);
      w.ready_at = t_issue + 1.0;
      w.last_issue = t_issue;
      sm_clock_end = std::max(sm_clock_end, t_issue);

      // Active lanes under guard.
      std::uint32_t exec_mask = 0;
      for (std::uint32_t lane = 0; lane < kWarpSize; ++lane)
        if ((top.mask >> lane & 1u) && guard_pass(w, ins, lane))
          exec_mask |= 1u << lane;

      // Bookkeeping.
      totals.add_category(cat, 1);
      totals.reg_traffic += ins.reg_reads() + ins.reg_writes();
      totals.total_issues += 1;
      if (top.mask != kFullMask) totals.partial_issues += 1;

      if (sink != nullptr) {
        IssueEvent ev;
        ev.sm = sm;
        ev.block = w.block;
        ev.warp = w.warp_in_block;
        ev.bb = top.pc;
        ev.inst = w.cur;
        ev.op = ins.op;
        ev.category = cat;
        ev.active_mask = top.mask;
        ev.exec_mask = exec_mask;
        ev.issue_cycle = t_issue;
        sink->on_issue(ev);
      }
      // Filled in by the LD/ST/ATOM handlers below and emitted afterwards.
      MemoryEvent mem_ev;
      bool emit_mem = false;
      if (sink != nullptr &&
          (ins.op == Opcode::LD || ins.op == Opcode::ST ||
           ins.op == Opcode::ATOM_ADD) &&
          ins.space == MemSpace::Global) {
        mem_ev.sm = sm;
        mem_ev.block = w.block;
        mem_ev.warp = w.warp_in_block;
        mem_ev.bb = top.pc;
        mem_ev.inst = w.cur;
        mem_ev.is_store = ins.op == Opcode::ST;
        mem_ev.is_atomic = ins.op == Opcode::ATOM_ADD;
        mem_ev.lanes = static_cast<std::uint32_t>(
            std::popcount(exec_mask));
        emit_mem = true;
      }

      // Distinct-line gathering shared by the LD/ST/ATOM handlers:
      // seg_keys dedupes in lane order (which fixes the trace event's
      // line order), seg_sorted replays the lines ascending — exactly
      // the old per-instruction std::set's iteration order — without
      // allocating.
      auto gather_line = [&](std::uint64_t addr) -> bool {
        const std::uint64_t line_id = line_of(addr);
        if (std::find(s.seg_keys.begin(), s.seg_keys.end(), line_id) !=
            s.seg_keys.end())
          return false;
        s.seg_keys.push_back(line_id);
        if (emit_mem) mem_ev.lines.push_back(line_id);
        return true;
      };
      auto sorted_lines = [&]() -> const std::vector<std::uint64_t>& {
        s.seg_sorted.assign(s.seg_keys.begin(), s.seg_keys.end());
        std::sort(s.seg_sorted.begin(), s.seg_sorted.end());
        return s.seg_sorted;
      };

      double dst_ready = t_issue + m_.result_latency(cat);

      switch (ins.op) {
        case Opcode::LD: {
          if (ins.space == MemSpace::Param) {
            for (std::uint32_t lane = 0; lane < kWarpSize; ++lane)
              if (exec_mask >> lane & 1u) {
                const std::uint64_t v = s.param_values[ins.srcs[0].sym()];
                if (ins.dst->type == Type::I32)
                  set_reg(w, *ins.dst, lane, v & 0xffffffffu);
                else
                  set_reg(w, *ins.dst, lane, v);
              }
            dst_ready = t_issue + m_.l1_latency;  // constant cache
            break;
          }
          // Gather segments and execute functionally.
          s.seg_keys.clear();
          for (std::uint32_t lane = 0; lane < kWarpSize; ++lane) {
            if (!(exec_mask >> lane & 1u)) continue;
            const std::uint64_t addr = static_cast<std::uint64_t>(
                operand_i64(w, ins.srcs[0], lane) + ins.offset);
            gather_line(addr);
            const float v = mem.load(addr);
            std::uint32_t bits;
            std::memcpy(&bits, &v, sizeof(bits));
            set_reg(w, *ins.dst, lane, bits);
          }
          double data_ready = t_issue + m_.l1_latency;
          for (const std::uint64_t seg : sorted_lines()) {
            const std::uint64_t addr = seg * line_bytes;
            if (s.l1.access(addr)) {  // L1 hit
              mem_ev.l1_hits += 1;
              continue;
            }
            totals.mem_transactions += 1;
            if (s.l2.access(addr)) {
              mem_ev.l2_hits += 1;
              sm_dram_free =
                  std::max(sm_dram_free, t_issue) + l2_txn_cycles_sm;
              data_ready =
                  std::max(data_ready, t_issue + m_.l2_latency);
            } else {
              mem_ev.dram += 1;
              totals.dram_transactions += 1;
              sm_dram_free = std::max(sm_dram_free, t_issue) + txn_cycles_sm;
              data_ready = std::max(data_ready,
                                    sm_dram_free + m_.dram_latency);
            }
          }
          dst_ready = data_ready;
          break;
        }
        case Opcode::ST: {
          s.seg_keys.clear();
          for (std::uint32_t lane = 0; lane < kWarpSize; ++lane) {
            if (!(exec_mask >> lane & 1u)) continue;
            const std::uint64_t addr = static_cast<std::uint64_t>(
                operand_i64(w, ins.srcs[0], lane) + ins.offset);
            gather_line(addr);
            mem.store(addr, static_cast<float>(operand_f(w, ins.srcs[1],
                                                         lane)));
          }
          // Write-through traffic; does not block the warp.
          totals.mem_transactions +=
              static_cast<double>(s.seg_keys.size());
          for (const std::uint64_t seg : sorted_lines()) {
            if (s.l2.access(seg * line_bytes)) {
              mem_ev.l2_hits += 1;
            } else {
              mem_ev.dram += 1;
              totals.dram_transactions += 1;
            }
            sm_dram_free = std::max(sm_dram_free, t_issue) + l2_txn_cycles_sm;
          }
          break;
        }
        case Opcode::ATOM_ADD: {
          // Serialized per lane at the memory partition.
          std::uint32_t lanes = 0;
          s.seg_keys.clear();
          for (std::uint32_t lane = 0; lane < kWarpSize; ++lane) {
            if (!(exec_mask >> lane & 1u)) continue;
            const std::uint64_t addr = static_cast<std::uint64_t>(
                operand_i64(w, ins.srcs[0], lane) + ins.offset);
            mem.atomic_add(addr, static_cast<float>(
                                     operand_f(w, ins.srcs[1], lane)));
            gather_line(addr);
            ++lanes;
          }
          // Each participating lane's update is serialized at the
          // memory partition.
          pipe_free[static_cast<std::size_t>(cat)] +=
              m_.atomic_conflict_cycles * static_cast<double>(lanes);
          totals.mem_transactions +=
              static_cast<double>(s.seg_keys.size());
          for (const std::uint64_t seg : sorted_lines()) {
            if (s.l2.access(seg * line_bytes)) {
              mem_ev.l2_hits += 1;
            } else {
              mem_ev.dram += 1;
              totals.dram_transactions += 1;
            }
            sm_dram_free = std::max(sm_dram_free, t_issue) + l2_txn_cycles_sm;
          }
          break;
        }
        case Opcode::BRA:
        case Opcode::EXIT:
        case Opcode::BAR:
        case Opcode::NOP:
          break;  // handled by control transfer below
        case Opcode::SETP: {
          for (std::uint32_t lane = 0; lane < kWarpSize; ++lane) {
            if (!(exec_mask >> lane & 1u)) continue;
            bool r = false;
            if (ins.type == Type::F32 || ins.type == Type::F64) {
              const double a = operand_f(w, ins.srcs[0], lane);
              const double b = operand_f(w, ins.srcs[1], lane);
              switch (ins.cmp) {
                case CmpOp::EQ: r = a == b; break;
                case CmpOp::NE: r = a != b; break;
                case CmpOp::LT: r = a < b; break;
                case CmpOp::LE: r = a <= b; break;
                case CmpOp::GT: r = a > b; break;
                case CmpOp::GE: r = a >= b; break;
              }
            } else {
              const std::int64_t a = operand_i64(w, ins.srcs[0], lane);
              const std::int64_t b = operand_i64(w, ins.srcs[1], lane);
              switch (ins.cmp) {
                case CmpOp::EQ: r = a == b; break;
                case CmpOp::NE: r = a != b; break;
                case CmpOp::LT: r = a < b; break;
                case CmpOp::LE: r = a <= b; break;
                case CmpOp::GT: r = a > b; break;
                case CmpOp::GE: r = a >= b; break;
              }
            }
            set_reg(w, *ins.dst, lane, r ? 1 : 0);
          }
          break;
        }
        default: {
          // Register-computing instructions.
          for (std::uint32_t lane = 0; lane < kWarpSize; ++lane) {
            if (!(exec_mask >> lane & 1u)) continue;
            const bool is_float_op =
                ins.type == Type::F32 || ins.type == Type::F64;
            if (is_float_op) {
              double v = 0;
              auto A = [&] { return operand_f(w, ins.srcs[0], lane); };
              auto B = [&] { return operand_f(w, ins.srcs[1], lane); };
              auto C = [&] { return operand_f(w, ins.srcs[2], lane); };
              switch (ins.op) {
                case Opcode::MOV: v = A(); break;
                case Opcode::SELP:
                  v = operand_i64(w, ins.srcs[2], lane) != 0 ? A() : B();
                  break;
                case Opcode::FADD: v = A() + B(); break;
                case Opcode::FSUB: v = A() - B(); break;
                case Opcode::FMUL: v = A() * B(); break;
                case Opcode::FFMA:
                  v = ins.type == Type::F32
                          ? static_cast<double>(
                                std::fmaf(static_cast<float>(A()),
                                          static_cast<float>(B()),
                                          static_cast<float>(C())))
                          : std::fma(A(), B(), C());
                  break;
                case Opcode::FMIN: v = std::min(A(), B()); break;
                case Opcode::FMAX: v = std::max(A(), B()); break;
                case Opcode::RCP: v = 1.0 / A(); break;
                case Opcode::RSQRT: v = 1.0 / std::sqrt(A()); break;
                case Opcode::SQRT: v = std::sqrt(A()); break;
                case Opcode::EX2: v = std::exp2(A()); break;
                case Opcode::LG2: v = std::log2(A()); break;
                case Opcode::SIN: v = std::sin(A()); break;
                case Opcode::COS: v = std::cos(A()); break;
                case Opcode::CVT:
                  v = ins.cvt_src == Type::I32 || ins.cvt_src == Type::I64
                          ? static_cast<double>(
                                operand_i64(w, ins.srcs[0], lane))
                          : A();
                  break;
                default:
                  throw Error("warp sim: unhandled float op");
              }
              write_typed(w, *ins.dst, lane, v, 0, true);
            } else {
              std::int64_t v = 0;
              auto A = [&] { return operand_i64(w, ins.srcs[0], lane); };
              auto B = [&] { return operand_i64(w, ins.srcs[1], lane); };
              auto C = [&] { return operand_i64(w, ins.srcs[2], lane); };
              switch (ins.op) {
                case Opcode::MOV: v = A(); break;
                case Opcode::SELP: v = C() != 0 ? A() : B(); break;
                case Opcode::AND: v = A() & B(); break;
                case Opcode::OR: v = A() | B(); break;
                case Opcode::XOR: v = A() ^ B(); break;
                case Opcode::NOT: v = ins.type == Type::Pred ? !A() : ~A();
                  break;
                case Opcode::SHL: v = A() << B(); break;
                case Opcode::SHR: v = A() >> B(); break;
                case Opcode::IADD: v = A() + B(); break;
                case Opcode::ISUB: v = A() - B(); break;
                case Opcode::IMUL: v = A() * B(); break;
                case Opcode::IMULHI: {
                  // __int128 is a GNU extension; tagged so -Wpedantic
                  // accepts the widened 64x64 product.
                  __extension__ typedef __int128 wide_int;
                  v = static_cast<std::int64_t>(
                      (static_cast<wide_int>(A()) * B()) >> 32);
                  break;
                }
                case Opcode::IMAD: v = A() * B() + C(); break;
                case Opcode::IMIN: v = std::min(A(), B()); break;
                case Opcode::IMAX: v = std::max(A(), B()); break;
                case Opcode::CVT:
                  if (ins.cvt_src == Type::F32 || ins.cvt_src == Type::F64)
                    v = static_cast<std::int64_t>(
                        operand_f(w, ins.srcs[0], lane));
                  else
                    v = A();
                  break;
                default:
                  throw Error("warp sim: unhandled int op");
              }
              write_typed(w, *ins.dst, lane, 0, v, false);
            }
          }
          break;
        }
      }

      if (ins.dst) ready_of(w, layout.id(*ins.dst)) = dst_ready;

      if (emit_mem && !mem_ev.lines.empty())
        sink->on_memory(mem_ev);

      // ---- control transfer -------------------------------------------
      const bool at_block_end =
          w.cur + 1 >= k.blocks[top.pc].body.size();

      if (ins.op == Opcode::EXIT) {
        const std::uint32_t exiting = exec_mask;
        bool popped = false;
        for (StackEntry& e : w.stack) e.mask &= ~exiting;
        while (!w.stack.empty() && w.stack.back().mask == 0) {
          w.stack.pop_back();
          popped = true;
        }
        if (w.stack.empty()) {
          w.done = true;
        } else if (popped) {
          w.cur = 0;  // resume the revealed entry at its block start
        } else {
          // Guarded exit with survivors: they fall through.
          const auto next = static_cast<std::int32_t>(
              w.stack.back().pc + 1);
          if (next == w.stack.back().reconv) {
            w.stack.pop_back();
            if (w.stack.empty())
              w.done = true;
          } else {
            w.stack.back().pc = next;
          }
          w.cur = 0;
        }
      } else if (ins.op == Opcode::BRA) {
        totals.branches += 1;
        const std::uint32_t taken = exec_mask;
        const std::uint32_t not_taken = top.mask & ~taken;
        if (sink != nullptr) {
          BranchEvent bev;
          bev.sm = sm;
          bev.block = w.block;
          bev.warp = w.warp_in_block;
          bev.bb = top.pc;
          bev.active_mask = top.mask;
          bev.taken_mask = taken;
          bev.divergent = taken != 0 && not_taken != 0;
          sink->on_branch(bev);
        }
        const auto fallthrough = static_cast<std::int32_t>(top.pc + 1);
        if (taken != 0 && not_taken != 0) {
          totals.divergent_branches += 1;
          const std::int32_t reconv = cfg.ipdom(top.pc);
          top.pc = reconv;
          w.stack.push_back(StackEntry{fallthrough, not_taken, reconv});
          w.stack.push_back(StackEntry{ins.target_block, taken, reconv});
          w.cur = 0;
        } else {
          const std::int32_t next =
              taken != 0 ? ins.target_block : fallthrough;
          if (next == top.reconv) {
            w.stack.pop_back();
            if (w.stack.empty()) {
              w.done = true;
            } else {
              w.cur = 0;
            }
          } else {
            top.pc = next;
            w.cur = 0;
          }
        }
      } else if (at_block_end) {
        const auto next = static_cast<std::int32_t>(top.pc + 1);
        if (next == top.reconv) {
          w.stack.pop_back();
          if (w.stack.empty()) {
            w.done = true;
          } else {
            w.cur = 0;
          }
        } else {
          top.pc = next;
          w.cur = 0;
        }
      } else {
        ++w.cur;
      }

      // A reconvergence point at the virtual exit means the warp ran off
      // the program: treat as finished (cannot occur for validated
      // kernels, but keeps the simulator safe on hand-written IR).
      if (!w.done && !w.stack.empty() &&
          w.stack.back().pc >=
              static_cast<std::int32_t>(k.blocks.size())) {
        w.done = true;
      }

      // ---- block retirement & admission --------------------------------
      if (w.done) {
        // Find this warp's block bookkeeping slot.
        for (std::size_t bi = 0; bi < s.blocks.size(); ++bi) {
          if (s.blocks[bi] != w.block) continue;
          if (--s.block_warps_left[bi] == 0 &&
              next_block < s.blocks.size()) {
            activate_block(t_issue);
          }
          break;
        }
      }
    }

    const double sm_cycles = sm_clock_end + m_.alu_latency;
    gpu_cycles = std::max(gpu_cycles, sm_cycles);
  }

  // Global DRAM bound across SMs (each SM was given a 1/busy_sms share,
  // but correlated bursts can exceed it; the max() keeps the bound).
  const double dram_bound =
      totals.dram_transactions * m_.dram_txn_cycles();
  out.cycles = std::max(gpu_cycles, dram_bound) + m_.kernel_launch_overhead;
  out.time_ms = m_.cycles_to_ms(out.cycles);
  out.counts = totals;
  return out;
}

}  // namespace gpustatic::sim
