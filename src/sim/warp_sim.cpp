#include "sim/warp_sim.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "ptx/cfg.hpp"

namespace gpustatic::sim {

using namespace ptx;  // NOLINT

namespace {

constexpr std::uint32_t kWarpSize = 32;
constexpr std::uint32_t kFullMask = 0xffffffffu;

/// Dense register ids across all classes of one kernel.
struct RegLayout {
  std::array<std::uint32_t, 5> base{};
  std::uint32_t total = 0;

  explicit RegLayout(const Kernel& k) {
    std::uint32_t off = 0;
    for (int s = 0; s < 5; ++s) {
      base[s] = off;
      off += k.max_reg_index(type_of_slot(s));
    }
    total = off;
  }
  static Type type_of_slot(int s) {
    switch (s) {
      case 0: return Type::Pred;
      case 1: return Type::I32;
      case 2: return Type::I64;
      case 3: return Type::F32;
      default: return Type::F64;
    }
  }
  static int slot_of_type(Type t) {
    switch (t) {
      case Type::Pred: return 0;
      case Type::I32: return 1;
      case Type::I64: return 2;
      case Type::F32: return 3;
      default: return 4;
    }
  }
  [[nodiscard]] std::uint32_t id(const Reg& r) const {
    return base[slot_of_type(r.type)] + r.idx;
  }
};

/// Direct-mapped cache tag model; addresses are device byte addresses.
class TagCache {
 public:
  TagCache(std::uint64_t bytes, std::uint32_t line)
      : line_(line), tags_(std::max<std::uint64_t>(1, bytes / line),
                           ~0ull) {}

  /// Returns true on hit; installs the line either way.
  bool access(std::uint64_t addr) {
    const std::uint64_t line_id = addr / line_;
    const std::size_t slot = line_id % tags_.size();
    const bool hit = tags_[slot] == line_id;
    tags_[slot] = line_id;
    return hit;
  }

 private:
  std::uint32_t line_;
  std::vector<std::uint64_t> tags_;
};

struct StackEntry {
  std::int32_t pc = 0;       ///< block index
  std::uint32_t mask = 0;    ///< active lanes
  std::int32_t reconv = -1;  ///< block index where this entry rejoins
};

struct Warp {
  std::uint32_t block = 0;       ///< block index within the grid
  std::uint32_t warp_in_block = 0;
  std::vector<StackEntry> stack;
  std::uint32_t cur = 0;         ///< instruction index within top block
  bool done = false;

  double ready_at = 0;               ///< earliest next issue
  double last_issue = 0;
  std::vector<double> reg_ready;     ///< scoreboard, per dense reg id
  std::vector<std::uint64_t> regs;   ///< lane-major: reg*32 + lane
};

}  // namespace

StageTiming WarpSimulator::run_stage(const codegen::LoweredStage& stage,
                                     DeviceMemory& mem, TraceSink* sink) {
  const Kernel& k = stage.kernel;
  const arch::GpuSpec& gpu = *m_.gpu;
  const std::uint32_t tc = stage.launch.block_threads;
  const std::uint32_t bc = stage.launch.grid_blocks;
  if (tc % kWarpSize != 0)
    throw ConfigError("warp simulator requires TC to be a warp multiple");

  StageTiming out;
  out.occ = occupancy::calculate(
      gpu, occupancy::KernelParams{tc, stage.demand.regs_per_thread,
                                   stage.launch.smem_bytes});
  if (out.occ.active_blocks == 0)
    throw ConfigError("configuration cannot be resident on " + gpu.name);

  const Cfg cfg(k);
  const RegLayout layout(k);
  const std::uint32_t warps_per_block = tc / kWarpSize;
  const auto num_blocks = static_cast<std::uint32_t>(bc);
  const std::uint32_t num_sms = gpu.multiprocessors;
  const std::uint32_t busy_sms = std::min(num_sms, num_blocks);

  // Parameter values shared by every thread.
  std::vector<std::uint64_t> param_values(k.params.size(), 0);
  for (std::size_t p = 0; p < k.params.size(); ++p) {
    if (k.params[p].is_pointer)
      param_values[p] = mem.base(k.params[p].name);
    else
      param_values[p] = static_cast<std::uint64_t>(stage.launch.domain);
  }

  // Per-SM DRAM bandwidth share.
  const double txn_cycles_sm =
      m_.dram_txn_cycles() * static_cast<double>(busy_sms);
  const double l2_txn_cycles_sm =
      m_.l2_txn_cycles() * static_cast<double>(busy_sms);

  TagCache l2(m_.l2_bytes, m_.line_bytes);  // shared across SMs

  Counts totals;
  double gpu_cycles = 0;

  for (std::uint32_t sm = 0; sm < busy_sms; ++sm) {
    // Blocks of this SM.
    std::vector<std::uint32_t> blocks;
    for (std::uint32_t b = sm; b < num_blocks; b += num_sms)
      blocks.push_back(b);
    if (blocks.empty()) continue;

    TagCache l1(m_.l1_bytes, m_.line_bytes);
    std::array<double, arch::kNumOpCategories> pipe_free{};
    double sm_dram_free = 0;
    double sm_clock_end = 0;

    std::vector<Warp> warps;
    std::size_t next_block = 0;
    std::vector<std::uint32_t> block_warps_left(blocks.size(), 0);

    auto activate_block = [&](double at) {
      const std::uint32_t b = blocks[next_block];
      block_warps_left[next_block] = warps_per_block;
      for (std::uint32_t w = 0; w < warps_per_block; ++w) {
        Warp warp;
        warp.block = b;
        warp.warp_in_block = w;
        warp.stack.push_back(
            StackEntry{0, kFullMask, static_cast<std::int32_t>(
                                         k.blocks.size())});
        warp.ready_at = at + m_.block_dispatch_overhead;
        warp.reg_ready.assign(layout.total, 0.0);
        warp.regs.assign(static_cast<std::size_t>(layout.total) * kWarpSize,
                         0);
        warps.push_back(std::move(warp));
      }
      ++next_block;
    };

    const std::uint32_t max_resident =
        std::min<std::uint32_t>(out.occ.active_blocks,
                                static_cast<std::uint32_t>(blocks.size()));
    for (std::uint32_t i = 0; i < max_resident; ++i) activate_block(0.0);

    // ---- helpers bound to this SM's state ------------------------------
    auto reg_value = [&](const Warp& w, const Reg& r,
                         std::uint32_t lane) -> std::uint64_t {
      return w.regs[static_cast<std::size_t>(layout.id(r)) * kWarpSize +
                    lane];
    };
    auto set_reg = [&](Warp& w, const Reg& r, std::uint32_t lane,
                       std::uint64_t v) {
      w.regs[static_cast<std::size_t>(layout.id(r)) * kWarpSize + lane] = v;
    };

    auto operand_i64 = [&](const Warp& w, const Operand& o,
                           std::uint32_t lane) -> std::int64_t {
      switch (o.kind()) {
        case Operand::Kind::Reg: {
          const std::uint64_t raw = reg_value(w, o.reg(), lane);
          if (o.reg().type == Type::I32)
            return static_cast<std::int32_t>(raw & 0xffffffffu);
          return static_cast<std::int64_t>(raw);
        }
        case Operand::Kind::ImmI:
          return o.imm_i();
        case Operand::Kind::Special: {
          const std::uint32_t tid =
              w.warp_in_block * kWarpSize + lane;
          switch (o.special()) {
            case SpecialReg::TidX: return tid;
            case SpecialReg::NTidX: return tc;
            case SpecialReg::CTAidX: return w.block;
            case SpecialReg::NCTAidX: return bc;
            case SpecialReg::LaneId: return lane;
          }
          return 0;
        }
        case Operand::Kind::Sym:
          return static_cast<std::int64_t>(param_values[o.sym()]);
        default:
          throw Error("warp sim: bad integer operand");
      }
    };

    auto operand_f = [&](const Warp& w, const Operand& o,
                         std::uint32_t lane) -> double {
      switch (o.kind()) {
        case Operand::Kind::Reg: {
          const std::uint64_t raw = reg_value(w, o.reg(), lane);
          if (o.reg().type == Type::F32) {
            float f;
            const auto bits = static_cast<std::uint32_t>(raw & 0xffffffffu);
            std::memcpy(&f, &bits, sizeof(f));
            return f;
          }
          double d;
          std::memcpy(&d, &raw, sizeof(d));
          return d;
        }
        case Operand::Kind::ImmF:
          return o.imm_f();
        default:
          return static_cast<double>(operand_i64(w, o, lane));
      }
    };

    auto write_typed = [&](Warp& w, const Reg& r, std::uint32_t lane,
                           double fval, std::int64_t ival, bool is_float) {
      switch (r.type) {
        case Type::Pred:
          set_reg(w, r, lane, ival != 0 ? 1 : 0);
          return;
        case Type::I32:
          set_reg(w, r, lane,
                  static_cast<std::uint32_t>(
                      static_cast<std::int32_t>(is_float
                                                    ? static_cast<std::int64_t>(fval)
                                                    : ival)));
          return;
        case Type::I64:
          set_reg(w, r, lane,
                  static_cast<std::uint64_t>(is_float
                                                 ? static_cast<std::int64_t>(fval)
                                                 : ival));
          return;
        case Type::F32: {
          const float f = static_cast<float>(fval);
          std::uint32_t bits;
          std::memcpy(&bits, &f, sizeof(bits));
          set_reg(w, r, lane, bits);
          return;
        }
        case Type::F64: {
          std::uint64_t bits;
          std::memcpy(&bits, &fval, sizeof(bits));
          set_reg(w, r, lane, bits);
          return;
        }
      }
    };

    auto guard_pass = [&](const Warp& w, const Instruction& ins,
                          std::uint32_t lane) {
      if (!ins.guard) return true;
      const bool v = reg_value(w, ins.guard->pred, lane) != 0;
      return ins.guard->negated ? !v : v;
    };

    // ---- main issue loop ------------------------------------------------
    auto all_done = [&] {
      if (next_block < blocks.size()) return false;
      for (const Warp& w : warps)
        if (!w.done) return false;
      return true;
    };

    while (!all_done()) {
      // Pick the warp that can issue earliest.
      double best_t = std::numeric_limits<double>::infinity();
      std::size_t best_w = static_cast<std::size_t>(-1);
      for (std::size_t wi = 0; wi < warps.size(); ++wi) {
        Warp& w = warps[wi];
        if (w.done) continue;
        const StackEntry& top = w.stack.back();
        const Instruction& ins = k.blocks[top.pc].body[w.cur];
        double t = w.ready_at;
        if (ins.guard)
          t = std::max(t, w.reg_ready[layout.id(ins.guard->pred)]);
        for (const Operand& s : ins.srcs)
          if (s.is_reg()) t = std::max(t, w.reg_ready[layout.id(s.reg())]);
        const auto cat = static_cast<std::size_t>(ins.category());
        t = std::max(t, pipe_free[cat]);
        if (t < best_t) {
          best_t = t;
          best_w = wi;
        }
      }
      if (best_w == static_cast<std::size_t>(-1))
        throw Error("warp sim: deadlock (no issuable warp)");

      Warp& w = warps[best_w];
      StackEntry& top = w.stack.back();
      const Instruction& ins = k.blocks[top.pc].body[w.cur];
      const arch::OpCategory cat = ins.category();
      const double t_issue = best_t;

      pipe_free[static_cast<std::size_t>(cat)] =
          t_issue + m_.issue_cycles(cat);
      w.ready_at = t_issue + 1.0;
      w.last_issue = t_issue;
      sm_clock_end = std::max(sm_clock_end, t_issue);

      // Active lanes under guard.
      std::uint32_t exec_mask = 0;
      for (std::uint32_t lane = 0; lane < kWarpSize; ++lane)
        if ((top.mask >> lane & 1u) && guard_pass(w, ins, lane))
          exec_mask |= 1u << lane;

      // Bookkeeping.
      totals.add_category(cat, 1);
      totals.reg_traffic += ins.reg_reads() + ins.reg_writes();
      totals.total_issues += 1;
      if (top.mask != kFullMask) totals.partial_issues += 1;

      if (sink != nullptr) {
        IssueEvent ev;
        ev.sm = sm;
        ev.block = w.block;
        ev.warp = w.warp_in_block;
        ev.bb = top.pc;
        ev.inst = w.cur;
        ev.op = ins.op;
        ev.category = cat;
        ev.active_mask = top.mask;
        ev.exec_mask = exec_mask;
        ev.issue_cycle = t_issue;
        sink->on_issue(ev);
      }
      // Filled in by the LD/ST/ATOM handlers below and emitted afterwards.
      MemoryEvent mem_ev;
      bool emit_mem = false;
      if (sink != nullptr &&
          (ins.op == Opcode::LD || ins.op == Opcode::ST ||
           ins.op == Opcode::ATOM_ADD) &&
          ins.space == MemSpace::Global) {
        mem_ev.sm = sm;
        mem_ev.block = w.block;
        mem_ev.warp = w.warp_in_block;
        mem_ev.bb = top.pc;
        mem_ev.inst = w.cur;
        mem_ev.is_store = ins.op == Opcode::ST;
        mem_ev.is_atomic = ins.op == Opcode::ATOM_ADD;
        mem_ev.lanes = static_cast<std::uint32_t>(
            std::popcount(exec_mask));
        emit_mem = true;
      }

      double dst_ready = t_issue + m_.result_latency(cat);

      switch (ins.op) {
        case Opcode::LD: {
          if (ins.space == MemSpace::Param) {
            for (std::uint32_t lane = 0; lane < kWarpSize; ++lane)
              if (exec_mask >> lane & 1u) {
                const std::uint64_t v = param_values[ins.srcs[0].sym()];
                if (ins.dst->type == Type::I32)
                  set_reg(w, *ins.dst, lane, v & 0xffffffffu);
                else
                  set_reg(w, *ins.dst, lane, v);
              }
            dst_ready = t_issue + m_.l1_latency;  // constant cache
            break;
          }
          // Gather segments and execute functionally.
          std::set<std::uint64_t> segments;
          for (std::uint32_t lane = 0; lane < kWarpSize; ++lane) {
            if (!(exec_mask >> lane & 1u)) continue;
            const std::uint64_t addr = static_cast<std::uint64_t>(
                operand_i64(w, ins.srcs[0], lane) + ins.offset);
            if (segments.insert(addr / m_.line_bytes).second && emit_mem)
              mem_ev.lines.push_back(addr / m_.line_bytes);
            const float v = mem.load(addr);
            std::uint32_t bits;
            std::memcpy(&bits, &v, sizeof(bits));
            set_reg(w, *ins.dst, lane, bits);
          }
          double data_ready = t_issue + m_.l1_latency;
          for (const std::uint64_t seg : segments) {
            const std::uint64_t addr = seg * m_.line_bytes;
            if (l1.access(addr)) {  // L1 hit
              mem_ev.l1_hits += 1;
              continue;
            }
            totals.mem_transactions += 1;
            if (l2.access(addr)) {
              mem_ev.l2_hits += 1;
              sm_dram_free =
                  std::max(sm_dram_free, t_issue) + l2_txn_cycles_sm;
              data_ready =
                  std::max(data_ready, t_issue + m_.l2_latency);
            } else {
              mem_ev.dram += 1;
              totals.dram_transactions += 1;
              sm_dram_free = std::max(sm_dram_free, t_issue) + txn_cycles_sm;
              data_ready = std::max(data_ready,
                                    sm_dram_free + m_.dram_latency);
            }
          }
          dst_ready = data_ready;
          break;
        }
        case Opcode::ST: {
          std::set<std::uint64_t> segments;
          for (std::uint32_t lane = 0; lane < kWarpSize; ++lane) {
            if (!(exec_mask >> lane & 1u)) continue;
            const std::uint64_t addr = static_cast<std::uint64_t>(
                operand_i64(w, ins.srcs[0], lane) + ins.offset);
            if (segments.insert(addr / m_.line_bytes).second && emit_mem)
              mem_ev.lines.push_back(addr / m_.line_bytes);
            mem.store(addr, static_cast<float>(operand_f(w, ins.srcs[1],
                                                         lane)));
          }
          // Write-through traffic; does not block the warp.
          totals.mem_transactions += static_cast<double>(segments.size());
          for (const std::uint64_t seg : segments) {
            if (l2.access(seg * m_.line_bytes)) {
              mem_ev.l2_hits += 1;
            } else {
              mem_ev.dram += 1;
              totals.dram_transactions += 1;
            }
            sm_dram_free = std::max(sm_dram_free, t_issue) + l2_txn_cycles_sm;
          }
          break;
        }
        case Opcode::ATOM_ADD: {
          // Serialized per lane at the memory partition.
          std::uint32_t lanes = 0;
          std::set<std::uint64_t> distinct;
          for (std::uint32_t lane = 0; lane < kWarpSize; ++lane) {
            if (!(exec_mask >> lane & 1u)) continue;
            const std::uint64_t addr = static_cast<std::uint64_t>(
                operand_i64(w, ins.srcs[0], lane) + ins.offset);
            mem.atomic_add(addr, static_cast<float>(
                                     operand_f(w, ins.srcs[1], lane)));
            if (distinct.insert(addr / m_.line_bytes).second && emit_mem)
              mem_ev.lines.push_back(addr / m_.line_bytes);
            ++lanes;
          }
          // Each participating lane's update is serialized at the
          // memory partition.
          pipe_free[static_cast<std::size_t>(cat)] +=
              m_.atomic_conflict_cycles * static_cast<double>(lanes);
          totals.mem_transactions += static_cast<double>(distinct.size());
          for (const std::uint64_t seg : distinct) {
            if (l2.access(seg * m_.line_bytes)) {
              mem_ev.l2_hits += 1;
            } else {
              mem_ev.dram += 1;
              totals.dram_transactions += 1;
            }
            sm_dram_free = std::max(sm_dram_free, t_issue) + l2_txn_cycles_sm;
          }
          break;
        }
        case Opcode::BRA:
        case Opcode::EXIT:
        case Opcode::BAR:
        case Opcode::NOP:
          break;  // handled by control transfer below
        case Opcode::SETP: {
          for (std::uint32_t lane = 0; lane < kWarpSize; ++lane) {
            if (!(exec_mask >> lane & 1u)) continue;
            bool r = false;
            if (ins.type == Type::F32 || ins.type == Type::F64) {
              const double a = operand_f(w, ins.srcs[0], lane);
              const double b = operand_f(w, ins.srcs[1], lane);
              switch (ins.cmp) {
                case CmpOp::EQ: r = a == b; break;
                case CmpOp::NE: r = a != b; break;
                case CmpOp::LT: r = a < b; break;
                case CmpOp::LE: r = a <= b; break;
                case CmpOp::GT: r = a > b; break;
                case CmpOp::GE: r = a >= b; break;
              }
            } else {
              const std::int64_t a = operand_i64(w, ins.srcs[0], lane);
              const std::int64_t b = operand_i64(w, ins.srcs[1], lane);
              switch (ins.cmp) {
                case CmpOp::EQ: r = a == b; break;
                case CmpOp::NE: r = a != b; break;
                case CmpOp::LT: r = a < b; break;
                case CmpOp::LE: r = a <= b; break;
                case CmpOp::GT: r = a > b; break;
                case CmpOp::GE: r = a >= b; break;
              }
            }
            set_reg(w, *ins.dst, lane, r ? 1 : 0);
          }
          break;
        }
        default: {
          // Register-computing instructions.
          for (std::uint32_t lane = 0; lane < kWarpSize; ++lane) {
            if (!(exec_mask >> lane & 1u)) continue;
            const bool is_float_op =
                ins.type == Type::F32 || ins.type == Type::F64;
            if (is_float_op) {
              double v = 0;
              auto A = [&] { return operand_f(w, ins.srcs[0], lane); };
              auto B = [&] { return operand_f(w, ins.srcs[1], lane); };
              auto C = [&] { return operand_f(w, ins.srcs[2], lane); };
              switch (ins.op) {
                case Opcode::MOV: v = A(); break;
                case Opcode::SELP:
                  v = operand_i64(w, ins.srcs[2], lane) != 0 ? A() : B();
                  break;
                case Opcode::FADD: v = A() + B(); break;
                case Opcode::FSUB: v = A() - B(); break;
                case Opcode::FMUL: v = A() * B(); break;
                case Opcode::FFMA:
                  v = ins.type == Type::F32
                          ? static_cast<double>(
                                std::fmaf(static_cast<float>(A()),
                                          static_cast<float>(B()),
                                          static_cast<float>(C())))
                          : std::fma(A(), B(), C());
                  break;
                case Opcode::FMIN: v = std::min(A(), B()); break;
                case Opcode::FMAX: v = std::max(A(), B()); break;
                case Opcode::RCP: v = 1.0 / A(); break;
                case Opcode::RSQRT: v = 1.0 / std::sqrt(A()); break;
                case Opcode::SQRT: v = std::sqrt(A()); break;
                case Opcode::EX2: v = std::exp2(A()); break;
                case Opcode::LG2: v = std::log2(A()); break;
                case Opcode::SIN: v = std::sin(A()); break;
                case Opcode::COS: v = std::cos(A()); break;
                case Opcode::CVT:
                  v = ins.cvt_src == Type::I32 || ins.cvt_src == Type::I64
                          ? static_cast<double>(
                                operand_i64(w, ins.srcs[0], lane))
                          : A();
                  break;
                default:
                  throw Error("warp sim: unhandled float op");
              }
              write_typed(w, *ins.dst, lane, v, 0, true);
            } else {
              std::int64_t v = 0;
              auto A = [&] { return operand_i64(w, ins.srcs[0], lane); };
              auto B = [&] { return operand_i64(w, ins.srcs[1], lane); };
              auto C = [&] { return operand_i64(w, ins.srcs[2], lane); };
              switch (ins.op) {
                case Opcode::MOV: v = A(); break;
                case Opcode::SELP: v = C() != 0 ? A() : B(); break;
                case Opcode::AND: v = A() & B(); break;
                case Opcode::OR: v = A() | B(); break;
                case Opcode::XOR: v = A() ^ B(); break;
                case Opcode::NOT: v = ins.type == Type::Pred ? !A() : ~A();
                  break;
                case Opcode::SHL: v = A() << B(); break;
                case Opcode::SHR: v = A() >> B(); break;
                case Opcode::IADD: v = A() + B(); break;
                case Opcode::ISUB: v = A() - B(); break;
                case Opcode::IMUL: v = A() * B(); break;
                case Opcode::IMULHI: {
                  // __int128 is a GNU extension; tagged so -Wpedantic
                  // accepts the widened 64x64 product.
                  __extension__ typedef __int128 wide_int;
                  v = static_cast<std::int64_t>(
                      (static_cast<wide_int>(A()) * B()) >> 32);
                  break;
                }
                case Opcode::IMAD: v = A() * B() + C(); break;
                case Opcode::IMIN: v = std::min(A(), B()); break;
                case Opcode::IMAX: v = std::max(A(), B()); break;
                case Opcode::CVT:
                  if (ins.cvt_src == Type::F32 || ins.cvt_src == Type::F64)
                    v = static_cast<std::int64_t>(
                        operand_f(w, ins.srcs[0], lane));
                  else
                    v = A();
                  break;
                default:
                  throw Error("warp sim: unhandled int op");
              }
              write_typed(w, *ins.dst, lane, 0, v, false);
            }
          }
          break;
        }
      }

      if (ins.dst) w.reg_ready[layout.id(*ins.dst)] = dst_ready;

      if (emit_mem && !mem_ev.lines.empty())
        sink->on_memory(mem_ev);

      // ---- control transfer -------------------------------------------
      const bool at_block_end =
          w.cur + 1 >= k.blocks[top.pc].body.size();

      if (ins.op == Opcode::EXIT) {
        const std::uint32_t exiting = exec_mask;
        bool popped = false;
        for (StackEntry& e : w.stack) e.mask &= ~exiting;
        while (!w.stack.empty() && w.stack.back().mask == 0) {
          w.stack.pop_back();
          popped = true;
        }
        if (w.stack.empty()) {
          w.done = true;
        } else if (popped) {
          w.cur = 0;  // resume the revealed entry at its block start
        } else {
          // Guarded exit with survivors: they fall through.
          const auto next = static_cast<std::int32_t>(
              w.stack.back().pc + 1);
          if (next == w.stack.back().reconv) {
            w.stack.pop_back();
            if (w.stack.empty())
              w.done = true;
          } else {
            w.stack.back().pc = next;
          }
          w.cur = 0;
        }
      } else if (ins.op == Opcode::BRA) {
        totals.branches += 1;
        const std::uint32_t taken = exec_mask;
        const std::uint32_t not_taken = top.mask & ~taken;
        if (sink != nullptr) {
          BranchEvent bev;
          bev.sm = sm;
          bev.block = w.block;
          bev.warp = w.warp_in_block;
          bev.bb = top.pc;
          bev.active_mask = top.mask;
          bev.taken_mask = taken;
          bev.divergent = taken != 0 && not_taken != 0;
          sink->on_branch(bev);
        }
        const auto fallthrough = static_cast<std::int32_t>(top.pc + 1);
        if (taken != 0 && not_taken != 0) {
          totals.divergent_branches += 1;
          const std::int32_t reconv = cfg.ipdom(top.pc);
          const std::uint32_t parent_mask = top.mask;
          top.pc = reconv;
          (void)parent_mask;
          w.stack.push_back(StackEntry{fallthrough, not_taken, reconv});
          w.stack.push_back(StackEntry{ins.target_block, taken, reconv});
          w.cur = 0;
        } else {
          const std::int32_t next =
              taken != 0 ? ins.target_block : fallthrough;
          if (next == top.reconv) {
            w.stack.pop_back();
            if (w.stack.empty()) {
              w.done = true;
            } else {
              w.cur = 0;
            }
          } else {
            top.pc = next;
            w.cur = 0;
          }
        }
      } else if (at_block_end) {
        const auto next = static_cast<std::int32_t>(top.pc + 1);
        if (next == top.reconv) {
          w.stack.pop_back();
          if (w.stack.empty()) {
            w.done = true;
          } else {
            w.cur = 0;
          }
        } else {
          top.pc = next;
          w.cur = 0;
        }
      } else {
        ++w.cur;
      }

      // A reconvergence point at the virtual exit means the warp ran off
      // the program: treat as finished (cannot occur for validated
      // kernels, but keeps the simulator safe on hand-written IR).
      if (!w.done && !w.stack.empty() &&
          w.stack.back().pc >=
              static_cast<std::int32_t>(k.blocks.size())) {
        w.done = true;
      }

      // ---- block retirement & admission --------------------------------
      if (w.done) {
        // Find this warp's block bookkeeping slot.
        for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
          if (blocks[bi] != w.block) continue;
          if (--block_warps_left[bi] == 0 && next_block < blocks.size()) {
            activate_block(t_issue);
          }
          break;
        }
      }
    }

    const double sm_cycles = sm_clock_end + m_.alu_latency;
    gpu_cycles = std::max(gpu_cycles, sm_cycles);
  }

  // Global DRAM bound across SMs (each SM was given a 1/busy_sms share,
  // but correlated bursts can exceed it; the max() keeps the bound).
  const double dram_bound =
      totals.dram_transactions * m_.dram_txn_cycles();
  out.cycles = std::max(gpu_cycles, dram_bound) + m_.kernel_launch_overhead;
  out.time_ms = m_.cycles_to_ms(out.cycles);
  out.counts = totals;
  return out;
}

}  // namespace gpustatic::sim
