#include "sim/runner.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gpustatic::sim {

namespace {

/// Mix the variant identity into the noise seed so each variant gets an
/// independent (but reproducible) noise sequence.
std::uint64_t variant_salt(const codegen::TuningParams& p) {
  SplitMix64 sm(0x5eed);
  std::uint64_t h = sm.next();
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::uint64_t>(p.threads_per_block));
  mix(static_cast<std::uint64_t>(p.block_count));
  mix(static_cast<std::uint64_t>(p.unroll));
  mix(static_cast<std::uint64_t>(p.l1_pref_kb));
  mix(static_cast<std::uint64_t>(p.stream_chunk));
  mix(p.fast_math ? 7u : 3u);
  return h;
}

void apply_protocol(Measurement& m, const RunOptions& opts,
                    std::uint64_t salt) {
  Rng rng(opts.seed ^ salt);
  m.repetitions.clear();
  for (int r = 0; r < opts.repetitions; ++r) {
    const double noisy =
        m.base_time_ms * (1.0 + opts.noise_stddev * rng.normal());
    m.repetitions.push_back(std::max(noisy, m.base_time_ms * 0.5));
  }
  if (m.repetitions.empty()) {
    m.trial_time_ms = m.base_time_ms;
    return;
  }
  // The protocol only needs the report_trial-th order statistic, so
  // select it in place instead of sorting a copy (the selected value is
  // identical to sorted[idx]; the buffer's order past that is
  // unspecified, which Measurement documents).
  const int idx =
      std::clamp(opts.report_trial - 1, 0,
                 static_cast<int>(m.repetitions.size()) - 1);
  const auto nth =
      m.repetitions.begin() + static_cast<std::ptrdiff_t>(idx);
  std::nth_element(m.repetitions.begin(), nth, m.repetitions.end());
  m.trial_time_ms = *nth;
}

Measurement run_impl(const codegen::LoweredWorkload& lw,
                     const dsl::WorkloadDesc& desc,
                     const MachineModel& machine, const RunOptions& opts,
                     DeviceMemory* mem_out) {
  Measurement m;
  m.occupancy = 1.0;
  m.regs_per_thread = lw.regs_per_thread();
  const auto note_waves = [&m](const WaveGeometry& g) {
    m.waves = std::max(m.waves, g.waves);
    m.tail_sm_fraction = std::min(m.tail_sm_fraction, g.tail_sm_fraction);
  };
  try {
    if (opts.engine == Engine::Warp) {
      DeviceMemory mem(desc);
      WarpSimulator simulator(machine);
      for (const codegen::LoweredStage& st : lw.stages) {
        StageTiming t = simulator.run_stage(st, mem);
        m.base_time_ms += t.time_ms;
        m.counts += t.counts;
        m.occupancy = std::min(m.occupancy, t.occ.occupancy);
        note_waves(decompose_waves(*machine.gpu, t.occ, st.launch,
                                   st.coarsen));
        m.stage_timings.push_back(std::move(t));
      }
      if (mem_out != nullptr) *mem_out = std::move(mem);
    } else {
      AnalyticModel model(machine, opts.analytic);
      for (const codegen::LoweredStage& st : lw.stages) {
        const AnalyticResult r = model.run_stage(st);
        m.base_time_ms += r.time_ms;
        m.counts += r.counts;
        m.occupancy = std::min(m.occupancy, r.occ.occupancy);
        note_waves(decompose_waves(*machine.gpu, r.occ, st.launch,
                                   st.coarsen));
      }
    }
  } catch (const ConfigError& e) {
    m.valid = false;
    m.error = e.what();
    m.base_time_ms = 0;
    m.trial_time_ms = 0;
    return m;
  }
  apply_protocol(m, opts, variant_salt(lw.params));
  return m;
}

}  // namespace

void apply_measurement_protocol(Measurement& m, const RunOptions& opts,
                                const codegen::TuningParams& params) {
  apply_protocol(m, opts, variant_salt(params));
}

Measurement run_workload(const codegen::LoweredWorkload& lw,
                         const dsl::WorkloadDesc& desc,
                         const MachineModel& machine,
                         const RunOptions& opts) {
  return run_impl(lw, desc, machine, opts, nullptr);
}

CollectResult run_workload_collect(const codegen::LoweredWorkload& lw,
                                   const dsl::WorkloadDesc& desc,
                                   const MachineModel& machine,
                                   const RunOptions& opts) {
  RunOptions warp_opts = opts;
  warp_opts.engine = Engine::Warp;
  DeviceMemory mem(desc);
  Measurement m = run_impl(lw, desc, machine, warp_opts, &mem);
  return CollectResult{std::move(m), std::move(mem)};
}

}  // namespace gpustatic::sim
