#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace gpustatic {

/// SplitMix64: used to seed the main generator from a single 64-bit seed.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — small, fast, high-quality PRNG. Deterministic across
/// platforms (unlike std::mt19937 distributions), which matters because
/// bench output must be byte-for-byte reproducible.
///
/// Satisfies UniformRandomBitGenerator so it can also feed <random> if ever
/// needed, but the helpers below avoid std distributions on purpose.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift reduction.
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // 128-bit multiply keeps the distribution uniform enough for tuning
    // search purposes without a rejection loop.
    __extension__ using uint128 = unsigned __int128;
    const uint128 m = static_cast<uint128>((*this)()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    if (hi <= lo) return lo;
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box-Muller (deterministic, no std distribution).
  double normal() noexcept {
    // Guard against log(0).
    double u1 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = uniform();
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace gpustatic
