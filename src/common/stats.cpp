#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gpustatic::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double sample_variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) {
  return std::sqrt(sample_variance(xs));
}

double mode(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::map<double, std::size_t> freq;
  for (double x : xs) ++freq[x];
  double best = xs[0];
  std::size_t best_count = 0;
  for (const auto& [value, count] : freq) {
    if (count > best_count) {  // map iteration is ascending: ties keep min
      best = value;
      best_count = count;
    }
  }
  return best;
}

double percentile(std::span<const double> xs, double pct) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double clamped = std::clamp(pct, 0.0, 100.0);
  const double pos =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - std::floor(pos);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double mean_absolute_error(std::span<const double> a,
                           std::span<const double> b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n == 0) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += std::abs(a[i] - b[i]);
  return s / static_cast<double>(n);
}

double sum_squared_error(std::span<const double> a,
                         std::span<const double> b) {
  const std::size_t n = std::min(a.size(), b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return s;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0.0;
  const double ma = mean(a.subspan(0, n));
  const double mb = mean(b.subspan(0, n));
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da <= 0.0 || db <= 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t i, std::size_t j) { return xs[i] < xs[j]; });
  std::vector<double> r(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[idx[j + 1]] == xs[idx[i]]) ++j;
    // Average rank for the tie group [i, j].
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0
                       + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[idx[k]] = avg;
    i = j + 1;
  }
  return r;
}

double spearman(std::span<const double> a, std::span<const double> b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0.0;
  const auto ra = ranks(a.subspan(0, n));
  const auto rb = ranks(b.subspan(0, n));
  return pearson(ra, rb);
}

std::vector<double> normalize01(std::span<const double> xs) {
  std::vector<double> out(xs.begin(), xs.end());
  if (xs.empty()) return out;
  const auto [mn, mx] = std::minmax_element(out.begin(), out.end());
  const double lo = *mn, hi = *mx;
  if (hi <= lo) {
    std::fill(out.begin(), out.end(), 0.0);
    return out;
  }
  for (double& x : out) x = (x - lo) / (hi - lo);
  return out;
}

std::size_t Histogram::max_count() const {
  std::size_t m = 0;
  for (std::size_t c : counts) m = std::max(m, c);
  return m;
}

Histogram histogram(std::span<const double> xs, double lo, double hi,
                    std::size_t bins) {
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins == 0 ? 1 : bins, 0);
  if (hi <= lo) return h;
  const double width = (hi - lo) / static_cast<double>(h.counts.size());
  for (double x : xs) {
    auto bin = static_cast<std::ptrdiff_t>((x - lo) / width);
    bin = std::clamp<std::ptrdiff_t>(
        bin, 0, static_cast<std::ptrdiff_t>(h.counts.size()) - 1);
    ++h.counts[static_cast<std::size_t>(bin)];
  }
  return h;
}

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace gpustatic::stats
