#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gpustatic {

/// Minimal text-table builder used by every bench binary so that the
/// reproduced paper tables share one consistent, diffable rendering.
///
///   TextTable t({"Kernel", "Arch", "occ"});
///   t.add_row({"atax", "Kepler", "0.93"});
///   std::cout << t.render();
class TextTable {
 public:
  enum class Align { Left, Right };

  explicit TextTable(std::vector<std::string> header);

  /// Column alignment; default is Left for column 0, Right elsewhere
  /// (numeric-table convention).
  void set_align(std::size_t col, Align a);

  void add_row(std::vector<std::string> cells);
  /// Insert a horizontal rule before the next added row.
  void add_rule();

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
  std::vector<Align> align_;
  bool pending_rule_ = false;
};

/// Renders a horizontal ASCII bar of width proportional to value/maximum,
/// used by the figure-reproducing benches (histograms, bar charts).
[[nodiscard]] std::string ascii_bar(double value, double maximum,
                                    std::size_t width);

}  // namespace gpustatic
