#include "common/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <functional>

namespace gpustatic::str {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string format_trimmed(double v, int max_precision) {
  std::string s = format_double(v, max_precision);
  if (s.find('.') == std::string::npos) return s;
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

std::string format_grouped(long long v) {
  const bool neg = v < 0;
  unsigned long long u =
      neg ? 0ULL - static_cast<unsigned long long>(v)
          : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(u);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args);
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

namespace {

/// Visit each line as (1-based number, content without newline, start
/// offset); stop early when fn returns false.
void for_each_line(
    std::string_view text,
    const std::function<bool(std::size_t, std::string_view, std::size_t)>&
        fn) {
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    const std::string_view line =
        text.substr(start, end == std::string_view::npos
                               ? std::string_view::npos
                               : end - start);
    ++line_no;
    if (!fn(line_no, line, start)) return;
    if (end == std::string_view::npos) return;
    start = end + 1;
  }
}

}  // namespace

std::size_t last_content_line(std::string_view text) {
  std::size_t last = 0;
  for_each_line(text, [&](std::size_t no, std::string_view line,
                          std::size_t) {
    if (!trim(line).empty()) last = no;
    return true;
  });
  return last;
}

std::string drop_line(std::string_view text, std::size_t line) {
  std::string out;
  out.reserve(text.size());
  for_each_line(text, [&](std::size_t no, std::string_view content,
                          std::size_t start) {
    if (no == line) return true;
    out.append(content);
    // Preserve the original trailing-newline shape.
    if (start + content.size() < text.size()) out.push_back('\n');
    return true;
  });
  return out;
}

}  // namespace gpustatic::str
