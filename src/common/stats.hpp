#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

namespace gpustatic::stats {

/// Arithmetic mean; 0 for an empty sample.
[[nodiscard]] double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Population variance helper used by stddev; exposed for tests.
[[nodiscard]] double sample_variance(std::span<const double> xs);

/// Most frequent value. Ties resolve to the smallest value so output is
/// deterministic. Values are compared exactly, which is appropriate here
/// because the inputs are quantized (occupancy fractions, register counts).
[[nodiscard]] double mode(std::span<const double> xs);

/// Percentile in [0,100] with linear interpolation between order statistics
/// (the same convention as numpy.percentile's default). Input need not be
/// sorted; an internal copy is sorted.
[[nodiscard]] double percentile(std::span<const double> xs, double pct);

/// Median (50th percentile).
[[nodiscard]] double median(std::span<const double> xs);

/// Mean absolute error between two equally sized series.
[[nodiscard]] double mean_absolute_error(std::span<const double> a,
                                         std::span<const double> b);

/// Sum of squared differences between two equally sized series.
[[nodiscard]] double sum_squared_error(std::span<const double> a,
                                       std::span<const double> b);

/// Pearson correlation coefficient; 0 if either series is constant.
[[nodiscard]] double pearson(std::span<const double> a,
                             std::span<const double> b);

/// Spearman rank correlation; 0 if either series is constant.
/// Used to check that predicted orderings track measured orderings.
[[nodiscard]] double spearman(std::span<const double> a,
                              std::span<const double> b);

/// Min-max normalization to [0,1]; a constant series maps to all zeros.
[[nodiscard]] std::vector<double> normalize01(std::span<const double> xs);

/// Ranks (1-based, average rank for ties) of each element.
[[nodiscard]] std::vector<double> ranks(std::span<const double> xs);

/// Fixed-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range are clamped into the edge buckets.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> counts;

  [[nodiscard]] double bin_width() const {
    return counts.empty() ? 0.0
                          : (hi - lo) / static_cast<double>(counts.size());
  }
  [[nodiscard]] double bin_center(std::size_t i) const {
    return lo + (static_cast<double>(i) + 0.5) * bin_width();
  }
  [[nodiscard]] std::size_t max_count() const;
};

[[nodiscard]] Histogram histogram(std::span<const double> xs, double lo,
                                  double hi, std::size_t bins);

/// Incremental mean/variance accumulator (Welford). Useful when streaming
/// thousands of tuning trials without storing them all.
class Accumulator {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace gpustatic::stats
