#include "common/failpoint.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/rng.hpp"
#include "common/strings.hpp"

namespace gpustatic::failpoint {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

enum class Action { kError, kThrow, kDelay };

struct PointConfig {
  Action action = Action::kError;
  double probability = 1.0;
  // Remaining trips before the point self-disarms; negative = unlimited.
  std::int64_t count = -1;
  std::int64_t delay_ms = 0;
  Rng rng{1};
  std::uint64_t trips = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, PointConfig> points;
};

Registry& registry() {
  static Registry r;
  return r;
}

std::atomic<std::uint64_t> g_total_trips{0};

[[noreturn]] void fail_spec(const std::string& spec, const std::string& why) {
  throw Error("failpoint: bad spec '" + spec + "': " + why);
}

/// Parse one `point=action(key=value,...)` clause into the map.
void parse_clause(const std::string& clause,
                  std::map<std::string, PointConfig>& out) {
  const auto eq = clause.find('=');
  if (eq == std::string::npos) fail_spec(clause, "expected point=action");
  const std::string name = std::string(str::trim(clause.substr(0, eq)));
  std::string rest = std::string(str::trim(clause.substr(eq + 1)));

  const auto& known = known_points();
  if (!std::binary_search(known.begin(), known.end(), name))
    fail_spec(clause, "unknown failpoint '" + name + "'");

  std::string action_name = rest;
  std::string args;
  const auto paren = rest.find('(');
  if (paren != std::string::npos) {
    if (rest.back() != ')') fail_spec(clause, "unbalanced parentheses");
    action_name = std::string(str::trim(rest.substr(0, paren)));
    args = rest.substr(paren + 1, rest.size() - paren - 2);
  }

  if (action_name == "off") {
    out.erase(name);
    return;
  }

  PointConfig cfg;
  if (action_name == "error") {
    cfg.action = Action::kError;
  } else if (action_name == "throw") {
    cfg.action = Action::kThrow;
  } else if (action_name == "delay") {
    cfg.action = Action::kDelay;
    cfg.delay_ms = 10;
  } else {
    fail_spec(clause, "unknown action '" + action_name + "'");
  }

  std::uint64_t seed = 1;
  for (const auto& kv : str::split(args, ',')) {
    const std::string pair = std::string(str::trim(kv));
    if (pair.empty()) continue;
    const auto kv_eq = pair.find('=');
    if (kv_eq == std::string::npos) fail_spec(clause, "expected key=value");
    const std::string key = std::string(str::trim(pair.substr(0, kv_eq)));
    const std::string value = std::string(str::trim(pair.substr(kv_eq + 1)));
    try {
      if (key == "p") {
        cfg.probability = std::stod(value);
        if (cfg.probability < 0.0 || cfg.probability > 1.0)
          fail_spec(clause, "p must be in [0,1]");
      } else if (key == "count") {
        cfg.count = std::stoll(value);
        if (cfg.count < 0) fail_spec(clause, "count must be >= 0");
      } else if (key == "ms") {
        cfg.delay_ms = std::stoll(value);
        if (cfg.delay_ms < 0) fail_spec(clause, "ms must be >= 0");
      } else if (key == "seed") {
        seed = static_cast<std::uint64_t>(std::stoull(value));
      } else {
        fail_spec(clause, "unknown key '" + key + "'");
      }
    } catch (const std::invalid_argument&) {
      fail_spec(clause, "bad number for '" + key + "'");
    } catch (const std::out_of_range&) {
      fail_spec(clause, "number out of range for '" + key + "'");
    }
  }
  cfg.rng = Rng(seed);
  out[name] = cfg;
}

}  // namespace

namespace detail {

void check_slow(const char* point) {
  Action action;
  std::int64_t delay_ms;
  std::string name(point);
  {
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    const auto it = reg.points.find(name);
    if (it == reg.points.end()) return;
    PointConfig& cfg = it->second;
    if (cfg.count == 0) return;
    if (cfg.probability < 1.0) {
      // uniform in [0,1): 53 random bits over 2^53.
      const double u =
          static_cast<double>(cfg.rng() >> 11) * 0x1.0p-53;
      if (u >= cfg.probability) return;
    }
    if (cfg.count > 0) --cfg.count;
    ++cfg.trips;
    g_total_trips.fetch_add(1, std::memory_order_relaxed);
    action = cfg.action;
    delay_ms = cfg.delay_ms;
  }
  // Sleep outside the registry lock so a delay point can't serialize
  // every other armed point behind it.
  if (delay_ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  switch (action) {
    case Action::kError:
      throw InjectedFault("failpoint: injected fault at " + name);
    case Action::kThrow:
      throw std::runtime_error("failpoint: injected exception at " + name);
    case Action::kDelay:
      break;
  }
}

}  // namespace detail

const std::vector<std::string>& known_points() {
  // Sorted: parse_clause binary-searches it.
  static const std::vector<std::string> points = {
      "codegen.compile", "learn.model_load", "serve.write",
      "sim.measure",     "store.merge",      "store.save",
  };
  return points;
}

void configure(const std::string& spec) {
  std::map<std::string, PointConfig> parsed;
  for (const auto& clause : str::split(spec, ';')) {
    const std::string trimmed = std::string(str::trim(clause));
    if (trimmed.empty()) continue;
    parse_clause(trimmed, parsed);
  }
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.points = std::move(parsed);
  g_total_trips.store(0, std::memory_order_relaxed);
  detail::g_armed.store(!reg.points.empty(), std::memory_order_relaxed);
}

void configure_from_env() {
  const char* spec = std::getenv("GPUSTATIC_FAILPOINTS");
  if (spec != nullptr && *spec != '\0') configure(spec);
}

void disarm() {
  // Keep the point map so stats() still answers; only stop tripping.
  detail::g_armed.store(false, std::memory_order_relaxed);
}

std::uint64_t total_trips() {
  return g_total_trips.load(std::memory_order_relaxed);
}

std::vector<std::pair<std::string, std::uint64_t>> stats() {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& [name, cfg] : reg.points)
    if (cfg.trips > 0) out.emplace_back(name, cfg.trips);
  return out;
}

}  // namespace gpustatic::failpoint
