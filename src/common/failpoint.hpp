#pragma once

// Failpoint injection. A failpoint is a named site on a production code
// path — `codegen.compile`, `sim.measure`, `store.save`, `store.merge`,
// `learn.model_load`, `serve.write` — where a fault can be injected at
// runtime for chaos testing: throw a library error, throw a foreign
// exception, or sleep. Points are configured per-name with probability,
// trigger count, and seed via the GPUSTATIC_FAILPOINTS environment
// variable or the CLI --failpoints flag:
//
//   point=action[(key=value,...)][;point=action(...)]...
//
//   actions:  error   throw InjectedFault (a gpustatic::Error — absorbed
//                     wherever library errors are absorbed, e.g. an
//                     evaluator marks the variant invalid)
//             throw   throw std::runtime_error (a foreign exception —
//                     propagates to the request boundary)
//             delay   sleep, no exception
//             off     explicitly disarm the point
//   keys:     p=<0..1>   trip probability (default 1)
//             count=<n>  trip at most n times, then disarm (default ∞)
//             ms=<n>     sleep n milliseconds before acting (default 0
//                        for error/throw, 10 for delay)
//             seed=<n>   per-point RNG seed (default 1)
//
// Example: GPUSTATIC_FAILPOINTS="store.save=error(p=0.1,seed=7);sim.measure=delay(ms=5)"
//
// When nothing is configured (the production case) check() is a single
// relaxed atomic load and a branch — no lock, no map lookup.

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace gpustatic::failpoint {

/// The exception an `error`-action failpoint throws. Derives from
/// gpustatic::Error so it takes the same recovery paths real library
/// failures take; the message names the tripped point.
class InjectedFault : public Error {
 public:
  explicit InjectedFault(const std::string& what) : Error(what) {}
};

namespace detail {
extern std::atomic<bool> g_armed;
void check_slow(const char* point);
}  // namespace detail

/// The hook placed on production code paths. Disarmed (the default and
/// the production case) this is one relaxed load.
inline void check(const char* point) {
  if (!detail::g_armed.load(std::memory_order_relaxed)) return;
  detail::check_slow(point);
}

/// Replace the active configuration with `spec` (the grammar above).
/// An empty spec disarms everything. Unknown point names or malformed
/// specs throw gpustatic::Error — a typo'd chaos schedule must fail
/// loudly, not silently test nothing.
void configure(const std::string& spec);

/// configure() from GPUSTATIC_FAILPOINTS if set; no-op when unset.
void configure_from_env();

/// Disarm every point and clear the configuration. Trip counters are
/// preserved (stats() still reports what happened) until the next
/// configure().
void disarm();

/// Total trips across all points since the last configure().
std::uint64_t total_trips();

/// Per-point trip counts since the last configure(), sorted by name;
/// only points that have tripped at least once appear.
std::vector<std::pair<std::string, std::uint64_t>> stats();

/// The registry of valid point names (sorted). configure() rejects
/// anything not listed here.
const std::vector<std::string>& known_points();

}  // namespace gpustatic::failpoint
