#pragma once

// Request deadlines and cooperative cancellation. A Deadline is an
// absolute steady-clock instant (or "never"); a CancelToken is a
// copyable handle on shared cancellation state — a manual flag plus an
// optional deadline — that travels with a request from the serve
// protocol's "deadline_ms" field (or the CLI's --timeout-ms) down into
// the search core. Cancellation is cooperative: the CachingEvaluator
// checks the token before every fresh backend batch and the strategies
// check it between rounds, so a cancelled search stops at the next
// batch boundary, never mid-measurement, and charges nothing for work
// it did not do.
//
// The default-constructed token is inert (no shared state): carrying
// one through every SearchOptions costs a null shared_ptr, and
// cancelled() on it is a single pointer test.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>

#include "common/error.hpp"

namespace gpustatic::common {

/// Thrown at a cancellation point when the token's deadline has passed
/// (or it was cancelled manually). A distinct type so drivers can tell
/// "the search ran out of time" from "the search failed" and report
/// timed_out with partial accounting instead of a bare error.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

/// An absolute steady-clock instant; default-constructed = never.
class Deadline {
 public:
  Deadline() = default;

  [[nodiscard]] static Deadline after_ms(std::int64_t ms) {
    Deadline d;
    d.set_ = true;
    d.at_ = std::chrono::steady_clock::now() +
            std::chrono::milliseconds(ms);
    return d;
  }

  [[nodiscard]] bool set() const { return set_; }
  [[nodiscard]] bool expired() const {
    return set_ && std::chrono::steady_clock::now() >= at_;
  }
  /// Milliseconds until expiry (clamped at 0); a very large value when
  /// the deadline is unset, so min(remaining, x) composes naturally.
  [[nodiscard]] std::int64_t remaining_ms() const {
    if (!set_) return std::numeric_limits<std::int64_t>::max();
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at_ - std::chrono::steady_clock::now());
    return left.count() > 0 ? left.count() : 0;
  }
  [[nodiscard]] std::chrono::steady_clock::time_point time_point() const {
    return at_;
  }

 private:
  std::chrono::steady_clock::time_point at_{};
  bool set_ = false;
};

/// Copyable cancellation handle. Copies share state: cancel() through
/// any copy is visible to all, and a deadline set at construction is
/// checked on every cancelled() call.
class CancelToken {
 public:
  /// Inert token: never cancelled, costs a null pointer to carry.
  CancelToken() = default;

  /// A token that cancels itself when `deadline` passes.
  [[nodiscard]] static CancelToken with_deadline(Deadline deadline) {
    CancelToken t;
    t.state_ = std::make_shared<State>();
    t.state_->deadline = deadline;
    return t;
  }
  /// A manually cancellable token (no deadline) — the shutdown hook.
  [[nodiscard]] static CancelToken manual() {
    CancelToken t;
    t.state_ = std::make_shared<State>();
    return t;
  }

  /// True when this token can ever report cancellation.
  [[nodiscard]] bool possible() const { return state_ != nullptr; }

  [[nodiscard]] bool cancelled() const {
    if (state_ == nullptr) return false;
    if (state_->cancelled.load(std::memory_order_relaxed)) return true;
    if (state_->deadline.expired()) {
      // Latch it: once a deadline has passed the token stays cancelled,
      // and later checks skip the clock read.
      state_->cancelled.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  void cancel() const {
    if (state_ != nullptr)
      state_->cancelled.store(true, std::memory_order_relaxed);
  }

  /// The cancellation point: throws CancelledError when cancelled.
  void throw_if_cancelled() const {
    if (!cancelled()) return;
    if (state_->deadline.set())
      throw CancelledError("deadline exceeded");
    throw CancelledError("request cancelled");
  }

  [[nodiscard]] Deadline deadline() const {
    return state_ != nullptr ? state_->deadline : Deadline{};
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    Deadline deadline;
  };
  std::shared_ptr<State> state_;
};

}  // namespace gpustatic::common
