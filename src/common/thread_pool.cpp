#include "common/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace gpustatic {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t background = threads == 0 ? 0 : threads - 1;
  workers_.reserve(background);
  for (std::size_t t = 0; t < background; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::work_on_current_batch() {
  for (;;) {
    const std::size_t k = next_.fetch_add(1, std::memory_order_relaxed);
    if (k >= batch_n_) return;
    try {
      (*batch_fn_)(k);
    } catch (...) {
      const std::scoped_lock lock(failure_mutex_);
      if (!failure_) failure_ = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock lock(mutex_);
  for (;;) {
    wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    ++active_;
    lock.unlock();
    work_on_current_batch();
    lock.lock();
    if (--active_ == 0) done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Inline path: no background workers (size-1 pool) or nothing to
    // share — run on the caller, exceptions propagate directly.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::unique_lock lock(mutex_);
  // One batch at a time: a second caller waits for the pool to drain.
  done_.wait(lock, [&] { return active_ == 0 && batch_fn_ == nullptr; });
  batch_n_ = n;
  batch_fn_ = &fn;
  next_.store(0, std::memory_order_relaxed);
  failure_ = nullptr;
  ++generation_;
  lock.unlock();
  wake_.notify_all();

  work_on_current_batch();  // the caller is a participant

  lock.lock();
  done_.wait(lock, [&] { return active_ == 0; });
  batch_fn_ = nullptr;
  done_.notify_all();  // release any caller queued behind us
  std::exception_ptr failure;
  {
    const std::scoped_lock failure_lock(failure_mutex_);
    failure = failure_;
    failure_ = nullptr;
  }
  lock.unlock();
  if (failure) std::rethrow_exception(failure);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(configured_threads());
  return pool;
}

std::size_t ThreadPool::configured_threads() {
  if (const char* env = std::getenv("GPUSTATIC_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace gpustatic
