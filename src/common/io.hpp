#pragma once

// Small file-I/O helpers shared by the persistence layers (tuning
// store, journal files). The one policy decision that lives here is
// atomic replacement: write_file_atomic stages the content in a
// temporary sibling and renames it over the target, so readers never
// observe a half-written file and a crash mid-save leaves the previous
// version intact.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace gpustatic::io {

/// Whole-file read. Returns nullopt when `path` does not exist; throws
/// Error when it exists but cannot be opened or read.
[[nodiscard]] std::optional<std::string> read_file_if_exists(
    const std::string& path);

/// Atomically replace `path` with `content`: the bytes are written to a
/// unique temporary file in the same directory (same filesystem, so the
/// rename is atomic), fsynced, and renamed over the target; the parent
/// directory is fsynced after the rename so the replacement survives a
/// crash or power cut. On any failure the temporary is removed and
/// Error is thrown; the target keeps its previous content.
void write_file_atomic(const std::string& path, std::string_view content);

/// Remove stale `<path>.tmp.<pid>` siblings left behind by writers that
/// died mid-save. Only files whose writer pid no longer exists (or is
/// this process) are reclaimed; a live writer's in-flight temp is left
/// alone. Returns the number of files removed. Never throws — sweeping
/// is best-effort hygiene on the load path.
std::size_t sweep_stale_tmp_files(const std::string& path);

}  // namespace gpustatic::io
