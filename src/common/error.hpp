#pragma once

#include <stdexcept>
#include <string>

namespace gpustatic {

/// Base class for all errors raised by the gpustatic library.
///
/// Every module throws a subclass of this so callers can catch library
/// failures separately from standard-library exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when textual input (PTX-like assembly, tuning specs) fails to parse.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, std::size_t line)
      : Error("parse error at line " + std::to_string(line) + ": " + what),
        line_(line) {}

  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Raised when a request names an unknown entity (GPU, kernel, parameter...).
class LookupError : public Error {
 public:
  explicit LookupError(const std::string& what) : Error(what) {}
};

/// Raised when a configuration is illegal for the target architecture,
/// e.g. more registers per thread than the compute capability supports.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

}  // namespace gpustatic
