#include "common/io.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace gpustatic::io {

namespace {

/// Directory part of `path` ("." when it has none) — for fsyncing the
/// parent after the rename.
std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

[[noreturn]] void fail_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

/// write(2) until every byte is down, retrying EINTR.
void write_all(int fd, const char* data, std::size_t size,
               const std::string& tmp) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t wrote = ::write(fd, data + done, size - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      fail_errno("error writing '" + tmp + "'");
    }
    done += static_cast<std::size_t>(wrote);
  }
}

}  // namespace

std::optional<std::string> read_file_if_exists(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return std::nullopt;
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open '" + path + "' for reading");
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad()) throw Error("error reading '" + path + "'");
  return text.str();
}

void write_file_atomic(const std::string& path, std::string_view content) {
  // Unique per process: concurrent savers of *different* stores never
  // collide, and a crashed save leaves at most one stale .tmp sibling
  // (which sweep_stale_tmp_files reclaims on the next load).
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));

  // POSIX I/O rather than ofstream: crash safety needs fsync on the
  // temp file before the rename (otherwise the rename can hit the disk
  // first and a power cut surfaces an empty/torn target) and fsync on
  // the parent directory after (so the rename itself is durable).
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail_errno("cannot open '" + tmp + "' for writing");
  try {
    write_all(fd, content.data(), content.size(), tmp);
    int rc;
    do {
      rc = ::fsync(fd);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) fail_errno("cannot fsync '" + tmp + "'");
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::close(fd) < 0) {
    ::unlink(tmp.c_str());
    fail_errno("error closing '" + tmp + "'");
  }

  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    errno = saved;
    fail_errno("cannot rename '" + tmp + "' to '" + path + "'");
  }

  // Make the rename durable. Failure here is not worth failing the save
  // over — the data is safely in the new file and the directory entry
  // will land shortly — so a directory that can't be opened or synced
  // (exotic filesystems) degrades silently.
  const int dir_fd = ::open(parent_dir(path).c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    int rc;
    do {
      rc = ::fsync(dir_fd);
    } while (rc < 0 && errno == EINTR);
    ::close(dir_fd);
  }
}

std::size_t sweep_stale_tmp_files(const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path target(path);
  const fs::path dir =
      target.has_parent_path() ? target.parent_path() : fs::path(".");
  const std::string prefix = target.filename().string() + ".tmp.";

  std::size_t removed = 0;
  fs::directory_iterator it(dir, ec);
  if (ec) return 0;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    // The suffix is the pid of the writer; only reclaim files whose
    // writer is provably gone (kill(pid, 0) -> ESRCH). A live writer's
    // in-flight temp must not be yanked out from under it.
    const std::string pid_str = name.substr(prefix.size());
    char* end = nullptr;
    const long pid = std::strtol(pid_str.c_str(), &end, 10);
    if (end == pid_str.c_str() || *end != '\0' || pid <= 0) continue;
    if (pid != static_cast<long>(::getpid()) &&
        ::kill(static_cast<pid_t>(pid), 0) == 0) {
      continue;  // writer still alive
    }
    if (pid != static_cast<long>(::getpid()) && errno != ESRCH) continue;
    std::error_code rm_ec;
    if (fs::remove(entry.path(), rm_ec) && !rm_ec) ++removed;
  }
  return removed;
}

}  // namespace gpustatic::io
