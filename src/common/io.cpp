#include "common/io.hpp"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace gpustatic::io {

std::optional<std::string> read_file_if_exists(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return std::nullopt;
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open '" + path + "' for reading");
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad()) throw Error("error reading '" + path + "'");
  return text.str();
}

void write_file_atomic(const std::string& path, std::string_view content) {
  // Unique per process: concurrent savers of *different* stores never
  // collide, and a crashed save leaves at most one stale .tmp sibling.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("cannot open '" + tmp + "' for writing");
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw Error("error writing '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("cannot rename '" + tmp + "' to '" + path + "'");
  }
}

}  // namespace gpustatic::io
