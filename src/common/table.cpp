#include "common/table.hpp"

#include <algorithm>

namespace gpustatic {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  align_.assign(header_.size(), Align::Right);
  if (!align_.empty()) align_[0] = Align::Left;
}

void TextTable::set_align(std::size_t col, Align a) {
  if (col < align_.size()) align_[col] = a;
}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      width[c] = std::max(width[c], row.cells[c].size());

  auto pad = [&](const std::string& s, std::size_t c) {
    std::string out;
    const std::size_t fill = width[c] - std::min(width[c], s.size());
    if (align_[c] == Align::Right) out.append(fill, ' ');
    out += s;
    if (align_[c] == Align::Left) out.append(fill, ' ');
    return out;
  };

  auto rule = [&]() {
    std::string out = "+";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      out.append(width[c] + 2, '-');
      out.push_back('+');
    }
    out.push_back('\n');
    return out;
  };

  std::string out = rule();
  out += "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += " " + pad(header_[c], c) + " |";
  }
  out += "\n" + rule();
  for (const auto& row : rows_) {
    if (row.rule_before) out += rule();
    out += "|";
    for (std::size_t c = 0; c < header_.size(); ++c)
      out += " " + pad(row.cells[c], c) + " |";
    out += "\n";
  }
  out += rule();
  return out;
}

std::string ascii_bar(double value, double maximum, std::size_t width) {
  if (maximum <= 0.0 || value <= 0.0 || width == 0) return "";
  const double frac = std::min(1.0, value / maximum);
  const auto n =
      static_cast<std::size_t>(frac * static_cast<double>(width) + 0.5);
  return std::string(n, '#');
}

}  // namespace gpustatic
