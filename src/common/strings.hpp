#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gpustatic::str {

/// Strip ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Split on a single character; empty fields are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Split on any run of whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);

/// Lowercase copy (ASCII only).
[[nodiscard]] std::string to_lower(std::string_view s);

/// printf-style formatting into a std::string (vsnprintf underneath).
/// The compiler checks the format string against the arguments.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// printf-style helpers used by the table/bench printers.
[[nodiscard]] std::string format_double(double v, int precision);
/// Fixed-precision with trailing-zero trimming ("1.50" -> "1.5", "2.00" -> "2").
[[nodiscard]] std::string format_trimmed(double v, int max_precision);
/// Thousands-separated integer rendering ("4141130" -> "4,141,130").
[[nodiscard]] std::string format_grouped(long long v);

/// Join a range of strings with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// 1-based number of the last line containing non-whitespace; 0 when
/// the text has none. Used by the line-oriented persistence formats to
/// tell a truncated final line (recoverable) from interior corruption.
[[nodiscard]] std::size_t last_content_line(std::string_view text);

/// Copy of `text` with 1-based line `line` removed (its newline too).
[[nodiscard]] std::string drop_line(std::string_view text,
                                    std::size_t line);

}  // namespace gpustatic::str
