#pragma once

// Persistent worker-thread pool for data-parallel batches. The tuner's
// batch-first execution model funnels every parallel fan-out (simulator
// batches, sweeps, benches) through one shared pool instead of spawning
// a fresh std::thread set per batch — thread creation costs more than a
// cheap variant evaluation, and a persistent pool keeps batch dispatch
// O(condition-variable wake) instead of O(clone).
//
// parallel_for(n, fn) runs fn(0..n-1) with dynamic (atomic counter)
// scheduling. The calling thread participates, so a pool of size 1 owns
// no background threads at all and runs everything inline — the right
// shape for 1-core CI boxes. Worker count comes from GPUSTATIC_THREADS
// (see configured_threads) so constrained environments can pin it.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gpustatic {

class ThreadPool {
 public:
  /// A pool of `threads` participants (>= 1). `threads - 1` background
  /// workers are spawned; the caller of parallel_for is the last one.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total participants (background workers + the calling thread).
  [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

  /// Run fn(i) for every i in [0, n), blocking until all complete.
  /// Indices are claimed dynamically, one at a time, so uneven per-item
  /// cost balances automatically. If any invocation throws, the first
  /// exception (in completion order) is rethrown here after the batch
  /// drains; remaining indices are still claimed but their results are
  /// whatever fn left behind. Not reentrant from inside fn.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

  /// The process-wide pool, created on first use with
  /// configured_threads() participants.
  static ThreadPool& shared();

  /// Pool size policy: the GPUSTATIC_THREADS environment variable when
  /// set to a positive integer, else std::thread::hardware_concurrency
  /// (min 1). Read once per call, so tests can setenv before first use
  /// of shared().
  [[nodiscard]] static std::size_t configured_threads();

 private:
  void worker_loop();
  void work_on_current_batch();

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;  ///< bumped once per parallel_for batch
  std::size_t active_ = 0;        ///< workers still inside current batch

  // Current batch (valid while active_ > 0 or a batch is being seeded).
  std::size_t batch_n_ = 0;
  const std::function<void(std::size_t)>* batch_fn_ = nullptr;
  std::atomic<std::size_t> next_{0};
  std::exception_ptr failure_;
  std::mutex failure_mutex_;
};

}  // namespace gpustatic
