#include "core/fleet.hpp"

#include <cmath>
#include <sstream>

#include "arch/gpu_spec.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "kernels/kernels.hpp"

namespace gpustatic::core {

namespace {

/// Expand the requested GPU names, resolving "all" and validating the
/// rest against the Table I database (throws LookupError).
std::vector<const arch::GpuSpec*> resolve_gpus(
    const std::vector<std::string>& names) {
  std::vector<const arch::GpuSpec*> out;
  for (const std::string& name : names) {
    if (str::to_lower(name) == "all") {
      out.clear();
      for (const arch::GpuSpec& g : arch::all_gpus()) out.push_back(&g);
      return out;
    }
    out.push_back(&arch::gpu(name));
  }
  if (out.empty()) out.push_back(&arch::gpu("K20"));
  return out;
}

/// The whole library: base (Table IV) + extended suites, registry order.
std::vector<std::string> all_kernel_names() {
  std::vector<std::string> out;
  for (const kernels::KernelInfo& k : kernels::all_kernels())
    out.emplace_back(k.name);
  for (const kernels::KernelInfo& k : kernels::extended_kernels())
    out.emplace_back(k.name);
  return out;
}

/// JSON number: finite values round-trip via %.17g; non-finite (an
/// invalid variant) renders as null, which JSON can represent.
std::string json_number(double v) {
  return std::isfinite(v) ? str::format("%.17g", v) : "null";
}

std::string format_time(double v) {
  return std::isfinite(v) ? str::format("%.4f", v) : "-";
}

}  // namespace

std::int64_t FleetSession::default_size(std::string_view kernel) {
  return kernel == "ex14fj" ? 16 : 128;
}

FleetSession::FleetSession(tuner::TuningStore& store, FleetOptions options)
    : store_(&store), options_(std::move(options)) {
  const std::vector<const arch::GpuSpec*> gpus =
      resolve_gpus(options_.gpus);
  const std::vector<std::string> kernels = options_.kernels.empty()
                                               ? all_kernel_names()
                                               : options_.kernels;
  for (const arch::GpuSpec* gpu : gpus) {
    for (const std::string& kernel : kernels) {
      tuner::FleetJob job;
      job.kernel = kernel;
      job.n = options_.n > 0 ? options_.n : default_size(kernel);
      job.workload = kernels::make_workload(kernel, job.n);
      job.gpu = gpu;
      job.space = options_.space;
      jobs_.push_back(std::move(job));
    }
  }
}

FleetReport FleetSession::run() {
  tuner::FleetTuneOptions opts;
  opts.method = options_.method;
  opts.search = options_.search;
  opts.hybrid = options_.hybrid;
  opts.run = options_.run;

  FleetReport report;
  report.rows = tuner::tune_fleet(jobs_, *store_, opts);
  for (const tuner::FleetJobReport& row : report.rows) {
    report.fresh_evaluations += row.fresh_evaluations;
    report.warm_hits += row.warm_hits;
    if (!row.ok()) ++report.failed;
  }
  report.store_records = store_->size();
  return report;
}

std::string render_fleet_table(const FleetReport& report) {
  TextTable t({"kernel", "GPU", "n", "best variant", "time ms", "pred",
               "evals", "fresh", "warm", "space"});
  for (const tuner::FleetJobReport& row : report.rows) {
    if (!row.ok()) {
      t.add_row({row.kernel, row.gpu, std::to_string(row.n),
                 "ERROR: " + row.error, "-", "-", "-", "-", "-", "-"});
      continue;
    }
    t.add_row({row.kernel, row.gpu, std::to_string(row.n),
               row.outcome.search.best_params.to_string(),
               format_time(row.outcome.search.best_time),
               std::isfinite(row.predicted_cost)
                   ? str::format("%.2f", row.predicted_cost)
                   : "-",
               std::to_string(row.outcome.search.distinct_evaluations),
               std::to_string(row.fresh_evaluations),
               std::to_string(row.warm_hits),
               std::to_string(row.outcome.space_size) + "/" +
                   std::to_string(row.outcome.full_space_size)});
  }
  std::ostringstream os;
  os << t.render();
  os << "fleet: " << report.rows.size() << " jobs, "
     << report.fresh_evaluations << " fresh simulator runs, "
     << report.warm_hits << " warm hits, store has "
     << report.store_records << " records";
  if (report.failed > 0) os << ", " << report.failed << " FAILED";
  os << "\n";
  return os.str();
}

std::string render_fleet_json(const FleetReport& report) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"fresh_evaluations\": " << report.fresh_evaluations << ",\n";
  os << "  \"warm_hits\": " << report.warm_hits << ",\n";
  os << "  \"failed\": " << report.failed << ",\n";
  os << "  \"store_records\": " << report.store_records << ",\n";
  os << "  \"kernels\": [";
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const tuner::FleetJobReport& row = report.rows[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"kernel\": \"" << row.kernel << "\", \"gpu\": \""
       << row.gpu << "\", \"n\": " << row.n << ", \"method\": \""
       << row.method << "\"";
    if (row.ok()) {
      os << ", \"best_params\": \""
         << row.outcome.search.best_params.to_string() << "\""
         << ", \"best_time_ms\": "
         << json_number(row.outcome.search.best_time)
         << ", \"predicted_cost\": " << json_number(row.predicted_cost)
         << ", \"evaluations\": "
         << row.outcome.search.distinct_evaluations
         << ", \"fresh_evaluations\": " << row.fresh_evaluations
         << ", \"warm_hits\": " << row.warm_hits
         << ", \"space_size\": " << row.outcome.space_size
         << ", \"full_space_size\": " << row.outcome.full_space_size;
    } else {
      // Errors are library messages (no quotes/backslashes in
      // practice), but escape defensively so the artifact stays JSON.
      std::string escaped;
      for (const char c : row.error) {
        if (c == '"' || c == '\\') escaped.push_back('\\');
        escaped.push_back(c == '\n' ? ' ' : c);
      }
      os << ", \"error\": \"" << escaped << "\"";
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string render_fleet_csv(const FleetReport& report) {
  std::ostringstream os;
  os << "kernel,gpu,n,method,best_params,best_time_ms,predicted_cost,"
        "evaluations,fresh_evaluations,warm_hits,space_size,"
        "full_space_size,error\n";
  for (const tuner::FleetJobReport& row : report.rows) {
    os << row.kernel << "," << row.gpu << "," << row.n << ","
       << row.method << ",";
    if (row.ok()) {
      // TuningParams::to_string is space-separated key=value tokens —
      // comma-free, so it needs no CSV quoting.
      os << row.outcome.search.best_params.to_string() << ","
         << format_time(row.outcome.search.best_time) << ","
         << (std::isfinite(row.predicted_cost)
                 ? str::format("%.6f", row.predicted_cost)
                 : "-")
         << "," << row.outcome.search.distinct_evaluations << ","
         << row.fresh_evaluations << "," << row.warm_hits << ","
         << row.outcome.space_size << "," << row.outcome.full_space_size
         << ",\n";
    } else {
      std::string sanitized = row.error;
      for (char& c : sanitized)
        if (c == ',' || c == '\n') c = ' ';
      os << ",,,,,,,," << sanitized << "\n";
    }
  }
  return os.str();
}

std::string render_fleet_report(const FleetReport& report,
                                const std::string& format) {
  validate_fleet_report_format(format);
  if (format == "json") return render_fleet_json(report);
  if (format == "csv") return render_fleet_csv(report);
  return render_fleet_table(report);
}

void validate_fleet_report_format(const std::string& format) {
  if (format != "table" && format != "json" && format != "csv")
    throw Error("unknown fleet report format '" + format +
                "' (expected table|json|csv)");
}

}  // namespace gpustatic::core
