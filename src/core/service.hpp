#pragma once

// TuningService: the one entrypoint every tuning driver goes through.
// The CLI `tune` and `tune-fleet` subcommands, the fleet bench, and the
// `gpustatic serve` daemon are all thin adapters that build a typed
// TuneRequest (kernel/GPU/size identity + method + store policy) and
// call tune(); the service owns everything the drivers used to
// hand-assemble — workload loading, the persistent TuningStore (with
// read/write locking), and a process-wide cache of compiled evaluation
// pipelines — so concurrent callers share compilations and
// measurements instead of each paying for their own.
//
// Concurrency contract:
//   * tune() is safe to call from any number of threads.
//   * Identical concurrent requests are single-flighted: the first
//     caller (the leader) runs the search, the rest block on its result
//     and receive a copy flagged `deduplicated` — N clients asking for
//     the same (kernel, gpu, n, method, ...) cost one search.
//   * Store reads snapshot the warm-start context under a shared lock;
//     harvested measurements merge back under an exclusive lock; disk
//     persistence goes through TuningStore::merge_and_save, so a
//     concurrent CLI run (or another daemon) never loses records.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/deadline.hpp"
#include "core/fleet.hpp"
#include "dsl/ast.hpp"
#include "learn/model.hpp"
#include "learn/trainer.hpp"
#include "sim/context.hpp"
#include "tuner/fleet.hpp"
#include "tuner/store.hpp"

namespace gpustatic::core {

/// How one request interacts with the service's TuningStore.
struct StorePolicy {
  bool read = true;   ///< warm-start from stored measurements
  bool write = true;  ///< merge this search's measurements back
};

/// One fully specified tuning request: what to tune (kernel/GPU/size
/// identity), how (method + search knobs + space), and the store
/// policy. The superset of core::TuningRequest a stateless service
/// needs — a TuningSession already knows its workload and GPU; a
/// service request must carry them.
struct TuneRequest {
  std::string kernel;        ///< registry name or kernel source path
  std::string gpu = "K20";   ///< Table I GPU name
  std::int64_t n = 0;        ///< problem size; 0 = per-kernel default
  std::string method = "rule";
  tuner::SearchOptions search;
  tuner::HybridOptions hybrid;  ///< hybrid dial (empirical budget, ...)
  tuner::ParamSpace space = tuner::paper_space();
  sim::RunOptions run;
  StorePolicy store;
  /// Cooperative deadline/cancellation for this request. Deliberately
  /// NOT part of request_key(): requests differing only in deadline are
  /// the same search, and a follower with a shorter deadline than its
  /// leader gives up in-band instead of forking a flight. A cancelled
  /// search returns a response with timed_out set and partial
  /// accounting — never throws out of tune().
  common::CancelToken cancel;
};

/// The request's outcome plus the service's own accounting. The
/// FleetJobReport base carries identity, the strategy outcome, the
/// fresh/warm evaluation split, and the error field (`ok()`); failures
/// are reported, not thrown, so daemon workers need no handlers.
struct TuneResponse : tuner::FleetJobReport {
  /// True when this response was answered by a concurrent leader's
  /// search rather than a search of its own (single-flight follower).
  bool deduplicated = false;
  /// Compiler runs this request triggered in the shared pipeline; 0 on
  /// a warm repeat (the compile-once promise, service-wide).
  std::size_t compiles = 0;
};

class TuningService {
 public:
  struct Config {
    /// Store file to load at construction and persist into; empty = a
    /// purely in-memory store.
    std::string store_path;
    /// When > 0, persist (merge_and_save) after every `save_every`
    /// store-writing requests, so a daemon crash loses at most that
    /// window. 0 = only explicit persist() calls write the file.
    std::size_t save_every = 0;
    /// Learned cost-model file (learn::CostModel). When set, the model
    /// is loaded leniently at construction (missing or corrupt file =
    /// no model + a load warning, never a failed start) and installed
    /// as the hybrid strategy's stage-1 ranker; retrain() saves back
    /// here. Empty = analytic ranking only.
    std::string model_path;
    /// Upper bound on cached evaluation pipelines (one per distinct
    /// (kernel, gpu, n, run) context); the cache is reset when full.
    std::size_t max_contexts = 64;
    /// Observability hook: runs on the leader's thread immediately
    /// before each fresh search (not for deduplicated followers or
    /// store-answered warm repeats — those run no search of their own).
    std::function<void(const TuneRequest&)> before_search;
  };

  /// Request/search accounting across the service's lifetime.
  struct Stats {
    std::size_t requests = 0;      ///< tune() calls accepted
    std::size_t searches = 0;      ///< searches actually run (leaders)
    std::size_t deduplicated = 0;  ///< followers answered by a leader
    /// Leader searches split by the request's analytic mode, so `stats`
    /// shows how much the wave model is actually exercised.
    std::size_t classic_searches = 0;
    std::size_t wave_searches = 0;
    // Graceful-degradation accounting (the chaos dashboard).
    std::size_t timed_out = 0;  ///< searches cancelled by their deadline
    /// Store saves that needed a retry (bounded backoff) before
    /// succeeding — counts attempts beyond the first, not saves.
    std::size_t store_save_retries = 0;
    /// Periodic saves abandoned after every retry failed; the records
    /// stay in memory for the next save window, so this is degradation,
    /// not loss — until a crash.
    std::size_t store_save_failures = 0;
  };

  /// Loads Config::store_path when set (a missing file is an empty
  /// store; corruption throws, truncated final lines are recoverable
  /// and land in load_warnings()).
  explicit TuningService(Config config);
  TuningService() : TuningService(Config{}) {}
  ~TuningService();

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Resolve and run one request. Thread-safe; single-flights identical
  /// concurrent requests. Failures land in the response's error field.
  [[nodiscard]] TuneResponse tune(const TuneRequest& request);

  /// Whole-library fleet pass over the service's store (the `tune-fleet`
  /// entrypoint). Holds the store exclusively for the duration, then
  /// persists when a store path is configured. Throws LookupError/Error
  /// on invalid options, exactly like FleetSession.
  [[nodiscard]] FleetReport tune_fleet(const FleetOptions& options);

  /// Persist the store now via TuningStore::merge_and_save (no-op
  /// without a configured path). Also runs on destruction, so an
  /// orderly shutdown never loses the in-memory tail.
  void persist();

  /// Read-only store lookup: the best stored measurement for
  /// (kernel, gpu, n) — zero searches, zero compiles. n <= 0 resolves
  /// to the per-kernel default exactly like tune().
  struct QueryResult {
    bool found = false;           ///< a valid measured record exists
    tuner::MeasuredVariant best;  ///< the smallest measured_ms (if found)
    std::size_t records = 0;      ///< stored records for this context
  };
  [[nodiscard]] QueryResult query(const std::string& kernel,
                                  const std::string& gpu,
                                  std::int64_t n) const;

  /// Snapshot of the installed learned cost model (stats/`serve`
  /// observability). Fields are zero/false when no model is loaded.
  struct ModelInfo {
    bool loaded = false;
    int version = 0;           ///< model file format version
    std::uint64_t records = 0; ///< training rows the model was fit on
    std::uint64_t generation = 0;  ///< bumps on every install/retrain
  };
  [[nodiscard]] ModelInfo model_info() const;

  /// Retrain the learned cost model from the service's current store,
  /// save it to Config::model_path (when set), and install it for
  /// subsequent hybrid searches. Failures (not enough data, save
  /// errors) land in `error`, never throw — daemons call this from a
  /// protocol handler. `options.corpus.load_workload` is overridden
  /// with the service's own loader so path-named kernels join too.
  struct RetrainResult {
    std::string error;
    std::size_t store_records = 0;
    std::size_t trained_rows = 0;
    std::size_t validation_rows = 0;
    double mean_spearman = 0;
    std::uint64_t generation = 0;  ///< of the newly installed model
    [[nodiscard]] bool ok() const { return error.empty(); }
  };
  [[nodiscard]] RetrainResult retrain(learn::TrainOptions options = {});

  [[nodiscard]] Stats stats() const;
  /// Compile-cache hit/miss totals per codegen backend, aggregated over
  /// the service's cached evaluation pipelines. Every registered
  /// backend appears (zeros when unused), so `serve` stats render a
  /// stable field set.
  [[nodiscard]] std::map<std::string, codegen::CompileCacheStats>
  cache_stats();
  /// Warnings from the construction-time store load (e.g. a truncated
  /// final line that was skipped).
  [[nodiscard]] const std::vector<std::string>& load_warnings() const {
    return load_warnings_;
  }
  /// Non-empty when Config::model_path named a file that existed but
  /// could not be used (corrupt/stale schema) at construction — the
  /// service is running in degraded mode with analytic ranking only.
  /// Empty on a clean load and on a normal cold start (no file).
  [[nodiscard]] const std::string& model_load_error() const {
    return model_load_error_;
  }
  [[nodiscard]] std::size_t store_records() const;
  [[nodiscard]] const Config& config() const { return config_; }

  /// The canonical request identity string: every field that can change
  /// the outcome (kernel, gpu, n, method, seed, budgets, space, run
  /// options). Two requests with equal keys are interchangeable — the
  /// single-flight and context-cache key.
  [[nodiscard]] static std::string request_key(const TuneRequest& request);

 private:
  struct Flight {
    std::mutex mu;
    std::condition_variable done_cv;
    bool done = false;
    TuneResponse response;
  };

  [[nodiscard]] TuneResponse run_search(const TuneRequest& request);
  [[nodiscard]] std::shared_ptr<sim::SimContext> context_for(
      const tuner::FleetJob& job, const sim::RunOptions& run);
  void merge_harvest(const std::vector<tuner::StoreRecord>& harvest);
  /// merge_and_save with bounded-backoff retries (store_mu_ must be held
  /// exclusively). Returns false when every attempt failed; counts
  /// retries/failures into stats_. Throws nothing.
  bool save_with_retries();
  void count_timed_out();

  Config config_;
  std::vector<std::string> load_warnings_;
  std::string model_load_error_;

  mutable std::shared_mutex store_mu_;
  tuner::TuningStore store_;
  std::size_t writes_since_persist_ = 0;

  // The installed cost model is an immutable snapshot behind a shared
  // pointer: searches grab the pointer under a shared lock and keep
  // using it lock-free; retrain() swaps in a new snapshot and bumps the
  // generation (which is part of the single-flight key, so a request
  // racing a retrain never shares a flight across model versions).
  mutable std::shared_mutex model_mu_;
  std::shared_ptr<const learn::CostModel> model_;
  std::uint64_t model_generation_ = 0;

  std::mutex contexts_mu_;
  std::map<std::string, std::shared_ptr<sim::SimContext>> contexts_;

  mutable std::mutex flights_mu_;
  std::map<std::string, std::shared_ptr<Flight>> flights_;
  Stats stats_;
};

/// Load a workload by kernel-registry name or source-file path (a name
/// containing '/' or ending in .gk/.src is a path), at problem size
/// `n`; n <= 0 resolves to the per-kernel default the CLI and fleet
/// planner share (FleetSession::default_size). Throws LookupError on
/// unknown registry names and Error on unreadable/unparsable files.
[[nodiscard]] dsl::WorkloadDesc load_workload(const std::string& kernel,
                                              std::int64_t n);

}  // namespace gpustatic::core
