#include "core/service.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "arch/gpu_spec.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "frontend/parser.hpp"
#include "kernels/kernels.hpp"
#include "learn/evaluator.hpp"

namespace gpustatic::core {

namespace {

bool looks_like_path(const std::string& s) {
  return s.find('/') != std::string::npos ||
         str::ends_with(s, ".gk") || str::ends_with(s, ".src");
}

/// Everything that can change a search outcome, one line per concern.
void append_space_signature(std::ostream& os,
                            const tuner::ParamSpace& space) {
  for (const tuner::Dimension& d : space.dimensions()) {
    os << '|' << d.name << '=';
    for (std::size_t i = 0; i < d.values.size(); ++i)
      os << (i ? "," : "") << d.values[i];
  }
}

}  // namespace

dsl::WorkloadDesc load_workload(const std::string& kernel,
                                std::int64_t n) {
  if (n <= 0) n = FleetSession::default_size(kernel);
  if (looks_like_path(kernel)) {
    std::ifstream in(kernel);
    if (!in) throw Error("cannot open kernel source '" + kernel + "'");
    std::ostringstream text;
    text << in.rdbuf();
    return frontend::parse_workload(text.str(), n);
  }
  return kernels::make_workload(kernel, n);
}

std::string TuningService::request_key(const TuneRequest& r) {
  std::ostringstream os;
  os << r.kernel << '|' << r.gpu << '|' << r.n << '|' << r.method;
  os << "|seed=" << r.search.seed << "|sbudget=" << r.search.budget
     << "|sa=" << r.search.sa_initial_temp << ',' << r.search.sa_cooling
     << "|ga=" << r.search.ga_population << ','
     << r.search.ga_mutation_rate << ',' << r.search.ga_tournament << ','
     << r.search.ga_max_stall << "|nm=" << r.search.nm_restarts;
  os << "|hb=" << r.hybrid.empirical_budget << ',' << r.hybrid.use_rule
     << ',' << r.hybrid.baseline.to_string();
  os << "|run=" << static_cast<int>(r.run.engine) << ','
     << r.run.repetitions << ',' << r.run.report_trial << ','
     << r.run.noise_stddev << ',' << r.run.seed << ','
     << r.run.backend << ','
     << sim::analytic_mode_name(r.run.analytic.mode);
  os << "|store=" << r.store.read << r.store.write;
  append_space_signature(os, r.space);
  return os.str();
}

TuningService::TuningService(Config config) : config_(std::move(config)) {
  if (!config_.store_path.empty())
    store_ = tuner::TuningStore::load(config_.store_path, &load_warnings_);
  if (!config_.model_path.empty()) {
    // Lenient: a daemon must come up with analytic ranking rather than
    // refuse to start over a missing/corrupt model file.
    const std::size_t warnings_before = load_warnings_.size();
    if (auto model = learn::CostModel::load_lenient(config_.model_path,
                                                    &load_warnings_)) {
      model_ = std::make_shared<const learn::CostModel>(std::move(*model));
      model_generation_ = 1;
    } else if (load_warnings_.size() > warnings_before) {
      // The file existed but was unusable (vs. a normal cold start,
      // which emits no warning): remember it so `stats` can surface the
      // degraded mode instead of it dying silently in a warning list
      // nobody reads.
      model_load_error_ = load_warnings_.back();
    }
  }
}

TuningService::~TuningService() {
  try {
    persist();
  } catch (...) {
    // A failed shutdown save must not terminate the process; the
    // periodic saves bounded the loss already.
  }
}

TuningService::Stats TuningService::stats() const {
  const std::lock_guard<std::mutex> lock(flights_mu_);
  return stats_;
}

void TuningService::count_timed_out() {
  const std::lock_guard<std::mutex> lock(flights_mu_);
  ++stats_.timed_out;
}

TuningService::ModelInfo TuningService::model_info() const {
  const std::shared_lock<std::shared_mutex> lock(model_mu_);
  ModelInfo info;
  info.generation = model_generation_;
  if (model_ != nullptr) {
    info.loaded = true;
    info.version = model_->meta.version;
    info.records = model_->meta.records;
  }
  return info;
}

TuningService::RetrainResult TuningService::retrain(
    learn::TrainOptions options) {
  RetrainResult result;
  // Train on a snapshot so a long fit never blocks tuning writers.
  tuner::TuningStore snapshot;
  {
    const std::shared_lock<std::shared_mutex> lock(store_mu_);
    for (const tuner::StoreRecord& r : store_.records()) snapshot.put(r);
  }
  result.store_records = snapshot.size();
  options.corpus.load_workload = [](const std::string& kernel,
                                    std::int64_t n) {
    return load_workload(kernel, n);
  };
  learn::TrainReport report;
  try {
    report = learn::train_cost_model(snapshot, options);
  } catch (const std::exception& e) {
    result.error = e.what();
    return result;
  }
  result.trained_rows = report.train_rows;
  result.validation_rows = report.validation_rows;
  result.mean_spearman = report.mean_spearman;
  if (!config_.model_path.empty()) {
    try {
      report.model.save(config_.model_path);
    } catch (const std::exception& e) {
      // The fit is sound but not durable — report it rather than
      // installing a model the next start won't have.
      result.error = std::string("model trained but save failed: ") +
                     e.what();
      return result;
    }
  }
  {
    const std::unique_lock<std::shared_mutex> lock(model_mu_);
    model_ = std::make_shared<const learn::CostModel>(
        std::move(report.model));
    result.generation = ++model_generation_;
  }
  return result;
}

std::size_t TuningService::store_records() const {
  const std::shared_lock<std::shared_mutex> lock(store_mu_);
  return store_.size();
}

bool TuningService::save_with_retries() {
  // Transient save failures (a crashed sibling holding the lock file, a
  // full-for-a-moment disk, an injected store.save fault) get a bounded
  // backoff; anything still failing after that is reported, not thrown
  // — the records stay in memory for the next save window.
  constexpr int kAttempts = 3;
  constexpr std::chrono::milliseconds kBackoff[] = {
      std::chrono::milliseconds(10), std::chrono::milliseconds(50)};
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(kBackoff[attempt - 1]);
      const std::lock_guard<std::mutex> lock(flights_mu_);
      ++stats_.store_save_retries;
    }
    try {
      store_.merge_and_save(config_.store_path);
      writes_since_persist_ = 0;
      return true;
    } catch (const std::exception&) {
      // retry (or fall through to the failure count)
    }
  }
  const std::lock_guard<std::mutex> lock(flights_mu_);
  ++stats_.store_save_failures;
  return false;
}

void TuningService::persist() {
  if (config_.store_path.empty()) return;
  const std::unique_lock<std::shared_mutex> lock(store_mu_);
  if (!save_with_retries())
    throw Error("store: could not persist '" + config_.store_path +
                "' after retries");
}

TuningService::QueryResult TuningService::query(const std::string& kernel,
                                                const std::string& gpu,
                                                std::int64_t n) const {
  if (n <= 0) n = FleetSession::default_size(kernel);
  QueryResult out;
  const std::shared_lock<std::shared_mutex> lock(store_mu_);
  for (const tuner::StoreRecord* r : store_.context(kernel, gpu, n)) {
    ++out.records;
    const tuner::MeasuredVariant& v = r->variant;
    if (!v.valid || !v.measured()) continue;
    if (!out.found || v.measured_ms < out.best.measured_ms) {
      out.found = true;
      out.best = v;
    }
  }
  return out;
}

std::shared_ptr<sim::SimContext> TuningService::context_for(
    const tuner::FleetJob& job, const sim::RunOptions& run) {
  std::ostringstream key;
  key << job.kernel << '|' << job.gpu->name << '|' << job.n << '|'
      << static_cast<int>(run.engine) << ',' << run.repetitions << ','
      << run.report_trial << ',' << run.noise_stddev << ',' << run.seed
      << ',' << run.backend << ','
      << sim::analytic_mode_name(run.analytic.mode);
  const std::string k = key.str();
  const std::lock_guard<std::mutex> lock(contexts_mu_);
  // Evict before inserting: clearing after taking a reference into the
  // map would destroy the node the reference points at.
  if (contexts_.size() >= config_.max_contexts &&
      contexts_.find(k) == contexts_.end()) {
    // Whole-map reset: crude, but it bounds memory and the next
    // request per context simply re-pays one cold compile round.
    contexts_.clear();
  }
  auto& slot = contexts_[k];
  if (slot == nullptr)
    slot = std::make_shared<sim::SimContext>(job.workload, *job.gpu, run);
  return slot;
}

std::map<std::string, codegen::CompileCacheStats>
TuningService::cache_stats() {
  // Every registered backend reports — zeros included — so consumers
  // (serve `stats`) render a stable field set.
  std::map<std::string, codegen::CompileCacheStats> out;
  for (const std::string& name :
       codegen::BackendRegistry::instance().names())
    out[name];
  const std::lock_guard<std::mutex> lock(contexts_mu_);
  for (const auto& [key, context] : contexts_) {
    for (const auto& [name, s] :
         context->compilation_cache().stats_by_backend()) {
      out[name].hits += s.hits;
      out[name].misses += s.misses;
    }
  }
  return out;
}

void TuningService::merge_harvest(
    const std::vector<tuner::StoreRecord>& harvest) {
  const std::unique_lock<std::shared_mutex> lock(store_mu_);
  for (const tuner::StoreRecord& r : harvest) store_.put(r);
  ++writes_since_persist_;
  if (config_.save_every > 0 && !config_.store_path.empty() &&
      writes_since_persist_ >= config_.save_every) {
    // A periodic save that fails after retries degrades (counted),
    // never fails the request: the merged records are in memory and the
    // next window or shutdown persist() tries again.
    (void)save_with_retries();
  }
}

TuneResponse TuningService::run_search(const TuneRequest& request) {
  TuneResponse response;
  response.kernel = request.kernel;
  response.gpu = request.gpu;
  response.n = request.n;
  response.method = request.method;
  try {
    // A request that arrives already past its deadline (e.g. it sat in
    // the admission queue) must not pay for workload loading/compiles.
    request.cancel.throw_if_cancelled();
    tuner::FleetJob job;
    job.kernel = request.kernel;
    job.n = request.n;
    job.workload = load_workload(request.kernel, request.n);
    job.gpu = &arch::gpu(request.gpu);
    job.space = request.space;

    // Snapshot the warm-start context under the read lock, then search
    // without holding it — a long search must not block writers.
    tuner::TuningStore warm;
    if (request.store.read) {
      const std::shared_lock<std::shared_mutex> lock(store_mu_);
      for (const tuner::StoreRecord* r :
           store_.context(job.kernel, job.gpu->name, job.n))
        warm.put(*r);
    }

    const std::shared_ptr<sim::SimContext> context =
        context_for(job, request.run);
    const std::size_t compiles_before =
        context->compilation_cache().stats().misses;

    tuner::FleetTuneOptions opts;
    opts.method = request.method;
    opts.search = request.search;
    opts.hybrid = request.hybrid;
    opts.run = request.run;
    // The request's token rides SearchOptions into the search core
    // (tune_job mirrors it into the hybrid dial and the evaluator memo).
    opts.search.cancel = request.cancel;
    if (!opts.hybrid.stage1) {
      // Install the learned stage-1 ranker when a model is loaded; the
      // ranker itself declines (analytic fallback) when unconfident,
      // and only the hybrid strategy consumes it.
      std::shared_ptr<const learn::CostModel> model;
      {
        const std::shared_lock<std::shared_mutex> lock(model_mu_);
        model = model_;
      }
      if (model != nullptr)
        opts.hybrid.stage1 = learn::make_stage1_ranker(std::move(model));
    }

    if (config_.before_search) config_.before_search(request);
    std::vector<tuner::StoreRecord> harvest;
    static_cast<tuner::FleetJobReport&>(response) =
        tuner::tune_job(job, warm, opts, &harvest, context);
    response.compiles =
        context->compilation_cache().stats().misses - compiles_before;
    // A timed-out search merges too: the measurements taken before the
    // cut are real, and discarding them would make deadline pressure
    // throw away exactly the work it already paid for.
    if ((response.ok() || response.timed_out) && request.store.write)
      merge_harvest(harvest);
  } catch (const common::CancelledError& e) {
    response.timed_out = true;
    response.error = e.what();
  } catch (const std::exception& e) {
    response.error = e.what();
  }
  return response;
}

TuneResponse TuningService::tune(const TuneRequest& request) {
  TuneRequest normalized = request;
  if (normalized.n <= 0)
    normalized.n = FleetSession::default_size(normalized.kernel);
  std::string key = request_key(normalized);
  {
    // The model generation is flight identity too: a follower must not
    // be answered by a leader that searched under a different model.
    const std::shared_lock<std::shared_mutex> lock(model_mu_);
    key += "|model-gen=" + std::to_string(model_generation_);
  }

  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    const std::lock_guard<std::mutex> lock(flights_mu_);
    ++stats_.requests;
    auto it = flights_.find(key);
    if (it == flights_.end()) {
      flight = std::make_shared<Flight>();
      flights_.emplace(key, flight);
      leader = true;
      ++stats_.searches;
      if (normalized.run.analytic.mode == sim::AnalyticMode::Wave)
        ++stats_.wave_searches;
      else
        ++stats_.classic_searches;
    } else {
      flight = it->second;
      ++stats_.deduplicated;
    }
  }

  if (!leader) {
    std::unique_lock<std::mutex> lock(flight->mu);
    if (!normalized.cancel.possible()) {
      // No deadline and no cancel handle: the leader's FlightCloser
      // publishes on every exit path, so this wait always terminates.
      flight->done_cv.wait(lock, [&] { return flight->done; });
    } else {
      while (!flight->done && !normalized.cancel.cancelled()) {
        // Chunked waits bound how stale the cancel check can get; the
        // chunk tracks the remaining deadline so a short deadline is
        // honored tightly and a long one costs few wakeups.
        const auto chunk = std::min<std::int64_t>(
            50, normalized.cancel.deadline().remaining_ms() + 1);
        flight->done_cv.wait_for(lock, std::chrono::milliseconds(chunk),
                                 [&] { return flight->done; });
      }
    }
    if (flight->done) {
      TuneResponse response = flight->response;
      response.deduplicated = true;
      if (response.timed_out) count_timed_out();
      return response;
    }
    lock.unlock();
    // Deadline passed while the leader was still searching: answer
    // in-band rather than holding the caller hostage to a slower
    // leader. The leader's own result still lands in the store.
    TuneResponse response;
    response.kernel = normalized.kernel;
    response.gpu = normalized.gpu;
    response.n = normalized.n;
    response.method = normalized.method;
    response.deduplicated = true;
    response.timed_out = true;
    response.error =
        "deadline exceeded while waiting for deduplicated search";
    count_timed_out();
    return response;
  }

  // The leader must complete the flight on every exit path — including
  // exceptions run_search cannot catch (non-std throws, bad_alloc in
  // its own prologue) — or followers wait forever on a flight nobody
  // owns. The guard publishes whatever `response` holds at unwind time;
  // the sentinel error below is what followers see if the search never
  // produced a real response.
  TuneResponse response;
  response.kernel = normalized.kernel;
  response.gpu = normalized.gpu;
  response.n = normalized.n;
  response.method = normalized.method;
  response.error = "search terminated abnormally";
  struct FlightCloser {
    TuningService* service;
    const std::string& key;
    const std::shared_ptr<Flight>& flight;
    const TuneResponse& response;
    ~FlightCloser() {
      {
        const std::lock_guard<std::mutex> lock(service->flights_mu_);
        service->flights_.erase(key);
      }
      {
        const std::lock_guard<std::mutex> lock(flight->mu);
        flight->response = response;
        flight->done = true;
      }
      flight->done_cv.notify_all();
    }
  } closer{this, key, flight, response};
  response = run_search(normalized);
  if (response.timed_out) count_timed_out();
  return response;
}

FleetReport TuningService::tune_fleet(const FleetOptions& options) {
  FleetReport report;
  {
    const std::unique_lock<std::shared_mutex> lock(store_mu_);
    FleetSession fleet(store_, options);
    report = fleet.run();
    ++writes_since_persist_;
  }
  if (!config_.store_path.empty()) persist();
  return report;
}

}  // namespace gpustatic::core
