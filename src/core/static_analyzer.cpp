#include "core/static_analyzer.hpp"

#include "common/strings.hpp"
#include "tuner/static_search.hpp"

namespace gpustatic::core {

AnalysisReport StaticAnalyzer::analyze(const dsl::WorkloadDesc& workload,
                                       codegen::TuningParams baseline) const {
  AnalysisReport r;
  r.workload = workload.name;
  r.gpu = gpu_->name;
  r.baseline = baseline;

  const codegen::Compiler compiler(*gpu_, baseline);
  const codegen::LoweredWorkload lw = compiler.compile(workload);
  r.regs_per_thread = lw.regs_per_thread();
  r.smem_per_block = lw.smem_per_block();
  r.static_instructions = lw.instruction_count();

  for (const codegen::LoweredStage& st : lw.stages) {
    const analysis::StaticMix m = analysis::analyze_mix(st.kernel);
    r.mix.flat += m.flat;
    r.mix.weighted += m.weighted;
  }
  r.intensity = r.mix.weighted.intensity();
  r.pipeline = analysis::pipeline_utilization(r.mix, gpu_->family);
  r.divergence = analysis::analyze_divergence(lw.stages.front().kernel);
  r.occupancy_at_baseline = occupancy::calculate(
      *gpu_, occupancy::KernelParams{
                 static_cast<std::uint32_t>(baseline.threads_per_block),
                 r.regs_per_thread, r.smem_per_block});
  r.suggestion =
      occupancy::suggest(*gpu_, r.regs_per_thread, r.smem_per_block);
  r.predicted_cost = analysis::predicted_cost(r.mix, gpu_->family);

  r.prefers_upper = r.intensity > tuner::kIntensityThreshold;
  const auto& ts = r.suggestion.thread_candidates;
  const std::size_t half = (ts.size() + 1) / 2;
  if (r.prefers_upper)
    r.rule_threads.assign(ts.end() - static_cast<std::ptrdiff_t>(half),
                          ts.end());
  else
    r.rule_threads.assign(ts.begin(),
                          ts.begin() + static_cast<std::ptrdiff_t>(half));
  return r;
}

std::string AnalysisReport::to_string() const {
  std::string out;
  out += "Static analysis of '" + workload + "' on " + gpu + "\n";
  out += "  baseline variant : " + baseline.to_string() + "\n";
  out += "  registers/thread : " + std::to_string(regs_per_thread) + "\n";
  out += "  smem/block       : " + std::to_string(smem_per_block) + " B\n";
  out += "  static instrs    : " + std::to_string(static_instructions) +
         "\n";
  out += "  mix (weighted)   : " + mix.weighted.summary() + "\n";
  out += "  intensity        : " + str::format_double(intensity, 2) +
         (prefers_upper ? "  (> 4.0: prefer upper thread range)\n"
                        : "  (<= 4.0: prefer lower thread range)\n");
  out += "  hottest pipeline : " +
         std::string(arch::category_name(pipeline.hottest)) + "\n";
  out += "  branches         : " +
         std::to_string(divergence.branches.size()) + " (" +
         std::to_string(divergence.divergent_count) +
         " potentially divergent)\n";
  out += "  occupancy (base) : " +
         str::format_double(occupancy_at_baseline.occupancy * 100.0, 1) +
         "% (limiter: " + occupancy_at_baseline.limiter() + ")\n";
  out += "  occ* suggestion  : occ=" +
         str::format_double(suggestion.occ_star * 100.0, 1) + "% T*={";
  for (std::size_t i = 0; i < suggestion.thread_candidates.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(suggestion.thread_candidates[i]);
  }
  out += "} [Ru:R*]=[" + std::to_string(suggestion.regs_used) + ":" +
         std::to_string(suggestion.reg_headroom) + "] S*=" +
         std::to_string(suggestion.smem_budget) + "B\n";
  out += "  rule-based T     : {";
  for (std::size_t i = 0; i < rule_threads.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(rule_threads[i]);
  }
  out += "}\n";
  out += "  Eq.6 cost score  : " + str::format_double(predicted_cost, 1) +
         "\n";
  return out;
}

}  // namespace gpustatic::core
