#pragma once

// The library's front door for the paper's primary contribution: a static
// analyzer for GPU kernels that — without any program runs — produces
// instruction mixes, occupancy, divergence structure, predicted cost, and
// launch-parameter suggestions (including the rule-based thread ranges
// the autotuner integration consumes).

#include <string>
#include <vector>

#include "analysis/divergence.hpp"
#include "analysis/mix.hpp"
#include "analysis/predictor.hpp"
#include "arch/gpu_spec.hpp"
#include "codegen/compiler.hpp"
#include "dsl/ast.hpp"
#include "occupancy/occupancy.hpp"
#include "occupancy/suggest.hpp"

namespace gpustatic::core {

/// Everything the static analyzer derives from one compiled workload.
struct AnalysisReport {
  std::string workload;
  std::string gpu;
  codegen::TuningParams baseline;

  std::uint32_t regs_per_thread = 0;   ///< Ru from the virtual ptxas
  std::uint32_t smem_per_block = 0;    ///< Su
  std::size_t static_instructions = 0;

  analysis::StaticMix mix;             ///< summed over stages
  double intensity = 0;                ///< O_fl / O_mem, rule input
  analysis::PipelineUtilization pipeline;
  analysis::DivergenceReport divergence;  ///< first stage's CFG view
  occupancy::Result occupancy_at_baseline;
  occupancy::Suggestion suggestion;    ///< Table VII row
  double predicted_cost = 0;           ///< Eq. 6 score

  /// Thread candidates after the rule-based heuristic (Sec. III-C).
  std::vector<std::uint32_t> rule_threads;
  bool prefers_upper = false;

  [[nodiscard]] std::string to_string() const;
};

class StaticAnalyzer {
 public:
  explicit StaticAnalyzer(const arch::GpuSpec& gpu) : gpu_(&gpu) {}

  /// Compile (never run) the workload at `baseline` and analyze it.
  [[nodiscard]] AnalysisReport analyze(
      const dsl::WorkloadDesc& workload,
      codegen::TuningParams baseline = {}) const;

  [[nodiscard]] const arch::GpuSpec& gpu() const { return *gpu_; }

 private:
  const arch::GpuSpec* gpu_;
};

}  // namespace gpustatic::core
