#pragma once

// FleetSession: the library-level fleet tuner. Plans one tuning job per
// (kernel, GPU) pair from the kernel registry, runs the fleet engine
// (tuner/fleet.hpp) against a persistent TuningStore, and renders the
// per-kernel report in the CLI's three formats. This is the layer the
// `tune-fleet` subcommand and the fleet bench drive; keeping it in core
// (above kernels + tuner) lets the engine itself stay
// registry-agnostic.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/runner.hpp"
#include "tuner/fleet.hpp"
#include "tuner/store.hpp"

namespace gpustatic::core {

/// What to tune, on what, and how.
struct FleetOptions {
  /// Kernel registry names; empty = every kernel, base + extended
  /// suites (the whole library).
  std::vector<std::string> kernels;
  /// GPU names; "all" anywhere in the list expands to every Table I
  /// GPU. Empty = the CLI's default GPU (K20).
  std::vector<std::string> gpus;
  /// Problem size; 0 = per-kernel default (default_size()).
  std::int64_t n = 0;
  std::string method = "rule";
  tuner::SearchOptions search;
  tuner::HybridOptions hybrid;
  tuner::ParamSpace space = tuner::paper_space();
  sim::RunOptions run;
};

/// Aggregate outcome of one fleet pass.
struct FleetReport {
  std::vector<tuner::FleetJobReport> rows;  ///< one per job, job order
  std::size_t fresh_evaluations = 0;  ///< simulator runs paid this pass
  std::size_t warm_hits = 0;          ///< lookups the store/memo answered
  std::size_t failed = 0;             ///< jobs that reported an error
  std::size_t store_records = 0;      ///< store size after the merge
};

class FleetSession {
 public:
  /// Plans the job list up front; throws LookupError on unknown kernel
  /// or GPU names, so a bad request fails before any tuning work.
  FleetSession(tuner::TuningStore& store, FleetOptions options);

  /// The planned jobs (GPU-major, kernels in registry order).
  [[nodiscard]] const std::vector<tuner::FleetJob>& jobs() const {
    return jobs_;
  }

  /// Run every job (fleet engine fan-out), merge measurements into the
  /// store, and aggregate the per-job reports. Callable repeatedly; a
  /// second pass over the now-warm store performs zero fresh runs.
  [[nodiscard]] FleetReport run();

  /// Problem size used when FleetOptions::n == 0 — the same default the
  /// single-kernel CLI commands apply.
  [[nodiscard]] static std::int64_t default_size(std::string_view kernel);

 private:
  tuner::TuningStore* store_;
  FleetOptions options_;
  std::vector<tuner::FleetJob> jobs_;
};

/// Report renderers shared by the CLI and the fleet bench. `format` is
/// "table", "json", or "csv"; render_fleet_report dispatches and throws
/// Error on anything else. JSON output is a single self-contained
/// object (the CI bench artifact); table output ends with a summary
/// line stating the fresh-run count — zero on a warm store.
[[nodiscard]] std::string render_fleet_table(const FleetReport& report);
[[nodiscard]] std::string render_fleet_json(const FleetReport& report);
[[nodiscard]] std::string render_fleet_csv(const FleetReport& report);
[[nodiscard]] std::string render_fleet_report(const FleetReport& report,
                                              const std::string& format);

/// Throws the same Error render_fleet_report would for an unknown
/// `format` — the up-front check drivers run before tuning anything.
void validate_fleet_report_format(const std::string& format);

}  // namespace gpustatic::core
