#pragma once

// TuningSession: the Orio-integration use case from the paper, as a thin
// facade over the tuner's StrategyRegistry. A session owns a workload, a
// target GPU, the Table III space, and a default simulator-backed
// Evaluator; tune(TuningRequest) resolves any registered strategy by
// name — the eight built-ins or user-registered ones — and runs it with
// a session-cached static prune shared across model-guided methods.

#include <string>

#include "arch/gpu_spec.hpp"
#include "core/static_analyzer.hpp"
#include "dsl/ast.hpp"
#include "sim/runner.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/strategy.hpp"

namespace gpustatic::core {

/// Outcome of one tuning run, with enough bookkeeping to compare
/// methods (the registry's uniform result type).
using TuningOutcome = tuner::StrategyResult;

/// One tuning request: which strategy, how to search, and what backend
/// evaluates variants (null = the session's simulator evaluator).
/// Implicitly constructible from a method name, so
/// `session.tune("rule")` is the short form.
struct TuningRequest {
  TuningRequest() = default;
  TuningRequest(std::string method_name)  // NOLINT(google-explicit-constructor)
      : method(std::move(method_name)) {}
  TuningRequest(const char* method_name)  // NOLINT(google-explicit-constructor)
      : method(method_name) {}
  TuningRequest(std::string method_name, tuner::SearchOptions search)
      : method(std::move(method_name)), options(search) {}

  std::string method = "rule";
  tuner::SearchOptions options;
  tuner::HybridOptions hybrid;  ///< hybrid dial (empirical budget, ...)
  tuner::Evaluator* evaluator = nullptr;
};

class TuningSession {
 public:
  TuningSession(dsl::WorkloadDesc workload, const arch::GpuSpec& gpu,
                tuner::ParamSpace space = tuner::paper_space(),
                sim::RunOptions run_opts = {});

  // The shared measurement cache points into the session's own space
  // and simulator members, so the session must stay put.
  TuningSession(const TuningSession&) = delete;
  TuningSession& operator=(const TuningSession&) = delete;

  /// Resolve `request.method` through the StrategyRegistry and run it.
  /// Throws Error (naming the registered strategies) on unknown methods.
  [[nodiscard]] TuningOutcome tune(const TuningRequest& request = {});

  /// The pruning decision itself (computed lazily, cached; shared with
  /// every model-guided tune() call).
  [[nodiscard]] const tuner::StaticPruneResult& prune();

  [[nodiscard]] const tuner::ParamSpace& space() const { return space_; }
  [[nodiscard]] const dsl::WorkloadDesc& workload() const {
    return workload_;
  }
  /// The session's default backend: the simulator behind a persistent
  /// memo, so every tune() call on this session shares one measurement
  /// cache — a variant simulated by one strategy is a cache hit for the
  /// next (e.g. hybrid's empirical stage after an exhaustive/rule run).
  [[nodiscard]] tuner::Evaluator& evaluator() { return cache_; }
  /// The shared memo's accounting (distinct vs total, best seen).
  [[nodiscard]] const tuner::CachingEvaluator& evaluation_cache() const {
    return cache_;
  }

 private:
  dsl::WorkloadDesc workload_;
  const arch::GpuSpec* gpu_;
  tuner::ParamSpace space_;
  sim::AnalyticOptions analytic_;  ///< from run_opts; synced into hybrid
  tuner::SimEvaluator evaluator_;
  tuner::CachingEvaluator cache_;
  bool prune_done_ = false;
  tuner::StaticPruneResult prune_;
};

}  // namespace gpustatic::core
