#pragma once

// TuningSession: the Orio-integration use case from the paper, end to
// end. Owns a workload + target GPU, exposes every search strategy over
// the Table III space, and the static-analyzer-guided variants (Static
// and Static+Rule-Based) whose search-space reductions Fig. 6 reports.

#include <string>

#include "arch/gpu_spec.hpp"
#include "core/static_analyzer.hpp"
#include "dsl/ast.hpp"
#include "sim/runner.hpp"
#include "tuner/experiment.hpp"
#include "tuner/search.hpp"
#include "tuner/space.hpp"
#include "tuner/static_search.hpp"

namespace gpustatic::core {

/// Outcome of one tuning run, with enough bookkeeping to compare methods.
struct TuningOutcome {
  std::string method;
  tuner::SearchResult search;
  std::size_t space_size = 0;       ///< size of the space searched
  std::size_t full_space_size = 0;  ///< size of the unpruned space
  double intensity = 0;             ///< only for model-guided methods

  /// Fig. 6 metric: fraction of the full space eliminated before search.
  [[nodiscard]] double space_reduction() const {
    return full_space_size == 0
               ? 0.0
               : 1.0 - static_cast<double>(space_size) /
                           static_cast<double>(full_space_size);
  }
};

class TuningSession {
 public:
  TuningSession(dsl::WorkloadDesc workload, const arch::GpuSpec& gpu,
                tuner::ParamSpace space = tuner::paper_space(),
                sim::RunOptions run_opts = {});

  /// Plain Orio strategies over the full space.
  [[nodiscard]] TuningOutcome exhaustive();
  [[nodiscard]] TuningOutcome random(const tuner::SearchOptions& o = {});
  [[nodiscard]] TuningOutcome annealing(const tuner::SearchOptions& o = {});
  [[nodiscard]] TuningOutcome genetic(const tuner::SearchOptions& o = {});
  [[nodiscard]] TuningOutcome simplex(const tuner::SearchOptions& o = {});

  /// The paper's methods: exhaustive search over the statically pruned
  /// space ("Static") and over the rule-based refinement ("RB").
  [[nodiscard]] TuningOutcome static_pruned();
  [[nodiscard]] TuningOutcome rule_based();

  /// The pruning decision itself (computed lazily, cached).
  [[nodiscard]] const tuner::StaticPruneResult& prune();

  [[nodiscard]] const tuner::ParamSpace& space() const { return space_; }
  [[nodiscard]] const dsl::WorkloadDesc& workload() const {
    return workload_;
  }

 private:
  TuningOutcome run(const std::string& method,
                    const tuner::ParamSpace& space,
                    const tuner::SearchOptions* opts);

  dsl::WorkloadDesc workload_;
  const arch::GpuSpec* gpu_;
  tuner::ParamSpace space_;
  sim::RunOptions run_opts_;
  tuner::Objective objective_;
  bool prune_done_ = false;
  tuner::StaticPruneResult prune_;
};

}  // namespace gpustatic::core
