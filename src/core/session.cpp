#include "core/session.hpp"

namespace gpustatic::core {

TuningSession::TuningSession(dsl::WorkloadDesc workload,
                             const arch::GpuSpec& gpu,
                             tuner::ParamSpace space,
                             sim::RunOptions run_opts)
    : workload_(std::move(workload)),
      gpu_(&gpu),
      space_(std::move(space)),
      run_opts_(run_opts),
      objective_(tuner::make_objective(workload_, gpu, run_opts)) {}

const tuner::StaticPruneResult& TuningSession::prune() {
  if (!prune_done_) {
    prune_ = tuner::static_prune(space_, *gpu_, workload_);
    prune_done_ = true;
  }
  return prune_;
}

TuningOutcome TuningSession::run(const std::string& method,
                                 const tuner::ParamSpace& space,
                                 const tuner::SearchOptions* opts) {
  TuningOutcome out;
  out.method = method;
  out.space_size = space.size();
  out.full_space_size = space_.size();
  if (method == "exhaustive" || method == "static" || method == "rb") {
    out.search = tuner::exhaustive_search(space, objective_);
  } else if (method == "random") {
    out.search = tuner::random_search(space, objective_, *opts);
  } else if (method == "annealing") {
    out.search = tuner::simulated_annealing(space, objective_, *opts);
  } else if (method == "genetic") {
    out.search = tuner::genetic_search(space, objective_, *opts);
  } else {
    out.search = tuner::nelder_mead_search(space, objective_, *opts);
  }
  return out;
}

TuningOutcome TuningSession::exhaustive() {
  return run("exhaustive", space_, nullptr);
}

TuningOutcome TuningSession::random(const tuner::SearchOptions& o) {
  return run("random", space_, &o);
}

TuningOutcome TuningSession::annealing(const tuner::SearchOptions& o) {
  return run("annealing", space_, &o);
}

TuningOutcome TuningSession::genetic(const tuner::SearchOptions& o) {
  return run("genetic", space_, &o);
}

TuningOutcome TuningSession::simplex(const tuner::SearchOptions& o) {
  return run("simplex", space_, &o);
}

TuningOutcome TuningSession::static_pruned() {
  const tuner::StaticPruneResult& p = prune();
  TuningOutcome out = run("static", p.static_space, nullptr);
  out.intensity = p.intensity;
  return out;
}

TuningOutcome TuningSession::rule_based() {
  const tuner::StaticPruneResult& p = prune();
  TuningOutcome out = run("rb", p.rule_space, nullptr);
  out.intensity = p.intensity;
  return out;
}

}  // namespace gpustatic::core
