#include "core/session.hpp"

namespace gpustatic::core {

TuningSession::TuningSession(dsl::WorkloadDesc workload,
                             const arch::GpuSpec& gpu,
                             tuner::ParamSpace space,
                             sim::RunOptions run_opts)
    : workload_(std::move(workload)),
      gpu_(&gpu),
      space_(std::move(space)),
      analytic_(run_opts.analytic),
      evaluator_(workload_, gpu, run_opts),
      cache_(space_, evaluator_) {}

const tuner::StaticPruneResult& TuningSession::prune() {
  if (!prune_done_) {
    prune_ = tuner::static_prune(space_, *gpu_, workload_);
    prune_done_ = true;
  }
  return prune_;
}

TuningOutcome TuningSession::tune(const TuningRequest& request) {
  const auto strategy =
      tuner::StrategyRegistry::instance().create(request.method);
  tuner::StrategyContext ctx;
  ctx.space = &space_;
  ctx.evaluator =
      request.evaluator != nullptr ? request.evaluator : &cache_;
  ctx.options = request.options;
  ctx.hybrid = request.hybrid;
  // The session's RunOptions carry the analytic mode (like the backend);
  // sync it into the hybrid dial so stage 1 ranks with the same engine
  // configuration the evaluator measures with. The cancel token rides
  // SearchOptions the same way.
  ctx.hybrid.analytic = analytic_;
  ctx.hybrid.cancel = request.options.cancel;
  ctx.gpu = gpu_;
  ctx.workload = &workload_;
  ctx.prune = [this]() -> const tuner::StaticPruneResult& {
    return prune();
  };
  // Model-guided stages share the simulator pipeline's lowering memo, so
  // e.g. hybrid's Eq. 6 ranking reuses every kernel a previous tune()
  // already compiled.
  ctx.compile_cache = &evaluator_.context().compilation_cache();
  return strategy->run(ctx);
}

}  // namespace gpustatic::core
