#include "replay/refine.hpp"

#include <cmath>

#include "analysis/mix.hpp"
#include "arch/throughput.hpp"
#include "common/error.hpp"

namespace gpustatic::replay {

MixFeatures mix_features(const codegen::LoweredWorkload& lw) {
  sim::Counts weighted;
  for (const codegen::LoweredStage& st : lw.stages)
    weighted += analysis::analyze_mix(st.kernel).weighted;
  return {weighted.by_class(arch::OpClass::FLOPS),
          weighted.by_class(arch::OpClass::MEM),
          weighted.by_class(arch::OpClass::CTRL),
          weighted.by_class(arch::OpClass::REG) + weighted.reg_traffic};
}

Coefficients default_coefficients(arch::Family family) {
  Coefficients c;
  c.c = {arch::class_cpi(arch::OpClass::FLOPS, family),
         arch::class_cpi(arch::OpClass::MEM, family),
         arch::class_cpi(arch::OpClass::CTRL, family),
         arch::class_cpi(arch::OpClass::REG, family)};
  return c;
}

namespace {

/// Four class magnitudes plus the intercept column.
constexpr std::size_t kDim = 5;

/// Solve the 4x4 system A x = b by Gaussian elimination with partial
/// pivoting, restricted to the columns/rows in `active`. Inactive
/// coefficients stay 0. Returns false when the active system is
/// singular.
bool solve_active(const std::array<std::array<double, kDim>, kDim>& a_full,
                  const std::array<double, kDim>& b_full,
                  const std::array<bool, kDim>& active,
                  std::array<double, kDim>& x) {
  // Compact the active sub-system.
  std::vector<std::size_t> map;
  for (std::size_t i = 0; i < kDim; ++i)
    if (active[i]) map.push_back(i);
  const std::size_t n = map.size();
  x.fill(0.0);
  if (n == 0) return true;

  std::vector<std::vector<double>> m(n, std::vector<double>(n + 1, 0.0));
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) m[r][c] = a_full[map[r]][map[c]];
    m[r][n] = b_full[map[r]];
  }
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(m[r][col]) > std::abs(m[pivot][col])) pivot = r;
    if (std::abs(m[pivot][col]) < 1e-30) return false;
    std::swap(m[col], m[pivot]);
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double factor = m[r][col] / m[col][col];
      for (std::size_t c = col; c <= n; ++c)
        m[r][c] -= factor * m[col][c];
    }
  }
  for (std::size_t r = 0; r < n; ++r) x[map[r]] = m[r][n] / m[r][r];
  return true;
}

}  // namespace

FitResult fit_coefficients(const std::vector<MixFeatures>& features,
                           const std::vector<double>& times, double ridge) {
  if (features.size() != times.size())
    throw Error("fit_coefficients: features/times size mismatch");
  if (features.size() < kDim)
    throw Error("fit_coefficients: need at least 5 samples");

  // Design matrix columns: the four class magnitudes + constant 1
  // (intercept = fixed launch overhead).
  auto column = [&](std::size_t sample, std::size_t i) {
    return i < 4 ? features[sample][i] : 1.0;
  };

  // Normal equations: (X^T X + ridge*I) c = X^T y.
  std::array<std::array<double, kDim>, kDim> xtx{};
  std::array<double, kDim> xty{};
  for (std::size_t s = 0; s < features.size(); ++s) {
    for (std::size_t i = 0; i < kDim; ++i) {
      xty[i] += column(s, i) * times[s];
      for (std::size_t j = 0; j < kDim; ++j)
        xtx[i][j] += column(s, i) * column(s, j);
    }
  }
  for (std::size_t i = 0; i < kDim; ++i) xtx[i][i] += ridge;

  // Deterministic active-set NNLS: solve, clamp the most negative
  // coefficient to zero, re-solve. At most kDim rounds.
  std::array<bool, kDim> active;
  active.fill(true);
  std::array<double, kDim> c{};
  for (std::size_t round = 0; round <= kDim; ++round) {
    if (!solve_active(xtx, xty, active, c))
      throw Error("fit_coefficients: singular normal equations");
    std::size_t worst = kDim;
    double most_negative = -1e-12;
    for (std::size_t i = 0; i < kDim; ++i) {
      if (active[i] && c[i] < most_negative) {
        most_negative = c[i];
        worst = i;
      }
    }
    if (worst == kDim) break;
    active[worst] = false;
  }
  for (double& v : c) v = std::max(0.0, v);

  FitResult fit;
  for (std::size_t i = 0; i < 4; ++i) fit.coeffs.c[i] = c[i];
  fit.coeffs.intercept = c[4];
  fit.samples = features.size();

  // In-sample R^2.
  double mean = 0;
  for (const double t : times) mean += t;
  mean /= static_cast<double>(times.size());
  double ss_res = 0;
  double ss_tot = 0;
  for (std::size_t s = 0; s < features.size(); ++s) {
    const double pred = fit.coeffs.score(features[s]);
    ss_res += (times[s] - pred) * (times[s] - pred);
    ss_tot += (times[s] - mean) * (times[s] - mean);
  }
  fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 0.0;
  return fit;
}

FitResult refine_from_journal(const TuningJournal& journal,
                              const dsl::WorkloadDesc& workload,
                              const arch::GpuSpec& gpu) {
  std::vector<MixFeatures> features;
  std::vector<double> times;
  for (const VariantRecord& v : journal.variants()) {
    if (!v.valid || !v.measured()) continue;
    try {
      const codegen::Compiler compiler(gpu, v.params);
      features.push_back(mix_features(compiler.compile(workload)));
      times.push_back(v.measured_ms);
    } catch (const ConfigError&) {
      continue;  // variant no longer compiles on this GPU: skip
    }
  }
  return fit_coefficients(features, times);
}

}  // namespace gpustatic::replay
