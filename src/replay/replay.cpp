#include "replay/replay.hpp"

#include <algorithm>

#include "analysis/predictor.hpp"
#include "codegen/compiler.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "tuner/static_search.hpp"

namespace gpustatic::replay {

namespace {

std::string thread_list(const std::vector<std::int64_t>& v) {
  std::vector<std::string> parts;
  parts.reserve(v.size());
  for (const std::int64_t t : v) parts.push_back(std::to_string(t));
  return "{" + str::join(parts, ",") + "}";
}

}  // namespace

TuningJournal record_tuning(const dsl::WorkloadDesc& workload,
                            const arch::GpuSpec& gpu,
                            const RecordOptions& opts) {
  TuningJournal journal;
  journal.set_context(workload.name, gpu.name, workload.problem_size);

  // Step 1+2: static analysis and occupancy-based pruning, journaled the
  // way the paper describes recording "decisions at each step".
  const tuner::StaticPruneResult prune =
      tuner::static_prune(opts.space, gpu, workload);
  journal.record_decision(
      "occupancy",
      str::format("occ*=%.4f T*=%s [Ru:R*]=[%u:%u]", prune.suggestion.occ_star,
                  thread_list(prune.static_threads).c_str(),
                  prune.suggestion.regs_used,
                  prune.suggestion.reg_headroom));
  journal.record_decision(
      "rule", str::format("intensity=%.4f -> %s half, TC=%s",
                          prune.intensity,
                          prune.prefers_upper ? "upper" : "lower",
                          thread_list(prune.rule_threads).c_str()));
  journal.record_decision(
      "space", str::format("full=%zu static=%zu rule=%zu", prune.full_size,
                           prune.static_size, prune.rule_size));

  // Step 3: enumerate the rule-pruned space; attach Eq. 6 predictions
  // and (optionally) measurements.
  const tuner::ParamSpace& space = prune.rule_space;
  for (std::size_t i = 0; i < space.size();
       i += std::max<std::size_t>(1, opts.stride)) {
    const codegen::TuningParams params = space.to_params(space.point_at(i));
    VariantRecord v;
    v.params = params;
    try {
      const codegen::Compiler compiler(gpu, params);
      const auto lw = compiler.compile(workload);
      v.predicted_cost = analysis::predicted_cost(lw, gpu.family);
      if (opts.measure_variants) {
        const auto machine =
            sim::MachineModel::from(gpu, params.l1_pref_kb);
        const sim::Measurement m =
            sim::run_workload(lw, workload, machine, opts.run);
        v.valid = m.valid;
        if (m.valid) v.measured_ms = m.trial_time_ms;
      }
    } catch (const ConfigError&) {
      v.valid = false;
    }
    journal.record_variant(std::move(v));
  }
  return journal;
}

ReplayResult replay(const TuningJournal& journal,
                    const dsl::WorkloadDesc& workload,
                    const arch::GpuSpec& gpu, sim::RunOptions run) {
  if (!journal.workload().empty() && journal.workload() != workload.name)
    throw Error("replay: journal was recorded for workload '" +
                journal.workload() + "', not '" + workload.name + "'");
  if (!journal.gpu().empty() && journal.gpu() != gpu.name)
    throw Error("replay: journal was recorded on GPU '" + journal.gpu() +
                "', not '" + gpu.name + "'");

  ReplayResult r;
  r.total_variants = journal.variants().size();
  std::vector<double> predictions;
  std::vector<double> fresh_times;
  double drift_sum = 0;

  for (const VariantRecord& v : journal.variants()) {
    sim::Measurement m;
    try {
      const codegen::Compiler compiler(gpu, v.params);
      const auto lw = compiler.compile(workload);
      const auto machine = sim::MachineModel::from(gpu, v.params.l1_pref_kb);
      m = sim::run_workload(lw, workload, machine, run);
    } catch (const ConfigError& e) {
      m.valid = false;
      m.error = e.what();
    }
    if (!m.valid) {
      ++r.invalid;
      continue;
    }
    ++r.replayed;
    predictions.push_back(v.predicted_cost);
    fresh_times.push_back(m.trial_time_ms);
    if (r.best_time_ms < 0 || m.trial_time_ms < r.best_time_ms) {
      r.best_time_ms = m.trial_time_ms;
      r.best_params = v.params;
    }
    if (v.measured()) {
      ++r.drift_checked;
      const double drift =
          std::abs(m.trial_time_ms - v.measured_ms) / v.measured_ms;
      drift_sum += drift;
      r.max_rel_drift = std::max(r.max_rel_drift, drift);
    }
  }
  if (r.drift_checked > 0)
    r.mean_rel_drift = drift_sum / static_cast<double>(r.drift_checked);
  if (predictions.size() >= 2)
    r.prediction_spearman = stats::spearman(predictions, fresh_times);
  return r;
}

}  // namespace gpustatic::replay
