#include "replay/journal.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/io.hpp"
#include "common/strings.hpp"

// Serialized format, one record per line:
//
//   gpustatic-journal v1
//   context <workload> <gpu> <problem_size>
//   decision <step> <detail to end of line>
//   variant TC=<n> BC=<n> UIF=<n> PL=<n> SC=<n> FM=<0|1>
//           pred=<float> time=<float|-> valid=<0|1>
//
// (the variant line is a single line; wrapped here for readability).
// The variant fields are the shared measurement grammar of
// tuner/measurement.hpp — the TuningStore's record lines carry the
// same nine fields.

namespace gpustatic::replay {

void TuningJournal::set_context(std::string workload, std::string gpu,
                                std::int64_t problem_size) {
  workload_ = std::move(workload);
  gpu_ = std::move(gpu);
  problem_size_ = problem_size;
}

void TuningJournal::record_decision(std::string step, std::string detail) {
  if (step.find_first_of(" \t\n") != std::string::npos)
    throw Error("journal decision step must be a single token");
  decisions_.push_back({std::move(step), std::move(detail)});
}

void TuningJournal::record_variant(VariantRecord v) {
  variants_.push_back(std::move(v));
}

std::size_t TuningJournal::measured_count() const {
  std::size_t n = 0;
  for (const VariantRecord& v : variants_)
    if (v.measured()) ++n;
  return n;
}

std::string TuningJournal::serialize() const {
  std::ostringstream os;
  os << "gpustatic-journal v1\n";
  os << "context " << (workload_.empty() ? "-" : workload_) << " "
     << (gpu_.empty() ? "-" : gpu_) << " " << problem_size_ << "\n";
  for (const DecisionRecord& d : decisions_)
    os << "decision " << d.step << " " << d.detail << "\n";
  for (const VariantRecord& v : variants_) {
    os << "variant ";
    tuner::append_variant_fields(os, v);
    os << "\n";
  }
  return os.str();
}

namespace {

std::int64_t parse_int(std::string_view s, std::size_t line) {
  try {
    return std::stoll(std::string(s));
  } catch (const std::exception&) {
    throw ParseError("journal: bad integer '" + std::string(s) + "'",
                     line);
  }
}

}  // namespace

TuningJournal TuningJournal::parse(std::string_view text) {
  TuningJournal j;
  std::size_t line_no = 0;
  bool saw_magic = false;

  std::istringstream is{std::string(text)};
  std::string line;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view trimmed = str::trim(line);
    if (trimmed.empty()) continue;
    if (!saw_magic) {
      if (trimmed != "gpustatic-journal v1")
        throw ParseError("journal: bad magic line", line_no);
      saw_magic = true;
      continue;
    }
    const auto fields = str::split_ws(trimmed);
    if (fields[0] == "context") {
      if (fields.size() != 4)
        throw ParseError("journal: context needs 3 fields", line_no);
      j.workload_ = fields[1] == "-" ? "" : fields[1];
      j.gpu_ = fields[2] == "-" ? "" : fields[2];
      j.problem_size_ = parse_int(fields[3], line_no);
    } else if (fields[0] == "decision") {
      if (fields.size() < 2)
        throw ParseError("journal: decision needs a step", line_no);
      // Anchor the step search past the "decision" keyword so a step
      // that happens to be a substring of "decision" parses correctly.
      const std::size_t step_at =
          trimmed.find(fields[1], fields[0].size());
      const std::size_t detail_at = step_at + fields[1].size();
      DecisionRecord d;
      d.step = fields[1];
      d.detail = std::string(str::trim(trimmed.substr(detail_at)));
      j.decisions_.push_back(std::move(d));
    } else if (fields[0] == "variant") {
      if (fields.size() != 1 + tuner::kMeasuredVariantFields)
        throw ParseError("journal: variant needs " +
                             std::to_string(tuner::kMeasuredVariantFields) +
                             " fields",
                         line_no);
      VariantRecord v;
      for (std::size_t i = 1; i < fields.size(); ++i) {
        const auto [key, value] = tuner::split_field(fields[i], line_no);
        if (!tuner::apply_variant_field(v, key, value, line_no))
          throw ParseError(
              "journal: unknown variant field '" + std::string(key) + "'",
              line_no);
      }
      j.variants_.push_back(std::move(v));
    } else {
      throw ParseError(
          "journal: unknown record '" + std::string(fields[0]) + "'",
          line_no);
    }
  }
  if (!saw_magic) throw ParseError("journal: empty input", 1);
  return j;
}

void save_journal(const std::string& path, const TuningJournal& journal) {
  io::write_file_atomic(path, journal.serialize());
}

TuningJournal load_journal(const std::string& path,
                           std::vector<std::string>* warnings) {
  const std::optional<std::string> text = io::read_file_if_exists(path);
  if (!text) throw Error("journal file '" + path + "' does not exist");
  try {
    return TuningJournal::parse(*text);
  } catch (const ParseError& e) {
    // A failure on the final content line is the signature of a write
    // truncated mid-append; the completed prefix is still a valid
    // journal. Retry without that line — anything still wrong then is
    // real corruption and propagates.
    const std::size_t last = str::last_content_line(*text);
    if (last == 0 || e.line() != last) throw;
    TuningJournal j = TuningJournal::parse(str::drop_line(*text, last));
    if (warnings != nullptr)
      warnings->push_back("journal: skipped truncated final line " +
                          std::to_string(last) + " (" + e.what() + ")");
    return j;
  }
}

}  // namespace gpustatic::replay
