#include "replay/journal.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

// Serialized format, one record per line:
//
//   gpustatic-journal v1
//   context <workload> <gpu> <problem_size>
//   decision <step> <detail to end of line>
//   variant TC=<n> BC=<n> UIF=<n> PL=<n> SC=<n> FM=<0|1>
//           pred=<float> time=<float|-> valid=<0|1>
//
// (the variant line is a single line; wrapped here for readability).

namespace gpustatic::replay {

void TuningJournal::set_context(std::string workload, std::string gpu,
                                std::int64_t problem_size) {
  workload_ = std::move(workload);
  gpu_ = std::move(gpu);
  problem_size_ = problem_size;
}

void TuningJournal::record_decision(std::string step, std::string detail) {
  if (step.find_first_of(" \t\n") != std::string::npos)
    throw Error("journal decision step must be a single token");
  decisions_.push_back({std::move(step), std::move(detail)});
}

void TuningJournal::record_variant(VariantRecord v) {
  variants_.push_back(std::move(v));
}

std::size_t TuningJournal::measured_count() const {
  std::size_t n = 0;
  for (const VariantRecord& v : variants_)
    if (v.measured()) ++n;
  return n;
}

std::string TuningJournal::serialize() const {
  std::ostringstream os;
  os << "gpustatic-journal v1\n";
  os << "context " << (workload_.empty() ? "-" : workload_) << " "
     << (gpu_.empty() ? "-" : gpu_) << " " << problem_size_ << "\n";
  for (const DecisionRecord& d : decisions_)
    os << "decision " << d.step << " " << d.detail << "\n";
  for (const VariantRecord& v : variants_) {
    os << "variant TC=" << v.params.threads_per_block
       << " BC=" << v.params.block_count << " UIF=" << v.params.unroll
       << " PL=" << v.params.l1_pref_kb << " SC=" << v.params.stream_chunk
       << " FM=" << (v.params.fast_math ? 1 : 0)
       << " pred=" << str::format("%.17g", v.predicted_cost) << " time=";
    if (v.measured())
      os << str::format("%.17g", v.measured_ms);
    else
      os << "-";
    os << " valid=" << (v.valid ? 1 : 0) << "\n";
  }
  return os.str();
}

namespace {

std::pair<std::string_view, std::string_view> split_kv(
    std::string_view field, std::size_t line) {
  const std::size_t eq = field.find('=');
  if (eq == std::string_view::npos)
    throw ParseError("journal field missing '=': " + std::string(field),
                     line);
  return {field.substr(0, eq), field.substr(eq + 1)};
}

std::int64_t parse_int(std::string_view s, std::size_t line) {
  try {
    return std::stoll(std::string(s));
  } catch (const std::exception&) {
    throw ParseError("journal: bad integer '" + std::string(s) + "'",
                     line);
  }
}

double parse_float(std::string_view s, std::size_t line) {
  try {
    return std::stod(std::string(s));
  } catch (const std::exception&) {
    throw ParseError("journal: bad number '" + std::string(s) + "'",
                     line);
  }
}

}  // namespace

TuningJournal TuningJournal::parse(std::string_view text) {
  TuningJournal j;
  std::size_t line_no = 0;
  bool saw_magic = false;

  std::istringstream is{std::string(text)};
  std::string line;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view trimmed = str::trim(line);
    if (trimmed.empty()) continue;
    if (!saw_magic) {
      if (trimmed != "gpustatic-journal v1")
        throw ParseError("journal: bad magic line", line_no);
      saw_magic = true;
      continue;
    }
    const auto fields = str::split_ws(trimmed);
    if (fields[0] == "context") {
      if (fields.size() != 4)
        throw ParseError("journal: context needs 3 fields", line_no);
      j.workload_ = fields[1] == "-" ? "" : fields[1];
      j.gpu_ = fields[2] == "-" ? "" : fields[2];
      j.problem_size_ = parse_int(fields[3], line_no);
    } else if (fields[0] == "decision") {
      if (fields.size() < 2)
        throw ParseError("journal: decision needs a step", line_no);
      // Anchor the step search past the "decision" keyword so a step
      // that happens to be a substring of "decision" parses correctly.
      const std::size_t step_at =
          trimmed.find(fields[1], fields[0].size());
      const std::size_t detail_at = step_at + fields[1].size();
      DecisionRecord d;
      d.step = fields[1];
      d.detail = std::string(str::trim(trimmed.substr(detail_at)));
      j.decisions_.push_back(std::move(d));
    } else if (fields[0] == "variant") {
      if (fields.size() != 10)
        throw ParseError("journal: variant needs 9 fields", line_no);
      VariantRecord v;
      for (std::size_t i = 1; i < fields.size(); ++i) {
        const auto [key, value] = split_kv(fields[i], line_no);
        if (key == "TC")
          v.params.threads_per_block =
              static_cast<int>(parse_int(value, line_no));
        else if (key == "BC")
          v.params.block_count =
              static_cast<int>(parse_int(value, line_no));
        else if (key == "UIF")
          v.params.unroll = static_cast<int>(parse_int(value, line_no));
        else if (key == "PL")
          v.params.l1_pref_kb =
              static_cast<int>(parse_int(value, line_no));
        else if (key == "SC")
          v.params.stream_chunk =
              static_cast<int>(parse_int(value, line_no));
        else if (key == "FM")
          v.params.fast_math = parse_int(value, line_no) != 0;
        else if (key == "pred")
          v.predicted_cost = parse_float(value, line_no);
        else if (key == "time")
          v.measured_ms =
              value == "-" ? -1.0 : parse_float(value, line_no);
        else if (key == "valid")
          v.valid = parse_int(value, line_no) != 0;
        else
          throw ParseError(
              "journal: unknown variant field '" + std::string(key) + "'",
              line_no);
      }
      j.variants_.push_back(std::move(v));
    } else {
      throw ParseError(
          "journal: unknown record '" + std::string(fields[0]) + "'",
          line_no);
    }
  }
  if (!saw_magic) throw ParseError("journal: empty input", 1);
  return j;
}

}  // namespace gpustatic::replay
