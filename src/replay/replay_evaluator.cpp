#include "replay/replay_evaluator.hpp"

namespace gpustatic::replay {

ReplayEvaluator::ReplayEvaluator(const TuningJournal& journal) {
  for (const VariantRecord& v : journal.variants()) {
    if (!v.valid || !v.measured()) continue;
    // Last record wins when a journal holds duplicates of one variant.
    times_[v.params.to_string()] = v.measured_ms;
  }
}

double ReplayEvaluator::evaluate(const codegen::TuningParams& params) {
  const auto it = times_.find(params.to_string());
  return it == times_.end() ? tuner::kInvalid : it->second;
}

}  // namespace gpustatic::replay
