#pragma once

// ReplayEvaluator: a journal-backed tuner::Evaluator. Variants the
// journal measured answer instantly with the recorded trial time; every
// other variant reports kInvalid, exactly like an unlaunchable
// configuration. This turns any archived tuning run into a zero-cost
// evaluation backend: search strategies can be re-run, compared, or
// regression-tested against historical measurements without touching a
// simulator — the offline half of the paper's Sec. VII "continually
// evaluate the static models" loop.

#include <string>
#include <unordered_map>

#include "replay/journal.hpp"
#include "tuner/evaluator.hpp"

namespace gpustatic::replay {

class ReplayEvaluator final : public tuner::Evaluator {
 public:
  explicit ReplayEvaluator(const TuningJournal& journal);

  [[nodiscard]] std::string name() const override { return "replay"; }
  /// Recorded trial time for a journaled-and-measured variant, else
  /// tuner::kInvalid.
  double evaluate(const codegen::TuningParams& params) override;

  /// Number of variants that can answer (valid + measured records).
  [[nodiscard]] std::size_t known_variants() const {
    return times_.size();
  }

 private:
  // Keyed by the params' canonical text form (TuningParams::to_string
  // round-trips every tuned field).
  std::unordered_map<std::string, double> times_;
};

}  // namespace gpustatic::replay
