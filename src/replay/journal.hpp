#pragma once

// Tuning journal: the record/replay half of the paper's Sec. VII
// "knowledge discovery framework". Every decision the model-guided
// search makes and every code variant it touches is appended to a
// journal; the journal serializes to a line-oriented text format that
// round-trips losslessly, so a tuning run can be archived, replayed with
// empirical testing (replay.hpp), and mined to refine the static model's
// coefficients (refine.hpp).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "codegen/params.hpp"
#include "tuner/measurement.hpp"

namespace gpustatic::replay {

/// One model/search decision worth auditing ("prune", "rule", ...).
struct DecisionRecord {
  std::string step;    ///< single token, e.g. "prune"
  std::string detail;  ///< free text to end of line
};

/// One code variant the tuner generated (and possibly measured). The
/// journal's variant lines and the TuningStore's record lines carry the
/// same nine serialized fields, so the two formats share one type (and
/// one grammar — tuner/measurement.hpp).
using VariantRecord = tuner::MeasuredVariant;

class TuningJournal {
 public:
  /// Identify what was tuned (stored in the header line).
  void set_context(std::string workload, std::string gpu,
                   std::int64_t problem_size);

  void record_decision(std::string step, std::string detail);
  void record_variant(VariantRecord v);

  [[nodiscard]] const std::string& workload() const { return workload_; }
  [[nodiscard]] const std::string& gpu() const { return gpu_; }
  [[nodiscard]] std::int64_t problem_size() const { return problem_size_; }
  [[nodiscard]] const std::vector<DecisionRecord>& decisions() const {
    return decisions_;
  }
  [[nodiscard]] const std::vector<VariantRecord>& variants() const {
    return variants_;
  }
  [[nodiscard]] std::size_t measured_count() const;

  /// Text serialization (format documented in journal.cpp); parse() is
  /// the exact inverse. Parse failures raise ParseError with a line.
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static TuningJournal parse(std::string_view text);

 private:
  std::string workload_;
  std::string gpu_;
  std::int64_t problem_size_ = 0;
  std::vector<DecisionRecord> decisions_;
  std::vector<VariantRecord> variants_;
};

/// Atomic journal write: serialize() staged through a temp sibling and
/// renamed over `path` (common/io.hpp), so an archived journal is never
/// half-written.
void save_journal(const std::string& path, const TuningJournal& journal);

/// Load a journal file. A final line that fails to parse is treated as
/// a truncated append: it is dropped with a note in `warnings` (when
/// given) and the intact prefix is returned. A missing file, or
/// corruption anywhere else, throws.
[[nodiscard]] TuningJournal load_journal(
    const std::string& path, std::vector<std::string>* warnings = nullptr);

}  // namespace gpustatic::replay
