#pragma once

// Tuning journal: the record/replay half of the paper's Sec. VII
// "knowledge discovery framework". Every decision the model-guided
// search makes and every code variant it touches is appended to a
// journal; the journal serializes to a line-oriented text format that
// round-trips losslessly, so a tuning run can be archived, replayed with
// empirical testing (replay.hpp), and mined to refine the static model's
// coefficients (refine.hpp).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "codegen/params.hpp"

namespace gpustatic::replay {

/// One model/search decision worth auditing ("prune", "rule", ...).
struct DecisionRecord {
  std::string step;    ///< single token, e.g. "prune"
  std::string detail;  ///< free text to end of line
};

/// One code variant the tuner generated (and possibly measured).
struct VariantRecord {
  codegen::TuningParams params;
  double predicted_cost = 0;  ///< Eq. 6 score at record time
  double measured_ms = -1;    ///< trial time; < 0 = never executed
  bool valid = true;          ///< false: configuration rejected

  [[nodiscard]] bool measured() const { return measured_ms >= 0; }
};

class TuningJournal {
 public:
  /// Identify what was tuned (stored in the header line).
  void set_context(std::string workload, std::string gpu,
                   std::int64_t problem_size);

  void record_decision(std::string step, std::string detail);
  void record_variant(VariantRecord v);

  [[nodiscard]] const std::string& workload() const { return workload_; }
  [[nodiscard]] const std::string& gpu() const { return gpu_; }
  [[nodiscard]] std::int64_t problem_size() const { return problem_size_; }
  [[nodiscard]] const std::vector<DecisionRecord>& decisions() const {
    return decisions_;
  }
  [[nodiscard]] const std::vector<VariantRecord>& variants() const {
    return variants_;
  }
  [[nodiscard]] std::size_t measured_count() const;

  /// Text serialization (format documented in journal.cpp); parse() is
  /// the exact inverse. Parse failures raise ParseError with a line.
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static TuningJournal parse(std::string_view text);

 private:
  std::string workload_;
  std::string gpu_;
  std::int64_t problem_size_ = 0;
  std::vector<DecisionRecord> decisions_;
  std::vector<VariantRecord> variants_;
};

}  // namespace gpustatic::replay
