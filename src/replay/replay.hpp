#pragma once

// Journal production and empirical replay (paper Sec. VII): "by
// recording the decisions and code variants at each step, it is also
// possible to replay tuning with empirical testing for purpose of
// validation. In this way, the framework can continually evaluate the
// static models and refine their predictive power."
//
// record_tuning() runs the paper's model-guided search while journaling
// every decision and variant — including the Eq. 6 prediction attached
// to each variant. replay() later re-executes the journaled variants
// empirically and reports (a) measurement drift against any recorded
// times and (b) how well the recorded static predictions rank the fresh
// measurements — the "continually evaluate the static models" loop.

#include <cstdint>
#include <string>

#include "arch/gpu_spec.hpp"
#include "dsl/ast.hpp"
#include "replay/journal.hpp"
#include "sim/runner.hpp"
#include "tuner/space.hpp"

namespace gpustatic::replay {

struct RecordOptions {
  tuner::ParamSpace space = tuner::paper_space();
  sim::RunOptions run;          ///< engine used for the recorded search
  bool measure_variants = true; ///< false: journal predictions only
  std::size_t stride = 1;       ///< subsample of the pruned space
};

/// Run the static + rule-based tuning pass over `workload`, journaling
/// every decision (occupancy suggestion, intensity, rule outcome, space
/// sizes) and every variant in the pruned space with its Eq. 6 score
/// (and measurement, unless disabled).
[[nodiscard]] TuningJournal record_tuning(const dsl::WorkloadDesc& workload,
                                          const arch::GpuSpec& gpu,
                                          const RecordOptions& opts = {});

struct ReplayResult {
  std::size_t total_variants = 0;
  std::size_t replayed = 0;        ///< fresh measurements taken
  std::size_t invalid = 0;         ///< configurations that failed
  std::size_t drift_checked = 0;   ///< variants with a recorded time
  double max_rel_drift = 0;        ///< worst |fresh - recorded| / recorded
  double mean_rel_drift = 0;
  /// Spearman rank correlation of recorded Eq. 6 predictions vs fresh
  /// measurements — the static-model validation score.
  double prediction_spearman = 0;
  /// Best variant found during replay.
  codegen::TuningParams best_params;
  double best_time_ms = -1;
};

/// Re-execute every journaled variant against `workload` and score the
/// journal's predictions. The workload and GPU must match the journal's
/// context (checked by name; throws Error on mismatch).
[[nodiscard]] ReplayResult replay(const TuningJournal& journal,
                                  const dsl::WorkloadDesc& workload,
                                  const arch::GpuSpec& gpu,
                                  sim::RunOptions run = {});

}  // namespace gpustatic::replay
