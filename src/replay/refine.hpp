#pragma once

// Static-model refinement from recorded measurements (paper Sec. VII):
// "static models can ... be informed by prior benchmarking and knowledge
// discovery". Eq. 6 is linear in its four class coefficients,
//
//   f = cf*O_fl + cm*O_mem + cb*O_ctrl + cr*O_reg,
//
// so a journal of (static mix, measured time) pairs defines a
// non-negative least-squares problem over (cf, cm, cb, cr). The fit
// replaces the Table II CPI defaults with machine-calibrated weights;
// bench/ablation_refine measures how much Fig. 5's prediction error
// improves on held-out variants.

#include <array>
#include <cstdint>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "codegen/compiler.hpp"
#include "replay/journal.hpp"

namespace gpustatic::replay {

/// The four Eq. 6 class magnitudes of one variant:
/// {O_fl, O_mem, O_ctrl, O_reg} from the loop-weighted static mix
/// (O_reg includes register operand traffic, as in the predictor).
using MixFeatures = std::array<double, 4>;

/// Extract Eq. 6 features from a compiled variant.
[[nodiscard]] MixFeatures mix_features(const codegen::LoweredWorkload& lw);

/// Class coefficients; defaults come from the Table II class CPIs.
/// The refined form adds a non-negative intercept — the fixed
/// launch/dispatch overhead Eq. 6 omits, which measurement exposes.
struct Coefficients {
  std::array<double, 4> c{};  ///< cf, cm, cb, cr
  double intercept = 0;       ///< fixed per-launch cost

  [[nodiscard]] double score(const MixFeatures& f) const {
    return intercept + c[0] * f[0] + c[1] * f[1] + c[2] * f[2] +
           c[3] * f[3];
  }
};

[[nodiscard]] Coefficients default_coefficients(arch::Family family);

struct FitResult {
  Coefficients coeffs;
  std::size_t samples = 0;
  double r2 = 0;  ///< in-sample coefficient of determination
};

/// Non-negative least squares over the four class coefficients plus the
/// intercept (normal equations + deterministic active-set clamping; a
/// small ridge term keeps near-collinear mixes stable). Throws Error
/// when fewer than 5 samples are given or sizes mismatch.
[[nodiscard]] FitResult fit_coefficients(
    const std::vector<MixFeatures>& features,
    const std::vector<double>& times, double ridge = 1e-9);

/// Fit from a journal's measured variants: compiles each recorded
/// variant of `workload` on `gpu`, extracts mix features, and fits
/// against the recorded times. Unmeasured/invalid variants are skipped.
[[nodiscard]] FitResult refine_from_journal(const TuningJournal& journal,
                                            const dsl::WorkloadDesc& workload,
                                            const arch::GpuSpec& gpu);

}  // namespace gpustatic::replay
