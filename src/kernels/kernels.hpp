#pragma once

// The four benchmark kernels of Table IV, expressed in the DSL.
//
// | Kernel   | Category                  | Operation                    |
// |----------|---------------------------|------------------------------|
// | atax     | Elementary linear algebra | y = A^T (A x)                |
// | BiCG     | Linear solvers            | q = A p,  s = A^T r          |
// | ex14FJ   | 3-D Jacobi computation    | F(x) = A(x) x - b = 0 (Bratu)|
// | matVec2D | Elementary linear algebra | y = A x                      |
//
// Implementation notes that matter for reproduction (see DESIGN.md §3):
//
//  * atax lowers to two stages (forward product, then transposed product);
//    both are strength-reducible streaming loops, so the static mix is
//    FLOPS-lean and the kernel lands *below* the intensity-4.0 rule
//    threshold, like the paper's ATAX.
//  * bicg is a single fused stage updating q and s in one pass. Because the
//    s[j] store may alias r (no restrict qualifiers, exactly like
//    Orio-generated C), r[i] is re-loaded every inner iteration; the extra
//    memory operation pushes BiCG's intensity below atax's.
//  * matVec2D distributes column chunks block-cyclically; the cyclic wrap
//    (index modulo N) defeats strength reduction, so every element access
//    re-computes its address — integer/conversion work that counts toward
//    FLOPS in the Table II taxonomy and lifts intensity above 4.0.
//  * ex14FJ is the solid-fuel-ignition (Bratu) Jacobi residual on an
//    N^3 grid: a 7-point Laplacian with per-face nonlinear conductivities
//    and a lambda*exp(u) source term, plus divergent boundary handling.
//    It is by far the most FLOPS-dense kernel (highest intensity), and its
//    boundary branch exercises the divergence machinery.

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "dsl/ast.hpp"

namespace gpustatic::kernels {

/// y = A^T (A x): two stages over an N x N matrix.
[[nodiscard]] dsl::WorkloadDesc make_atax(std::int64_t n);

/// q = A p and s = A^T r fused into one pass over A.
[[nodiscard]] dsl::WorkloadDesc make_bicg(std::int64_t n);

/// 3-D Bratu / solid-fuel-ignition Jacobi residual on an n^3 grid.
[[nodiscard]] dsl::WorkloadDesc make_ex14fj(std::int64_t n);

/// y = A x with block-cyclic chunk distribution (chunk length 64).
[[nodiscard]] dsl::WorkloadDesc make_matvec2d(std::int64_t n);

/// Chunk length used by matVec2D's column decomposition.
inline constexpr std::int64_t kMatVecChunk = 64;

// Extended suite -------------------------------------------------------
//
// The paper's Table IV kernels "contribute significantly to the overall
// execution time of many different applications"; these PolyBench-family
// kernels extend the evaluation beyond the paper to check the static
// models generalize (bench/extended_suite).

/// gesummv: y = alpha*A*x + beta*B*x, one fused row pass.
[[nodiscard]] dsl::WorkloadDesc make_gesummv(std::int64_t n);

/// gemver (four stages): A += u1 v1^T + u2 v2^T; x += beta*A^T y;
/// x += z; w = alpha*A*x.
[[nodiscard]] dsl::WorkloadDesc make_gemver(std::int64_t n);

/// mvt (two independent stages): x1 += A y1; x2 += A^T y2.
[[nodiscard]] dsl::WorkloadDesc make_mvt(std::int64_t n);

/// One step of 2-D 5-point Jacobi smoothing with Dirichlet boundary
/// pass-through (boundary branch exercises divergence). n must be a
/// power of two (codegen division constraint).
[[nodiscard]] dsl::WorkloadDesc make_jacobi2d(std::int64_t n);

/// Synthetic divergence stressor: work item t takes one of four arms by
/// t % 4, each arm a different amount of arithmetic — a worst-case warp
/// serialization pattern (Fig. 1's mechanism, dialed to 4 ways).
[[nodiscard]] dsl::WorkloadDesc make_divergent(std::int64_t n);

/// Registry ------------------------------------------------------------

struct KernelInfo {
  std::string_view name;       ///< "atax", "bicg", "ex14fj", "matvec2d"
  std::string_view category;   ///< Table IV "Category" column.
  std::string_view description;///< Table IV "Description" column.
  std::string_view operation;  ///< Table IV "Operation" column.
  /// The paper's five input sizes for this kernel (Sec. IV-A).
  std::vector<std::int64_t> input_sizes;
};

[[nodiscard]] std::span<const KernelInfo> all_kernels();

/// The extended (beyond-paper) kernels: gesummv, gemver, mvt, jacobi2d,
/// divergent.
[[nodiscard]] std::span<const KernelInfo> extended_kernels();

/// Build a workload by registry name (paper or extended suite); throws
/// LookupError on unknown names.
[[nodiscard]] dsl::WorkloadDesc make_workload(std::string_view name,
                                              std::int64_t n);

}  // namespace gpustatic::kernels
