#include <array>

#include "kernels/kernels.hpp"

// The extended (beyond-Table-IV) kernel suite. Implementation notes:
//
//  * gesummv streams two matrices per row: the most memory-bound kernel
//    in the repository (intensity below BiCG's).
//  * gemver chains four dependent stages through global memory — the
//    longest stage pipeline here; its rank-1 update stage runs on an
//    N^2 domain while the vector stages run on N, so no single launch
//    geometry is right for all stages (a stress case for single-TC
//    advice).
//  * mvt is two independent matvecs (one transposed); the transposed
//    stage's serial walk strides by N like atax's second stage.
//  * jacobi2d's boundary branch diverges only in warps straddling the
//    grid edge; interior warps are uniform.
//  * divergent is adversarial: adjacent lanes always take different
//    arms, so every warp serializes all four arms (Fig. 1's worst case
//    at 4 ways).

namespace gpustatic::kernels {

using namespace dsl;  // NOLINT: dense AST-building code

WorkloadDesc make_gesummv(std::int64_t n) {
  WorkloadDesc wl;
  wl.name = "gesummv";
  wl.problem_size = n;
  wl.arrays = {
      {"A", n * n, ArrayInit::Ramp},
      {"B", n * n, ArrayInit::Ramp},
      {"x", n, ArrayInit::Ramp},
      {"y", n, ArrayInit::Zero},
  };

  StageDesc s;
  s.name = "gesummv_row";
  s.domain = n;
  const auto i = ivar("t");
  const auto j = ivar("j");
  const auto row = iadd(imul(i, iconst(n)), j);
  s.body = seq({
      let_float("sa", fconst(0.0)),
      let_float("sb", fconst(0.0)),
      serial_for("j", 0, n,
                 seq({
                     let_float("xj", fload("x", j)),
                     accum("sa", FloatBinOp::Add,
                           fmul(fload("A", row), fref("xj"))),
                     accum("sb", FloatBinOp::Add,
                           fmul(fload("B", row), fref("xj"))),
                 })),
      store("y", i,
            fadd(fmul(fconst(1.5), fref("sa")),
                 fmul(fconst(0.5), fref("sb")))),
  });
  wl.stages.push_back(std::move(s));
  return wl;
}

WorkloadDesc make_gemver(std::int64_t n) {
  WorkloadDesc wl;
  wl.name = "gemver";
  wl.problem_size = n;
  wl.arrays = {
      {"A", n * n, ArrayInit::Ramp}, {"u1", n, ArrayInit::Ramp},
      {"v1", n, ArrayInit::Ramp},    {"u2", n, ArrayInit::Ones},
      {"v2", n, ArrayInit::Ramp},    {"y", n, ArrayInit::Ramp},
      {"z", n, ArrayInit::Ramp},     {"x", n, ArrayInit::Zero},
      {"w", n, ArrayInit::Zero},
  };
  const double alpha = 1.5;
  const double beta = 1.2;

  // Stage 1 (domain n*n): A[i][j] += u1[i]*v1[j] + u2[i]*v2[j].
  {
    StageDesc s;
    s.name = "gemver_rank1";
    s.domain = n * n;
    const auto t = ivar("t");
    s.body = seq({
        let_int("i", idiv(t, n)),
        let_int("j", imod(t, n)),
        let_float("upd",
                  fadd(fmul(fload("u1", ivar("i")), fload("v1", ivar("j"))),
                       fmul(fload("u2", ivar("i")),
                            fload("v2", ivar("j"))))),
        store("A", t, fadd(fload("A", t), fref("upd"))),
    });
    wl.stages.push_back(std::move(s));
  }
  // Stage 2 (domain n, thread per column j): x[j] = beta * A^T y.
  {
    StageDesc s;
    s.name = "gemver_xbeta";
    s.domain = n;
    const auto j = ivar("t");
    const auto i = ivar("i");
    s.body = seq({
        let_float("acc", fconst(0.0)),
        serial_for("i", 0, n,
                   accum("acc", FloatBinOp::Add,
                         fmul(fload("A", iadd(imul(i, iconst(n)), j)),
                              fload("y", i)))),
        store("x", j, fmul(fconst(beta), fref("acc"))),
    });
    wl.stages.push_back(std::move(s));
  }
  // Stage 3 (domain n): x[i] += z[i].
  {
    StageDesc s;
    s.name = "gemver_xz";
    s.domain = n;
    const auto i = ivar("t");
    s.body = store("x", i, fadd(fload("x", i), fload("z", i)));
    wl.stages.push_back(std::move(s));
  }
  // Stage 4 (domain n, thread per row): w[i] = alpha * A x.
  {
    StageDesc s;
    s.name = "gemver_w";
    s.domain = n;
    const auto i = ivar("t");
    const auto j = ivar("j");
    s.body = seq({
        let_float("acc", fconst(0.0)),
        serial_for("j", 0, n,
                   accum("acc", FloatBinOp::Add,
                         fmul(fload("A", iadd(imul(i, iconst(n)), j)),
                              fload("x", j)))),
        store("w", i, fmul(fconst(alpha), fref("acc"))),
    });
    wl.stages.push_back(std::move(s));
  }
  return wl;
}

WorkloadDesc make_mvt(std::int64_t n) {
  WorkloadDesc wl;
  wl.name = "mvt";
  wl.problem_size = n;
  wl.arrays = {
      {"A", n * n, ArrayInit::Ramp},  {"x1", n, ArrayInit::Ramp},
      {"x2", n, ArrayInit::Ramp},     {"y1", n, ArrayInit::Ramp},
      {"y2", n, ArrayInit::Ones},
  };
  // x1[i] += sum_j A[i][j] * y1[j]
  {
    StageDesc s;
    s.name = "mvt_x1";
    s.domain = n;
    const auto i = ivar("t");
    const auto j = ivar("j");
    s.body = seq({
        let_float("acc", fload("x1", i)),
        serial_for("j", 0, n,
                   accum("acc", FloatBinOp::Add,
                         fmul(fload("A", iadd(imul(i, iconst(n)), j)),
                              fload("y1", j)))),
        store("x1", i, fref("acc")),
    });
    wl.stages.push_back(std::move(s));
  }
  // x2[j] += sum_i A[i][j] * y2[i]
  {
    StageDesc s;
    s.name = "mvt_x2";
    s.domain = n;
    const auto j = ivar("t");
    const auto i = ivar("i");
    s.body = seq({
        let_float("acc", fload("x2", j)),
        serial_for("i", 0, n,
                   accum("acc", FloatBinOp::Add,
                         fmul(fload("A", iadd(imul(i, iconst(n)), j)),
                              fload("y2", i)))),
        store("x2", j, fref("acc")),
    });
    wl.stages.push_back(std::move(s));
  }
  return wl;
}

WorkloadDesc make_jacobi2d(std::int64_t n) {
  WorkloadDesc wl;
  wl.name = "jacobi2d";
  wl.problem_size = n;
  wl.arrays = {
      {"A", n * n, ArrayInit::Ramp},
      {"B", n * n, ArrayInit::Zero},
  };

  StageDesc s;
  s.name = "jacobi2d_step";
  s.domain = n * n;
  const auto t = ivar("t");
  const auto nm1 = iconst(n - 1);
  auto edge = [&](const IntExprPtr& v) {
    return cor(ccmp(CmpKind::EQ, v, iconst(0)), ccmp(CmpKind::EQ, v, nm1));
  };
  const double interior =
      n > 2 ? static_cast<double>((n - 2) * (n - 2)) : 0.0;
  const double boundary_frac =
      1.0 - interior / static_cast<double>(n * n);
  s.body = seq({
      let_int("i", idiv(t, n)),
      let_int("j", imod(t, n)),
      if_then(
          cor(edge(ivar("i")), edge(ivar("j"))),
          store("B", t, fload("A", t)),  // boundary pass-through
          seq({
              let_float("c", fload("A", t)),
              let_float("wv", fload("A", isub(t, iconst(1)))),
              let_float("ev", fload("A", iadd(t, iconst(1)))),
              let_float("nv", fload("A", isub(t, iconst(n)))),
              let_float("sv", fload("A", iadd(t, iconst(n)))),
              store("B", t,
                    fmul(fconst(0.2),
                         fadd(fadd(fadd(fadd(fref("c"), fref("wv")),
                                        fref("ev")),
                                   fref("nv")),
                              fref("sv")))),
          }),
          boundary_frac),
  });
  wl.stages.push_back(std::move(s));
  return wl;
}

WorkloadDesc make_divergent(std::int64_t n) {
  WorkloadDesc wl;
  wl.name = "divergent";
  wl.problem_size = n;
  wl.arrays = {
      {"x", n, ArrayInit::Ramp},
      {"y", n, ArrayInit::Zero},
  };

  StageDesc s;
  s.name = "divergent_arms";
  s.domain = n;
  const auto t = ivar("t");
  // Arm bodies of increasing arithmetic weight.
  auto arm = [&](int flops) {
    std::vector<StmtPtr> body;
    body.push_back(let_float("v", fload("x", t)));
    for (int k = 0; k < flops; ++k)
      body.push_back(accum(
          "v", FloatBinOp::Add,
          fmul(fref("v"), fconst(0.5 + 0.125 * static_cast<double>(k)))));
    body.push_back(store("y", t, fref("v")));
    return seq(std::move(body));
  };
  s.body = seq({
      let_int("arm", imod(t, 4)),
      if_then(ccmp(CmpKind::EQ, ivar("arm"), iconst(0)), arm(2),
              if_then(ccmp(CmpKind::EQ, ivar("arm"), iconst(1)), arm(6),
                      if_then(ccmp(CmpKind::EQ, ivar("arm"), iconst(2)),
                              arm(12), arm(24), 1.0 / 2.0),
                      1.0 / 3.0),
              1.0 / 4.0),
  });
  wl.stages.push_back(std::move(s));
  return wl;
}

namespace {

const std::array<KernelInfo, 5> kExtendedRegistry = {{
    {"gesummv",
     "Elementary linear algebra",
     "Scalar, vector and matrix multiplication",
     "y = alpha A x + beta B x",
     {32, 64, 128, 256, 512}},
    {"gemver",
     "Elementary linear algebra",
     "Vector multiplication and matrix addition",
     "A+=u v^T; x=beta A^T y+z; w=alpha A x",
     {32, 64, 128, 256}},
    {"mvt",
     "Elementary linear algebra",
     "Matrix vector product and transpose",
     "x1 += A y1, x2 += A^T y2",
     {32, 64, 128, 256, 512}},
    {"jacobi2d",
     "2-D stencil",
     "5-point Jacobi smoothing step",
     "B = 0.2 (A + A_N + A_S + A_E + A_W)",
     {32, 64, 128, 256}},
    {"divergent",
     "Synthetic",
     "4-way branch-divergence stressor",
     "y[t] = arm_{t mod 4}(x[t])",
     {1024, 4096, 16384}},
}};

}  // namespace

std::span<const KernelInfo> extended_kernels() { return kExtendedRegistry; }

}  // namespace gpustatic::kernels
