#include "kernels/kernels.hpp"

#include <array>

#include "common/error.hpp"

namespace gpustatic::kernels {

using namespace dsl;  // NOLINT: dense AST-building code

namespace {

/// acc += A[row*n + col] * v[col] inner-product loop body.
StmtPtr dot_step(const std::string& mat, IntExprPtr elem_index,
                 const std::string& vec, IntExprPtr vec_index) {
  return accum("acc", FloatBinOp::Add,
               fmul(fload(mat, std::move(elem_index)),
                    fload(vec, std::move(vec_index))));
}

}  // namespace

WorkloadDesc make_atax(std::int64_t n) {
  WorkloadDesc wl;
  wl.name = "atax";
  wl.problem_size = n;
  wl.arrays = {
      {"A", n * n, ArrayInit::Ramp},
      {"x", n, ArrayInit::Ramp},
      {"tmp", n, ArrayInit::Zero},
      {"y", n, ArrayInit::Zero},
  };

  // Stage 1: tmp[i] = sum_j A[i*n+j] * x[j]   (thread per row)
  {
    StageDesc s;
    s.name = "atax_fwd";
    s.domain = n;
    const auto i = ivar("t");
    const auto j = ivar("j");
    s.body = seq({
        let_float("acc", fconst(0.0)),
        serial_for("j", 0, n,
                   dot_step("A", iadd(imul(i, iconst(n)), j), "x", j)),
        store("tmp", i, fref("acc")),
    });
    wl.stages.push_back(std::move(s));
  }

  // Stage 2: y[j] = sum_i A[i*n+j] * tmp[i]   (thread per column; the
  // lane index runs along j so the A access is coalesced, the serial walk
  // strides by n).
  {
    StageDesc s;
    s.name = "atax_bwd";
    s.domain = n;
    const auto j = ivar("t");
    const auto i = ivar("i");
    s.body = seq({
        let_float("acc", fconst(0.0)),
        serial_for("i", 0, n,
                   dot_step("A", iadd(imul(i, iconst(n)), j), "tmp", i)),
        store("y", j, fref("acc")),
    });
    wl.stages.push_back(std::move(s));
  }
  return wl;
}

WorkloadDesc make_bicg(std::int64_t n) {
  WorkloadDesc wl;
  wl.name = "bicg";
  wl.problem_size = n;
  wl.arrays = {
      {"A", n * n, ArrayInit::Ramp}, {"p", n, ArrayInit::Ramp},
      {"r", n, ArrayInit::Ramp},     {"q", n, ArrayInit::Zero},
      {"s", n, ArrayInit::Zero},
  };

  // Fused stage (thread per row i):
  //   q[i]  = sum_j A[i*n+j] * p[j]
  //   s[j] += A[i*n+j] * r[i]   (atomic across rows)
  //
  // Because s may alias r (no restrict info survives code generation),
  // r[i] is re-loaded on every inner iteration — one extra memory op per
  // multiply-add, which is what drags BiCG's intensity below atax's.
  StageDesc s;
  s.name = "bicg_fused";
  s.domain = n;
  const auto i = ivar("t");
  const auto j = ivar("j");
  const auto a_idx = iadd(imul(i, iconst(n)), j);
  s.body = seq({
      let_float("acc", fconst(0.0)),
      serial_for(
          "j", 0, n,
          seq({
              let_float("aij", fload("A", a_idx)),
              accum("acc", FloatBinOp::Add,
                    fmul(fref("aij"), fload("p", j))),
              atomic_add("s", j, fmul(fref("aij"), fload("r", i))),
          })),
      store("q", i, fref("acc")),
  });
  wl.stages.push_back(std::move(s));
  return wl;
}

WorkloadDesc make_ex14fj(std::int64_t n) {
  WorkloadDesc wl;
  wl.name = "ex14fj";
  wl.problem_size = n;
  wl.arrays = {
      {"u", n * n * n, ArrayInit::Ramp},
      {"F", n * n * n, ArrayInit::Zero},
  };

  // Solid-fuel ignition Jacobian/residual (PETSc ex14): on the interior,
  //   F = sum_faces kappa_face * (u_c - u_nb) / h^2 - lambda * exp(u_c)
  // with kappa_face = 0.5*(kappa(u_c) + kappa(u_nb)), kappa(v) = 1 + v^2
  // (a simple nonlinear conductivity); Dirichlet boundary rows pass
  // through the residual unchanged.
  StageDesc s;
  s.name = "ex14fj_residual";
  s.domain = n * n * n;
  const auto t = ivar("t");
  const double inv_h2 = static_cast<double>((n + 1) * (n + 1));
  const double lambda = 6.0;  // classic Bratu parameter

  const auto uc = fref("uc");
  auto kappa = [&](FloatExprPtr v) {
    // kappa(v) = 1 + v*v
    return fadd(fconst(1.0), fmul(v, v));
  };
  auto face = [&](const std::string& nb_name) {
    // 0.5*(kappa(uc)+kappa(nb)) * (uc - nb)
    const auto nb = fref(nb_name);
    return fmul(fmul(fconst(0.5), fadd(kappa(uc), kappa(nb))),
                fsub(uc, nb));
  };

  std::vector<StmtPtr> interior;
  interior.push_back(let_float("uc", fload("u", t)));
  interior.push_back(
      let_float("uw", fload("u", isub(t, iconst(1)))));
  interior.push_back(
      let_float("ue", fload("u", iadd(t, iconst(1)))));
  interior.push_back(
      let_float("us", fload("u", isub(t, iconst(n)))));
  interior.push_back(
      let_float("un", fload("u", iadd(t, iconst(n)))));
  interior.push_back(
      let_float("ud", fload("u", isub(t, iconst(n * n)))));
  interior.push_back(
      let_float("uu", fload("u", iadd(t, iconst(n * n)))));
  interior.push_back(let_float("flux", face("uw")));
  for (const char* nb : {"ue", "us", "un", "ud", "uu"})
    interior.push_back(accum("flux", FloatBinOp::Add, face(nb)));
  interior.push_back(let_float(
      "res", fsub(fmul(fref("flux"), fconst(inv_h2)),
                  fmul(fconst(lambda), fun(FloatUnOp::Exp, uc)))));
  interior.push_back(store("F", t, fref("res")));

  const auto nm1 = iconst(n - 1);
  auto at_edge = [&](const IntExprPtr& v) {
    return cor(ccmp(CmpKind::EQ, v, iconst(0)), ccmp(CmpKind::EQ, v, nm1));
  };

  const double interior_n = n > 2 ? static_cast<double>((n - 2) * (n - 2) *
                                                        (n - 2))
                                  : 0.0;
  const double boundary_frac =
      1.0 - interior_n / static_cast<double>(n * n * n);
  s.body = seq({
      let_int("k", idiv(t, n * n)),
      let_int("rem", imod(t, n * n)),
      let_int("j", idiv(ivar("rem"), n)),
      let_int("i", imod(ivar("rem"), n)),
      if_then(cor(cor(at_edge(ivar("i")), at_edge(ivar("j"))),
                  at_edge(ivar("k"))),
              // Dirichlet boundary: residual is the boundary equation.
              store("F", t, fload("u", t)),
              seq(std::move(interior)), boundary_frac),
  });
  wl.stages.push_back(std::move(s));
  return wl;
}

WorkloadDesc make_matvec2d(std::int64_t n) {
  WorkloadDesc wl;
  wl.name = "matvec2d";
  wl.problem_size = n;
  wl.arrays = {
      {"A", n * n, ArrayInit::Ramp},
      {"x", n, ArrayInit::Ramp},
      {"y", n, ArrayInit::Zero},
  };

  // 2-D decomposition: work item t covers row i = t / chunks and column
  // chunk c = t % chunks; each thread reduces kMatVecChunk elements and
  // adds its partial sum into y[i]. Column offsets wrap cyclically
  // ((c*C + k) mod n) — the block-cyclic distribution Orio's 2-D code
  // generator emits — which keeps every address computation inside the
  // loop (not strength-reducible).
  const std::int64_t chunk = std::min<std::int64_t>(kMatVecChunk, n);
  const std::int64_t chunks = std::max<std::int64_t>(1, n / chunk);

  StageDesc s;
  s.name = "matvec2d_partial";
  s.domain = n * chunks;
  const auto t = ivar("t");
  const auto k = ivar("k");
  // col = (c*chunk + k) mod n; wraps only notionally (always < n here).
  const auto col =
      imod(iadd(imul(ivar("c"), iconst(chunk)), k), n);
  s.body = seq({
      let_int("i", idiv(t, chunks)),
      let_int("c", imod(t, chunks)),
      let_float("acc", fconst(0.0)),
      serial_for("k", 0, chunk,
                 dot_step("A", iadd(imul(ivar("i"), iconst(n)), col), "x",
                          col)),
      atomic_add("y", ivar("i"), fref("acc")),
  });
  wl.stages.push_back(std::move(s));
  return wl;
}

namespace {

const std::array<KernelInfo, 4> kRegistry = {{
    {"atax",
     "Elementary linear algebra",
     "Matrix transpose, vector multiplication",
     "y = A^T (A x)",
     {32, 64, 128, 256, 512}},
    {"bicg",
     "Linear solvers",
     "Subkernel of BiCGStab linear solver",
     "q = A p, s = A^T r",
     {32, 64, 128, 256, 512}},
    {"ex14fj",
     "3-D Jacobi computation",
     "Stencil code kernels (solid fuel ignition)",
     "F(x) = A(x) x - b = 0",
     {8, 16, 32, 64, 128}},
    {"matvec2d",
     "Elementary linear algebra",
     "Matrix vector multiplication",
     "y = A x",
     {32, 64, 128, 256, 512}},
}};

}  // namespace

std::span<const KernelInfo> all_kernels() { return kRegistry; }

dsl::WorkloadDesc make_workload(std::string_view name, std::int64_t n) {
  if (name == "atax") return make_atax(n);
  if (name == "bicg") return make_bicg(n);
  if (name == "ex14fj") return make_ex14fj(n);
  if (name == "matvec2d") return make_matvec2d(n);
  if (name == "gesummv") return make_gesummv(n);
  if (name == "gemver") return make_gemver(n);
  if (name == "mvt") return make_mvt(n);
  if (name == "jacobi2d") return make_jacobi2d(n);
  if (name == "divergent") return make_divergent(n);
  throw LookupError("unknown kernel '" + std::string(name) + "'");
}

}  // namespace gpustatic::kernels
