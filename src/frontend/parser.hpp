#pragma once

// Source-to-DSL translation: the paper's Sec. VII goal of using "source
// analysis technology to translate kernel code to the input required by
// Orio". Kernels are written in a restricted C-like language and parsed
// into dsl::WorkloadDesc, after which the whole pipeline — static
// analysis, occupancy suggestion, autotuning, simulation — applies
// unchanged.
//
// Grammar (EBNF; `//` and `/* */` comments allowed everywhere):
//
//   program   = "workload" IDENT "(" IDENT "=" INT ")" ";" { decl } ;
//   decl      = array | stage ;
//   array     = "array" IDENT "[" iexpr "]" [ "init" IDENT ] ";" ;
//                 // init one of: ramp (default), zero, ones
//   stage     = "stage" IDENT "(" IDENT ":" iexpr ")" block ;
//                 // work-item variable : domain size (parameter-const)
//   block     = "{" { stmt } "}" ;
//   stmt      = "float" IDENT "=" fexpr ";"          // accumulator decl
//             | "int" IDENT "=" iexpr ";"            // index binding
//             | IDENT ("+="|"-="|"*="|"/=") fexpr ";"  // accumulator step
//             | IDENT "[" iexpr "]" "=" fexpr ";"    // array store
//             | "atomic" IDENT "[" iexpr "]" "+=" fexpr ";"
//             | [ "unroll" ] "for" "(" IDENT "=" iexpr ";"
//               IDENT "<" iexpr ";" IDENT "++" ")" block
//             | "if" "(" cond ")" [ "prob" "(" FLOAT ")" ] block
//               [ "else" block ] ;
//   cond      = conj { "||" conj } ;
//   conj      = catom { "&&" catom } ;
//   catom     = "!" catom | "(" cond ")"
//             | iexpr ("=="|"!="|"<"|"<="|">"|">=") iexpr ;
//   fexpr     = fterm { ("+"|"-") fterm } ;
//   fterm     = ffactor { ("*"|"/") ffactor } ;
//   ffactor   = "-" ffactor | FLOAT | INT           // literals
//             | FUNC "(" fexpr ")"                  // exp log sqrt rsqrt
//                                                   // rcp sin cos abs
//             | ("fmin"|"fmax") "(" fexpr "," fexpr ")"
//             | "tofloat" "(" iexpr ")"             // const int -> float
//             | IDENT "[" iexpr "]"                 // array load
//             | IDENT | "(" fexpr ")" ;
//   iexpr     = iterm { ("+"|"-") iterm } ;
//   iterm     = iatom { ("*"|"/"|"%") iatom } ;     // / % need const rhs
//   iatom     = "-" iatom | INT | IDENT
//             | ("min"|"max") "(" iexpr "," iexpr ")" | "(" iexpr ")" ;
//
// Semantics enforced while parsing (all violations raise ParseError with
// the source line):
//   * the single workload parameter (e.g. N) is a compile-time constant,
//     folded into every expression;
//   * array extents, stage domains, and for-loop bounds must fold to
//     non-negative constants (they may reference only the parameter);
//   * scalars: `float` names live in float expressions, `int` names and
//     loop/work-item variables in integer expressions — no implicit
//     casts;
//   * compound assignment targets must be declared `float` scalars;
//     plain `=` on a scalar is rejected (the DSL models accumulators);
//   * integer `/` and `%` require a constant divisor (the code generator
//     additionally requires a power of two);
//   * duplicate names, unknown names, and stores to non-arrays are
//     rejected.

#include <string>
#include <string_view>

#include "dsl/ast.hpp"

namespace gpustatic::frontend {

/// Parse one workload definition. Throws ParseError on any lexical,
/// syntactic, or semantic violation.
[[nodiscard]] dsl::WorkloadDesc parse_workload(std::string_view source);

/// As parse_workload, but overriding the parameter's declared value with
/// `problem_size` (so one source file serves every input size).
[[nodiscard]] dsl::WorkloadDesc parse_workload(std::string_view source,
                                               std::int64_t problem_size);

}  // namespace gpustatic::frontend
