#pragma once

// Tokenizer for the kernel source language (see frontend/parser.hpp for
// the grammar). Line-accurate: every token carries its source line so
// ParseError messages point at the offending input.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gpustatic::frontend {

enum class Tok : std::uint8_t {
  // Literals & names.
  Ident, IntLit, FloatLit,
  // Keywords.
  KwWorkload, KwArray, KwInit, KwStage, KwFloat, KwInt, KwFor, KwUnroll,
  KwIf, KwElse, KwProb, KwAtomic,
  // Punctuation.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semicolon, Comma, Colon,
  // Operators.
  Assign,          // =
  Plus, Minus, Star, Slash, Percent,
  PlusAssign, MinusAssign, StarAssign, SlashAssign,  // += -= *= /=
  PlusPlus,        // ++
  Lt, Le, Gt, Ge, EqEq, NotEq,
  AndAnd, OrOr, Not,
  End,             // end of input
};

[[nodiscard]] std::string_view token_name(Tok t);

struct Token {
  Tok kind = Tok::End;
  std::string text;        ///< identifier spelling / literal spelling
  std::int64_t int_value = 0;
  double float_value = 0;
  std::size_t line = 1;
};

/// Tokenize the whole source. `//` line comments and `/* */` block
/// comments are skipped. Throws ParseError on unknown characters,
/// malformed numbers, or unterminated block comments.
[[nodiscard]] std::vector<Token> tokenize(std::string_view source);

}  // namespace gpustatic::frontend
