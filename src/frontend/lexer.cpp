#include "frontend/lexer.hpp"

#include <cctype>
#include <unordered_map>

#include "common/error.hpp"

namespace gpustatic::frontend {

std::string_view token_name(Tok t) {
  switch (t) {
    case Tok::Ident: return "identifier";
    case Tok::IntLit: return "integer literal";
    case Tok::FloatLit: return "float literal";
    case Tok::KwWorkload: return "'workload'";
    case Tok::KwArray: return "'array'";
    case Tok::KwInit: return "'init'";
    case Tok::KwStage: return "'stage'";
    case Tok::KwFloat: return "'float'";
    case Tok::KwInt: return "'int'";
    case Tok::KwFor: return "'for'";
    case Tok::KwUnroll: return "'unroll'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwProb: return "'prob'";
    case Tok::KwAtomic: return "'atomic'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Semicolon: return "';'";
    case Tok::Comma: return "','";
    case Tok::Colon: return "':'";
    case Tok::Assign: return "'='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::PlusAssign: return "'+='";
    case Tok::MinusAssign: return "'-='";
    case Tok::StarAssign: return "'*='";
    case Tok::SlashAssign: return "'/='";
    case Tok::PlusPlus: return "'++'";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
    case Tok::EqEq: return "'=='";
    case Tok::NotEq: return "'!='";
    case Tok::AndAnd: return "'&&'";
    case Tok::OrOr: return "'||'";
    case Tok::Not: return "'!'";
    case Tok::End: return "end of input";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, Tok>& keywords() {
  static const std::unordered_map<std::string_view, Tok> kMap = {
      {"workload", Tok::KwWorkload}, {"array", Tok::KwArray},
      {"init", Tok::KwInit},         {"stage", Tok::KwStage},
      {"float", Tok::KwFloat},       {"int", Tok::KwInt},
      {"for", Tok::KwFor},           {"unroll", Tok::KwUnroll},
      {"if", Tok::KwIf},             {"else", Tok::KwElse},
      {"prob", Tok::KwProb},         {"atomic", Tok::KwAtomic},
  };
  return kMap;
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool digit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  std::size_t line = 1;

  auto push = [&](Tok k, std::string text = {}) {
    Token t;
    t.kind = k;
    t.text = std::move(text);
    t.line = line;
    out.push_back(std::move(t));
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      const std::size_t open_line = line;
      i += 2;
      while (i + 1 < src.size() &&
             !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= src.size())
        throw ParseError("unterminated block comment", open_line);
      i += 2;
      continue;
    }
    // Identifiers & keywords.
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < src.size() && ident_char(src[j])) ++j;
      const std::string_view word = src.substr(i, j - i);
      const auto it = keywords().find(word);
      if (it != keywords().end())
        push(it->second, std::string(word));
      else
        push(Tok::Ident, std::string(word));
      i = j;
      continue;
    }
    // Numbers: 123, 1.5, 2e-3; a '.' or exponent makes it a float.
    if (digit(c)) {
      std::size_t j = i;
      bool is_float = false;
      while (j < src.size() && digit(src[j])) ++j;
      if (j < src.size() && src[j] == '.') {
        is_float = true;
        ++j;
        while (j < src.size() && digit(src[j])) ++j;
      }
      if (j < src.size() && (src[j] == 'e' || src[j] == 'E')) {
        is_float = true;
        ++j;
        if (j < src.size() && (src[j] == '+' || src[j] == '-')) ++j;
        if (j >= src.size() || !digit(src[j]))
          throw ParseError("malformed exponent in number", line);
        while (j < src.size() && digit(src[j])) ++j;
      }
      if (j < src.size() && ident_start(src[j]))
        throw ParseError("identifier cannot start with a digit", line);
      const std::string text(src.substr(i, j - i));
      Token t;
      t.line = line;
      t.text = text;
      if (is_float) {
        t.kind = Tok::FloatLit;
        t.float_value = std::stod(text);
      } else {
        t.kind = Tok::IntLit;
        t.int_value = std::stoll(text);
      }
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    // Operators & punctuation.
    auto two = [&](char a, char b) {
      return c == a && i + 1 < src.size() && src[i + 1] == b;
    };
    if (two('+', '=')) { push(Tok::PlusAssign); i += 2; continue; }
    if (two('-', '=')) { push(Tok::MinusAssign); i += 2; continue; }
    if (two('*', '=')) { push(Tok::StarAssign); i += 2; continue; }
    if (two('/', '=')) { push(Tok::SlashAssign); i += 2; continue; }
    if (two('+', '+')) { push(Tok::PlusPlus); i += 2; continue; }
    if (two('<', '=')) { push(Tok::Le); i += 2; continue; }
    if (two('>', '=')) { push(Tok::Ge); i += 2; continue; }
    if (two('=', '=')) { push(Tok::EqEq); i += 2; continue; }
    if (two('!', '=')) { push(Tok::NotEq); i += 2; continue; }
    if (two('&', '&')) { push(Tok::AndAnd); i += 2; continue; }
    if (two('|', '|')) { push(Tok::OrOr); i += 2; continue; }
    switch (c) {
      case '(': push(Tok::LParen); break;
      case ')': push(Tok::RParen); break;
      case '{': push(Tok::LBrace); break;
      case '}': push(Tok::RBrace); break;
      case '[': push(Tok::LBracket); break;
      case ']': push(Tok::RBracket); break;
      case ';': push(Tok::Semicolon); break;
      case ',': push(Tok::Comma); break;
      case ':': push(Tok::Colon); break;
      case '=': push(Tok::Assign); break;
      case '+': push(Tok::Plus); break;
      case '-': push(Tok::Minus); break;
      case '*': push(Tok::Star); break;
      case '/': push(Tok::Slash); break;
      case '%': push(Tok::Percent); break;
      case '<': push(Tok::Lt); break;
      case '>': push(Tok::Gt); break;
      case '!': push(Tok::Not); break;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'",
                         line);
    }
    ++i;
  }
  push(Tok::End);
  return out;
}

}  // namespace gpustatic::frontend
