#include "frontend/parser.hpp"

#include <optional>
#include <set>
#include <unordered_map>

#include "common/error.hpp"
#include "frontend/lexer.hpp"

namespace gpustatic::frontend {

namespace {

using dsl::CmpKind;
using dsl::CondPtr;
using dsl::FloatBinOp;
using dsl::FloatExprPtr;
using dsl::FloatUnOp;
using dsl::IntExprPtr;
using dsl::IntOp;
using dsl::StmtPtr;

const std::unordered_map<std::string_view, FloatUnOp>& float_funcs() {
  static const std::unordered_map<std::string_view, FloatUnOp> kMap = {
      {"exp", FloatUnOp::Exp},     {"log", FloatUnOp::Log},
      {"sqrt", FloatUnOp::Sqrt},   {"rsqrt", FloatUnOp::Rsqrt},
      {"rcp", FloatUnOp::Rcp},     {"sin", FloatUnOp::Sin},
      {"cos", FloatUnOp::Cos},     {"abs", FloatUnOp::Abs},
  };
  return kMap;
}

/// Constant folding over an integer expression in which only the workload
/// parameter may appear; returns nullopt when a runtime variable occurs.
std::optional<std::int64_t> fold(const IntExprPtr& e) {
  switch (e->kind) {
    case dsl::IntExpr::Kind::Const:
      return e->value;
    case dsl::IntExpr::Kind::Var:
      return std::nullopt;
    case dsl::IntExpr::Kind::Binary: {
      const auto a = fold(e->lhs);
      const auto b = fold(e->rhs);
      if (!a || !b) return std::nullopt;
      switch (e->op) {
        case IntOp::Add: return *a + *b;
        case IntOp::Sub: return *a - *b;
        case IntOp::Mul: return *a * *b;
        case IntOp::Div: return *b == 0 ? std::optional<std::int64_t>{}
                                        : *a / *b;
        case IntOp::Mod: return *b == 0 ? std::optional<std::int64_t>{}
                                        : *a % *b;
        case IntOp::Min: return std::min(*a, *b);
        case IntOp::Max: return std::max(*a, *b);
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

class Parser {
 public:
  explicit Parser(std::string_view source) : toks_(tokenize(source)) {}

  dsl::WorkloadDesc run(std::optional<std::int64_t> size_override) {
    expect(Tok::KwWorkload, "every program starts with 'workload'");
    wl_.name = expect_ident("workload name");
    expect(Tok::LParen, "after the workload name");
    param_name_ = expect_ident("parameter name");
    expect(Tok::Assign, "after the parameter name");
    const Token size = expect(Tok::IntLit, "parameter value");
    expect(Tok::RParen, "after the parameter value");
    expect(Tok::Semicolon, "after the workload header");
    param_value_ = size_override.value_or(size.int_value);
    if (param_value_ <= 0)
      fail("workload parameter must be positive", size.line);
    wl_.problem_size = param_value_;

    while (!at(Tok::End)) {
      if (at(Tok::KwArray))
        parse_array();
      else if (at(Tok::KwStage))
        parse_stage();
      else
        fail("expected 'array' or 'stage', got " +
             std::string(token_name(cur().kind)));
    }
    if (wl_.stages.empty()) fail("workload defines no stages");
    return std::move(wl_);
  }

 private:
  // ---- token helpers -----------------------------------------------------
  [[nodiscard]] const Token& cur() const { return toks_[pos_]; }
  [[nodiscard]] bool at(Tok k) const { return cur().kind == k; }
  Token advance() { return toks_[pos_++]; }
  bool accept(Tok k) {
    if (!at(k)) return false;
    ++pos_;
    return true;
  }
  Token expect(Tok k, const std::string& why) {
    if (!at(k))
      fail("expected " + std::string(token_name(k)) + " " + why +
           ", got " + std::string(token_name(cur().kind)));
    return advance();
  }
  std::string expect_ident(const std::string& what) {
    return expect(Tok::Ident, "(" + what + ")").text;
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, cur().line);
  }
  [[noreturn]] void fail(const std::string& msg, std::size_t line) const {
    throw ParseError(msg, line);
  }

  // ---- name environment ----------------------------------------------------
  enum class NameKind { Array, FloatScalar, IntVar };

  void declare(const std::string& name, NameKind kind, std::size_t line) {
    if (name == param_name_)
      fail("'" + name + "' shadows the workload parameter", line);
    if (names_.count(name) != 0)
      fail("duplicate declaration of '" + name + "'", line);
    names_.emplace(name, kind);
  }
  void undeclare(const std::string& name) { names_.erase(name); }
  [[nodiscard]] std::optional<NameKind> lookup(
      const std::string& name) const {
    const auto it = names_.find(name);
    if (it == names_.end()) return std::nullopt;
    return it->second;
  }

  // ---- declarations ---------------------------------------------------------
  void parse_array() {
    expect(Tok::KwArray, "");
    const Token name_tok = advance();
    if (name_tok.kind != Tok::Ident)
      fail("expected array name", name_tok.line);
    expect(Tok::LBracket, "before the array extent");
    const std::int64_t extent = const_iexpr("array extent");
    expect(Tok::RBracket, "after the array extent");

    dsl::ArrayDecl decl;
    decl.name = name_tok.text;
    decl.length = extent;
    decl.init = dsl::ArrayInit::Ramp;
    if (accept(Tok::KwInit)) {
      const std::string mode = expect_ident("init mode");
      if (mode == "ramp")
        decl.init = dsl::ArrayInit::Ramp;
      else if (mode == "zero")
        decl.init = dsl::ArrayInit::Zero;
      else if (mode == "ones")
        decl.init = dsl::ArrayInit::Ones;
      else
        fail("unknown init mode '" + mode + "' (ramp, zero, ones)");
    }
    expect(Tok::Semicolon, "after the array declaration");
    declare(decl.name, NameKind::Array, name_tok.line);
    wl_.arrays.push_back(std::move(decl));
  }

  void parse_stage() {
    expect(Tok::KwStage, "");
    dsl::StageDesc stage;
    stage.name = expect_ident("stage name");
    for (const auto& s : wl_.stages)
      if (s.name == stage.name)
        fail("duplicate stage name '" + stage.name + "'");
    expect(Tok::LParen, "after the stage name");
    const Token wi_tok = expect(Tok::Ident, "(work-item variable)");
    stage.work_item_var = wi_tok.text;
    expect(Tok::Colon, "between work-item variable and domain");
    stage.domain = const_iexpr("stage domain");
    if (stage.domain <= 0) fail("stage domain must be positive");
    expect(Tok::RParen, "after the stage domain");

    declare(stage.work_item_var, NameKind::IntVar, wi_tok.line);
    stage.body = parse_block();
    undeclare(stage.work_item_var);
    wl_.stages.push_back(std::move(stage));
  }

  // ---- statements ------------------------------------------------------------
  StmtPtr parse_block() {
    expect(Tok::LBrace, "to open a block");
    std::vector<StmtPtr> stmts;
    std::vector<std::string> scope;  // names to drop at block exit
    while (!at(Tok::RBrace)) {
      if (at(Tok::End)) fail("unterminated block");
      stmts.push_back(parse_stmt(scope));
    }
    expect(Tok::RBrace, "to close the block");
    for (const std::string& n : scope) undeclare(n);
    return dsl::seq(std::move(stmts));
  }

  StmtPtr parse_stmt(std::vector<std::string>& scope) {
    if (at(Tok::KwFloat)) return parse_float_decl(scope);
    if (at(Tok::KwInt)) return parse_int_decl(scope);
    if (at(Tok::KwAtomic)) return parse_atomic();
    if (at(Tok::KwFor) || at(Tok::KwUnroll)) return parse_for();
    if (at(Tok::KwIf)) return parse_if();
    if (at(Tok::Ident)) return parse_assign();
    fail("expected a statement, got " +
         std::string(token_name(cur().kind)));
  }

  StmtPtr parse_float_decl(std::vector<std::string>& scope) {
    expect(Tok::KwFloat, "");
    const Token name_tok = expect(Tok::Ident, "(scalar name)");
    const std::string& name = name_tok.text;
    expect(Tok::Assign, "after the scalar name");
    FloatExprPtr value = parse_fexpr();
    expect(Tok::Semicolon, "after the declaration");
    declare(name, NameKind::FloatScalar, name_tok.line);
    scope.push_back(name);
    return dsl::let_float(name, std::move(value));
  }

  StmtPtr parse_int_decl(std::vector<std::string>& scope) {
    expect(Tok::KwInt, "");
    const Token name_tok = expect(Tok::Ident, "(index name)");
    const std::string& name = name_tok.text;
    expect(Tok::Assign, "after the index name");
    IntExprPtr value = parse_iexpr();
    expect(Tok::Semicolon, "after the declaration");
    declare(name, NameKind::IntVar, name_tok.line);
    scope.push_back(name);
    return dsl::let_int(name, std::move(value));
  }

  StmtPtr parse_atomic() {
    expect(Tok::KwAtomic, "");
    const std::string array = expect_ident("array name");
    if (lookup(array) != NameKind::Array)
      fail("atomic target '" + array + "' is not a declared array");
    expect(Tok::LBracket, "after the array name");
    IntExprPtr index = parse_iexpr();
    expect(Tok::RBracket, "after the index");
    expect(Tok::PlusAssign, "(atomic updates are '+=' only)");
    FloatExprPtr value = parse_fexpr();
    expect(Tok::Semicolon, "after the atomic update");
    return dsl::atomic_add(array, std::move(index), std::move(value));
  }

  StmtPtr parse_assign() {
    const Token name_tok = advance();
    const std::string& name = name_tok.text;
    const auto kind = lookup(name);
    if (!kind) fail("unknown name '" + name + "'", name_tok.line);

    if (accept(Tok::LBracket)) {
      if (*kind != NameKind::Array)
        fail("'" + name + "' is not an array", name_tok.line);
      IntExprPtr index = parse_iexpr();
      expect(Tok::RBracket, "after the index");
      expect(Tok::Assign, "(array elements take plain '=')");
      FloatExprPtr value = parse_fexpr();
      expect(Tok::Semicolon, "after the store");
      return dsl::store(name, std::move(index), std::move(value));
    }

    if (*kind != NameKind::FloatScalar)
      fail("only 'float' scalars can be updated; '" + name +
               "' is not one",
           name_tok.line);
    FloatBinOp op;
    if (accept(Tok::PlusAssign))
      op = FloatBinOp::Add;
    else if (accept(Tok::MinusAssign))
      op = FloatBinOp::Sub;
    else if (accept(Tok::StarAssign))
      op = FloatBinOp::Mul;
    else if (accept(Tok::SlashAssign))
      op = FloatBinOp::Div;
    else if (at(Tok::Assign))
      fail("plain '=' on a scalar is not supported; use a compound "
           "update (+=, -=, *=, /=) or declare a new scalar");
    else
      fail("expected a compound assignment operator");
    FloatExprPtr value = parse_fexpr();
    expect(Tok::Semicolon, "after the update");
    return dsl::accum(name, op, std::move(value));
  }

  StmtPtr parse_for() {
    const bool unrollable = accept(Tok::KwUnroll);
    expect(Tok::KwFor, unrollable ? "after 'unroll'" : "");
    expect(Tok::LParen, "after 'for'");
    const Token var_tok = expect(Tok::Ident, "(loop variable)");
    const std::string& var = var_tok.text;
    expect(Tok::Assign, "in the loop initializer");
    const std::int64_t lo = const_iexpr("loop lower bound");
    expect(Tok::Semicolon, "after the initializer");
    const std::string var2 = expect_ident("loop condition variable");
    if (var2 != var)
      fail("loop condition must test the loop variable '" + var + "'");
    expect(Tok::Lt, "(loops must use '<')");
    const std::int64_t hi = const_iexpr("loop upper bound");
    expect(Tok::Semicolon, "after the condition");
    const std::string var3 = expect_ident("loop increment variable");
    if (var3 != var)
      fail("loop increment must update the loop variable '" + var + "'");
    expect(Tok::PlusPlus, "(loops must increment by one)");
    expect(Tok::RParen, "after the loop header");
    if (lo > hi) fail("loop bounds are inverted");

    declare(var, NameKind::IntVar, var_tok.line);
    StmtPtr body = parse_block();
    undeclare(var);
    return dsl::serial_for(var, lo, hi, std::move(body), unrollable);
  }

  StmtPtr parse_if() {
    expect(Tok::KwIf, "");
    expect(Tok::LParen, "after 'if'");
    CondPtr cond = parse_cond();
    expect(Tok::RParen, "after the condition");
    double prob = 0.5;
    if (accept(Tok::KwProb)) {
      expect(Tok::LParen, "after 'prob'");
      const Token p = advance();
      if (p.kind == Tok::FloatLit)
        prob = p.float_value;
      else if (p.kind == Tok::IntLit)
        prob = static_cast<double>(p.int_value);
      else
        fail("expected a probability literal", p.line);
      if (prob < 0.0 || prob > 1.0)
        fail("branch probability must be within [0, 1]", p.line);
      expect(Tok::RParen, "after the probability");
    }
    StmtPtr then_branch = parse_block();
    StmtPtr else_branch;
    if (accept(Tok::KwElse)) else_branch = parse_block();
    return dsl::if_then(std::move(cond), std::move(then_branch),
                        std::move(else_branch), prob);
  }

  // ---- conditions -------------------------------------------------------------
  CondPtr parse_cond() {
    CondPtr lhs = parse_conj();
    while (accept(Tok::OrOr)) lhs = dsl::cor(lhs, parse_conj());
    return lhs;
  }
  CondPtr parse_conj() {
    CondPtr lhs = parse_catom();
    while (accept(Tok::AndAnd)) lhs = dsl::cand(lhs, parse_catom());
    return lhs;
  }
  CondPtr parse_catom() {
    if (accept(Tok::Not)) return dsl::cnot(parse_catom());
    // Parenthesized condition vs parenthesized integer expression: both
    // start with '('. Try the condition first; on failure re-parse as a
    // comparison whose left side is parenthesized.
    if (at(Tok::LParen)) {
      const std::size_t mark = pos_;
      ++pos_;
      try {
        CondPtr inner = parse_cond();
        expect(Tok::RParen, "after the condition");
        return inner;
      } catch (const ParseError&) {
        pos_ = mark;  // fall through: comparison with '(' iexpr ')' lhs
      }
    }
    IntExprPtr a = parse_iexpr();
    CmpKind cmp;
    if (accept(Tok::EqEq))
      cmp = CmpKind::EQ;
    else if (accept(Tok::NotEq))
      cmp = CmpKind::NE;
    else if (accept(Tok::Lt))
      cmp = CmpKind::LT;
    else if (accept(Tok::Le))
      cmp = CmpKind::LE;
    else if (accept(Tok::Gt))
      cmp = CmpKind::GT;
    else if (accept(Tok::Ge))
      cmp = CmpKind::GE;
    else
      fail("expected a comparison operator");
    IntExprPtr b = parse_iexpr();
    return dsl::ccmp(cmp, std::move(a), std::move(b));
  }

  // ---- float expressions --------------------------------------------------------
  FloatExprPtr parse_fexpr() {
    FloatExprPtr lhs = parse_fterm();
    for (;;) {
      if (accept(Tok::Plus))
        lhs = dsl::fadd(lhs, parse_fterm());
      else if (accept(Tok::Minus))
        lhs = dsl::fsub(lhs, parse_fterm());
      else
        return lhs;
    }
  }
  FloatExprPtr parse_fterm() {
    FloatExprPtr lhs = parse_ffactor();
    for (;;) {
      if (accept(Tok::Star))
        lhs = dsl::fmul(lhs, parse_ffactor());
      else if (accept(Tok::Slash))
        lhs = dsl::fdiv(lhs, parse_ffactor());
      else
        return lhs;
    }
  }
  FloatExprPtr parse_ffactor() {
    if (accept(Tok::Minus))
      return dsl::fun(FloatUnOp::Neg, parse_ffactor());
    if (at(Tok::FloatLit)) return dsl::fconst(advance().float_value);
    if (at(Tok::IntLit))
      return dsl::fconst(static_cast<double>(advance().int_value));
    if (accept(Tok::LParen)) {
      FloatExprPtr e = parse_fexpr();
      expect(Tok::RParen, "after the expression");
      return e;
    }
    const Token name_tok = expect(Tok::Ident, "in a float expression");
    const std::string& name = name_tok.text;

    // Intrinsics.
    const auto fn = float_funcs().find(name);
    if (fn != float_funcs().end()) {
      expect(Tok::LParen, "after the intrinsic name");
      FloatExprPtr arg = parse_fexpr();
      expect(Tok::RParen, "after the intrinsic argument");
      return dsl::fun(fn->second, std::move(arg));
    }
    if (name == "fmin" || name == "fmax") {
      expect(Tok::LParen, "after the intrinsic name");
      FloatExprPtr a = parse_fexpr();
      expect(Tok::Comma, "between the intrinsic arguments");
      FloatExprPtr b = parse_fexpr();
      expect(Tok::RParen, "after the intrinsic arguments");
      return dsl::fbin(name == "fmin" ? FloatBinOp::Min : FloatBinOp::Max,
                       std::move(a), std::move(b));
    }
    if (name == "tofloat") {
      // Compile-time int -> float constant (e.g. grid-spacing factors
      // that depend on the workload parameter). The argument must fold.
      const std::size_t line = cur().line;
      expect(Tok::LParen, "after 'tofloat'");
      IntExprPtr arg = parse_iexpr();
      expect(Tok::RParen, "after the tofloat argument");
      const auto value = fold(arg);
      if (!value)
        fail("tofloat requires a compile-time constant argument", line);
      return dsl::fconst(static_cast<double>(*value));
    }

    const auto kind = lookup(name);
    if (!kind) fail("unknown name '" + name + "'", name_tok.line);
    if (*kind == NameKind::Array) {
      expect(Tok::LBracket, "(arrays must be indexed)");
      IntExprPtr index = parse_iexpr();
      expect(Tok::RBracket, "after the index");
      return dsl::fload(name, std::move(index));
    }
    if (*kind == NameKind::IntVar)
      fail("'" + name +
               "' is an integer; implicit int->float conversion is not "
               "supported",
           name_tok.line);
    return dsl::fref(name);
  }

  // ---- integer expressions ---------------------------------------------------------
  IntExprPtr parse_iexpr() {
    IntExprPtr lhs = parse_iterm();
    for (;;) {
      if (accept(Tok::Plus))
        lhs = dsl::iadd(lhs, parse_iterm());
      else if (accept(Tok::Minus))
        lhs = dsl::isub(lhs, parse_iterm());
      else
        return lhs;
    }
  }
  IntExprPtr parse_iterm() {
    IntExprPtr lhs = parse_iatom();
    for (;;) {
      const bool div = at(Tok::Slash);
      const bool mod = at(Tok::Percent);
      if (accept(Tok::Star)) {
        lhs = dsl::imul(lhs, parse_iatom());
      } else if (div || mod) {
        const std::size_t line = cur().line;
        advance();
        IntExprPtr rhs = parse_iatom();
        const auto value = fold(rhs);
        if (!value)
          fail("integer " + std::string(div ? "division" : "modulo") +
                   " requires a constant divisor",
               line);
        if (*value == 0) fail("division by zero", line);
        lhs = div ? dsl::idiv(lhs, *value) : dsl::imod(lhs, *value);
      } else {
        return lhs;
      }
    }
  }
  IntExprPtr parse_iatom() {
    if (accept(Tok::Minus))
      return dsl::isub(dsl::iconst(0), parse_iatom());
    if (at(Tok::IntLit)) return dsl::iconst(advance().int_value);
    if (at(Tok::FloatLit))
      fail("float literal in an integer expression");
    if (accept(Tok::LParen)) {
      IntExprPtr e = parse_iexpr();
      expect(Tok::RParen, "after the expression");
      return e;
    }
    const Token name_tok = expect(Tok::Ident, "in an integer expression");
    const std::string& name = name_tok.text;
    if (name == "min" || name == "max") {
      expect(Tok::LParen, "after the intrinsic name");
      IntExprPtr a = parse_iexpr();
      expect(Tok::Comma, "between the intrinsic arguments");
      IntExprPtr b = parse_iexpr();
      expect(Tok::RParen, "after the intrinsic arguments");
      return dsl::ibin(name == "min" ? IntOp::Min : IntOp::Max,
                       std::move(a), std::move(b));
    }
    if (name == param_name_) return dsl::iconst(param_value_);
    const auto kind = lookup(name);
    if (!kind) fail("unknown name '" + name + "'", name_tok.line);
    if (*kind == NameKind::Array)
      fail("array '" + name + "' used as an integer value",
           name_tok.line);
    if (*kind == NameKind::FloatScalar)
      fail("'" + name +
               "' is a float; implicit float->int conversion is not "
               "supported",
           name_tok.line);
    return dsl::ivar(name);
  }

  /// Parse an integer expression that must fold to a constant >= 0
  /// (extent, domain, loop bound): only literals and the parameter.
  std::int64_t const_iexpr(const std::string& what) {
    const std::size_t line = cur().line;
    IntExprPtr e = parse_iexpr();
    const auto value = fold(e);
    if (!value)
      fail(what + " must be a compile-time constant (literals and the "
                  "workload parameter only)",
           line);
    if (*value < 0) fail(what + " must be non-negative", line);
    return *value;
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  dsl::WorkloadDesc wl_;
  std::string param_name_;
  std::int64_t param_value_ = 0;
  std::unordered_map<std::string, NameKind> names_;
};

}  // namespace

dsl::WorkloadDesc parse_workload(std::string_view source) {
  return Parser(source).run(std::nullopt);
}

dsl::WorkloadDesc parse_workload(std::string_view source,
                                 std::int64_t problem_size) {
  return Parser(source).run(problem_size);
}

}  // namespace gpustatic::frontend
