#pragma once

// The four Table IV kernels in the frontend source language — the same
// computations as kernels::make_*, written the way a user would write
// them. Tests verify simulated outputs match the hand-built DSL exactly;
// examples and the CLI use them as ready-made inputs.

#include <string_view>

namespace gpustatic::frontend::sources {

inline constexpr std::string_view kAtax = R"(
// y = A^T (A x), two passes over A (Table IV: atax).
workload atax(N = 64);

array A[N*N] init ramp;
array x[N]   init ramp;
array tmp[N] init zero;
array y[N]   init zero;

stage atax_fwd(t : N) {            // tmp = A x, thread per row
  float acc = 0.0;
  unroll for (j = 0; j < N; j++) {
    acc += A[t*N + j] * x[j];
  }
  tmp[t] = acc;
}

stage atax_bwd(t : N) {            // y = A^T tmp, thread per column
  float acc = 0.0;
  unroll for (i = 0; i < N; i++) {
    acc += A[i*N + t] * tmp[i];
  }
  y[t] = acc;
}
)";

inline constexpr std::string_view kBicg = R"(
// q = A p and s = A^T r in one fused pass (Table IV: BiCG).
workload bicg(N = 64);

array A[N*N] init ramp;
array p[N]   init ramp;
array r[N]   init ramp;
array q[N]   init zero;
array s[N]   init zero;

stage bicg_fused(t : N) {
  float acc = 0.0;
  unroll for (j = 0; j < N; j++) {
    float aij = A[t*N + j];
    acc += aij * p[j];
    atomic s[j] += aij * r[t];     // transposed product, scattered
  }
  q[t] = acc;
}
)";

inline constexpr std::string_view kEx14fj = R"(
// Solid-fuel-ignition (Bratu) Jacobi residual on an N^3 grid
// (Table IV: ex14FJ). Interior: 7-point flux with nonlinear
// conductivity kappa(v) = 1 + v*v and a lambda*exp(u) source;
// boundary rows pass through (Dirichlet).
workload ex14fj(N = 16);

array u[N*N*N] init ramp;
array F[N*N*N] init zero;

stage ex14fj_residual(t : N*N*N) {
  int k = t / (N*N);
  int rem = t % (N*N);
  int j = rem / N;
  int i = rem % N;
  if (i == 0 || i == N-1 || j == 0 || j == N-1 ||
      k == 0 || k == N-1) prob(0.3) {
    F[t] = u[t];
  } else {
    float uc = u[t];
    float uw = u[t - 1];
    float ue = u[t + 1];
    float us = u[t - N];
    float un = u[t + N];
    float ud = u[t - N*N];
    float uu = u[t + N*N];
    float flux = 0.5*((1.0 + uc*uc) + (1.0 + uw*uw)) * (uc - uw);
    flux += 0.5*((1.0 + uc*uc) + (1.0 + ue*ue)) * (uc - ue);
    flux += 0.5*((1.0 + uc*uc) + (1.0 + us*us)) * (uc - us);
    flux += 0.5*((1.0 + uc*uc) + (1.0 + un*un)) * (uc - un);
    flux += 0.5*((1.0 + uc*uc) + (1.0 + ud*ud)) * (uc - ud);
    flux += 0.5*((1.0 + uc*uc) + (1.0 + uu*uu)) * (uc - uu);
    float res = flux * tofloat((N+1)*(N+1)) - 6.0 * exp(uc);
    F[t] = res;
  }
}
)";

inline constexpr std::string_view kMatVec2d = R"(
// y = A x with a 2-D block-cyclic decomposition (Table IV: matVec2D).
// Work item t covers row i and column chunk c; the cyclic column wrap
// (index % N) defeats strength reduction, as in Orio's 2-D generator.
workload matvec2d(N = 64);

array A[N*N] init ramp;
array x[N]   init ramp;
array y[N]   init zero;

stage matvec2d_partial(t : N * max(1, N / min(64, N))) {
  int i = t / max(1, N / min(64, N));
  int c = t % max(1, N / min(64, N));
  float acc = 0.0;
  unroll for (k = 0; k < min(64, N); k++) {
    acc += A[i*N + (c*min(64, N) + k) % N] * x[(c*min(64, N) + k) % N];
  }
  atomic y[i] += acc;
}
)";

/// Source by registry name ("atax", "bicg", "ex14fj", "matvec2d");
/// empty view for unknown names.
[[nodiscard]] constexpr std::string_view by_name(std::string_view name) {
  if (name == "atax") return kAtax;
  if (name == "bicg") return kBicg;
  if (name == "ex14fj") return kEx14fj;
  if (name == "matvec2d") return kMatVec2d;
  return {};
}

}  // namespace gpustatic::frontend::sources
