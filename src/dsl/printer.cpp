#include "dsl/printer.hpp"

#include "common/strings.hpp"

namespace gpustatic::dsl {

namespace {

std::string int_op_str(IntOp op) {
  switch (op) {
    case IntOp::Add: return "+";
    case IntOp::Sub: return "-";
    case IntOp::Mul: return "*";
    case IntOp::Div: return "/";
    case IntOp::Mod: return "%";
    case IntOp::Min: return "min";
    case IntOp::Max: return "max";
  }
  return "?";
}

std::string fbin_str(FloatBinOp op) {
  switch (op) {
    case FloatBinOp::Add: return "+";
    case FloatBinOp::Sub: return "-";
    case FloatBinOp::Mul: return "*";
    case FloatBinOp::Div: return "/";
    case FloatBinOp::Min: return "min";
    case FloatBinOp::Max: return "max";
  }
  return "?";
}

std::string fun_str(FloatUnOp op) {
  switch (op) {
    case FloatUnOp::Neg: return "-";
    case FloatUnOp::Exp: return "exp";
    case FloatUnOp::Log: return "log";
    case FloatUnOp::Sqrt: return "sqrt";
    case FloatUnOp::Rsqrt: return "rsqrt";
    case FloatUnOp::Rcp: return "rcp";
    case FloatUnOp::Sin: return "sin";
    case FloatUnOp::Cos: return "cos";
    case FloatUnOp::Abs: return "fabs";
  }
  return "?";
}

std::string cmp_str(CmpKind k) {
  switch (k) {
    case CmpKind::EQ: return "==";
    case CmpKind::NE: return "!=";
    case CmpKind::LT: return "<";
    case CmpKind::LE: return "<=";
    case CmpKind::GT: return ">";
    case CmpKind::GE: return ">=";
  }
  return "?";
}

std::string pad(int indent) { return std::string(2 * indent, ' '); }

}  // namespace

std::string to_string(const IntExprPtr& e) {
  if (!e) return "<null>";
  switch (e->kind) {
    case IntExpr::Kind::Const:
      return std::to_string(e->value);
    case IntExpr::Kind::Var:
      return e->var;
    case IntExpr::Kind::Binary:
      if (e->op == IntOp::Min || e->op == IntOp::Max)
        return int_op_str(e->op) + "(" + to_string(e->lhs) + ", " +
               to_string(e->rhs) + ")";
      return "(" + to_string(e->lhs) + " " + int_op_str(e->op) + " " +
             to_string(e->rhs) + ")";
  }
  return "?";
}

std::string to_string(const FloatExprPtr& e) {
  if (!e) return "<null>";
  switch (e->kind) {
    case FloatExpr::Kind::Const:
      return str::format_trimmed(e->value, 6) + "f";
    case FloatExpr::Kind::Ref:
      return e->name;
    case FloatExpr::Kind::Load:
      return e->name + "[" + to_string(e->index) + "]";
    case FloatExpr::Kind::Binary:
      if (e->bop == FloatBinOp::Min || e->bop == FloatBinOp::Max)
        return fbin_str(e->bop) + "(" + to_string(e->lhs) + ", " +
               to_string(e->rhs) + ")";
      return "(" + to_string(e->lhs) + " " + fbin_str(e->bop) + " " +
             to_string(e->rhs) + ")";
    case FloatExpr::Kind::Unary:
      if (e->uop == FloatUnOp::Neg) return "(-" + to_string(e->lhs) + ")";
      return fun_str(e->uop) + "(" + to_string(e->lhs) + ")";
  }
  return "?";
}

std::string to_string(const CondPtr& c) {
  if (!c) return "<null>";
  switch (c->kind) {
    case Cond::Kind::Cmp:
      return "(" + to_string(c->a) + " " + cmp_str(c->cmp) + " " +
             to_string(c->b) + ")";
    case Cond::Kind::And:
      return "(" + to_string(c->lhs) + " && " + to_string(c->rhs) + ")";
    case Cond::Kind::Or:
      return "(" + to_string(c->lhs) + " || " + to_string(c->rhs) + ")";
    case Cond::Kind::Not:
      return "!" + to_string(c->lhs);
  }
  return "?";
}

std::string to_string(const StmtPtr& s, int indent) {
  if (!s) return "";
  switch (s->kind) {
    case Stmt::Kind::Seq: {
      std::string out;
      for (const auto& child : s->children) out += to_string(child, indent);
      return out;
    }
    case Stmt::Kind::LetInt:
      return pad(indent) + "int " + s->name + " = " +
             to_string(s->int_expr) + ";\n";
    case Stmt::Kind::LetFloat:
      return pad(indent) + "float " + s->name + " = " +
             to_string(s->float_expr) + ";\n";
    case Stmt::Kind::Accum:
      return pad(indent) + s->name + " = " + s->name + " " +
             fbin_str(s->accum_op) + " " + to_string(s->float_expr) + ";\n";
    case Stmt::Kind::Store:
      return pad(indent) + s->name + "[" + to_string(s->int_expr) +
             "] = " + to_string(s->float_expr) + ";\n";
    case Stmt::Kind::AtomicAdd:
      return pad(indent) + "atomicAdd(&" + s->name + "[" +
             to_string(s->int_expr) + "], " + to_string(s->float_expr) +
             ");\n";
    case Stmt::Kind::For:
      return pad(indent) + "for (int " + s->name + " = " +
             std::to_string(s->lo) + "; " + s->name + " < " +
             std::to_string(s->hi) + "; ++" + s->name + ")" +
             (s->unrollable ? "  /* unrollable */" : "") + " {\n" +
             to_string(s->body, indent + 1) + pad(indent) + "}\n";
    case Stmt::Kind::If: {
      std::string out = pad(indent) + "if " + to_string(s->cond) + " {\n" +
                        to_string(s->then_branch, indent + 1);
      if (s->else_branch)
        out += pad(indent) + "} else {\n" +
               to_string(s->else_branch, indent + 1);
      out += pad(indent) + "}\n";
      return out;
    }
  }
  return "";
}

std::string to_string(const StageDesc& stage) {
  std::string out = "stage " + stage.name + ": parallel_for " +
                    stage.work_item_var + " in [0, " +
                    std::to_string(stage.domain) + ") {\n";
  out += to_string(stage.body, 1);
  out += "}\n";
  return out;
}

std::string to_string(const WorkloadDesc& wl) {
  std::string out = "workload " + wl.name +
                    " (N=" + std::to_string(wl.problem_size) + ")\n";
  for (const auto& a : wl.arrays)
    out += "  array " + a.name + "[" + std::to_string(a.length) + "]\n";
  for (const auto& s : wl.stages) out += to_string(s);
  return out;
}

}  // namespace gpustatic::dsl
