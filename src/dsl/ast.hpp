#pragma once

// Kernel description language.
//
// This small AST is the stand-in for the annotated C loop nests that Orio
// consumes (paper Sec. II-C): each paper kernel (atax, BiCG, ex14FJ,
// matVec2D) is expressed as one or more *stages*, each a data-parallel
// domain of work items whose body is a loop nest of float arithmetic over
// arrays. The code generator (src/codegen) lowers a stage to the PTX-like
// IR applying the tuning parameters (thread count, block count, unroll
// factor, fast-math, ...), playing the role of nvcc.
//
// Integer expressions index arrays; float expressions compute values.
// All loop bounds and array extents are integer constants by construction:
// a WorkloadDesc is built for one specific problem size N, mirroring how
// each autotuning trial compiles a fully specialized variant.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gpustatic::dsl {

// ---------------------------------------------------------------- IntExpr

enum class IntOp : std::uint8_t { Add, Sub, Mul, Div, Mod, Min, Max };

struct IntExpr;
using IntExprPtr = std::shared_ptr<const IntExpr>;

struct IntExpr {
  enum class Kind : std::uint8_t { Const, Var, Binary };
  Kind kind = Kind::Const;
  std::int64_t value = 0;      ///< Const.
  std::string var;             ///< Var: work-item or loop variable name.
  IntOp op = IntOp::Add;       ///< Binary.
  IntExprPtr lhs, rhs;         ///< Binary.
};

[[nodiscard]] IntExprPtr iconst(std::int64_t v);
[[nodiscard]] IntExprPtr ivar(std::string name);
[[nodiscard]] IntExprPtr ibin(IntOp op, IntExprPtr a, IntExprPtr b);
[[nodiscard]] IntExprPtr iadd(IntExprPtr a, IntExprPtr b);
[[nodiscard]] IntExprPtr isub(IntExprPtr a, IntExprPtr b);
[[nodiscard]] IntExprPtr imul(IntExprPtr a, IntExprPtr b);
[[nodiscard]] IntExprPtr idiv(IntExprPtr a, std::int64_t divisor);
[[nodiscard]] IntExprPtr imod(IntExprPtr a, std::int64_t divisor);

/// expr with every occurrence of `var` replaced by `replacement`.
[[nodiscard]] IntExprPtr substitute(const IntExprPtr& expr,
                                    const std::string& var,
                                    const IntExprPtr& replacement);

// -------------------------------------------------------------- FloatExpr

enum class FloatBinOp : std::uint8_t { Add, Sub, Mul, Div, Min, Max };
enum class FloatUnOp : std::uint8_t { Neg, Exp, Log, Sqrt, Rsqrt, Rcp, Sin,
                                      Cos, Abs };

struct FloatExpr;
using FloatExprPtr = std::shared_ptr<const FloatExpr>;

struct FloatExpr {
  enum class Kind : std::uint8_t { Const, Ref, Load, Binary, Unary };
  Kind kind = Kind::Const;
  double value = 0.0;              ///< Const.
  std::string name;                ///< Ref: let-bound scalar; Load: array.
  IntExprPtr index;                ///< Load: element index.
  FloatBinOp bop = FloatBinOp::Add;
  FloatUnOp uop = FloatUnOp::Neg;
  FloatExprPtr lhs, rhs;           ///< Binary (rhs null for Unary).
};

[[nodiscard]] FloatExprPtr fconst(double v);
[[nodiscard]] FloatExprPtr fref(std::string name);
[[nodiscard]] FloatExprPtr fload(std::string array, IntExprPtr index);
[[nodiscard]] FloatExprPtr fbin(FloatBinOp op, FloatExprPtr a, FloatExprPtr b);
[[nodiscard]] FloatExprPtr fun(FloatUnOp op, FloatExprPtr a);
[[nodiscard]] FloatExprPtr fadd(FloatExprPtr a, FloatExprPtr b);
[[nodiscard]] FloatExprPtr fsub(FloatExprPtr a, FloatExprPtr b);
[[nodiscard]] FloatExprPtr fmul(FloatExprPtr a, FloatExprPtr b);
[[nodiscard]] FloatExprPtr fdiv(FloatExprPtr a, FloatExprPtr b);

// ------------------------------------------------------------------ Cond

enum class CmpKind : std::uint8_t { EQ, NE, LT, LE, GT, GE };

struct Cond;
using CondPtr = std::shared_ptr<const Cond>;

struct Cond {
  enum class Kind : std::uint8_t { Cmp, And, Or, Not };
  Kind kind = Kind::Cmp;
  CmpKind cmp = CmpKind::EQ;
  IntExprPtr a, b;   ///< Cmp.
  CondPtr lhs, rhs;  ///< And/Or (rhs null for Not).
};

[[nodiscard]] CondPtr ccmp(CmpKind k, IntExprPtr a, IntExprPtr b);
[[nodiscard]] CondPtr cand(CondPtr a, CondPtr b);
[[nodiscard]] CondPtr cor(CondPtr a, CondPtr b);
[[nodiscard]] CondPtr cnot(CondPtr a);

// ------------------------------------------------------------------ Stmt

struct Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;

struct Stmt {
  enum class Kind : std::uint8_t {
    Seq,       ///< children
    LetInt,    ///< name = int_expr (immutable binding)
    LetFloat,  ///< name = float_expr (introduces a mutable accumulator)
    Accum,     ///< name = name `bop` float_expr
    Store,     ///< array[index] = float_expr
    AtomicAdd, ///< array[index] += float_expr (atomic)
    For,       ///< for var in [lo, hi) step 1: body  (serial loop)
    If,        ///< if cond then_branch [else else_branch]
  };
  Kind kind = Kind::Seq;

  std::vector<StmtPtr> children;        ///< Seq.
  std::string name;                     ///< LetInt/LetFloat/Accum: binding;
                                        ///< Store/AtomicAdd: array;
                                        ///< For: loop variable.
  IntExprPtr int_expr;                  ///< LetInt value; Store index.
  FloatExprPtr float_expr;              ///< LetFloat/Accum/Store value.
  FloatBinOp accum_op = FloatBinOp::Add;
  std::int64_t lo = 0, hi = 0;          ///< For bounds (constants).
  StmtPtr body;                         ///< For body.
  bool unrollable = false;              ///< For: honor the UIF parameter.
  CondPtr cond;                         ///< If.
  StmtPtr then_branch, else_branch;     ///< If.
  /// Expected fraction of work items taking the then-branch; used only for
  /// static block-frequency estimates (the simulator evaluates the real
  /// condition). Kernel authors set this from geometry when known.
  double then_prob = 0.5;
};

[[nodiscard]] StmtPtr seq(std::vector<StmtPtr> stmts);
[[nodiscard]] StmtPtr let_int(std::string name, IntExprPtr value);
[[nodiscard]] StmtPtr let_float(std::string name, FloatExprPtr value);
[[nodiscard]] StmtPtr accum(std::string name, FloatBinOp op,
                            FloatExprPtr value);
[[nodiscard]] StmtPtr store(std::string array, IntExprPtr index,
                            FloatExprPtr value);
[[nodiscard]] StmtPtr atomic_add(std::string array, IntExprPtr index,
                                 FloatExprPtr value);
[[nodiscard]] StmtPtr serial_for(std::string var, std::int64_t lo,
                                 std::int64_t hi, StmtPtr body,
                                 bool unrollable = true);
[[nodiscard]] StmtPtr if_then(CondPtr cond, StmtPtr then_branch,
                              StmtPtr else_branch = nullptr,
                              double then_prob = 0.5);

// ------------------------------------------------------------ Workloads

/// How the simulator initializes an array before a run.
enum class ArrayInit : std::uint8_t {
  Zero,      ///< all zeros
  Ramp,      ///< element i = (i % 97) / 97.0
  Ones,      ///< all ones
};

/// A named float32 device buffer.
struct ArrayDecl {
  std::string name;
  std::int64_t length = 0;  ///< elements
  ArrayInit init = ArrayInit::Ramp;
};

/// One kernel launch: a 1-D data-parallel domain of `domain` work items.
/// The body sees the work-item index bound to variable `work_item_var`.
struct StageDesc {
  std::string name;
  std::int64_t domain = 0;
  std::string work_item_var = "t";
  StmtPtr body;
};

/// A full benchmark workload: buffers plus an ordered list of stages
/// (stages synchronize through global memory, like back-to-back CUDA
/// kernel launches).
struct WorkloadDesc {
  std::string name;
  std::int64_t problem_size = 0;  ///< the paper's N
  std::vector<ArrayDecl> arrays;
  std::vector<StageDesc> stages;

  [[nodiscard]] const ArrayDecl& array(const std::string& array_name) const;
  [[nodiscard]] bool has_array(const std::string& array_name) const;
};

}  // namespace gpustatic::dsl
