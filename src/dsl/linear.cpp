#include "dsl/linear.hpp"

#include "common/error.hpp"

namespace gpustatic::dsl {

namespace {

std::optional<LinearForm> combine(IntOp op, const LinearForm& a,
                                  const LinearForm& b) {
  LinearForm out;
  switch (op) {
    case IntOp::Add:
    case IntOp::Sub: {
      const std::int64_t sign = op == IntOp::Add ? 1 : -1;
      out = a;
      out.constant += sign * b.constant;
      for (const auto& [v, c] : b.coeffs) {
        out.coeffs[v] += sign * c;
        if (out.coeffs[v] == 0) out.coeffs.erase(v);
      }
      return out;
    }
    case IntOp::Mul: {
      const LinearForm* scalar = a.is_constant() ? &a : nullptr;
      const LinearForm* form = scalar ? &b : &a;
      if (!scalar && b.is_constant()) {
        scalar = &b;
        form = &a;
      }
      if (!scalar) return std::nullopt;  // var * var: not affine
      const std::int64_t k = scalar->constant;
      out.constant = form->constant * k;
      if (k != 0)
        for (const auto& [v, c] : form->coeffs) out.coeffs[v] = c * k;
      return out;
    }
    case IntOp::Div:
    case IntOp::Mod: {
      if (!a.is_constant() || !b.is_constant()) return std::nullopt;
      if (b.constant == 0) return std::nullopt;
      out.constant = op == IntOp::Div ? a.constant / b.constant
                                      : a.constant % b.constant;
      return out;
    }
    case IntOp::Min:
    case IntOp::Max: {
      if (!a.is_constant() || !b.is_constant()) return std::nullopt;
      out.constant = op == IntOp::Min ? std::min(a.constant, b.constant)
                                      : std::max(a.constant, b.constant);
      return out;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<LinearForm> linearize(const IntExprPtr& expr) {
  if (!expr) return std::nullopt;
  switch (expr->kind) {
    case IntExpr::Kind::Const: {
      LinearForm f;
      f.constant = expr->value;
      return f;
    }
    case IntExpr::Kind::Var: {
      LinearForm f;
      f.coeffs[expr->var] = 1;
      return f;
    }
    case IntExpr::Kind::Binary: {
      const auto a = linearize(expr->lhs);
      const auto b = linearize(expr->rhs);
      if (!a || !b) return std::nullopt;
      return combine(expr->op, *a, *b);
    }
  }
  return std::nullopt;
}

std::int64_t evaluate(const IntExprPtr& expr,
                      const std::map<std::string, std::int64_t>& env) {
  if (!expr) throw Error("evaluate: null expression");
  switch (expr->kind) {
    case IntExpr::Kind::Const:
      return expr->value;
    case IntExpr::Kind::Var: {
      const auto it = env.find(expr->var);
      if (it == env.end())
        throw LookupError("evaluate: unbound variable '" + expr->var + "'");
      return it->second;
    }
    case IntExpr::Kind::Binary: {
      const std::int64_t a = evaluate(expr->lhs, env);
      const std::int64_t b = evaluate(expr->rhs, env);
      switch (expr->op) {
        case IntOp::Add: return a + b;
        case IntOp::Sub: return a - b;
        case IntOp::Mul: return a * b;
        case IntOp::Div:
          if (b == 0) throw Error("evaluate: division by zero");
          return a / b;
        case IntOp::Mod:
          if (b == 0) throw Error("evaluate: modulo by zero");
          return a % b;
        case IntOp::Min: return std::min(a, b);
        case IntOp::Max: return std::max(a, b);
      }
      break;
    }
  }
  throw Error("evaluate: malformed expression");
}

bool evaluate(const CondPtr& cond,
              const std::map<std::string, std::int64_t>& env) {
  if (!cond) throw Error("evaluate: null condition");
  switch (cond->kind) {
    case Cond::Kind::Cmp: {
      const std::int64_t a = evaluate(cond->a, env);
      const std::int64_t b = evaluate(cond->b, env);
      switch (cond->cmp) {
        case CmpKind::EQ: return a == b;
        case CmpKind::NE: return a != b;
        case CmpKind::LT: return a < b;
        case CmpKind::LE: return a <= b;
        case CmpKind::GT: return a > b;
        case CmpKind::GE: return a >= b;
      }
      break;
    }
    case Cond::Kind::And:
      return evaluate(cond->lhs, env) && evaluate(cond->rhs, env);
    case Cond::Kind::Or:
      return evaluate(cond->lhs, env) || evaluate(cond->rhs, env);
    case Cond::Kind::Not:
      return !evaluate(cond->lhs, env);
  }
  throw Error("evaluate: malformed condition");
}

}  // namespace gpustatic::dsl
