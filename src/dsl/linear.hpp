#pragma once

// Affine (linear-form) analysis over IntExpr.
//
// The code generator uses this twice:
//  1. strength reduction: array indexes that are affine in the innermost
//     serial-loop variable become pointer increments instead of
//     re-computed addresses;
//  2. coalescing hints: the byte distance between the addresses of
//     consecutive lanes is 4 * (coefficient of the work-item variable),
//     which the memory model turns into a transactions-per-warp estimate.

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "dsl/ast.hpp"

namespace gpustatic::dsl {

/// expr == sum(coeffs[v] * v) + constant, over integer variables.
struct LinearForm {
  std::map<std::string, std::int64_t> coeffs;
  std::int64_t constant = 0;

  [[nodiscard]] std::int64_t coeff(const std::string& var) const {
    const auto it = coeffs.find(var);
    return it == coeffs.end() ? 0 : it->second;
  }
  [[nodiscard]] bool is_constant() const { return coeffs.empty(); }
};

/// Decompose expr into a linear form. Returns nullopt when the expression
/// is not affine (products of variables, division/modulo of non-constant
/// operands, min/max). Division and modulo *of a constant form by a
/// constant* still fold.
[[nodiscard]] std::optional<LinearForm> linearize(const IntExprPtr& expr);

/// Evaluate an integer expression under a variable environment. Throws
/// LookupError for unbound variables and Error for division by zero.
[[nodiscard]] std::int64_t evaluate(
    const IntExprPtr& expr, const std::map<std::string, std::int64_t>& env);

/// Evaluate a condition under an environment.
[[nodiscard]] bool evaluate(const CondPtr& cond,
                            const std::map<std::string, std::int64_t>& env);

}  // namespace gpustatic::dsl
