#pragma once

#include <string>

#include "dsl/ast.hpp"

namespace gpustatic::dsl {

/// Pretty-print expressions/statements in a C-like syntax. Used by the
/// examples, documentation, and tests; not parsed back.
[[nodiscard]] std::string to_string(const IntExprPtr& e);
[[nodiscard]] std::string to_string(const FloatExprPtr& e);
[[nodiscard]] std::string to_string(const CondPtr& c);
[[nodiscard]] std::string to_string(const StmtPtr& s, int indent = 0);
[[nodiscard]] std::string to_string(const StageDesc& stage);
[[nodiscard]] std::string to_string(const WorkloadDesc& wl);

}  // namespace gpustatic::dsl
