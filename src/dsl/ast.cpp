#include "dsl/ast.hpp"

#include "common/error.hpp"

namespace gpustatic::dsl {

IntExprPtr iconst(std::int64_t v) {
  auto e = std::make_shared<IntExpr>();
  e->kind = IntExpr::Kind::Const;
  e->value = v;
  return e;
}

IntExprPtr ivar(std::string name) {
  auto e = std::make_shared<IntExpr>();
  e->kind = IntExpr::Kind::Var;
  e->var = std::move(name);
  return e;
}

IntExprPtr ibin(IntOp op, IntExprPtr a, IntExprPtr b) {
  auto e = std::make_shared<IntExpr>();
  e->kind = IntExpr::Kind::Binary;
  e->op = op;
  e->lhs = std::move(a);
  e->rhs = std::move(b);
  return e;
}

IntExprPtr iadd(IntExprPtr a, IntExprPtr b) {
  return ibin(IntOp::Add, std::move(a), std::move(b));
}
IntExprPtr isub(IntExprPtr a, IntExprPtr b) {
  return ibin(IntOp::Sub, std::move(a), std::move(b));
}
IntExprPtr imul(IntExprPtr a, IntExprPtr b) {
  return ibin(IntOp::Mul, std::move(a), std::move(b));
}
IntExprPtr idiv(IntExprPtr a, std::int64_t divisor) {
  return ibin(IntOp::Div, std::move(a), iconst(divisor));
}
IntExprPtr imod(IntExprPtr a, std::int64_t divisor) {
  return ibin(IntOp::Mod, std::move(a), iconst(divisor));
}

IntExprPtr substitute(const IntExprPtr& expr, const std::string& var,
                      const IntExprPtr& replacement) {
  if (!expr) return expr;
  switch (expr->kind) {
    case IntExpr::Kind::Const:
      return expr;
    case IntExpr::Kind::Var:
      return expr->var == var ? replacement : expr;
    case IntExpr::Kind::Binary: {
      const IntExprPtr l = substitute(expr->lhs, var, replacement);
      const IntExprPtr r = substitute(expr->rhs, var, replacement);
      if (l == expr->lhs && r == expr->rhs) return expr;
      return ibin(expr->op, l, r);
    }
  }
  return expr;
}

FloatExprPtr fconst(double v) {
  auto e = std::make_shared<FloatExpr>();
  e->kind = FloatExpr::Kind::Const;
  e->value = v;
  return e;
}

FloatExprPtr fref(std::string name) {
  auto e = std::make_shared<FloatExpr>();
  e->kind = FloatExpr::Kind::Ref;
  e->name = std::move(name);
  return e;
}

FloatExprPtr fload(std::string array, IntExprPtr index) {
  auto e = std::make_shared<FloatExpr>();
  e->kind = FloatExpr::Kind::Load;
  e->name = std::move(array);
  e->index = std::move(index);
  return e;
}

FloatExprPtr fbin(FloatBinOp op, FloatExprPtr a, FloatExprPtr b) {
  auto e = std::make_shared<FloatExpr>();
  e->kind = FloatExpr::Kind::Binary;
  e->bop = op;
  e->lhs = std::move(a);
  e->rhs = std::move(b);
  return e;
}

FloatExprPtr fun(FloatUnOp op, FloatExprPtr a) {
  auto e = std::make_shared<FloatExpr>();
  e->kind = FloatExpr::Kind::Unary;
  e->uop = op;
  e->lhs = std::move(a);
  return e;
}

FloatExprPtr fadd(FloatExprPtr a, FloatExprPtr b) {
  return fbin(FloatBinOp::Add, std::move(a), std::move(b));
}
FloatExprPtr fsub(FloatExprPtr a, FloatExprPtr b) {
  return fbin(FloatBinOp::Sub, std::move(a), std::move(b));
}
FloatExprPtr fmul(FloatExprPtr a, FloatExprPtr b) {
  return fbin(FloatBinOp::Mul, std::move(a), std::move(b));
}
FloatExprPtr fdiv(FloatExprPtr a, FloatExprPtr b) {
  return fbin(FloatBinOp::Div, std::move(a), std::move(b));
}

CondPtr ccmp(CmpKind k, IntExprPtr a, IntExprPtr b) {
  auto c = std::make_shared<Cond>();
  c->kind = Cond::Kind::Cmp;
  c->cmp = k;
  c->a = std::move(a);
  c->b = std::move(b);
  return c;
}

CondPtr cand(CondPtr a, CondPtr b) {
  auto c = std::make_shared<Cond>();
  c->kind = Cond::Kind::And;
  c->lhs = std::move(a);
  c->rhs = std::move(b);
  return c;
}

CondPtr cor(CondPtr a, CondPtr b) {
  auto c = std::make_shared<Cond>();
  c->kind = Cond::Kind::Or;
  c->lhs = std::move(a);
  c->rhs = std::move(b);
  return c;
}

CondPtr cnot(CondPtr a) {
  auto c = std::make_shared<Cond>();
  c->kind = Cond::Kind::Not;
  c->lhs = std::move(a);
  return c;
}

StmtPtr seq(std::vector<StmtPtr> stmts) {
  auto s = std::make_shared<Stmt>();
  s->kind = Stmt::Kind::Seq;
  s->children = std::move(stmts);
  return s;
}

StmtPtr let_int(std::string name, IntExprPtr value) {
  auto s = std::make_shared<Stmt>();
  s->kind = Stmt::Kind::LetInt;
  s->name = std::move(name);
  s->int_expr = std::move(value);
  return s;
}

StmtPtr let_float(std::string name, FloatExprPtr value) {
  auto s = std::make_shared<Stmt>();
  s->kind = Stmt::Kind::LetFloat;
  s->name = std::move(name);
  s->float_expr = std::move(value);
  return s;
}

StmtPtr accum(std::string name, FloatBinOp op, FloatExprPtr value) {
  auto s = std::make_shared<Stmt>();
  s->kind = Stmt::Kind::Accum;
  s->name = std::move(name);
  s->accum_op = op;
  s->float_expr = std::move(value);
  return s;
}

StmtPtr store(std::string array, IntExprPtr index, FloatExprPtr value) {
  auto s = std::make_shared<Stmt>();
  s->kind = Stmt::Kind::Store;
  s->name = std::move(array);
  s->int_expr = std::move(index);
  s->float_expr = std::move(value);
  return s;
}

StmtPtr atomic_add(std::string array, IntExprPtr index, FloatExprPtr value) {
  auto s = std::make_shared<Stmt>();
  s->kind = Stmt::Kind::AtomicAdd;
  s->name = std::move(array);
  s->int_expr = std::move(index);
  s->float_expr = std::move(value);
  return s;
}

StmtPtr serial_for(std::string var, std::int64_t lo, std::int64_t hi,
                   StmtPtr body, bool unrollable) {
  auto s = std::make_shared<Stmt>();
  s->kind = Stmt::Kind::For;
  s->name = std::move(var);
  s->lo = lo;
  s->hi = hi;
  s->body = std::move(body);
  s->unrollable = unrollable;
  return s;
}

StmtPtr if_then(CondPtr cond, StmtPtr then_branch, StmtPtr else_branch,
                double then_prob) {
  auto s = std::make_shared<Stmt>();
  s->kind = Stmt::Kind::If;
  s->cond = std::move(cond);
  s->then_branch = std::move(then_branch);
  s->else_branch = std::move(else_branch);
  s->then_prob = then_prob;
  return s;
}

const ArrayDecl& WorkloadDesc::array(const std::string& array_name) const {
  for (const ArrayDecl& a : arrays)
    if (a.name == array_name) return a;
  throw LookupError("workload '" + name + "' has no array '" + array_name +
                    "'");
}

bool WorkloadDesc::has_array(const std::string& array_name) const {
  for (const ArrayDecl& a : arrays)
    if (a.name == array_name) return true;
  return false;
}

}  // namespace gpustatic::dsl
