#pragma once

// gpustatic serve: the long-running tuning daemon. One process owns a
// core::TuningService (process-wide CompilationCache + TuningStore +
// single-flight request dedup) and answers line-delimited JSON requests
// (serve/protocol.hpp) over either transport:
//
//   * TCP (run_tcp): a loopback listener, one handler thread per
//     connection; each request's simulator batches flow through the
//     shared common::ThreadPool exactly as in CLI tuning. SIGTERM-style
//     shutdown goes through stop() — async-signal-safe — which drains
//     connections, persists the store, and returns cleanly.
//   * pipe (run_pipe): stdin/stdout, one response line per request
//     line. The testable transport, and handy for scripting.
//
// Admission policy for cache-miss storms: at most `max_inflight` tune
// requests run concurrently; up to `max_queue` more wait their turn;
// beyond that the server answers immediately with status "shed"
// (retry:true) instead of building an unbounded backlog. Per-request
// budget caps bound the damage any single request can do.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.hpp"
#include "core/service.hpp"
#include "serve/protocol.hpp"

namespace gpustatic::serve {

struct ServeOptions {
  std::string store_path;    ///< persistent store; empty = in-memory
  /// Learned cost-model file: loaded (leniently) at startup and used as
  /// the hybrid stage-1 ranker; the `retrain` op saves back here.
  /// Empty = analytic ranking only.
  std::string model_path;
  /// Default analytic mode (classic|wave) applied to tune requests that
  /// carry no explicit "analytic" field; validated at Server
  /// construction. Mirrors the CLI's --analytic-mode.
  std::string analytic_mode = "classic";
  int port = 0;              ///< TCP port; 0 = ephemeral (printed on start)
  std::size_t max_inflight = 8;  ///< concurrent tune searches admitted
  std::size_t max_queue = 32;    ///< waiters beyond that; then shed
  std::size_t max_budget = 64;   ///< cap on a request's hybrid budget
  std::size_t max_search_budget = 5000;  ///< cap on a request's search budget
  std::size_t save_every = 8;  ///< persist store every N store writes
  /// Longest request line a TCP client may send; a connection whose
  /// pending (newline-less) bytes exceed this gets one status:"error"
  /// response and is dropped, so a client streaming without newlines
  /// cannot grow the server's buffer without bound.
  std::size_t max_line_bytes = 64 * 1024;
};

/// Counting-semaphore admission with a bounded wait queue: acquire()
/// admits immediately below `max_inflight`, waits while the queue has
/// room, and returns false (shed) when the queue is full or stop() was
/// called. Its own class so the policy is unit-testable without a
/// server.
class Admission {
 public:
  /// Why an acquire did not simply admit: Shed is the policy saying
  /// "retry later" (queue full or stopping); TimedOut is the caller's
  /// own deadline expiring while queued — reported separately so the
  /// response can say timed_out instead of inviting a retry.
  enum class Admit { Admitted, Shed, TimedOut };

  Admission(std::size_t max_inflight, std::size_t max_queue)
      : max_inflight_(max_inflight), max_queue_(max_queue) {}

  /// True = admitted (pair with release()); false = shed this request.
  [[nodiscard]] bool acquire();
  /// Deadline-bounded acquire: waits in the queue at most until
  /// `deadline` (an unset deadline waits indefinitely, like acquire()).
  /// Only Admit::Admitted pairs with release().
  [[nodiscard]] Admit acquire(const common::Deadline& deadline);
  void release();
  /// Wakes every waiter to shed; subsequent acquires shed immediately.
  void stop();

  [[nodiscard]] std::size_t active() const;
  [[nodiscard]] std::size_t waiting() const;

 private:
  const std::size_t max_inflight_;
  const std::size_t max_queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t active_ = 0;
  std::size_t waiting_ = 0;
  bool stopping_ = false;
};

class Server {
 public:
  /// Builds the TuningService (loading ServeOptions::store_path when
  /// set — load warnings go to the transport log on startup).
  explicit Server(ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// One request line -> one response line (no trailing newline). The
  /// whole protocol minus transport: never throws — malformed input and
  /// failed tunes render as status:"error", capacity as status:"shed".
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// Pipe transport: serve request lines from `in` until EOF or
  /// stop(), writing one flushed response line each. Returns 0; the
  /// store is persisted before returning.
  int run_pipe(std::istream& in, std::ostream& out);

  /// TCP transport on 127.0.0.1:port (options().port 0 = ephemeral;
  /// the chosen port is printed to `log` as "listening on ..." before
  /// the first accept). Serves until stop(); drains connections,
  /// persists the store, returns 0 on clean shutdown. Throws Error when
  /// the socket cannot be created or bound.
  int run_tcp(std::ostream& log);

  /// Begin shutdown. Async-signal-safe (atomic flag + self-pipe write):
  /// call it straight from a SIGTERM/SIGINT handler.
  void stop();

  struct Counters {
    std::size_t requests = 0;  ///< lines received (any op)
    std::size_t shed = 0;      ///< tunes refused by admission
    std::size_t errors = 0;    ///< malformed requests + failed ops
    /// Deadline-capped tunes answered with timed_out:true — whether the
    /// deadline expired in the admission queue, mid-search, or while
    /// waiting on a deduplicated leader. A subset of `errors`.
    std::size_t timed_out = 0;
  };
  [[nodiscard]] Counters counters() const;

  [[nodiscard]] core::TuningService& service() { return service_; }
  /// Exposed so tests can pin shed behavior deterministically (occupy
  /// the slots, then watch a request shed).
  [[nodiscard]] Admission& admission() { return admission_; }
  [[nodiscard]] const ServeOptions& options() const { return options_; }
  /// The TCP port actually bound (after "listening on" is printed);
  /// 0 before run_tcp.
  [[nodiscard]] int bound_port() const { return bound_port_; }

 private:
  [[nodiscard]] std::string handle_tune(WireRequest request);
  [[nodiscard]] std::string handle_query(const WireRequest& request);
  [[nodiscard]] std::string handle_stats(const WireRequest& request);
  [[nodiscard]] std::string handle_retrain(const WireRequest& request);
  void serve_connection(int fd);
  void count_error();
  void count_timed_out();
  /// Passes the response through the serve.write failpoint: on an
  /// injected write fault the client still gets one well-formed
  /// status:"error" line (in-band degradation, never a dropped or torn
  /// response).
  [[nodiscard]] std::string guard_write(std::string response);

  ServeOptions options_;
  /// Parsed ServeOptions::analytic_mode, substituted into tune requests
  /// that carry no explicit "analytic" field.
  sim::AnalyticOptions default_analytic_;
  core::TuningService service_;
  Admission admission_;

  mutable std::mutex counters_mu_;
  Counters counters_;

  std::atomic<bool> stopping_{false};
  std::atomic<int> bound_port_{0};
  int wake_fds_[2] = {-1, -1};  ///< self-pipe; [1] written by stop()
  std::mutex clients_mu_;
  std::vector<int> client_fds_;
  /// Handler threads that have finished serving their connection; the
  /// accept loop joins and discards these so a long-running daemon
  /// never accumulates exited-thread handles.
  std::mutex handlers_mu_;
  std::vector<std::thread::id> finished_handlers_;
};

}  // namespace gpustatic::serve
