#include "serve/protocol.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <optional>

#include "codegen/backend.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "tuner/search.hpp"

namespace gpustatic::serve {

namespace {

/// Cursor over one request line. Wire errors are all line 1 by
/// definition (the protocol is line-delimited), so ParseError's line
/// number carries the *column* instead — far more useful to a client
/// debugging a handwritten request.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  [[nodiscard]] bool done() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  char take() {
    if (done()) fail("unexpected end of input");
    return text_[pos_++];
  }
  void expect(char c) {
    if (peek() != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("wire request: " + what, pos_ + 1);
  }

  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (done()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (done()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          if (code > 0x7F) fail("non-ASCII \\u escape not supported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  [[nodiscard]] JsonValue parse_value() {
    skip_ws();
    JsonValue v;
    const char c = peek();
    if (c == '"') {
      v.kind = JsonValue::Kind::String;
      v.string = parse_string();
      return v;
    }
    if (c == '{' || c == '[')
      fail("nested objects/arrays not supported (the protocol is flat)");
    if (c == 't' || c == 'f') {
      v.kind = JsonValue::Kind::Bool;
      v.boolean = c == 't';
      expect_word(v.boolean ? "true" : "false");
      return v;
    }
    if (c == 'n') {
      expect_word("null");
      return v;  // Kind::Null
    }
    // Number.
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (!done() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                       peek() == '.' || peek() == 'e' || peek() == 'E' ||
                       peek() == '+' || peek() == '-'))
      ++pos_;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    v.number = std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size())
      fail("bad value '" + token + "'");
    v.kind = JsonValue::Kind::Number;
    return v;
  }

 private:
  void expect_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      fail("bad literal (expected '" + std::string(word) + "')");
    pos_ += word.size();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// The field's value as a non-negative integer; throws on anything else.
std::int64_t int_of(const std::string& key, const JsonValue& v) {
  if (v.kind != JsonValue::Kind::Number ||
      v.number != std::floor(v.number) || std::abs(v.number) > 1e15)
    throw ParseError("wire request: field '" + key +
                         "' must be an integer",
                     1);
  return static_cast<std::int64_t>(v.number);
}

const std::string& string_of(const std::string& key, const JsonValue& v) {
  if (v.kind != JsonValue::Kind::String)
    throw ParseError("wire request: field '" + key + "' must be a string",
                     1);
  return v.string;
}

bool bool_of(const std::string& key, const JsonValue& v) {
  if (v.kind != JsonValue::Kind::Bool)
    throw ParseError("wire request: field '" + key + "' must be a boolean",
                     1);
  return v.boolean;
}

}  // namespace

JsonObject parse_json_object(std::string_view line) {
  Cursor cur(line);
  cur.skip_ws();
  cur.expect('{');
  JsonObject out;
  cur.skip_ws();
  if (cur.peek() == '}') {
    cur.expect('}');
  } else {
    while (true) {
      cur.skip_ws();
      std::string key = cur.parse_string();
      cur.skip_ws();
      cur.expect(':');
      JsonValue value = cur.parse_value();
      if (!out.emplace(std::move(key), std::move(value)).second)
        cur.fail("duplicate key");
      cur.skip_ws();
      const char c = cur.take();
      if (c == '}') break;
      if (c != ',') cur.fail("expected ',' or '}'");
    }
  }
  cur.skip_ws();
  if (!cur.done()) cur.fail("trailing text after object");
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += str::format("\\u%04x", c);
        else
          out.push_back(c);
    }
  }
  return out;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (body_.size() > 1) body_ += ",";
  body_ += "\"";
  body_ += json_escape(k);
  body_ += "\":";
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, std::string_view value) {
  key(k).body_ += "\"" + json_escape(value) + "\"";
  return *this;
}

JsonWriter& JsonWriter::number_field(std::string_view k, double value) {
  key(k).body_ += std::isfinite(value) ? str::format("%.17g", value)
                                       : std::string("null");
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, std::uint64_t value) {
  key(k).body_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, std::int64_t value) {
  key(k).body_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, bool value) {
  key(k).body_ += value ? "true" : "false";
  return *this;
}

WireRequest parse_request(std::string_view line) {
  const JsonObject obj = parse_json_object(line);
  WireRequest req;
  const auto op = obj.find("op");
  if (op == obj.end())
    throw ParseError("wire request: missing required field 'op'", 1);
  req.op = string_of("op", op->second);
  if (req.op != "tune" && req.op != "query" && req.op != "stats" &&
      req.op != "ping" && req.op != "retrain")
    throw ParseError("wire request: unknown op '" + req.op +
                         "' (want tune|query|stats|ping|retrain)",
                     1);

  for (const auto& [key, value] : obj) {
    if (key == "op") continue;
    if (key == "id") {
      const std::int64_t id = int_of(key, value);
      if (id < 0) throw ParseError("wire request: 'id' must be >= 0", 1);
      req.id = static_cast<std::uint64_t>(id);
      req.has_id = true;
    } else if (key == "kernel") {
      req.tune.kernel = string_of(key, value);
    } else if (key == "gpu") {
      req.tune.gpu = string_of(key, value);
    } else if (key == "n") {
      req.tune.n = int_of(key, value);
    } else if (key == "method") {
      req.tune.method = string_of(key, value);
    } else if (key == "seed") {
      req.tune.search.seed = static_cast<std::uint64_t>(int_of(key, value));
    } else if (key == "budget") {
      const std::int64_t b = int_of(key, value);
      if (b < 0) throw ParseError("wire request: 'budget' must be >= 0", 1);
      req.tune.hybrid.empirical_budget = static_cast<std::size_t>(b);
    } else if (key == "search_budget") {
      const std::int64_t b = int_of(key, value);
      if (b <= 0)
        throw ParseError("wire request: 'search_budget' must be > 0", 1);
      req.tune.search.budget = static_cast<std::size_t>(b);
    } else if (key == "engine") {
      const std::string& name = string_of(key, value);
      if (name == "warp") {
        req.tune.run.engine = sim::Engine::Warp;
      } else if (name == "analytic") {
        req.tune.run.engine = sim::Engine::Analytic;
      } else {
        throw ParseError("wire request: unknown engine '" + name +
                             "' (want warp|analytic)",
                         1);
      }
    } else if (key == "backend") {
      const std::string& name = string_of(key, value);
      if (!codegen::BackendRegistry::instance().contains(name))
        throw ParseError(
            "wire request: unknown backend '" + name + "' (want " +
                str::join(codegen::BackendRegistry::instance().names(),
                          "|") +
                ")",
            1);
      req.tune.run.backend = name;
    } else if (key == "analytic") {
      const std::string& name = string_of(key, value);
      const std::optional<sim::AnalyticMode> mode =
          sim::parse_analytic_mode(name);
      if (!mode.has_value())
        throw ParseError("wire request: unknown analytic mode '" + name +
                             "' (want " +
                             str::join(sim::analytic_mode_names(), "|") +
                             ")",
                         1);
      req.tune.run.analytic.mode = *mode;
      req.has_analytic = true;
    } else if (key == "deadline_ms") {
      const std::int64_t d = int_of(key, value);
      if (d <= 0)
        throw ParseError("wire request: 'deadline_ms' must be > 0", 1);
      req.deadline_ms = d;
    } else if (key == "store_read") {
      req.tune.store.read = bool_of(key, value);
    } else if (key == "store_write") {
      req.tune.store.write = bool_of(key, value);
    } else {
      throw ParseError("wire request: unknown field '" + key + "'", 1);
    }
  }

  if ((req.op == "tune" || req.op == "query") && req.tune.kernel.empty())
    throw ParseError("wire request: op '" + req.op +
                         "' needs a 'kernel' field",
                     1);
  return req;
}

std::string render_request(const WireRequest& request) {
  JsonWriter w;
  w.field("op", request.op);
  if (request.has_id) w.field("id", request.id);
  if (request.op == "tune" || request.op == "query") {
    const core::TuneRequest& t = request.tune;
    w.field("kernel", t.kernel).field("gpu", t.gpu).field("n", t.n);
    w.field("method", t.method).field("seed", t.search.seed);
    w.field("budget",
            static_cast<std::uint64_t>(t.hybrid.empirical_budget));
    w.field("engine",
            t.run.engine == sim::Engine::Warp ? "warp" : "analytic");
    w.field("backend", t.run.backend);
    w.field("analytic", sim::analytic_mode_name(t.run.analytic.mode));
    w.field("store_read", t.store.read);
    w.field("store_write", t.store.write);
    if (request.deadline_ms > 0)
      w.field("deadline_ms", request.deadline_ms);
  }
  return w.str();
}

std::string render_tune_response(const WireRequest& request,
                                 const core::TuneResponse& response,
                                 bool budget_capped) {
  JsonWriter w;
  if (!response.ok()) {
    w.field("status", "error");
    if (request.has_id) w.field("id", request.id);
    w.field("error", response.error);
    if (response.timed_out) {
      // Partial accounting rides the error response: the work done
      // before the deadline is real (and merged into the store), so a
      // client can tell "nothing happened" from "ran out of time after
      // N evaluations" — and best-so-far when one exists.
      w.field("timed_out", true);
      w.field("evaluations",
              static_cast<std::uint64_t>(
                  response.outcome.search.distinct_evaluations));
      w.field("fresh",
              static_cast<std::uint64_t>(response.fresh_evaluations));
      w.field("warm", static_cast<std::uint64_t>(response.warm_hits));
      w.field("deduplicated", response.deduplicated);
      if (response.outcome.search.best_time != tuner::kInvalid) {
        w.field("best", response.outcome.search.best_params.to_string());
        w.number_field("time_ms", response.outcome.search.best_time);
      }
    }
    return w.str();
  }
  w.field("status", "ok").field("op", "tune");
  if (request.has_id) w.field("id", request.id);
  w.field("kernel", response.kernel).field("gpu", response.gpu);
  w.field("n", response.n).field("method", response.method);
  w.field("best", response.outcome.search.best_params.to_string());
  w.number_field("time_ms", response.outcome.search.best_time);
  w.field("evaluations",
          static_cast<std::uint64_t>(
              response.outcome.search.distinct_evaluations));
  w.field("fresh",
          static_cast<std::uint64_t>(response.fresh_evaluations));
  w.field("warm", static_cast<std::uint64_t>(response.warm_hits));
  w.field("compiles", static_cast<std::uint64_t>(response.compiles));
  w.field("deduplicated", response.deduplicated);
  w.field("budget_capped", budget_capped);
  w.field("learned_ranker", response.outcome.used_learned_ranker);
  w.field("analytic",
          sim::analytic_mode_name(request.tune.run.analytic.mode));
  return w.str();
}

std::string render_query_response(
    const WireRequest& request,
    const core::TuningService::QueryResult& result) {
  JsonWriter w;
  w.field("status", "ok").field("op", "query");
  if (request.has_id) w.field("id", request.id);
  w.field("kernel", request.tune.kernel).field("gpu", request.tune.gpu);
  w.field("found", result.found);
  w.field("records", static_cast<std::uint64_t>(result.records));
  if (result.found) {
    w.field("best", result.best.params.to_string());
    w.number_field("time_ms", result.best.measured_ms);
  }
  return w.str();
}

std::string render_retrain_response(
    const WireRequest& request,
    const core::TuningService::RetrainResult& result) {
  JsonWriter w;
  if (!result.ok()) {
    w.field("status", "error").field("op", "retrain");
    if (request.has_id) w.field("id", request.id);
    w.field("error", result.error);
    return w.str();
  }
  w.field("status", "ok").field("op", "retrain");
  if (request.has_id) w.field("id", request.id);
  w.field("store_records",
          static_cast<std::uint64_t>(result.store_records));
  w.field("trained", static_cast<std::uint64_t>(result.trained_rows));
  w.field("validation",
          static_cast<std::uint64_t>(result.validation_rows));
  w.number_field("mean_spearman", result.mean_spearman);
  w.field("model_generation", result.generation);
  return w.str();
}

std::string render_ping_response(const WireRequest& request) {
  JsonWriter w;
  w.field("status", "ok").field("op", "ping");
  if (request.has_id) w.field("id", request.id);
  return w.str();
}

std::string render_error_response(const WireRequest* request,
                                  const std::string& message) {
  JsonWriter w;
  w.field("status", "error");
  if (request != nullptr && request->has_id) w.field("id", request->id);
  w.field("error", message);
  return w.str();
}

std::string render_shed_response(const WireRequest& request,
                                 const std::string& message) {
  JsonWriter w;
  w.field("status", "shed");
  if (request.has_id) w.field("id", request.id);
  w.field("error", message).field("retry", true);
  return w.str();
}

}  // namespace gpustatic::serve
