#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <istream>
#include <optional>
#include <ostream>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/strings.hpp"

namespace gpustatic::serve {

namespace {

core::TuningService::Config service_config(const ServeOptions& opts) {
  core::TuningService::Config cfg;
  cfg.store_path = opts.store_path;
  cfg.model_path = opts.model_path;
  cfg.save_every = opts.save_every;
  return cfg;
}

/// RAII pairing for Admission::acquire/release.
class AdmissionGuard {
 public:
  explicit AdmissionGuard(Admission& admission,
                          const common::Deadline& deadline = {})
      : admission_(&admission), result_(admission.acquire(deadline)) {}
  ~AdmissionGuard() {
    if (admitted()) admission_->release();
  }
  AdmissionGuard(const AdmissionGuard&) = delete;
  AdmissionGuard& operator=(const AdmissionGuard&) = delete;
  [[nodiscard]] bool admitted() const {
    return result_ == Admission::Admit::Admitted;
  }
  [[nodiscard]] bool timed_out() const {
    return result_ == Admission::Admit::TimedOut;
  }

 private:
  Admission* admission_;
  Admission::Admit result_;
};

// EINTR-retrying wrappers: a signal (e.g. the SIGTERM that drives
// stop()) arriving mid-syscall must not tear a connection down on its
// own — shutdown is decided by stopping_/shutdown(fd), never by a
// stray -1/EINTR return. (The poll loop handles its own EINTR.)
ssize_t recv_retry(int fd, void* buf, std::size_t len) {
  ssize_t rc;
  do {
    rc = recv(fd, buf, len, 0);
  } while (rc < 0 && errno == EINTR);
  return rc;
}

ssize_t send_retry(int fd, const void* buf, std::size_t len) {
  ssize_t rc;
  do {
    rc = send(fd, buf, len, MSG_NOSIGNAL);
  } while (rc < 0 && errno == EINTR);
  return rc;
}

int accept_retry(int fd) {
  int rc;
  do {
    rc = accept(fd, nullptr, nullptr);
  } while (rc < 0 && errno == EINTR);
  return rc;
}

}  // namespace

// ---- Admission ------------------------------------------------------

bool Admission::acquire() {
  return acquire(common::Deadline{}) == Admit::Admitted;
}

Admission::Admit Admission::acquire(const common::Deadline& deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_) return Admit::Shed;
  if (active_ >= max_inflight_) {
    if (waiting_ >= max_queue_) return Admit::Shed;  // queue full: shed
    ++waiting_;
    const auto free_slot = [&] {
      return active_ < max_inflight_ || stopping_;
    };
    bool woke = true;
    if (deadline.set())
      woke = cv_.wait_until(lock, deadline.time_point(), free_slot);
    else
      cv_.wait(lock, free_slot);
    --waiting_;
    if (stopping_) return Admit::Shed;
    if (!woke) return Admit::TimedOut;  // deadline expired while queued
  }
  ++active_;
  return Admit::Admitted;
}

void Admission::release() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (active_ > 0) --active_;
  }
  cv_.notify_one();
}

void Admission::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
}

std::size_t Admission::active() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

std::size_t Admission::waiting() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return waiting_;
}

// ---- Server ---------------------------------------------------------

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      service_(service_config(options_)),
      admission_(std::max<std::size_t>(1, options_.max_inflight),
                 options_.max_queue) {
  const std::optional<sim::AnalyticMode> mode =
      sim::parse_analytic_mode(options_.analytic_mode);
  if (!mode.has_value())
    throw Error("serve: unknown analytic mode '" + options_.analytic_mode +
                "' (want " + str::join(sim::analytic_mode_names(), "|") +
                ")");
  default_analytic_.mode = *mode;
  // The self-pipe exists for the server's whole lifetime so stop() is
  // safe to call from a signal handler at any point.
  if (pipe(wake_fds_) != 0)
    throw Error(std::string("serve: pipe: ") + std::strerror(errno));
}

Server::~Server() {
  for (const int fd : wake_fds_)
    if (fd >= 0) close(fd);
}

void Server::count_error() {
  const std::lock_guard<std::mutex> lock(counters_mu_);
  ++counters_.errors;
}

void Server::count_timed_out() {
  const std::lock_guard<std::mutex> lock(counters_mu_);
  ++counters_.timed_out;
}

Server::Counters Server::counters() const {
  const std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

std::string Server::handle_line(const std::string& line) {
  {
    const std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.requests;
  }
  WireRequest request;
  try {
    request = parse_request(line);
  } catch (const Error& e) {
    count_error();
    return render_error_response(nullptr, e.what());
  }
  try {
    if (request.op == "ping") return render_ping_response(request);
    if (request.op == "stats") return handle_stats(request);
    if (request.op == "query") return handle_query(request);
    if (request.op == "retrain") return handle_retrain(request);
    return handle_tune(std::move(request));
  } catch (const std::exception& e) {
    count_error();
    return render_error_response(&request, e.what());
  }
}

std::string Server::handle_tune(WireRequest request) {
  // A request without an explicit "analytic" field tunes under the
  // server's default mode (--analytic-mode), the same way the CLI does.
  if (!request.has_analytic) request.tune.run.analytic = default_analytic_;
  // The deadline clock starts here — before the admission wait — so a
  // request that spends its whole budget queued behind other searches
  // times out in-band instead of starting a search it has no time for.
  common::Deadline deadline;
  if (request.deadline_ms > 0) {
    deadline = common::Deadline::after_ms(request.deadline_ms);
    request.tune.cancel = common::CancelToken::with_deadline(deadline);
  }
  // Per-request budget caps: one runaway client must not monopolize
  // the simulator. Capping is reported, not an error.
  bool capped = false;
  if (request.tune.hybrid.empirical_budget > options_.max_budget) {
    request.tune.hybrid.empirical_budget = options_.max_budget;
    capped = true;
  }
  if (request.tune.search.budget > options_.max_search_budget) {
    request.tune.search.budget = options_.max_search_budget;
    capped = true;
  }

  const AdmissionGuard guard(admission_, deadline);
  if (!guard.admitted()) {
    if (guard.timed_out()) {
      count_timed_out();
      count_error();
      core::TuneResponse response;
      response.timed_out = true;
      response.error = "deadline exceeded while queued for admission";
      return render_tune_response(request, response, capped);
    }
    {
      const std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.shed;
    }
    return render_shed_response(
        request,
        str::format("server at capacity (inflight %zu, queue %zu)",
                    options_.max_inflight, options_.max_queue));
  }
  const core::TuneResponse response = service_.tune(request.tune);
  if (response.timed_out) count_timed_out();
  if (!response.ok()) count_error();
  return render_tune_response(request, response, capped);
}

std::string Server::handle_query(const WireRequest& request) {
  const core::TuningService::QueryResult result = service_.query(
      request.tune.kernel, request.tune.gpu, request.tune.n);
  return render_query_response(request, result);
}

std::string Server::handle_stats(const WireRequest& request) {
  const core::TuningService::Stats stats = service_.stats();
  const core::TuningService::ModelInfo model = service_.model_info();
  const Counters counters = this->counters();
  JsonWriter w;
  w.field("status", "ok").field("op", "stats");
  if (request.has_id) w.field("id", request.id);
  w.field("requests", static_cast<std::uint64_t>(counters.requests));
  w.field("shed", static_cast<std::uint64_t>(counters.shed));
  w.field("errors", static_cast<std::uint64_t>(counters.errors));
  w.field("tunes", static_cast<std::uint64_t>(stats.requests));
  w.field("searches", static_cast<std::uint64_t>(stats.searches));
  w.field("deduplicated",
          static_cast<std::uint64_t>(stats.deduplicated));
  // Graceful-degradation counters (the chaos dashboard): deadline
  // expiries, failpoint trips, and store-save retries are expected
  // behavior under fault injection, and they must be observable —
  // silent degradation is how a daemon rots. `model_load_error` is
  // empty on a clean start; non-empty means the configured model file
  // existed but was unusable and the server is ranking analytically.
  w.field("timed_out", static_cast<std::uint64_t>(counters.timed_out));
  w.field("failpoint_trips", failpoint::total_trips());
  w.field("store_save_retries",
          static_cast<std::uint64_t>(stats.store_save_retries));
  w.field("store_save_failures",
          static_cast<std::uint64_t>(stats.store_save_failures));
  w.field("model_load_error", service_.model_load_error());
  // Analytic-engine usage: the server's default mode plus leader-search
  // counts per requested mode (stable field set, zeros when unused).
  w.field("analytic_mode",
          sim::analytic_mode_name(default_analytic_.mode));
  w.field("classic_searches",
          static_cast<std::uint64_t>(stats.classic_searches));
  w.field("wave_searches",
          static_cast<std::uint64_t>(stats.wave_searches));
  w.field("store_records",
          static_cast<std::uint64_t>(service_.store_records()));
  // Model fields are always present — false/zero when no model is
  // loaded — so clients never branch on field existence.
  w.field("model_loaded", model.loaded);
  w.field("model_version", static_cast<std::int64_t>(model.version));
  w.field("model_records", model.records);
  // Per-backend compile-cache counters; every registered backend gets a
  // field pair (zeros when unused), same stable-field-set contract as
  // the model fields above.
  for (const auto& [name, cache] : service_.cache_stats()) {
    w.field("cache_" + name + "_hits",
            static_cast<std::uint64_t>(cache.hits));
    w.field("cache_" + name + "_misses",
            static_cast<std::uint64_t>(cache.misses));
  }
  return w.str();
}

std::string Server::handle_retrain(const WireRequest& request) {
  // Retraining competes with tune searches for the same cores, so it
  // goes through admission too (and sheds identically at capacity).
  const AdmissionGuard guard(admission_);
  if (!guard.admitted()) {
    {
      const std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.shed;
    }
    return render_shed_response(
        request,
        str::format("server at capacity (inflight %zu, queue %zu)",
                    options_.max_inflight, options_.max_queue));
  }
  const core::TuningService::RetrainResult result = service_.retrain();
  if (!result.ok()) count_error();
  return render_retrain_response(request, result);
}

std::string Server::guard_write(std::string response) {
  try {
    failpoint::check("serve.write");
  } catch (const failpoint::InjectedFault& e) {
    count_error();
    return render_error_response(nullptr, e.what());
  }
  return response;
}

int Server::run_pipe(std::istream& in, std::ostream& out) {
  std::string line;
  while (!stopping_.load() && std::getline(in, line)) {
    if (str::trim(line).empty()) continue;
    out << guard_write(handle_line(line)) << "\n" << std::flush;
  }
  service_.persist();
  return 0;
}

void Server::stop() {
  stopping_.store(true);
  // Only async-signal-safe calls past this point: wake the poll loop.
  if (wake_fds_[1] >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t rc = write(wake_fds_[1], &byte, 1);
  }
}

void Server::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  while (!stopping_.load()) {
    const std::size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      if (buffer.size() > options_.max_line_bytes) {
        // A client streaming bytes without a newline must not grow the
        // buffer without bound: answer once, then drop the connection.
        count_error();
        const std::string response =
            render_error_response(
                nullptr, str::format("request line exceeds %zu bytes",
                                     options_.max_line_bytes)) +
            "\n";
        send_retry(fd, response.data(), response.size());
        break;
      }
      const ssize_t got = recv_retry(fd, chunk, sizeof chunk);
      if (got <= 0) break;  // EOF, reset, or shutdown()
      buffer.append(chunk, static_cast<std::size_t>(got));
      continue;
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (str::trim(line).empty()) continue;
    const std::string response = guard_write(handle_line(line)) + "\n";
    std::size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t wrote =
          send_retry(fd, response.data() + sent, response.size() - sent);
      if (wrote <= 0) break;
      sent += static_cast<std::size_t>(wrote);
    }
    if (sent < response.size()) break;  // client went away mid-write
  }
  close(fd);
  {
    const std::lock_guard<std::mutex> lock(clients_mu_);
    client_fds_.erase(
        std::remove(client_fds_.begin(), client_fds_.end(), fd),
        client_fds_.end());
  }
  // Tell the accept loop this thread is joinable-without-blocking.
  const std::lock_guard<std::mutex> lock(handlers_mu_);
  finished_handlers_.push_back(std::this_thread::get_id());
}

int Server::run_tcp(std::ostream& log) {
  const int listen_fd = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0)
    throw Error(std::string("serve: socket: ") + std::strerror(errno));
  const int one = 1;
  setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
           sizeof addr) != 0 ||
      listen(listen_fd, 64) != 0) {
    const std::string what = std::strerror(errno);
    close(listen_fd);
    throw Error("serve: cannot listen on 127.0.0.1:" +
                std::to_string(options_.port) + ": " + what);
  }
  socklen_t addr_len = sizeof addr;
  getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  bound_port_.store(ntohs(addr.sin_port));

  for (const std::string& w : service_.load_warnings())
    log << "warning: " << w << "\n";
  log << "gpustatic serve: listening on 127.0.0.1:" << bound_port_.load()
      << "\n"
      << std::flush;

  std::vector<std::thread> handlers;
  while (!stopping_.load()) {
    pollfd fds[2] = {{listen_fd, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
    const int ready = poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = accept_retry(listen_fd);
    if (client < 0) continue;
    // Reap handlers whose connections already ended, so `handlers`
    // tracks live connections rather than every connection ever served.
    std::vector<std::thread::id> done;
    {
      const std::lock_guard<std::mutex> lock(handlers_mu_);
      done.swap(finished_handlers_);
    }
    for (const std::thread::id id : done) {
      const auto it =
          std::find_if(handlers.begin(), handlers.end(),
                       [id](const std::thread& t) { return t.get_id() == id; });
      if (it != handlers.end()) {
        it->join();
        handlers.erase(it);
      }
    }
    {
      const std::lock_guard<std::mutex> lock(clients_mu_);
      client_fds_.push_back(client);
    }
    handlers.emplace_back(&Server::serve_connection, this, client);
  }

  close(listen_fd);
  admission_.stop();  // queued waiters shed instead of blocking shutdown
  {
    // shutdown() (not close) so handler threads blocked in recv wake
    // up; each thread still owns its fd and closes it itself.
    const std::lock_guard<std::mutex> lock(clients_mu_);
    for (const int fd : client_fds_) shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : handlers) t.join();
  service_.persist();
  log << "gpustatic serve: shut down cleanly ("
      << service_.store_records() << " store records persisted)\n"
      << std::flush;
  return 0;
}

}  // namespace gpustatic::serve
