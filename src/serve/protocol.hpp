#pragma once

// The serve-mode wire protocol: line-delimited JSON, one request object
// per line in, one response object per line out. The grammar is
// deliberately flat — every field is a string, number, or boolean —
// so any client (netcat + a JSON one-liner included) can speak it:
//
//   request  = "{" pair ("," pair)* "}"
//   pair     = string ":" (string | number | true | false | null)
//   op       = "tune" | "query" | "stats" | "ping" | "retrain"
//
//   {"op":"tune","kernel":"atax","gpu":"K20","n":64,"method":"rule",
//    "seed":1234,"budget":16,"engine":"analytic",
//    "store_read":true,"store_write":true,"id":7}
//
// `op` is required; `kernel` is required for tune/query; everything
// else defaults like the CLI (`gpu` K20, `n` 0 = per-kernel default,
// `method` rule). Unknown fields are rejected — a typoed knob must not
// silently tune the wrong thing. Malformed lines produce a
// status:"error" response and leave the connection open.
//
// Responses carry status "ok", "error", or "shed" (the admission
// policy's 429: the server is at capacity, retry later), the request's
// `id` when one was given, and for tunes the full accounting a client
// needs to verify warm-path behavior: fresh evaluation count, warm
// hits, compile count, and the single-flight `deduplicated` flag.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "core/service.hpp"

namespace gpustatic::serve {

/// One flat JSON scalar.
struct JsonValue {
  enum class Kind { String, Number, Bool, Null };
  Kind kind = Kind::Null;
  std::string string;  ///< Kind::String
  double number = 0;   ///< Kind::Number
  bool boolean = false;  ///< Kind::Bool
};

/// Key -> scalar, sorted by key. Nested containers are rejected: the
/// protocol is flat by design.
using JsonObject = std::map<std::string, JsonValue>;

/// Parse one JSON object line. Throws ParseError on anything malformed
/// (bad syntax, duplicate keys, nested arrays/objects, trailing text).
[[nodiscard]] JsonObject parse_json_object(std::string_view line);

/// JSON string escaping for the writer ('"', '\\', control chars).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Builds one single-line JSON object, fields in call order.
class JsonWriter {
 public:
  JsonWriter& field(std::string_view key, std::string_view value);
  JsonWriter& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  /// Non-finite doubles render as null (JSON has no inf/nan).
  JsonWriter& number_field(std::string_view key, double value);
  JsonWriter& field(std::string_view key, std::uint64_t value);
  JsonWriter& field(std::string_view key, std::int64_t value);
  JsonWriter& field(std::string_view key, bool value);

  /// The finished object, e.g. {"status":"ok","op":"ping"}.
  [[nodiscard]] std::string str() const { return body_ + "}"; }

 private:
  JsonWriter& key(std::string_view k);
  std::string body_ = "{";
};

/// One parsed wire request: the op plus (for tune/query) the full typed
/// core::TuneRequest it maps to.
struct WireRequest {
  std::string op;
  std::uint64_t id = 0;  ///< client correlation id; echoed when has_id
  bool has_id = false;
  /// true when the line carried an explicit "analytic" field; absent,
  /// the server substitutes its --analytic-mode default.
  bool has_analytic = false;
  /// Per-request deadline in milliseconds measured from parse time;
  /// 0 = none. A deadline-capped request that runs out of time gets an
  /// in-band status:"error" response with timed_out:true and partial
  /// accounting. Deliberately not part of the search identity.
  std::int64_t deadline_ms = 0;
  core::TuneRequest tune;
};

/// Parse and validate one request line (grammar above). Throws
/// ParseError naming the offending field on malformed input, unknown
/// ops, or unknown fields.
[[nodiscard]] WireRequest parse_request(std::string_view line);

/// Inverse of parse_request for the fields a request carries; clients
/// (tools/serve_client, tests) build requests through this so both
/// directions of the protocol live in one file.
[[nodiscard]] std::string render_request(const WireRequest& request);

// ---- response rendering (one line, no trailing newline) -------------

[[nodiscard]] std::string render_tune_response(
    const WireRequest& request, const core::TuneResponse& response,
    bool budget_capped);
/// Read-only store lookup: found/best/records, never a search.
[[nodiscard]] std::string render_query_response(
    const WireRequest& request,
    const core::TuningService::QueryResult& result);
[[nodiscard]] std::string render_ping_response(const WireRequest& request);
/// Retrain outcome: training/validation row counts, mean held-out
/// Spearman, and the installed model generation; status:"error" with
/// the service's message when the retrain failed (e.g. not enough
/// data).
[[nodiscard]] std::string render_retrain_response(
    const WireRequest& request,
    const core::TuningService::RetrainResult& result);
/// `status:"error"`; `request` may be null when the line never parsed.
[[nodiscard]] std::string render_error_response(
    const WireRequest* request, const std::string& message);
/// `status:"shed"` with retry:true — the admission policy's 429.
[[nodiscard]] std::string render_shed_response(
    const WireRequest& request, const std::string& message);

}  // namespace gpustatic::serve
