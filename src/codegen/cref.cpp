#include "codegen/cref.hpp"

#include <cctype>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace gpustatic::codegen {

namespace {

using ptx::Instruction;
using ptx::Opcode;
using ptx::Operand;
using ptx::Reg;
using ptx::Type;

/// Kernel labels become C goto labels; anything outside [A-Za-z0-9_]
/// is mapped to '_' (labels are already near-identifiers, this is a
/// guard against future label schemes).
std::string c_label(const std::string& label) {
  std::string out = "bb_";
  for (const char ch : label)
    out += std::isalnum(static_cast<unsigned char>(ch)) != 0 ? ch : '_';
  return out;
}

std::string reg_ref(const Reg& r) {
  switch (r.type) {
    case Type::Pred: return "p[" + std::to_string(r.idx) + "]";
    case Type::I32: return "r[" + std::to_string(r.idx) + "]";
    case Type::I64: return "rd[" + std::to_string(r.idx) + "]";
    case Type::F32: return "f[" + std::to_string(r.idx) + "]";
    case Type::F64: return "fd[" + std::to_string(r.idx) + "]";
  }
  return "r[0]";
}

/// Per-stage emission state: the kernel (for param resolution) and its
/// domain (the value of the scalar `n_items` param).
struct StageCtx {
  const ptx::Kernel* kernel = nullptr;
  std::int64_t domain = 0;
};

std::string param_value(const StageCtx& ctx, std::uint16_t index) {
  const ptx::Param& param = ctx.kernel->params.at(index);
  if (param.is_pointer)
    return "(std::int64_t)(std::intptr_t)buf_" + param.name;
  // The only scalar param the lowering emits is the domain bound.
  return std::to_string(ctx.domain) + "LL";
}

/// Render an operand as a C integer expression (int64 arithmetic, like
/// the warp interpreter's operand_i64: I32 registers sign-extend).
std::string int_of(const StageCtx& ctx, const Operand& o) {
  switch (o.kind()) {
    case Operand::Kind::Reg:
      return "(std::int64_t)" + reg_ref(o.reg());
    case Operand::Kind::ImmI:
      return std::to_string(o.imm_i()) + "LL";
    case Operand::Kind::Sym:
      return param_value(ctx, o.sym());
    case Operand::Kind::Special:
      switch (o.special()) {
        case ptx::SpecialReg::TidX: return "tid";
        case ptx::SpecialReg::NTidX: return "ntid";
        case ptx::SpecialReg::CTAidX: return "ctaid";
        case ptx::SpecialReg::NCTAidX: return "nctaid";
        case ptx::SpecialReg::LaneId: return "(tid & 31)";
      }
      break;
    default:
      break;
  }
  throw Error("cref backend: bad integer operand");
}

/// Render an operand as a C double expression (the interpreter computes
/// floating point in double and narrows on the F32 register write).
std::string float_of(const StageCtx& ctx, const Operand& o) {
  if (o.kind() == Operand::Kind::Reg) {
    const Type t = o.reg().type;
    if (t == Type::F32 || t == Type::F64)
      return "(double)" + reg_ref(o.reg());
    return "(double)(" + int_of(ctx, o) + ")";
  }
  if (o.kind() == Operand::Kind::ImmF) {
    std::ostringstream out;
    out.precision(17);
    out << o.imm_f();
    std::string text = out.str();
    // A bare integer literal is still a valid double, but keep the
    // emitted program unambiguous about its type.
    if (text.find_first_of(".eEnN") == std::string::npos) text += ".0";
    return text;
  }
  return "(double)(" + int_of(ctx, o) + ")";
}

/// Wrap a computed value in the destination register's write semantics
/// (truncate to int32 for I32, narrow to float for F32, 0/1 for Pred).
std::string store_to(const Reg& dst, const std::string& value) {
  switch (dst.type) {
    case Type::Pred:
      return reg_ref(dst) + " = (" + value + ") != 0 ? 1 : 0;";
    case Type::I32:
      return reg_ref(dst) + " = (std::int32_t)(" + value + ");";
    case Type::I64:
      return reg_ref(dst) + " = (std::int64_t)(" + value + ");";
    case Type::F32:
      return reg_ref(dst) + " = (float)(" + value + ");";
    case Type::F64:
      return reg_ref(dst) + " = (" + value + ");";
  }
  return ";";
}

bool is_float_type(Type t) { return t == Type::F32 || t == Type::F64; }

std::string address_expr(const StageCtx& ctx, const Instruction& ins) {
  std::string addr = int_of(ctx, ins.srcs.at(0));
  if (ins.offset != 0)
    addr += " + " + std::to_string(ins.offset) + "LL";
  if (ins.space != ptx::MemSpace::Global)
    throw Error("cref backend: unsupported memory space");
  if (ins.type != Type::F32)
    throw Error("cref backend: unsupported memory element type");
  return "(float*)(std::intptr_t)(" + addr + ")";
}

/// One instruction -> one C statement (sans guard).
std::string statement_of(const StageCtx& ctx, const Instruction& ins,
                         const std::string& exit_label) {
  const auto a = [&] { return int_of(ctx, ins.srcs.at(0)); };
  const auto b = [&] { return int_of(ctx, ins.srcs.at(1)); };
  const auto c = [&] { return int_of(ctx, ins.srcs.at(2)); };
  const auto fa = [&] { return float_of(ctx, ins.srcs.at(0)); };
  const auto fb = [&] { return float_of(ctx, ins.srcs.at(1)); };
  const auto fc = [&] { return float_of(ctx, ins.srcs.at(2)); };
  switch (ins.op) {
    case Opcode::MOV:
      if (ins.dst && is_float_type(ins.dst->type))
        return store_to(*ins.dst, fa());
      return store_to(*ins.dst, a());
    case Opcode::SELP:
      if (ins.dst && is_float_type(ins.dst->type))
        return store_to(*ins.dst, "(" + c() + ") != 0 ? (" + fa() +
                                      ") : (" + fb() + ")");
      return store_to(*ins.dst,
                      "(" + c() + ") != 0 ? (" + a() + ") : (" + b() + ")");
    case Opcode::AND:
      return store_to(*ins.dst, "(" + a() + ") & (" + b() + ")");
    case Opcode::OR:
      return store_to(*ins.dst, "(" + a() + ") | (" + b() + ")");
    case Opcode::XOR:
      return store_to(*ins.dst, "(" + a() + ") ^ (" + b() + ")");
    case Opcode::NOT:
      if (ins.dst && ins.dst->type == Type::Pred)
        return store_to(*ins.dst, "!(" + a() + ")");
      return store_to(*ins.dst, "~(" + a() + ")");
    case Opcode::SHL:
      return store_to(*ins.dst, "(" + a() + ") << (" + b() + ")");
    case Opcode::SHR:
      return store_to(*ins.dst, "(" + a() + ") >> (" + b() + ")");
    case Opcode::IADD:
      return store_to(*ins.dst, "(" + a() + ") + (" + b() + ")");
    case Opcode::ISUB:
      return store_to(*ins.dst, "(" + a() + ") - (" + b() + ")");
    case Opcode::IMUL:
      return store_to(*ins.dst, "(" + a() + ") * (" + b() + ")");
    case Opcode::IMULHI:
      return store_to(*ins.dst, "(std::int64_t)(((__int128)(" + a() +
                                    ") * (__int128)(" + b() + ")) >> 64)");
    case Opcode::IMAD:
      return store_to(*ins.dst, "(" + a() + ") * (" + b() + ") + (" + c() +
                                    ")");
    case Opcode::IMIN:
      return store_to(*ins.dst, "(" + a() + ") < (" + b() + ") ? (" + a() +
                                    ") : (" + b() + ")");
    case Opcode::IMAX:
      return store_to(*ins.dst, "(" + a() + ") > (" + b() + ") ? (" + a() +
                                    ") : (" + b() + ")");
    case Opcode::FADD:
      return store_to(*ins.dst, "(" + fa() + ") + (" + fb() + ")");
    case Opcode::FSUB:
      return store_to(*ins.dst, "(" + fa() + ") - (" + fb() + ")");
    case Opcode::FMUL:
      return store_to(*ins.dst, "(" + fa() + ") * (" + fb() + ")");
    case Opcode::FFMA:
      // Mirrors the warp interpreter: fused in the register width.
      if (ins.type == Type::F32)
        return store_to(*ins.dst,
                        "(double)std::fmaf((float)(" + fa() + "), (float)(" +
                            fb() + "), (float)(" + fc() + "))");
      return store_to(*ins.dst, "std::fma(" + fa() + ", " + fb() + ", " +
                                    fc() + ")");
    case Opcode::FMIN:
      return store_to(*ins.dst, "std::min(" + fa() + ", " + fb() + ")");
    case Opcode::FMAX:
      return store_to(*ins.dst, "std::max(" + fa() + ", " + fb() + ")");
    case Opcode::RCP:
      return store_to(*ins.dst, "1.0 / (" + fa() + ")");
    case Opcode::RSQRT:
      return store_to(*ins.dst, "1.0 / std::sqrt(" + fa() + ")");
    case Opcode::SQRT:
      return store_to(*ins.dst, "std::sqrt(" + fa() + ")");
    case Opcode::EX2:
      return store_to(*ins.dst, "std::exp2(" + fa() + ")");
    case Opcode::LG2:
      return store_to(*ins.dst, "std::log2(" + fa() + ")");
    case Opcode::SIN:
      return store_to(*ins.dst, "std::sin(" + fa() + ")");
    case Opcode::COS:
      return store_to(*ins.dst, "std::cos(" + fa() + ")");
    case Opcode::CVT:
      if (ins.dst && is_float_type(ins.dst->type))
        return store_to(*ins.dst,
                        ins.cvt_src == Type::I32 || ins.cvt_src == Type::I64
                            ? "(double)(" + a() + ")"
                            : fa());
      return store_to(*ins.dst,
                      ins.cvt_src == Type::F32 || ins.cvt_src == Type::F64
                          ? "(std::int64_t)(" + fa() + ")"
                          : a());
    case Opcode::SETP: {
      const bool fcmp = is_float_type(ins.type);
      const std::string lhs = fcmp ? fa() : a();
      const std::string rhs = fcmp ? fb() : b();
      const char* op = "==";
      switch (ins.cmp) {
        case ptx::CmpOp::EQ: op = "=="; break;
        case ptx::CmpOp::NE: op = "!="; break;
        case ptx::CmpOp::LT: op = "<"; break;
        case ptx::CmpOp::LE: op = "<="; break;
        case ptx::CmpOp::GT: op = ">"; break;
        case ptx::CmpOp::GE: op = ">="; break;
      }
      return reg_ref(*ins.dst) + " = ((" + lhs + ") " + op + " (" + rhs +
             ")) ? 1 : 0;";
    }
    case Opcode::LD:
      if (ins.space == ptx::MemSpace::Param)
        return store_to(*ins.dst, param_value(ctx, ins.srcs.at(0).sym()));
      return store_to(*ins.dst, "(double)(*(" + address_expr(ctx, ins) +
                                    "))");
    case Opcode::ST:
      return "*(" + address_expr(ctx, ins) + ") = (float)(" +
             float_of(ctx, ins.srcs.at(1)) + ");";
    case Opcode::ATOM_ADD:
      // Threads run sequentially, so the atomic is a plain accumulate.
      return "*(" + address_expr(ctx, ins) + ") += (float)(" +
             float_of(ctx, ins.srcs.at(1)) + ");";
    case Opcode::BRA:
      return "goto " + c_label(ins.target) + ";";
    case Opcode::BAR:
      // One thread at a time: every barrier is trivially satisfied.
      return ";";
    case Opcode::EXIT:
      return "goto " + exit_label + ";";
    case Opcode::NOP:
      return ";";
  }
  throw Error("cref backend: unsupported opcode");
}

void emit_stage(std::ostringstream& out, const LoweredStage& stage,
                std::size_t index) {
  const ptx::Kernel& k = stage.kernel;
  StageCtx ctx;
  ctx.kernel = &k;
  ctx.domain = stage.launch.domain;
  const std::string si = std::to_string(index);
  const std::string exit_label = "thread_exit_" + si;

  out << "static long long cnt_" << si << "[" << k.blocks.size()
      << "];\n\n";
  out << "// stage " << index << ": kernel '" << k.name << "', domain "
      << stage.launch.domain << "\n";
  out << "static void stage_" << si
      << "(std::int64_t ntid, std::int64_t nctaid) {\n";
  out << "  for (std::int64_t ctaid = 0; ctaid < nctaid; ++ctaid)\n";
  out << "  for (std::int64_t tid = 0; tid < ntid; ++tid) {\n";
  // Register files: one array per class, sized by the highest virtual
  // index the kernel uses, zero-initialized per thread like the
  // simulator's fresh register arena.
  out << "    std::int32_t r[" << k.max_reg_index(Type::I32) + 1
      << "] = {0};\n";
  out << "    std::int64_t rd[" << k.max_reg_index(Type::I64) + 1
      << "] = {0};\n";
  out << "    float f[" << k.max_reg_index(Type::F32) + 1 << "] = {0};\n";
  out << "    double fd[" << k.max_reg_index(Type::F64) + 1
      << "] = {0};\n";
  out << "    int p[" << k.max_reg_index(Type::Pred) + 1 << "] = {0};\n";
  out << "    (void)r; (void)rd; (void)f; (void)fd; (void)p;\n";
  for (std::size_t b = 0; b < k.blocks.size(); ++b) {
    const ptx::BasicBlock& block = k.blocks[b];
    out << "    " << c_label(block.label) << ": cnt_" << si << "[" << b
        << "] += 1;\n";
    for (const Instruction& ins : block.body) {
      out << "      ";
      if (ins.guard) {
        out << "if (" << (ins.guard->negated ? "!" : "")
            << reg_ref(ins.guard->pred) << ") ";
      }
      out << statement_of(ctx, ins, exit_label) << "\n";
    }
  }
  out << "    " << exit_label << ": ;\n";
  out << "  }\n";
  out << "}\n\n";
}

}  // namespace

LoweredWorkload CRefBackend::lower(const dsl::WorkloadDesc& wl,
                                   const arch::GpuSpec& gpu,
                                   const TuningParams& params) const {
  // The mid-level lowering is target-neutral; sharing it with "ptx" is
  // deliberate — the differential tests execute this backend's artifact
  // to pin the *same* static frequency model against real counts.
  return Compiler(gpu, params).compile(wl);
}

std::string CRefBackend::emit_source(const LoweredWorkload& lowered,
                                     const dsl::WorkloadDesc& wl) const {
  std::ostringstream out;
  out << "// generated by gpustatic cref backend\n";
  out << "// workload '" << wl.name << "', variant "
      << lowered.params.to_string() << "\n";
  out << "// usage: prog <threads_per_block> <block_count>; prints one\n";
  out << "// \"<stage> <block> <count>\" line per basic block.\n";
  out << "#include <cmath>\n#include <cstdint>\n#include <cstdio>\n"
         "#include <cstdlib>\n#include <algorithm>\n\n";

  for (const dsl::ArrayDecl& a : wl.arrays)
    out << "static float buf_" << a.name << "[" << a.length << "];\n";
  out << "\n";

  for (std::size_t i = 0; i < lowered.stages.size(); ++i)
    emit_stage(out, lowered.stages[i], i);

  out << "int main(int argc, char** argv) {\n";
  out << "  if (argc != 3) {\n";
  out << "    std::fprintf(stderr, \"usage: %s <threads_per_block> "
         "<block_count>\\n\", argv[0]);\n";
  out << "    return 2;\n  }\n";
  out << "  const std::int64_t ntid = std::atoll(argv[1]);\n";
  out << "  const std::int64_t nctaid = std::atoll(argv[2]);\n";
  out << "  if (ntid <= 0 || nctaid <= 0) return 2;\n";
  for (const dsl::ArrayDecl& a : wl.arrays) {
    switch (a.init) {
      case dsl::ArrayInit::Zero:
        out << "  // buf_" << a.name << ": zero-initialized (static)\n";
        break;
      case dsl::ArrayInit::Ones:
        out << "  for (std::int64_t i = 0; i < " << a.length
            << "; ++i) buf_" << a.name << "[i] = 1.0f;\n";
        break;
      case dsl::ArrayInit::Ramp:
        // Exactly sim::init_value: (i % 97) / 97.0f.
        out << "  for (std::int64_t i = 0; i < " << a.length
            << "; ++i) buf_" << a.name << "[i] = (float)(i % 97) / "
               "97.0f;\n";
        break;
    }
  }
  for (std::size_t i = 0; i < lowered.stages.size(); ++i)
    out << "  stage_" << i << "(ntid, nctaid);\n";
  for (std::size_t i = 0; i < lowered.stages.size(); ++i) {
    out << "  for (std::size_t b = 0; b < "
        << lowered.stages[i].kernel.blocks.size() << "; ++b)\n";
    out << "    std::printf(\"%d %zu %lld\\n\", " << i << ", b, cnt_" << i
        << "[b]);\n";
  }
  out << "  return 0;\n}\n";
  return out.str();
}

}  // namespace gpustatic::codegen
