#pragma once

// The virtual CUDA toolchain: lowers DSL workloads to the PTX-like IR,
// applying the tuning parameters the way nvcc + Orio transformations would
// (see DESIGN.md S3 substitution table).
//
// What the lowering models, and why it matters for the paper's results:
//
//  * Grid-stride skeleton. Every stage becomes a grid-stride loop over its
//    work-item domain, so any (TC, BC) launch geometry covers any problem
//    size — the same mapping Orio's CUDA code generator emits.
//  * Work coarsening (SC) and unrolling (UIF). The innermost unrollable
//    serial loop is unrolled UIF times (kernels without one unroll the
//    grid-stride loop instead). Unrolled copies use fresh virtual
//    registers and the post-pass scheduler hoists their loads, so higher
//    UIF buys memory-level parallelism at the price of register pressure —
//    the occupancy/register tradeoff at the heart of Table V.
//  * Strength reduction. Array indexes affine in the loop variable become
//    running pointers (one integer add per loop iteration). Non-affine
//    indexes (matVec2D's cyclic wrap) re-compute addresses every
//    iteration; the extra integer work counts as FLOPS under the Table II
//    taxonomy, which is what separates the kernels' intensities.
//  * fast-math (CFLAGS). Special functions and divisions lower to short
//    approximate sequences instead of precise ones, and unrolled
//    reductions split accumulators (floating-point reassociation).
//  * Coalescing hints. Each memory instruction is annotated with the
//    lane stride (address distance between adjacent lanes) and serial
//    stride (address advance per loop iteration) derived from the affine
//    analysis; the simulator cross-checks these against actual addresses.

#include <vector>

#include "arch/gpu_spec.hpp"
#include "codegen/params.hpp"
#include "dsl/ast.hpp"
#include "ptx/kernel.hpp"
#include "ptx/liveness.hpp"

namespace gpustatic::codegen {

/// How one basic block's static frequency depends on the launch shape.
/// The lowered instruction stream never depends on TC/BC — only the
/// frequency estimates do, through total_threads = TC*BC — so recording
/// each block's frequency as (numerator / total_threads) followed by the
/// exact chain of multiplications the lowering performed lets a compiled
/// stage be retargeted to any launch shape without recompiling, with
/// bit-identical results (at() folds the same doubles in the same order).
struct BlockFreqModel {
  bool scaled = false;  ///< false: launch-independent constant (entry/done)
  double base = 1.0;    ///< the fixed frequency, or the scaled numerator
  std::vector<double> factors;  ///< loop trips / branch probs, in order
  /// True while every factor is structural (loop trips, grid-stride
  /// bases): the frequency is then an exact execution count, not an
  /// estimate. lower_if() clears it when a branch-probability factor
  /// enters the chain — those are geometry-derived estimates, and the
  /// differential tester gates them by tolerance instead of equality.
  bool exact = true;

  [[nodiscard]] double at(double total_threads) const {
    double f = scaled ? base / total_threads : base;
    for (const double m : factors) f *= m;
    return f;
  }
};

/// One compiled kernel stage plus everything the analyses need.
struct LoweredStage {
  ptx::Kernel kernel;
  LaunchConfig launch;
  /// Average per-thread execution count of each basic block (parallel to
  /// kernel.blocks). Static estimate used by the analytic performance
  /// model; the warp simulator measures the true counts.
  std::vector<double> block_freq;
  /// How each entry of block_freq was derived (parallel to block_freq):
  /// the launch-shape dependence, recorded so retarget_launch() can
  /// rescale a cached compile instead of re-running the compiler.
  std::vector<BlockFreqModel> freq_model;
  ptx::RegisterDemand demand;
  /// Param index -> workload array name; empty string for scalar params.
  std::vector<std::string> param_arrays;
  /// Work items consumed per thread per grid-stride step
  /// (SC x UIF-coarsening). The analytic model needs this to reconstruct
  /// the active-thread count.
  int coarsen = 1;
};

/// A fully compiled workload variant: one LoweredStage per DSL stage.
struct LoweredWorkload {
  std::string name;
  TuningParams params;
  std::vector<LoweredStage> stages;

  /// Max registers/thread over stages: the `Ru` fed to the occupancy model
  /// (a multi-stage launch is constrained by its hungriest kernel).
  [[nodiscard]] std::uint32_t regs_per_thread() const;
  /// Max static shared memory per block over stages.
  [[nodiscard]] std::uint32_t smem_per_block() const;
  /// Total static instruction count over stages.
  [[nodiscard]] std::size_t instruction_count() const;
};

/// The compiler. Stateless apart from configuration; thread-safe to use
/// one instance from multiple threads.
class Compiler {
 public:
  Compiler(const arch::GpuSpec& gpu, TuningParams params);

  [[nodiscard]] LoweredWorkload compile(const dsl::WorkloadDesc& wl) const;
  [[nodiscard]] LoweredStage compile_stage(const dsl::WorkloadDesc& wl,
                                           const dsl::StageDesc& stage) const;

  [[nodiscard]] const TuningParams& params() const { return params_; }
  [[nodiscard]] const arch::GpuSpec& gpu() const { return *gpu_; }

 private:
  const arch::GpuSpec* gpu_;
  TuningParams params_;
};

/// `ptxas -v`-style one-line compile report ("Used 27 registers, ...").
[[nodiscard]] std::string compile_info(const LoweredStage& stage);

/// The per-point parameter validation the Compiler constructor performs,
/// factored out so cache lookups reject exactly what a fresh compile
/// would. Throws ConfigError with the constructor's messages.
void validate_params(const arch::GpuSpec& gpu, const TuningParams& params);

/// Recompute a stage's block frequencies for `params`' launch shape into
/// `out` (resized; capacity reused). Bit-identical to what a fresh
/// compile with the same codegen-affecting parameters would produce.
void block_freq_at(const LoweredStage& stage, const TuningParams& params,
                   std::vector<double>& out);

/// Retarget a compiled stage to `params`' launch shape in place: rewrite
/// LaunchConfig and rescale block_freq via freq_model. `stage` must come
/// from a compile that agrees with `params` on the codegen-affecting
/// fields (unroll, stream_chunk, fast_math); smem and domain never
/// depend on the launch shape and are left untouched.
void retarget_launch(LoweredStage& stage, const TuningParams& params);

}  // namespace gpustatic::codegen
