#pragma once

// The codegen backend seam. A Backend turns a DSL workload into a
// LoweredWorkload under one target dialect; everything downstream of
// lowering (CompilationCache, SimContext, TuningService, the serve
// protocol, the CLI) selects a backend by registry name instead of
// hard-wiring the PTX lowering. Two backends ship built in:
//
//   "ptx"  — the paper's virtual-CUDA lowering (codegen::Compiler),
//            the default everywhere; byte-identical to calling the
//            Compiler directly.
//   "cref" — the scalar-C reference backend (cref.hpp): the same
//            mid-level lowering rendered as a plain C program with a
//            dynamic counter per basic block, compilable with the host
//            toolchain. It is the execution oracle the differential
//            tests (src/difftest) diff the static counts against.
//
// The registry mirrors tuner::StrategyRegistry: name-keyed, built-ins
// registered on first use of instance(), unknown names throw an Error
// that enumerates what is registered.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "codegen/compiler.hpp"
#include "dsl/ast.hpp"

namespace gpustatic::codegen {

/// Every consumer that takes a backend name defaults to this.
inline constexpr const char* kDefaultBackend = "ptx";

/// One lowering target. Backends are stateless and const — a single
/// instance serves every thread — so the registry hands out shared
/// pointers to immutable objects.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Registry name ("ptx", "cref", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Lower `wl` for `gpu` under `params`. Must validate params exactly
  /// like validate_params() (throwing ConfigError) and must populate
  /// freq_model so retarget_launch()/block_freq_at() work unchanged —
  /// the cache's launch-shape rescaling is backend-agnostic.
  [[nodiscard]] virtual LoweredWorkload lower(
      const dsl::WorkloadDesc& wl, const arch::GpuSpec& gpu,
      const TuningParams& params) const = 0;

  /// Render the lowered workload in the backend's source dialect
  /// (virtual-ISA disassembly for "ptx", an instrumented C program for
  /// "cref"). `wl` is the workload `lowered` came from.
  [[nodiscard]] virtual std::string emit_source(
      const LoweredWorkload& lowered, const dsl::WorkloadDesc& wl) const = 0;

  /// True when emit_source() yields a program the host toolchain can
  /// compile and run (the differential tester requires this).
  [[nodiscard]] virtual bool executable() const { return false; }
};

/// Name -> backend. The process-wide instance() comes pre-loaded with
/// the built-ins; tests may build private registries.
class BackendRegistry {
 public:
  /// The global registry (built-ins registered on first use).
  static BackendRegistry& instance();

  /// Throws Error when `name` is already registered or `backend` null.
  void register_backend(std::shared_ptr<const Backend> backend);
  /// Throws Error naming the registered backends on unknown `name`.
  [[nodiscard]] std::shared_ptr<const Backend> get(
      const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const;
  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, std::shared_ptr<const Backend>> backends_;
};

/// Registers the built-in backends ("ptx", "cref") into `registry`.
/// instance() calls this once; exposed so tests can build
/// self-contained registries.
void register_builtin_backends(BackendRegistry& registry);

/// The paper's lowering behind the seam: lower() delegates to
/// codegen::Compiler (bit-identical output), emit_source() renders the
/// `disasm` view (compile_info comment + virtual-ISA text per stage).
class PtxBackend : public Backend {
 public:
  [[nodiscard]] std::string name() const override { return "ptx"; }
  [[nodiscard]] LoweredWorkload lower(
      const dsl::WorkloadDesc& wl, const arch::GpuSpec& gpu,
      const TuningParams& params) const override;
  [[nodiscard]] std::string emit_source(
      const LoweredWorkload& lowered,
      const dsl::WorkloadDesc& wl) const override;
};

}  // namespace gpustatic::codegen
