#pragma once

// The scalar-C reference backend: the execution oracle behind the
// differential tests (src/difftest).
//
// lower() runs the same mid-level lowering as the "ptx" backend — the
// virtual ISA is target-neutral, and sharing it is the point: the
// static per-block frequency model under test is identical — but the
// artifact differs. emit_source() renders the lowered kernels as one
// self-contained C++ program that
//
//   * executes every (ctaid, tid) thread of the launch sequentially,
//   * increments a dynamic counter at the top of every basic block,
//   * allocates and initializes the workload's arrays exactly like
//     sim::DeviceMemory (Zero / Ramp = (i % 97)/97 / Ones),
//   * takes the launch shape on the command line
//     (`prog <threads_per_block> <block_count>`), and
//   * prints one "<stage> <block> <count>" line per basic block.
//
// Compiling that program with the host toolchain and running it gives
// ground-truth per-block execution counts — derived by an independent
// implementation (the host C compiler + CPU) — to diff against the
// simulator's static block_freq/freq_model. Integer semantics mirror
// the warp interpreter (I32 ops computed in int64, truncated on
// write), so control flow — which the lowering only ever makes depend
// on integer SETPs — matches instruction for instruction.

#include <string>

#include "codegen/backend.hpp"

namespace gpustatic::codegen {

class CRefBackend : public Backend {
 public:
  [[nodiscard]] std::string name() const override { return "cref"; }
  [[nodiscard]] LoweredWorkload lower(
      const dsl::WorkloadDesc& wl, const arch::GpuSpec& gpu,
      const TuningParams& params) const override;
  [[nodiscard]] std::string emit_source(
      const LoweredWorkload& lowered,
      const dsl::WorkloadDesc& wl) const override;
  [[nodiscard]] bool executable() const override { return true; }
};

}  // namespace gpustatic::codegen
