#include "codegen/backend.hpp"

#include <sstream>
#include <utility>

#include "codegen/cref.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "ptx/printer.hpp"

namespace gpustatic::codegen {

BackendRegistry& BackendRegistry::instance() {
  // Built-ins load through this call (rather than file-scope registrar
  // objects) so the registration order is defined and the archive
  // members are guaranteed linked in.
  static BackendRegistry registry = [] {
    BackendRegistry r;
    register_builtin_backends(r);
    return r;
  }();
  return registry;
}

void BackendRegistry::register_backend(
    std::shared_ptr<const Backend> backend) {
  if (backend == nullptr)
    throw Error("backend registry: null backend");
  const std::string name = backend->name();
  if (!backends_.emplace(name, std::move(backend)).second)
    throw Error("backend '" + name + "' is already registered");
}

std::shared_ptr<const Backend> BackendRegistry::get(
    const std::string& name) const {
  const auto it = backends_.find(name);
  if (it == backends_.end())
    throw Error("unknown backend '" + name + "' (registered: " +
                str::join(names(), ", ") + ")");
  return it->second;
}

bool BackendRegistry::contains(const std::string& name) const {
  return backends_.find(name) != backends_.end();
}

std::vector<std::string> BackendRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(backends_.size());
  for (const auto& [name, backend] : backends_) out.push_back(name);
  return out;  // std::map iterates sorted
}

void register_builtin_backends(BackendRegistry& registry) {
  registry.register_backend(std::make_shared<PtxBackend>());
  registry.register_backend(std::make_shared<CRefBackend>());
}

LoweredWorkload PtxBackend::lower(const dsl::WorkloadDesc& wl,
                                  const arch::GpuSpec& gpu,
                                  const TuningParams& params) const {
  return Compiler(gpu, params).compile(wl);
}

std::string PtxBackend::emit_source(const LoweredWorkload& lowered,
                                    const dsl::WorkloadDesc&) const {
  // The `disasm` command's exact output format.
  std::ostringstream out;
  for (const LoweredStage& st : lowered.stages) {
    out << "// " << compile_info(st) << "\n";
    out << ptx::to_string(st.kernel) << "\n";
  }
  return out.str();
}

}  // namespace gpustatic::codegen
