#include "codegen/compiler.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <optional>
#include <string>

#include "codegen/schedule.hpp"
#include "common/error.hpp"
#include "dsl/linear.hpp"

namespace gpustatic::codegen {

using namespace ptx;  // NOLINT: lowering code is all about the IR
using dsl::FloatBinOp;
using dsl::FloatUnOp;
using dsl::IntExprPtr;
using dsl::IntOp;
using dsl::LinearForm;

namespace {

constexpr std::int64_t kElemBytes = 4;   // all arrays are f32
constexpr std::int64_t kSegmentBytes = 128;  // DRAM transaction size

bool is_pow2(std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; }
int log2i(std::int64_t v) {
  int k = 0;
  while ((std::int64_t{1} << k) < v) ++k;
  return k;
}

/// Serialized coefficient signature of a linear form (constant excluded),
/// used as the address-cache / stream key.
std::string coeff_signature(const LinearForm& f) {
  std::string out;
  for (const auto& [var, c] : f.coeffs)
    out += var + "*" + std::to_string(c) + ";";
  return out;
}

/// An induction-variable address stream for one (array, coefficient
/// pattern) pair within a serial loop.
struct Stream {
  std::string array;
  std::string signature;       ///< coeff_signature incl. the loop variable
  std::int64_t coeff_loopvar = 0;   ///< elements per loop-var increment
  std::int64_t const0 = 0;     ///< linear-form constant at loop entry
  Reg addr;                    ///< running byte address (I64)
};

struct LoopCtx {
  std::string var;
  Reg counter;                 ///< I32 loop counter register
  int copy = 0;                ///< current unrolled copy index
  int unroll = 1;
  std::vector<Stream> streams;
};

/// Per-stage lowering state.
class Lowering {
 public:
  Lowering(const dsl::WorkloadDesc& wl, const dsl::StageDesc& stage,
           const arch::GpuSpec& gpu, const TuningParams& params)
      : wl_(wl), stage_(stage), gpu_(gpu), p_(params) {}

  LoweredStage run();

 private:
  // ----- kernel construction helpers
  Reg fresh(Type t) {
    auto& n = next_reg_[static_cast<int>(t)];
    if (n == 0xffff) throw Error("virtual register space exhausted");
    return Reg{t, n++};
  }
  BasicBlock& cur() { return kernel_.blocks[cur_block_]; }
  void emit(Instruction ins) { cur().body.push_back(std::move(ins)); }
  /// Open a new block and record its static frequency alongside the
  /// launch-shape model that derives it (cur_fexpr_ must be kept in sync
  /// with cur_freq_ by every site that changes the frequency).
  void start_block(const std::string& label, double freq) {
    kernel_.blocks.push_back(BasicBlock{label, {}});
    freq_.push_back(freq);
    fmodel_.push_back(cur_fexpr_);
    cur_block_ = kernel_.blocks.size() - 1;
  }
  std::string fresh_label(const std::string& stem) {
    return stem + "_" + std::to_string(label_counter_++);
  }

  // ----- scope save/restore
  struct Scope {
    std::map<std::string, Reg> int_vars;
    std::map<std::string, Reg> float_vars;
    std::map<std::string, std::pair<Reg, std::int64_t>> addr_cache;
    std::map<std::string, std::optional<double>> lane_coeff;
  };
  Scope snapshot() const {
    return {int_vars_, float_vars_, addr_cache_, lane_coeff_};
  }
  void restore(Scope s) {
    int_vars_ = std::move(s.int_vars);
    float_vars_ = std::move(s.float_vars);
    addr_cache_ = std::move(s.addr_cache);
    lane_coeff_ = std::move(s.lane_coeff);
  }

  // ----- integer expression lowering
  Operand lower_int(const IntExprPtr& e);
  Reg lower_int_reg(const IntExprPtr& e);
  Reg materialize(Operand op, Type t);

  // ----- float expression lowering
  Reg lower_float(const dsl::FloatExprPtr& e);
  Operand lower_float_operand(const dsl::FloatExprPtr& e);
  Reg lower_special(FloatUnOp op, Reg x);

  // ----- conditions
  Reg lower_cond(const dsl::CondPtr& c);

  // ----- memory
  struct Address {
    Reg reg;            ///< I64 byte address register
    std::int64_t offset = 0;
    AccessHint hint;
  };
  Address address_of(const std::string& array, const IntExprPtr& index);
  Reg param_base(const std::string& array);
  std::optional<double> lane_derivative(const IntExprPtr& e) const;
  AccessHint hint_for(const IntExprPtr& index) const;

  // ----- statements
  void lower_stmt(const dsl::StmtPtr& s);
  void lower_for(const dsl::Stmt& s);
  void lower_if(const dsl::Stmt& s);
  /// `loop_index` indexes loop_stack_ rather than passing a LoopCtx&:
  /// lowering the body can push nested loops and reallocate the stack,
  /// so references into it must be re-resolved after every recursion.
  void lower_loop_body_copies(const dsl::Stmt& loop,
                              std::size_t loop_index, int copies,
                              std::map<std::string, std::vector<Reg>>*
                                  split_accs);

  // ----- skeleton
  void emit_prologue();
  void emit_grid_stride();
  void collect_used_arrays(const dsl::StmtPtr& s);
  void collect_used_arrays_expr(const dsl::FloatExprPtr& e);

  // ----- members
  const dsl::WorkloadDesc& wl_;
  const dsl::StageDesc& stage_;
  const arch::GpuSpec& gpu_;
  const TuningParams& p_;

  Kernel kernel_;
  std::vector<double> freq_;
  std::vector<BlockFreqModel> fmodel_;  ///< parallel to freq_
  std::size_t cur_block_ = 0;
  double cur_freq_ = 1.0;
  BlockFreqModel cur_fexpr_;  ///< launch-shape derivation of cur_freq_
  std::array<std::uint16_t, 5> next_reg_{};
  int label_counter_ = 0;

  std::map<std::string, Reg> int_vars_;
  std::map<std::string, Reg> float_vars_;
  /// array|coeff-signature -> (addr reg, linear-form constant it encodes)
  std::map<std::string, std::pair<Reg, std::int64_t>> addr_cache_;
  std::map<std::string, std::optional<double>> lane_coeff_;
  std::map<std::string, Reg> param_regs_;
  std::map<std::string, std::uint16_t> param_index_;
  std::vector<std::string> used_arrays_;

  std::vector<LoopCtx> loop_stack_;
  Reg n_reg_{};        ///< domain bound (I32)
  Reg t0_reg_{};       ///< grid-stride base work item
  int coarsen_ = 1;    ///< SC x (UIF when no unrollable serial loop)
};

// ------------------------------------------------------------------ ints

Operand Lowering::lower_int(const IntExprPtr& e) {
  if (!e) throw Error("lower_int: null expression");
  // Constant folding: any fully constant subtree becomes an immediate.
  if (const auto lf = dsl::linearize(e); lf && lf->is_constant())
    return Operand::imm_i(lf->constant);

  switch (e->kind) {
    case dsl::IntExpr::Kind::Const:
      return Operand::imm_i(e->value);
    case dsl::IntExpr::Kind::Var: {
      const auto it = int_vars_.find(e->var);
      if (it == int_vars_.end())
        throw Error("lower_int: unbound variable '" + e->var + "'");
      return Operand(it->second);
    }
    case dsl::IntExpr::Kind::Binary:
      break;
  }

  const Operand a = lower_int(e->lhs);
  const Operand b = lower_int(e->rhs);
  const auto is_imm = [](const Operand& o, std::int64_t v) {
    return o.kind() == Operand::Kind::ImmI && o.imm_i() == v;
  };
  // Identity peepholes (the real toolchain folds these too).
  if (e->op == IntOp::Add) {
    if (is_imm(a, 0)) return b;
    if (is_imm(b, 0)) return a;
  }
  if (e->op == IntOp::Sub && is_imm(b, 0)) return a;
  if (e->op == IntOp::Mul) {
    if (is_imm(a, 0) || is_imm(b, 0)) return Operand::imm_i(0);
    if (is_imm(a, 1)) return b;
    if (is_imm(b, 1)) return a;
  }
  const Reg dst = fresh(Type::I32);
  switch (e->op) {
    case IntOp::Add:
      emit(make_binary(Opcode::IADD, dst, a, b));
      return Operand(dst);
    case IntOp::Sub:
      emit(make_binary(Opcode::ISUB, dst, a, b));
      return Operand(dst);
    case IntOp::Mul: {
      // a*b + 0 patterns collapse into IMAD at the Add level; plain mul:
      emit(make_binary(Opcode::IMUL, dst, a, b));
      return Operand(dst);
    }
    case IntOp::Min:
      emit(make_binary(Opcode::IMIN, dst, a, b));
      return Operand(dst);
    case IntOp::Max:
      emit(make_binary(Opcode::IMAX, dst, a, b));
      return Operand(dst);
    case IntOp::Div:
    case IntOp::Mod: {
      if (b.kind() != Operand::Kind::ImmI)
        throw ConfigError("division/modulo requires a constant divisor");
      const std::int64_t d = b.imm_i();
      if (!is_pow2(d))
        throw ConfigError(
            "division/modulo divisor must be a power of two (got " +
            std::to_string(d) + ")");
      if (e->op == IntOp::Div) {
        emit(make_binary(Opcode::SHR, dst, a, Operand::imm_i(log2i(d))));
      } else {
        emit(make_binary(Opcode::AND, dst, a, Operand::imm_i(d - 1)));
      }
      return Operand(dst);
    }
  }
  throw Error("lower_int: unreachable");
}

Reg Lowering::materialize(Operand op, Type t) {
  if (op.is_reg()) return op.reg();
  const Reg r = fresh(t);
  emit(make_mov(r, op));
  return r;
}

Reg Lowering::lower_int_reg(const IntExprPtr& e) {
  return materialize(lower_int(e), Type::I32);
}

// ---------------------------------------------------------------- floats

Operand Lowering::lower_float_operand(const dsl::FloatExprPtr& e) {
  if (e->kind == dsl::FloatExpr::Kind::Const) return Operand::imm_f(e->value);
  return Operand(lower_float(e));
}

Reg Lowering::lower_special(FloatUnOp op, Reg x) {
  const bool fast = p_.fast_math;
  const Reg dst = fresh(Type::F32);
  auto refine = [&](Reg v) {
    // Precision-refinement step of the precise sequences. Modeled as
    // identity arithmetic so numeric results stay variant-independent
    // while the instruction count matches the longer precise sequence.
    const Reg t1 = fresh(Type::F32);
    emit(make_binary(Opcode::FMUL, t1, Operand(v), Operand::imm_f(1.0)));
    const Reg t2 = fresh(Type::F32);
    emit(make_binary(Opcode::FADD, t2, Operand(t1), Operand::imm_f(0.0)));
    return t2;
  };

  constexpr double kLog2E = 1.4426950408889634074;
  constexpr double kLn2 = 0.69314718055994530942;

  switch (op) {
    case FloatUnOp::Exp: {
      const Reg t = fresh(Type::F32);
      emit(make_binary(Opcode::FMUL, t, Operand(x), Operand::imm_f(kLog2E)));
      emit(make_unary(Opcode::EX2, dst, Operand(t)));
      return fast ? dst : refine(dst);
    }
    case FloatUnOp::Log: {
      const Reg t = fresh(Type::F32);
      emit(make_unary(Opcode::LG2, t, Operand(x)));
      emit(make_binary(Opcode::FMUL, dst, Operand(t), Operand::imm_f(kLn2)));
      return fast ? dst : refine(dst);
    }
    case FloatUnOp::Sqrt: {
      if (fast) {
        emit(make_unary(Opcode::SQRT, dst, Operand(x)));
        return dst;
      }
      const Reg r = fresh(Type::F32);
      emit(make_unary(Opcode::RSQRT, r, Operand(x)));
      emit(make_binary(Opcode::FMUL, dst, Operand(x), Operand(r)));
      return refine(dst);
    }
    case FloatUnOp::Rsqrt:
      emit(make_unary(Opcode::RSQRT, dst, Operand(x)));
      return fast ? dst : refine(dst);
    case FloatUnOp::Rcp:
      emit(make_unary(Opcode::RCP, dst, Operand(x)));
      return fast ? dst : refine(dst);
    case FloatUnOp::Sin:
      emit(make_unary(Opcode::SIN, dst, Operand(x)));
      return fast ? dst : refine(dst);
    case FloatUnOp::Cos:
      emit(make_unary(Opcode::COS, dst, Operand(x)));
      return fast ? dst : refine(dst);
    case FloatUnOp::Neg:
      emit(make_binary(Opcode::FSUB, dst, Operand::imm_f(0.0), Operand(x)));
      return dst;
    case FloatUnOp::Abs: {
      const Reg n = fresh(Type::F32);
      emit(make_binary(Opcode::FSUB, n, Operand::imm_f(0.0), Operand(x)));
      emit(make_binary(Opcode::FMAX, dst, Operand(x), Operand(n)));
      return dst;
    }
  }
  throw Error("lower_special: unreachable");
}

Reg Lowering::lower_float(const dsl::FloatExprPtr& e) {
  if (!e) throw Error("lower_float: null expression");
  switch (e->kind) {
    case dsl::FloatExpr::Kind::Const: {
      const Reg r = fresh(Type::F32);
      emit(make_mov(r, Operand::imm_f(e->value)));
      return r;
    }
    case dsl::FloatExpr::Kind::Ref: {
      const auto it = float_vars_.find(e->name);
      if (it == float_vars_.end())
        throw Error("lower_float: unbound variable '" + e->name + "'");
      return it->second;
    }
    case dsl::FloatExpr::Kind::Load: {
      const Address a = address_of(e->name, e->index);
      const Reg dst = fresh(Type::F32);
      emit(make_ld(MemSpace::Global, dst, a.reg, a.offset, a.hint));
      return dst;
    }
    case dsl::FloatExpr::Kind::Unary:
      return lower_special(e->uop, lower_float(e->lhs));
    case dsl::FloatExpr::Kind::Binary:
      break;
  }

  // FMA fusion: a*b + c and c + a*b become one FFMA (nvcc contracts by
  // default).
  if (e->bop == FloatBinOp::Add) {
    const dsl::FloatExprPtr* mul = nullptr;
    const dsl::FloatExprPtr* other = nullptr;
    if (e->lhs->kind == dsl::FloatExpr::Kind::Binary &&
        e->lhs->bop == FloatBinOp::Mul) {
      mul = &e->lhs;
      other = &e->rhs;
    } else if (e->rhs->kind == dsl::FloatExpr::Kind::Binary &&
               e->rhs->bop == FloatBinOp::Mul) {
      mul = &e->rhs;
      other = &e->lhs;
    }
    if (mul) {
      const Operand a = lower_float_operand((*mul)->lhs);
      const Operand b = lower_float_operand((*mul)->rhs);
      const Operand c = lower_float_operand(*other);
      const Reg dst = fresh(Type::F32);
      emit(make_ternary(Opcode::FFMA, dst, a, b, c));
      return dst;
    }
  }

  if (e->bop == FloatBinOp::Div) {
    const Operand a = lower_float_operand(e->lhs);
    const Reg b = lower_float(e->rhs);
    const Reg r = lower_special(FloatUnOp::Rcp, b);
    const Reg dst = fresh(Type::F32);
    emit(make_binary(Opcode::FMUL, dst, a, Operand(r)));
    return dst;
  }

  const Operand a = lower_float_operand(e->lhs);
  const Operand b = lower_float_operand(e->rhs);
  const Reg dst = fresh(Type::F32);
  switch (e->bop) {
    case FloatBinOp::Add: emit(make_binary(Opcode::FADD, dst, a, b)); break;
    case FloatBinOp::Sub: emit(make_binary(Opcode::FSUB, dst, a, b)); break;
    case FloatBinOp::Mul: emit(make_binary(Opcode::FMUL, dst, a, b)); break;
    case FloatBinOp::Min: emit(make_binary(Opcode::FMIN, dst, a, b)); break;
    case FloatBinOp::Max: emit(make_binary(Opcode::FMAX, dst, a, b)); break;
    case FloatBinOp::Div: break;  // handled above
  }
  return dst;
}

// ------------------------------------------------------------ conditions

Reg Lowering::lower_cond(const dsl::CondPtr& c) {
  if (!c) throw Error("lower_cond: null condition");
  switch (c->kind) {
    case dsl::Cond::Kind::Cmp: {
      const Operand a = lower_int(c->a);
      const Operand b = lower_int(c->b);
      const Reg p = fresh(Type::Pred);
      CmpOp op{};
      switch (c->cmp) {
        case dsl::CmpKind::EQ: op = CmpOp::EQ; break;
        case dsl::CmpKind::NE: op = CmpOp::NE; break;
        case dsl::CmpKind::LT: op = CmpOp::LT; break;
        case dsl::CmpKind::LE: op = CmpOp::LE; break;
        case dsl::CmpKind::GT: op = CmpOp::GT; break;
        case dsl::CmpKind::GE: op = CmpOp::GE; break;
      }
      emit(make_setp(op, p, a, b, Type::I32));
      return p;
    }
    case dsl::Cond::Kind::And:
    case dsl::Cond::Kind::Or: {
      const Reg a = lower_cond(c->lhs);
      const Reg b = lower_cond(c->rhs);
      const Reg p = fresh(Type::Pred);
      emit(make_binary(c->kind == dsl::Cond::Kind::And ? Opcode::AND
                                                       : Opcode::OR,
                       p, Operand(a), Operand(b)));
      return p;
    }
    case dsl::Cond::Kind::Not: {
      const Reg a = lower_cond(c->lhs);
      const Reg p = fresh(Type::Pred);
      emit(make_unary(Opcode::NOT, p, Operand(a)));
      return p;
    }
  }
  throw Error("lower_cond: unreachable");
}

// ---------------------------------------------------------------- memory

Reg Lowering::param_base(const std::string& array) {
  const auto it = param_regs_.find(array);
  if (it != param_regs_.end()) return it->second;
  throw Error("param_base: array '" + array + "' not preloaded");
}

std::optional<double> Lowering::lane_derivative(const IntExprPtr& e) const {
  if (!e) return std::nullopt;
  switch (e->kind) {
    case dsl::IntExpr::Kind::Const:
      return 0.0;
    case dsl::IntExpr::Kind::Var: {
      const auto it = lane_coeff_.find(e->var);
      if (it == lane_coeff_.end()) return 0.0;  // loop vars etc.
      return it->second;
    }
    case dsl::IntExpr::Kind::Binary: {
      const auto a = lane_derivative(e->lhs);
      const auto b = lane_derivative(e->rhs);
      const auto lconst = dsl::linearize(e->lhs);
      const auto rconst = dsl::linearize(e->rhs);
      const bool lhs_const = lconst && lconst->is_constant();
      const bool rhs_const = rconst && rconst->is_constant();
      switch (e->op) {
        case IntOp::Add:
          if (a && b) return *a + *b;
          return std::nullopt;
        case IntOp::Sub:
          if (a && b) return *a - *b;
          return std::nullopt;
        case IntOp::Mul:
          if (rhs_const && a) return *a * static_cast<double>(rconst->constant);
          if (lhs_const && b) return *b * static_cast<double>(lconst->constant);
          return std::nullopt;
        case IntOp::Div:
          if (rhs_const && a && rconst->constant != 0)
            return *a / static_cast<double>(rconst->constant);
          return std::nullopt;
        case IntOp::Mod:
          // Within a modulus group the derivative is unchanged; wraps are
          // rare enough for a coalescing *hint*.
          return a;
        case IntOp::Min:
        case IntOp::Max:
          // Clamp almost never active for in-range indices.
          return a;
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

AccessHint Lowering::hint_for(const IntExprPtr& index) const {
  AccessHint h;
  const auto d = lane_derivative(index);
  if (d.has_value()) {
    const double bytes = *d * kElemBytes;
    if (std::abs(bytes) < 0.5) {
      h.uniform = true;
      h.lane_stride_bytes = 0;
    } else {
      h.lane_stride_bytes = static_cast<std::int64_t>(std::llround(bytes));
    }
  } else {
    // Unknown: assume fully scattered (one transaction per lane).
    h.lane_stride_bytes = kSegmentBytes;
  }
  // Serial stride with respect to the innermost active loop.
  if (!loop_stack_.empty()) {
    if (const auto lf = dsl::linearize(index)) {
      h.serial_stride_bytes =
          lf->coeff(loop_stack_.back().var) * kElemBytes;
    } else {
      h.serial_stride_bytes = kElemBytes;  // recomputed index, assume walk
    }
  }
  return h;
}

Lowering::Address Lowering::address_of(const std::string& array,
                                       const IntExprPtr& index) {
  Address out;
  out.hint = hint_for(index);
  const auto lf = dsl::linearize(index);

  if (lf && lf->is_constant()) {
    // Constant index: address directly off the parameter base register.
    out.reg = param_base(array);
    out.offset = lf->constant * kElemBytes;
    return out;
  }

  if (lf) {
    // Stream lookup (innermost first): exact coefficient match.
    const std::string sig = array + "|" + coeff_signature(*lf);
    for (auto it = loop_stack_.rbegin(); it != loop_stack_.rend(); ++it) {
      for (const Stream& s : it->streams) {
        if (s.signature != sig) continue;
        out.reg = s.addr;
        out.offset = (lf->constant - s.const0 +
                      s.coeff_loopvar * it->copy) *
                     kElemBytes;
        return out;
      }
      // Only the innermost loop's streams apply while inside it: an outer
      // stream's running address does not account for inner-loop motion.
      break;
    }
    // Scoped address cache for loop-free regions.
    if (const auto it = addr_cache_.find(sig); it != addr_cache_.end()) {
      out.reg = it->second.first;
      out.offset = (lf->constant - it->second.second) * kElemBytes;
      return out;
    }
    const Reg idx = lower_int_reg(index);
    const Reg wide = fresh(Type::I64);
    emit(make_cvt(wide, idx));
    const Reg addr = fresh(Type::I64);
    emit(make_ternary(Opcode::IMAD, addr, Operand(wide),
                      Operand::imm_i(kElemBytes),
                      Operand(param_base(array))));
    addr_cache_[sig] = {addr, lf->constant};
    out.reg = addr;
    out.offset = 0;
    return out;
  }

  // Non-affine: recompute the address from scratch (matVec2D's cyclic
  // wrap lands here every iteration — the intensity-raising path).
  const Reg idx = lower_int_reg(index);
  const Reg wide = fresh(Type::I64);
  emit(make_cvt(wide, idx));
  const Reg addr = fresh(Type::I64);
  emit(make_ternary(Opcode::IMAD, addr, Operand(wide),
                    Operand::imm_i(kElemBytes),
                    Operand(param_base(array))));
  out.reg = addr;
  out.offset = 0;
  return out;
}

// ------------------------------------------------------------ statements

void Lowering::lower_stmt(const dsl::StmtPtr& s) {
  if (!s) return;
  switch (s->kind) {
    case dsl::Stmt::Kind::Seq:
      for (const auto& child : s->children) lower_stmt(child);
      return;
    case dsl::Stmt::Kind::LetInt: {
      const Reg r = lower_int_reg(s->int_expr);
      int_vars_[s->name] = r;
      lane_coeff_[s->name] = lane_derivative(s->int_expr);
      return;
    }
    case dsl::Stmt::Kind::LetFloat: {
      float_vars_[s->name] = lower_float(s->float_expr);
      return;
    }
    case dsl::Stmt::Kind::Accum: {
      const auto it = float_vars_.find(s->name);
      if (it == float_vars_.end())
        throw Error("accum into unbound variable '" + s->name + "'");
      const Reg acc = it->second;
      // acc = acc + a*b fuses to FFMA.
      if (s->accum_op == FloatBinOp::Add &&
          s->float_expr->kind == dsl::FloatExpr::Kind::Binary &&
          s->float_expr->bop == FloatBinOp::Mul) {
        const Operand a = lower_float_operand(s->float_expr->lhs);
        const Operand b = lower_float_operand(s->float_expr->rhs);
        emit(make_ternary(Opcode::FFMA, acc, a, b, Operand(acc)));
        return;
      }
      const Operand v = lower_float_operand(s->float_expr);
      Opcode op{};
      switch (s->accum_op) {
        case FloatBinOp::Add: op = Opcode::FADD; break;
        case FloatBinOp::Sub: op = Opcode::FSUB; break;
        case FloatBinOp::Mul: op = Opcode::FMUL; break;
        case FloatBinOp::Min: op = Opcode::FMIN; break;
        case FloatBinOp::Max: op = Opcode::FMAX; break;
        case FloatBinOp::Div:
          throw ConfigError("accumulating division is not supported");
      }
      emit(make_binary(op, acc, Operand(acc), v));
      return;
    }
    case dsl::Stmt::Kind::Store: {
      const Operand v = lower_float_operand(s->float_expr);
      const Address a = address_of(s->name, s->int_expr);
      emit(make_st(MemSpace::Global, a.reg, v, a.offset, a.hint));
      return;
    }
    case dsl::Stmt::Kind::AtomicAdd: {
      const Operand v = lower_float_operand(s->float_expr);
      const Address a = address_of(s->name, s->int_expr);
      Instruction ins;
      ins.op = Opcode::ATOM_ADD;
      ins.type = Type::F32;
      ins.space = MemSpace::Global;
      ins.srcs = {Operand(a.reg), v};
      ins.offset = a.offset;
      ins.access = a.hint;
      emit(std::move(ins));
      return;
    }
    case dsl::Stmt::Kind::For:
      lower_for(*s);
      return;
    case dsl::Stmt::Kind::If:
      lower_if(*s);
      return;
  }
}

void Lowering::lower_loop_body_copies(
    const dsl::Stmt& loop, std::size_t loop_index, int copies,
    std::map<std::string, std::vector<Reg>>* split_accs) {
  // Copy the immutable fields once; the stack element itself is accessed
  // by index because lower_stmt below may grow loop_stack_.
  const std::string var = loop_stack_[loop_index].var;
  const Reg counter = loop_stack_[loop_index].counter;
  for (int u = 0; u < copies; ++u) {
    loop_stack_[loop_index].copy = u;
    const Scope saved = snapshot();
    // The loop variable's runtime value for this copy, materialized only
    // on demand (non-affine index arithmetic needs it; streams do not).
    if (u == 0) {
      int_vars_[var] = counter;
    } else {
      const Reg v = fresh(Type::I32);
      emit(make_binary(Opcode::IADD, v, Operand(counter),
                       Operand::imm_i(u)));
      int_vars_[var] = v;
    }
    lane_coeff_[var] = 0.0;
    if (split_accs) {
      for (auto& [name, regs] : *split_accs)
        float_vars_[name] = regs[static_cast<std::size_t>(u) % regs.size()];
    }
    lower_stmt(loop.body);
    restore(saved);
  }
  loop_stack_[loop_index].copy = 0;
}

namespace {

/// Collect names of float accumulators updated with Accum(Add) in a
/// statement tree (candidates for accumulator splitting under fast-math).
void collect_add_accumulators(const dsl::StmtPtr& s,
                              std::vector<std::string>& out) {
  if (!s) return;
  switch (s->kind) {
    case dsl::Stmt::Kind::Seq:
      for (const auto& c : s->children) collect_add_accumulators(c, out);
      return;
    case dsl::Stmt::Kind::Accum:
      if (s->accum_op == FloatBinOp::Add &&
          std::find(out.begin(), out.end(), s->name) == out.end())
        out.push_back(s->name);
      return;
    case dsl::Stmt::Kind::For:
      collect_add_accumulators(s->body, out);
      return;
    case dsl::Stmt::Kind::If:
      collect_add_accumulators(s->then_branch, out);
      collect_add_accumulators(s->else_branch, out);
      return;
    default:
      return;
  }
}

/// Collect (array, index) pairs from loads/stores/atomics in a tree.
void collect_accesses(
    const dsl::StmtPtr& s,
    std::vector<std::pair<std::string, IntExprPtr>>& out);

void collect_accesses_expr(
    const dsl::FloatExprPtr& e,
    std::vector<std::pair<std::string, IntExprPtr>>& out) {
  if (!e) return;
  if (e->kind == dsl::FloatExpr::Kind::Load)
    out.emplace_back(e->name, e->index);
  collect_accesses_expr(e->lhs, out);
  collect_accesses_expr(e->rhs, out);
}

void collect_accesses(
    const dsl::StmtPtr& s,
    std::vector<std::pair<std::string, IntExprPtr>>& out) {
  if (!s) return;
  collect_accesses_expr(s->float_expr, out);
  if (s->kind == dsl::Stmt::Kind::Store ||
      s->kind == dsl::Stmt::Kind::AtomicAdd)
    out.emplace_back(s->name, s->int_expr);
  for (const auto& c : s->children) collect_accesses(c, out);
  collect_accesses(s->body, out);
  collect_accesses(s->then_branch, out);
  collect_accesses(s->else_branch, out);
}

}  // namespace

void Lowering::lower_for(const dsl::Stmt& s) {
  const std::int64_t trip = s.hi - s.lo;
  if (trip <= 0) return;

  const int uif = (s.unrollable && loop_stack_.empty()) ? p_.unroll : 1;
  const std::int64_t main_iters = trip / uif;
  const std::int64_t remainder = trip % uif;

  LoopCtx lc;
  lc.var = s.name;
  lc.unroll = uif;
  lc.counter = fresh(Type::I32);
  emit(make_mov(lc.counter, Operand::imm_i(s.lo)));

  // ---- induction-variable streams (strength reduction)
  std::vector<std::pair<std::string, IntExprPtr>> accesses;
  collect_accesses(s.body, accesses);
  for (const auto& [array, index] : accesses) {
    const auto lf = dsl::linearize(index);
    if (!lf) continue;  // non-affine: recomputed per iteration
    // Every referenced variable must already be bound (rules out indices
    // that depend on deeper, not-yet-entered loops).
    bool bound = true;
    for (const auto& [var, coeff] : lf->coeffs) {
      (void)coeff;
      if (var != s.name && int_vars_.find(var) == int_vars_.end())
        bound = false;
    }
    if (!bound) continue;
    const std::string sig = array + "|" + coeff_signature(*lf);
    bool known = false;
    for (const Stream& st : lc.streams)
      if (st.signature == sig) known = true;
    if (known) continue;
    // Materialize the address at var = lo.
    const IntExprPtr at_lo =
        dsl::substitute(index, s.name, dsl::iconst(s.lo));
    const Address base = address_of(array, at_lo);
    Stream st;
    st.array = array;
    st.signature = sig;
    st.coeff_loopvar = lf->coeff(s.name);
    // Offset accounting: an access with linear constant c' at unrolled
    // copy u resolves to offset (c' - const0 + coeff*u) * 4 against the
    // stream's running address, which the latch advances by coeff*uif*4
    // per iteration. With the running address initialized at var = lo,
    // const0 is exactly this creating access's linear constant.
    st.const0 = lf->constant;
    if (st.coeff_loopvar != 0) {
      // Private running pointer so latch increments leave the scoped
      // address cache untouched.
      const Reg run = fresh(Type::I64);
      emit(make_binary(Opcode::IADD, run, Operand(base.reg),
                       Operand::imm_i(base.offset)));
      st.addr = run;
    } else {
      st.addr = base.reg;
      st.const0 = lf->constant - base.offset / kElemBytes;
    }
    lc.streams.push_back(st);
  }

  // ---- accumulator splitting under fast-math
  std::map<std::string, std::vector<Reg>> split_accs;
  if (p_.fast_math && uif > 1) {
    std::vector<std::string> names;
    collect_add_accumulators(s.body, names);
    for (const std::string& name : names) {
      const auto it = float_vars_.find(name);
      if (it == float_vars_.end()) continue;  // body-local accumulator
      std::vector<Reg> regs{it->second};
      for (int u = 1; u < uif; ++u) {
        const Reg partial = fresh(Type::F32);
        emit(make_mov(partial, Operand::imm_f(0.0)));
        regs.push_back(partial);
      }
      split_accs[name] = std::move(regs);
    }
  }

  loop_stack_.push_back(lc);
  const double parent_freq = cur_freq_;
  const BlockFreqModel parent_fexpr = cur_fexpr_;

  // ---- main unrolled loop
  if (main_iters > 0) {
    const std::string l_main = fresh_label("L" + s.name);
    cur_freq_ = parent_freq * static_cast<double>(main_iters);
    cur_fexpr_ = parent_fexpr;
    cur_fexpr_.factors.push_back(static_cast<double>(main_iters));
    start_block(l_main, cur_freq_);
    lower_loop_body_copies(s, loop_stack_.size() - 1, uif,
                           split_accs.empty() ? nullptr : &split_accs);
    // Latch: advance streams and counter, test, branch.
    for (Stream& st : loop_stack_.back().streams) {
      if (st.coeff_loopvar == 0) continue;
      emit(make_binary(Opcode::IADD, st.addr, Operand(st.addr),
                       Operand::imm_i(st.coeff_loopvar * kElemBytes * uif)));
    }
    emit(make_binary(Opcode::IADD, loop_stack_.back().counter,
                     Operand(loop_stack_.back().counter),
                     Operand::imm_i(uif)));
    const Reg p = fresh(Type::Pred);
    emit(make_setp(CmpOp::LT, p, Operand(loop_stack_.back().counter),
                   Operand::imm_i(s.lo + main_iters * uif), Type::I32));
    emit(make_bra_if(p, false, l_main));
  }

  // ---- combine split partial sums
  cur_freq_ = parent_freq;
  cur_fexpr_ = parent_fexpr;
  if (main_iters > 0 && !split_accs.empty()) {
    start_block(fresh_label("L" + s.name + "_epi"), cur_freq_);
  }
  for (const auto& [name, regs] : split_accs) {
    const Reg acc = regs[0];
    for (std::size_t u = 1; u < regs.size(); ++u)
      emit(make_binary(Opcode::FADD, acc, Operand(acc), Operand(regs[u])));
    float_vars_[name] = acc;
  }

  // ---- remainder loop (not unrolled)
  if (remainder > 0) {
    const std::string l_rem = fresh_label("L" + s.name + "_rem");
    cur_freq_ = parent_freq * static_cast<double>(remainder);
    cur_fexpr_ = parent_fexpr;
    cur_fexpr_.factors.push_back(static_cast<double>(remainder));
    start_block(l_rem, cur_freq_);
    // Reuse the same streams with unroll factor 1. The reference is
    // taken only AFTER lowering the body: nested loops inside it can
    // reallocate loop_stack_.
    loop_stack_.back().unroll = 1;
    lower_loop_body_copies(s, loop_stack_.size() - 1, 1, nullptr);
    LoopCtx& top = loop_stack_.back();
    for (Stream& st : top.streams) {
      if (st.coeff_loopvar == 0) continue;
      emit(make_binary(Opcode::IADD, st.addr, Operand(st.addr),
                       Operand::imm_i(st.coeff_loopvar * kElemBytes)));
    }
    emit(make_binary(Opcode::IADD, top.counter, Operand(top.counter),
                     Operand::imm_i(1)));
    const Reg p = fresh(Type::Pred);
    emit(make_setp(CmpOp::LT, p, Operand(top.counter),
                   Operand::imm_i(s.hi), Type::I32));
    emit(make_bra_if(p, false, l_rem));
  }

  loop_stack_.pop_back();
  cur_freq_ = parent_freq;
  cur_fexpr_ = parent_fexpr;
  start_block(fresh_label("L" + s.name + "_end"), cur_freq_);
}

void Lowering::lower_if(const dsl::Stmt& s) {
  const Reg p = lower_cond(s.cond);
  const std::string l_else = fresh_label("Lelse");
  const std::string l_join = fresh_label("Ljoin");
  const bool has_else = s.else_branch != nullptr;
  const double parent_freq = cur_freq_;
  const BlockFreqModel parent_fexpr = cur_fexpr_;

  emit(make_bra_if(p, /*negated=*/true, has_else ? l_else : l_join));

  cur_freq_ = parent_freq * s.then_prob;
  cur_fexpr_ = parent_fexpr;
  cur_fexpr_.factors.push_back(s.then_prob);
  cur_fexpr_.exact = false;  // branch probabilities are estimates
  start_block(fresh_label("Lthen"), cur_freq_);
  {
    const Scope saved = snapshot();
    lower_stmt(s.then_branch);
    restore(saved);
  }
  if (has_else) {
    emit(make_bra(l_join));
    cur_freq_ = parent_freq * (1.0 - s.then_prob);
    cur_fexpr_ = parent_fexpr;
    cur_fexpr_.factors.push_back(1.0 - s.then_prob);
    cur_fexpr_.exact = false;  // branch probabilities are estimates
    start_block(l_else, cur_freq_);
    const Scope saved = snapshot();
    lower_stmt(s.else_branch);
    restore(saved);
  }
  cur_freq_ = parent_freq;
  cur_fexpr_ = parent_fexpr;
  start_block(l_join, cur_freq_);
}

// -------------------------------------------------------------- skeleton

void Lowering::collect_used_arrays_expr(const dsl::FloatExprPtr& e) {
  if (!e) return;
  if (e->kind == dsl::FloatExpr::Kind::Load &&
      std::find(used_arrays_.begin(), used_arrays_.end(), e->name) ==
          used_arrays_.end())
    used_arrays_.push_back(e->name);
  collect_used_arrays_expr(e->lhs);
  collect_used_arrays_expr(e->rhs);
}

void Lowering::collect_used_arrays(const dsl::StmtPtr& s) {
  if (!s) return;
  collect_used_arrays_expr(s->float_expr);
  if ((s->kind == dsl::Stmt::Kind::Store ||
       s->kind == dsl::Stmt::Kind::AtomicAdd) &&
      std::find(used_arrays_.begin(), used_arrays_.end(), s->name) ==
          used_arrays_.end())
    used_arrays_.push_back(s->name);
  for (const auto& c : s->children) collect_used_arrays(c);
  collect_used_arrays(s->body);
  collect_used_arrays(s->then_branch);
  collect_used_arrays(s->else_branch);
}

void Lowering::emit_prologue() {
  // Parameters: used arrays in workload declaration order, then the
  // domain bound.
  collect_used_arrays(stage_.body);
  std::vector<std::string> ordered;
  for (const auto& a : wl_.arrays)
    if (std::find(used_arrays_.begin(), used_arrays_.end(), a.name) !=
        used_arrays_.end())
      ordered.push_back(a.name);
  used_arrays_ = ordered;

  for (const std::string& a : used_arrays_) {
    const auto idx = static_cast<std::uint16_t>(kernel_.params.size());
    kernel_.params.push_back(Param{a, Type::F32, /*is_pointer=*/true});
    param_index_[a] = idx;
  }
  const auto n_idx = static_cast<std::uint16_t>(kernel_.params.size());
  kernel_.params.push_back(Param{"n_items", Type::I32, false});

  cur_fexpr_ = BlockFreqModel{};  // entry runs once regardless of launch
  start_block("entry", 1.0);
  for (const std::string& a : used_arrays_) {
    const Reg base = fresh(Type::I64);
    emit(make_ld_param(base, param_index_[a]));
    param_regs_[a] = base;
  }
  n_reg_ = fresh(Type::I32);
  emit(make_ld_param(n_reg_, n_idx));

  const Reg tid = fresh(Type::I32);
  emit(make_mov(tid, Operand::special(SpecialReg::TidX)));
  const Reg ntid = fresh(Type::I32);
  emit(make_mov(ntid, Operand::special(SpecialReg::NTidX)));
  const Reg ctaid = fresh(Type::I32);
  emit(make_mov(ctaid, Operand::special(SpecialReg::CTAidX)));
  const Reg nctaid = fresh(Type::I32);
  emit(make_mov(nctaid, Operand::special(SpecialReg::NCTAidX)));

  const Reg gid = fresh(Type::I32);
  emit(make_ternary(Opcode::IMAD, gid, Operand(ctaid), Operand(ntid),
                    Operand(tid)));
  const Reg total = fresh(Type::I32);
  emit(make_binary(Opcode::IMUL, total, Operand(ntid), Operand(nctaid)));

  t0_reg_ = fresh(Type::I32);
  Reg stride = fresh(Type::I32);
  if (coarsen_ > 1) {
    emit(make_binary(Opcode::IMUL, t0_reg_, Operand(gid),
                     Operand::imm_i(coarsen_)));
    emit(make_binary(Opcode::IMUL, stride, Operand(total),
                     Operand::imm_i(coarsen_)));
  } else {
    emit(make_mov(t0_reg_, Operand(gid)));
    emit(make_mov(stride, Operand(total)));
  }
  // Stash the stride register in int_vars_ under a reserved name so
  // emit_grid_stride can find it.
  int_vars_["$stride"] = stride;

  const Reg p = fresh(Type::Pred);
  emit(make_setp(CmpOp::LT, p, Operand(t0_reg_), Operand(n_reg_),
                 Type::I32));
  emit(make_bra_if(p, /*negated=*/true, "done"));
}

void Lowering::emit_grid_stride() {
  const std::int64_t domain = stage_.domain;
  const auto total_threads = static_cast<double>(
      static_cast<std::int64_t>(p_.threads_per_block) * p_.block_count);
  const double bases = std::ceil(static_cast<double>(domain) /
                                 static_cast<double>(coarsen_));
  const double outer_freq = bases / total_threads;

  cur_freq_ = outer_freq;
  cur_fexpr_ = BlockFreqModel{true, bases, {}};
  const std::string l_loop = "gs_loop";
  start_block(l_loop, cur_freq_);

  lane_coeff_[stage_.work_item_var] = static_cast<double>(coarsen_);

  for (int c = 0; c < coarsen_; ++c) {
    // Average per-thread executions of copy c: the number of grid-stride
    // bases for which base + c < domain, spread over all threads.
    const double count_c =
        c < domain
            ? std::floor(static_cast<double>(domain - c - 1) /
                         static_cast<double>(coarsen_)) +
                  1.0
            : 0.0;
    const double copy_freq = count_c / total_threads;

    std::string l_skip;
    Reg t;
    if (c == 0) {
      t = t0_reg_;  // copy 0 is guarded by the loop condition itself
    } else {
      t = fresh(Type::I32);
      emit(make_binary(Opcode::IADD, t, Operand(t0_reg_),
                       Operand::imm_i(c)));
      const Reg p = fresh(Type::Pred);
      emit(make_setp(CmpOp::LT, p, Operand(t), Operand(n_reg_),
                     Type::I32));
      l_skip = fresh_label("gs_skip");
      emit(make_bra_if(p, /*negated=*/true, l_skip));
      cur_freq_ = copy_freq;
      cur_fexpr_ = BlockFreqModel{true, count_c, {}};
      start_block(fresh_label("gs_copy"), cur_freq_);
    }

    const Scope saved = snapshot();
    int_vars_[stage_.work_item_var] = t;
    lane_coeff_[stage_.work_item_var] = static_cast<double>(coarsen_);
    lower_stmt(stage_.body);
    restore(saved);

    if (c != 0) {
      cur_freq_ = outer_freq;
      cur_fexpr_ = BlockFreqModel{true, bases, {}};
      start_block(l_skip, cur_freq_);
    }
  }

  // Latch.
  emit(make_binary(Opcode::IADD, t0_reg_, Operand(t0_reg_),
                   Operand(int_vars_["$stride"])));
  const Reg p = fresh(Type::Pred);
  emit(make_setp(CmpOp::LT, p, Operand(t0_reg_), Operand(n_reg_),
                 Type::I32));
  emit(make_bra_if(p, false, l_loop));

  cur_freq_ = 1.0;
  cur_fexpr_ = BlockFreqModel{};
  start_block("done", 1.0);
  emit(make_exit());
}

LoweredStage Lowering::run() {
  kernel_.name = stage_.name;

  // UIF applies to the innermost unrollable serial loop when one exists;
  // otherwise it unrolls (coarsens) the grid-stride loop itself.
  bool has_unrollable_loop = false;
  {
    std::vector<const dsl::Stmt*> work{stage_.body.get()};
    while (!work.empty()) {
      const dsl::Stmt* s = work.back();
      work.pop_back();
      if (s == nullptr) continue;
      if (s->kind == dsl::Stmt::Kind::For && s->unrollable)
        has_unrollable_loop = true;
      for (const auto& c : s->children) work.push_back(c.get());
      if (s->body) work.push_back(s->body.get());
      if (s->then_branch) work.push_back(s->then_branch.get());
      if (s->else_branch) work.push_back(s->else_branch.get());
    }
  }
  coarsen_ = p_.stream_chunk * (has_unrollable_loop ? 1 : p_.unroll);
  coarsen_ = std::max(1, coarsen_);

  emit_prologue();
  emit_grid_stride();

  // Structural lowering can leave empty join/skip blocks (labels that
  // received no instructions before the next label opened). Redirect
  // branches to the next non-empty block and drop the empties.
  {
    std::map<std::string, std::string> remap;
    for (std::size_t i = 0; i < kernel_.blocks.size(); ++i) {
      if (!kernel_.blocks[i].body.empty()) continue;
      std::size_t j = i + 1;
      while (j < kernel_.blocks.size() && kernel_.blocks[j].body.empty())
        ++j;
      if (j >= kernel_.blocks.size())
        throw Error("lowering produced a trailing empty block");
      remap[kernel_.blocks[i].label] = kernel_.blocks[j].label;
    }
    if (!remap.empty()) {
      for (BasicBlock& b : kernel_.blocks)
        for (Instruction& ins : b.body)
          if (ins.op == Opcode::BRA)
            if (const auto it = remap.find(ins.target); it != remap.end())
              ins.target = it->second;
      std::vector<BasicBlock> keep;
      std::vector<double> keep_freq;
      std::vector<BlockFreqModel> keep_fmodel;
      for (std::size_t i = 0; i < kernel_.blocks.size(); ++i) {
        if (kernel_.blocks[i].body.empty()) continue;
        keep.push_back(std::move(kernel_.blocks[i]));
        keep_freq.push_back(freq_[i]);
        keep_fmodel.push_back(std::move(fmodel_[i]));
      }
      kernel_.blocks = std::move(keep);
      freq_ = std::move(keep_freq);
      fmodel_ = std::move(keep_fmodel);
    }
  }

  kernel_.finalize();
  schedule_kernel(kernel_);
  kernel_.finalize();  // re-validate after scheduling

  LoweredStage out;
  out.kernel = std::move(kernel_);
  out.block_freq = std::move(freq_);
  out.freq_model = std::move(fmodel_);
  out.coarsen = coarsen_;
  out.demand = analyze_register_demand(out.kernel);
  out.launch.grid_blocks = static_cast<std::uint32_t>(p_.block_count);
  out.launch.block_threads = static_cast<std::uint32_t>(p_.threads_per_block);
  out.launch.smem_bytes = out.kernel.smem_static_bytes;
  out.launch.domain = stage_.domain;
  for (const Param& prm : out.kernel.params)
    out.param_arrays.push_back(prm.is_pointer ? prm.name : "");
  return out;
}

}  // namespace

void validate_params(const arch::GpuSpec& gpu, const TuningParams& params) {
  if (params.threads_per_block < 1 ||
      params.threads_per_block > static_cast<int>(gpu.threads_per_block))
    throw ConfigError("threads_per_block out of range for " + gpu.name);
  if (params.block_count < 1) throw ConfigError("block_count must be >= 1");
  if (params.unroll < 1) throw ConfigError("unroll must be >= 1");
  if (params.stream_chunk < 1)
    throw ConfigError("stream_chunk must be >= 1");
}

void block_freq_at(const LoweredStage& stage, const TuningParams& params,
                   std::vector<double>& out) {
  if (stage.freq_model.size() != stage.block_freq.size())
    throw Error("block_freq_at: stage carries no frequency model");
  const auto total_threads = static_cast<double>(
      static_cast<std::int64_t>(params.threads_per_block) *
      params.block_count);
  out.resize(stage.freq_model.size());
  for (std::size_t i = 0; i < stage.freq_model.size(); ++i)
    out[i] = stage.freq_model[i].at(total_threads);
}

void retarget_launch(LoweredStage& stage, const TuningParams& params) {
  block_freq_at(stage, params, stage.block_freq);
  stage.launch.grid_blocks = static_cast<std::uint32_t>(params.block_count);
  stage.launch.block_threads =
      static_cast<std::uint32_t>(params.threads_per_block);
}

Compiler::Compiler(const arch::GpuSpec& gpu, TuningParams params)
    : gpu_(&gpu), params_(params) {
  validate_params(gpu, params_);
}

LoweredWorkload Compiler::compile(const dsl::WorkloadDesc& wl) const {
  LoweredWorkload out;
  out.name = wl.name;
  out.params = params_;
  out.stages.reserve(wl.stages.size());
  for (const dsl::StageDesc& stage : wl.stages)
    out.stages.push_back(compile_stage(wl, stage));
  return out;
}

LoweredStage Compiler::compile_stage(const dsl::WorkloadDesc& wl,
                                     const dsl::StageDesc& stage) const {
  Lowering lowering(wl, stage, *gpu_, params_);
  return lowering.run();
}

std::uint32_t LoweredWorkload::regs_per_thread() const {
  std::uint32_t m = 0;
  for (const LoweredStage& s : stages)
    m = std::max(m, s.demand.regs_per_thread);
  return m;
}

std::uint32_t LoweredWorkload::smem_per_block() const {
  std::uint32_t m = 0;
  for (const LoweredStage& s : stages)
    m = std::max(m, s.launch.smem_bytes);
  return m;
}

std::size_t LoweredWorkload::instruction_count() const {
  std::size_t n = 0;
  for (const LoweredStage& s : stages) n += s.kernel.instruction_count();
  return n;
}

std::string compile_info(const LoweredStage& stage) {
  return "ptxas info: " + stage.kernel.name + ": Used " +
         std::to_string(stage.demand.regs_per_thread) +
         " registers, " + std::to_string(stage.launch.smem_bytes) +
         " bytes smem, " + std::to_string(stage.kernel.instruction_count()) +
         " instructions";
}

}  // namespace gpustatic::codegen
