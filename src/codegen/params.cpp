#include "codegen/params.hpp"

namespace gpustatic::codegen {

std::string TuningParams::to_string() const {
  std::string out = "TC=" + std::to_string(threads_per_block) +
                    " BC=" + std::to_string(block_count) +
                    " UIF=" + std::to_string(unroll) +
                    " PL=" + std::to_string(l1_pref_kb) +
                    " SC=" + std::to_string(stream_chunk) + " CFLAGS=" +
                    (fast_math ? "'-use_fast_math'" : "''");
  return out;
}

}  // namespace gpustatic::codegen
