#pragma once

#include <cstdint>
#include <string>

namespace gpustatic::codegen {

/// The autotuning feature space of Table III / Fig. 3. One TuningParams is
/// one point in the search space; the compiler specializes a workload for
/// it, the simulator measures it.
struct TuningParams {
  /// TC: threads per block, 32..1024 step 32.
  int threads_per_block = 128;
  /// BC: number of thread blocks, 24..192 step 24 (hardware-specific).
  int block_count = 56;
  /// UIF: unroll factor 1..6, applied to the innermost unrollable serial
  /// loop, or to the grid-stride loop when the kernel has none.
  int unroll = 1;
  /// PL: preferred L1 size in KB, {16, 48}. Only Fermi/Kepler have a
  /// configurable L1/shared split; later architectures ignore it.
  int l1_pref_kb = 48;
  /// SC: work items processed consecutively per thread per grid-stride
  /// step (coarsening factor), 1..5.
  int stream_chunk = 1;
  /// CFLAGS: '' vs '-use_fast_math'.
  bool fast_math = false;

  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const TuningParams&, const TuningParams&) = default;
};

/// Resolved launch geometry for one compiled stage.
struct LaunchConfig {
  std::uint32_t grid_blocks = 1;
  std::uint32_t block_threads = 32;
  std::uint32_t smem_bytes = 0;   ///< static shared memory per block
  std::int64_t domain = 0;        ///< work items the grid must cover

  [[nodiscard]] std::uint64_t total_threads() const {
    return static_cast<std::uint64_t>(grid_blocks) * block_threads;
  }
};

}  // namespace gpustatic::codegen
