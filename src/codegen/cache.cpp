#include "codegen/cache.hpp"

#include "common/failpoint.hpp"

namespace gpustatic::codegen {

std::shared_ptr<const LoweredWorkload> CompilationCache::lower(
    const TuningParams& params) {
  return lower_impl(backend_, params);
}

std::shared_ptr<const LoweredWorkload> CompilationCache::lower_as(
    const std::string& backend, const TuningParams& params) {
  if (backend == backend_.name) return lower_impl(backend_, params);
  return lower_impl(Bound(BackendRegistry::instance().get(backend)),
                    params);
}

std::shared_ptr<const LoweredWorkload> CompilationCache::lower_impl(
    const Bound& backend, const TuningParams& params) {
  // Before the cache transaction, so an injected fault stays transient:
  // it must never be memoized into the future map and poison every
  // later lookup of this key the way a real compile failure would.
  failpoint::check("codegen.compile");

  // Per-point validation happens on every lookup: TC/BC are not part of
  // the key, so an out-of-range launch must fail even when the key's
  // lowering is already cached. Validation is backend-agnostic.
  validate_params(*gpu_, params);

  const std::pair<std::string, CodegenKey> key{backend.name,
                                               CodegenKey::of(params)};
  LoweredFuture future;
  std::promise<std::shared_ptr<const LoweredWorkload>> promise;
  bool compile_here = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = entries_.find(key); it != entries_.end()) {
      ++stats_[backend.name].hits;
      future = it->second;
    } else {
      ++stats_[backend.name].misses;
      future = promise.get_future().share();
      entries_.emplace(key, future);
      compile_here = true;
    }
  }
  // The compiler runs outside the lock: distinct keys compile in
  // parallel, and hits on already-resolved keys never wait. A failed
  // compile parks its exception in the future, so this (backend, key)'s
  // every future lookup rethrows the original error (type and message)
  // — while the same key under another backend stays untouched.
  if (compile_here) {
    try {
      promise.set_value(std::make_shared<LoweredWorkload>(
          backend.impl->lower(workload_, *gpu_, params)));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

LoweredWorkload CompilationCache::compile(const TuningParams& params) {
  const std::shared_ptr<const LoweredWorkload> canonical = lower(params);
  LoweredWorkload out = *canonical;
  out.params = params;
  for (LoweredStage& stage : out.stages) retarget_launch(stage, params);
  return out;
}

CompileCacheStats CompilationCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = stats_.find(backend_.name);
  return it == stats_.end() ? CompileCacheStats{} : it->second;
}

std::map<std::string, CompileCacheStats>
CompilationCache::stats_by_backend() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace gpustatic::codegen
