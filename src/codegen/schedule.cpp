#include "codegen/schedule.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace gpustatic::codegen {

namespace {

using ptx::BasicBlock;
using ptx::Instruction;
using ptx::Opcode;
using ptx::Operand;
using ptx::Reg;
using ptx::Type;

/// Dense register key for dependence tracking.
std::uint32_t reg_key(const Reg& r) {
  return (static_cast<std::uint32_t>(r.type) << 16) | r.idx;
}

bool is_store_like(const Instruction& i) {
  return i.op == Opcode::ST || i.op == Opcode::ATOM_ADD ||
         i.op == Opcode::BAR;
}

bool is_load(const Instruction& i) { return i.op == Opcode::LD; }

void schedule_block(BasicBlock& block) {
  const std::size_t n = block.body.size();
  if (n < 3) return;

  // The terminator (if present) is pinned to the end.
  std::size_t limit = n;
  if (ptx::is_terminator(block.body.back().op)) --limit;
  if (limit < 3) return;

  // Build dependence edges among [0, limit).
  std::vector<std::vector<std::size_t>> succs(limit);
  std::vector<std::size_t> indegree(limit, 0);

  std::map<std::uint32_t, std::size_t> last_def;   // reg -> instr index
  std::map<std::uint32_t, std::vector<std::size_t>> readers_since_def;
  std::size_t last_storelike = static_cast<std::size_t>(-1);
  std::size_t last_mem = static_cast<std::size_t>(-1);

  auto add_edge = [&](std::size_t from, std::size_t to) {
    if (from == to) return;
    succs[from].push_back(to);
    ++indegree[to];
  };

  for (std::size_t i = 0; i < limit; ++i) {
    const Instruction& ins = block.body[i];

    auto read = [&](const Reg& r) {
      const auto key = reg_key(r);
      if (const auto it = last_def.find(key); it != last_def.end())
        add_edge(it->second, i);  // RAW
      readers_since_def[key].push_back(i);
    };
    auto write = [&](const Reg& r) {
      const auto key = reg_key(r);
      if (const auto it = last_def.find(key); it != last_def.end())
        add_edge(it->second, i);  // WAW
      for (const std::size_t reader : readers_since_def[key])
        add_edge(reader, i);  // WAR
      readers_since_def[key].clear();
      last_def[key] = i;
    };

    if (ins.guard) read(ins.guard->pred);
    for (const Operand& s : ins.srcs)
      if (s.is_reg()) read(s.reg());
    if (ins.dst) {
      if (ins.guard) read(*ins.dst);  // partial def reads old value
      write(*ins.dst);
    }

    if (is_load(ins)) {
      if (last_storelike != static_cast<std::size_t>(-1))
        add_edge(last_storelike, i);
      last_mem = i;
    } else if (is_store_like(ins)) {
      if (last_mem != static_cast<std::size_t>(-1)) add_edge(last_mem, i);
      if (last_storelike != static_cast<std::size_t>(-1))
        add_edge(last_storelike, i);
      last_storelike = i;
      last_mem = i;
    }
  }

  // Backward reachability: does an instruction (transitively) feed a
  // load's address? Such address arithmetic is pulled forward so that
  // independent loads batch at the top of the block.
  std::vector<bool> feeds_load(limit, false);
  for (std::size_t i = limit; i-- > 0;) {
    if (is_load(block.body[i])) continue;
    for (const std::size_t s : succs[i]) {
      if (is_load(block.body[s]) || feeds_load[s]) {
        feeds_load[i] = true;
        break;
      }
    }
  }

  // Greedy list scheduling. Priority: loads, then address arithmetic
  // feeding later loads, then the rest; ties break on the original order,
  // keeping the output deterministic.
  auto priority = [&](std::size_t i) {
    if (is_load(block.body[i])) return 0;
    if (feeds_load[i]) return 1;
    return 2;
  };

  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < limit; ++i)
    if (indegree[i] == 0) ready.push_back(i);

  std::vector<Instruction> scheduled;
  scheduled.reserve(n);
  while (!ready.empty()) {
    std::size_t best = 0;
    for (std::size_t r = 1; r < ready.size(); ++r) {
      const int pb = priority(ready[best]);
      const int pr = priority(ready[r]);
      if (pr < pb || (pr == pb && ready[r] < ready[best])) best = r;
    }
    const std::size_t chosen = ready[best];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));
    scheduled.push_back(block.body[chosen]);
    for (const std::size_t s : succs[chosen])
      if (--indegree[s] == 0) ready.push_back(s);
  }

  for (std::size_t i = limit; i < n; ++i)
    scheduled.push_back(block.body[i]);
  block.body = std::move(scheduled);
}

}  // namespace

void schedule_kernel(ptx::Kernel& kernel) {
  for (BasicBlock& b : kernel.blocks) schedule_block(b);
}

}  // namespace gpustatic::codegen
