#pragma once

#include "ptx/kernel.hpp"

namespace gpustatic::codegen {

/// Per-block list scheduler: hoists loads as early as their dependences
/// allow, the way ptxas schedules SASS to expose memory-level parallelism.
/// This is what makes unrolling raise both ILP (batched outstanding loads
/// in the warp simulator) and register pressure (longer live ranges seen
/// by the liveness analysis) — the mechanism the paper's Table V register
/// statistics reflect.
///
/// Dependences respected within a block:
///  * register RAW/WAR/WAW (guards count as reads; guarded defs also read
///    their destination);
///  * loads never move across stores/atomics/barriers; stores/atomics/
///    barriers never move across any other memory operation;
///  * the block's terminator stays last.
void schedule_kernel(ptx::Kernel& kernel);

}  // namespace gpustatic::codegen
