#pragma once

// Compile-once memoization for the evaluation hot path. The lowered
// instruction stream of a variant depends only on a small subset of
// TuningParams — the CodegenKey — while TC/BC merely rescale block
// frequencies (recorded per block in LoweredStage::freq_model) and PL
// never reaches the compiler at all. A search over the Table III space
// therefore needs at most |UIF| x |SC| x |CFLAGS| compiler runs, not one
// per point: every launch-shape-only neighbor is a cache hit.
//
// Lowerings come from a codegen::Backend (backend.hpp) selected by
// registry name at construction; entries are keyed by (backend id,
// CodegenKey), so one cache can serve several backends without their
// lowerings — or their memoized lowering *failures* — poisoning each
// other. validate_params()/retarget_launch() are backend-agnostic: every
// backend populates freq_model, so the launch-shape rescaling fast path
// works identically under any backend.
//
// The cache is thread-safe (SimEvaluator fans batches out over the
// shared thread pool): entries are per-key shared futures, so the lock
// covers only map lookup/insert — concurrent misses on distinct keys
// compile in parallel, each key compiles exactly once, and waiters on
// the same key park on its future. Failures are memoized as the stored
// exception, so every lookup of a failing key rethrows the exact
// exception a fresh compile would.

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "arch/gpu_spec.hpp"
#include "codegen/backend.hpp"
#include "codegen/compiler.hpp"
#include "dsl/ast.hpp"

namespace gpustatic::codegen {

/// The subset of TuningParams the lowered instruction stream depends on.
struct CodegenKey {
  int unroll = 1;
  int stream_chunk = 1;
  bool fast_math = false;

  friend auto operator<=>(const CodegenKey&, const CodegenKey&) = default;

  [[nodiscard]] static CodegenKey of(const TuningParams& p) {
    return CodegenKey{p.unroll, p.stream_chunk, p.fast_math};
  }
};

struct CompileCacheStats {
  std::size_t hits = 0;    ///< lookups answered without running the compiler
  std::size_t misses = 0;  ///< full compiler runs (including failed ones)
};

class CompilationCache {
 public:
  /// The cache owns its workload copy so it can be shared (e.g. between
  /// a SimEvaluator's context and an AnalyticEvaluator) without lifetime
  /// coupling; GpuSpecs come from the static hardware table. `backend`
  /// names the default lowering target for lower()/compile(); it is
  /// resolved against BackendRegistry::instance() here, so an unknown
  /// name fails at construction, not first lookup.
  CompilationCache(dsl::WorkloadDesc workload, const arch::GpuSpec& gpu,
                   const std::string& backend = kDefaultBackend)
      : workload_(std::move(workload)),
        gpu_(&gpu),
        backend_(BackendRegistry::instance().get(backend)) {}

  CompilationCache(const CompilationCache&) = delete;
  CompilationCache& operator=(const CompilationCache&) = delete;

  /// The canonical lowering for `params`' codegen key under the bound
  /// backend. Validates the full params first (throwing ConfigError
  /// exactly like the Compiler constructor), then returns the memoized
  /// compile — whose LaunchConfig/block_freq reflect the *first* params
  /// seen with this key; consumers that need point-exact values use
  /// compile() or block_freq_at()/retarget_launch(). A memoized
  /// lowering failure rethrows the original exception on every lookup.
  std::shared_ptr<const LoweredWorkload> lower(const TuningParams& params);

  /// As lower(), under an explicitly named backend (resolved against
  /// the global registry; throws Error on unknown names). Entries and
  /// stats are tracked per backend, so a params combo that fails to
  /// lower under one backend stays a fresh (and possibly successful)
  /// compile under another.
  std::shared_ptr<const LoweredWorkload> lower_as(
      const std::string& backend, const TuningParams& params);

  /// Full per-point compile under the bound backend: the canonical
  /// lowering deep-copied and retargeted to `params`. Byte-identical to
  /// Compiler(gpu, params).compile(workload) in every field (for the
  /// default "ptx" backend).
  [[nodiscard]] LoweredWorkload compile(const TuningParams& params);

  /// Stats for the bound backend (the common single-backend view).
  [[nodiscard]] CompileCacheStats stats() const;
  /// Stats for every backend this cache has seen lookups under.
  [[nodiscard]] std::map<std::string, CompileCacheStats> stats_by_backend()
      const;

  [[nodiscard]] const std::string& backend_name() const {
    return backend_.name;
  }
  [[nodiscard]] const Backend& backend() const { return *backend_.impl; }

  [[nodiscard]] const dsl::WorkloadDesc& workload() const {
    return workload_;
  }
  [[nodiscard]] const arch::GpuSpec& gpu() const { return *gpu_; }

 private:
  using LoweredFuture =
      std::shared_future<std::shared_ptr<const LoweredWorkload>>;
  /// A resolved backend plus its cached name (the map-key string, kept
  /// out of the per-lookup path).
  struct Bound {
    std::string name;
    std::shared_ptr<const Backend> impl;
    explicit Bound(std::shared_ptr<const Backend> b)
        : name(b->name()), impl(std::move(b)) {}
  };

  std::shared_ptr<const LoweredWorkload> lower_impl(
      const Bound& backend, const TuningParams& params);

  dsl::WorkloadDesc workload_;
  const arch::GpuSpec* gpu_;
  Bound backend_;
  mutable std::mutex mu_;
  std::map<std::pair<std::string, CodegenKey>, LoweredFuture> entries_;
  std::map<std::string, CompileCacheStats> stats_;
};

}  // namespace gpustatic::codegen
