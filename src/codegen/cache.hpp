#pragma once

// Compile-once memoization for the evaluation hot path. The lowered
// instruction stream of a variant depends only on a small subset of
// TuningParams — the CodegenKey — while TC/BC merely rescale block
// frequencies (recorded per block in LoweredStage::freq_model) and PL
// never reaches the compiler at all. A search over the Table III space
// therefore needs at most |UIF| x |SC| x |CFLAGS| compiler runs, not one
// per point: every launch-shape-only neighbor is a cache hit.
//
// The cache is thread-safe (SimEvaluator fans batches out over the
// shared thread pool): entries are per-key shared futures, so the lock
// covers only map lookup/insert — concurrent misses on distinct keys
// compile in parallel, each key compiles exactly once, and waiters on
// the same key park on its future. Failures are memoized as the stored
// exception, so every lookup of a failing key rethrows the exact
// exception a fresh compile would.

#include <future>
#include <map>
#include <memory>
#include <mutex>

#include "arch/gpu_spec.hpp"
#include "codegen/compiler.hpp"
#include "dsl/ast.hpp"

namespace gpustatic::codegen {

/// The subset of TuningParams the lowered instruction stream depends on.
struct CodegenKey {
  int unroll = 1;
  int stream_chunk = 1;
  bool fast_math = false;

  friend auto operator<=>(const CodegenKey&, const CodegenKey&) = default;

  [[nodiscard]] static CodegenKey of(const TuningParams& p) {
    return CodegenKey{p.unroll, p.stream_chunk, p.fast_math};
  }
};

struct CompileCacheStats {
  std::size_t hits = 0;    ///< lookups answered without running the compiler
  std::size_t misses = 0;  ///< full compiler runs (including failed ones)
};

class CompilationCache {
 public:
  /// The cache owns its workload copy so it can be shared (e.g. between
  /// a SimEvaluator's context and an AnalyticEvaluator) without lifetime
  /// coupling; GpuSpecs come from the static hardware table.
  CompilationCache(dsl::WorkloadDesc workload, const arch::GpuSpec& gpu)
      : workload_(std::move(workload)), gpu_(&gpu) {}

  /// The canonical lowering for `params`' codegen key. Validates the
  /// full params first (throwing ConfigError exactly like the Compiler
  /// constructor), then returns the memoized compile — whose
  /// LaunchConfig/block_freq reflect the *first* params seen with this
  /// key; consumers that need point-exact values use compile() or
  /// block_freq_at()/retarget_launch(). A memoized lowering failure
  /// rethrows the original exception on every lookup.
  std::shared_ptr<const LoweredWorkload> lower(const TuningParams& params);

  /// Full per-point compile: the canonical lowering deep-copied and
  /// retargeted to `params`. Byte-identical to
  /// Compiler(gpu, params).compile(workload) in every field.
  [[nodiscard]] LoweredWorkload compile(const TuningParams& params);

  [[nodiscard]] CompileCacheStats stats() const;

  [[nodiscard]] const dsl::WorkloadDesc& workload() const {
    return workload_;
  }
  [[nodiscard]] const arch::GpuSpec& gpu() const { return *gpu_; }

 private:
  using LoweredFuture =
      std::shared_future<std::shared_ptr<const LoweredWorkload>>;

  dsl::WorkloadDesc workload_;
  const arch::GpuSpec* gpu_;
  mutable std::mutex mu_;
  std::map<CodegenKey, LoweredFuture> entries_;
  CompileCacheStats stats_;
};

}  // namespace gpustatic::codegen
