#include "difftest/difftest.hpp"

#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "codegen/backend.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

#ifndef GPUSTATIC_HOST_CXX
#define GPUSTATIC_HOST_CXX "c++"
#endif

namespace gpustatic::difftest {

namespace fs = std::filesystem;

std::vector<LaunchShape> default_shapes() {
  return {{32, 2}, {64, 2},  {128, 1}, {128, 4},
          {96, 3}, {256, 2}, {48, 5},  {200, 3}};
}

bool ShapeReport::ok() const {
  if (!error.empty()) return false;
  for (const BlockCheck& c : checks)
    if (!c.ok) return false;
  return true;
}

bool KernelReport::ok() const {
  if (!error.empty()) return false;
  for (const ShapeReport& s : shapes)
    if (!s.ok()) return false;
  return true;
}

std::size_t KernelReport::blocks_checked() const {
  std::size_t n = 0;
  for (const ShapeReport& s : shapes) n += s.checks.size();
  return n;
}

double KernelReport::max_exact_deviation() const {
  double worst = 0;
  for (const ShapeReport& s : shapes)
    for (const BlockCheck& c : s.checks)
      if (c.exact && c.deviation > worst) worst = c.deviation;
  return worst;
}

std::string KernelReport::failure_summary() const {
  std::ostringstream out;
  if (!error.empty()) out << kernel << ": " << error << "\n";
  for (const ShapeReport& s : shapes) {
    const std::string at = str::format(
        "%s @ TC=%d BC=%d", kernel.c_str(), s.shape.threads_per_block,
        s.shape.block_count);
    if (!s.error.empty()) out << at << ": " << s.error << "\n";
    for (const BlockCheck& c : s.checks)
      if (!c.ok)
        out << at
            << str::format(
                   ": stage %zu block %zu '%s' expected %.3f got %lld "
                   "(%s model)\n",
                   c.stage, c.block, c.label.c_str(), c.expected,
                   c.executed, c.exact ? "exact" : "estimated");
  }
  return out.str();
}

std::vector<BlockCheck> check_stage(const codegen::LoweredStage& stage,
                                    std::size_t stage_index,
                                    const codegen::TuningParams& params,
                                    const CountMap& executed,
                                    double divergence_tolerance) {
  const double total_threads =
      static_cast<double>(params.threads_per_block) *
      static_cast<double>(params.block_count);
  std::vector<BlockCheck> checks;
  checks.reserve(stage.freq_model.size());
  for (std::size_t b = 0; b < stage.freq_model.size(); ++b) {
    const codegen::BlockFreqModel& model = stage.freq_model[b];
    BlockCheck check;
    check.stage = stage_index;
    check.block = b;
    if (b < stage.kernel.blocks.size())
      check.label = stage.kernel.blocks[b].label;
    check.exact = model.exact;
    check.expected = model.at(total_threads) * total_threads;
    const auto it = executed.find({stage_index, b});
    check.executed = it == executed.end() ? -1 : it->second;
    check.deviation =
        std::abs(check.expected - static_cast<double>(check.executed));
    if (it == executed.end()) {
      check.ok = false;  // counter missing from the program's output
    } else if (check.exact) {
      // An exact model is an integer count; half a count of slack only
      // absorbs floating-point evaluation noise, never an off-by-one.
      check.ok = check.deviation <= 0.5;
    } else {
      const double scale = std::max(std::abs(check.expected), 1.0);
      check.ok = check.deviation / scale <= divergence_tolerance;
    }
    checks.push_back(std::move(check));
  }
  return checks;
}

CountMap parse_counts(const std::string& text) {
  CountMap counts;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::size_t stage = 0, block = 0;
    long long count = 0;
    if (!(fields >> stage >> block >> count))
      throw Error("difftest: malformed counter line '" + line + "'");
    counts[{stage, block}] = count;
  }
  return counts;
}

namespace {

std::string host_compiler(const Options& opts) {
  if (!opts.host_cxx.empty()) return opts.host_cxx;
  if (const char* env = std::getenv("GPUSTATIC_HOST_CXX");
      env != nullptr && *env != '\0')
    return env;
  return GPUSTATIC_HOST_CXX;
}

/// Run `command`, capturing stdout+stderr into `output`. Returns the
/// shell's exit status (-1 when system() itself fails).
int run_captured(const std::string& command, const fs::path& capture,
                 std::string* output) {
  const int rc =
      std::system((command + " > '" + capture.string() + "' 2>&1").c_str());
  if (output != nullptr) {
    std::ifstream in(capture);
    std::ostringstream text;
    text << in.rdbuf();
    *output = text.str();
  }
  return rc;
}

/// Scratch directory management: mkdtemp under the system temp path
/// unless the caller pinned one; removed on destruction unless kept.
class WorkDir {
 public:
  WorkDir(const std::string& pinned, bool keep) : keep_(keep) {
    if (!pinned.empty()) {
      path_ = pinned;
      fs::create_directories(path_);
      keep_ = true;  // never delete a directory the caller named
      return;
    }
    std::string pattern =
        (fs::temp_directory_path() / "gpustatic_difftest_XXXXXX").string();
    if (mkdtemp(pattern.data()) == nullptr)
      throw Error("difftest: cannot create scratch directory");
    path_ = pattern;
  }
  ~WorkDir() {
    if (!keep_) {
      std::error_code ec;  // best-effort cleanup
      fs::remove_all(path_, ec);
    }
  }
  WorkDir(const WorkDir&) = delete;
  WorkDir& operator=(const WorkDir&) = delete;

  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
  bool keep_;
};

}  // namespace

KernelReport diff_kernel(const dsl::WorkloadDesc& wl, const Options& opts) {
  KernelReport report;
  report.kernel = wl.name;
  report.backend = opts.backend;
  try {
    const std::shared_ptr<const codegen::Backend> backend =
        codegen::BackendRegistry::instance().get(opts.backend);
    if (!backend->executable())
      throw Error("difftest: backend '" + opts.backend +
                  "' does not produce an executable source");
    const arch::GpuSpec& gpu = arch::gpu(opts.gpu);
    const codegen::LoweredWorkload lowered =
        backend->lower(wl, gpu, opts.params);
    const std::string source = backend->emit_source(lowered, wl);

    const WorkDir dir(opts.work_dir, opts.keep_artifacts);
    const fs::path src = dir.path() / (wl.name + ".cpp");
    const fs::path bin = dir.path() / wl.name;
    const fs::path log = dir.path() / "log.txt";
    {
      std::ofstream out(src);
      out << source;
      if (!out) throw Error("difftest: cannot write " + src.string());
    }
    std::string build_output;
    const std::string compile = host_compiler(opts) + " -O1 -o '" +
                                bin.string() + "' '" + src.string() + "'";
    if (run_captured(compile, log, &build_output) != 0)
      throw Error("difftest: host compile failed: " + compile + "\n" +
                  build_output);

    for (const LaunchShape& shape : opts.shapes) {
      ShapeReport sr;
      sr.shape = shape;
      codegen::TuningParams at = opts.params;
      at.threads_per_block = shape.threads_per_block;
      at.block_count = shape.block_count;
      std::string run_output;
      const std::string run = "'" + bin.string() + "' " +
                              std::to_string(shape.threads_per_block) +
                              " " + std::to_string(shape.block_count);
      if (run_captured(run, log, &run_output) != 0) {
        sr.error = "reference run failed: " + run + "\n" + run_output;
      } else {
        try {
          const CountMap counts = parse_counts(run_output);
          for (std::size_t i = 0; i < lowered.stages.size(); ++i) {
            std::vector<BlockCheck> checks =
                check_stage(lowered.stages[i], i, at, counts,
                            opts.divergence_tolerance);
            sr.checks.insert(sr.checks.end(),
                             std::make_move_iterator(checks.begin()),
                             std::make_move_iterator(checks.end()));
          }
        } catch (const Error& e) {
          sr.error = e.what();
        }
      }
      report.shapes.push_back(std::move(sr));
    }
  } catch (const std::exception& e) {
    report.error = e.what();
  }
  return report;
}

}  // namespace gpustatic::difftest
