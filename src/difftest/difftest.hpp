#pragma once

// Differential count testing: run a workload through an *executable*
// codegen backend (the scalar-C reference, "cref") on the host and
// compare the dynamically counted per-block executions against the
// static BlockFreqModel the analytic engine trusts. The lowered IR is
// shared between the simulator and the reference program, so a mismatch
// means the static frequency model is wrong for that block — the class
// of bug no amount of simulator-vs-simulator testing can catch.
//
// Protocol per kernel:
//   1. lower once (the C source is launch-shape independent),
//   2. emit_source + compile with the host toolchain once,
//   3. execute once per launch shape; the program prints one
//      "<stage> <block> <count>" line per basic block,
//   4. per block, evaluate the freq model at that shape's total thread
//      count and compare: blocks whose model is exact (loop trips,
//      grid-stride bases) must match to the integer; blocks carrying a
//      branch-probability factor (BlockFreqModel::exact == false, e.g.
//      the divergent kernel's then/else arms) are gated by a relative
//      tolerance instead — those frequencies are estimates by design.
//
// The comparison step is exposed separately (check_stage) so tests can
// exercise mismatch detection without compiling anything.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "codegen/compiler.hpp"
#include "dsl/ast.hpp"

namespace gpustatic::difftest {

/// One launch geometry to execute and diff.
struct LaunchShape {
  int threads_per_block = 128;
  int block_count = 2;
};

/// The sampled shapes every kernel is diffed over: mixed powers of two
/// and deliberately ragged sizes (non-multiples of the warp width, odd
/// block counts) so under- and over-subscribed grids are both covered.
[[nodiscard]] std::vector<LaunchShape> default_shapes();

struct Options {
  /// Backend to execute (must report executable()).
  std::string backend = "cref";
  std::string gpu = "K20";
  /// Codegen-affecting knobs (unroll, stream chunk, fast-math); the
  /// launch shape fields are overridden per sampled shape.
  codegen::TuningParams params;
  std::vector<LaunchShape> shapes = default_shapes();
  /// Relative tolerance for blocks whose frequency model is inexact
  /// (carries a branch-probability factor).
  double divergence_tolerance = 0.05;
  /// Host C++ compiler. Empty = $GPUSTATIC_HOST_CXX, falling back to
  /// the compiler this library was built with, then "c++".
  std::string host_cxx;
  /// Scratch directory for emitted sources/binaries; empty = a fresh
  /// directory under the system temp path, removed unless
  /// keep_artifacts is set.
  std::string work_dir;
  bool keep_artifacts = false;
};

/// Executed counters: (stage index, block index) -> dynamic count.
using CountMap = std::map<std::pair<std::size_t, std::size_t>, long long>;

/// One block's expected-vs-executed comparison.
struct BlockCheck {
  std::size_t stage = 0;
  std::size_t block = 0;
  std::string label;          ///< basic-block label in the lowered kernel
  double expected = 0;        ///< freq model × total threads
  long long executed = 0;     ///< the reference program's counter
  bool exact = true;          ///< integer equality vs tolerance gate
  double deviation = 0;       ///< |expected - executed| (abs)
  bool ok = false;
};

struct ShapeReport {
  LaunchShape shape;
  std::vector<BlockCheck> checks;
  std::string error;  ///< run/parse failure; checks empty when set
  [[nodiscard]] bool ok() const;
};

struct KernelReport {
  std::string kernel;
  std::string backend;
  std::string error;  ///< lower/emit/compile failure; shapes empty
  std::vector<ShapeReport> shapes;
  [[nodiscard]] bool ok() const;
  [[nodiscard]] std::size_t blocks_checked() const;
  /// Largest |expected - executed| over every exact block checked (the
  /// bench's headline number; 0.0 when the model is count-perfect).
  [[nodiscard]] double max_exact_deviation() const;
  /// One line per failing check (empty when ok) — the loud part of
  /// "fails loudly".
  [[nodiscard]] std::string failure_summary() const;
};

/// Compare one lowered stage's frequency model against executed
/// counters at the given launch shape. Pure — no compilation, no I/O —
/// so tests can feed perturbed counters and assert mismatches are
/// caught. `params` must already carry the shape's TC/BC.
[[nodiscard]] std::vector<BlockCheck> check_stage(
    const codegen::LoweredStage& stage, std::size_t stage_index,
    const codegen::TuningParams& params, const CountMap& executed,
    double divergence_tolerance);

/// Parse the reference program's stdout ("<stage> <block> <count>" per
/// line) into a CountMap. Throws Error on malformed lines.
[[nodiscard]] CountMap parse_counts(const std::string& text);

/// Full differential run for one workload: lower, emit, host-compile
/// once, execute per shape, check every block. Failures are reported in
/// the result, not thrown (a build error on one kernel should not hide
/// the others in a suite).
[[nodiscard]] KernelReport diff_kernel(const dsl::WorkloadDesc& wl,
                                       const Options& opts = {});

}  // namespace gpustatic::difftest
