#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using gpustatic::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowZeroBoundYieldsZero) {
  Rng r(7);
  EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng r(42);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit
}

TEST(Rng, RangeDegenerate) {
  Rng r(42);
  EXPECT_EQ(r.range(5, 5), 5);
  EXPECT_EQ(r.range(9, 3), 9);  // hi < lo clamps to lo
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng r(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsAboutHalf) {
  Rng r(1234);
  double s = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) s += r.uniform();
  EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng r(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, NormalMoments) {
  Rng r(2024);
  const int n = 200000;
  double s = 0, s2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    s += x;
    s2 += x * x;
  }
  EXPECT_NEAR(s / n, 0.0, 0.02);
  EXPECT_NEAR(s2 / n, 1.0, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(77);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng r(77);
  std::vector<int> v(64);
  for (int i = 0; i < 64; ++i) v[i] = i;
  auto orig = v;
  r.shuffle(v);
  EXPECT_NE(v, orig);
}
