#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

using gpustatic::ThreadPool;

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SizeOnePoolRunsInlineWithNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(64);
  pool.parallel_for(seen.size(), [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::vector<int> out(17, 0);
    pool.parallel_for(out.size(),
                      [&](std::size_t i) { out[i] = static_cast<int>(i); });
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 17 * 16 / 2)
        << round;
  }
}

TEST(ThreadPool, EmptyBatchIsANoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, FirstExceptionPropagatesAfterDrain) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.parallel_for(100, [&](std::size_t i) {
      if (i == 3) throw std::runtime_error("boom");
      completed.fetch_add(1);
    });
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // The batch drained (no index abandoned mid-flight, pool reusable).
  EXPECT_EQ(completed.load(), 99);
  std::atomic<int> again{0};
  pool.parallel_for(10, [&](std::size_t) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 10);
}

TEST(ThreadPool, ExceptionPropagatesFromInlinePath) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(
                   5, [](std::size_t) { throw std::logic_error("x"); }),
               std::logic_error);
}

TEST(ThreadPool, ConfiguredThreadsHonorsEnvOverride) {
  // setenv/unsetenv are process-global; this test restores the prior
  // state so it cannot leak into other tests in this binary.
  const char* prev = std::getenv("GPUSTATIC_THREADS");
  const std::string saved = prev ? prev : "";

  ASSERT_EQ(setenv("GPUSTATIC_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::configured_threads(), 3u);
  ASSERT_EQ(setenv("GPUSTATIC_THREADS", "0", 1), 0);  // invalid: fallback
  EXPECT_GE(ThreadPool::configured_threads(), 1u);
  ASSERT_EQ(setenv("GPUSTATIC_THREADS", "junk", 1), 0);
  EXPECT_GE(ThreadPool::configured_threads(), 1u);

  if (prev)
    setenv("GPUSTATIC_THREADS", saved.c_str(), 1);
  else
    unsetenv("GPUSTATIC_THREADS");
}
