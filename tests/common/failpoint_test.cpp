// The failpoint registry: spec parsing, per-point probability/count/
// seed semantics, trip accounting, and the loud-failure contract for
// malformed chaos schedules.

#include "common/failpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/error.hpp"

using namespace gpustatic;  // NOLINT
using failpoint::InjectedFault;

namespace {

/// Failpoint state is process-global; every test starts from a clean
/// slate and leaves one behind.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::configure(""); }
  void TearDown() override { failpoint::configure(""); }
};

}  // namespace

TEST_F(FailpointTest, DisarmedCheckIsANoOp) {
  EXPECT_NO_THROW(failpoint::check("store.save"));
  EXPECT_NO_THROW(failpoint::check("codegen.compile"));
  EXPECT_EQ(failpoint::total_trips(), 0u);
}

TEST_F(FailpointTest, ErrorActionThrowsInjectedFaultNamingThePoint) {
  failpoint::configure("store.save=error");
  try {
    failpoint::check("store.save");
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& e) {
    EXPECT_NE(std::string(e.what()).find("store.save"), std::string::npos);
  }
  // Other points stay disarmed.
  EXPECT_NO_THROW(failpoint::check("sim.measure"));
  EXPECT_EQ(failpoint::total_trips(), 1u);
}

TEST_F(FailpointTest, InjectedFaultIsALibraryError) {
  // `error` must take the same recovery paths real failures take, so it
  // derives from gpustatic::Error.
  failpoint::configure("sim.measure=error");
  EXPECT_THROW(failpoint::check("sim.measure"), Error);
}

TEST_F(FailpointTest, ThrowActionIsAForeignException) {
  failpoint::configure("serve.write=throw");
  try {
    failpoint::check("serve.write");
    FAIL() << "expected std::runtime_error";
  } catch (const Error&) {
    FAIL() << "`throw` must not be catchable as a library Error";
  } catch (const std::runtime_error&) {
    // The foreign-exception path: propagates past Error handlers.
  }
}

TEST_F(FailpointTest, CountDisarmsAfterNTrips) {
  failpoint::configure("store.merge=error(count=2)");
  EXPECT_THROW(failpoint::check("store.merge"), InjectedFault);
  EXPECT_THROW(failpoint::check("store.merge"), InjectedFault);
  // Third and later checks pass: the point spent its budget.
  EXPECT_NO_THROW(failpoint::check("store.merge"));
  EXPECT_NO_THROW(failpoint::check("store.merge"));
  EXPECT_EQ(failpoint::total_trips(), 2u);
}

TEST_F(FailpointTest, ZeroProbabilityNeverTrips) {
  failpoint::configure("learn.model_load=error(p=0)");
  for (int i = 0; i < 200; ++i)
    EXPECT_NO_THROW(failpoint::check("learn.model_load"));
  EXPECT_EQ(failpoint::total_trips(), 0u);
}

TEST_F(FailpointTest, ProbabilityIsSeededAndDeterministic) {
  const auto trip_pattern = [](std::uint64_t seed) {
    failpoint::configure("sim.measure=error(p=0.5,seed=" +
                         std::to_string(seed) + ")");
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      try {
        failpoint::check("sim.measure");
        pattern += '.';
      } catch (const InjectedFault&) {
        pattern += 'x';
      }
    }
    return pattern;
  };
  const std::string a = trip_pattern(7);
  const std::string b = trip_pattern(7);
  EXPECT_EQ(a, b);  // same seed, same schedule — chaos is replayable
  // p=0.5 over 64 draws trips some but not all.
  EXPECT_NE(a.find('x'), std::string::npos);
  EXPECT_NE(a.find('.'), std::string::npos);
  EXPECT_NE(a, trip_pattern(8));
}

TEST_F(FailpointTest, DelayActionSleepsWithoutThrowing) {
  failpoint::configure("codegen.compile=delay(ms=20,count=1)");
  const auto start = std::chrono::steady_clock::now();
  EXPECT_NO_THROW(failpoint::check("codegen.compile"));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 15);
  EXPECT_EQ(failpoint::total_trips(), 1u);
}

TEST_F(FailpointTest, OffClauseDisarmsThePoint) {
  failpoint::configure("store.save=error;store.save=off");
  EXPECT_NO_THROW(failpoint::check("store.save"));
}

TEST_F(FailpointTest, MultiplePointsArmIndependently) {
  failpoint::configure("store.save=error;sim.measure=error");
  EXPECT_THROW(failpoint::check("store.save"), InjectedFault);
  EXPECT_THROW(failpoint::check("sim.measure"), InjectedFault);
  EXPECT_NO_THROW(failpoint::check("codegen.compile"));
  const auto stats = failpoint::stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].first, "sim.measure");  // sorted by name
  EXPECT_EQ(stats[0].second, 1u);
  EXPECT_EQ(stats[1].first, "store.save");
  EXPECT_EQ(stats[1].second, 1u);
}

TEST_F(FailpointTest, MalformedSpecsFailLoudly) {
  // A typo'd chaos schedule must not silently test nothing.
  EXPECT_THROW(failpoint::configure("no.such.point=error"), Error);
  EXPECT_THROW(failpoint::configure("store.save"), Error);
  EXPECT_THROW(failpoint::configure("store.save=explode"), Error);
  EXPECT_THROW(failpoint::configure("store.save=error(p=banana)"), Error);
  EXPECT_THROW(failpoint::configure("store.save=error(bogus=1)"), Error);
  // A failed configure leaves everything disarmed.
  EXPECT_NO_THROW(failpoint::check("store.save"));
}

TEST_F(FailpointTest, DisarmKeepsTripStatsUntilNextConfigure) {
  failpoint::configure("store.save=error");
  EXPECT_THROW(failpoint::check("store.save"), InjectedFault);
  failpoint::disarm();
  EXPECT_NO_THROW(failpoint::check("store.save"));
  EXPECT_EQ(failpoint::total_trips(), 1u);  // history survives disarm()
  failpoint::configure("");
  EXPECT_EQ(failpoint::total_trips(), 0u);  // configure() resets it
}

TEST_F(FailpointTest, ConfigureFromEnvReadsTheVariable) {
  ASSERT_EQ(setenv("GPUSTATIC_FAILPOINTS", "store.save=error(count=1)", 1),
            0);
  failpoint::configure_from_env();
  unsetenv("GPUSTATIC_FAILPOINTS");
  EXPECT_THROW(failpoint::check("store.save"), InjectedFault);
  EXPECT_NO_THROW(failpoint::check("store.save"));
}

TEST_F(FailpointTest, KnownPointsAreSortedAndCoverTheInstrumentedSites) {
  const auto& points = failpoint::known_points();
  EXPECT_TRUE(std::is_sorted(points.begin(), points.end()));
  for (const char* p : {"codegen.compile", "sim.measure", "store.save",
                        "store.merge", "learn.model_load", "serve.write"})
    EXPECT_NE(std::find(points.begin(), points.end(), p), points.end())
        << p;
}
