// Deadlines and cooperative cancellation: the inert default token, the
// deadline latch, shared state across copies, and the distinct
// CancelledError messages drivers branch on.

#include "common/deadline.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <thread>

#include "common/error.hpp"

using namespace gpustatic;  // NOLINT
using common::CancelledError;
using common::CancelToken;
using common::Deadline;

TEST(Deadline, DefaultIsNever) {
  const Deadline d;
  EXPECT_FALSE(d.set());
  EXPECT_FALSE(d.expired());
  // Unset composes as "no bound": min(remaining, x) picks x.
  EXPECT_EQ(d.remaining_ms(), std::numeric_limits<std::int64_t>::max());
}

TEST(Deadline, AfterMsExpires) {
  const Deadline d = Deadline::after_ms(5);
  EXPECT_TRUE(d.set());
  EXPECT_LE(d.remaining_ms(), 5);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_ms(), 0);  // clamped, never negative
}

TEST(CancelToken, DefaultIsInert) {
  const CancelToken t;
  EXPECT_FALSE(t.possible());
  EXPECT_FALSE(t.cancelled());
  EXPECT_NO_THROW(t.throw_if_cancelled());
  EXPECT_FALSE(t.deadline().set());
}

TEST(CancelToken, ManualCancelIsSharedAcrossCopies) {
  const CancelToken t = CancelToken::manual();
  const CancelToken copy = t;
  EXPECT_TRUE(t.possible());
  EXPECT_FALSE(copy.cancelled());
  t.cancel();
  EXPECT_TRUE(copy.cancelled());  // copies share one state
  try {
    copy.throw_if_cancelled();
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(std::string(e.what()), "request cancelled");
  }
}

TEST(CancelToken, DeadlineExpiryCancelsAndLatches) {
  const CancelToken t =
      CancelToken::with_deadline(Deadline::after_ms(5));
  EXPECT_TRUE(t.possible());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(t.cancelled());
  EXPECT_TRUE(t.cancelled());  // latched: stays cancelled
  try {
    t.throw_if_cancelled();
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    // The message drivers surface as the timed_out error.
    EXPECT_EQ(std::string(e.what()), "deadline exceeded");
  }
}

TEST(CancelToken, CancelledErrorIsALibraryError) {
  // Generic Error handlers must still contain a cancellation (a search
  // worker that only catches Error reports it instead of terminating).
  const CancelToken t = CancelToken::manual();
  t.cancel();
  EXPECT_THROW(t.throw_if_cancelled(), Error);
}

TEST(CancelToken, UnexpiredDeadlineDoesNotCancel) {
  const CancelToken t =
      CancelToken::with_deadline(Deadline::after_ms(60'000));
  EXPECT_FALSE(t.cancelled());
  EXPECT_NO_THROW(t.throw_if_cancelled());
  EXPECT_GT(t.deadline().remaining_ms(), 0);
}
