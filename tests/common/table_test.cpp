#include "common/table.hpp"

#include <gtest/gtest.h>

using gpustatic::TextTable;
using gpustatic::ascii_bar;

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"Kernel", "occ"});
  t.add_row({"atax", "0.93"});
  t.add_row({"bicg", "1.00"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Kernel"), std::string::npos);
  EXPECT_NE(out.find("atax"), std::string::npos);
  EXPECT_NE(out.find("1.00"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, PadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only-one"});
  const std::string out = t.render();
  // Row renders with empty cells, no crash, 3 separators.
  EXPECT_NE(out.find("only-one"), std::string::npos);
}

TEST(TextTable, ColumnsAlign) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "100"});
  const std::string out = t.render();
  // Every line has equal length (fixed-width table).
  std::size_t expected = 0;
  std::size_t start = 0;
  while (start < out.size()) {
    auto end = out.find('\n', start);
    if (end == std::string::npos) break;
    const std::size_t len = end - start;
    if (expected == 0) expected = len;
    EXPECT_EQ(len, expected);
    start = end + 1;
  }
}

TEST(TextTable, RuleInsertsSeparator) {
  TextTable t({"h"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string out = t.render();
  // header rule + top + bottom + inserted = 4 dashes lines
  std::size_t rules = 0;
  std::size_t pos = 0;
  while ((pos = out.find("+--", pos)) != std::string::npos) {
    ++rules;
    pos += 3;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(AsciiBar, ProportionalWidth) {
  EXPECT_EQ(ascii_bar(10, 10, 20).size(), 20u);
  EXPECT_EQ(ascii_bar(5, 10, 20).size(), 10u);
  EXPECT_EQ(ascii_bar(0, 10, 20), "");
  EXPECT_EQ(ascii_bar(5, 0, 20), "");
}

TEST(AsciiBar, ClampsOverflow) {
  EXPECT_EQ(ascii_bar(100, 10, 8).size(), 8u);
}
