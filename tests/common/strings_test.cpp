#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace s = gpustatic::str;

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(s::trim("  hello \t\n"), "hello");
  EXPECT_EQ(s::trim(""), "");
  EXPECT_EQ(s::trim("   "), "");
  EXPECT_EQ(s::trim("x"), "x");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = s::split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto parts = s::split_ws("  foo   bar\tbaz \n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(s::starts_with("ld.global.f32", "ld."));
  EXPECT_FALSE(s::starts_with("ld", "ld."));
  EXPECT_TRUE(s::ends_with("kernel.ptx", ".ptx"));
  EXPECT_FALSE(s::ends_with("ptx", ".ptx"));
}

TEST(Strings, ToLower) {
  EXPECT_EQ(s::to_lower("KePlEr"), "kepler");
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(s::format_double(3.14159, 2), "3.14");
  EXPECT_EQ(s::format_double(2.0, 2), "2.00");
}

TEST(Strings, FormatTrimmed) {
  EXPECT_EQ(s::format_trimmed(1.50, 2), "1.5");
  EXPECT_EQ(s::format_trimmed(2.00, 2), "2");
  EXPECT_EQ(s::format_trimmed(0.25, 2), "0.25");
}

TEST(Strings, FormatGrouped) {
  EXPECT_EQ(s::format_grouped(0), "0");
  EXPECT_EQ(s::format_grouped(999), "999");
  EXPECT_EQ(s::format_grouped(1000), "1,000");
  EXPECT_EQ(s::format_grouped(4141130), "4,141,130");
  EXPECT_EQ(s::format_grouped(-1234567), "-1,234,567");
}

TEST(Strings, Join) {
  EXPECT_EQ(s::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(s::join({}, ","), "");
  EXPECT_EQ(s::join({"one"}, ","), "one");
}

TEST(Strings, PrintfStyleFormat) {
  EXPECT_EQ(s::format("plain"), "plain");
  EXPECT_EQ(s::format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(s::format("%.3f", 2.0 / 3.0), "0.667");
  EXPECT_EQ(s::format("%5u|", 7u), "    7|");
  // Long outputs exceed any small-buffer fast path.
  const std::string big = s::format("%0512d", 1);
  EXPECT_EQ(big.size(), 512u);
  EXPECT_EQ(big.back(), '1');
}
