#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace st = gpustatic::stats;

TEST(Stats, MeanBasic) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(st::mean(xs), 2.5);
}

TEST(Stats, MeanEmptyIsZero) {
  EXPECT_DOUBLE_EQ(st::mean({}), 0.0);
}

TEST(Stats, StdDevSample) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sample stddev with n-1 denominator.
  EXPECT_NEAR(st::stddev(xs), 2.13809, 1e-4);
}

TEST(Stats, StdDevOfSingletonIsZero) {
  const std::vector<double> xs = {42.0};
  EXPECT_DOUBLE_EQ(st::stddev(xs), 0.0);
}

TEST(Stats, ModePicksMostFrequent) {
  const std::vector<double> xs = {1, 2, 2, 3, 3, 3, 4};
  EXPECT_DOUBLE_EQ(st::mode(xs), 3.0);
}

TEST(Stats, ModeTieBreaksToSmallest) {
  const std::vector<double> xs = {5, 5, 2, 2, 9};
  EXPECT_DOUBLE_EQ(st::mode(xs), 2.0);
}

TEST(Stats, PercentileMatchesNumpyConvention) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(st::percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(st::percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(st::percentile(xs, 50), 2.5);
  EXPECT_DOUBLE_EQ(st::percentile(xs, 25), 1.75);
  EXPECT_DOUBLE_EQ(st::percentile(xs, 75), 3.25);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::vector<double> xs = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(st::percentile(xs, 50), 2.5);
}

TEST(Stats, MedianOddCount) {
  const std::vector<double> xs = {9, 1, 5};
  EXPECT_DOUBLE_EQ(st::median(xs), 5.0);
}

TEST(Stats, MeanAbsoluteError) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {2, 2, 5};
  EXPECT_DOUBLE_EQ(st::mean_absolute_error(a, b), 1.0);
}

TEST(Stats, SumSquaredError) {
  const std::vector<double> a = {1, 2};
  const std::vector<double> b = {3, 0};
  EXPECT_DOUBLE_EQ(st::sum_squared_error(a, b), 8.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {10, 20, 30, 40};
  EXPECT_NEAR(st::pearson(a, b), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectAnticorrelation) {
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {8, 6, 4, 2};
  EXPECT_NEAR(st::pearson(a, b), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero) {
  const std::vector<double> a = {1, 1, 1};
  const std::vector<double> b = {1, 2, 3};
  EXPECT_DOUBLE_EQ(st::pearson(a, b), 0.0);
}

TEST(Stats, SpearmanMonotonicNonlinear) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const std::vector<double> b = {1, 4, 9, 16, 25};  // monotone in a
  EXPECT_NEAR(st::spearman(a, b), 1.0, 1e-12);
}

TEST(Stats, RanksWithTies) {
  const std::vector<double> xs = {10, 20, 20, 30};
  const auto r = st::ranks(xs);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, Normalize01) {
  const std::vector<double> xs = {10, 20, 30};
  const auto n = st::normalize01(xs);
  EXPECT_DOUBLE_EQ(n[0], 0.0);
  EXPECT_DOUBLE_EQ(n[1], 0.5);
  EXPECT_DOUBLE_EQ(n[2], 1.0);
}

TEST(Stats, Normalize01ConstantMapsToZero) {
  const std::vector<double> xs = {7, 7, 7};
  const auto n = st::normalize01(xs);
  for (double v : n) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Stats, HistogramBinningAndClamping) {
  const std::vector<double> xs = {-5, 0, 1, 2, 3, 9, 100};
  const auto h = st::histogram(xs, 0, 10, 5);
  ASSERT_EQ(h.counts.size(), 5u);
  // bins: [0,2) [2,4) [4,6) [6,8) [8,10]; -5 clamps to bin 0, 100 to bin 4.
  EXPECT_EQ(h.counts[0], 3u);  // -5, 0, 1
  EXPECT_EQ(h.counts[1], 2u);  // 2, 3
  EXPECT_EQ(h.counts[2], 0u);
  EXPECT_EQ(h.counts[3], 0u);
  EXPECT_EQ(h.counts[4], 2u);  // 9, 100
  EXPECT_EQ(h.max_count(), 3u);
}

TEST(Stats, HistogramBinCenter) {
  const auto h = st::histogram({}, 0, 10, 5);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(Stats, AccumulatorMatchesBatch) {
  const std::vector<double> xs = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  st::Accumulator acc;
  for (double x : xs) acc.add(x);
  EXPECT_EQ(acc.count(), xs.size());
  EXPECT_NEAR(acc.mean(), st::mean(xs), 1e-12);
  EXPECT_NEAR(acc.stddev(), st::stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}
