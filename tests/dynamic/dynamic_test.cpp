#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "codegen/compiler.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "dynamic/model.hpp"
#include "dynamic/profile.hpp"
#include "dynamic/report.hpp"
#include "kernels/kernels.hpp"
#include "sim/runner.hpp"

using namespace gpustatic;  // NOLINT

namespace {

dynamic::WorkloadProfile profile(const dsl::WorkloadDesc& wl,
                                 const codegen::TuningParams& p,
                                 const std::string& gpu_name = "K20") {
  const auto& gpu = arch::gpu(gpu_name);
  const codegen::Compiler c(gpu, p);
  const auto lw = c.compile(wl);
  const auto machine = sim::MachineModel::from(gpu, p.l1_pref_kb);
  return dynamic::profile_workload(lw, wl, machine);
}

}  // namespace

// ---- profile consistency against the simulator's own counters ----------

TEST(Profile, IssueTotalsMatchSimulatorCounts) {
  const auto wl = kernels::make_atax(48);
  codegen::TuningParams p;
  p.threads_per_block = 128;
  p.block_count = 24;
  const auto wp = profile(wl, p);
  ASSERT_TRUE(wp.measurement.valid);
  ASSERT_EQ(wp.stages.size(), 2u);  // atax is two stages

  for (const auto& s : wp.stages) {
    EXPECT_DOUBLE_EQ(static_cast<double>(s.issues),
                     s.timing.counts.total_issues);
    double cat_sum = 0;
    for (const double c : s.timing.counts.per_category) cat_sum += c;
    EXPECT_DOUBLE_EQ(static_cast<double>(s.issues), cat_sum);
  }
}

TEST(Profile, PerInstructionCountsSumToBlockCounts) {
  const auto wl = kernels::make_bicg(32);
  codegen::TuningParams p;
  p.threads_per_block = 64;
  p.block_count = 24;
  const auto wp = profile(wl, p);
  ASSERT_TRUE(wp.measurement.valid);

  for (const auto& s : wp.stages) {
    ASSERT_EQ(s.blocks.size(), s.insts.size());
    std::uint64_t stage_issues = 0;
    for (std::size_t b = 0; b < s.blocks.size(); ++b) {
      std::uint64_t block_issues = 0;
      for (const auto& ip : s.insts[b]) block_issues += ip.issues;
      EXPECT_EQ(block_issues, s.blocks[b].issues) << "BB" << b;
      EXPECT_LE(s.blocks[b].entries, s.blocks[b].issues + 1);
      stage_issues += block_issues;
    }
    EXPECT_EQ(stage_issues, s.issues);
  }
}

TEST(Profile, EveryExecutedBlockBeginsWithAnEntry) {
  const auto wl = kernels::make_matvec2d(64);
  codegen::TuningParams p;
  p.threads_per_block = 96;
  p.block_count = 48;
  const auto wp = profile(wl, p);
  ASSERT_TRUE(wp.measurement.valid);
  for (const auto& s : wp.stages)
    for (const auto& blk : s.blocks)
      if (blk.issues > 0) {
        EXPECT_GT(blk.entries, 0u);
      }
}

TEST(Profile, MemoryHitLevelsPartitionTransactions) {
  const auto wl = kernels::make_atax(64);
  codegen::TuningParams p;
  p.threads_per_block = 128;
  p.block_count = 24;
  const auto wp = profile(wl, p);
  ASSERT_TRUE(wp.measurement.valid);

  bool saw_memory = false;
  for (const auto& s : wp.stages) {
    for (const auto& m : s.memory) {
      saw_memory = true;
      EXPECT_EQ(m.l1_hits + m.l2_hits + m.dram, m.transactions)
          << "BB" << m.bb << ":" << m.inst;
      EXPECT_GE(m.lanes, m.ops);           // >=1 lane per op
      EXPECT_LE(m.lanes, 32 * m.ops);      // <=32 lanes per op
      EXPECT_GE(m.transactions, m.ops);    // >=1 line per op
      EXPECT_LE(m.transactions, m.lanes);  // <=1 line per lane (f32)
      EXPECT_GE(m.transactions_per_op(), 1.0);
      EXPECT_LE(m.transactions_per_op(), 32.0);
    }
  }
  EXPECT_TRUE(saw_memory);
}

TEST(Profile, ReuseStreamSeesEveryTransaction) {
  const auto wl = kernels::make_atax(48);
  codegen::TuningParams p;
  p.threads_per_block = 64;
  p.block_count = 24;
  const auto wp = profile(wl, p);
  ASSERT_TRUE(wp.measurement.valid);

  for (const auto& s : wp.stages) {
    std::uint64_t txns = 0;
    for (const auto& m : s.memory) txns += m.transactions;
    EXPECT_EQ(s.l2_stream.accesses(), txns);

    std::uint64_t array_lines = 0;
    for (const auto& a : s.arrays)
      array_lines += a.load_lines + a.store_lines;
    EXPECT_EQ(array_lines, txns);  // every line maps to a known array
  }
}

TEST(Profile, ArrayTrafficMatchesKernelDataflow) {
  const auto wl = kernels::make_atax(48);
  codegen::TuningParams p;
  p.threads_per_block = 64;
  p.block_count = 24;
  const auto wp = profile(wl, p);
  ASSERT_TRUE(wp.measurement.valid);

  // Stage 1 (tmp = A x) must read A and write tmp; it never touches y.
  const auto& s0 = wp.stages[0];
  auto traffic = [&](const std::string& name) {
    for (const auto& a : s0.arrays)
      if (a.array == name) return a;
    ADD_FAILURE() << "array " << name << " missing";
    return dynamic::ArrayTraffic{};
  };
  EXPECT_GT(traffic("A").load_lines, 0u);
  EXPECT_GT(traffic("tmp").store_lines, 0u);
  EXPECT_EQ(traffic("y").load_lines + traffic("y").store_lines, 0u);
}

TEST(Profile, SimdEfficiencyWithinBounds) {
  const auto wl = kernels::make_ex14fj(16);
  codegen::TuningParams p;
  p.threads_per_block = 128;
  p.block_count = 24;
  const auto wp = profile(wl, p);
  ASSERT_TRUE(wp.measurement.valid);
  EXPECT_GT(wp.simd_efficiency(), 0.0);
  EXPECT_LE(wp.simd_efficiency(), 1.0);
  EXPECT_GT(wp.total_issues(), 0u);
}

TEST(Profile, BoundaryKernelShowsDivergentBranches) {
  // ex14FJ's boundary handling splits warps: some lanes take the interior
  // path, others the boundary path.
  const auto wl = kernels::make_ex14fj(8);
  codegen::TuningParams p;
  p.threads_per_block = 128;
  p.block_count = 24;
  const auto wp = profile(wl, p);
  ASSERT_TRUE(wp.measurement.valid);

  std::uint64_t divergent = 0;
  for (const auto& s : wp.stages)
    for (const auto& blk : s.blocks) {
      divergent += blk.branch_divergent;
      if (blk.branch_execs > 0) {
        EXPECT_GE(blk.divergence_rate(), 0.0);
        EXPECT_LE(blk.divergence_rate(), 1.0);
        EXPECT_GE(blk.taken_fraction(), 0.0);
        EXPECT_LE(blk.taken_fraction(), 1.0);
      }
    }
  EXPECT_GT(divergent, 0u);
}

TEST(Profile, MeasurementMatchesUntracedRunExactly) {
  // Tracing must not perturb measurement: same protocol, same times.
  const auto wl = kernels::make_atax(48);
  codegen::TuningParams p;
  p.threads_per_block = 96;
  p.block_count = 48;
  const auto& gpu = arch::gpu("M40");
  const codegen::Compiler c(gpu, p);
  const auto lw = c.compile(wl);
  const auto machine = sim::MachineModel::from(gpu, p.l1_pref_kb);

  sim::RunOptions run;
  run.engine = sim::Engine::Warp;
  const auto plain = sim::run_workload(lw, wl, machine, run);
  dynamic::ProfileOptions popts;
  popts.run = run;
  const auto traced = dynamic::profile_workload(lw, wl, machine, popts);

  ASSERT_TRUE(plain.valid);
  ASSERT_TRUE(traced.measurement.valid);
  EXPECT_DOUBLE_EQ(traced.measurement.base_time_ms, plain.base_time_ms);
  EXPECT_DOUBLE_EQ(traced.measurement.trial_time_ms, plain.trial_time_ms);
  EXPECT_DOUBLE_EQ(traced.measurement.counts.total_issues,
                   plain.counts.total_issues);
}

TEST(Profile, UnlaunchableConfigurationReportsInvalid) {
  const auto wl = kernels::make_atax(32);
  codegen::TuningParams p;
  p.threads_per_block = 48;  // compiles, but is not a warp multiple
  p.block_count = 24;
  const auto wp = profile(wl, p);
  EXPECT_FALSE(wp.measurement.valid);
  EXPECT_FALSE(wp.measurement.error.empty());
  EXPECT_TRUE(wp.stages.empty());
}

// ---- dynamic performance model ------------------------------------------

TEST(DynamicModel, CyclesIsMaxOfBoundsPlusOverheads) {
  const auto& gpu = arch::gpu("K20");
  const auto machine = sim::MachineModel::from(gpu, 48);
  sim::Counts counts;
  counts.add_category(arch::OpCategory::FPIns32, 1e6);
  counts.mem_transactions = 2e5;
  counts.dram_transactions = 1e5;

  const auto pred = dynamic::predict_from_counts(counts, machine, 13);
  const double expect_issue =
      1e6 * machine.issue_cycles(arch::OpCategory::FPIns32) / 13.0;
  EXPECT_DOUBLE_EQ(pred.issue_cycles, expect_issue);
  EXPECT_DOUBLE_EQ(pred.l2_cycles, 2e5 * machine.l2_txn_cycles());
  EXPECT_DOUBLE_EQ(pred.dram_cycles, 1e5 * machine.dram_txn_cycles());
  const double bound =
      std::max({pred.issue_cycles, pred.l2_cycles, pred.dram_cycles});
  EXPECT_DOUBLE_EQ(pred.cycles, bound + machine.kernel_launch_overhead +
                                    machine.block_dispatch_overhead);
  EXPECT_GT(pred.time_ms, 0.0);
}

TEST(DynamicModel, ZeroBusySmsThrows) {
  const auto& gpu = arch::gpu("K20");
  const auto machine = sim::MachineModel::from(gpu, 48);
  sim::Counts counts;
  EXPECT_THROW((void)dynamic::predict_from_counts(counts, machine, 0), Error);
}

TEST(DynamicModel, BottleneckNamesTheDominantBound) {
  const auto& gpu = arch::gpu("K20");
  const auto machine = sim::MachineModel::from(gpu, 48);

  sim::Counts compute;
  compute.add_category(arch::OpCategory::FPIns64, 1e7);
  EXPECT_STREQ(
      dynamic::predict_from_counts(compute, machine, 1).bottleneck(),
      "issue");

  sim::Counts memory;
  memory.dram_transactions = 1e7;
  memory.mem_transactions = 1e7;
  EXPECT_STREQ(
      dynamic::predict_from_counts(memory, machine, 13).bottleneck(),
      "dram");
}

TEST(DynamicModel, WorkloadPredictionSumsStages) {
  const auto wl = kernels::make_atax(48);
  codegen::TuningParams p;
  p.threads_per_block = 128;
  p.block_count = 24;
  const auto& gpu = arch::gpu("K20");
  const codegen::Compiler c(gpu, p);
  const auto lw = c.compile(wl);
  const auto machine = sim::MachineModel::from(gpu, p.l1_pref_kb);
  const auto wp = dynamic::profile_workload(lw, wl, machine);
  ASSERT_TRUE(wp.measurement.valid);

  const auto total = dynamic::predict_workload(lw, wp, machine);
  double stage_sum = 0;
  for (std::size_t i = 0; i < lw.stages.size(); ++i)
    stage_sum +=
        dynamic::predict_stage(lw.stages[i], wp.stages[i], machine).cycles;
  EXPECT_DOUBLE_EQ(total.cycles, stage_sum);
}

TEST(DynamicModel, TracksMeasuredTimeAcrossVariants) {
  // Across a thread sweep, the dynamic prediction must rank variants in
  // broad agreement with the simulator's measured times.
  const auto wl = kernels::make_matvec2d(128);
  const auto& gpu = arch::gpu("K20");
  std::vector<double> measured;
  std::vector<double> predicted;
  for (const int tc : {64, 128, 256, 512, 1024}) {
    codegen::TuningParams p;
    p.threads_per_block = tc;
    p.block_count = 48;
    const codegen::Compiler c(gpu, p);
    const auto lw = c.compile(wl);
    const auto machine = sim::MachineModel::from(gpu, p.l1_pref_kb);
    const auto wp = dynamic::profile_workload(lw, wl, machine);
    ASSERT_TRUE(wp.measurement.valid);
    measured.push_back(wp.measurement.base_time_ms);
    predicted.push_back(
        dynamic::predict_workload(lw, wp, machine).time_ms);
  }
  EXPECT_GT(stats::spearman(measured, predicted), 0.3);
}

// ---- report rendering ----------------------------------------------------

TEST(ProfileReport, RendersEverySection) {
  const auto wl = kernels::make_atax(48);
  codegen::TuningParams p;
  p.threads_per_block = 128;
  p.block_count = 24;
  const auto wp = profile(wl, p);
  ASSERT_TRUE(wp.measurement.valid);

  const std::string text = dynamic::render_profile(wp);
  EXPECT_NE(text.find("dynamic profile: atax"), std::string::npos);
  EXPECT_NE(text.find("hot basic blocks"), std::string::npos);
  EXPECT_NE(text.find("memory instructions"), std::string::npos);
  EXPECT_NE(text.find("array traffic"), std::string::npos);
  EXPECT_NE(text.find("reuse distance"), std::string::npos);
  EXPECT_NE(text.find("LRU"), std::string::npos);
}

TEST(ProfileReport, InvalidProfileRendersReason) {
  const auto wl = kernels::make_atax(32);
  codegen::TuningParams p;
  p.threads_per_block = 48;  // not a warp multiple
  const auto wp = profile(wl, p);
  const std::string text = dynamic::render_profile(wp);
  EXPECT_NE(text.find("not launchable"), std::string::npos);
}
