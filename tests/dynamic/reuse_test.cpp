#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "dynamic/reuse.hpp"

using namespace gpustatic;  // NOLINT
using dynamic::Fenwick;
using dynamic::kColdAccess;
using dynamic::ReuseDistanceAnalyzer;

// ---- Fenwick tree -------------------------------------------------------

TEST(Fenwick, PrefixSumsOnKnownData) {
  Fenwick f(8);
  f.add(0, 1);
  f.add(3, 1);
  f.add(7, 1);
  EXPECT_EQ(f.prefix(0), 1u);
  EXPECT_EQ(f.prefix(2), 1u);
  EXPECT_EQ(f.prefix(3), 2u);
  EXPECT_EQ(f.prefix(7), 3u);
  EXPECT_EQ(f.range(1, 3), 1u);
  EXPECT_EQ(f.range(4, 6), 0u);
  EXPECT_EQ(f.range(0, 7), 3u);
}

TEST(Fenwick, RangeWithInvertedBoundsIsZero) {
  Fenwick f(8);
  f.add(2, 1);
  EXPECT_EQ(f.range(5, 2), 0u);
}

TEST(Fenwick, RemovalUpdatesSums) {
  Fenwick f(16);
  for (std::size_t i = 0; i < 16; ++i) f.add(i, 1);
  EXPECT_EQ(f.prefix(15), 16u);
  f.add(5, -1);
  f.add(10, -1);
  EXPECT_EQ(f.prefix(15), 14u);
  EXPECT_EQ(f.range(5, 5), 0u);
  EXPECT_EQ(f.range(6, 10), 4u);
}

TEST(Fenwick, MatchesNaivePrefixSumsOnRandomOps) {
  Rng rng(2024);
  constexpr std::size_t kSize = 257;  // off power-of-two on purpose
  Fenwick f(kSize);
  std::vector<std::int64_t> naive(kSize, 0);
  for (int step = 0; step < 2000; ++step) {
    const auto i = static_cast<std::size_t>(rng.below(kSize));
    if (naive[i] == 0 || rng.uniform() < 0.7) {
      f.add(i, 1);
      naive[i] += 1;
    } else {
      f.add(i, -1);
      naive[i] -= 1;
    }
    const auto q = static_cast<std::size_t>(rng.below(kSize));
    std::uint64_t expect = 0;
    for (std::size_t j = 0; j <= q; ++j)
      expect += static_cast<std::uint64_t>(naive[j]);
    ASSERT_EQ(f.prefix(q), expect) << "step " << step << " q " << q;
  }
}

// ---- reuse distances on crafted streams ---------------------------------

TEST(ReuseDistance, FirstTouchIsCold) {
  ReuseDistanceAnalyzer a;
  EXPECT_EQ(a.access(10), kColdAccess);
  EXPECT_EQ(a.access(11), kColdAccess);
  EXPECT_EQ(a.cold_misses(), 2u);
  EXPECT_EQ(a.distinct_lines(), 2u);
}

TEST(ReuseDistance, ImmediateReuseIsDistanceZero) {
  ReuseDistanceAnalyzer a;
  a.access(42);
  EXPECT_EQ(a.access(42), 0u);
  EXPECT_EQ(a.access(42), 0u);
  EXPECT_EQ(a.cold_misses(), 1u);
}

TEST(ReuseDistance, CountsDistinctInterveningLines) {
  ReuseDistanceAnalyzer a;
  a.access(1);                 // cold
  a.access(2);                 // cold
  a.access(3);                 // cold
  EXPECT_EQ(a.access(1), 2u);  // {2,3} intervene
  EXPECT_EQ(a.access(2), 2u);  // {3,1} intervene
  EXPECT_EQ(a.access(3), 2u);  // {1,2} intervene
}

TEST(ReuseDistance, RepeatedInterveningLineCountsOnce) {
  ReuseDistanceAnalyzer a;
  a.access(1);
  a.access(2);
  a.access(2);
  a.access(2);
  EXPECT_EQ(a.access(1), 1u);  // only {2}
}

TEST(ReuseDistance, CyclicStreamHasConstantDistance) {
  ReuseDistanceAnalyzer a;
  const std::vector<std::uint64_t> lines = {7, 8, 9, 10};
  for (const auto l : lines) EXPECT_EQ(a.access(l), kColdAccess);
  for (int round = 0; round < 5; ++round)
    for (const auto l : lines)
      EXPECT_EQ(a.access(l), 3u);  // the other three lines intervene
  EXPECT_EQ(a.cold_misses(), 4u);
  EXPECT_DOUBLE_EQ(a.mean_distance(), 3.0);
}

TEST(ReuseDistance, HistogramBucketBoundaries) {
  // Build exact distances: 0 -> bucket 0, 1 -> bucket 1, 2 -> bucket 2,
  // 4 -> bucket 3.
  ReuseDistanceAnalyzer a;
  a.access(100);
  a.access(100);  // d = 0
  a.access(1);
  a.access(100);  // d = 1
  a.access(2);
  a.access(3);
  a.access(100);  // d = 2
  a.access(4);
  a.access(5);
  a.access(6);
  a.access(7);
  a.access(100);  // d = 4
  const auto& h = a.log2_histogram();
  EXPECT_EQ(h[0], 1u);
  EXPECT_EQ(h[1], 1u);
  EXPECT_EQ(h[2], 1u);
  EXPECT_EQ(h[3], 1u);
}

// ---- exact LRU cross-validation -----------------------------------------

namespace {

/// Reference fully associative LRU cache.
class NaiveLru {
 public:
  explicit NaiveLru(std::size_t capacity) : cap_(capacity) {}

  bool access(std::uint64_t line) {
    const auto it = std::find(order_.begin(), order_.end(), line);
    const bool hit = it != order_.end();
    if (hit) order_.erase(it);
    order_.push_front(line);
    if (order_.size() > cap_) order_.pop_back();
    return hit;
  }

 private:
  std::size_t cap_;
  std::deque<std::uint64_t> order_;
};

}  // namespace

class ReuseVsLruTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReuseVsLruTest, MissRatiosMatchExactLruSimulation) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const std::vector<std::uint64_t> capacities = {1, 4, 16, 64};
  ReuseDistanceAnalyzer a(capacities);
  std::vector<NaiveLru> caches;
  std::vector<std::uint64_t> misses(capacities.size(), 0);
  caches.reserve(capacities.size());
  for (const auto c : capacities)
    caches.emplace_back(static_cast<std::size_t>(c));

  constexpr int kAccesses = 3000;
  for (int i = 0; i < kAccesses; ++i) {
    // Mixture: hot set of 8 lines, warm set of 60, cold tail.
    std::uint64_t line;
    const double u = rng.uniform();
    if (u < 0.5)
      line = rng.below(8);
    else if (u < 0.85)
      line = 100 + rng.below(60);
    else
      line = 10000 + rng.below(2000);
    a.access(line);
    for (std::size_t c = 0; c < caches.size(); ++c)
      if (!caches[c].access(line)) misses[c] += 1;
  }

  for (std::size_t c = 0; c < capacities.size(); ++c) {
    const double expect =
        static_cast<double>(misses[c]) / static_cast<double>(kAccesses);
    EXPECT_NEAR(a.miss_ratio(c), expect, 1e-12)
        << "capacity " << capacities[c];
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReuseVsLruTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

// ---- growth & merge ------------------------------------------------------

TEST(ReuseDistance, SurvivesInternalGrowth) {
  // Default Fenwick capacity is 64; stream far beyond it.
  ReuseDistanceAnalyzer a;
  constexpr std::uint64_t kLines = 500;
  for (std::uint64_t l = 0; l < kLines; ++l) a.access(l);
  for (std::uint64_t l = 0; l < kLines; ++l)
    ASSERT_EQ(a.access(l), kLines - 1) << "line " << l;
  EXPECT_EQ(a.accesses(), 2 * kLines);
  EXPECT_EQ(a.cold_misses(), kLines);
}

TEST(ReuseDistance, MergeDistributionSumsTotals) {
  const std::vector<std::uint64_t> watch = {8};
  ReuseDistanceAnalyzer a(watch);
  ReuseDistanceAnalyzer b(watch);
  for (int r = 0; r < 3; ++r)
    for (std::uint64_t l = 0; l < 4; ++l) a.access(l);
  for (int r = 0; r < 2; ++r)
    for (std::uint64_t l = 0; l < 16; ++l) b.access(l);

  const std::uint64_t total = a.accesses() + b.accesses();
  const std::uint64_t cold = a.cold_misses() + b.cold_misses();
  a.merge_distribution(b);
  EXPECT_EQ(a.accesses(), total);
  EXPECT_EQ(a.cold_misses(), cold);
  // a's reuses (d=3 < 8) all hit; b's reuses (d=15) all miss.
  // merged hits = 8 (a's two reuse rounds of 4).
  const double expect_miss =
      static_cast<double>(total - 8) / static_cast<double>(total);
  EXPECT_NEAR(a.miss_ratio(0), expect_miss, 1e-12);
}

TEST(ReuseDistance, MeanDistanceIgnoresColdAccesses) {
  ReuseDistanceAnalyzer a;
  a.access(1);
  a.access(2);
  a.access(1);  // d = 1
  a.access(2);  // d = 1
  EXPECT_DOUBLE_EQ(a.mean_distance(), 1.0);
}
